#include "engine/tuple.h"

#include <cassert>

namespace nvmdb {

namespace {
uint64_t MixHash(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

void Tuple::SetString(size_t col, const Slice& v) {
  // The source may alias this tuple's own arena (copying a column from the
  // same tuple); appending can reallocate, so track it by offset.
  const char* base = arena_.data();
  if (v.data() >= base && v.data() <= base + arena_.size()) {
    const size_t src_off = static_cast<size_t>(v.data() - base);
    const size_t len = v.size();
    const size_t off = arena_.size();
    arena_.resize(off + len);
    memmove(&arena_[off], arena_.data() + src_off, len);
    words_[col] = (static_cast<uint64_t>(off) << 24) |
                  static_cast<uint64_t>(len);
    return;
  }
  char* dst = AppendStringUninit(col, v.size());
  memcpy(dst, v.data(), v.size());
}

void Tuple::AppendInlined(std::string* out) const {
  const size_t n = schema_->num_columns();
  for (size_t i = 0; i < n; i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar) {
      const Slice s = GetString(i);
      const uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), 4);
      out->append(s.data(), s.size());
    } else {
      out->append(reinterpret_cast<const char*>(&words_[i]), 8);
    }
  }
}

void Tuple::ParseInlined(const Schema* schema, const Slice& data,
                         Tuple* out) {
  out->Reset(schema);
  const char* p = data.data();
  const char* end = p + data.size();
  for (size_t i = 0; i < schema->num_columns(); i++) {
    const Column& col = schema->column(i);
    if (col.type == ColumnType::kVarchar) {
      uint32_t len = 0;
      assert(p + 4 <= end);
      memcpy(&len, p, 4);
      p += 4;
      assert(p + len <= end);
      out->SetString(i, Slice(p, len));
      p += len;
    } else {
      assert(p + 8 <= end);
      memcpy(&out->words_[i], p, 8);
      p += 8;
    }
  }
  (void)end;
}

size_t Tuple::LogicalSize() const {
  size_t bytes = schema_->FixedSize();
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    if (schema_->column(i).type == ColumnType::kVarchar) {
      bytes += GetString(i).size();
    }
  }
  return bytes;
}

bool Tuple::EqualTo(const Tuple& other) const {
  if (schema_ != other.schema_ &&
      (schema_ == nullptr || other.schema_ == nullptr ||
       schema_->num_columns() != other.schema_->num_columns())) {
    return false;
  }
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    if (schema_->column(i).type == ColumnType::kVarchar) {
      if (GetString(i) != other.GetString(i)) return false;
    } else {
      if (words_[i] != other.words_[i]) return false;
    }
  }
  return true;
}

uint64_t SecondaryKeyHash(const Tuple& tuple, const SecondaryIndexDef& def) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t col : def.key_columns) {
    if (tuple.schema()->column(col).type == ColumnType::kVarchar) {
      const Slice s = tuple.GetString(col);
      h = MixHash(h, s.data(), s.size());
    } else {
      const uint64_t v = tuple.GetU64(col);
      h = MixHash(h, &v, 8);
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h & 0xFFFFFFFFFFFFULL;  // 48 bits
}

uint64_t SecondaryKeyHash(const Schema& schema, const SecondaryIndexDef& def,
                          const std::vector<Value>& key_values) {
  uint64_t h = 14695981039346656037ULL;
  assert(key_values.size() == def.key_columns.size());
  for (size_t i = 0; i < def.key_columns.size(); i++) {
    const size_t col = def.key_columns[i];
    if (schema.column(col).type == ColumnType::kVarchar) {
      h = MixHash(h, key_values[i].str.data(), key_values[i].str.size());
    } else {
      h = MixHash(h, &key_values[i].num, 8);
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h & 0xFFFFFFFFFFFFULL;
}

}  // namespace nvmdb
