#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "engine/wal.h"
#include "nvm/crash_sim.h"
#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"
#include "nvm/sync.h"
#include "testbed/crash_explorer.h"
#include "test_util.h"

namespace nvmdb {
namespace {

// --- CrashSim unit behavior ------------------------------------------------------

class CrashSimTest : public ::testing::Test {
 protected:
  CrashSimTest() : device_(1ull << 20, NvmLatencyConfig::Dram()) {
    device_.set_crash_sim(&sim_);
  }
  ~CrashSimTest() override { device_.set_crash_sim(nullptr); }

  NvmDevice device_;
  CrashSim sim_;
};

TEST_F(CrashSimTest, CountsEveryDurabilityEvent) {
  const uint64_t before = sim_.event_count();
  uint64_t v = 0xA;
  device_.Write(0, &v, 8);
  device_.Persist(uint64_t{0}, 8);                  // +1
  device_.AtomicPersistWrite64(64, 0xB);  // +1
  PmemBarrier(&device_);                  // +1
  EXPECT_EQ(sim_.event_count(), before + 3);
}

TEST_F(CrashSimTest, CaptureIsDurableImageBeforeTheEvent) {
  uint64_t a = 0x1111111111111111ull;
  device_.Write(0, &a, 8);
  device_.Persist(uint64_t{0}, 8);  // event 1: A is durable

  sim_.Arm(sim_.event_count() + 1);
  uint64_t b = 0x2222222222222222ull;
  device_.Write(0, &b, 8);   // cached, not durable
  uint64_t c = 0x3333333333333333ull;
  device_.Write(256, &c, 8);  // never persisted at all
  device_.Persist(uint64_t{0}, 8);      // event 2: capture fires first

  ASSERT_TRUE(sim_.captured());
  EXPECT_EQ(sim_.captured_event(), 2u);
  ASSERT_EQ(sim_.image().size(), device_.capacity());
  uint64_t snap0, snap256;
  memcpy(&snap0, sim_.image().data(), 8);
  memcpy(&snap256, sim_.image().data() + 256, 8);
  // The crash image predates event 2: A survives, B and C do not...
  EXPECT_EQ(snap0, a);
  EXPECT_EQ(snap256, 0u);
  // ...while the live device completed the persist as usual.
  uint64_t live;
  device_.Read(0, &live, 8);
  EXPECT_EQ(live, b);
}

TEST_F(CrashSimTest, TornCaptureIsOldOrNewPerLine) {
  uint64_t a = 0xAAAAAAAAAAAAAAAAull;
  device_.Write(0, &a, 8);
  device_.Persist(uint64_t{0}, 8);

  bool saw_old = false, saw_new = false;
  for (uint64_t seed = 1; seed <= 16 && (!saw_old || !saw_new); seed++) {
    sim_.Arm(sim_.event_count() + 1, /*tear_final_persist=*/true, seed);
    uint64_t b = 0xBBBBBBBBBBBBBBBBull;
    device_.Write(0, &b, 8);
    device_.Persist(uint64_t{0}, 8);
    ASSERT_TRUE(sim_.captured());
    uint64_t snap;
    memcpy(&snap, sim_.image().data(), 8);
    ASSERT_TRUE(snap == a || snap == b);  // whole line lands or dies
    saw_old |= snap == a;
    saw_new |= snap == b;
    // Reset durable state for the next round.
    device_.Write(0, &a, 8);
    device_.Persist(uint64_t{0}, 8);
  }
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

TEST_F(CrashSimTest, RestoreImagesRewindsTheDevice) {
  uint64_t a = 7;
  device_.Write(0, &a, 8);
  device_.Persist(uint64_t{0}, 8);
  sim_.Arm(sim_.event_count() + 1);
  uint64_t b = 9;
  device_.Write(0, &b, 8);
  device_.Persist(uint64_t{0}, 8);
  ASSERT_TRUE(sim_.captured());
  device_.RestoreImages(sim_.image().data(), sim_.image().size());
  uint64_t val;
  device_.Read(0, &val, 8);
  EXPECT_EQ(val, a);
}

// --- WAL durability-tracking regression (ISSUE 2 satellite) ---------------------

class WalDurabilityHarness : public ::testing::Test {
 protected:
  WalDurabilityHarness()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_) {}

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
};

LogRecord InsertRecord(uint64_t txn) {
  LogRecord r;
  r.op = LogOp::kInsert;
  r.txn_id = txn;
  r.table_id = 1;
  r.key = txn;
  r.after = "v" + std::to_string(txn);
  return r;
}

/// The Wal::Truncate stale-commit bug, caught the way the crash harness
/// frames it: a txn id the WAL acknowledges as durable must be recoverable
/// from the durable log after a crash. Before the fix, a checkpoint-style
/// Truncate with buffered commits followed by an empty-buffer Flush
/// advanced last_durable_txn() to a pre-truncation id whose commit record
/// existed nowhere — a committed-then-lost violation.
TEST_F(WalDurabilityHarness, TruncateCannotAcknowledgeDroppedCommits) {
  uint64_t acked;
  {
    Wal wal(&fs_, "t.wal", /*group_commit_size=*/100);
    for (uint64_t txn = 1; txn <= 3; txn++) {
      wal.Append(InsertRecord(txn));
      wal.LogCommit(txn);  // buffered; group never fills
    }
    EXPECT_EQ(wal.last_durable_txn(), 0u);
    ASSERT_TRUE(wal.Truncate().ok());  // checkpoint dropped the buffer
    ASSERT_TRUE(wal.Flush().ok());     // empty-buffer group force
    acked = wal.last_durable_txn();
  }

  // Power failure, then recovery's view of the log.
  device_.Crash();
  PmemAllocator allocator(&device_, /*format=*/false);
  Pmfs fs(&allocator);
  Wal wal(&fs, "t.wal", 100);
  uint64_t max_durable_commit = 0;
  for (const LogRecord& r : wal.ReadAll()) {
    if (r.op == LogOp::kCommit) {
      max_durable_commit = std::max(max_durable_commit, r.txn_id);
    }
  }
  // Every acknowledged txn must have a durable commit record.
  EXPECT_LE(acked, max_durable_commit)
      << "WAL acknowledged txn " << acked
      << " whose commit record is not durable (committed-then-lost)";
}

TEST_F(WalDurabilityHarness, AckWatermarkStaysMonotoneAcrossTruncate) {
  Wal wal(&fs_, "t.wal", 2);
  wal.Append(InsertRecord(1));
  wal.LogCommit(1);
  wal.Append(InsertRecord(2));
  wal.LogCommit(2);  // group of 2 -> flushed
  EXPECT_EQ(wal.last_durable_txn(), 2u);
  ASSERT_TRUE(wal.Truncate().ok());
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.last_durable_txn(), 2u);  // never rewinds
  wal.Append(InsertRecord(3));
  wal.LogCommit(3);
  wal.Append(InsertRecord(4));
  wal.LogCommit(4);
  EXPECT_EQ(wal.last_durable_txn(), 4u);  // and still advances
}

// --- Systematic crash-point exploration across all six engines -------------------

class CrashExplorerTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CrashExplorerTest, EveryCrashPointRecoversConsistently) {
  CrashExplorerConfig cfg;
  cfg.engine = GetParam();
  cfg.txns = 48;
  cfg.keys = 24;
  cfg.seed = 11;
  // Cross the checkpoint boundary inside the 48-txn budget so the sweep
  // covers the checkpoint write + WAL-truncate window (where the InP
  // swap-window and NvWal stale-ack bugs lived), not just steady state.
  cfg.checkpoint_interval_txns = 24;
  // Bounded sweep for CI latency: every 5th event plus torn random points.
  cfg.event_stride = 5;
  cfg.random_crash_points = 6;
  cfg.tear_random_points = true;
  const CrashExplorerReport report = RunCrashExplorer(cfg);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_GT(report.crash_points_run, 0u);
  std::string all;
  for (const std::string& m : report.messages) all += "\n  " + m;
  EXPECT_EQ(report.violations, 0u) << all;
}

TEST_P(CrashExplorerTest, TornFinalPersistSweep) {
  CrashExplorerConfig cfg;
  cfg.engine = GetParam();
  cfg.txns = 32;
  cfg.keys = 16;
  cfg.seed = 23;
  cfg.event_stride = 7;
  cfg.tear_final_persist = true;
  const CrashExplorerReport report = RunCrashExplorer(cfg);
  std::string all;
  for (const std::string& m : report.messages) all += "\n  " + m;
  EXPECT_EQ(report.violations, 0u) << all;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CrashExplorerTest,
                         ::testing::ValuesIn(testutil::kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace nvmdb
