/// Fig. 16 (Appendix C) — Impact of the sync-primitive latency (modeling
/// PCOMMIT/CLWB-style instruction costs from 10 ns to 10000 ns) on the
/// NVM-aware engines, YCSB under low NVM latency and low skew.
///
/// The sync-call counters from one run yield each latency point
/// analytically (stall += sync_calls * latency).
///
/// Expected shape (paper): all NVM-aware engines degrade as the primitive
/// slows; the impact is strongest on write-intensive mixtures; NVM-CoW is
/// slightly less sensitive (durability mostly via data copies, fewer
/// syncs on the critical path).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};
  const uint64_t latencies[] = {100 /*current (CLFLUSH+SFENCE)*/, 10, 100,
                                1000, 10000};

  PrintHeader(
      "Fig. 16: sync-primitive latency sweep (txn/sec), YCSB low "
      "skew, low NVM latency");
  for (EngineKind engine : NvmEngines()) {
    printf("\n--- %s ---\n", EngineKindName(engine));
    printf("%-16s", "sync ns");
    for (YcsbMixture m : mixtures) printf("%14s", YcsbMixtureName(m));
    printf("\n");

    // One run per mixture; latency points derived from sync counters.
    struct Cell {
      uint64_t committed;
      uint64_t wall_ns;
      CounterDelta counters;
    };
    std::vector<Cell> cells;
    for (YcsbMixture mixture : mixtures) {
      const BenchRun run = RunYcsb(engine, mixture, YcsbSkew::kLow);
      cells.push_back({run.committed, run.wall_ns, run.counters});
    }
    bool first = true;
    for (uint64_t sync_ns : latencies) {
      printf("%-16s",
             first ? "current" : std::to_string(sync_ns).c_str());
      NvmLatencyConfig profile = NvmLatencyConfig::LowNvm();
      if (!first) profile.sync_latency_ns = sync_ns;
      for (const Cell& cell : cells) {
        printf("%14.0f",
               DeriveThroughput(cell.committed, cell.wall_ns, cell.counters,
                                profile, Scale().partitions));
      }
      printf("\n");
      first = false;
    }
  }
  printf(
      "\nPaper shape: throughput falls with sync latency, most on\n"
      "write-heavy mixes; NVM-CoW least sensitive (Appendix C, Fig. 16).\n");
  return 0;
}
