#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Operations recorded in the write-ahead log.
enum class LogOp : uint8_t {
  kBegin = 0,
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kCommit = 4,
  kAbort = 5,
};

/// A WAL record: transaction id, table, tuple id, and the before/after
/// images the operation needs (Section 3.1). Owning form, produced by
/// recovery (ReadAll) and used by tests.
struct LogRecord {
  LogOp op = LogOp::kBegin;
  uint64_t txn_id = 0;
  uint32_t table_id = 0;
  uint64_t key = 0;
  std::string before;
  std::string after;
};

/// Non-owning view of a record for the append path: the before/after
/// images are Slices into caller-owned scratch buffers that must stay
/// alive for the duration of the Append/Encode call (DESIGN.md §8). This
/// is what lets the hot path log a record without copying its images into
/// a temporary.
struct LogRecordRef {
  LogRecordRef() = default;
  // Implicit: an owning LogRecord views as a ref (tests, recovery replay).
  LogRecordRef(const LogRecord& r)  // NOLINT(runtime/explicit)
      : op(r.op),
        txn_id(r.txn_id),
        table_id(r.table_id),
        key(r.key),
        before(r.before),
        after(r.after) {}

  LogOp op = LogOp::kBegin;
  uint64_t txn_id = 0;
  uint32_t table_id = 0;
  uint64_t key = 0;
  Slice before;
  Slice after;
};

/// Filesystem-backed write-ahead log used by the traditional InP and Log
/// engines. Records are buffered in memory and flushed with fsync by a
/// group-commit policy: the log is forced every `group_commit_size`
/// commits, so a committing transaction may wait for its group — the
/// latency cost the paper attributes to traditional logging.
class Wal {
 public:
  Wal(Pmfs* fs, const std::string& file_name, size_t group_commit_size);
  ~Wal();

  /// Buffer a record (not yet durable).
  void Append(const LogRecordRef& record);

  /// Append a commit record; flushes the group when it is full.
  /// Returns true if this commit's group was forced to storage.
  bool LogCommit(uint64_t txn_id);

  /// Force everything buffered to durable storage.
  Status Flush();

  /// Id of the last transaction whose commit record is durable.
  uint64_t last_durable_txn() const { return last_durable_txn_; }

  /// Parse the durable log (recovery). Stops cleanly at a torn tail.
  std::vector<LogRecord> ReadAll();

  /// Drop the log contents (after a checkpoint).
  Status Truncate();

  uint64_t DurableSizeBytes() const;

 private:
  Pmfs* fs_;
  std::string file_name_;
  Pmfs::Fd fd_;
  size_t group_commit_size_;
  std::string buffer_;
  uint64_t virtual_base_ = 0;  // modeled address of buffer_[0]
  size_t commits_in_group_ = 0;
  uint64_t last_buffered_commit_ = 0;
  uint64_t last_durable_txn_ = 0;
};

/// Serialize / parse a single record (exposed for tests and the NV WAL's
/// payload encoding). Encoding appends to `out` in a single pass: the
/// 8-byte crc/len header is reserved up front and backpatched once the
/// payload bytes are in place — no intermediate payload string.
void EncodeLogRecord(const LogRecordRef& record, std::string* out);
bool DecodeLogRecord(const char* data, size_t size, LogRecord* out,
                     size_t* consumed);

}  // namespace nvmdb
