/// Determinism regression test: the same single-worker YCSB workload,
/// executed twice on fresh devices, must produce bit-identical model
/// outputs — NvmCounters (including the per-component stall attribution),
/// the simulated clock, WearStats, and the response-latency histogram.
/// This guards the "model output unchanged" invariant the simulator fast
/// path depends on: any accidental model change shows up as counter or
/// bucket drift here.
///
/// All six engines qualify: instrumented traffic is addressed either by
/// region offsets or by ReserveVirtual addresses (a deterministic bump
/// allocator in the device's modeled address space), so the cache model
/// never sees an ASLR-dependent raw pointer. The identity is asserted
/// across three axes: run-vs-rerun, owner-vs-shared cache mode, and
/// bench-scheduler jobs=1 vs jobs=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "testbed/bench_runner.h"
#include "testbed/coordinator.h"
#include "testbed/database.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace {

const std::vector<EngineKind>& SixEngines() {
  static std::vector<EngineKind> engines = {
      EngineKind::kInP,    EngineKind::kCoW,    EngineKind::kLog,
      EngineKind::kNvmInP, EngineKind::kNvmCoW, EngineKind::kNvmLog};
  return engines;
}

struct ModelOutput {
  NvmCounters counters;
  WearStats wear;
  uint64_t stall_ns = 0;
  uint64_t committed = 0;
  LatencyHistogram latency_hist;
};

ModelOutput RunOnce(EngineKind engine,
                    ConcurrencyMode mode = ConcurrencyMode::kOwner) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;  // single worker: fully deterministic schedule
  cfg.nvm_capacity = 128ull * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::Dram();
  cfg.cache.capacity_bytes = 1024 * 1024;
  cfg.cache.mode = mode;
  cfg.engine = engine;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = 2000;
  ycfg.num_txns = 3000;
  ycfg.num_partitions = 1;
  ycfg.mixture = YcsbMixture::kBalanced;
  ycfg.skew = YcsbSkew::kHigh;
  YcsbWorkload workload(ycfg);
  EXPECT_TRUE(workload.Load(&db).ok());

  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());

  ModelOutput out;
  out.counters = db.device()->counters();
  out.wear = db.device()->wear();
  out.stall_ns = db.device()->TotalStallNanos();
  out.committed = result.committed;
  out.latency_hist = result.latency_hist;
  return out;
}

void ExpectIdentical(const ModelOutput& a, const ModelOutput& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.counters.loads, b.counters.loads);
  EXPECT_EQ(a.counters.stores, b.counters.stores);
  EXPECT_EQ(a.counters.hits, b.counters.hits);
  EXPECT_EQ(a.counters.stall_ns, b.counters.stall_ns);
  EXPECT_EQ(a.counters.external_ns, b.counters.external_ns);
  EXPECT_EQ(a.counters.sync_calls, b.counters.sync_calls);
  EXPECT_EQ(a.counters.bytes_read, b.counters.bytes_read);
  EXPECT_EQ(a.counters.bytes_written, b.counters.bytes_written);
  // Per-component stall attribution (wal/index/tuple/allocator/
  // checkpoint/recovery/other) must match tag by tag.
  for (size_t t = 0; t < kStallTagCount; t++) {
    EXPECT_EQ(a.counters.tag_ns[t], b.counters.tag_ns[t])
        << "tag " << StallTagName(static_cast<StallTag>(t));
  }
  EXPECT_EQ(a.stall_ns, b.stall_ns);
  EXPECT_EQ(a.wear.total_line_writes, b.wear.total_line_writes);
  EXPECT_EQ(a.wear.lines_touched, b.wear.lines_touched);
  EXPECT_EQ(a.wear.max_line_writes, b.wear.max_line_writes);
  EXPECT_DOUBLE_EQ(a.wear.mean_line_writes, b.wear.mean_line_writes);
  EXPECT_DOUBLE_EQ(a.wear.hotspot_factor, b.wear.hotspot_factor);
  // Bucket-exact latency-histogram equality — stronger than comparing
  // the summarized percentiles.
  EXPECT_EQ(a.latency_hist.count(), b.latency_hist.count());
  EXPECT_EQ(a.latency_hist.sum(), b.latency_hist.sum());
  EXPECT_EQ(a.latency_hist.max(), b.latency_hist.max());
  EXPECT_TRUE(a.latency_hist == b.latency_hist);
}

class EngineDeterminismTest : public ::testing::TestWithParam<EngineKind> {};

// Run-vs-rerun and owner-vs-shared identity in one fixture: owner mode
// (zero-synchronization fast path, the bench default) and shared mode
// (bank locks) must be *the same model*. This is the device-level
// guarantee behind the CI jobs that diff benchmark output between modes.
TEST_P(EngineDeterminismTest, RerunAndOwnerVsSharedIdentical) {
  const ModelOutput baseline = RunOnce(GetParam(), ConcurrencyMode::kOwner);
  ExpectIdentical(baseline, RunOnce(GetParam(), ConcurrencyMode::kOwner));
  ExpectIdentical(baseline, RunOnce(GetParam(), ConcurrencyMode::kShared));
}

INSTANTIATE_TEST_SUITE_P(AllSixEngines, EngineDeterminismTest,
                         ::testing::ValuesIn(SixEngines()),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The grid scheduler must not perturb the model either: the same six
// cells produce bit-identical outputs whether they run serially (jobs=1)
// or concurrently on pool threads (jobs=4). This is the in-process
// equivalent of the CI job that diffs bench stdout across NVMDB_BENCH_JOBS.
TEST(DeterminismTest, JobsOneVsFourIdentical) {
  setenv("NVMDB_BENCH_JSON_DIR", "", 1);  // no report files from tests
  auto run_grid = [](size_t jobs) {
    std::vector<ModelOutput> outputs(SixEngines().size());
    BenchRunner runner("determinism_test", jobs);
    for (size_t e = 0; e < SixEngines().size(); e++) {
      const EngineKind engine = SixEngines()[e];
      runner.Submit([&outputs, e, engine]() {
        outputs[e] = RunOnce(engine);
        return BenchCell{};
      });
    }
    runner.Wait();
    return outputs;
  };
  const std::vector<ModelOutput> serial = run_grid(1);
  const std::vector<ModelOutput> pooled = run_grid(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t e = 0; e < serial.size(); e++) {
    SCOPED_TRACE(EngineKindName(SixEngines()[e]));
    ExpectIdentical(serial[e], pooled[e]);
  }
}

// The run must also do real work, or the identity above is vacuous.
TEST(DeterminismTest, RunsAreNonTrivial) {
  const ModelOutput out = RunOnce(EngineKind::kNvmInP);
  EXPECT_EQ(out.committed, 3000u);
  EXPECT_GT(out.counters.loads, 0u);
  EXPECT_GT(out.counters.stores, 0u);
  EXPECT_GT(out.stall_ns, 0u);
  EXPECT_GT(out.wear.total_line_writes, 0u);
  // Every committed transaction became durable and got a response time.
  EXPECT_EQ(out.latency_hist.count(), 3000u);
  EXPECT_GT(out.latency_hist.max(), 0u);
  // The stall attribution covers the whole simulated clock: tags are
  // charged inside ChargeStall itself, so the per-tag sum is exact.
  uint64_t tag_sum = 0;
  for (size_t t = 0; t < kStallTagCount; t++) {
    tag_sum += out.counters.tag_ns[t];
  }
  EXPECT_EQ(tag_sum, out.stall_ns);
  // WAL work must be attributed for a WAL engine.
  EXPECT_GT(out.counters.tag_ns[static_cast<size_t>(StallTag::kWal)], 0u);
}

}  // namespace
}  // namespace nvmdb
