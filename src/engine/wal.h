#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Operations recorded in the write-ahead log.
enum class LogOp : uint8_t {
  kBegin = 0,
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kCommit = 4,
  kAbort = 5,
};

/// A WAL record: transaction id, table, tuple id, and the before/after
/// images the operation needs (Section 3.1).
struct LogRecord {
  LogOp op = LogOp::kBegin;
  uint64_t txn_id = 0;
  uint32_t table_id = 0;
  uint64_t key = 0;
  std::string before;
  std::string after;
};

/// Filesystem-backed write-ahead log used by the traditional InP and Log
/// engines. Records are buffered in memory and flushed with fsync by a
/// group-commit policy: the log is forced every `group_commit_size`
/// commits, so a committing transaction may wait for its group — the
/// latency cost the paper attributes to traditional logging.
class Wal {
 public:
  Wal(Pmfs* fs, const std::string& file_name, size_t group_commit_size);
  ~Wal();

  /// Buffer a record (not yet durable).
  void Append(const LogRecord& record);

  /// Append a commit record; flushes the group when it is full.
  /// Returns true if this commit's group was forced to storage.
  bool LogCommit(uint64_t txn_id);

  /// Force everything buffered to durable storage.
  Status Flush();

  /// Id of the last transaction whose commit record is durable.
  uint64_t last_durable_txn() const { return last_durable_txn_; }

  /// Parse the durable log (recovery). Stops cleanly at a torn tail.
  std::vector<LogRecord> ReadAll();

  /// Drop the log contents (after a checkpoint).
  Status Truncate();

  uint64_t DurableSizeBytes() const;

 private:
  Pmfs* fs_;
  std::string file_name_;
  Pmfs::Fd fd_;
  size_t group_commit_size_;
  std::string buffer_;
  uint64_t virtual_base_ = 0;  // modeled address of buffer_[0]
  size_t commits_in_group_ = 0;
  uint64_t last_buffered_commit_ = 0;
  uint64_t last_durable_txn_ = 0;
};

/// Serialize / parse a single record (exposed for tests and the NV WAL's
/// payload encoding).
void EncodeLogRecord(const LogRecord& record, std::string* out);
bool DecodeLogRecord(const char* data, size_t size, LogRecord* out,
                     size_t* consumed);

}  // namespace nvmdb
