#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace nvmdb {

namespace {
constexpr uint64_t kLevelBaseBytes = 1 << 20;  // level-1 target size
}

LsmTree::LsmTree(Pmfs* fs, const Schema* schema, std::string file_prefix,
                 size_t level0_limit, size_t growth_factor)
    : fs_(fs),
      schema_(schema),
      file_prefix_(std::move(file_prefix)),
      level0_limit_(level0_limit == 0 ? 1 : level0_limit),
      growth_factor_(growth_factor < 2 ? 2 : growth_factor) {
  levels_.resize(1);
}

std::string LsmTree::NextFileName() {
  return file_prefix_ + ".sst." + std::to_string(next_file_id_++);
}

void LsmTree::AddLevel0(std::unique_ptr<SsTable> table) {
  levels_[0].push_back(std::move(table));
  WriteManifest();
}

void LsmTree::Collect(uint64_t key, std::vector<DeltaRecord>* out) const {
  // Level 0: newest run last in the vector, so iterate backwards; then
  // deeper levels in order. Stop at the first conclusive record.
  auto conclusive = [](const DeltaRecord& r) {
    return r.kind != DeltaKind::kDelta;
  };
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    DeltaRecord record;
    if ((*it)->Get(key, &record)) {
      out->push_back(record);
      if (conclusive(record)) return;
    }
  }
  for (size_t level = 1; level < levels_.size(); level++) {
    for (const auto& run : levels_[level]) {
      DeltaRecord record;
      if (run->Get(key, &record)) {
        out->push_back(record);
        if (conclusive(record)) return;
      }
    }
  }
}

void LsmTree::Collect(uint64_t key, DeltaRecordList* out) const {
  auto conclusive = [](const DeltaRecord& r) {
    return r.kind != DeltaKind::kDelta;
  };
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    DeltaRecord* record = out->Add(DeltaKind::kDelta);
    if ((*it)->Get(key, record)) {
      if (conclusive(*record)) return;
    } else {
      out->RemoveLast();
    }
  }
  for (size_t level = 1; level < levels_.size(); level++) {
    for (const auto& run : levels_[level]) {
      DeltaRecord* record = out->Add(DeltaKind::kDelta);
      if (run->Get(key, record)) {
        if (conclusive(*record)) return;
      } else {
        out->RemoveLast();
      }
    }
  }
}

void LsmTree::CollectKeysInRange(uint64_t lo, uint64_t hi,
                                 std::vector<uint64_t>* out) const {
  for (const auto& level : levels_) {
    for (const auto& run : level) {
      run->CollectKeysInRange(lo, hi, out);
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool LsmTree::MaybeCompact() {
  if (levels_[0].size() <= level0_limit_) return false;
  Compact(1);
  return true;
}

void LsmTree::ForceCompact() {
  if (!levels_[0].empty()) Compact(1);
}

void LsmTree::Compact(size_t into_level) {
  if (levels_.size() <= into_level) levels_.resize(into_level + 1);

  // Inputs: every run above `into_level` plus the run at it, newest first.
  std::vector<SsTable*> inputs;
  for (size_t level = 0; level < into_level; level++) {
    for (auto it = levels_[level].rbegin(); it != levels_[level].rend();
         ++it) {
      inputs.push_back(it->get());
    }
  }
  for (const auto& run : levels_[into_level]) inputs.push_back(run.get());
  if (inputs.empty()) return;

  // Whether tombstones can be dropped: no populated level below target.
  bool is_bottom = true;
  for (size_t level = into_level + 1; level < levels_.size(); level++) {
    if (!levels_[level].empty()) is_bottom = false;
  }

  // Merge: records per key ordered newest-run-first, then coalesce.
  std::map<uint64_t, std::vector<DeltaRecord>> merged;
  for (SsTable* run : inputs) {
    run->ForEach([&merged](uint64_t key, const DeltaRecord& record) {
      merged[key].push_back(record);
    });
  }
  std::vector<std::pair<uint64_t, DeltaRecord>> output;
  output.reserve(merged.size());
  for (auto& [key, records] : merged) {
    DeltaRecord coalesced = CoalesceNewestFirst(*schema_, records);
    if (coalesced.kind == DeltaKind::kTombstone && is_bottom) continue;
    output.emplace_back(key, std::move(coalesced));
  }

  std::unique_ptr<SsTable> result;
  if (!output.empty()) {
    result = SsTable::Build(fs_, NextFileName(), output);
  }

  // Swap in the result, destroy the inputs.
  for (size_t level = 0; level < into_level; level++) {
    for (auto& run : levels_[level]) run->Destroy();
    levels_[level].clear();
  }
  for (auto& run : levels_[into_level]) run->Destroy();
  levels_[into_level].clear();
  uint64_t result_bytes = 0;
  if (result != nullptr) {
    result_bytes = result->FileBytes();
    compaction_bytes_written_ += result_bytes;
    levels_[into_level].push_back(std::move(result));
  }
  WriteManifest();

  // Cascade if this level is now oversized.
  uint64_t limit = kLevelBaseBytes;
  for (size_t i = 1; i < into_level; i++) limit *= growth_factor_;
  if (result_bytes > limit) Compact(into_level + 1);
}

void LsmTree::WriteManifest() {
  std::string body;
  body.append(reinterpret_cast<const char*>(&next_file_id_), 8);
  uint32_t total = 0;
  for (const auto& level : levels_) {
    total += static_cast<uint32_t>(level.size());
  }
  body.append(reinterpret_cast<const char*>(&total), 4);
  for (size_t level = 0; level < levels_.size(); level++) {
    for (const auto& run : levels_[level]) {
      const uint16_t lv = static_cast<uint16_t>(level);
      body.append(reinterpret_cast<const char*>(&lv), 2);
      const uint16_t len = static_cast<uint16_t>(run->file_name().size());
      body.append(reinterpret_cast<const char*>(&len), 2);
      body.append(run->file_name());
    }
  }
  const std::string manifest = file_prefix_ + ".manifest";
  fs_->Delete(manifest);
  Pmfs::Fd fd = fs_->Open(manifest, /*create=*/true, StorageTag::kLog);
  if (fd < 0) return;
  fs_->Write(fd, 0, body.data(), body.size());
  fs_->Fsync(fd);
  fs_->Close(fd);
}

Status LsmTree::Recover() {
  const std::string manifest = file_prefix_ + ".manifest";
  if (!fs_->Exists(manifest)) return Status::OK();  // empty tree
  Pmfs::Fd fd = fs_->Open(manifest, /*create=*/false);
  if (fd < 0) return Status::IOError("manifest open");
  const uint64_t size = fs_->Size(fd);
  std::string body(size, '\0');
  size_t got = 0;
  fs_->Read(fd, 0, body.data(), size, &got);
  fs_->Close(fd);
  if (got < 12) return Status::Corruption("manifest too small");

  memcpy(&next_file_id_, body.data(), 8);
  uint32_t total;
  memcpy(&total, body.data() + 8, 4);
  size_t pos = 12;
  levels_.clear();
  levels_.resize(1);
  for (uint32_t i = 0; i < total; i++) {
    if (pos + 4 > body.size()) return Status::Corruption("manifest entry");
    uint16_t level, len;
    memcpy(&level, body.data() + pos, 2);
    memcpy(&len, body.data() + pos + 2, 2);
    pos += 4;
    if (pos + len > body.size()) return Status::Corruption("manifest name");
    std::string name(body.data() + pos, len);
    pos += len;
    auto table = SsTable::Open(fs_, name);
    if (table == nullptr) {
      return Status::Corruption("sstable open: " + name);
    }
    if (levels_.size() <= level) levels_.resize(level + 1);
    levels_[level].push_back(std::move(table));
  }
  return Status::OK();
}

size_t LsmTree::RunCount() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

uint64_t LsmTree::FileBytes() const {
  uint64_t bytes = 0;
  for (const auto& level : levels_) {
    for (const auto& run : level) bytes += run->FileBytes();
  }
  return bytes;
}

}  // namespace nvmdb
