#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "nvm/nvm_device.h"

namespace nvmdb {

/// Component tags for footprint accounting (Fig. 14's breakdown).
enum class StorageTag : uint16_t {
  kOther = 0,
  kTable = 1,
  kIndex = 2,
  kLog = 3,
  kCheckpoint = 4,
  kFilesystem = 5,
  kCount = 6,
};

/// Per-tag byte usage snapshot.
struct AllocatorStats {
  uint64_t used_by_tag[static_cast<size_t>(StorageTag::kCount)] = {};
  uint64_t total_used = 0;
  uint64_t high_water = 0;
};

/// NVM-aware memory allocator (Section 2.3), modeled on the paper's
/// extended libpmem allocator:
///
///  * **Durability mechanism** — callers persist payloads with the device
///    sync primitive; the allocator persists its own metadata (slot
///    headers, heap high-water mark, catalog) the same way.
///  * **Naming mechanism** — a persistent root catalog maps string names to
///    region offsets, so `NvmPtr`s stored inside named structures remain
///    valid across OS/DBMS restarts.
///  * **Slot durability states** — every allocation carries one of three
///    states (unallocated / allocated-but-not-persisted / persisted);
///    `Recover()` reclaims allocated-but-not-persisted slots, which is how
///    the paper avoids non-volatile memory leaks after a crash
///    (Section 4.1).
///  * **Rotating best-fit** — frees are kept in size-segregated lists;
///    allocation takes the best-fitting class and rotates through the
///    entries within it to spread wear.
///
/// Free lists are volatile (rebuilt by scanning slot headers on recovery);
/// only the headers and the high-water mark are authoritative.
class PmemAllocator {
 public:
  /// Attach to a device. If the region is not formatted (or `format` is
  /// true), initializes a fresh heap; otherwise recovers the existing one.
  ///
  /// `eager_state_sync` controls whether slot-state transitions on *reused*
  /// slots are synced immediately. NVM-aware engines need true (their slot
  /// states are part of the recovery protocol); traditional engines treat
  /// this memory as volatile and skip the sync, like a DRAM malloc would.
  /// Structural metadata (slot size/magic, high-water mark) and Free()
  /// transitions are always durable so the recovery heap walk and the
  /// filesystem living on this heap stay intact either way.
  explicit PmemAllocator(NvmDevice* device, bool format = true,
                         bool eager_state_sync = true);

  void set_eager_state_sync(bool eager) { eager_state_sync_ = eager; }

  NvmDevice* device() { return device_; }

  /// Allocate `size` payload bytes (16-byte aligned). Returns the payload
  /// offset, or 0 on out-of-space. The slot starts in state
  /// "allocated-but-not-persisted".
  ///
  /// `sync_header` may be false when the caller will immediately call
  /// PersistPayloadAndMark with no other allocation in between — the
  /// recovery heap walk only needs headers durable in allocation order,
  /// and that call persists this header itself.
  uint64_t Alloc(size_t size, StorageTag tag = StorageTag::kOther,
                 bool sync_header = true);

  /// Transition a slot to the durable "persisted" state. Engines call this
  /// after syncing the payload so the slot survives `Recover()`.
  void MarkPersisted(uint64_t payload_offset);

  /// Persist the payload's first `payload_len` bytes AND the slot state
  /// with a single sync: the 16-byte header is contiguous with the
  /// payload, so one flush covers both. This is the hot-path durability
  /// primitive for write-once objects (tuples, WAL entries, index nodes).
  void PersistPayloadAndMark(uint64_t payload_offset, size_t payload_len);

  /// Return a slot to the free state (persisted immediately).
  ///
  /// Idempotent and defensive: freeing an already-free slot, or an offset
  /// that does not point at a well-formed slot header, is a no-op. Crash
  /// recovery needs this — undoing an in-flight transaction may re-run a
  /// free that was partially durable when the crash hit, and a torn tuple
  /// may hand recovery a garbage varlen pointer. Double-inserting a slot
  /// into the free lists would let Alloc hand the same offset out twice.
  void Free(uint64_t payload_offset);

  /// True iff `payload_offset` points just past a well-formed slot header:
  /// in bounds, 16-byte aligned, magic intact. Recovery paths use this to
  /// reject pointers read from possibly-torn durable state before
  /// dereferencing them (StateOf/UsableSize assume a valid slot).
  bool ValidPayloadOffset(uint64_t payload_offset) const;

  /// Payload size of a live slot.
  size_t UsableSize(uint64_t payload_offset) const;

  /// Durability state of a slot; exposed for tests and recovery audits.
  enum class SlotState : uint16_t {
    kFree = 0x00F1,
    kAllocated = 0x00A1,
    kPersisted = 0x00B5,
  };
  SlotState StateOf(uint64_t payload_offset) const;

  // --- Naming mechanism ----------------------------------------------------

  /// Persistently bind `name` to `offset` (0 clears the binding).
  Status SetRoot(const std::string& name, uint64_t offset);
  /// Look up a binding; returns 0 if absent.
  uint64_t GetRoot(const std::string& name) const;

  // --- Recovery -------------------------------------------------------------

  /// Rebuild volatile state from the region after a crash or restart:
  /// reclaims allocated-but-not-persisted slots, coalesces free runs, and
  /// rebuilds the free lists. Idempotent.
  void Recover();

  /// Structural invariant check for crash harnesses: walk the heap from
  /// `heap_start` and verify every slot header is well-formed (magic, a
  /// known durability state, a nonzero 16-byte-aligned capacity that stays
  /// inside the region) until the first never-persisted header — i.e. the
  /// walk Recover() relies on terminates cleanly. Returns the number of
  /// live (persisted) slots via `live_slots` when non-null.
  Status AuditHeap(uint64_t* live_slots = nullptr) const;

  AllocatorStats stats() const;

  /// First heap offset (for tests that scan the region).
  uint64_t heap_start() const;
  uint64_t high_water() const;

 private:
  struct SlotHeader;   // 24-byte persistent slot header
  struct RegionHeader; // persistent region header at offset 0

  RegionHeader* header() const;
  SlotHeader* SlotAt(uint64_t slot_offset) const;
  void PersistHeaderField(const void* field, size_t n);
  void PushFree(uint64_t slot_offset, size_t payload_size);
  uint64_t PopFree(size_t payload_size);
  void Format();

  NvmDevice* device_;
  bool eager_state_sync_ = true;
  mutable std::mutex mu_;
  // payload size class -> slot offsets; rotation index per class.
  std::map<size_t, std::vector<uint64_t>> free_lists_;
  std::map<size_t, size_t> rotate_;
  uint64_t used_by_tag_[static_cast<size_t>(StorageTag::kCount)] = {};
  uint64_t total_used_ = 0;
};

}  // namespace nvmdb
