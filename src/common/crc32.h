#pragma once

#include <cstddef>
#include <cstdint>

namespace nvmdb {

/// CRC-32C (Castagnoli) over a byte range. Used by the WAL and SSTable
/// formats to detect torn/partial writes during recovery.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace nvmdb
