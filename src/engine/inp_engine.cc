#include "engine/inp_engine.h"

#include <cassert>
#include <cstring>

#include "engine/checkpoint.h"
#include "lsm/delta.h"

namespace nvmdb {

InPEngine::InPEngine(const EngineConfig& config)
    : config_(config), fs_(config.fs), allocator_(config.allocator) {
  // This engine treats allocator memory as volatile (like DRAM malloc):
  // slot-state syncs on reuse would be pure overhead.
  allocator_->set_eager_state_sync(false);
  wal_ = std::make_unique<Wal>(fs_, config_.namespace_prefix + ".inp.wal",
                               config_.group_commit_size);
}

std::string InPEngine::CheckpointFileName() const {
  return config_.namespace_prefix + ".inp.ckpt";
}

Status InPEngine::CreateTable(const TableDef& def) {
  Table& table = tables_[def.table_id];
  table.def = def;
  table.heap = std::make_unique<TableHeap>(allocator_, &table.def.schema,
                                           /*nvm_aware=*/false);
  // Index nodes live in NVM used as volatile memory (NVM-only hierarchy):
  // route their traffic through the device's cache model.
  NvmDevice* device = allocator_->device();
  auto hook = +[](void* ctx, const void* p, size_t n, bool w) {
    static_cast<NvmDevice*>(ctx)->TouchVirtual(p, n, w);
  };
  // Nodes model their traffic at reserved (ASLR-independent) addresses so
  // the cache counters are reproducible across runs.
  auto valloc = +[](void* ctx, size_t n) {
    return static_cast<NvmDevice*>(ctx)->ReserveVirtual(n);
  };
  table.primary = std::make_unique<BTree<uint64_t, uint64_t>>(
      config_.btree_node_bytes);
  table.primary->SetAccessHook(hook, device);
  table.primary->SetVirtualAllocator(valloc, device);
  for (const auto& sec : def.secondary_indexes) {
    auto tree = std::make_unique<BTree<uint64_t, uint64_t>>(
        config_.btree_node_bytes);
    tree->SetAccessHook(hook, device);
    tree->SetVirtualAllocator(valloc, device);
    table.secondaries[sec.index_id] = std::move(tree);
  }
  return Status::OK();
}

InPEngine::Table* InPEngine::GetTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : &it->second;
}

void InPEngine::AddSecondaryEntries(Table* table, const Tuple& tuple,
                                    uint64_t pk) {
  for (const auto& sec : table->def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    table->secondaries[sec.index_id]->Insert(SecondaryComposite(h, pk), pk);
  }
}

void InPEngine::RemoveSecondaryEntries(Table* table, const Tuple& tuple,
                                       uint64_t pk) {
  for (const auto& sec : table->def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    table->secondaries[sec.index_id]->Erase(SecondaryComposite(h, pk));
  }
}

Status InPEngine::Insert(uint64_t txn_id, uint32_t table_id,
                         const Tuple& tuple) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t key = tuple.Key();
  {
    ScopedStallTag t(StallTag::kIndex);
    if (table->primary->Contains(key)) {
      return Status::InvalidArgument("duplicate key");
    }
  }

  {
    // WAL first: the after image is everything redo needs.
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kInsert;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    wal_after_.clear();
    tuple.AppendInlined(&wal_after_);
    record.after = Slice(wal_after_);
    wal_->Append(record);
  }

  uint64_t slot;
  {
    ScopedStallTag t(StallTag::kTuple);
    slot = table->heap->Insert(tuple);
    if (slot == 0) return Status::OutOfSpace("table heap");
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->primary->Insert(key, slot);
    AddSecondaryEntries(table, tuple, key);
  }
  txn_actions_.push_back({LogOp::kInsert, table_id, key, slot, 0, 0});
  return Status::OK();
}

void InPEngine::AppendBeforeImage(Table* table, uint64_t slot,
                                  const std::vector<ColumnUpdate>& updates,
                                  std::string* out) {
  const uint16_t count = static_cast<uint16_t>(updates.size());
  out->append(reinterpret_cast<const char*>(&count), 2);
  for (const ColumnUpdate& u : updates) {
    const uint16_t col = static_cast<uint16_t>(u.column);
    out->append(reinterpret_cast<const char*>(&col), 2);
    const bool is_string =
        table->def.schema.column(u.column).type == ColumnType::kVarchar;
    out->push_back(static_cast<char>(is_string ? 1 : 0));
    if (is_string) {
      const size_t len_pos = out->size();
      out->append(4, '\0');
      const size_t start = out->size();
      table->heap->AppendString(slot, u.column, out);
      const uint32_t len = static_cast<uint32_t>(out->size() - start);
      memcpy(&(*out)[len_pos], &len, 4);
    } else {
      const uint64_t num = table->heap->ReadU64(slot, u.column);
      out->append(reinterpret_cast<const char*>(&num), 8);
    }
  }
}

Status InPEngine::Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         const std::vector<ColumnUpdate>& updates) {
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }

  // Capture before-values (for the WAL and secondary maintenance),
  // encoding them straight into the reused before-image buffer.
  bool touches_secondary = false;
  {
    ScopedStallTag t(StallTag::kTuple);
    wal_before_.clear();
    AppendBeforeImage(table, slot, updates, &wal_before_);
    for (const ColumnUpdate& u : updates) {
      for (const auto& sec : table->def.secondary_indexes) {
        for (size_t c : sec.key_columns) {
          if (c == u.column) touches_secondary = true;
        }
      }
    }
    if (touches_secondary) table->heap->Read(slot, &scratch_tuple_);
  }

  {
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kUpdate;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    record.before = Slice(wal_before_);
    wal_after_.clear();
    EncodeUpdatesTo(table->def.schema, updates, &wal_after_);
    record.after = Slice(wal_after_);
    wal_->Append(record);
  }

  TxnAction action;
  action.op = LogOp::kUpdate;
  action.table_id = table_id;
  action.key = key;
  action.slot = slot;
  action.undo_begin = static_cast<uint32_t>(undo_pool_.size());
  {
    ScopedStallTag t(StallTag::kTuple);
    Status s = table->heap->Update(slot, updates, &undo_pool_,
                                   &commit_free_varlen_);
    if (!s.ok()) return s;
  }
  action.undo_end = static_cast<uint32_t>(undo_pool_.size());
  if (touches_secondary) {
    ScopedStallTag t(StallTag::kIndex);
    scratch_tuple2_ = scratch_tuple_;
    ApplyUpdates(&scratch_tuple2_, updates);
    RemoveSecondaryEntries(table, scratch_tuple_, key);
    AddSecondaryEntries(table, scratch_tuple2_, key);
  }
  txn_actions_.push_back(action);
  return Status::OK();
}

Status InPEngine::Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) {
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }
  {
    ScopedStallTag t(StallTag::kTuple);
    table->heap->Read(slot, &scratch_tuple_);
  }
  {
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kDelete;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    wal_before_.clear();
    scratch_tuple_.AppendInlined(&wal_before_);
    record.before = Slice(wal_before_);
    wal_->Append(record);
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->primary->Erase(key);
    RemoveSecondaryEntries(table, scratch_tuple_, key);
  }
  // The slot is reclaimed only after commit; abort re-links it.
  commit_free_slots_.push_back(slot);
  txn_actions_.push_back({LogOp::kDelete, table_id, key, slot, 0, 0});
  return Status::OK();
}

Status InPEngine::Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         Tuple* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }
  ScopedStallTag t(StallTag::kTuple);
  table->heap->Read(slot, out);
  return Status::OK();
}

Status InPEngine::ScanRange(
    uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Tuple&)>& fn) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  ScopedStallTag t(StallTag::kIndex);
  table->primary->Scan(lo, hi, [&](uint64_t key, const uint64_t& slot) {
    table->heap->Read(slot, &scan_scratch_);
    return fn(key, scan_scratch_);
  });
  return Status::OK();
}

Status InPEngine::SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                  uint32_t index_id,
                                  const std::vector<Value>& key_values,
                                  std::vector<Tuple>* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  auto sec_it = table->secondaries.find(index_id);
  if (sec_it == table->secondaries.end()) {
    return Status::InvalidArgument("no such index");
  }
  const SecondaryIndexDef* def = nullptr;
  for (const auto& d : table->def.secondary_indexes) {
    if (d.index_id == index_id) def = &d;
  }
  const uint64_t h = SecondaryKeyHash(table->def.schema, *def, key_values);

  std::vector<uint64_t> pks;
  {
    ScopedStallTag t(StallTag::kIndex);
    sec_it->second->Scan(SecondaryRangeLo(h), SecondaryRangeHi(h),
                         [&pks](uint64_t, const uint64_t& pk) {
                           pks.push_back(pk);
                           return true;
                         });
  }
  for (uint64_t pk : pks) {
    uint64_t slot = 0;
    if (!table->primary->Find(pk, &slot)) continue;
    table->heap->Read(slot, &scan_scratch_);
    if (SecondaryKeyHash(scan_scratch_, *def) == h) {
      out->push_back(scan_scratch_);
    }
  }
  return Status::OK();
}

Status InPEngine::Commit(uint64_t txn_id) {
  {
    ScopedStallTag t(StallTag::kWal);
    wal_->LogCommit(txn_id);
  }
  {
    ScopedStallTag t(StallTag::kTuple);
    for (const TxnAction& action : txn_actions_) {
      if (action.op == LogOp::kDelete) {
        GetTable(action.table_id)->heap->Free(action.slot);
      }
    }
    commit_free_slots_.clear();
    for (uint64_t voff : commit_free_varlen_) {
      // The schema owner is unknown here; varlen slots free uniformly.
      allocator_->Free(voff);
    }
    commit_free_varlen_.clear();
  }
  txn_actions_.clear();
  undo_pool_.clear();
  committed_txns_++;
  active_txn_ = 0;

  if (config_.checkpoint_interval_txns > 0 &&
      ++txns_since_checkpoint_ >= config_.checkpoint_interval_txns) {
    Checkpoint();
  }
  return Status::OK();
}

Status InPEngine::Abort(uint64_t txn_id) {
  {
    ScopedStallTag t(StallTag::kWal);
    LogRecord record;
    record.op = LogOp::kAbort;
    record.txn_id = txn_id;
    wal_->Append(record);
  }
  // Undo newest-first.
  for (auto it = txn_actions_.rbegin(); it != txn_actions_.rend(); ++it) {
    Table* table = GetTable(it->table_id);
    switch (it->op) {
      case LogOp::kInsert: {
        const Tuple t = table->heap->Read(it->slot);
        table->primary->Erase(it->key);
        RemoveSecondaryEntries(table, t, it->key);
        table->heap->Free(it->slot);
        break;
      }
      case LogOp::kUpdate: {
        const Tuple newer = table->heap->Read(it->slot);
        for (size_t u = it->undo_end; u-- > it->undo_begin;) {
          table->heap->ApplyUndo(it->slot, undo_pool_[u],
                                 &abort_free_varlen_);
        }
        const Tuple older = table->heap->Read(it->slot);
        RemoveSecondaryEntries(table, newer, it->key);
        AddSecondaryEntries(table, older, it->key);
        break;
      }
      case LogOp::kDelete: {
        const Tuple t = table->heap->Read(it->slot);
        table->primary->Insert(it->key, it->slot);
        AddSecondaryEntries(table, t, it->key);
        break;
      }
      default:
        break;
    }
  }
  for (uint64_t voff : abort_free_varlen_) allocator_->Free(voff);
  abort_free_varlen_.clear();
  // Old varlens recorded for commit-free stay live again.
  commit_free_varlen_.clear();
  commit_free_slots_.clear();
  txn_actions_.clear();
  undo_pool_.clear();
  active_txn_ = 0;
  return Status::OK();
}

void InPEngine::ApplyCommittedRecord(const LogRecord& record) {
  Table* table = GetTable(record.table_id);
  if (table == nullptr) return;
  switch (record.op) {
    case LogOp::kInsert: {
      Tuple t =
          Tuple::ParseInlined(&table->def.schema, Slice(record.after));
      const uint64_t slot = table->heap->Insert(t);
      table->primary->Insert(record.key, slot);
      AddSecondaryEntries(table, t, record.key);
      break;
    }
    case LogOp::kUpdate: {
      uint64_t slot = 0;
      if (!table->primary->Find(record.key, &slot)) return;
      Tuple old_tuple = table->heap->Read(slot);
      const auto updates =
          DecodeUpdates(table->def.schema, Slice(record.after));
      std::vector<TableHeap::UndoField> unused_undo;
      std::vector<uint64_t> free_now;
      table->heap->Update(slot, updates, &unused_undo, &free_now);
      for (uint64_t voff : free_now) allocator_->Free(voff);
      Tuple new_tuple = table->heap->Read(slot);
      RemoveSecondaryEntries(table, old_tuple, record.key);
      AddSecondaryEntries(table, new_tuple, record.key);
      break;
    }
    case LogOp::kDelete: {
      uint64_t slot = 0;
      if (!table->primary->Find(record.key, &slot)) return;
      Tuple t = table->heap->Read(slot);
      table->primary->Erase(record.key);
      RemoveSecondaryEntries(table, t, record.key);
      table->heap->Free(slot);
      break;
    }
    default:
      break;
  }
}

std::string InPEngine::SerializeDatabase() {
  std::string payload;
  for (auto& [table_id, table] : tables_) {
    payload.append(reinterpret_cast<const char*>(&table_id), 4);
    const uint64_t count = table.primary->size();
    payload.append(reinterpret_cast<const char*>(&count), 8);
    table.primary->ScanAll([&](uint64_t, const uint64_t& slot) {
      const std::string bytes = table.heap->Read(slot).SerializeInlined();
      const uint32_t len = static_cast<uint32_t>(bytes.size());
      payload.append(reinterpret_cast<const char*>(&len), 4);
      payload.append(bytes);
      return true;
    });
  }
  return payload;
}

void InPEngine::LoadDatabase(const std::string& payload) {
  size_t pos = 0;
  while (pos + 12 <= payload.size()) {
    uint32_t table_id;
    uint64_t count;
    memcpy(&table_id, payload.data() + pos, 4);
    memcpy(&count, payload.data() + pos + 4, 8);
    pos += 12;
    Table* table = GetTable(table_id);
    for (uint64_t i = 0; i < count; i++) {
      uint32_t len;
      memcpy(&len, payload.data() + pos, 4);
      pos += 4;
      Tuple t = Tuple::ParseInlined(&table->def.schema,
                                    Slice(payload.data() + pos, len));
      pos += len;
      const uint64_t slot = table->heap->Insert(t);
      table->primary->Insert(t.Key(), slot);
      AddSecondaryEntries(table, t, t.Key());
    }
  }
}

Status InPEngine::Checkpoint() {
  ScopedStallTag timer(StallTag::kCheckpoint);
  // Sharp checkpoint: the engine is quiescent between transactions.
  Status s = wal_->Flush();
  if (!s.ok()) return s;
  s = WriteCheckpoint(fs_, CheckpointFileName(), SerializeDatabase());
  if (!s.ok()) return s;
  s = wal_->Truncate();
  txns_since_checkpoint_ = 0;
  return s;
}

Status InPEngine::Recover() {
  ScopedStallTag timer(StallTag::kRecovery);
  // Load the last checkpoint, then replay committed transactions from the
  // WAL. Indexes are rebuilt from scratch along the way (Section 3.1).
  std::string payload;
  Status s = ReadCheckpoint(fs_, CheckpointFileName(), &payload);
  if (s.ok()) {
    LoadDatabase(payload);
  } else if (!s.IsNotFound()) {
    return s;
  }

  const std::vector<LogRecord> records = wal_->ReadAll();
  // Pass 1: which transactions committed?
  std::vector<uint64_t> committed;
  for (const LogRecord& r : records) {
    if (r.op == LogOp::kCommit) committed.push_back(r.txn_id);
    if (r.txn_id >= next_txn_id_) next_txn_id_ = r.txn_id + 1;
  }
  auto is_committed = [&committed](uint64_t txn) {
    for (uint64_t c : committed) {
      if (c == txn) return true;
    }
    return false;
  };
  // Pass 2: redo committed changes in log order.
  for (const LogRecord& r : records) {
    if (r.op == LogOp::kCommit || r.op == LogOp::kAbort ||
        r.op == LogOp::kBegin) {
      continue;
    }
    if (is_committed(r.txn_id)) ApplyCommittedRecord(r);
  }
  return Status::OK();
}

FootprintStats InPEngine::VolatileFootprint() const {
  FootprintStats stats;
  for (const auto& [id, table] : tables_) {
    (void)id;
    stats.index_bytes += table.primary->MemoryBytes();
    for (const auto& [sid, sec] : table.secondaries) {
      (void)sid;
      stats.index_bytes += sec->MemoryBytes();
    }
  }
  return stats;
}

FootprintStats InPEngine::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  stats.table_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.log_bytes = wal_->DurableSizeBytes();
  stats.checkpoint_bytes = fs_->FileBlockBytes(CheckpointFileName());
  for (const auto& [id, table] : tables_) {
    stats.index_bytes += table.primary->MemoryBytes();
    for (const auto& [sid, sec] : table.secondaries) {
      stats.index_bytes += sec->MemoryBytes();
    }
  }
  return stats;
}

}  // namespace nvmdb
