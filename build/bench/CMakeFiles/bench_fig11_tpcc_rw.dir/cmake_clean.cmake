file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tpcc_rw.dir/bench_fig11_tpcc_rw.cc.o"
  "CMakeFiles/bench_fig11_tpcc_rw.dir/bench_fig11_tpcc_rw.cc.o.d"
  "bench_fig11_tpcc_rw"
  "bench_fig11_tpcc_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tpcc_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
