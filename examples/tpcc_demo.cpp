/// TPC-C demo: run the full five-transaction mix on the NVM-aware
/// in-place-updates engine and print per-district consistency facts
/// afterwards (next order id vs max order id, order-line counts).
///
/// Usage: example_tpcc_demo [txns]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/tpcc.h"

using namespace nvmdb;

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? strtoull(argv[1], nullptr, 10) : 4000;

  DatabaseConfig cfg;
  cfg.num_partitions = 2;  // one warehouse per partition
  cfg.nvm_capacity = 512ull * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::LowNvm();
  cfg.latency.use_clwb = true;
  cfg.engine = EngineKind::kNvmInP;
  Database db(cfg);

  TpccConfig tcfg;
  tcfg.num_warehouses = cfg.num_partitions;
  tcfg.num_txns = txns;
  tcfg.customers_per_district = 100;
  tcfg.items = 1000;
  tcfg.initial_orders_per_district = 100;
  TpccWorkload workload(tcfg);

  printf("Loading %zu warehouses x %u districts x %u customers...\n",
         tcfg.num_warehouses, tcfg.districts_per_warehouse,
         tcfg.customers_per_district);
  if (!workload.Load(&db).ok()) {
    fprintf(stderr, "load failed\n");
    return 1;
  }

  printf("Running %llu transactions (NewOrder 45%%, Payment 43%%, "
         "OrderStatus/Delivery/StockLevel 4%% each)...\n",
         (unsigned long long)txns);
  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());
  printf("committed=%llu aborted=%llu (~1%% NewOrder rollbacks by spec) "
         "throughput=%.0f txn/sec\n\n",
         (unsigned long long)result.committed,
         (unsigned long long)result.aborted,
         result.Throughput(cfg.num_partitions));

  // Consistency audit per TPC-C clause 3.3.2.1: d_next_o_id - 1 equals the
  // largest order id in ORDERS for every district.
  for (size_t p = 0; p < db.num_partitions(); p++) {
    StorageEngine* engine = db.partition(p);
    const uint64_t w = p + 1;
    const uint64_t txn = engine->Begin();
    uint64_t orders = 0, lines = 0;
    bool consistent = true;
    for (uint64_t d = 1; d <= tcfg.districts_per_warehouse; d++) {
      Tuple district;
      engine->Select(txn, TpccWorkload::kDistrict, TpccWorkload::DKey(w, d),
                     &district);
      const uint64_t next_o = district.GetU64(11);
      uint64_t max_o = 0;
      engine->ScanRange(txn, TpccWorkload::kOrders,
                        TpccWorkload::OKey(w, d, 0),
                        TpccWorkload::OKey(w, d, 0xFFFFFF),
                        [&](uint64_t, const Tuple& t) {
                          max_o = std::max(max_o, t.GetU64(3));
                          orders++;
                          return true;
                        });
      engine->ScanRange(txn, TpccWorkload::kOrderLine,
                        TpccWorkload::OLKey(w, d, 0, 0),
                        TpccWorkload::OLKey(w, d, 0xFFFFFF, 15),
                        [&lines](uint64_t, const Tuple&) {
                          lines++;
                          return true;
                        });
      if (next_o != max_o + 1) consistent = false;
    }
    engine->Commit(txn);
    printf("warehouse %llu: %llu orders, %llu order lines, "
           "d_next_o_id consistency: %s\n",
           (unsigned long long)w, (unsigned long long)orders,
           (unsigned long long)lines, consistent ? "OK" : "VIOLATED");
  }
  printf("\nfootprint: %s\n", FormatBytes(db.Footprint().total()).c_str());
  return 0;
}
