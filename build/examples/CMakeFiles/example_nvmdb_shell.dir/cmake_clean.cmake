file(REMOVE_RECURSE
  "CMakeFiles/example_nvmdb_shell.dir/nvmdb_shell.cpp.o"
  "CMakeFiles/example_nvmdb_shell.dir/nvmdb_shell.cpp.o.d"
  "example_nvmdb_shell"
  "example_nvmdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nvmdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
