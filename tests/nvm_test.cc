#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "nvm/cache_sim.h"
#include "nvm/nvm_device.h"
#include "nvm/sync.h"

namespace nvmdb {
namespace {

/// Event counters wired into CacheCallbacks' raw-pointer interface.
struct EventCounts {
  std::atomic<uint64_t> write_backs{0};
  std::atomic<uint64_t> fills{0};

  CacheCallbacks AsCallbacks() {
    CacheCallbacks callbacks;
    callbacks.ctx = this;
    callbacks.write_back = [](void* ctx, uint64_t, size_t) {
      static_cast<EventCounts*>(ctx)->write_backs.fetch_add(
          1, std::memory_order_relaxed);
    };
    callbacks.fill = [](void* ctx, uint64_t, size_t) {
      static_cast<EventCounts*>(ctx)->fills.fetch_add(
          1, std::memory_order_relaxed);
    };
    return callbacks;
  }
};

// --- CacheSim ---------------------------------------------------------------

TEST(CacheSimTest, HitAfterMiss) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  EXPECT_EQ(cache.Access(0, 64, false), 1u);  // miss
  EXPECT_EQ(cache.Access(0, 64, false), 0u);  // hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheSimTest, MultiLineAccess) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  // 200 bytes spanning 4 lines (unaligned start).
  EXPECT_EQ(cache.Access(30, 200, false), 4u);
}

TEST(CacheSimTest, DirtyEvictionTriggersWriteBack) {
  CacheConfig cfg;
  cfg.capacity_bytes = 256;  // 4 lines total
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  // Dirty many distinct lines; capacity forces evictions of dirty lines.
  for (uint64_t i = 0; i < 64; i++) cache.Access(i * 64, 8, true);
  EXPECT_GT(events.write_backs.load(), 32u);
}

TEST(CacheSimTest, FlushWritesBackAndInvalidates) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  cache.Access(128, 8, true);
  EXPECT_EQ(cache.FlushRange(128, 8, /*invalidate=*/true), 1u);
  EXPECT_EQ(events.write_backs.load(), 1u);
  // Invalidated: next access misses again.
  const uint64_t fills_before = events.fills.load();
  cache.Access(128, 8, false);
  EXPECT_EQ(events.fills.load(), fills_before + 1);
}

TEST(CacheSimTest, ClwbKeepsLineResident) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  cache.Access(128, 8, true);
  cache.FlushRange(128, 8, /*invalidate=*/false);  // CLWB semantics
  EXPECT_EQ(cache.Access(128, 8, false), 0u);      // still cached
}

TEST(CacheSimTest, FlushCleanLineIsNoop) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  cache.Access(0, 8, false);
  EXPECT_EQ(cache.FlushRange(0, 8, true), 0u);
}

TEST(CacheSimTest, DropDirtyDiscardsWithoutWriteBack) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  cache.Access(0, 64, true);
  cache.DropDirty();
  EXPECT_EQ(events.write_backs.load(), 0u);
  EXPECT_EQ(cache.FlushRange(0, 64, true), 0u);  // nothing cached anymore
}

TEST(CacheSimTest, AccessExReportsWriteBacks) {
  CacheConfig cfg;
  cfg.capacity_bytes = 256;  // 4 lines total
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  CacheAccessResult total;
  for (uint64_t i = 0; i < 64; i++) {
    const CacheAccessResult r = cache.AccessEx(i * 64, 8, true);
    total.missed += r.missed;
    total.write_backs += r.write_backs;
  }
  // Every write-back surfaced by a callback was also reported to the
  // caller of AccessEx (this is what lets the device charge bandwidth
  // with one atomic add per access instead of one per line).
  EXPECT_EQ(events.write_backs.load(), total.write_backs);
  EXPECT_EQ(cache.write_backs(), total.write_backs);
  EXPECT_EQ(cache.misses(), total.missed);
}

// Satellite: the seed's counters were documented as "approximate under
// concurrency"; the per-bank rework makes them exact. Every access
// touches exactly one line here, so after the threads quiesce the
// identity hits + misses == total accesses must hold with no slack.
// Pinned to kShared: this is the multi-threaded discipline (and the test
// the TSan job watches); owner mode forbids concurrent access entirely.
TEST(CacheSimTest, CountersExactUnderConcurrency) {
  CacheConfig cfg;
  cfg.capacity_bytes = 64 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 8;
  cfg.mode = ConcurrencyMode::kShared;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());

  constexpr int kThreads = 8;
  constexpr uint64_t kAccessesPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, t]() {
      uint64_t x = 0x9e3779b9u + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kAccessesPerThread; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t addr = (x % (1u << 20)) & ~uint64_t{63};
        cache.Access(addr, 8, (x & 1) != 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kAccessesPerThread);
  EXPECT_EQ(cache.write_backs(), events.write_backs.load());
  EXPECT_EQ(cache.misses(), events.fills.load());
}

// --- Concurrency modes -------------------------------------------------------

TEST(CacheSimTest, ModeIsConstructorSelected) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  CacheSim owner(cfg, {});  // kOwner is the config default
  EXPECT_EQ(owner.mode(), ConcurrencyMode::kOwner);
  cfg.mode = ConcurrencyMode::kShared;
  CacheSim shared(cfg, {});
  EXPECT_EQ(shared.mode(), ConcurrencyMode::kShared);
}

TEST(CacheSimTest, EnvForcesSharedMode) {
  setenv("NVMDB_SHARED_CACHE", "1", 1);
  CacheConfig cfg;
  cfg.mode = ConcurrencyMode::kOwner;
  CacheSim forced(cfg, {});
  EXPECT_EQ(forced.mode(), ConcurrencyMode::kShared);
  setenv("NVMDB_SHARED_CACHE", "0", 1);
  CacheSim not_forced(cfg, {});
  EXPECT_EQ(not_forced.mode(), ConcurrencyMode::kOwner);
  unsetenv("NVMDB_SHARED_CACHE");
  CacheSim unset(cfg, {});
  EXPECT_EQ(unset.mode(), ConcurrencyMode::kOwner);
}

// Both modes run the identical cache model; only the synchronization
// differs. A single-threaded trace must therefore produce the same
// miss/flush return values, counters, and events in either mode.
TEST(CacheSimTest, OwnerAndSharedModelIdentical) {
  CacheConfig cfg;
  cfg.capacity_bytes = 8 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 4;
  EventCounts owner_events, shared_events;
  cfg.mode = ConcurrencyMode::kOwner;
  CacheSim owner(cfg, owner_events.AsCallbacks());
  cfg.mode = ConcurrencyMode::kShared;
  CacheSim shared(cfg, shared_events.AsCallbacks());

  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 20000; i++) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const uint64_t addr = x % (256 * 1024);
    const size_t size = 1 + (x >> 32) % 200;
    const bool flag = (x & 2) != 0;
    if ((x % 10) < 8) {
      EXPECT_EQ(owner.Access(addr, size, flag),
                shared.Access(addr, size, flag));
    } else {
      EXPECT_EQ(owner.FlushRange(addr, size, flag),
                shared.FlushRange(addr, size, flag));
    }
  }
  EXPECT_EQ(owner.hits(), shared.hits());
  EXPECT_EQ(owner.misses(), shared.misses());
  EXPECT_EQ(owner.write_backs(), shared.write_backs());
  EXPECT_EQ(owner_events.write_backs.load(), shared_events.write_backs.load());
  EXPECT_EQ(owner_events.fills.load(), shared_events.fills.load());
}

// Satellite: cross-thread access to an owner-mode cache must be caught in
// debug builds (the zero-synchronization fast path is only sound under
// strict thread confinement). Release builds compile the check out; the
// test skips there rather than exercising undefined behavior.
TEST(CacheSimOwnerDeathTest, CrossThreadAccessAbortsInDebug) {
  if (!CacheSim::kOwnerChecksEnabled) {
    GTEST_SKIP() << "owner checks compiled out (NDEBUG)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  CacheConfig cfg;
  cfg.num_banks = 1;
  cfg.mode = ConcurrencyMode::kOwner;
  CacheSim cache(cfg, {});
  cache.Access(0, 8, false);  // this thread becomes the owner
  EXPECT_DEATH(
      std::thread([&cache] { cache.Access(64, 8, false); }).join(),
      "owner-mode violation");
}

// --- NvmDevice ---------------------------------------------------------------

class NvmDeviceTest : public ::testing::Test {
 protected:
  NvmDeviceTest() : device_(1 << 20, NvmLatencyConfig::LowNvm()) {}
  NvmDevice device_;
};

TEST_F(NvmDeviceTest, WriteReadRoundTrip) {
  const char data[] = "hello nvm";
  device_.Write(100, data, sizeof(data));
  char out[sizeof(data)];
  device_.Read(100, out, sizeof(data));
  EXPECT_STREQ(out, "hello nvm");
}

TEST_F(NvmDeviceTest, UnpersistedWritesAreLostOnCrash) {
  const char data[] = "volatile!";
  device_.Write(4096, data, sizeof(data));
  device_.Crash();
  char out[sizeof(data)] = {};
  device_.Read(4096, out, sizeof(data));
  EXPECT_EQ(out[0], '\0');
}

TEST_F(NvmDeviceTest, PersistedWritesSurviveCrash) {
  const char data[] = "durable";
  device_.Write(4096, data, sizeof(data));
  device_.Persist(4096, sizeof(data));
  device_.Crash();
  char out[sizeof(data)] = {};
  device_.Read(4096, out, sizeof(data));
  EXPECT_STREQ(out, "durable");
}

TEST_F(NvmDeviceTest, EvictedDirtyLinesSurviveCrash) {
  // Fill far more lines than the cache holds; early lines get evicted
  // (written back) and must survive even without explicit Persist.
  CacheConfig small_cache;
  small_cache.capacity_bytes = 8 * 1024;
  small_cache.num_banks = 1;
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram(), small_cache);
  for (uint64_t i = 0; i < 1024; i++) {
    const uint64_t v = i * 3 + 1;
    device.Write(i * 64, &v, 8);
  }
  device.Crash();
  size_t survived = 0;
  for (uint64_t i = 0; i < 1024; i++) {
    uint64_t v = 0;
    device.Read(i * 64, &v, 8);
    if (v == i * 3 + 1) survived++;
  }
  // Most lines were evicted and written back; only the last ~128 lines
  // (cache capacity) could be lost.
  EXPECT_GT(survived, 800u);
  EXPECT_LT(survived, 1024u);
}

TEST_F(NvmDeviceTest, AtomicPersistWrite64) {
  device_.AtomicPersistWrite64(512, 0xDEADBEEFCAFEF00DULL);
  device_.Crash();
  uint64_t v = 0;
  device_.Read(512, &v, 8);
  EXPECT_EQ(v, 0xDEADBEEFCAFEF00DULL);
}

TEST_F(NvmDeviceTest, FlushAllMakesEverythingDurable) {
  for (uint64_t i = 0; i < 100; i++) device_.Write(i * 128, &i, 8);
  device_.FlushAll();
  device_.Crash();
  for (uint64_t i = 0; i < 100; i++) {
    uint64_t v = ~0ull;
    device_.Read(i * 128, &v, 8);
    EXPECT_EQ(v, i);
  }
}

TEST_F(NvmDeviceTest, CountersTrackLoadsAndStores) {
  const NvmCounters before = device_.counters();
  char buf[256];
  device_.Read(0, buf, 256);  // 4 line fills
  const NvmCounters after = device_.counters();
  EXPECT_GE(after.loads - before.loads, 4u);
}

TEST_F(NvmDeviceTest, MissesCostMoreThanHits) {
  char buf[64];
  device_.Read(8192, buf, 64);  // miss: full NVM read latency
  const uint64_t after_miss = device_.TotalStallNanos();
  EXPECT_GE(after_miss, device_.latency_config().read_latency_ns);
  device_.Read(8192, buf, 64);  // hit: only the cache-hit cost
  const uint64_t hit_cost = device_.TotalStallNanos() - after_miss;
  EXPECT_EQ(hit_cost, device_.latency_config().cache_hit_ns);
}

TEST_F(NvmDeviceTest, DramProfileChargesBaselineLatency) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  char buf[64];
  device.Read(0, buf, 64);
  EXPECT_EQ(device.TotalStallNanos(),
            NvmLatencyConfig::Dram().read_latency_ns);
}

TEST_F(NvmDeviceTest, HighLatencyChargesMoreThanLow) {
  NvmDevice low(1 << 20, NvmLatencyConfig::LowNvm());
  NvmDevice high(1 << 20, NvmLatencyConfig::HighNvm());
  char buf[4096];
  low.Read(0, buf, 4096);
  high.Read(0, buf, 4096);
  EXPECT_GT(high.TotalStallNanos(), low.TotalStallNanos() * 3);
}

TEST_F(NvmDeviceTest, SyncLatencySweepAffectsStall) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  uint64_t costs[2];
  int idx = 0;
  for (uint64_t lat : {10ull, 10000ull}) {
    ScopedSyncLatency sweep(&device, lat);
    const uint64_t before = device.TotalStallNanos();
    for (int i = 0; i < 100; i++) {
      uint64_t v = i;
      device.Write(i * 64, &v, 8);
      device.Persist(i * 64, 8);
    }
    costs[idx++] = device.TotalStallNanos() - before;
  }
  EXPECT_GT(costs[1], costs[0] * 50);
}

// The owner-mode device inlines a resident-hit fast path into Touch*;
// the same traffic driven through an owner and a shared device must
// produce bit-identical counters, stalls, and wear.
TEST_F(NvmDeviceTest, OwnerTouchFastPathMatchesSharedMode) {
  CacheConfig cache_cfg;
  cache_cfg.capacity_bytes = 64 * 1024;
  cache_cfg.mode = ConcurrencyMode::kOwner;
  NvmDevice owner(1 << 20, NvmLatencyConfig::LowNvm(), cache_cfg);
  cache_cfg.mode = ConcurrencyMode::kShared;
  NvmDevice shared(1 << 20, NvmLatencyConfig::LowNvm(), cache_cfg);
  ASSERT_EQ(owner.mode(), ConcurrencyMode::kOwner);
  ASSERT_EQ(shared.mode(), ConcurrencyMode::kShared);

  auto drive = [](NvmDevice& d) {
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 30000; i++) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const uint64_t off = x % ((1 << 20) - 512);
      const size_t n = 1 + (x >> 32) % 100;  // mostly single-line
      switch (x % 5) {
        case 0: d.TouchRead(d.PtrAt(off), n); break;
        case 1: d.TouchWrite(d.PtrAt(off), n); break;
        case 2:
          d.TouchVirtual(reinterpret_cast<void*>((uint64_t{1} << 45) + off),
                         n, (x & 2) != 0);
          break;
        case 3: d.Write(off, &x, 8); break;
        default: d.Persist(off, n); break;
      }
    }
  };
  drive(owner);
  drive(shared);

  const NvmCounters a = owner.counters();
  const NvmCounters b = shared.counters();
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.stall_ns, b.stall_ns);
  EXPECT_EQ(a.sync_calls, b.sync_calls);
  EXPECT_GT(a.hits, 0u);  // the fast path actually fired
  const WearStats wa = owner.wear();
  const WearStats wb = shared.wear();
  EXPECT_EQ(wa.total_line_writes, wb.total_line_writes);
  EXPECT_EQ(wa.max_line_writes, wb.max_line_writes);
  EXPECT_EQ(wa.lines_touched, wb.lines_touched);
}

TEST_F(NvmDeviceTest, OffsetPointerRoundTrip) {
  void* p = device_.PtrAt(12345);
  EXPECT_EQ(device_.OffsetOf(p), 12345u);
  EXPECT_TRUE(device_.Contains(p));
}

TEST(NvmPtrTest, ResolvesAgainstCurrentDevice) {
  NvmDevice device(1 << 16);
  NvmEnv::Set(&device);
  uint64_t* raw = reinterpret_cast<uint64_t*>(device.PtrAt(256));
  *raw = 77;
  NvmPtr<uint64_t> ptr = NvmPtr<uint64_t>::FromRaw(raw);
  EXPECT_FALSE(ptr.IsNull());
  EXPECT_EQ(*ptr, 77u);
  EXPECT_EQ(ptr.offset(), 256u);
  NvmPtr<uint64_t> null;
  EXPECT_TRUE(null.IsNull());
  EXPECT_EQ(null.get(), nullptr);
  NvmEnv::Set(nullptr);
}

}  // namespace
}  // namespace nvmdb
