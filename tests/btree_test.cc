#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "index/nv_btree.h"
#include "index/stx_btree.h"

namespace nvmdb {
namespace {

// --- BTree (volatile STX stand-in) -------------------------------------------

class BTreeNodeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeNodeSizeTest, InsertFindManyKeys) {
  BTree<uint64_t, uint64_t> tree(GetParam());
  const uint64_t n = 5000;
  for (uint64_t i = 0; i < n; i++) {
    EXPECT_TRUE(tree.Insert(i * 7 % n, i));
  }
  EXPECT_EQ(tree.size(), n);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Find(i * 7 % n, &v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(tree.Contains(n + 1));
}

TEST_P(BTreeNodeSizeTest, RandomOpsMatchStdMap) {
  BTree<uint64_t, uint64_t> tree(GetParam());
  std::map<uint64_t, uint64_t> model;
  Random rng(GetParam() * 31 + 1);
  for (int i = 0; i < 20000; i++) {
    const uint64_t key = rng.Uniform(2000);
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      const uint64_t value = rng.Next();
      tree.Insert(key, value);
      model[key] = value;
    } else if (op == 1) {
      EXPECT_EQ(tree.Erase(key), model.erase(key) > 0);
    } else {
      uint64_t v = 0;
      const auto it = model.find(key);
      EXPECT_EQ(tree.Find(key, &v), it != model.end());
      if (it != model.end()) EXPECT_EQ(v, it->second);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  // Full ordered iteration must match the model.
  auto it = model.begin();
  tree.ScanAll([&](uint64_t k, const uint64_t& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, BTreeNodeSizeTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 4096));

TEST(BTreeTest, InsertDuplicateOverwrites) {
  BTree<uint64_t, uint64_t> tree;
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 20));
  uint64_t v;
  tree.Find(1, &v);
  EXPECT_EQ(v, 20u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, ScanRange) {
  BTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 100; i++) tree.Insert(i * 2, i);
  std::vector<uint64_t> keys;
  tree.Scan(10, 20, [&](uint64_t k, const uint64_t&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<uint64_t>{10, 12, 14, 16, 18, 20}));
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 100; i++) tree.Insert(i, i);
  int visited = 0;
  tree.Scan(0, 99, [&](uint64_t, const uint64_t&) {
    return ++visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

TEST(BTreeTest, EraseToEmptyAndReinsert) {
  BTree<uint64_t, uint64_t> tree(64);
  for (uint64_t i = 0; i < 500; i++) tree.Insert(i, i);
  for (uint64_t i = 0; i < 500; i++) EXPECT_TRUE(tree.Erase(i));
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Erase(0));
  for (uint64_t i = 0; i < 100; i++) tree.Insert(i, i + 1);
  uint64_t v;
  ASSERT_TRUE(tree.Find(50, &v));
  EXPECT_EQ(v, 51u);
}

TEST(BTreeTest, MemoryBytesGrowsWithSize) {
  BTree<uint64_t, uint64_t> tree;
  const size_t empty = tree.MemoryBytes();
  for (uint64_t i = 0; i < 1000; i++) tree.Insert(i, i);
  EXPECT_GT(tree.MemoryBytes(), empty + 1000 * 8);
}

// --- NvBTree -------------------------------------------------------------------

class NvBTreeTest : public ::testing::Test {
 protected:
  NvBTreeTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_) {}

  NvmDevice device_;
  PmemAllocator allocator_;
};

TEST_F(NvBTreeTest, InsertFindErase) {
  NvBTree tree(&allocator_, "t");
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_TRUE(tree.Insert(3, 30));
  uint64_t v = 0;
  ASSERT_TRUE(tree.Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_FALSE(tree.Find(4, &v));
  EXPECT_TRUE(tree.Erase(5));
  EXPECT_FALSE(tree.Find(5, &v));
  EXPECT_FALSE(tree.Erase(5));
}

TEST_F(NvBTreeTest, OverwriteIsUpdate) {
  NvBTree tree(&allocator_, "t");
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 20));
  uint64_t v;
  tree.Find(1, &v);
  EXPECT_EQ(v, 20u);
}

class NvBTreeNodeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NvBTreeNodeSizeTest, ManyKeysWithSplitsMatchModel) {
  NvmDevice device(64ull * 1024 * 1024, NvmLatencyConfig::Dram());
  PmemAllocator allocator(&device);
  NvBTree tree(&allocator, "t", GetParam());
  std::map<uint64_t, uint64_t> model;
  Random rng(GetParam());
  for (int i = 0; i < 10000; i++) {
    const uint64_t key = rng.Uniform(3000);
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      const uint64_t value = rng.Uniform(1u << 30);
      tree.Insert(key, value);
      model[key] = value;
    } else if (op == 1) {
      EXPECT_EQ(tree.Erase(key), model.erase(key) > 0);
    } else {
      uint64_t v = 0;
      const auto it = model.find(key);
      ASSERT_EQ(tree.Find(key, &v), it != model.end()) << "key " << key;
      if (it != model.end()) EXPECT_EQ(v, it->second);
    }
  }
  EXPECT_EQ(tree.Count(), model.size());
  auto it = model.begin();
  tree.Scan(0, ~0ull - 1, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, NvBTreeNodeSizeTest,
                         ::testing::Values(128, 512, 2048));

TEST_F(NvBTreeTest, SurvivesCrashWithoutRebuild) {
  {
    NvBTree tree(&allocator_, "t", 256);
    for (uint64_t i = 0; i < 2000; i++) tree.Insert(i, i * 10);
    for (uint64_t i = 0; i < 500; i++) tree.Erase(i * 4);
  }
  device_.Crash();
  PmemAllocator recovered(&device_, /*format=*/false);
  NvBTree tree(&recovered, "t");
  for (uint64_t i = 0; i < 2000; i++) {
    uint64_t v = 0;
    if (i % 4 == 0 && i < 2000 && i / 4 < 500) {
      EXPECT_FALSE(tree.Find(i, &v)) << i;
    } else {
      ASSERT_TRUE(tree.Find(i, &v)) << i;
      EXPECT_EQ(v, i * 10);
    }
  }
}

TEST_F(NvBTreeTest, CrashMidInsertNeverCorrupts) {
  // Property: whatever prefix of inserts happened, after a crash the tree
  // is readable and contains a prefix-consistent subset.
  NvBTree tree(&allocator_, "t", 128);
  for (uint64_t i = 0; i < 300; i++) tree.Insert(i, i + 1);
  device_.Crash();
  PmemAllocator recovered(&device_, false);
  NvBTree after(&recovered, "t");
  size_t found = 0;
  for (uint64_t i = 0; i < 300; i++) {
    uint64_t v = 0;
    if (after.Find(i, &v)) {
      EXPECT_EQ(v, i + 1);
      found++;
    }
  }
  // Every persisted insert is intact (inserts persist synchronously here,
  // so all must be present).
  EXPECT_EQ(found, 300u);
}

TEST_F(NvBTreeTest, TombstoneCompactionOnSplit) {
  NvBTree tree(&allocator_, "t", 128);
  // Fill one leaf, delete most, keep inserting: splits must compact.
  for (uint64_t round = 0; round < 50; round++) {
    for (uint64_t i = 0; i < 6; i++) {
      tree.Insert(round * 6 + i, 1);
    }
    for (uint64_t i = 0; i < 5; i++) {
      tree.Erase(round * 6 + i);
    }
  }
  EXPECT_EQ(tree.Count(), 50u);
}

TEST_F(NvBTreeTest, AnonymousTreesViaHeaderOffset) {
  const uint64_t header = NvBTree::Create(&allocator_, 256);
  {
    NvBTree tree(&allocator_, header);
    tree.Insert(42, 4242);
  }
  NvBTree tree(&allocator_, header);
  uint64_t v = 0;
  ASSERT_TRUE(tree.Find(42, &v));
  EXPECT_EQ(v, 4242u);
}

TEST_F(NvBTreeTest, FreeAllReleasesNvm) {
  const AllocatorStats before = allocator_.stats();
  const uint64_t header = NvBTree::Create(&allocator_, 256);
  {
    NvBTree tree(&allocator_, header);
    for (uint64_t i = 0; i < 1000; i++) tree.Insert(i, i);
    tree.FreeAll();
  }
  const AllocatorStats after = allocator_.stats();
  EXPECT_EQ(after.total_used, before.total_used);
}

TEST_F(NvBTreeTest, ScanRangeBounds) {
  NvBTree tree(&allocator_, "t", 256);
  for (uint64_t i = 0; i < 1000; i++) tree.Insert(i * 3, i);
  std::vector<uint64_t> keys;
  tree.Scan(9, 21, [&](uint64_t k, uint64_t) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<uint64_t>{9, 12, 15, 18, 21}));
}

TEST_F(NvBTreeTest, NvmBytesGrowsWithContent) {
  NvBTree tree(&allocator_, "t", 256);
  const size_t empty = tree.NvmBytes();
  for (uint64_t i = 0; i < 2000; i++) tree.Insert(i, i);
  EXPECT_GT(tree.NvmBytes(), empty * 10);
}

}  // namespace
}  // namespace nvmdb
