#include "engine/log_engine.h"

#include <algorithm>
#include <cassert>

namespace nvmdb {

LogEngine::LogEngine(const EngineConfig& config)
    : config_(config), fs_(config.fs), allocator_(config.allocator) {
  allocator_->set_eager_state_sync(false);
  wal_ = std::make_unique<Wal>(fs_, config_.namespace_prefix + ".log.wal",
                               config_.group_commit_size);
}

Status LogEngine::CreateTable(const TableDef& def) {
  Table& table = tables_[def.table_id];
  table.def = def;
  table.mem = std::make_unique<MemTable>(allocator_,
                                         config_.btree_node_bytes);
  table.lsm = std::make_unique<LsmTree>(
      fs_, &table.def.schema,
      config_.namespace_prefix + ".log.t" + std::to_string(def.table_id),
      config_.lsm_level0_limit);
  NvmDevice* device = allocator_->device();
  auto hook = +[](void* ctx, const void* p, size_t n, bool w) {
    static_cast<NvmDevice*>(ctx)->TouchVirtual(p, n, w);
  };
  for (const auto& sec : def.secondary_indexes) {
    auto tree = std::make_unique<BTree<uint64_t, uint64_t>>(
        config_.btree_node_bytes);
    tree->SetAccessHook(hook, device);
    // Reserved node addresses keep the modeled counters ASLR-independent.
    tree->SetVirtualAllocator(
        +[](void* ctx, size_t n) {
          return static_cast<NvmDevice*>(ctx)->ReserveVirtual(n);
        },
        device);
    table.secondaries[sec.index_id] = std::move(tree);
  }
  return Status::OK();
}

LogEngine::Table* LogEngine::GetTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : &it->second;
}

bool LogEngine::GetTuple(Table* table, uint64_t key, Tuple* out) {
  // Tuple coalescing: gather records newest-first from the MemTable, then
  // from the LSM runs, stopping at the first conclusive record. The chain
  // collects into a reused record pool.
  DeltaRecordList& records = lookup_records_;
  records.Clear();
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mem->Collect(key, &records);
  }
  const bool concluded =
      !records.empty() &&
      records[records.size() - 1].kind != DeltaKind::kDelta;
  if (!concluded) {
    ScopedStallTag t(StallTag::kTuple);
    table->lsm->Collect(key, &records);
  }
  return MaterializeNewestFirst(table->def.schema, records, out);
}

bool LogEngine::KeyExists(Table* table, uint64_t key) {
  exists_scratch_.Reset(&table->def.schema);
  return GetTuple(table, key, &exists_scratch_);
}

Status LogEngine::Insert(uint64_t txn_id, uint32_t table_id,
                         const Tuple& tuple) {
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t key = tuple.Key();
  if (KeyExists(table, key)) return Status::InvalidArgument("duplicate key");

  wal_after_.clear();
  tuple.AppendInlined(&wal_after_);
  {
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kInsert;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    record.after = Slice(wal_after_);
    wal_->Append(record);
  }
  TxnAction action;
  action.table_id = table_id;
  action.key = key;
  {
    ScopedStallTag t(StallTag::kTuple);
    action.record_off =
        table->mem->Push(key, DeltaKind::kFull, Slice(wal_after_));
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    for (const auto& sec : table->def.secondary_indexes) {
      const uint64_t comp =
          SecondaryComposite(SecondaryKeyHash(tuple, sec), key);
      table->secondaries[sec.index_id]->Insert(comp, key);
      action.sec_added.emplace_back(sec.index_id, comp);
    }
  }
  txn_actions_.push_back(std::move(action));
  return Status::OK();
}

Status LogEngine::Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         const std::vector<ColumnUpdate>& updates) {
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");

  bool touches_secondary = false;
  for (const ColumnUpdate& u : updates) {
    for (const auto& sec : table->def.secondary_indexes) {
      for (size_t c : sec.key_columns) {
        if (c == u.column) touches_secondary = true;
      }
    }
  }

  old_tuple_.Reset(&table->def.schema);
  if (!GetTuple(table, key, &old_tuple_)) return Status::NotFound();

  wal_after_.clear();
  EncodeUpdatesTo(table->def.schema, updates, &wal_after_);
  {
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kUpdate;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    wal_before_.clear();
    old_tuple_.AppendInlined(&wal_before_);
    record.before = Slice(wal_before_);
    record.after = Slice(wal_after_);
    wal_->Append(record);
  }
  TxnAction action;
  action.table_id = table_id;
  action.key = key;
  {
    ScopedStallTag t(StallTag::kTuple);
    action.record_off = table->mem->Push(key, DeltaKind::kDelta,
                                         Slice(wal_after_));
  }
  if (touches_secondary) {
    ScopedStallTag t(StallTag::kIndex);
    new_tuple_ = old_tuple_;
    ApplyUpdates(&new_tuple_, updates);
    for (const auto& sec : table->def.secondary_indexes) {
      const uint64_t old_comp =
          SecondaryComposite(SecondaryKeyHash(old_tuple_, sec), key);
      const uint64_t new_comp =
          SecondaryComposite(SecondaryKeyHash(new_tuple_, sec), key);
      if (old_comp == new_comp) continue;
      table->secondaries[sec.index_id]->Erase(old_comp);
      table->secondaries[sec.index_id]->Insert(new_comp, key);
      action.sec_removed.emplace_back(sec.index_id, old_comp);
      action.sec_added.emplace_back(sec.index_id, new_comp);
    }
  }
  txn_actions_.push_back(std::move(action));
  return Status::OK();
}

Status LogEngine::Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) {
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  old_tuple_.Reset(&table->def.schema);
  if (!GetTuple(table, key, &old_tuple_)) return Status::NotFound();

  {
    ScopedStallTag t(StallTag::kWal);
    LogRecordRef record;
    record.op = LogOp::kDelete;
    record.txn_id = txn_id;
    record.table_id = table_id;
    record.key = key;
    wal_before_.clear();
    old_tuple_.AppendInlined(&wal_before_);
    record.before = Slice(wal_before_);
    wal_->Append(record);
  }
  TxnAction action;
  action.table_id = table_id;
  action.key = key;
  {
    ScopedStallTag t(StallTag::kTuple);
    // Tombstone marker in the MemTable (Table 2).
    action.record_off =
        table->mem->Push(key, DeltaKind::kTombstone, Slice());
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    for (const auto& sec : table->def.secondary_indexes) {
      const uint64_t comp =
          SecondaryComposite(SecondaryKeyHash(old_tuple_, sec), key);
      table->secondaries[sec.index_id]->Erase(comp);
      action.sec_removed.emplace_back(sec.index_id, comp);
    }
  }
  txn_actions_.push_back(std::move(action));
  return Status::OK();
}

Status LogEngine::Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         Tuple* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  if (!GetTuple(table, key, out)) return Status::NotFound();
  return Status::OK();
}

Status LogEngine::ScanRange(
    uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Tuple&)>& fn) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  std::vector<uint64_t> keys;
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mem->CollectKeysInRange(lo, hi, &keys);
    table->lsm->CollectKeysInRange(lo, hi, &keys);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  for (uint64_t key : keys) {
    Tuple t(&table->def.schema);
    if (!GetTuple(table, key, &t)) continue;  // dead key
    if (!fn(key, t)) break;
  }
  return Status::OK();
}

Status LogEngine::SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                  uint32_t index_id,
                                  const std::vector<Value>& key_values,
                                  std::vector<Tuple>* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  auto sec_it = table->secondaries.find(index_id);
  if (sec_it == table->secondaries.end()) {
    return Status::InvalidArgument("no such index");
  }
  const SecondaryIndexDef* def = nullptr;
  for (const auto& d : table->def.secondary_indexes) {
    if (d.index_id == index_id) def = &d;
  }
  const uint64_t h = SecondaryKeyHash(table->def.schema, *def, key_values);
  std::vector<uint64_t> pks;
  {
    ScopedStallTag t(StallTag::kIndex);
    sec_it->second->Scan(SecondaryRangeLo(h), SecondaryRangeHi(h),
                         [&pks](uint64_t, const uint64_t& pk) {
                           pks.push_back(pk);
                           return true;
                         });
  }
  for (uint64_t pk : pks) {
    Tuple t(&table->def.schema);
    if (!GetTuple(table, pk, &t)) continue;
    if (SecondaryKeyHash(t, *def) == h) out->push_back(std::move(t));
  }
  return Status::OK();
}

void LogEngine::FlushAllMemTables() {
  ScopedStallTag t(StallTag::kCheckpoint);
  for (auto& [table_id, table] : tables_) {
    (void)table_id;
    if (table.mem->KeyCount() == 0) continue;
    std::vector<std::pair<uint64_t, DeltaRecord>> entries;
    table.mem->ForEachKey(
        [&](uint64_t key, const std::vector<DeltaRecord>& records) {
          entries.emplace_back(
              key, CoalesceNewestFirst(table.def.schema, records));
        });
    auto sst =
        SsTable::Build(fs_, table.lsm->NextFlushFileName(), entries);
    assert(sst != nullptr);
    table.lsm->AddLevel0(std::move(sst));
    table.mem->ReleaseAll();
    table.lsm->MaybeCompact();
  }
  // MemTable contents are now durable in SSTables; the WAL can shrink.
  wal_->Flush();
  wal_->Truncate();
}

Status LogEngine::Commit(uint64_t txn_id) {
  {
    ScopedStallTag t(StallTag::kWal);
    wal_->LogCommit(txn_id);
  }
  txn_actions_.clear();
  committed_txns_++;
  active_txn_ = 0;
  if (TotalMemTableBytes() > config_.memtable_threshold_bytes) {
    FlushAllMemTables();
  }
  return Status::OK();
}

Status LogEngine::Abort(uint64_t txn_id) {
  {
    ScopedStallTag t(StallTag::kWal);
    LogRecord record;
    record.op = LogOp::kAbort;
    record.txn_id = txn_id;
    wal_->Append(record);
  }
  for (auto it = txn_actions_.rbegin(); it != txn_actions_.rend(); ++it) {
    Table* table = GetTable(it->table_id);
    table->mem->PopNewest(it->key, it->record_off);
    for (const auto& [idx, comp] : it->sec_added) {
      table->secondaries[idx]->Erase(comp);
    }
    for (const auto& [idx, comp] : it->sec_removed) {
      table->secondaries[idx]->Insert(comp, it->key);
    }
  }
  txn_actions_.clear();
  active_txn_ = 0;
  return Status::OK();
}

Status LogEngine::Checkpoint() {
  FlushAllMemTables();
  return Status::OK();
}

size_t LogEngine::TotalMemTableBytes() const {
  size_t bytes = 0;
  for (const auto& [id, table] : tables_) {
    (void)id;
    bytes += table.mem->ApproxBytes();
  }
  return bytes;
}

void LogEngine::RebuildSecondaryIndexes() {
  for (auto& [table_id, table] : tables_) {
    (void)table_id;
    if (table.def.secondary_indexes.empty()) continue;
    std::vector<uint64_t> keys;
    table.mem->CollectKeysInRange(0, ~0ull, &keys);
    table.lsm->CollectKeysInRange(0, ~0ull, &keys);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (uint64_t key : keys) {
      Tuple t(&table.def.schema);
      if (!GetTuple(&table, key, &t)) continue;
      for (const auto& sec : table.def.secondary_indexes) {
        table.secondaries[sec.index_id]->Insert(
            SecondaryComposite(SecondaryKeyHash(t, sec), key), key);
      }
    }
  }
}

Status LogEngine::Recover() {
  ScopedStallTag timer(StallTag::kRecovery);
  // Re-open the SSTables, then rebuild the MemTable from the WAL: replay
  // committed transactions only (Section 3.3's recovery).
  for (auto& [id, table] : tables_) {
    (void)id;
    Status s = table.lsm->Recover();
    if (!s.ok()) return s;
  }
  const std::vector<LogRecord> records = wal_->ReadAll();
  std::vector<uint64_t> committed;
  for (const LogRecord& r : records) {
    if (r.op == LogOp::kCommit) committed.push_back(r.txn_id);
    if (r.txn_id >= next_txn_id_) next_txn_id_ = r.txn_id + 1;
  }
  auto is_committed = [&committed](uint64_t txn) {
    for (uint64_t c : committed) {
      if (c == txn) return true;
    }
    return false;
  };
  for (const LogRecord& r : records) {
    if (!is_committed(r.txn_id)) continue;
    Table* table = GetTable(r.table_id);
    if (table == nullptr) continue;
    switch (r.op) {
      case LogOp::kInsert:
        table->mem->Push(r.key, DeltaKind::kFull, Slice(r.after));
        break;
      case LogOp::kUpdate:
        table->mem->Push(r.key, DeltaKind::kDelta, Slice(r.after));
        break;
      case LogOp::kDelete:
        table->mem->Push(r.key, DeltaKind::kTombstone, Slice());
        break;
      default:
        break;
    }
  }
  RebuildSecondaryIndexes();
  return Status::OK();
}

FootprintStats LogEngine::VolatileFootprint() const {
  FootprintStats stats;
  for (const auto& [id, table] : tables_) {
    (void)id;
    for (const auto& [sid, sec] : table.secondaries) {
      (void)sid;
      stats.index_bytes += sec->MemoryBytes();
    }
  }
  return stats;
}

FootprintStats LogEngine::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  // MemTable records live in allocator memory tagged kTable.
  stats.other_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.log_bytes = wal_->DurableSizeBytes();
  for (const auto& [id, table] : tables_) {
    (void)id;
    stats.table_bytes += table.lsm->FileBytes();
    for (const auto& [sid, sec] : table.secondaries) {
      (void)sid;
      stats.index_bytes += sec->MemoryBytes();
    }
  }
  return stats;
}

}  // namespace nvmdb
