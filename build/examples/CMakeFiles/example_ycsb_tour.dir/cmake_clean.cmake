file(REMOVE_RECURSE
  "CMakeFiles/example_ycsb_tour.dir/ycsb_tour.cpp.o"
  "CMakeFiles/example_ycsb_tour.dir/ycsb_tour.cpp.o.d"
  "example_ycsb_tour"
  "example_ycsb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ycsb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
