#include <gtest/gtest.h>

#include "common/crc32.h"
#include "engine/checkpoint.h"
#include "engine/nv_wal.h"
#include "engine/wal.h"

namespace nvmdb {
namespace {

// --- Record encoding -----------------------------------------------------------

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord record;
  record.op = LogOp::kUpdate;
  record.txn_id = 42;
  record.table_id = 7;
  record.key = 123456789;
  record.before = "old value";
  record.after = "new value";
  std::string bytes;
  EncodeLogRecord(record, &bytes);

  LogRecord out;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeLogRecord(bytes.data(), bytes.size(), &out, &consumed));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.op, LogOp::kUpdate);
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.table_id, 7u);
  EXPECT_EQ(out.key, 123456789u);
  EXPECT_EQ(out.before, "old value");
  EXPECT_EQ(out.after, "new value");
}

TEST(LogRecordTest, DecodeRejectsCorruption) {
  LogRecord record;
  record.op = LogOp::kInsert;
  record.after = "payload";
  std::string bytes;
  EncodeLogRecord(record, &bytes);
  bytes[10] ^= 0xFF;
  LogRecord out;
  size_t consumed;
  EXPECT_FALSE(
      DecodeLogRecord(bytes.data(), bytes.size(), &out, &consumed));
}

TEST(LogRecordTest, DecodeRejectsTruncation) {
  LogRecord record;
  record.after = std::string(100, 'x');
  std::string bytes;
  EncodeLogRecord(record, &bytes);
  LogRecord out;
  size_t consumed;
  EXPECT_FALSE(DecodeLogRecord(bytes.data(), bytes.size() - 10, &out,
                               &consumed));
  EXPECT_FALSE(DecodeLogRecord(bytes.data(), 4, &out, &consumed));
}

namespace {
/// A record whose payload is `payload` verbatim, framed with a *valid*
/// CRC — the parser's structural checks must reject malformed payloads on
/// their own, not lean on CRC mismatches.
std::string FrameWithValidCrc(const std::string& payload) {
  std::string bytes;
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  bytes.append(reinterpret_cast<const char*>(&crc), 4);
  bytes.append(reinterpret_cast<const char*>(&len), 4);
  bytes.append(payload);
  return bytes;
}

std::string FixedFields(uint32_t blen_value) {
  std::string payload;
  payload.push_back(static_cast<char>(LogOp::kInsert));
  const uint64_t txn = 1, key = 2;
  const uint32_t table = 3;
  payload.append(reinterpret_cast<const char*>(&txn), 8);
  payload.append(reinterpret_cast<const char*>(&table), 4);
  payload.append(reinterpret_cast<const char*>(&key), 8);
  payload.append(reinterpret_cast<const char*>(&blen_value), 4);
  return payload;  // 25 bytes: everything up to and including blen
}
}  // namespace

TEST(LogRecordTest, DecodeRejectsPayloadShorterThanFixedFields) {
  // 25..28-byte payloads carry valid CRCs but cannot hold the mandatory
  // alen field; the old `len >= 25` bound over-read them.
  for (size_t len = 25; len <= 28; len++) {
    std::string payload = FixedFields(0);
    payload.resize(len, '\0');
    const std::string bytes = FrameWithValidCrc(payload);
    LogRecord out;
    size_t consumed;
    EXPECT_FALSE(
        DecodeLogRecord(bytes.data(), bytes.size(), &out, &consumed))
        << "accepted " << len << "-byte payload";
  }
  // The 29-byte minimum (empty before/after) is well-formed.
  std::string payload = FixedFields(0);
  const uint32_t alen = 0;
  payload.append(reinterpret_cast<const char*>(&alen), 4);
  const std::string bytes = FrameWithValidCrc(payload);
  LogRecord out;
  size_t consumed;
  ASSERT_TRUE(DecodeLogRecord(bytes.data(), bytes.size(), &out, &consumed));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_TRUE(out.before.empty());
  EXPECT_TRUE(out.after.empty());
}

TEST(LogRecordTest, DecodeRejectsOverflowingBeforeLength) {
  // blen is an untrusted u32; near-max values used to wrap the bounds
  // arithmetic. They must be rejected, never used to size a read.
  for (uint32_t blen : {0xFFFFFFFFu, 0xFFFFFFFBu, 30u}) {
    std::string payload = FixedFields(blen);
    const uint32_t alen = 0;
    payload.append(reinterpret_cast<const char*>(&alen), 4);
    const std::string bytes = FrameWithValidCrc(payload);
    LogRecord out;
    size_t consumed;
    EXPECT_FALSE(
        DecodeLogRecord(bytes.data(), bytes.size(), &out, &consumed))
        << "accepted blen " << blen;
  }
}

TEST(LogRecordTest, DecodeRejectsSlackAfterImages) {
  // blen/alen must exactly tile the payload: a short alen silently
  // dropping trailing bytes is a framing error, not a shorter record.
  LogRecord record;
  record.op = LogOp::kUpdate;
  record.before = "before!";
  record.after = "after!!";
  std::string bytes;
  EncodeLogRecord(record, &bytes);
  std::string payload = bytes.substr(8);
  const size_t alen_pos = 1 + 8 + 4 + 8 + 4 + record.before.size();
  uint32_t short_alen = static_cast<uint32_t>(record.after.size() - 2);
  memcpy(payload.data() + alen_pos, &short_alen, 4);
  const std::string reframed = FrameWithValidCrc(payload);
  LogRecord out;
  size_t consumed;
  EXPECT_FALSE(
      DecodeLogRecord(reframed.data(), reframed.size(), &out, &consumed));
}

// --- Filesystem WAL --------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_) {}

  LogRecord MakeRecord(uint64_t txn, LogOp op = LogOp::kInsert) {
    LogRecord r;
    r.op = op;
    r.txn_id = txn;
    r.table_id = 1;
    r.key = txn * 10;
    r.after = "payload-" + std::to_string(txn);
    return r;
  }

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
};

TEST_F(WalTest, AppendFlushReadAll) {
  Wal wal(&fs_, "test.wal", 1);
  wal.Append(MakeRecord(1));
  wal.LogCommit(1);
  wal.Append(MakeRecord(2));
  wal.LogCommit(2);
  const auto records = wal.ReadAll();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].txn_id, 1u);
  EXPECT_EQ(records[1].op, LogOp::kCommit);
  EXPECT_EQ(records[3].op, LogOp::kCommit);
}

TEST_F(WalTest, GroupCommitFlushesEveryNth) {
  Wal wal(&fs_, "test.wal", 4);
  for (uint64_t t = 1; t <= 3; t++) {
    wal.Append(MakeRecord(t));
    EXPECT_FALSE(wal.LogCommit(t));
  }
  EXPECT_EQ(wal.last_durable_txn(), 0u);
  wal.Append(MakeRecord(4));
  EXPECT_TRUE(wal.LogCommit(4));  // group full -> forced
  EXPECT_EQ(wal.last_durable_txn(), 4u);
}

TEST_F(WalTest, UnflushedRecordsLostOnCrash) {
  {
    Wal wal(&fs_, "test.wal", 100);
    wal.Append(MakeRecord(1));
    wal.LogCommit(1);
    wal.Flush();
    wal.Append(MakeRecord(2));
    wal.LogCommit(2);  // group not full, not flushed
  }
  device_.Crash();
  PmemAllocator allocator(&device_, false);
  Pmfs fs(&allocator);
  Wal wal(&fs, "test.wal", 100);
  const auto records = wal.ReadAll();
  ASSERT_EQ(records.size(), 2u);  // txn 1 + its commit only
  EXPECT_EQ(records[0].txn_id, 1u);
}

TEST_F(WalTest, TornTailStopsParsingCleanly) {
  Wal wal(&fs_, "test.wal", 1);
  wal.Append(MakeRecord(1));
  wal.LogCommit(1);
  // Simulate a torn append: write garbage at the end of the file.
  Pmfs::Fd fd = fs_.Open("test.wal", false);
  fs_.Append(fd, "\x10\x20\x30\x40 torn bytes", 15);
  fs_.Fsync(fd);
  fs_.Close(fd);
  const auto records = wal.ReadAll();
  EXPECT_EQ(records.size(), 2u);
}

TEST_F(WalTest, LogCommitChargesBufferTrafficLikeAppend) {
  // Commit records used to be encoded straight into the buffer without
  // TouchVirtual, leaving their NVM traffic unmodeled while Append's was.
  Wal wal(&fs_, "test.wal", 100);  // group never fills; no flush noise
  wal.Append(MakeRecord(1));
  const NvmCounters before = device_.counters();
  wal.LogCommit(1);
  const NvmCounters after = device_.counters();
  EXPECT_GT(after.hits + after.loads, before.hits + before.loads)
      << "commit record generated no modeled cache traffic";
}

TEST_F(WalTest, TruncateEmptiesLog) {
  Wal wal(&fs_, "test.wal", 1);
  wal.Append(MakeRecord(1));
  wal.LogCommit(1);
  EXPECT_GT(wal.DurableSizeBytes(), 0u);
  wal.Truncate();
  EXPECT_EQ(wal.DurableSizeBytes(), 0u);
  EXPECT_TRUE(wal.ReadAll().empty());
}

// --- Non-volatile WAL --------------------------------------------------------------

class NvWalTest : public WalTest {};

TEST_F(NvWalTest, PushAndIterateNewestFirst) {
  NvWal wal(&allocator_, "nvwal");
  wal.Push("first", 5);
  wal.Push("second", 6);
  std::vector<std::string> seen;
  wal.ForEach([&](const uint8_t* p, size_t n) {
    seen.emplace_back(reinterpret_cast<const char*>(p), n);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "second");
  EXPECT_EQ(seen[1], "first");
  EXPECT_EQ(wal.EntryCount(), 2u);
}

TEST_F(NvWalTest, ClearEmptiesAndReclaims) {
  NvWal wal(&allocator_, "nvwal");
  const AllocatorStats before = allocator_.stats();
  wal.Push("data", 4);
  wal.Clear();
  EXPECT_TRUE(wal.Empty());
  const AllocatorStats after = allocator_.stats();
  EXPECT_EQ(after.total_used, before.total_used);
}

TEST_F(NvWalTest, EntriesSurviveCrashImmediately) {
  {
    NvWal wal(&allocator_, "nvwal");
    wal.Push("undo me", 7);
  }
  device_.Crash();
  PmemAllocator allocator(&device_, false);
  NvWal wal(&allocator, "nvwal");
  std::vector<std::string> seen;
  wal.ForEach([&](const uint8_t* p, size_t n) {
    seen.emplace_back(reinterpret_cast<const char*>(p), n);
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "undo me");
}

TEST_F(NvWalTest, ClearedWalStaysEmptyAfterCrash) {
  {
    NvWal wal(&allocator_, "nvwal");
    wal.Push("gone", 4);
    wal.Clear();
  }
  device_.Crash();
  PmemAllocator allocator(&device_, false);
  NvWal wal(&allocator, "nvwal");
  EXPECT_TRUE(wal.Empty());
  EXPECT_EQ(wal.EntryCount(), 0u);
}

TEST_F(NvWalTest, NvmBytesTracksEntries) {
  NvWal wal(&allocator_, "nvwal");
  const uint64_t empty = wal.NvmBytes();
  wal.Push(std::string(100, 'x').data(), 100);
  EXPECT_GE(wal.NvmBytes(), empty + 100);
}

// --- Checkpoints --------------------------------------------------------------------

TEST_F(WalTest, CheckpointRoundTrip) {
  std::string payload;
  for (int i = 0; i < 1000; i++) payload += "tuple-" + std::to_string(i);
  ASSERT_TRUE(WriteCheckpoint(&fs_, "db.ckpt", payload).ok());
  std::string out;
  ASSERT_TRUE(ReadCheckpoint(&fs_, "db.ckpt", &out).ok());
  EXPECT_EQ(out, payload);
}

TEST_F(WalTest, CheckpointIsCompressed) {
  const std::string payload(100000, 'a');
  ASSERT_TRUE(WriteCheckpoint(&fs_, "db.ckpt", payload).ok());
  EXPECT_LT(fs_.FileBlockBytes("db.ckpt"), payload.size() / 4);
}

TEST_F(WalTest, MissingCheckpointIsNotFound) {
  std::string out;
  EXPECT_TRUE(ReadCheckpoint(&fs_, "absent.ckpt", &out).IsNotFound());
}

TEST_F(WalTest, CorruptCheckpointDetected) {
  ASSERT_TRUE(WriteCheckpoint(&fs_, "db.ckpt", "hello world data").ok());
  Pmfs::Fd fd = fs_.Open("db.ckpt", false);
  char byte = 0x5A;
  fs_.Write(fd, 14, &byte, 1);
  fs_.Fsync(fd);
  fs_.Close(fd);
  std::string out;
  EXPECT_TRUE(ReadCheckpoint(&fs_, "db.ckpt", &out).IsCorruption());
}

TEST_F(WalTest, CheckpointOverwriteKeepsLatest) {
  WriteCheckpoint(&fs_, "db.ckpt", "version one");
  WriteCheckpoint(&fs_, "db.ckpt", "version two");
  std::string out;
  ASSERT_TRUE(ReadCheckpoint(&fs_, "db.ckpt", &out).ok());
  EXPECT_EQ(out, "version two");
}

}  // namespace
}  // namespace nvmdb
