# Empty compiler generated dependencies file for bench_fig05_07_ycsb.
# This may be replaced when dependencies are built.
