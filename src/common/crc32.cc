#include "common/crc32.h"

#include <array>

namespace nvmdb {
namespace {

// CRC-32C polynomial (reflected): 0x82F63B78.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; i++) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace nvmdb
