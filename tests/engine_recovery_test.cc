#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "test_util.h"

namespace nvmdb {
namespace {

using testutil::MakeDb;
using testutil::SimpleTable;
using testutil::SimpleTuple;

/// Crash/recovery semantics, uniformly across all six engines: whatever an
/// engine acknowledged as durable must be there after Crash()+Recover(),
/// and whatever was in flight must not.
class EngineRecoveryTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    db_ = MakeDb(GetParam());
    def_ = SimpleTable();
    ASSERT_TRUE(db_->CreateTable(def_).ok());
  }

  StorageEngine* engine() { return db_->partition(0); }

  void CommitTuple(uint64_t key, const std::string& name, uint64_t count) {
    const uint64_t txn = engine()->Begin();
    ASSERT_TRUE(
        engine()
            ->Insert(txn, 1, SimpleTuple(&def_.schema, key, name, count))
            .ok());
    engine()->Commit(txn);
  }

  void CrashAndRecover() {
    db_->Crash();
    db_->Recover();
  }

  std::unique_ptr<Database> db_;
  TableDef def_;
};

TEST_P(EngineRecoveryTest, DrainedCommitsSurviveCrash) {
  for (uint64_t i = 0; i < 50; i++) {
    CommitTuple(i, "n" + std::to_string(i), i * 2);
  }
  db_->Drain();  // force group commits / WAL flush to storage
  CrashAndRecover();

  const uint64_t txn = engine()->Begin();
  for (uint64_t i = 0; i < 50; i++) {
    Tuple out;
    ASSERT_TRUE(engine()->Select(txn, 1, i, &out).ok()) << "key " << i;
    EXPECT_EQ(out.GetString(1), "n" + std::to_string(i));
    EXPECT_EQ(out.GetU64(3), i * 2);
  }
  engine()->Commit(txn);
}

TEST_P(EngineRecoveryTest, MidTransactionCrashIsUndone) {
  CommitTuple(1, "committed", 10);
  db_->Drain();

  // In-flight transaction at the time of the power failure.
  const uint64_t txn = engine()->Begin();
  engine()->Insert(txn, 1, SimpleTuple(&def_.schema, 2, "phantom"));
  engine()->Update(txn, 1, 1, {{3, Value::U64(999)}});
  // no Commit
  CrashAndRecover();

  const uint64_t txn2 = engine()->Begin();
  Tuple out;
  ASSERT_TRUE(engine()->Select(txn2, 1, 1, &out).ok());
  EXPECT_EQ(out.GetU64(3), 10u);  // update rolled back
  EXPECT_TRUE(engine()->Select(txn2, 1, 2, &out).IsNotFound());
  engine()->Commit(txn2);
}

TEST_P(EngineRecoveryTest, MidTransactionDeleteIsUndone) {
  CommitTuple(5, "survivor", 1);
  db_->Drain();
  const uint64_t txn = engine()->Begin();
  engine()->Delete(txn, 1, 5);
  CrashAndRecover();

  const uint64_t txn2 = engine()->Begin();
  Tuple out;
  ASSERT_TRUE(engine()->Select(txn2, 1, 5, &out).ok());
  EXPECT_EQ(out.GetString(1), "survivor");
  engine()->Commit(txn2);
}

TEST_P(EngineRecoveryTest, UpdatesAndDeletesSurviveCrash) {
  for (uint64_t i = 0; i < 20; i++) CommitTuple(i, "v1", 1);
  {
    const uint64_t txn = engine()->Begin();
    ASSERT_TRUE(
        engine()->Update(txn, 1, 3, {{1, Value::Str("v2")}}).ok());
    engine()->Commit(txn);
  }
  {
    const uint64_t txn = engine()->Begin();
    ASSERT_TRUE(engine()->Delete(txn, 1, 4).ok());
    engine()->Commit(txn);
  }
  db_->Drain();
  CrashAndRecover();

  const uint64_t txn = engine()->Begin();
  Tuple out;
  ASSERT_TRUE(engine()->Select(txn, 1, 3, &out).ok());
  EXPECT_EQ(out.GetString(1), "v2");
  EXPECT_TRUE(engine()->Select(txn, 1, 4, &out).IsNotFound());
  ASSERT_TRUE(engine()->Select(txn, 1, 5, &out).ok());
  engine()->Commit(txn);
}

TEST_P(EngineRecoveryTest, SecondaryIndexUsableAfterRecovery) {
  CommitTuple(1, "findme", 0);
  CommitTuple(2, "findme", 0);
  CommitTuple(3, "other", 0);
  db_->Drain();
  CrashAndRecover();

  const uint64_t txn = engine()->Begin();
  std::vector<Tuple> matches;
  ASSERT_TRUE(
      engine()
          ->SelectSecondary(txn, 1, 0, {Value::Str("findme")}, &matches)
          .ok());
  engine()->Commit(txn);
  EXPECT_EQ(matches.size(), 2u);
}

TEST_P(EngineRecoveryTest, RepeatedCrashRecoverCycles) {
  std::map<uint64_t, uint64_t> model;
  Random rng(static_cast<uint64_t>(GetParam()) * 17 + 5);
  for (int cycle = 0; cycle < 5; cycle++) {
    for (int i = 0; i < 30; i++) {
      const uint64_t key = rng.Uniform(100);
      const uint64_t txn = engine()->Begin();
      if (model.count(key)) {
        const uint64_t count = rng.Uniform(1000);
        if (engine()->Update(txn, 1, key, {{3, Value::U64(count)}}).ok()) {
          model[key] = count;
        }
      } else {
        const uint64_t count = rng.Uniform(1000);
        if (engine()
                ->Insert(txn, 1, SimpleTuple(&def_.schema, key, "x", count))
                .ok()) {
          model[key] = count;
        }
      }
      engine()->Commit(txn);
    }
    db_->Drain();
    CrashAndRecover();
    const uint64_t txn = engine()->Begin();
    for (const auto& [key, count] : model) {
      Tuple out;
      ASSERT_TRUE(engine()->Select(txn, 1, key, &out).ok())
          << "cycle " << cycle << " key " << key;
      EXPECT_EQ(out.GetU64(3), count);
    }
    engine()->Commit(txn);
  }
}

TEST_P(EngineRecoveryTest, RecoveryIsIdempotent) {
  CommitTuple(1, "stable", 7);
  db_->Drain();
  const uint64_t txn = engine()->Begin();
  engine()->Update(txn, 1, 1, {{3, Value::U64(8)}});
  db_->Crash();
  db_->Recover();
  // Crash again immediately (recovery half-done scenarios collapse to
  // running recovery twice).
  db_->Crash();
  db_->Recover();
  const uint64_t txn2 = engine()->Begin();
  Tuple out;
  ASSERT_TRUE(engine()->Select(txn2, 1, 1, &out).ok());
  EXPECT_EQ(out.GetU64(3), 7u);
  engine()->Commit(txn2);
}

TEST_P(EngineRecoveryTest, EmptyDatabaseRecovers) {
  CrashAndRecover();
  const uint64_t txn = engine()->Begin();
  Tuple out;
  EXPECT_TRUE(engine()->Select(txn, 1, 1, &out).IsNotFound());
  engine()->Commit(txn);
  // And is writable afterwards.
  const uint64_t txn2 = engine()->Begin();
  ASSERT_TRUE(engine()
                  ->Insert(txn2, 1, SimpleTuple(&def_.schema, 1, "fresh"))
                  .ok());
  engine()->Commit(txn2);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineRecoveryTest,
                         ::testing::ValuesIn(testutil::kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// NVM-InP and NVM-Log guarantee durability at commit — no group-commit
/// window, no drain needed (Section 4.1/4.3). NVM-CoW still batches
/// (Section 4.2), so it is excluded here.
class NvmEngineRecoveryTest : public EngineRecoveryTest {};

TEST_P(NvmEngineRecoveryTest, CommitsAreDurableImmediately) {
  for (uint64_t i = 0; i < 20; i++) {
    CommitTuple(i, "instant" + std::to_string(i), i);
  }
  // NOTE: no Drain() here.
  CrashAndRecover();
  const uint64_t txn = engine()->Begin();
  for (uint64_t i = 0; i < 20; i++) {
    Tuple out;
    ASSERT_TRUE(engine()->Select(txn, 1, i, &out).ok()) << i;
    EXPECT_EQ(out.GetString(1), "instant" + std::to_string(i));
  }
  engine()->Commit(txn);
}

TEST_P(NvmEngineRecoveryTest, UndoLogEmptyAfterRecovery) {
  CommitTuple(1, "x", 1);
  const uint64_t txn = engine()->Begin();
  engine()->Update(txn, 1, 1, {{3, Value::U64(2)}});
  db_->Crash();
  const uint64_t first_ns = db_->Recover();
  // Second crash with no in-flight work: recovery does strictly less.
  db_->Crash();
  const uint64_t second_ns = db_->Recover();
  (void)first_ns;
  (void)second_ns;
  const uint64_t txn2 = engine()->Begin();
  Tuple out;
  ASSERT_TRUE(engine()->Select(txn2, 1, 1, &out).ok());
  EXPECT_EQ(out.GetU64(3), 1u);
  engine()->Commit(txn2);
}

INSTANTIATE_TEST_SUITE_P(
    NvmEngines, NvmEngineRecoveryTest,
    ::testing::Values(EngineKind::kNvmInP, EngineKind::kNvmLog),
    [](const auto& info) {
      std::string name = EngineKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nvmdb
