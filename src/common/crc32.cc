#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define NVMDB_CRC32_X86 1
#else
#define NVMDB_CRC32_X86 0
#endif

namespace nvmdb {
namespace {

// CRC-32C polynomial (reflected): 0x82F63B78.
//
// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] is the CRC of byte b followed by k zero bytes. Eight input
// bytes then fold into the running CRC with eight independent table
// lookups per iteration instead of eight dependent ones.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; k++) {
    for (uint32_t i = 0; i < 256; i++) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xFF] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

uint32_t Crc32cSoftware(const uint8_t* p, size_t n, uint32_t crc) {
  while (n >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
    chunk ^= crc;
    crc = kTables[7][chunk & 0xFF] ^ kTables[6][(chunk >> 8) & 0xFF] ^
          kTables[5][(chunk >> 16) & 0xFF] ^ kTables[4][(chunk >> 24) & 0xFF] ^
          kTables[3][(chunk >> 32) & 0xFF] ^ kTables[2][(chunk >> 40) & 0xFF] ^
          kTables[1][(chunk >> 48) & 0xFF] ^ kTables[0][chunk >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if NVMDB_CRC32_X86

// The SSE4.2 CRC32 instruction computes exactly CRC-32C (Castagnoli), so
// the hardware and software paths are bit-identical; which one runs is
// a pure speed question, decided once by cpuid.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const uint8_t* p,
                                                          size_t n,
                                                          uint32_t crc) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}

bool DetectSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_SSE4_2) != 0;
}

using CrcFn = uint32_t (*)(const uint8_t*, size_t, uint32_t);
const CrcFn kCrcImpl = DetectSse42() ? &Crc32cHardware : &Crc32cSoftware;

#endif  // NVMDB_CRC32_X86

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if NVMDB_CRC32_X86
  return ~kCrcImpl(p, n, ~seed);
#else
  return ~Crc32cSoftware(p, n, ~seed);
#endif
}

}  // namespace nvmdb
