#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nvm/pmem_allocator.h"

namespace nvmdb {

/// Non-volatile write-ahead log: a persistent linked list of entries in
/// NVM, appended with an atomic durable write of the list head
/// (Section 4.1). The NVM-aware engines keep only *undo* information here
/// — pointers and before-values, never full after-images — because
/// committed data is persisted in place. The list therefore only ever
/// contains the active transaction's entries and is truncated at commit.
class NvWal {
 public:
  /// Attach to (or create) the WAL registered under `name`.
  NvWal(PmemAllocator* allocator, const std::string& name);

  /// Append an entry holding `n` opaque payload bytes. The entry is fully
  /// persistent when this returns. Returns the entry's payload offset.
  uint64_t Push(const void* payload, size_t n);

  /// Visit entries newest-first (the order undo must run in).
  void ForEach(const std::function<void(const uint8_t*, size_t)>& fn) const;

  /// Truncate: atomically reset the head, then free the entries. A crash
  /// between the two steps leaks at most one transaction's entries (noted
  /// in DESIGN.md).
  void Clear();

  bool Empty() const;
  size_t EntryCount() const;
  uint64_t NvmBytes() const;

 private:
  struct EntryHeader {
    uint64_t next;  // payload offset of the next-older entry, 0 = end
    uint32_t length;
    uint32_t pad;
  };

  uint64_t head() const;

  PmemAllocator* allocator_;
  NvmDevice* device_;
  uint64_t head_slot_;  // payload offset of the persistent head pointer
  std::vector<uint64_t> mirror_;  // volatile copy of the entry offsets
};

}  // namespace nvmdb
