#include "nvm/cache_sim.h"

#include <algorithm>

namespace nvmdb {

CacheSim::CacheSim(const CacheConfig& config, CacheCallbacks callbacks)
    : config_(config), callbacks_(std::move(callbacks)) {
  size_t num_lines =
      std::max<size_t>(config_.associativity,
                       config_.capacity_bytes / config_.line_size);
  size_t num_sets = std::max<size_t>(1, num_lines / config_.associativity);
  size_t num_banks = std::max<size_t>(1, std::min(config_.num_banks, num_sets));
  sets_per_bank_ = num_sets / num_banks;
  if (sets_per_bank_ == 0) sets_per_bank_ = 1;

  banks_ = std::vector<Bank>(num_banks);
  for (auto& bank : banks_) {
    bank.sets.resize(sets_per_bank_);
    for (auto& set : bank.sets) {
      set.ways.resize(config_.associativity);
    }
  }
}

void CacheSim::Locate(uint64_t line_addr, size_t* bank, size_t* set) const {
  const uint64_t line_index = line_addr / config_.line_size;
  // Mix the index so adjacent lines spread across banks and sets; a plain
  // modulo would pathologically collide for strided engine layouts.
  uint64_t h = line_index * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  *bank = h % banks_.size();
  *set = (h / banks_.size()) % sets_per_bank_;
}

size_t CacheSim::Access(uint64_t addr, size_t size, bool is_write) {
  if (size == 0) return 0;
  const size_t ls = config_.line_size;
  const uint64_t first = addr / ls * ls;
  const uint64_t last = (addr + size - 1) / ls * ls;
  size_t missed = 0;

  for (uint64_t line = first; line <= last; line += ls) {
    size_t bank_idx, set_idx;
    Locate(line, &bank_idx, &set_idx);
    Bank& bank = banks_[bank_idx];
    std::lock_guard<std::mutex> guard(bank.mu);
    Set& set = bank.sets[set_idx];
    const uint64_t tag = line;

    Line* hit = nullptr;
    Line* victim = &set.ways[0];
    for (auto& way : set.ways) {
      if (way.tag == tag) {
        hit = &way;
        break;
      }
      if (way.tag == kInvalidTag) {
        victim = &way;  // prefer an empty way as victim
      } else if (victim->tag != kInvalidTag &&
                 way.lru_stamp < victim->lru_stamp) {
        victim = &way;
      }
    }

    if (hit != nullptr) {
      hit->lru_stamp = ++bank.lru_clock;
      if (is_write) hit->dirty = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    // Miss: evict the victim (write back if dirty), then fill.
    missed++;
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (victim->tag != kInvalidTag && victim->dirty) {
      write_backs_.fetch_add(1, std::memory_order_relaxed);
      if (callbacks_.write_back) callbacks_.write_back(victim->tag, ls);
    }
    if (callbacks_.fill) callbacks_.fill(line, ls);
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru_stamp = ++bank.lru_clock;
  }
  return missed;
}

size_t CacheSim::FlushRange(uint64_t addr, size_t size, bool invalidate) {
  if (size == 0) return 0;
  const size_t ls = config_.line_size;
  const uint64_t first = addr / ls * ls;
  const uint64_t last = (addr + size - 1) / ls * ls;
  size_t flushed = 0;

  for (uint64_t line = first; line <= last; line += ls) {
    size_t bank_idx, set_idx;
    Locate(line, &bank_idx, &set_idx);
    Bank& bank = banks_[bank_idx];
    std::lock_guard<std::mutex> guard(bank.mu);
    Set& set = bank.sets[set_idx];
    for (auto& way : set.ways) {
      if (way.tag != line) continue;
      if (way.dirty) {
        flushed++;
        write_backs_.fetch_add(1, std::memory_order_relaxed);
        if (callbacks_.write_back) callbacks_.write_back(way.tag, ls);
        way.dirty = false;
      }
      if (invalidate) way.tag = kInvalidTag;
      break;
    }
  }
  return flushed;
}

size_t CacheSim::WriteBackAll() {
  size_t flushed = 0;
  for (auto& bank : banks_) {
    std::lock_guard<std::mutex> guard(bank.mu);
    for (auto& set : bank.sets) {
      for (auto& way : set.ways) {
        if (way.tag != kInvalidTag && way.dirty) {
          flushed++;
          write_backs_.fetch_add(1, std::memory_order_relaxed);
          if (callbacks_.write_back) {
            callbacks_.write_back(way.tag, config_.line_size);
          }
          way.dirty = false;
        }
      }
    }
  }
  return flushed;
}

void CacheSim::DropDirty() {
  for (auto& bank : banks_) {
    std::lock_guard<std::mutex> guard(bank.mu);
    for (auto& set : bank.sets) {
      for (auto& way : set.ways) {
        way.tag = kInvalidTag;
        way.dirty = false;
        way.lru_stamp = 0;
      }
    }
    bank.lru_clock = 0;
  }
}

}  // namespace nvmdb
