#include "nvm/cache_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace nvmdb {

namespace {

size_t CeilPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p <<= 1;
  return p;
}

unsigned Log2(size_t pow2) {
  unsigned s = 0;
  while ((size_t{1} << s) < pow2) s++;
  return s;
}

/// RAII bank lock that compiles to nothing in kOwner mode: the inner
/// loops are instantiated per mode, so the owner path contains no lock,
/// no atomic, and no mode branch.
template <ConcurrencyMode M>
struct BankGuard {
  explicit BankGuard(std::mutex&) {}
};

template <>
struct BankGuard<ConcurrencyMode::kShared> {
  explicit BankGuard(std::mutex& mu) : lock(mu) {}
  std::lock_guard<std::mutex> lock;
};

}  // namespace

ConcurrencyMode ResolveConcurrencyMode(ConcurrencyMode requested) {
  // Read fresh (not cached in a static): instances are constructed off
  // the hot path, and tests toggle the variable around constructions.
  const char* v = std::getenv("NVMDB_SHARED_CACHE");
  if (v != nullptr && *v != '\0' && *v != '0') {
    return ConcurrencyMode::kShared;
  }
  return requested;
}

CacheSim::CacheSim(const CacheConfig& config, CacheCallbacks callbacks)
    : mode_(ResolveConcurrencyMode(config.mode)), callbacks_(callbacks) {
  line_size_ = CeilPow2(std::max<size_t>(1, config.line_size));
  line_shift_ = Log2(line_size_);
  associativity_ = std::max<size_t>(1, config.associativity);
  const size_t num_lines =
      std::max(associativity_, config.capacity_bytes / line_size_);
  const size_t num_sets =
      CeilPow2(std::max<size_t>(1, num_lines / associativity_));
  num_banks_ =
      std::min(FloorPow2(std::max<size_t>(1, config.num_banks)), num_sets);
  sets_per_bank_ = num_sets / num_banks_;
  bank_mask_ = num_banks_ - 1;
  bank_shift_ = Log2(num_banks_);
  set_mask_ = sets_per_bank_ - 1;

  banks_ = std::vector<Bank>(num_banks_);
  entries_.assign(num_sets * associativity_, kInvalidEntry);
  stamps_.assign(num_sets * associativity_, 0);
}

#if NVMDB_OWNER_CHECKS
void CacheSim::OwnerViolation() {
  std::fprintf(stderr,
               "CacheSim owner-mode violation: instance accessed from a "
               "second thread; construct with ConcurrencyMode::kShared "
               "(or set NVMDB_SHARED_CACHE=1) for multi-threaded use\n");
  std::abort();
}
#endif

template <ConcurrencyMode M>
CacheAccessResult CacheSim::AccessExImpl(uint64_t addr, size_t size,
                                         bool is_write) {
  CacheAccessResult result;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    Bank& bank = banks_[bank_idx];
    BankGuard<M> guard(bank.mu);
    result.missed += AccessLine(bank, bank_idx * sets_per_bank_ + set_idx,
                                idx, is_write, &result);
  }
  return result;
}

CacheAccessResult CacheSim::AccessEx(uint64_t addr, size_t size,
                                     bool is_write) {
  if (size == 0) return CacheAccessResult{};
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    return AccessExImpl<ConcurrencyMode::kOwner>(addr, size, is_write);
  }
  return AccessExImpl<ConcurrencyMode::kShared>(addr, size, is_write);
}

template <ConcurrencyMode M>
size_t CacheSim::FlushRangeImpl(uint64_t addr, size_t size,
                                bool invalidate) {
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;
  size_t flushed = 0;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    Bank& bank = banks_[bank_idx];
    BankGuard<M> guard(bank.mu);
    uint64_t* const ways =
        &entries_[(bank_idx * sets_per_bank_ + set_idx) * associativity_];
    const uint64_t match = idx << 1;
    for (size_t w = 0; w < associativity_; w++) {
      const uint64_t e = ways[w];
      if ((e & ~uint64_t{1}) != match) continue;
      if (e & 1) {
        flushed++;
        bank.write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, idx << line_shift_,
                                line_size_);
        }
        ways[w] = match;  // clean
      }
      if (invalidate) ways[w] = kInvalidEntry;
      break;
    }
  }
  return flushed;
}

size_t CacheSim::FlushRange(uint64_t addr, size_t size, bool invalidate) {
  if (size == 0) return 0;
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    return FlushRangeImpl<ConcurrencyMode::kOwner>(addr, size, invalidate);
  }
  return FlushRangeImpl<ConcurrencyMode::kShared>(addr, size, invalidate);
}

template <ConcurrencyMode M>
size_t CacheSim::WriteBackAllImpl() {
  size_t flushed = 0;
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    BankGuard<M> guard(bank.mu);
    uint64_t* const ways = &entries_[b * per_bank];
    for (size_t i = 0; i < per_bank; i++) {
      const uint64_t e = ways[i];
      if (e != kInvalidEntry && (e & 1)) {
        flushed++;
        bank.write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, (e >> 1) << line_shift_,
                                line_size_);
        }
        ways[i] = e & ~uint64_t{1};
      }
    }
  }
  return flushed;
}

size_t CacheSim::WriteBackAll() {
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    return WriteBackAllImpl<ConcurrencyMode::kOwner>();
  }
  return WriteBackAllImpl<ConcurrencyMode::kShared>();
}

void CacheSim::DropDirty() {
#if NVMDB_OWNER_CHECKS
  if (mode_ == ConcurrencyMode::kOwner) CheckOwner();
#endif
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    BankGuard<ConcurrencyMode::kShared> guard(bank.mu);
    std::fill_n(entries_.begin() + b * per_bank, per_bank, kInvalidEntry);
    std::fill_n(stamps_.begin() + b * per_bank, per_bank, uint64_t{0});
    bank.lru_clock = 0;
  }
}

uint64_t CacheSim::hits() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.hits;
    } else {
      total += bank.hits;
    }
  }
  return total;
}

uint64_t CacheSim::misses() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.misses;
    } else {
      total += bank.misses;
    }
  }
  return total;
}

uint64_t CacheSim::write_backs() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.write_backs;
    } else {
      total += bank.write_backs;
    }
  }
  return total;
}

}  // namespace nvmdb
