#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "testbed/database.h"

namespace nvmdb {

/// One pre-generated transaction bound to a partition. The body runs all
/// of the transaction's queries against the partition's engine and returns
/// true to commit, false to abort (Section 3: single-partition
/// transactions executed serially per partition).
struct TxnTask {
  std::function<bool(StorageEngine*, uint64_t txn_id)> body;
};

/// Result of a benchmark run.
struct RunResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t wall_ns = 0;
  uint64_t stall_ns = 0;  // simulated NVM stall across all workers
  /// Response latency: Begin() until the commit became *durable* — for
  /// group-committing engines that includes waiting for the group to be
  /// forced, the cost the paper attributes to traditional logging
  /// (Sections 3.1/4.1). Tracked on per-partition simulated clocks (each
  /// partition models one worker core, so another partition's slices
  /// don't inflate its response times) and merged across partitions, so
  /// Run — not just RunSerial — reports tail latency.
  LatencySummary latency;
  /// The full histogram behind `latency`, for merging across runs and for
  /// the determinism tests' bucket-exact comparisons.
  LatencyHistogram latency_hist;

  /// Effective elapsed time on the *simulated* clock: total modeled time
  /// (cache hits/misses, write-backs, syncs, VFS crossings) averaged over
  /// the workers. Wall-clock time is recorded for reference but excluded —
  /// it measures the simulator, not the modeled system.
  double EffectiveSeconds(size_t workers) const {
    const double stall_per_worker =
        workers == 0 ? 0.0
                     : static_cast<double>(stall_ns) /
                           static_cast<double>(workers);
    return stall_per_worker * 1e-9;
  }
  double Throughput(size_t workers) const {
    const double secs = EffectiveSeconds(workers);
    return secs <= 0 ? 0 : static_cast<double>(committed) / secs;
  }

  /// Simulated nanoseconds produced per wall-clock nanosecond spent
  /// computing them — the simulator's real-time speed factor. Higher is a
  /// faster simulator; the modeled results are unaffected.
  double SimWallRatio() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(stall_ns) /
                              static_cast<double>(wall_ns);
  }
};

/// Executes per-partition transaction queues (the paper maps each worker
/// thread to a core and executes serially within a partition using
/// timestamp ordering; issuing Begin() in queue order realizes exactly
/// that order). The schedule is a deterministic round-robin over the
/// partitions on the calling thread, so the simulated cache/clock model
/// produces bit-identical counters on every run — benchmark parallelism
/// comes from running independent cells concurrently (bench_runner.h),
/// not from threads inside one database.
class Coordinator {
 public:
  explicit Coordinator(Database* db) : db_(db) {}

  /// Run the queues (queues.size() must equal the partition count),
  /// interleaving one transaction per partition per round.
  RunResult Run(const std::vector<std::vector<TxnTask>>& queues);

  /// Convenience: run a single partition's queue inline (no threads).
  RunResult RunSerial(size_t partition, const std::vector<TxnTask>& queue);

 private:
  /// Shared body: queues[p] runs on partition p; null entries idle.
  RunResult Execute(const std::vector<const std::vector<TxnTask>*>& queues);

  Database* db_;
};

}  // namespace nvmdb
