#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "nvm/pmem_allocator.h"

namespace nvmdb {

/// Cost knobs of the filesystem interface. The defaults are tuned so the
/// allocator-vs-filesystem durable-write-bandwidth gap matches the paper's
/// Fig. 1 (10–12x for small sequential chunks): each file operation pays a
/// kernel crossing through the VFS layer, which the allocator interface
/// avoids by staying in userspace.
struct PmfsConfig {
  uint64_t vfs_call_overhead_ns = 1500;   // per read()/write() syscall
  uint64_t fsync_overhead_ns = 2500;      // per fsync(), on top of flushes
  size_t block_size = 4096;              // extent granularity
  size_t max_files = 256;
};

/// Simplified PMFS: a filesystem that stores file data directly in NVM and
/// needs only one copy between the file and user buffers (Section 2.2).
/// Files are chains of fixed-size blocks allocated from the NVM allocator;
/// the inode table is a named persistent root, so the namespace survives
/// restart (the filesystem interface's naming mechanism).
///
/// Durability: data written with Write()/Append() is volatile (sitting in
/// the simulated CPU cache) until Fsync() flushes the file's dirty blocks
/// and inode. This mirrors how the traditional engines obtain durability.
class Pmfs {
 public:
  using Fd = int;

  /// Attach to an allocator. Recovers an existing namespace if one was
  /// previously formatted on this region.
  explicit Pmfs(PmemAllocator* allocator, const PmfsConfig& config = {});

  /// Open (and optionally create) a file. Tag attributes the file's blocks
  /// in footprint accounting. Returns -1 on failure.
  Fd Open(const std::string& name, bool create,
          StorageTag tag = StorageTag::kFilesystem);
  void Close(Fd fd);

  Status Write(Fd fd, uint64_t offset, const void* buf, size_t n);
  Status Append(Fd fd, const void* buf, size_t n);
  Status Read(Fd fd, uint64_t offset, void* buf, size_t n, size_t* out_n);
  Status Fsync(Fd fd);
  Status Truncate(Fd fd, uint64_t new_size);

  uint64_t Size(Fd fd) const;
  Status Delete(const std::string& name);
  bool Exists(const std::string& name) const;
  std::vector<std::string> List() const;

  /// Total bytes of block storage held by all files (Fig. 14 accounting).
  uint64_t TotalBlockBytes() const;
  uint64_t FileBlockBytes(const std::string& name) const;

  const PmfsConfig& config() const { return config_; }
  NvmDevice* device() { return device_; }

 private:
  struct Inode;      // persistent: name, size, extent table offset
  struct Superblock; // persistent: inode table

  static constexpr size_t kMaxExtents = 16384;

  Inode* InodeAt(size_t idx) const;
  Superblock* super() const;
  Status EnsureBlocks(Inode* inode, uint64_t end_offset);
  uint64_t* ExtentTable(const Inode* inode) const;

  PmemAllocator* allocator_;
  NvmDevice* device_;
  PmfsConfig config_;
  uint64_t super_offset_ = 0;

  mutable std::mutex mu_;
  struct Handle {
    int inode_idx = -1;
    // Block indices needing flush, in append order with possible
    // duplicates (a plain vector so the per-Write hot path never
    // allocates once capacity has grown); Fsync sorts + dedups before
    // persisting, which reproduces the ascending flush order the old
    // std::set gave.
    std::vector<size_t> dirty_blocks;
    bool inode_dirty = false;
  };
  std::map<Fd, Handle> handles_;
  Fd next_fd_ = 3;
};

}  // namespace nvmdb
