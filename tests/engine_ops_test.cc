#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "test_util.h"

namespace nvmdb {
namespace {

using testutil::MakeDb;
using testutil::SimpleTable;
using testutil::SimpleTuple;

/// Table 2's primitive operations, exercised uniformly on all six engines.
class EngineOpsTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    db_ = MakeDb(GetParam());
    def_ = SimpleTable();
    ASSERT_TRUE(db_->CreateTable(def_).ok());
    engine_ = db_->partition(0);
  }

  // Run one transaction that performs `fn` and commits.
  template <typename Fn>
  Status InTxn(Fn fn) {
    const uint64_t txn = engine_->Begin();
    Status s = fn(txn);
    if (s.ok()) {
      engine_->Commit(txn);
    } else {
      engine_->Abort(txn);
    }
    return s;
  }

  std::unique_ptr<Database> db_;
  TableDef def_;
  StorageEngine* engine_;
};

TEST_P(EngineOpsTest, InsertThenSelect) {
  ASSERT_TRUE(InTxn([&](uint64_t txn) {
                return engine_->Insert(txn, 1,
                                       SimpleTuple(&def_.schema, 7, "bob"));
              }).ok());
  Tuple out;
  const uint64_t txn = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn, 1, 7, &out).ok());
  engine_->Commit(txn);
  EXPECT_EQ(out.GetU64(0), 7u);
  EXPECT_EQ(out.GetString(1), "bob");
  EXPECT_EQ(out.GetString(2).size(), 100u);
}

TEST_P(EngineOpsTest, SelectMissingIsNotFound) {
  const uint64_t txn = engine_->Begin();
  Tuple out;
  EXPECT_TRUE(engine_->Select(txn, 1, 404, &out).IsNotFound());
  engine_->Commit(txn);
}

TEST_P(EngineOpsTest, DuplicateInsertRejected) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "a"));
  });
  const Status s = InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "b"));
  });
  EXPECT_FALSE(s.ok());
  // Original value intact.
  Tuple out;
  const uint64_t txn = engine_->Begin();
  engine_->Select(txn, 1, 1, &out);
  engine_->Commit(txn);
  EXPECT_EQ(out.GetString(1), "a");
}

TEST_P(EngineOpsTest, UpdateInlineAndVarlenFields) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 2, "old", 5));
  });
  // Value::Str is non-owning: the backing string must outlive Update.
  const std::string big(80, 'Z');
  ASSERT_TRUE(InTxn([&](uint64_t txn) {
                std::vector<ColumnUpdate> up;
                up.push_back({1, Value::Str("newname")});
                up.push_back({2, Value::Str(big)});
                up.push_back({3, Value::U64(6)});
                return engine_->Update(txn, 1, 2, up);
              }).ok());
  Tuple out;
  const uint64_t txn = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn, 1, 2, &out).ok());
  engine_->Commit(txn);
  EXPECT_EQ(out.GetString(1), "newname");
  EXPECT_EQ(out.GetString(2), std::string(80, 'Z'));
  EXPECT_EQ(out.GetU64(3), 6u);
}

TEST_P(EngineOpsTest, UpdateMissingIsNotFound) {
  const Status s = InTxn([&](uint64_t txn) {
    std::vector<ColumnUpdate> up{{3, Value::U64(1)}};
    return engine_->Update(txn, 1, 999, up);
  });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_P(EngineOpsTest, DeleteRemovesTuple) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 3, "gone"));
  });
  ASSERT_TRUE(
      InTxn([&](uint64_t txn) { return engine_->Delete(txn, 1, 3); }).ok());
  Tuple out;
  const uint64_t txn = engine_->Begin();
  EXPECT_TRUE(engine_->Select(txn, 1, 3, &out).IsNotFound());
  engine_->Commit(txn);
  EXPECT_TRUE(
      InTxn([&](uint64_t txn) { return engine_->Delete(txn, 1, 3); })
          .IsNotFound());
}

TEST_P(EngineOpsTest, DeleteThenReinsertSameKey) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 4, "first"));
  });
  InTxn([&](uint64_t txn) { return engine_->Delete(txn, 1, 4); });
  ASSERT_TRUE(InTxn([&](uint64_t txn) {
                return engine_->Insert(
                    txn, 1, SimpleTuple(&def_.schema, 4, "second"));
              }).ok());
  Tuple out;
  const uint64_t txn = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn, 1, 4, &out).ok());
  engine_->Commit(txn);
  EXPECT_EQ(out.GetString(1), "second");
}

TEST_P(EngineOpsTest, ScanRangeOrderedAndBounded) {
  InTxn([&](uint64_t txn) {
    for (uint64_t i = 0; i < 50; i++) {
      Status s = engine_->Insert(
          txn, 1, SimpleTuple(&def_.schema, i * 2, "k" + std::to_string(i)));
      if (!s.ok()) return s;
    }
    return Status::OK();
  });
  std::vector<uint64_t> keys;
  const uint64_t txn = engine_->Begin();
  engine_->ScanRange(txn, 1, 10, 20, [&](uint64_t k, const Tuple& t) {
    EXPECT_EQ(t.GetU64(0), k);
    keys.push_back(k);
    return true;
  });
  engine_->Commit(txn);
  EXPECT_EQ(keys, (std::vector<uint64_t>{10, 12, 14, 16, 18, 20}));
}

TEST_P(EngineOpsTest, SecondaryIndexLookup) {
  InTxn([&](uint64_t txn) {
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "smith"));
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 2, "jones"));
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 3, "smith"));
    return Status::OK();
  });
  std::vector<Tuple> matches;
  const uint64_t txn = engine_->Begin();
  ASSERT_TRUE(engine_
                  ->SelectSecondary(txn, 1, 0, {Value::Str("smith")},
                                    &matches)
                  .ok());
  engine_->Commit(txn);
  ASSERT_EQ(matches.size(), 2u);
  std::set<uint64_t> ids{matches[0].GetU64(0), matches[1].GetU64(0)};
  EXPECT_TRUE(ids.count(1) && ids.count(3));
}

TEST_P(EngineOpsTest, SecondaryIndexFollowsUpdates) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "before"));
  });
  InTxn([&](uint64_t txn) {
    std::vector<ColumnUpdate> up{{1, Value::Str("after")}};
    return engine_->Update(txn, 1, 1, up);
  });
  std::vector<Tuple> matches;
  const uint64_t txn = engine_->Begin();
  engine_->SelectSecondary(txn, 1, 0, {Value::Str("before")}, &matches);
  EXPECT_TRUE(matches.empty());
  engine_->SelectSecondary(txn, 1, 0, {Value::Str("after")}, &matches);
  engine_->Commit(txn);
  ASSERT_EQ(matches.size(), 1u);
}

TEST_P(EngineOpsTest, SecondaryIndexFollowsDelete) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "dead"));
  });
  InTxn([&](uint64_t txn) { return engine_->Delete(txn, 1, 1); });
  std::vector<Tuple> matches;
  const uint64_t txn = engine_->Begin();
  engine_->SelectSecondary(txn, 1, 0, {Value::Str("dead")}, &matches);
  engine_->Commit(txn);
  EXPECT_TRUE(matches.empty());
}

TEST_P(EngineOpsTest, AbortUndoesInsert) {
  const uint64_t txn = engine_->Begin();
  engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 9, "phantom"));
  engine_->Abort(txn);
  Tuple out;
  const uint64_t txn2 = engine_->Begin();
  EXPECT_TRUE(engine_->Select(txn2, 1, 9, &out).IsNotFound());
  engine_->Commit(txn2);
}

TEST_P(EngineOpsTest, AbortUndoesUpdate) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 9, "orig", 1));
  });
  const uint64_t txn = engine_->Begin();
  std::vector<ColumnUpdate> up{{1, Value::Str("changed")},
                               {3, Value::U64(2)}};
  engine_->Update(txn, 1, 9, up);
  engine_->Abort(txn);
  Tuple out;
  const uint64_t txn2 = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn2, 1, 9, &out).ok());
  engine_->Commit(txn2);
  EXPECT_EQ(out.GetString(1), "orig");
  EXPECT_EQ(out.GetU64(3), 1u);
}

TEST_P(EngineOpsTest, AbortUndoesDelete) {
  InTxn([&](uint64_t txn) {
    return engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 9, "alive"));
  });
  const uint64_t txn = engine_->Begin();
  engine_->Delete(txn, 1, 9);
  engine_->Abort(txn);
  Tuple out;
  const uint64_t txn2 = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn2, 1, 9, &out).ok());
  engine_->Commit(txn2);
  EXPECT_EQ(out.GetString(1), "alive");
}

TEST_P(EngineOpsTest, AbortUndoesMixedOps) {
  InTxn([&](uint64_t txn) {
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "one", 1));
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 2, "two", 2));
    return Status::OK();
  });
  const uint64_t txn = engine_->Begin();
  engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 3, "three"));
  engine_->Update(txn, 1, 1, {{1, Value::Str("ONE")}});
  engine_->Delete(txn, 1, 2);
  engine_->Abort(txn);

  const uint64_t txn2 = engine_->Begin();
  Tuple out;
  EXPECT_TRUE(engine_->Select(txn2, 1, 3, &out).IsNotFound());
  ASSERT_TRUE(engine_->Select(txn2, 1, 1, &out).ok());
  EXPECT_EQ(out.GetString(1), "one");
  ASSERT_TRUE(engine_->Select(txn2, 1, 2, &out).ok());
  EXPECT_EQ(out.GetString(1), "two");
  engine_->Commit(txn2);
}

TEST_P(EngineOpsTest, MultipleTables) {
  TableDef def2 = SimpleTable(2);
  ASSERT_TRUE(db_->CreateTable(def2).ok());
  InTxn([&](uint64_t txn) {
    engine_->Insert(txn, 1, SimpleTuple(&def_.schema, 1, "t1"));
    engine_->Insert(txn, 2, SimpleTuple(&def2.schema, 1, "t2"));
    return Status::OK();
  });
  Tuple out;
  const uint64_t txn = engine_->Begin();
  ASSERT_TRUE(engine_->Select(txn, 1, 1, &out).ok());
  EXPECT_EQ(out.GetString(1), "t1");
  ASSERT_TRUE(engine_->Select(txn, 2, 1, &out).ok());
  EXPECT_EQ(out.GetString(1), "t2");
  engine_->Commit(txn);
}

TEST_P(EngineOpsTest, UnknownTableRejected) {
  const uint64_t txn = engine_->Begin();
  Tuple out;
  EXPECT_TRUE(
      engine_->Select(txn, 42, 1, &out).IsInvalidArgument());
  engine_->Commit(txn);
}

TEST_P(EngineOpsTest, ManyTuplesRandomOpsMatchModel) {
  std::map<uint64_t, uint64_t> model;  // key -> count column value
  Random rng(static_cast<uint64_t>(GetParam()) + 99);
  for (int i = 0; i < 2000; i++) {
    const uint64_t key = rng.Uniform(300);
    const int op = static_cast<int>(rng.Uniform(4));
    InTxn([&](uint64_t txn) {
      if (op == 0) {  // insert
        if (model.count(key)) return Status::OK();
        const uint64_t count = rng.Uniform(1000);
        Status s = engine_->Insert(
            txn, 1, SimpleTuple(&def_.schema, key, "n", count));
        if (s.ok()) model[key] = count;
        return Status::OK();
      }
      if (op == 1) {  // update
        if (!model.count(key)) return Status::OK();
        const uint64_t count = rng.Uniform(1000);
        std::vector<ColumnUpdate> up{{3, Value::U64(count)}};
        if (engine_->Update(txn, 1, key, up).ok()) model[key] = count;
        return Status::OK();
      }
      if (op == 2) {  // delete
        if (engine_->Delete(txn, 1, key).ok()) model.erase(key);
        return Status::OK();
      }
      // select
      Tuple out;
      const Status s = engine_->Select(txn, 1, key, &out);
      EXPECT_EQ(s.ok(), model.count(key) > 0) << "key " << key;
      if (s.ok()) EXPECT_EQ(out.GetU64(3), model[key]);
      return Status::OK();
    });
  }
  // Final sweep.
  const uint64_t txn = engine_->Begin();
  for (const auto& [key, count] : model) {
    Tuple out;
    ASSERT_TRUE(engine_->Select(txn, 1, key, &out).ok()) << key;
    EXPECT_EQ(out.GetU64(3), count);
  }
  engine_->Commit(txn);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineOpsTest,
                         ::testing::ValuesIn(testutil::kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace nvmdb
