#include "nvm/cache_sim.h"

#include <algorithm>

namespace nvmdb {

namespace {

size_t CeilPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p <<= 1;
  return p;
}

unsigned Log2(size_t pow2) {
  unsigned s = 0;
  while ((size_t{1} << s) < pow2) s++;
  return s;
}

// Mix the line index so adjacent lines spread across banks and sets; a
// plain modulo would pathologically collide for strided engine layouts.
// The mapping is identical to the seed model's (h % banks, (h / banks) %
// sets) whenever banks and sets are powers of two.
inline uint64_t MixLineIndex(uint64_t line_index) {
  uint64_t h = line_index * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

CacheSim::CacheSim(const CacheConfig& config, CacheCallbacks callbacks)
    : callbacks_(callbacks) {
  line_size_ = CeilPow2(std::max<size_t>(1, config.line_size));
  line_shift_ = Log2(line_size_);
  associativity_ = std::max<size_t>(1, config.associativity);
  const size_t num_lines =
      std::max(associativity_, config.capacity_bytes / line_size_);
  const size_t num_sets =
      CeilPow2(std::max<size_t>(1, num_lines / associativity_));
  num_banks_ =
      std::min(FloorPow2(std::max<size_t>(1, config.num_banks)), num_sets);
  sets_per_bank_ = num_sets / num_banks_;
  bank_mask_ = num_banks_ - 1;
  bank_shift_ = Log2(num_banks_);
  set_mask_ = sets_per_bank_ - 1;

  banks_ = std::vector<Bank>(num_banks_);
  entries_.assign(num_sets * associativity_, kInvalidEntry);
  stamps_.assign(num_sets * associativity_, 0);
}

uint32_t CacheSim::AccessLine(Bank& bank, size_t global_set,
                              uint64_t line_index, bool is_write,
                              CacheAccessResult* result) {
  uint64_t* const ways = &entries_[global_set * associativity_];
  uint64_t* const stamps = &stamps_[global_set * associativity_];
  const uint64_t match = line_index << 1;

  size_t victim = 0;
  for (size_t w = 0; w < associativity_; w++) {
    const uint64_t e = ways[w];
    if ((e & ~uint64_t{1}) == match) {
      stamps[w] = ++bank.lru_clock;
      if (is_write) ways[w] = e | 1;
      bank.hits++;
      return 0;
    }
    if (e == kInvalidEntry) {
      victim = w;  // prefer an empty way as victim
    } else if (ways[victim] != kInvalidEntry && stamps[w] < stamps[victim]) {
      victim = w;
    }
  }

  // Miss: evict the victim (write back if dirty), then fill.
  bank.misses++;
  const uint64_t evicted = ways[victim];
  if (evicted != kInvalidEntry && (evicted & 1)) {
    bank.write_backs++;
    result->write_backs++;
    if (callbacks_.write_back) {
      callbacks_.write_back(callbacks_.ctx, (evicted >> 1) << line_shift_,
                            line_size_);
    }
  }
  if (callbacks_.fill) {
    callbacks_.fill(callbacks_.ctx, line_index << line_shift_, line_size_);
  }
  ways[victim] = match | (is_write ? 1 : 0);
  stamps[victim] = ++bank.lru_clock;
  return 1;
}

CacheAccessResult CacheSim::AccessEx(uint64_t addr, size_t size,
                                     bool is_write) {
  CacheAccessResult result;
  if (size == 0) return result;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    Bank& bank = banks_[bank_idx];
    std::lock_guard<std::mutex> guard(bank.mu);
    result.missed += AccessLine(bank, bank_idx * sets_per_bank_ + set_idx,
                                idx, is_write, &result);
  }
  return result;
}

size_t CacheSim::FlushRange(uint64_t addr, size_t size, bool invalidate) {
  if (size == 0) return 0;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;
  size_t flushed = 0;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    Bank& bank = banks_[bank_idx];
    std::lock_guard<std::mutex> guard(bank.mu);
    uint64_t* const ways =
        &entries_[(bank_idx * sets_per_bank_ + set_idx) * associativity_];
    const uint64_t match = idx << 1;
    for (size_t w = 0; w < associativity_; w++) {
      const uint64_t e = ways[w];
      if ((e & ~uint64_t{1}) != match) continue;
      if (e & 1) {
        flushed++;
        bank.write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, idx << line_shift_,
                                line_size_);
        }
        ways[w] = match;  // clean
      }
      if (invalidate) ways[w] = kInvalidEntry;
      break;
    }
  }
  return flushed;
}

size_t CacheSim::WriteBackAll() {
  size_t flushed = 0;
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    std::lock_guard<std::mutex> guard(bank.mu);
    uint64_t* const ways = &entries_[b * per_bank];
    for (size_t i = 0; i < per_bank; i++) {
      const uint64_t e = ways[i];
      if (e != kInvalidEntry && (e & 1)) {
        flushed++;
        bank.write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, (e >> 1) << line_shift_,
                                line_size_);
        }
        ways[i] = e & ~uint64_t{1};
      }
    }
  }
  return flushed;
}

void CacheSim::DropDirty() {
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    std::lock_guard<std::mutex> guard(bank.mu);
    std::fill_n(entries_.begin() + b * per_bank, per_bank, kInvalidEntry);
    std::fill_n(stamps_.begin() + b * per_bank, per_bank, uint64_t{0});
    bank.lru_clock = 0;
  }
}

uint64_t CacheSim::hits() const {
  uint64_t total = 0;
  for (const Bank& bank : banks_) {
    std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
    total += bank.hits;
  }
  return total;
}

uint64_t CacheSim::misses() const {
  uint64_t total = 0;
  for (const Bank& bank : banks_) {
    std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
    total += bank.misses;
  }
  return total;
}

uint64_t CacheSim::write_backs() const {
  uint64_t total = 0;
  for (const Bank& bank : banks_) {
    std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
    total += bank.write_backs;
  }
  return total;
}

}  // namespace nvmdb
