#pragma once

#include <cstdint>
#include <string>

#include "engine/storage_engine.h"
#include "nvm/nvm_device.h"

namespace nvmdb {

/// Delta of device counters between two points in time (the perf-counter
/// sampling the paper does per experiment, Section 5.3).
struct CounterDelta {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t hits = 0;
  uint64_t sync_calls = 0;
  uint64_t external_ns = 0;
  uint64_t stall_ns = 0;  // simulated clock advanced during the interval
  /// stall_ns split by component tag (ScopedStallTag attribution).
  StallBreakdown tags;
};

class CounterSampler {
 public:
  explicit CounterSampler(NvmDevice* device)
      : device_(device), start_(device->counters()) {}

  CounterDelta Delta() const {
    const NvmCounters now = device_->counters();
    CounterDelta d;
    d.loads = now.loads - start_.loads;
    d.stores = now.stores - start_.stores;
    d.hits = now.hits - start_.hits;
    d.sync_calls = now.sync_calls - start_.sync_calls;
    d.external_ns = now.external_ns - start_.external_ns;
    d.stall_ns = now.stall_ns - start_.stall_ns;
    for (size_t i = 0; i < kStallTagCount; i++) {
      d.tags.ns[i] = now.tag_ns[i] - start_.tag_ns[i];
    }
    return d;
  }

 private:
  NvmDevice* device_;
  NvmCounters start_;
};

/// Render a Fig. 13-style percentage breakdown over the stall tags.
std::string FormatBreakdown(const StallBreakdown& breakdown);

/// Render host wall-clock vs simulated-clock time side by side, with the
/// simulator's real-time factor (simulated ns advanced per wall ns spent
/// computing them). This is the number the fast-path work optimizes.
std::string FormatClockComparison(uint64_t wall_ns, uint64_t sim_ns);

/// Human-readable byte count (e.g. "1.5 GB").
std::string FormatBytes(uint64_t bytes);

}  // namespace nvmdb
