#include "index/page_store.h"

#include <cassert>
#include <cstring>

namespace nvmdb {

// ---------------------------------------------------------------------------
// PmfsPageStore
// ---------------------------------------------------------------------------

PmfsPageStore::PmfsPageStore(Pmfs* fs, const std::string& file_name,
                             size_t page_size, size_t cache_pages,
                             StorageTag tag)
    : fs_(fs), page_size_(page_size), cache_capacity_(cache_pages) {
  fd_ = fs_->Open(file_name, /*create=*/true, tag);
  assert(fd_ >= 0);
  const uint64_t size = fs_->Size(fd_);
  if (size < page_size_) {
    // Fresh file: reserve the master page with a zero master record.
    std::vector<uint8_t> zero(page_size_, 0);
    fs_->Write(fd_, 0, zero.data(), page_size_);
    fs_->Fsync(fd_);
    next_pid_ = 0;
  } else {
    next_pid_ = size / page_size_ - 1;  // minus the master page
  }
}

PmfsPageStore::~PmfsPageStore() { fs_->Close(fd_); }

uint64_t PmfsPageStore::AllocPage() {
  if (!free_pids_.empty()) {
    const uint64_t pid = free_pids_.back();
    free_pids_.pop_back();
    return pid;
  }
  return next_pid_++;
}

void PmfsPageStore::FreePage(uint64_t pid) {
  auto it = cache_.find(pid);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  free_pids_.push_back(pid);
}

void PmfsPageStore::WriteBackEntry(uint64_t pid, CacheEntry* entry) {
  if (!entry->dirty) return;
  fs_->Write(fd_, (pid + 1) * page_size_, entry->data.get(), page_size_);
  entry->dirty = false;
}

void PmfsPageStore::EvictIfNeeded() {
  while (cache_.size() > cache_capacity_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    auto it = cache_.find(victim);
    assert(it != cache_.end());
    WriteBackEntry(victim, &it->second);
    lru_.pop_back();
    cache_.erase(it);
  }
}

PmfsPageStore::CacheEntry* PmfsPageStore::GetCached(uint64_t pid,
                                                    bool fill_from_file) {
  auto it = cache_.find(pid);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.lru_it = lru_.begin();
    return &it->second;
  }
  CacheEntry entry;
  entry.data = std::make_unique<uint8_t[]>(page_size_);
  // Model the frame at a reserved address so the cache simulator sees the
  // same set indices regardless of where the heap buffer landed (ASLR).
  entry.vaddr = fs_->device()->ReserveVirtual(page_size_);
  if (fill_from_file) {
    size_t got = 0;
    fs_->Read(fd_, (pid + 1) * page_size_, entry.data.get(), page_size_,
              &got);
    if (got < page_size_) {
      memset(entry.data.get() + got, 0, page_size_ - got);
    }
  }
  lru_.push_front(pid);
  entry.lru_it = lru_.begin();
  auto [pos, ok] = cache_.emplace(pid, std::move(entry));
  (void)ok;
  EvictIfNeeded();
  // EvictIfNeeded never evicts the just-inserted MRU entry while capacity
  // is at least one page.
  return &cache_.find(pid)->second;
}

void PmfsPageStore::ReadPage(uint64_t pid, void* buf) {
  CacheEntry* entry = GetCached(pid, /*fill_from_file=*/true);
  // The page cache occupies NVM (used as volatile memory); its accesses
  // pass through the CPU-cache model — this is the "I/O overhead of
  // maintaining this directory reduces the number of hot tuples that can
  // reside in the CPU caches" effect of Section 5.3.
  fs_->device()->TouchVirtual(reinterpret_cast<const void*>(entry->vaddr),
                              page_size_, false);
  memcpy(buf, entry->data.get(), page_size_);
}

void PmfsPageStore::WritePage(uint64_t pid, const void* buf) {
  CacheEntry* entry = GetCached(pid, /*fill_from_file=*/false);
  fs_->device()->TouchVirtual(reinterpret_cast<const void*>(entry->vaddr),
                              page_size_, true);
  memcpy(entry->data.get(), buf, page_size_);
  entry->dirty = true;
}

void PmfsPageStore::FlushPages(const std::set<uint64_t>& pids) {
  for (uint64_t pid : pids) {
    auto it = cache_.find(pid);
    if (it != cache_.end()) WriteBackEntry(pid, &it->second);
  }
  fs_->Fsync(fd_);
}

uint64_t PmfsPageStore::ReadMaster() {
  uint64_t master = 0;
  size_t got = 0;
  fs_->Read(fd_, 0, &master, sizeof(master), &got);
  return got == sizeof(master) ? master : 0;
}

void PmfsPageStore::WriteMaster(uint64_t root_pid) {
  // The master record lives at a fixed offset in the file; the write fits
  // a single cache line so it reaches durability atomically.
  fs_->Write(fd_, 0, &root_pid, sizeof(root_pid));
  fs_->Fsync(fd_);
}

uint64_t PmfsPageStore::StorageBytes() const {
  return (next_pid_ + 1) * page_size_;
}

uint64_t PmfsPageStore::CacheBytes() const {
  return cache_.size() * (page_size_ + sizeof(CacheEntry));
}

void PmfsPageStore::RetainOnly(const std::set<uint64_t>& reachable) {
  free_pids_.clear();
  for (uint64_t pid = 0; pid < next_pid_; pid++) {
    if (reachable.count(pid) == 0) FreePage(pid);
  }
}

// ---------------------------------------------------------------------------
// NvmPageStore
// ---------------------------------------------------------------------------

NvmPageStore::NvmPageStore(PmemAllocator* allocator, const std::string& name,
                           size_t page_size, StorageTag tag)
    : allocator_(allocator),
      device_(allocator->device()),
      page_size_(page_size),
      tag_(tag) {
  const std::string root_name = name + "/master";
  master_off_ = allocator_->GetRoot(root_name);
  if (master_off_ == 0) {
    master_off_ = allocator_->Alloc(sizeof(uint64_t), StorageTag::kIndex);
    assert(master_off_ != 0);
    device_->AtomicPersistWrite64(master_off_, 0);
    allocator_->MarkPersisted(master_off_);
    allocator_->SetRoot(root_name, master_off_);
  }
}

uint64_t NvmPageStore::AllocPage() {
  const uint64_t off = allocator_->Alloc(page_size_, tag_);
  assert(off != 0);
  // Not MarkPersisted yet: an uncommitted dirty-directory page must be
  // reclaimed by allocator recovery if we crash before the commit flush.
  live_pages_.insert(off);
  return off;
}

void NvmPageStore::FreePage(uint64_t pid) {
  live_pages_.erase(pid);
  allocator_->Free(pid);
}

void NvmPageStore::ReadPage(uint64_t pid, void* buf) {
  device_->Read(pid, buf, page_size_);
}

void NvmPageStore::WritePage(uint64_t pid, const void* buf) {
  device_->Write(pid, buf, page_size_);
}

void NvmPageStore::FlushPages(const std::set<uint64_t>& pids) {
  for (uint64_t pid : pids) {
    allocator_->PersistPayloadAndMark(pid, page_size_);
  }
}

uint64_t NvmPageStore::ReadMaster() {
  uint64_t master = 0;
  device_->Read(master_off_, &master, sizeof(master));
  return master;
}

void NvmPageStore::WriteMaster(uint64_t root_pid) {
  device_->AtomicPersistWrite64(master_off_, root_pid);
}

uint64_t NvmPageStore::StorageBytes() const {
  return live_pages_.size() * page_size_;
}

void NvmPageStore::RetainOnly(const std::set<uint64_t>& reachable) {
  // After restart live_pages_ is empty; adopt the committed set. Any page
  // that was live before but is no longer reachable is freed.
  std::vector<uint64_t> to_free;
  for (uint64_t pid : live_pages_) {
    if (reachable.count(pid) == 0) to_free.push_back(pid);
  }
  for (uint64_t pid : to_free) FreePage(pid);
  live_pages_ = reachable;
}

}  // namespace nvmdb
