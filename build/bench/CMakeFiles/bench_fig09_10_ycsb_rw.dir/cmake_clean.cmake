file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_10_ycsb_rw.dir/bench_fig09_10_ycsb_rw.cc.o"
  "CMakeFiles/bench_fig09_10_ycsb_rw.dir/bench_fig09_10_ycsb_rw.cc.o.d"
  "bench_fig09_10_ycsb_rw"
  "bench_fig09_10_ycsb_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_ycsb_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
