# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nvm_test "/root/repo/build/tests/nvm_test")
set_tests_properties(nvm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(allocator_test "/root/repo/build/tests/allocator_test")
set_tests_properties(allocator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(btree_test "/root/repo/build/tests/btree_test")
set_tests_properties(btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cow_btree_test "/root/repo/build/tests/cow_btree_test")
set_tests_properties(cow_btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wal_test "/root/repo/build/tests/wal_test")
set_tests_properties(wal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lsm_test "/root/repo/build/tests/lsm_test")
set_tests_properties(lsm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tuple_test "/root/repo/build/tests/tuple_test")
set_tests_properties(tuple_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_ops_test "/root/repo/build/tests/engine_ops_test")
set_tests_properties(engine_ops_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_recovery_test "/root/repo/build/tests/engine_recovery_test")
set_tests_properties(engine_recovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(testbed_test "/root/repo/build/tests/testbed_test")
set_tests_properties(testbed_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simulation_test "/root/repo/build/tests/simulation_test")
set_tests_properties(simulation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crash_fuzz_test "/root/repo/build/tests/crash_fuzz_test")
set_tests_properties(crash_fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
