#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "index/page_store.h"

namespace nvmdb {

/// Copy-on-write (append-only / shadow-paging) B+tree in the style of
/// LMDB's MDB tree (Section 3.2). Keys are uint64; values are byte strings
/// (inlined tuples for the CoW engine, 8-byte non-volatile pointers for the
/// NVM-CoW engine).
///
/// Two directories exist at all times:
///  * the *current* directory — the root recorded in the master record;
///    contains only committed data and is never modified in place;
///  * the *dirty* directory — the working version produced by
///    copy-on-writing the path from each modified leaf up to the root.
///
/// `Commit()` flushes the fresh pages and atomically repoints the master
/// record (one durable 8-byte write); `Abort()` discards the fresh pages.
/// Group commit is the caller's policy: any number of operations may run
/// between commits.
///
/// Ephemeral nodes come from a rewind pool (live nodes are bounded by
/// 2x tree depth) and store their values in one arena per node, so
/// steady-state operations stop allocating once the pool and the node
/// buffers have grown to the working size.
class CowBTree {
 public:
  explicit CowBTree(PageStore* store);

  // --- Operations on the dirty directory ------------------------------------

  /// Insert or replace. Fails only if the value cannot fit a page.
  bool Put(uint64_t key, const Slice& value);
  bool Delete(uint64_t key);

  /// Read through the dirty directory (sees the in-flight batch).
  bool Get(uint64_t key, std::string* out) const;
  /// Read the committed snapshot only (what survives a crash right now).
  bool GetCommitted(uint64_t key, std::string* out) const;

  /// In-order scan over [lo, hi] in the dirty directory.
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t, const Slice&)>& fn) const;

  // --- Directory lifecycle ---------------------------------------------------

  /// Persist the dirty directory and atomically publish it as current.
  void Commit();
  /// Drop the dirty directory; the current directory is untouched.
  void Abort();
  /// True if the batch has uncommitted changes.
  bool HasDirty() const { return dirty_root_ != current_root_; }

  /// Reclaim pages unreachable from the committed root (post-restart GC of
  /// the previous dirty directory).
  void GarbageCollect();

  /// Max value size that fits a leaf page.
  size_t MaxValueSize() const;

  uint64_t current_root() const { return current_root_; }
  size_t PageCount() const;

 private:
  // Ephemeral in-memory node. Values live in a per-node byte arena
  // addressed by (offset, length) handles; replacing a value appends and
  // repoints, orphaning the old bytes — fine, since a node lives for one
  // tree operation and its arena is rewound on reuse.
  struct Node {
    bool leaf = true;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> children;  // inner only, keys.size() + 1
    std::vector<std::pair<uint32_t, uint32_t>> vals;  // leaf: off, len
    std::string arena;

    void Clear() {
      leaf = true;
      keys.clear();
      children.clear();
      vals.clear();
      arena.clear();
    }
    Slice value(size_t i) const {
      return Slice(arena.data() + vals[i].first, vals[i].second);
    }
    std::pair<uint32_t, uint32_t> AppendBytes(const Slice& v);
    void SetValue(size_t i, const Slice& v) { vals[i] = AppendBytes(v); }
    void InsertValue(size_t i, const Slice& v) {
      vals.insert(vals.begin() + static_cast<ptrdiff_t>(i), AppendBytes(v));
    }
  };

  // Result of a recursive CoW modification: the subtree's (possibly new)
  // root page, plus an optional right sibling from a split.
  struct ModResult {
    uint64_t pid = kNilPage;
    bool has_split = false;
    uint64_t split_key = 0;
    uint64_t right_pid = kNilPage;
    bool removed = false;  // subtree became empty (delete path)
  };

  static constexpr uint64_t kNilPage = 0;
  // Page ids are stored +1 in the master record and child arrays so that 0
  // can mean "empty tree".

  // Rewind pool: Acquire hands out cleared nodes; callers remember
  // pool_used_ before acquiring and rewind it when their nodes die. Live
  // nodes are bounded by the recursion depth (plus split siblings).
  Node* AcquireNode() const;

  void LoadNode(uint64_t epid, Node* out) const;
  uint64_t StoreNode(const Node& node, uint64_t old_pid);
  size_t SerializedSize(const Node& node) const;
  void SerializeNode(const Node& node, uint8_t* buf) const;
  void ParseNode(const uint8_t* buf, Node* out) const;

  bool IsFresh(uint64_t epid) const;
  void AddFresh(uint64_t epid);
  void RemoveFresh(uint64_t epid);
  /// Free an obsolete page: immediately if it was created in this batch,
  /// else deferred to the commit (the committed directory still needs it).
  void RetirePage(uint64_t epid);

  ModResult PutRec(uint64_t epid, uint64_t key, const Slice& value,
                   bool* inserted);
  ModResult DeleteRec(uint64_t epid, uint64_t key, bool* deleted);
  bool GetRec(uint64_t epid, uint64_t key, std::string* out) const;
  void ScanRec(uint64_t epid, uint64_t lo, uint64_t hi,
               const std::function<bool(uint64_t, const Slice&)>& fn,
               bool* keep_going) const;
  void CollectReachable(uint64_t epid, std::set<uint64_t>* out) const;
  void SplitLeaf(Node* node, Node* right) const;
  void SplitInner(Node* node, Node* right, uint64_t* sep) const;
  size_t InnerCapacity() const;

  PageStore* store_;
  uint64_t current_root_;  // 0 = empty tree
  uint64_t dirty_root_;
  std::vector<uint64_t> fresh_pages_;     // created in this batch; sorted
  std::vector<uint64_t> replaced_pages_;  // to free on commit
  mutable std::vector<std::unique_ptr<Node>> node_pool_;
  mutable size_t pool_used_ = 0;
  mutable std::vector<uint8_t> page_buf_;  // shared (de)serialize staging
  mutable std::vector<uint64_t> flush_scratch_;
};

}  // namespace nvmdb
