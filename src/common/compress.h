#pragma once

#include <string>

#include "common/slice.h"

namespace nvmdb {

/// Built-in LZ-class byte compressor. Stands in for the gzip the paper uses
/// on InP checkpoints (Section 3.1) — only the footprint reduction matters
/// for the reproduction, not the exact codec.
///
/// Format: sequence of ops. Literal run: 0x00 <varint len> <bytes>.
/// Match: 0x01 <varint len> <varint distance>. Greedy hash-chain matcher.
std::string LzCompress(const Slice& input);

/// Inverse of LzCompress. Returns false on malformed input.
bool LzDecompress(const Slice& input, std::string* output);

}  // namespace nvmdb
