#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nvm/cache_sim.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

class CrashSim;
class TraceWriter;

/// Latency/bandwidth profile of the emulated NVM device. The paper's
/// hardware emulator exposes exactly these knobs (Section 2.2): a tunable
/// read latency (as a multiple of the 160 ns DRAM latency) and a throttled
/// sustainable write bandwidth.
struct NvmLatencyConfig {
  /// Simulated cost of a cache-line miss served from the device.
  uint64_t read_latency_ns = 160;
  /// Baseline DRAM latency (the 1x point of the paper's sweep).
  uint64_t dram_latency_ns = 160;
  /// Simulated cost of a cache-line hit (amortized L1/L2/L3). Throughput
  /// is computed from simulated time, so hits must carry a cost or
  /// cache-resident work would be free.
  uint64_t cache_hit_ns = 3;
  /// Sustainable write bandwidth; each line written back to NVM is charged
  /// line_size / bandwidth.
  double write_bandwidth_gbps = 76.0;  // platform DRAM bandwidth
  /// Latency of one sync-primitive invocation (CLFLUSH+SFENCE by default;
  /// Appendix C sweeps this from 10 ns to 10000 ns for PCOMMIT/CLWB).
  uint64_t sync_latency_ns = 100;
  /// If true, model CLWB (line stays cached, clean) instead of CLFLUSH
  /// (line invalidated) in the sync primitive.
  bool use_clwb = false;

  /// Paper's three profiles (Section 5.2).
  static NvmLatencyConfig Dram();     // 1x (160 ns), full bandwidth
  static NvmLatencyConfig LowNvm();   // 2x (320 ns), 9.5 GB/s
  static NvmLatencyConfig HighNvm();  // 8x (1280 ns), 9.5 GB/s
};

/// Wear statistics over the device's cache lines. NVM cells endure a
/// bounded number of writes (Table 1: 10^8–10^10 for PCM/RRAM), so both
/// the total write volume and its *distribution* matter: a hot line wears
/// out first. The allocator's rotating placement and the engines' reduced
/// data duplication both show up here (the paper's headline "reducing
/// wear due to write operations by up to 2x").
struct WearStats {
  uint64_t total_line_writes = 0;  // sum over all lines
  uint64_t lines_touched = 0;      // lines written at least once
  uint64_t max_line_writes = 0;    // hottest line
  double mean_line_writes = 0;     // over touched lines
  /// Ratio max/mean over touched lines: 1.0 = perfectly even wear.
  double hotspot_factor = 0;
};

/// Counter snapshot mirroring the perf counters the paper reads.
/// All fields are exact, including under concurrency: the cache counts
/// per bank under the bank lock and aggregation takes those locks.
struct NvmCounters {
  uint64_t loads = 0;        // cache-line fills from NVM
  uint64_t stores = 0;       // dirty-line write-backs to NVM
  uint64_t hits = 0;         // cache-line hits
  uint64_t stall_ns = 0;     // accumulated simulated time
  uint64_t external_ns = 0;  // profile-independent charges (VFS, fsync)
  uint64_t sync_calls = 0;   // sync primitive invocations
  uint64_t bytes_read = 0;   // loads * line
  uint64_t bytes_written = 0;
  /// stall_ns split by the component tag current when each charge was
  /// made (ScopedStallTag); the slices sum to stall_ns.
  uint64_t tag_ns[kStallTagCount] = {};
};

/// Software stand-in for the Intel Labs NVM hardware emulator.
///
/// The device owns a byte region with *two* images:
///   - the working image: what the CPU sees; all reads/writes hit it
///     immediately (this is "NVM as seen through the cache hierarchy"),
///   - the durable image: what survives power failure; a cache line reaches
///     it only when the simulated CPU cache writes it back (eviction, sync
///     primitive, fsync).
///
/// `Crash()` discards the caches and replaces the working image with the
/// durable one, so recovery code observes exactly the bytes that were made
/// durable — torn multi-line writes and lost unflushed updates included.
class NvmDevice {
 public:
  NvmDevice(size_t capacity, const NvmLatencyConfig& latency = {},
            const CacheConfig& cache = {});
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  size_t capacity() const { return capacity_; }
  uint8_t* base() { return working_; }

  /// Translate between raw pointers into the working image and stable
  /// region offsets (the representation of non-volatile pointers).
  uint64_t OffsetOf(const void* p) const {
    return static_cast<uint64_t>(static_cast<const uint8_t*>(p) - working_);
  }
  void* PtrAt(uint64_t offset) { return working_ + offset; }
  const void* PtrAt(uint64_t offset) const { return working_ + offset; }
  bool Contains(const void* p) const {
    return p >= working_ && p < working_ + capacity_;
  }

  /// Synchronization mode the device (and its cache) runs in; selected by
  /// CacheConfig::mode at construction, after the NVMDB_SHARED_CACHE
  /// override. In kOwner mode every counter uses plain adds and the
  /// Touch* entry points below take a header-inlined resident-hit fast
  /// path that never leaves this translation unit.
  ConcurrencyMode mode() const {
    return owner_ ? ConcurrencyMode::kOwner : ConcurrencyMode::kShared;
  }

  // --- Instrumented access path -------------------------------------------
  // All storage-engine traffic to NVM must use these so the cache model can
  // count loads/stores and charge stalls.

  /// Read n bytes at `offset` into `dst`.
  void Read(uint64_t offset, void* dst, size_t n);
  /// Write n bytes from `src` at `offset` (volatile until persisted).
  void Write(uint64_t offset, const void* src, size_t n);

  /// One destination of a segmented read / one source of a segmented
  /// write (below).
  struct ReadSeg {
    void* dst;
    uint32_t len;
  };
  struct WriteSeg {
    const void* src;
    uint32_t len;
  };
  /// Most segments any segmented entry point accepts (engine call sites
  /// coalesce 2–3 adjacent accesses; the stack scratch is sized to this).
  static constexpr size_t kMaxIoSegments = 8;

  /// Model `k` adjacent sub-ranges (segment s covers lens[s] bytes
  /// starting where s-1 ended, the first at `offset`) as ONE segmented
  /// cache access and charge the combined cost in a single accumulation.
  /// The modeled stream is exactly what k separate Touch/Read/Write calls
  /// over the same sub-ranges would produce — CacheSim::AccessSegments
  /// replays the per-line visit sequence verbatim, duplicate boundary
  /// visits included, and zero-length segments model nothing just like
  /// the `if (!empty)`-guarded calls they replace. Addresses follow
  /// TouchVirtual rules (region offsets or reserved virtual addresses).
  void TouchSegments(uint64_t addr, const uint32_t* lens, size_t k,
                     bool is_write);

  /// Segmented Read: model every segment in one access (one probe loop,
  /// one stall accumulation), then copy each segment into its
  /// destination. Counters and bytes identical to k adjacent Read calls.
  void ReadSegments(uint64_t offset, const ReadSeg* segs, size_t k);
  /// Segmented Write: the write-side mirror of ReadSegments.
  void WriteSegments(uint64_t offset, const WriteSeg* segs, size_t k);

  /// Model a read access to memory already mapped at `p` (no copy).
  void TouchRead(const void* p, size_t n) {
    if (!Contains(p) || n == 0) return;
    Touch(OffsetOf(p), n, /*is_write=*/false);
  }
  /// Model a write access to memory already mapped at `p` (no copy).
  void TouchWrite(const void* p, size_t n) {
    if (!Contains(p) || n == 0) return;
    Touch(OffsetOf(p), n, /*is_write=*/true);
  }

  /// Model an access to engine memory that is *not* inside the managed
  /// region (volatile B+tree nodes, page caches, MemTable indexes…). In
  /// the paper's NVM-only hierarchy this memory is NVM obtained through
  /// the allocator interface and used as if it were DRAM, so it must pass
  /// through the same CPU-cache model: misses are NVM loads, dirty
  /// evictions NVM stores. The pointer value doubles as the cache address;
  /// callers should pass stable addresses from ReserveVirtual (below) so
  /// the modeled cache behavior is reproducible across processes — raw
  /// heap pointers also work but make counters ASLR-dependent.
  ///
  /// ReserveVirtual addresses (and raw heap addresses) live far above the
  /// region's offset space, so they never alias a managed line; the
  /// write-back handler's bounds check skips the durable copy but the
  /// store cost is still charged.
  void TouchVirtual(const void* p, size_t n, bool is_write) {
    if (n == 0) return;
    Touch(reinterpret_cast<uint64_t>(p), n, is_write);
  }

  /// Reserve a range of the device's *modeled* virtual address space and
  /// return its base. The space is a simple bump allocator starting far
  /// above any region offset, so reserved ranges never alias managed
  /// lines. Components that route volatile-structure traffic through
  /// TouchVirtual reserve a range per object (B+tree node, WAL buffer,
  /// page-cache frame) and use base+offset as the cache address: given a
  /// deterministic execution schedule, reservation order — and therefore
  /// every modeled cache index — is identical across runs, which is what
  /// makes benchmark counters bit-reproducible regardless of ASLR.
  uint64_t ReserveVirtual(size_t bytes) {
    const uint64_t span = (bytes + 63) & ~uint64_t{63};
    return virtual_brk_.fetch_add(span, std::memory_order_relaxed);
  }

  /// The sync primitive (Section 2.3): flush the covered cache lines and
  /// fence. After this returns, [offset, offset+n) is durable.
  void Persist(uint64_t offset, size_t n);
  void Persist(const void* p, size_t n) { Persist(OffsetOf(p), n); }

  /// 8-byte atomic durable write — the primitive engines rely on for master
  /// records and WAL list heads. The value is durable upon return and can
  /// never be torn across a crash.
  void AtomicPersistWrite64(uint64_t offset, uint64_t value);

  // --- Crash / restart -----------------------------------------------------

  /// Simulate power failure: every byte not yet written back is lost.
  void Crash();

  /// Crash onto an externally captured durable image (a CrashSim
  /// snapshot): cached state is discarded and both images are replaced by
  /// `image`, so recovery observes exactly the bytes that were durable at
  /// the captured event. `n` must equal capacity().
  void RestoreImages(const uint8_t* image, size_t n);

  /// Write back the entire cache (a clean shutdown).
  void FlushAll();

  // --- Crash-point fault injection -----------------------------------------

  /// Install (or remove, with nullptr) a crash-point simulator. Every
  /// durability event — Persist, AtomicPersistWrite64, fsync barrier —
  /// is reported to it. Not owned; the caller keeps it alive while
  /// installed.
  void set_crash_sim(CrashSim* sim) { crash_sim_ = sim; }
  CrashSim* crash_sim() const { return crash_sim_; }

  /// Read-only views for CrashSim captures.
  const uint8_t* durable_image() const { return durable_; }
  const uint8_t* working_image() const { return working_; }
  size_t cache_line_size() const { return cache_->line_size(); }

  // --- Accounting -----------------------------------------------------------

  NvmCounters counters() const;
  void ResetCounters();

  /// Per-line wear accounting (writes that actually reached the device,
  /// i.e. write-backs into the managed region).
  WearStats wear() const;

  /// Total simulated time across all threads, in nanoseconds: cache
  /// hits/misses, write-backs, sync primitives and VFS crossings. The
  /// testbed reports throughput from this simulated clock (divided by the
  /// worker count), which makes results deterministic and driven entirely
  /// by the modeled NVM costs rather than host-machine speed.
  uint64_t TotalStallNanos() const {
    return stall_ns_.load(std::memory_order_relaxed);
  }

  const NvmLatencyConfig& latency_config() const { return latency_; }
  void set_latency_config(const NvmLatencyConfig& cfg) { latency_ = cfg; }

  /// Charge additional simulated time that does not depend on the NVM
  /// latency profile (VFS/syscall crossings, fsync bookkeeping).
  void ChargeExternalStall(uint64_t ns) {
    CounterAdd(external_ns_, ns);
    ChargeStall(ns);
  }

  /// Bytes of the region handed out by the allocator/pmfs; maintained by
  /// those components for footprint reporting.
  std::atomic<uint64_t> allocated_bytes{0};

 private:
  /// Counter accumulation honoring the concurrency mode: an atomic RMW in
  /// kShared, a plain load+store (mov/add/mov, no lock prefix) in kOwner
  /// where only one thread ever writes. The relaxed load+store pair keeps
  /// the member type uniform across modes.
  void CounterAdd(std::atomic<uint64_t>& counter, uint64_t v) {
    if (owner_) {
      counter.store(counter.load(std::memory_order_relaxed) + v,
                    std::memory_order_relaxed);
    } else {
      counter.fetch_add(v, std::memory_order_relaxed);
    }
  }
  /// Every charge also lands in the per-tag slice of the thread's current
  /// ScopedStallTag — one extra plain add in owner mode — which is what
  /// turns the single stall clock into a per-component breakdown.
  void ChargeStall(uint64_t ns) {
    CounterAdd(stall_ns_, ns);
    CounterAdd(tag_ns_[static_cast<size_t>(internal::t_stall_tag)], ns);
  }

  /// Shared body of the Touch* entry points. In owner mode, a single-line
  /// access to an already-resident line — the overwhelmingly common case
  /// on the engines' instrumented paths — is completed entirely inline:
  /// one cache probe plus one plain stall add, no out-of-line call.
  void Touch(uint64_t addr, size_t n, bool is_write) {
    if (owner_ && cache_->OwnerHitFast(addr, n, is_write)) {
      ChargeStall(latency_.cache_hit_ns);
      return;
    }
    ChargeAccess(addr, n, is_write);
  }

  /// Run the cache model over [addr, addr+n) and charge hit/miss/write-back
  /// costs with a single accumulation for the whole call.
  void ChargeAccess(uint64_t addr, size_t n, bool is_write);
  uint64_t StoreCostNs() const;

  /// Flush the lines covering [offset, offset+n) per the sync primitive's
  /// invalidation policy (CLWB vs CLFLUSH), returning the count written
  /// back. In owner mode a range within one line — every per-tuple
  /// persist the engines issue — completes inline.
  size_t FlushLines(uint64_t offset, size_t n) {
    const bool invalidate = !latency_.use_clwb;
    if (owner_) {
      const int fast = cache_->OwnerFlushFast(offset, n, invalidate);
      if (fast >= 0) return static_cast<size_t>(fast);
    }
    return cache_->FlushRange(offset, n, invalidate);
  }

  /// Target of the cache's write-back callback (dispatched through a raw
  /// function pointer, not std::function): mirror the line into the
  /// durable image and count wear. Stall accounting happens at the access
  /// site, not here. Instantiated per concurrency mode so owner-mode wear
  /// increments are plain adds.
  template <ConcurrencyMode M>
  void OnWriteBack(uint64_t line_addr, size_t line_size);
  template <ConcurrencyMode M>
  static void WriteBackTrampoline(void* ctx, uint64_t line_addr,
                                  size_t line_size) {
    static_cast<NvmDevice*>(ctx)->OnWriteBack<M>(line_addr, line_size);
  }

  size_t capacity_;
  // Working/durable images and the per-line wear array are lazily-zeroed
  // anonymous mappings: a fresh device costs no page-touch proportional to
  // capacity, only to the bytes actually used (the seed's new[]+memset
  // burned ~1.5 GB of page faults per benchmark database).
  uint8_t* working_ = nullptr;
  uint8_t* durable_ = nullptr;
  std::atomic<uint32_t>* line_writes_ = nullptr;  // wear per line
  NvmLatencyConfig latency_;
  std::unique_ptr<CacheSim> cache_;
  /// True in ConcurrencyMode::kOwner (thread-confined, plain counter
  /// adds); resolved once at construction.
  bool owner_ = false;

  std::atomic<uint64_t> stall_ns_{0};
  std::atomic<uint64_t> external_ns_{0};
  std::atomic<uint64_t> sync_calls_{0};
  std::atomic<uint64_t> tag_ns_[kStallTagCount] = {};
  /// Modeled virtual address space for ReserveVirtual. 2^44 is far above
  /// any region offset (devices are at most a few GB), and reservations
  /// total well under 2^50, so ranges never collide with region lines.
  std::atomic<uint64_t> virtual_brk_{uint64_t{1} << 44};
  CrashSim* crash_sim_ = nullptr;
};

/// Thread-local "current device" used by non-volatile pointers so that
/// persistent data structures don't need to thread a device argument
/// through every node access. Thread-local rather than process-wide so
/// independent databases can run concurrently (the benchmark grid
/// scheduler runs one cell per job thread, each with a private device).
/// Database construction and the coordinator set it; tests and benches
/// set it per scenario when driving a device directly.
class NvmEnv {
 public:
  static NvmDevice* Get();
  static void Set(NvmDevice* device);

  /// Thread-local current trace writer (same ownership discipline as the
  /// current device: the Database owning the writer sets it, the
  /// coordinator re-binds it on whatever thread drives the database).
  /// Null — the common case — means tracing is disabled.
  static TraceWriter* Trace();
  static void SetTrace(TraceWriter* trace);
};

/// Offset-based non-volatile pointer (Section 2.3's naming mechanism plus
/// SOFORT-style raw persistent pointers). An offset is valid across OS and
/// DBMS restarts because the allocator always maps the region at the same
/// virtual base — here, offsets are resolved against the current device.
template <typename T>
class NvmPtr {
 public:
  NvmPtr() : offset_(kNull) {}
  explicit NvmPtr(uint64_t offset) : offset_(offset) {}

  static NvmPtr FromRaw(const T* p) {
    if (p == nullptr) return NvmPtr();
    return NvmPtr(NvmEnv::Get()->OffsetOf(p));
  }

  bool IsNull() const { return offset_ == kNull; }
  uint64_t offset() const { return offset_; }

  T* get() const {
    if (IsNull()) return nullptr;
    return reinterpret_cast<T*>(NvmEnv::Get()->PtrAt(offset_));
  }
  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }
  explicit operator bool() const { return !IsNull(); }

  bool operator==(const NvmPtr& o) const { return offset_ == o.offset_; }
  bool operator!=(const NvmPtr& o) const { return offset_ != o.offset_; }

 private:
  static constexpr uint64_t kNull = ~0ull;
  uint64_t offset_;
};

}  // namespace nvmdb
