/// Ablations for the design choices DESIGN.md calls out. Not a paper
/// figure — these isolate the mechanisms behind the paper's headline
/// numbers:
///
///  A. Group-commit size: amortizes durability cost but adds response
///     latency (Sections 3.1/4.1: NVM-InP "avoids the group commit wait").
///  B. Bloom filters on NVM-Log's immutable MemTables: the read-
///     amplification control of Section 4.3.
///  C. MemTable flush threshold for the Log engine: flush/compaction
///     frequency vs WAL length.
///
/// Each cell runs a single-partition database (latency attribution needs
/// one worker inside a cell), but all 28 cells across the three sections
/// run concurrently on the grid scheduler; every table prints after the
/// barrier.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

struct SerialRun {
  double throughput = 0;
  LatencySummary latency;
  StallBreakdown stalls;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t sim_ns = 0;
};

SerialRun RunYcsbSerial(EngineKind engine, const EngineConfig& overrides,
                        YcsbMixture mixture) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;  // latency attribution needs a single worker
  cfg.engine_config = overrides;
  auto db = std::make_unique<Database>(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples / 4;
  ycfg.num_txns = Scale().ycsb_txns / 4;
  ycfg.num_partitions = 1;
  ycfg.mixture = mixture;
  YcsbWorkload workload(ycfg);
  Status s = workload.Load(db.get());
  if (!s.ok()) {
    // Propagate: a zeroed SerialRun would silently print a table of zeros
    // while the bench still exited 0.
    ReportFailure("YCSB load (ablation)", s);
    return {};
  }

  CounterSampler sampler(db->device());
  Coordinator coordinator(db.get());
  const RunResult result =
      coordinator.RunSerial(0, workload.GenerateQueues()[0]);
  const CounterDelta delta = sampler.Delta();
  SerialRun out;
  out.throughput = DeriveThroughput(result.committed, result.wall_ns,
                                    delta, NvmLatencyConfig::LowNvm(), 1);
  out.latency = result.latency;
  out.stalls = delta.tags;
  out.committed = result.committed;
  out.aborted = result.aborted;
  out.sim_ns = delta.stall_ns;
  return out;
}

BenchCell SerialCell(std::vector<std::pair<std::string, std::string>> key,
                     const SerialRun& run) {
  BenchCell cell;
  cell.key = std::move(key);
  cell.committed = run.committed;
  cell.aborted = run.aborted;
  cell.sim_ns = run.sim_ns;
  cell.latency = run.latency;
  cell.stalls = run.stalls;
  cell.metrics = {{"tps_low_nvm", run.throughput},
                  {"mean_resp_us", run.latency.mean_ns / 1000.0},
                  {"p99_resp_us", run.latency.p99_ns / 1000.0}};
  return cell;
}

}  // namespace

int main() {
  const EngineKind a_engines[] = {EngineKind::kInP, EngineKind::kCoW,
                                  EngineKind::kNvmCoW, EngineKind::kNvmInP};
  const size_t a_groups[] = {1, 4, 16, 64};
  const YcsbMixture b_mixtures[] = {YcsbMixture::kReadHeavy,
                                    YcsbMixture::kBalanced};
  const size_t c_thresholds[] = {64ull * 1024, 256ull * 1024,
                                 1024ull * 1024, 4096ull * 1024};
  const YcsbMixture c_mixtures[] = {YcsbMixture::kBalanced,
                                    YcsbMixture::kWriteHeavy};

  SerialRun a_runs[4][4];
  SerialRun b_runs[2][2];
  SerialRun c_runs[4][2];

  BenchRunner runner("ablation");
  AddScaleContext(&runner);
  for (int e = 0; e < 4; e++) {
    for (int g = 0; g < 4; g++) {
      const EngineKind engine = a_engines[e];
      const size_t group = a_groups[g];
      runner.Submit([&a_runs, e, g, engine, group]() {
        EngineConfig ec;
        ec.group_commit_size = group;
        a_runs[e][g] =
            RunYcsbSerial(engine, ec, YcsbMixture::kWriteHeavy);
        return SerialCell({{"section", "group_commit"},
                           {"engine", EngineKindName(engine)},
                           {"group", std::to_string(group)}},
                          a_runs[e][g]);
      });
    }
  }
  for (int b = 0; b < 2; b++) {
    for (int m = 0; m < 2; m++) {
      const bool use_blooms = b == 0;
      const YcsbMixture mixture = b_mixtures[m];
      runner.Submit([&b_runs, b, m, use_blooms, mixture]() {
        EngineConfig ec;
        ec.use_bloom_filters = use_blooms;
        // Small MemTables and a high compaction trigger leave many
        // immutable runs alive, which is when the filters earn their keep.
        ec.memtable_threshold_bytes = 16 * 1024;
        ec.lsm_level0_limit = 48;
        b_runs[b][m] = RunYcsbSerial(EngineKind::kNvmLog, ec, mixture);
        return SerialCell({{"section", "bloom_filters"},
                           {"blooms", use_blooms ? "on" : "off"},
                           {"mixture", YcsbMixtureName(mixture)}},
                          b_runs[b][m]);
      });
    }
  }
  for (int t = 0; t < 4; t++) {
    for (int m = 0; m < 2; m++) {
      const size_t threshold = c_thresholds[t];
      const YcsbMixture mixture = c_mixtures[m];
      runner.Submit([&c_runs, t, m, threshold, mixture]() {
        EngineConfig ec;
        ec.memtable_threshold_bytes = threshold;
        c_runs[t][m] = RunYcsbSerial(EngineKind::kLog, ec, mixture);
        return SerialCell({{"section", "memtable_threshold"},
                           {"threshold", std::to_string(threshold)},
                           {"mixture", YcsbMixtureName(mixture)}},
                          c_runs[t][m]);
      });
    }
  }
  runner.Wait();

  PrintHeader(
      "Ablation A: group-commit size vs throughput & response latency "
      "(YCSB write-heavy, 1 partition, low NVM latency)");
  printf("%-10s %6s %14s %14s %14s\n", "engine", "group", "txn/sec",
         "mean resp us", "p99 resp us");
  for (int e = 0; e < 4; e++) {
    for (int g = 0; g < 4; g++) {
      const SerialRun& r = a_runs[e][g];
      printf("%-10s %6zu %14.0f %14.2f %14.2f\n",
             EngineKindName(a_engines[e]), a_groups[g], r.throughput,
             r.latency.mean_ns / 1000.0, r.latency.p99_ns / 1000.0);
    }
  }
  printf(
      "\nShape: bigger groups raise throughput for the WAL/CoW engines but\n"
      "inflate response latency (txns wait for the group force); NVM-InP\n"
      "is flat — every commit is durable immediately (Section 4.1).\n");

  PrintHeader(
      "Ablation B: NVM-Log Bloom filters (read amplification control)");
  printf("%-12s %14s %14s\n", "blooms", "read-heavy", "balanced");
  for (int b = 0; b < 2; b++) {
    printf("%-12s", b == 0 ? "on" : "off");
    for (int m = 0; m < 2; m++) printf("%14.0f", b_runs[b][m].throughput);
    printf("\n");
  }
  printf(
      "\nShape: disabling the filters forces index look-ups in every\n"
      "immutable MemTable (Section 4.3). The margin stays small while\n"
      "compaction keeps the run count low — the filters are insurance\n"
      "against compaction lag.\n");

  PrintHeader("Ablation C: Log engine MemTable flush threshold");
  printf("%-14s %14s %14s\n", "threshold", "balanced", "write-heavy");
  for (int t = 0; t < 4; t++) {
    printf("%-14s", FormatBytes(c_thresholds[t]).c_str());
    for (int m = 0; m < 2; m++) printf("%14.0f", c_runs[t][m].throughput);
    printf("\n");
  }
  printf(
      "\nShape: small MemTables flush constantly (SSTable churn +\n"
      "compaction); large ones batch writes — the log-structured\n"
      "trade-off of Section 3.3.\n");
  return ExitStatus();
}
