#include "engine/schema.h"

namespace nvmdb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (const auto& c : columns_) {
    if (!c.IsInlined()) has_varlen_ = true;
  }
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace nvmdb
