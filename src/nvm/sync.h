#pragma once

#include <cstdint>

#include "nvm/nvm_device.h"

namespace nvmdb {

/// Convenience wrappers around the device sync primitive, mirroring the
/// libpmem-style API the paper's allocator exposes (Section 2.3): write
/// back the covered cache lines (CLFLUSH / CLWB) and fence (SFENCE /
/// PCOMMIT). After `PmemPersist` returns, the range is durable.
void PmemPersist(NvmDevice* device, const void* p, size_t n);
void PmemPersist(NvmDevice* device, uint64_t offset, size_t n);

/// Data-less durability barrier: marks the point where a batched
/// durability operation (an fsync) is complete and may be acknowledged.
/// Counts as one crash-point event when a CrashSim is installed; free
/// otherwise. The individual block/inode persists before the barrier are
/// already durable — this names the moment the *whole* fsync retires.
void PmemBarrier(NvmDevice* device);

/// RAII override of the sync-primitive latency on a device; used by the
/// Appendix C sweep (Fig. 16) to model PCOMMIT/CLWB costs from 10 ns to
/// 10000 ns.
class ScopedSyncLatency {
 public:
  ScopedSyncLatency(NvmDevice* device, uint64_t sync_latency_ns,
                    bool use_clwb = false);
  ~ScopedSyncLatency();

  ScopedSyncLatency(const ScopedSyncLatency&) = delete;
  ScopedSyncLatency& operator=(const ScopedSyncLatency&) = delete;

 private:
  NvmDevice* device_;
  NvmLatencyConfig saved_;
};

}  // namespace nvmdb
