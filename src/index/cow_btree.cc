#include "index/cow_btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nvmdb {

namespace {
constexpr uint32_t kPageMagic = 0x434F5750;  // "COWP"
constexpr size_t kPageHeaderBytes = 8;       // magic + is_leaf + count
}  // namespace

CowBTree::CowBTree(PageStore* store) : store_(store) {
  current_root_ = store_->ReadMaster();
  dirty_root_ = current_root_;
}

size_t CowBTree::MaxValueSize() const {
  // One entry must fit a leaf page: header + key + vlen + value.
  return store_->page_size() - kPageHeaderBytes - 12;
}

size_t CowBTree::InnerCapacity() const {
  const size_t cap =
      (store_->page_size() - kPageHeaderBytes - 8) / (2 * 8);
  return cap < 4 ? 4 : cap;
}

size_t CowBTree::SerializedSize(const Node& node) const {
  if (node.leaf) {
    size_t bytes = kPageHeaderBytes;
    for (const auto& v : node.values) bytes += 12 + v.size();
    return bytes;
  }
  return kPageHeaderBytes + node.keys.size() * 8 +
         node.children.size() * 8;
}

void CowBTree::SerializeNode(const Node& node, uint8_t* buf) const {
  memset(buf, 0, store_->page_size());
  uint8_t* p = buf;
  memcpy(p, &kPageMagic, 4);
  p += 4;
  const uint16_t is_leaf = node.leaf ? 1 : 0;
  memcpy(p, &is_leaf, 2);
  p += 2;
  const uint16_t count = static_cast<uint16_t>(node.keys.size());
  memcpy(p, &count, 2);
  p += 2;
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); i++) {
      memcpy(p, &node.keys[i], 8);
      p += 8;
      const uint32_t vlen = static_cast<uint32_t>(node.values[i].size());
      memcpy(p, &vlen, 4);
      p += 4;
      memcpy(p, node.values[i].data(), vlen);
      p += vlen;
    }
  } else {
    for (uint64_t k : node.keys) {
      memcpy(p, &k, 8);
      p += 8;
    }
    for (uint64_t c : node.children) {
      memcpy(p, &c, 8);
      p += 8;
    }
  }
  assert(static_cast<size_t>(p - buf) <= store_->page_size());
}

CowBTree::Node CowBTree::ParseNode(const uint8_t* buf) const {
  Node node;
  const uint8_t* p = buf;
  uint32_t magic;
  memcpy(&magic, p, 4);
  p += 4;
  assert(magic == kPageMagic && "corrupt CoW page");
  uint16_t is_leaf, count;
  memcpy(&is_leaf, p, 2);
  p += 2;
  memcpy(&count, p, 2);
  p += 2;
  node.leaf = is_leaf != 0;
  node.keys.resize(count);
  if (node.leaf) {
    node.values.resize(count);
    for (size_t i = 0; i < count; i++) {
      memcpy(&node.keys[i], p, 8);
      p += 8;
      uint32_t vlen;
      memcpy(&vlen, p, 4);
      p += 4;
      node.values[i].assign(reinterpret_cast<const char*>(p), vlen);
      p += vlen;
    }
  } else {
    for (size_t i = 0; i < count; i++) {
      memcpy(&node.keys[i], p, 8);
      p += 8;
    }
    node.children.resize(count + 1);
    for (size_t i = 0; i <= count; i++) {
      memcpy(&node.children[i], p, 8);
      p += 8;
    }
  }
  return node;
}

CowBTree::Node CowBTree::LoadNode(uint64_t epid) const {
  assert(epid != kNilPage);
  std::vector<uint8_t> buf(store_->page_size());
  store_->ReadPage(epid - 1, buf.data());
  return ParseNode(buf.data());
}

uint64_t CowBTree::StoreNode(const Node& node, uint64_t old_epid) {
  uint64_t epid;
  if (old_epid != kNilPage && fresh_pages_.count(old_epid) != 0) {
    // Already part of the dirty directory: update in place.
    epid = old_epid;
  } else {
    epid = store_->AllocPage() + 1;
    fresh_pages_.insert(epid);
    if (old_epid != kNilPage) replaced_pages_.push_back(old_epid);
  }
  std::vector<uint8_t> buf(store_->page_size());
  SerializeNode(node, buf.data());
  store_->WritePage(epid - 1, buf.data());
  return epid;
}

void CowBTree::SplitLeaf(Node* node, Node* right) const {
  // Split by accumulated byte size so variable-length values balance.
  const size_t total = SerializedSize(*node);
  size_t acc = kPageHeaderBytes;
  size_t split_at = node->keys.size() / 2;
  for (size_t i = 0; i < node->keys.size(); i++) {
    acc += 12 + node->values[i].size();
    if (acc >= total / 2) {
      split_at = i + 1;
      break;
    }
  }
  if (split_at == 0) split_at = 1;
  if (split_at >= node->keys.size()) split_at = node->keys.size() - 1;
  right->leaf = true;
  right->keys.assign(node->keys.begin() + split_at, node->keys.end());
  right->values.assign(node->values.begin() + split_at, node->values.end());
  node->keys.resize(split_at);
  node->values.resize(split_at);
}

void CowBTree::SplitInner(Node* node, Node* right, uint64_t* sep) const {
  const size_t mid = node->keys.size() / 2;
  *sep = node->keys[mid];
  right->leaf = false;
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
}

CowBTree::ModResult CowBTree::PutRec(uint64_t epid, uint64_t key,
                                     const Slice& value, bool* inserted) {
  ModResult result;
  Node node;
  if (epid == kNilPage) {
    node.leaf = true;
  } else {
    node = LoadNode(epid);
  }

  if (node.leaf) {
    const auto it =
        std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const size_t i = static_cast<size_t>(it - node.keys.begin());
    if (it != node.keys.end() && *it == key) {
      node.values[i] = value.ToString();
      *inserted = false;
    } else {
      node.keys.insert(it, key);
      node.values.insert(node.values.begin() + i, value.ToString());
      *inserted = true;
    }
    if (SerializedSize(node) > store_->page_size() && node.keys.size() > 1) {
      Node right;
      SplitLeaf(&node, &right);
      result.has_split = true;
      result.split_key = right.keys.front();
      result.right_pid = StoreNode(right, kNilPage);
    }
    result.pid = StoreNode(node, epid);
    return result;
  }

  // Inner: keys[i] is the smallest key of children[i+1].
  size_t ci = static_cast<size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin());
  ModResult child = PutRec(node.children[ci], key, value, inserted);
  node.children[ci] = child.pid;
  if (child.has_split) {
    node.keys.insert(node.keys.begin() + ci, child.split_key);
    node.children.insert(node.children.begin() + ci + 1, child.right_pid);
  }
  if (node.keys.size() > InnerCapacity()) {
    Node right;
    uint64_t sep;
    SplitInner(&node, &right, &sep);
    result.has_split = true;
    result.split_key = sep;
    result.right_pid = StoreNode(right, kNilPage);
  }
  result.pid = StoreNode(node, epid);
  return result;
}

bool CowBTree::Put(uint64_t key, const Slice& value) {
  if (value.size() > MaxValueSize()) return false;
  bool inserted = false;
  ModResult result = PutRec(dirty_root_, key, value, &inserted);
  if (result.has_split) {
    Node new_root;
    new_root.leaf = false;
    new_root.keys = {result.split_key};
    new_root.children = {result.pid, result.right_pid};
    dirty_root_ = StoreNode(new_root, kNilPage);
  } else {
    dirty_root_ = result.pid;
  }
  return true;
}

CowBTree::ModResult CowBTree::DeleteRec(uint64_t epid, uint64_t key,
                                        bool* deleted) {
  ModResult result;
  result.pid = epid;
  if (epid == kNilPage) return result;
  Node node = LoadNode(epid);

  if (node.leaf) {
    const auto it =
        std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) return result;
    const size_t i = static_cast<size_t>(it - node.keys.begin());
    node.keys.erase(it);
    node.values.erase(node.values.begin() + i);
    *deleted = true;
    if (node.keys.empty()) {
      result.removed = true;
      if (fresh_pages_.count(epid) != 0) {
        fresh_pages_.erase(epid);
        store_->FreePage(epid - 1);
      } else {
        replaced_pages_.push_back(epid);
      }
      result.pid = kNilPage;
      return result;
    }
    result.pid = StoreNode(node, epid);
    return result;
  }

  size_t ci = static_cast<size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin());
  ModResult child = DeleteRec(node.children[ci], key, deleted);
  if (!*deleted) return result;
  if (child.removed) {
    node.children.erase(node.children.begin() + ci);
    if (ci == 0) {
      if (!node.keys.empty()) node.keys.erase(node.keys.begin());
    } else {
      node.keys.erase(node.keys.begin() + ci - 1);
    }
    if (node.children.empty()) {
      result.removed = true;
      if (fresh_pages_.count(epid) != 0) {
        fresh_pages_.erase(epid);
        store_->FreePage(epid - 1);
      } else {
        replaced_pages_.push_back(epid);
      }
      result.pid = kNilPage;
      return result;
    }
  } else {
    node.children[ci] = child.pid;
  }
  result.pid = StoreNode(node, epid);
  return result;
}

bool CowBTree::Delete(uint64_t key) {
  bool deleted = false;
  ModResult result = DeleteRec(dirty_root_, key, &deleted);
  if (!deleted) return false;
  dirty_root_ = result.pid;
  // Collapse a single-child root.
  while (dirty_root_ != kNilPage) {
    Node node = LoadNode(dirty_root_);
    if (node.leaf || node.children.size() != 1) break;
    const uint64_t old_root = dirty_root_;
    dirty_root_ = node.children[0];
    if (fresh_pages_.count(old_root) != 0) {
      fresh_pages_.erase(old_root);
      store_->FreePage(old_root - 1);
    } else {
      replaced_pages_.push_back(old_root);
    }
  }
  return true;
}

bool CowBTree::GetRec(uint64_t epid, uint64_t key, std::string* out) const {
  if (epid == kNilPage) return false;
  Node node = LoadNode(epid);
  while (!node.leaf) {
    const size_t ci = static_cast<size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin());
    node = LoadNode(node.children[ci]);
  }
  const auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
  if (it == node.keys.end() || *it != key) return false;
  if (out != nullptr) {
    *out = node.values[static_cast<size_t>(it - node.keys.begin())];
  }
  return true;
}

bool CowBTree::Get(uint64_t key, std::string* out) const {
  return GetRec(dirty_root_, key, out);
}

bool CowBTree::GetCommitted(uint64_t key, std::string* out) const {
  return GetRec(current_root_, key, out);
}

void CowBTree::ScanRec(
    uint64_t epid, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Slice&)>& fn,
    bool* keep_going) const {
  if (epid == kNilPage || !*keep_going) return;
  Node node = LoadNode(epid);
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); i++) {
      if (node.keys[i] < lo) continue;
      if (node.keys[i] > hi) {
        *keep_going = false;
        return;
      }
      if (!fn(node.keys[i], Slice(node.values[i]))) {
        *keep_going = false;
        return;
      }
    }
    return;
  }
  for (size_t i = 0; i < node.children.size() && *keep_going; i++) {
    const bool lo_ok = (i == node.keys.size()) || lo <= node.keys[i];
    const bool hi_ok = (i == 0) || node.keys[i - 1] <= hi;
    if (lo_ok && hi_ok) ScanRec(node.children[i], lo, hi, fn, keep_going);
  }
}

void CowBTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Slice&)>& fn) const {
  bool keep_going = true;
  ScanRec(dirty_root_, lo, hi, fn, &keep_going);
}

void CowBTree::Commit() {
  if (dirty_root_ == current_root_ && fresh_pages_.empty()) return;
  std::set<uint64_t> to_flush;
  for (uint64_t epid : fresh_pages_) to_flush.insert(epid - 1);
  store_->FlushPages(to_flush);
  store_->WriteMaster(dirty_root_);
  for (uint64_t epid : replaced_pages_) store_->FreePage(epid - 1);
  replaced_pages_.clear();
  fresh_pages_.clear();
  current_root_ = dirty_root_;
}

void CowBTree::Abort() {
  for (uint64_t epid : fresh_pages_) store_->FreePage(epid - 1);
  fresh_pages_.clear();
  replaced_pages_.clear();
  dirty_root_ = current_root_;
}

void CowBTree::CollectReachable(uint64_t epid,
                                std::set<uint64_t>* out) const {
  if (epid == kNilPage) return;
  out->insert(epid - 1);
  Node node = LoadNode(epid);
  if (!node.leaf) {
    for (uint64_t child : node.children) CollectReachable(child, out);
  }
}

void CowBTree::GarbageCollect() {
  std::set<uint64_t> reachable;
  CollectReachable(current_root_, &reachable);
  store_->RetainOnly(reachable);
}

size_t CowBTree::PageCount() const {
  std::set<uint64_t> reachable;
  CollectReachable(dirty_root_, &reachable);
  return reachable.size();
}

}  // namespace nvmdb
