/// Fig. 11 — NVM loads/stores executed while running TPC-C.
///
/// One grid cell per engine, run concurrently; printing deferred past the
/// barrier (stdout identical for any NVMDB_BENCH_JOBS).
///
/// Expected shape (paper): NVM-aware engines perform 31–42% fewer writes;
/// access pattern resembles the YCSB write-heavy mixture; the Log engine
/// writes more here than under YCSB because TPC-C's secondary indexes add
/// maintenance writes.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  printf("TPC-C: %zu warehouses, %llu txns\n", Scale().partitions,
         (unsigned long long)Scale().tpcc_txns);

  std::vector<BenchRun> runs(AllEngines().size());
  BenchRunner runner("fig11_tpcc_rw");
  AddScaleContext(&runner);
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const EngineKind engine = AllEngines()[e];
    runner.Submit([&runs, e, engine]() {
      runs[e] = RunTpcc(engine);
      return CellFromRun({{"engine", EngineKindName(engine)}}, runs[e],
                         Scale().partitions);
    });
  }
  runner.Wait();

  PrintHeader("Fig. 11: TPC-C NVM loads & stores (millions)");
  printf("%-10s", "");
  for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
  printf("\n%-10s", "loads");
  for (const BenchRun& r : runs) printf("%12.3f", r.counters.loads / 1e6);
  printf("\n%-10s", "stores");
  for (const BenchRun& r : runs) printf("%12.3f", r.counters.stores / 1e6);
  printf("\n");

  const double inp = static_cast<double>(runs[0].counters.stores);
  const double nvm_inp = static_cast<double>(runs[3].counters.stores);
  printf("\nNVM-InP stores vs InP: %.0f%% fewer\n",
         100.0 * (inp - nvm_inp) / inp);
  printf(
      "Paper shape: NVM-aware engines 31-42%% fewer stores; patterns match\n"
      "the YCSB write-heavy mixture (Section 5.3, Fig. 11).\n");
  return ExitStatus();
}
