#!/usr/bin/env python3
"""Model-only digest of BENCH_*.json reports, for divergence diffing.

The simulator guarantees that its *model* output — commit counts,
simulated nanoseconds, derived throughput metrics — is bit-identical
across concurrency modes (owner vs shared), job counts, and host speeds;
only wall-clock fields may differ. This script projects a directory of
BENCH_<name>.json reports onto exactly the model fields and prints a
canonical JSON digest, so CI can run the same benchmarks twice (e.g.
default owner mode vs NVMDB_SHARED_CACHE=1) and `diff` the two digests:
any non-empty diff is a model divergence and fails the job.

Excluded as host-dependent: jobs, wall_ns, load_ns, run_ns,
sim_wall_ratio, total_wall_ns, total_sim_wall_ratio.

Everything else is model output and *stays in the digest* — notably the
per-cell "latency" object (histogram-derived response-time percentiles
on the simulated clock; integer bucket lower bounds) and the "stalls"
object (per-component stall attribution in integer nanoseconds). Both
are bit-identical across owner/shared modes and job counts by
construction, so a divergence in either fails the CI diff just like a
counter drift would.

Usage:
  scripts/bench_model_digest.py [--dir DIR] [--out FILE]

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys

WALL_FIELDS = {
    "jobs",
    "wall_ns",
    "load_ns",
    "run_ns",
    "sim_wall_ratio",
    "total_wall_ns",
    "total_sim_wall_ratio",
}


def strip_wall(node):
    if isinstance(node, dict):
        return {
            k: strip_wall(v)
            for k, v in node.items()
            if k not in WALL_FIELDS
        }
    if isinstance(node, list):
        return [strip_wall(v) for v in node]
    return node


def main():
    parser = argparse.ArgumentParser(
        description="Project BENCH_*.json onto model-only fields."
    )
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json files"
    )
    parser.add_argument(
        "--out", default="-", help="output file ('-' for stdout)"
    )
    args = parser.parse_args()

    digest = {}
    for path in sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_model_digest: bad {path}: {err}", file=sys.stderr)
            return 1
        digest[os.path.basename(path)] = strip_wall(report)
    if not digest:
        print(
            f"bench_model_digest: no BENCH_*.json in {args.dir}",
            file=sys.stderr,
        )
        return 1

    text = json.dumps(digest, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
