#include "engine/tuple.h"

#include <cassert>

namespace nvmdb {

namespace {
uint64_t MixHash(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

std::string Tuple::SerializeInlined() const {
  std::string out;
  const size_t n = schema_->num_columns();
  out.reserve(LogicalSize() + n * 4);
  for (size_t i = 0; i < n; i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar) {
      const uint32_t len = static_cast<uint32_t>(strings_[i].size());
      out.append(reinterpret_cast<const char*>(&len), 4);
      out.append(strings_[i]);
    } else {
      out.append(reinterpret_cast<const char*>(&numerics_[i]), 8);
    }
  }
  return out;
}

Tuple Tuple::ParseInlined(const Schema* schema, const Slice& data) {
  Tuple t(schema);
  const char* p = data.data();
  const char* end = p + data.size();
  for (size_t i = 0; i < schema->num_columns(); i++) {
    const Column& col = schema->column(i);
    if (col.type == ColumnType::kVarchar) {
      uint32_t len = 0;
      assert(p + 4 <= end);
      memcpy(&len, p, 4);
      p += 4;
      assert(p + len <= end);
      t.strings_[i].assign(p, len);
      p += len;
    } else {
      assert(p + 8 <= end);
      memcpy(&t.numerics_[i], p, 8);
      p += 8;
    }
  }
  (void)end;
  return t;
}

size_t Tuple::LogicalSize() const {
  size_t bytes = schema_->FixedSize();
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    if (schema_->column(i).type == ColumnType::kVarchar) {
      bytes += strings_[i].size();
    }
  }
  return bytes;
}

bool Tuple::EqualTo(const Tuple& other) const {
  if (schema_ != other.schema_ &&
      (schema_ == nullptr || other.schema_ == nullptr ||
       schema_->num_columns() != other.schema_->num_columns())) {
    return false;
  }
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    if (schema_->column(i).type == ColumnType::kVarchar) {
      if (strings_[i] != other.strings_[i]) return false;
    } else {
      if (numerics_[i] != other.numerics_[i]) return false;
    }
  }
  return true;
}

uint64_t SecondaryKeyHash(const Tuple& tuple, const SecondaryIndexDef& def) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t col : def.key_columns) {
    if (tuple.schema()->column(col).type == ColumnType::kVarchar) {
      const std::string& s = tuple.GetString(col);
      h = MixHash(h, s.data(), s.size());
    } else {
      const uint64_t v = tuple.GetU64(col);
      h = MixHash(h, &v, 8);
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h & 0xFFFFFFFFFFFFULL;  // 48 bits
}

uint64_t SecondaryKeyHash(const Schema& schema, const SecondaryIndexDef& def,
                          const std::vector<Value>& key_values) {
  uint64_t h = 14695981039346656037ULL;
  assert(key_values.size() == def.key_columns.size());
  for (size_t i = 0; i < def.key_columns.size(); i++) {
    const size_t col = def.key_columns[i];
    if (schema.column(col).type == ColumnType::kVarchar) {
      h = MixHash(h, key_values[i].str.data(), key_values[i].str.size());
    } else {
      h = MixHash(h, &key_values[i].num, 8);
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h & 0xFFFFFFFFFFFFULL;
}

}  // namespace nvmdb
