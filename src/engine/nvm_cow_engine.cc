#include "engine/nvm_cow_engine.h"

#include <cstring>

namespace nvmdb {

NvmCowEngine::NvmCowEngine(const EngineConfig& config)
    : CowEngine(config,
                std::make_unique<NvmPageStore>(
                    config.allocator,
                    config.namespace_prefix + ".nvmcow",
                    config.cow_page_bytes, StorageTag::kIndex)),
      allocator_(config.allocator) {
  allocator_->set_eager_state_sync(true);
}

Status NvmCowEngine::CreateTable(const TableDef& def) {
  Status s = CowEngine::CreateTable(def);
  if (!s.ok()) return s;
  heaps_[def.table_id] = std::make_unique<TableHeap>(
      allocator_, &tables_[def.table_id].def.schema, /*nvm_aware=*/false);
  return Status::OK();
}

Status NvmCowEngine::EncodeTupleValueTo(uint32_t table_id,
                                        const Tuple& tuple,
                                        std::string* out) {
  // Persist the tuple copy into the slot pools and hand the directory an
  // 8-byte non-volatile pointer — the data-duplication saving of
  // Section 4.2. The sync is deferred to the batch flush.
  TableHeap* heap = heaps_[table_id].get();
  const uint64_t slot = heap->Insert(tuple, /*defer_mark=*/true);
  if (slot == 0) return Status::OutOfSpace("tuple slot");
  txn_new_slots_.push_back({table_id, slot});
  out->append(reinterpret_cast<const char*>(&slot), 8);
  return Status::OK();
}

void NvmCowEngine::DecodeTupleValueTo(uint32_t table_id, const Slice& value,
                                      Tuple* out) {
  uint64_t slot;
  memcpy(&slot, value.data(), 8);
  heaps_[table_id]->Read(slot, out);
}

void NvmCowEngine::OnValueReplaced(uint32_t table_id,
                                   const Slice& old_value) {
  uint64_t slot;
  memcpy(&slot, old_value.data(), 8);
  txn_old_slots_.push_back({table_id, slot});
}

void NvmCowEngine::OnTxnCommitHook() {
  batch_new_slots_.insert(batch_new_slots_.end(), txn_new_slots_.begin(),
                          txn_new_slots_.end());
  batch_old_slots_.insert(batch_old_slots_.end(), txn_old_slots_.begin(),
                          txn_old_slots_.end());
  txn_new_slots_.clear();
  txn_old_slots_.clear();
}

void NvmCowEngine::OnTxnAbortHook() {
  // The journal already restored the directory; discard this
  // transaction's tuple copies and keep the old versions.
  for (const HeapEntry& e : txn_new_slots_) {
    heaps_[e.table_id]->Free(e.slot);
  }
  txn_new_slots_.clear();
  txn_old_slots_.clear();
}

void NvmCowEngine::OnBatchFlush() {
  // Section 4.2 commit order, step 1: persist the uncommitted tuple
  // copies (the dirty-directory pages and master record follow in
  // CowBTree::Commit).
  for (const HeapEntry& e : batch_new_slots_) {
    heaps_[e.table_id]->PersistTuple(e.slot);
  }
  batch_new_slots_.clear();
}

void NvmCowEngine::OnBatchFlushed() {
  // Old versions are unreachable from the new current directory.
  for (const HeapEntry& e : batch_old_slots_) {
    heaps_[e.table_id]->Free(e.slot);
  }
  batch_old_slots_.clear();
}

Status NvmCowEngine::Recover() {
  // Allocator recovery already reclaimed unpersisted tuple copies and
  // dirty-directory pages; the tree re-opens from the master record.
  txn_new_slots_.clear();
  txn_old_slots_.clear();
  batch_new_slots_.clear();
  batch_old_slots_.clear();
  return CowEngine::Recover();
}

FootprintStats NvmCowEngine::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  stats.table_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.index_bytes = store_->StorageBytes();
  return stats;
}

}  // namespace nvmdb
