#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nvmdb {

/// Response-latency summary on the simulated clock, produced from a
/// LatencyHistogram. All percentile fields are bucket lower bounds, so
/// they are exact integers and bit-identical wherever the recorded
/// values are (owner vs shared mode, any job count).
struct LatencySummary {
  uint64_t count = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};

/// Fixed-layout log-bucketed latency histogram (HdrHistogram-style
/// log-linear bucketing) for simulated-clock durations.
///
/// Layout: values below kSubBucketCount (64) get one bucket each; above
/// that, each power-of-two range is split into 64 linear sub-buckets, so
/// the relative quantization error is bounded by 1/64 (~1.6%) at every
/// magnitude. Values below 128 ns are represented exactly. The layout is
/// fixed at compile time — no per-run resizing — so bucket indexes, and
/// therefore every percentile in the JSON reports, are reproducible
/// across runs, hosts, and partition merge orders.
///
/// Merging is bucket-wise addition, which is commutative and associative:
/// per-partition histograms can be merged in any order and yield the same
/// percentiles, which is what lets Coordinator::Run report tail latency
/// for multi-partition cells without breaking determinism.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBucketBits = 6;
  static constexpr size_t kSubBucketCount = size_t{1} << kSubBucketBits;
  /// Group 0 covers [0, 64) one value per bucket; groups 1..58 cover
  /// [64, 2^64) with 64 sub-buckets per power of two.
  static constexpr size_t kNumGroups = 64 - kSubBucketBits + 1;  // 59
  static constexpr size_t kNumBuckets = kNumGroups * kSubBucketCount;

  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  /// Bucket index of `value`: identity below 64, log-linear above.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBucketCount) return static_cast<size_t>(value);
    const int exponent = 63 - CountLeadingZeros(value);
    const size_t group = static_cast<size_t>(exponent) - kSubBucketBits + 1;
    const uint64_t sub =
        (value >> (exponent - static_cast<int>(kSubBucketBits))) -
        kSubBucketCount;
    return group * kSubBucketCount + static_cast<size_t>(sub);
  }

  /// Smallest value mapping to bucket `index` (the value percentiles
  /// report).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < kSubBucketCount) return index;
    const size_t group = index / kSubBucketCount;
    const uint64_t sub = index % kSubBucketCount;
    return (kSubBucketCount + sub) << (group - 1);
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)]++;
    count_++;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  /// Bucket-wise merge; count/sum/max fold in the obvious way.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Nearest-rank percentile, returned as the containing bucket's lower
  /// bound. The rank is ceil(pct/100 * count) clamped to [1, count] — the
  /// textbook definition; the previous sorted-vector code used
  /// floor(pct/100 * count) as an *index*, which returns the maximum
  /// (p100) whenever that lands on the last element (e.g. p99 of 100
  /// samples). Computed in integer arithmetic (pct quantized to 1/100ths
  /// of a percent) so no floating-point rounding can move a rank.
  uint64_t Percentile(double pct) const;

  /// Fixed summary the testbed and JSON reports carry per cell.
  LatencySummary Summarize() const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }

  bool operator==(const LatencyHistogram& o) const {
    return count_ == o.count_ && sum_ == o.sum_ && max_ == o.max_ &&
           buckets_ == o.buckets_;
  }
  bool operator!=(const LatencyHistogram& o) const { return !(*this == o); }

 private:
  static int CountLeadingZeros(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(v);
#else
    int n = 0;
    for (uint64_t bit = uint64_t{1} << 63; bit != 0 && !(v & bit); bit >>= 1) {
      n++;
    }
    return n;
#endif
  }

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace nvmdb
