// Proves the steady-state transaction hot path runs without heap
// allocation, by replacing the global allocator with a counting one and
// measuring whole benchmark runs. Also pins the single-pass WAL encoder
// byte-for-byte against the historical two-pass layout.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/crc32.h"
#include "engine/wal.h"
#include "test_util.h"
#include "testbed/coordinator.h"
#include "workload/ycsb.h"

// Replacing the global allocator fights ASan's own new/delete
// interceptors (alloc-dealloc-mismatch on the aligned overloads), and an
// instrumented allocator's counts would be meaningless anyway — under
// sanitizers the counting harness stands down and the tests skip.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NVMDB_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NVMDB_SANITIZED 1
#endif
#endif
#ifndef NVMDB_SANITIZED
#define NVMDB_SANITIZED 0
#endif

namespace {

std::atomic<uint64_t> g_alloc_count{0};

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

#if !NVMDB_SANITIZED
void* CountedAlloc(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(size_t size, size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (!p) throw std::bad_alloc();
  return p;
}
#endif  // !NVMDB_SANITIZED

}  // namespace

#if !NVMDB_SANITIZED
void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // !NVMDB_SANITIZED

namespace nvmdb {
namespace {

YcsbConfig SmallYcsb(YcsbMixture mixture, uint64_t num_txns) {
  YcsbConfig config;
  config.num_tuples = 4000;
  config.num_txns = num_txns;
  config.num_partitions = 2;
  config.mixture = mixture;
  config.skew = YcsbSkew::kLow;
  config.field_size = 100;
  config.seed = 42;
  return config;
}

// Allocations performed by one coordinator.Run() over pre-generated,
// already-warmed queues. The first run grows every reusable pool
// (scratch tuples, lookup record pools, WAL buffers) to the workload's
// working size; the measured run starts from that steady state.
uint64_t MeasureRun(EngineKind kind, YcsbMixture mixture,
                    uint64_t num_txns) {
  // Default engine thresholds (benchmark configuration): testutil::MakeDb
  // shrinks the memtable flush threshold to exercise flush paths quickly,
  // which is exactly the non-steady-state behavior this test must exclude.
  DatabaseConfig config;
  config.num_partitions = 2;
  config.nvm_capacity = 256ull * 1024 * 1024;
  config.latency = NvmLatencyConfig::Dram();
  config.engine = kind;
  auto db = std::make_unique<Database>(config);
  YcsbWorkload workload(SmallYcsb(mixture, num_txns));
  EXPECT_TRUE(workload.Load(db.get()).ok());
  std::vector<TxnQueue> queues = workload.GenerateQueues();
  Coordinator coordinator(db.get());
  coordinator.Run(queues);  // warmup: grow pools / caches
  const uint64_t before = AllocCount();
  const RunResult result = coordinator.Run(queues);
  const uint64_t after = AllocCount();
  EXPECT_EQ(result.committed, num_txns);
  return after - before;
}

class AllocCountTest : public ::testing::TestWithParam<EngineKind> {};

// Steady-state read transactions perform zero heap allocations: a run of
// 3N transactions allocates exactly as much as a run of N (the shared
// remainder is per-run setup — scratch vectors, result histograms — not
// per-transaction cost).
TEST_P(AllocCountTest, ReadPathIsAllocationFree) {
  if (NVMDB_SANITIZED) GTEST_SKIP() << "allocator not replaced under sanitizers";
  const uint64_t small = MeasureRun(GetParam(), YcsbMixture::kReadOnly, 512);
  const uint64_t large =
      MeasureRun(GetParam(), YcsbMixture::kReadOnly, 1536);
  EXPECT_EQ(large, small)
      << "read transactions allocate on the hot path: "
      << (large - small) << " extra allocations over 1024 extra txns";
}

// Update transactions retain data (delta records, copy-on-write pages),
// so they cannot be literally allocation-free — but the per-transaction
// cost must stay bounded by a small constant (data retention), not the
// old per-txn churn of tuples, closures and WAL payload temporaries.
TEST_P(AllocCountTest, UpdatePathAllocationsBounded) {
  if (NVMDB_SANITIZED) GTEST_SKIP() << "allocator not replaced under sanitizers";
  const uint64_t small =
      MeasureRun(GetParam(), YcsbMixture::kWriteHeavy, 512);
  const uint64_t large =
      MeasureRun(GetParam(), YcsbMixture::kWriteHeavy, 1536);
  const uint64_t extra_txns = 1536 - 512;
  const uint64_t per_txn = (large - small) / extra_txns;
  EXPECT_LE(per_txn, 4u)
      << "update transactions average " << per_txn
      << " allocations each (delta " << (large - small) << " over "
      << extra_txns << " txns)";
}

INSTANTIATE_TEST_SUITE_P(Engines, AllocCountTest,
                         ::testing::ValuesIn(testutil::kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The historical two-pass encoder, kept verbatim as the golden reference:
// build the payload in a temporary, then emit [crc][len][payload].
void GoldenEncode(const LogRecordRef& record, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(record.op));
  payload.append(reinterpret_cast<const char*>(&record.txn_id), 8);
  payload.append(reinterpret_cast<const char*>(&record.table_id), 4);
  payload.append(reinterpret_cast<const char*>(&record.key), 8);
  uint32_t blen = static_cast<uint32_t>(record.before.size());
  uint32_t alen = static_cast<uint32_t>(record.after.size());
  payload.append(reinterpret_cast<const char*>(&blen), 4);
  payload.append(record.before.data(), record.before.size());
  payload.append(reinterpret_cast<const char*>(&alen), 4);
  payload.append(record.after.data(), record.after.size());

  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out->append(reinterpret_cast<const char*>(&crc), 4);
  out->append(reinterpret_cast<const char*>(&len), 4);
  out->append(payload);
}

TEST(WalEncodeGoldenTest, SinglePassMatchesTwoPassByteForByte) {
  const std::string before(137, 'b');
  const std::string after(512, 'a');
  struct Case {
    LogOp op;
    uint64_t txn;
    uint32_t table;
    uint64_t key;
    Slice before;
    Slice after;
  };
  const Case cases[] = {
      {LogOp::kInsert, 1, 7, 42, Slice(), Slice(after)},
      {LogOp::kUpdate, 99, 3, 1ull << 40, Slice(before), Slice(after)},
      {LogOp::kDelete, 12345, 1, 0, Slice(before), Slice()},
      {LogOp::kCommit, 7, 0, 0, Slice(), Slice()},
  };
  std::string got, want;
  for (const Case& c : cases) {
    LogRecordRef record;
    record.op = c.op;
    record.txn_id = c.txn;
    record.table_id = c.table;
    record.key = c.key;
    record.before = c.before;
    record.after = c.after;
    // Append both encodings to running buffers so backpatching at a
    // non-zero base offset is exercised too.
    EncodeLogRecord(record, &got);
    GoldenEncode(record, &want);
  }
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(got == want) << "encoders diverge";

  // And the stream round-trips through the decoder.
  size_t pos = 0, n = 0;
  while (pos < got.size()) {
    LogRecord decoded;
    size_t consumed = 0;
    ASSERT_TRUE(
        DecodeLogRecord(got.data() + pos, got.size() - pos, &decoded,
                        &consumed));
    EXPECT_EQ(decoded.op, cases[n].op);
    EXPECT_EQ(decoded.txn_id, cases[n].txn);
    EXPECT_EQ(decoded.before, cases[n].before.ToString());
    EXPECT_EQ(decoded.after, cases[n].after.ToString());
    pos += consumed;
    n++;
  }
  EXPECT_EQ(n, 4u);
}

}  // namespace
}  // namespace nvmdb
