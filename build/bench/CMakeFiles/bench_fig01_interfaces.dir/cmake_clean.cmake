file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_interfaces.dir/bench_fig01_interfaces.cc.o"
  "CMakeFiles/bench_fig01_interfaces.dir/bench_fig01_interfaces.cc.o.d"
  "bench_fig01_interfaces"
  "bench_fig01_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
