#pragma once

/// Bodies of CacheSim's per-(concurrency mode, probe kind) inner loops.
/// Included by exactly two translation units: cache_sim.cc, which
/// instantiates the scalar and SSE2 kinds, and cache_sim_avx2.cc, which is
/// the only file built with -mavx2 and instantiates the AVX2 kind — so
/// AVX2 instructions can never leak into code that runs on a pre-AVX2
/// machine, while all kinds share one definition of the model.

#include "nvm/cache_sim.h"

namespace nvmdb {

namespace cache_detail {

/// RAII bank lock that compiles to nothing in kOwner mode: the inner
/// loops are instantiated per mode, so the owner path contains no lock,
/// no atomic, and no mode branch.
template <ConcurrencyMode M>
struct BankGuard {
  explicit BankGuard(std::mutex&) {}
};

template <>
struct BankGuard<ConcurrencyMode::kShared> {
  explicit BankGuard(std::mutex& mu) : lock(mu) {}
  std::lock_guard<std::mutex> lock;
};

}  // namespace cache_detail

template <ProbeKind K>
inline uint32_t CacheSim::AccessLineT(Bank& bank, size_t global_set,
                                      uint64_t line_index, bool is_write,
                                      CacheAccessResult* result,
                                      size_t* way_out) {
  uint64_t* const ways = &entries_[global_set * associativity_];
  uint64_t* const stamps = &stamps_[global_set * associativity_];
  const uint64_t match = line_index << 1;

  // Hit probe first, over the packed entries alone: the common case
  // touches half the metadata (no stamps, no victim bookkeeping), and the
  // SIMD kinds resolve all 16 default ways in a handful of
  // compare+movemask steps.
  const int w = probe::SetProbe<K>::FindWay(ways, associativity_, match);
  if (w >= 0) {
    stamps[w] = ++bank.lru_clock;
    if (is_write) ways[w] |= 1;
    bank.hits++;
    *way_out = static_cast<size_t>(w);
    return 0;
  }

  // Miss: pick the victim — the last empty way if any exists, else the
  // first LRU-minimal way (identical choice to the seed's one-pass scan)
  // — write it back if dirty, then fill.
  const size_t victim =
      probe::SetProbe<K>::FindVictim(ways, stamps, associativity_);
  bank.misses++;
  const uint64_t evicted = ways[victim];
  if (evicted != kInvalidEntry && (evicted & 1)) {
    bank.write_backs++;
    result->write_backs++;
    if (callbacks_.write_back) {
      callbacks_.write_back(callbacks_.ctx, (evicted >> 1) << line_shift_,
                            line_size_);
    }
  }
  if (callbacks_.fill) {
    callbacks_.fill(callbacks_.ctx, line_index << line_shift_, line_size_);
  }
  ways[victim] = match | (is_write ? 1 : 0);
  stamps[victim] = ++bank.lru_clock;
  *way_out = victim;
  return 1;
}

template <ConcurrencyMode M, ProbeKind K>
CacheAccessResult CacheSim::AccessExImpl(uint64_t addr, size_t size,
                                         bool is_write) {
  CacheAccessResult result;
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
#if defined(__GNUC__)
    if (idx < last) {
      // Overlap the next line's metadata fetch with this probe: adjacent
      // lines hash to unrelated banks/sets by design (MixLineIndex), so
      // the next set's entries and stamps are never the memory being
      // scanned right now.
      const uint64_t nh = MixLineIndex(idx + 1);
      const size_t nslot = ((nh & bank_mask_) * sets_per_bank_ +
                            ((nh >> bank_shift_) & set_mask_)) *
                           associativity_;
      __builtin_prefetch(&entries_[nslot]);
      __builtin_prefetch(&stamps_[nslot]);
    }
#endif
    Bank& bank = banks_[bank_idx];
    cache_detail::BankGuard<M> guard(bank.mu);
    size_t way;
    result.missed += AccessLineT<K>(
        bank, bank_idx * sets_per_bank_ + set_idx, idx, is_write, &result,
        &way);
  }
  return result;
}

template <ConcurrencyMode M, ProbeKind K>
CacheAccessResult CacheSim::AccessSegmentsImpl(uint64_t addr,
                                               const uint32_t* lens,
                                               size_t num_segments,
                                               bool is_write) {
#if NVMDB_STREAM_CHECKS
  const uint64_t check_addr = addr;
  std::vector<uint64_t> visited;
#endif
  CacheAccessResult result;
  // The line visited last, so a segment boundary falling inside it can be
  // replayed as the guaranteed hit it is without re-probing the set.
  uint64_t prev_idx = ~0ull;
  size_t prev_bank = 0;
  size_t prev_slot = 0;

  for (size_t s = 0; s < num_segments; s++) {
    const uint32_t len = lens[s];
    if (len == 0) continue;  // the call it replaces was skipped entirely
    const uint64_t first = addr >> line_shift_;
    const uint64_t last = (addr + len - 1) >> line_shift_;
    addr += len;
    for (uint64_t idx = first; idx <= last; idx++) {
      result.lines++;
#if NVMDB_STREAM_CHECKS
      visited.push_back(idx);
#endif
      if (idx == prev_idx) {
        // The previous segment ended inside this line: the uncoalesced
        // stream re-probes and re-hits it, so replay exactly that hit's
        // bookkeeping (fresh LRU stamp, dirty marking, hit count) against
        // the slot the line is known to occupy.
        Bank& bank = banks_[prev_bank];
        cache_detail::BankGuard<M> guard(bank.mu);
        stamps_[prev_slot] = ++bank.lru_clock;
        if (is_write) entries_[prev_slot] |= 1;
        bank.hits++;
        continue;
      }
      const uint64_t h = MixLineIndex(idx);
      const size_t bank_idx = h & bank_mask_;
      const size_t set_idx = (h >> bank_shift_) & set_mask_;
      const size_t global_set = bank_idx * sets_per_bank_ + set_idx;
      Bank& bank = banks_[bank_idx];
      cache_detail::BankGuard<M> guard(bank.mu);
      size_t way;
      result.missed +=
          AccessLineT<K>(bank, global_set, idx, is_write, &result, &way);
      prev_idx = idx;
      prev_bank = bank_idx;
      prev_slot = global_set * associativity_ + way;
    }
  }

#if NVMDB_STREAM_CHECKS
  // Re-derive the uncoalesced stream — every non-empty segment visits its
  // line range in order, re-visiting a line shared with the previous
  // segment — and abort on any divergence (e.g. a future "dedupe the
  // boundary visit" edit, which would change hit counts and LRU order).
  size_t vi = 0;
  uint64_t a = check_addr;
  for (size_t s = 0; s < num_segments; s++) {
    if (lens[s] == 0) continue;
    const uint64_t first = a >> line_shift_;
    const uint64_t last = (a + lens[s] - 1) >> line_shift_;
    a += lens[s];
    for (uint64_t idx = first; idx <= last; idx++) {
      if (vi >= visited.size() || visited[vi] != idx) {
        StreamCheckViolation();
      }
      vi++;
    }
  }
  if (vi != visited.size()) StreamCheckViolation();
#endif
  return result;
}

template <ConcurrencyMode M, ProbeKind K>
size_t CacheSim::FlushRangeImpl(uint64_t addr, size_t size,
                                bool invalidate) {
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + size - 1) >> line_shift_;
  size_t flushed = 0;

  for (uint64_t idx = first; idx <= last; idx++) {
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    Bank& bank = banks_[bank_idx];
    cache_detail::BankGuard<M> guard(bank.mu);
    uint64_t* const ways =
        &entries_[(bank_idx * sets_per_bank_ + set_idx) * associativity_];
    const uint64_t match = idx << 1;
    const int w = probe::SetProbe<K>::FindWay(ways, associativity_, match);
    if (w < 0) continue;
    if (ways[w] & 1) {
      flushed++;
      bank.write_backs++;
      if (callbacks_.write_back) {
        callbacks_.write_back(callbacks_.ctx, idx << line_shift_,
                              line_size_);
      }
      ways[w] = match;  // clean
    }
    if (invalidate) ways[w] = kInvalidEntry;
  }
  return flushed;
}

/// Instantiates the inner loops for one (mode, probe kind); each
/// translation unit invokes it for the kinds it owns.
#define NVMDB_CACHE_SIM_INSTANTIATE(M, K)                                 \
  template CacheAccessResult CacheSim::AccessExImpl<M, K>(                \
      uint64_t, size_t, bool);                                            \
  template CacheAccessResult CacheSim::AccessSegmentsImpl<M, K>(          \
      uint64_t, const uint32_t*, size_t, bool);                           \
  template size_t CacheSim::FlushRangeImpl<M, K>(uint64_t, size_t, bool)

/// Declares a (mode, probe kind) as instantiated elsewhere, so the
/// dispatcher can reference a kind whose instructions this translation
/// unit must not emit (AVX2 from the baseline-ISA cache_sim.cc).
#define NVMDB_CACHE_SIM_DECLARE(M, K)                                     \
  extern template CacheAccessResult CacheSim::AccessExImpl<M, K>(         \
      uint64_t, size_t, bool);                                            \
  extern template CacheAccessResult CacheSim::AccessSegmentsImpl<M, K>(   \
      uint64_t, const uint32_t*, size_t, bool);                           \
  extern template size_t CacheSim::FlushRangeImpl<M, K>(uint64_t, size_t, \
                                                        bool)

}  // namespace nvmdb
