#include "testbed/crash_explorer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "common/random.h"
#include "nvm/crash_sim.h"
#include "testbed/database.h"

namespace nvmdb {

namespace {

constexpr uint32_t kTableId = 1;
constexpr uint64_t kTombstone = ~0ull;

TableDef ExplorerTable() {
  TableDef def;
  def.table_id = kTableId;
  def.name = "crashx";
  def.schema = Schema({{"id", ColumnType::kUInt64, 8},
                       {"name", ColumnType::kVarchar, 32},
                       {"payload", ColumnType::kVarchar, 100},
                       {"count", ColumnType::kUInt64, 8}});
  return def;
}

Tuple ExplorerTuple(const Schema* schema, uint64_t id, uint64_t count) {
  Tuple t(schema);
  t.SetU64(0, id);
  t.SetString(1, "k" + std::to_string(id));
  t.SetString(2, std::string(100, static_cast<char>('a' + id % 26)));
  t.SetU64(3, count);
  return t;
}

/// One committed transaction's writes, in op order. A delete writes
/// kTombstone.
struct TxnEffect {
  uint64_t txn_id = 0;
  std::vector<std::pair<uint64_t, uint64_t>> writes;  // key -> value
};

/// Shadow-model state frozen by the CrashSim capture callback, i.e. at the
/// exact durability event the crash strikes.
struct ShadowSnapshot {
  bool valid = false;
  size_t committed_count = 0;  // txns whose Commit() had returned
  uint64_t acked_txn = 0;      // LastDurableTxn read after that Commit
  bool in_commit = false;      // crash struck inside Commit(in_flight)
  TxnEffect in_flight;
};

struct RunResult {
  uint64_t total_events = 0;          // after the workload completed
  std::vector<TxnEffect> committed;   // full workload, commit order
  ShadowSnapshot snap;
};

Database* MakeExplorerDb(const CrashExplorerConfig& cfg,
                         std::unique_ptr<Database>* holder) {
  DatabaseConfig dc;
  dc.num_partitions = 1;
  dc.nvm_capacity = cfg.nvm_capacity;
  dc.latency = NvmLatencyConfig::Dram();
  dc.engine = cfg.engine;
  dc.engine_config.group_commit_size = cfg.group_commit_size;
  dc.engine_config.memtable_threshold_bytes = cfg.memtable_threshold_bytes;
  dc.engine_config.checkpoint_interval_txns = cfg.checkpoint_interval_txns;
  *holder = std::make_unique<Database>(dc);
  return holder->get();
}

/// Replay the deterministic workload. `sim`, when non-null, must already be
/// installed on the database's device; its capture callback is pointed at
/// this run's shadow model for the duration of the call. Every run with
/// the same config executes the identical operation sequence, so event
/// numbers name the same moment across runs.
RunResult RunWorkload(Database* db, const TableDef& def,
                      const CrashExplorerConfig& cfg, CrashSim* sim) {
  RunResult run;
  StorageEngine* engine = db->partition(0);
  Random rng(cfg.seed * 7919 + 13);

  std::map<uint64_t, uint64_t> model;  // committed state, drives op choice
  uint64_t acked = 0;
  TxnEffect current;
  bool in_commit = false;

  if (sim != nullptr) {
    sim->set_on_capture([&]() {
      run.snap.valid = true;
      run.snap.committed_count = run.committed.size();
      run.snap.acked_txn = acked;
      run.snap.in_commit = in_commit;
      run.snap.in_flight = current;
    });
  }

  for (int t = 0; t < cfg.txns; t++) {
    const bool abort = rng.Percent(cfg.abort_percent);
    const int ops = 1 + static_cast<int>(rng.Uniform(3));
    const uint64_t txn = engine->Begin();
    current.txn_id = txn;
    current.writes.clear();
    std::map<uint64_t, uint64_t> local = model;  // view including this txn
    for (int i = 0; i < ops; i++) {
      const uint64_t key = rng.Uniform(cfg.keys);
      const uint64_t value = rng.Uniform(1000000);
      const int op = static_cast<int>(rng.Uniform(3));
      if (op == 0 && local.count(key) == 0) {
        if (engine->Insert(txn, kTableId,
                           ExplorerTuple(&def.schema, key, value))
                .ok()) {
          current.writes.emplace_back(key, value);
          local[key] = value;
        }
      } else if (op == 1 && local.count(key) != 0) {
        if (engine->Update(txn, kTableId, key, {{3, Value::U64(value)}})
                .ok()) {
          current.writes.emplace_back(key, value);
          local[key] = value;
        }
      } else if (op == 2 && local.count(key) != 0) {
        if (engine->Delete(txn, kTableId, key).ok()) {
          current.writes.emplace_back(key, kTombstone);
          local.erase(key);
        }
      }
    }
    if (abort) {
      engine->Abort(txn);
      continue;
    }
    in_commit = true;
    engine->Commit(txn);
    in_commit = false;
    run.committed.push_back(current);
    model = std::move(local);
    acked = engine->LastDurableTxn();
  }

  if (sim != nullptr) {
    run.total_events = sim->event_count();
    // The callback captures locals of this frame; detach it before they
    // go out of scope (recovery-time events would otherwise dangle).
    sim->set_on_capture(nullptr);
  }
  return run;
}

void ApplyEffect(std::map<uint64_t, uint64_t>* state, const TxnEffect& e) {
  for (const auto& [key, value] : e.writes) {
    if (value == kTombstone) {
      state->erase(key);
    } else {
      (*state)[key] = value;
    }
  }
}

/// Count of committed effects durably acknowledged before the crash:
/// txn ids are assigned and committed in increasing order, so the acked
/// set is the prefix with txn_id <= acked_txn.
size_t AckedCount(const std::vector<TxnEffect>& committed,
                  uint64_t acked_txn) {
  size_t n = 0;
  while (n < committed.size() && committed[n].txn_id <= acked_txn) n++;
  return n;
}

/// Check the recovered database against the shadow model; returns true on
/// success, else fills `error`.
bool VerifyRecovered(Database* db, const TableDef& def, const RunResult& run,
                     const CrashExplorerConfig& cfg, std::string* error) {
  // Structural invariant: the allocator heap walk terminates cleanly over
  // well-formed slot headers.
  const Status audit = db->allocator()->AuditHeap();
  if (!audit.ok()) {
    *error = "allocator heap audit failed: " + audit.ToString();
    return false;
  }

  StorageEngine* engine = db->partition(0);
  std::map<uint64_t, uint64_t> recovered;
  uint64_t prev_key = 0;
  bool first = true;
  bool ascending = true;
  const uint64_t read_txn = engine->Begin();
  Status s = engine->ScanRange(
      read_txn, kTableId, 0, ~0ull,
      [&](uint64_t key, const Tuple& tuple) {
        if (!first && key <= prev_key) ascending = false;
        first = false;
        prev_key = key;
        recovered[key] = tuple.GetU64(3);
        return true;
      });
  if (!s.ok()) {
    *error = "ScanRange failed after recovery: " + s.ToString();
    return false;
  }
  if (!ascending) {
    *error = "ScanRange keys not strictly ascending";
    return false;
  }
  // Point reads must agree with the scan.
  for (const auto& [key, value] : recovered) {
    Tuple out;
    s = engine->Select(read_txn, kTableId, key, &out);
    if (!s.ok()) {
      *error = "Select(" + std::to_string(key) +
               ") disagrees with scan: " + s.ToString();
      return false;
    }
    if (out.GetU64(0) != key || out.GetU64(3) != value) {
      *error = "Select(" + std::to_string(key) + ") returned torn tuple";
      return false;
    }
  }
  engine->Commit(read_txn);

  // Prefix consistency: the recovered state must equal the state after
  // some k committed transactions, k in [acked, committed (+1 mid-commit)].
  const size_t min_k = AckedCount(run.committed, run.snap.acked_txn);
  const size_t max_k =
      run.snap.committed_count + (run.snap.in_commit ? 1 : 0);
  std::map<uint64_t, uint64_t> state;
  for (size_t i = 0; i < min_k; i++) ApplyEffect(&state, run.committed[i]);
  bool matched = false;
  for (size_t k = min_k; k <= max_k; k++) {
    if (k > min_k) {
      // Prefix k extends prefix k-1 by one transaction: the (k-1)-th
      // committed effect, or — for the k = committed_count + 1 candidate —
      // the transaction that was inside Commit() when the crash struck.
      const TxnEffect& e = (k - 1 < run.committed.size())
                               ? run.committed[k - 1]
                               : run.snap.in_flight;
      ApplyEffect(&state, e);
    }
    if (state == recovered) {
      matched = true;
      break;
    }
  }
  if (!matched) {
    // Name the divergence against the widest allowed state for the error.
    std::string detail;
    for (const auto& [key, value] : state) {
      auto it = recovered.find(key);
      if (it == recovered.end()) {
        detail = "committed-then-lost key " + std::to_string(key);
        break;
      }
      if (it->second != value) {
        detail = "stale/aborted value for key " + std::to_string(key);
        break;
      }
    }
    if (detail.empty()) {
      for (const auto& [key, value] : recovered) {
        if (state.count(key) == 0) {
          detail = "phantom key " + std::to_string(key) +
                   " (aborted-then-visible or lost delete)";
          break;
        }
      }
    }
    if (detail.empty()) detail = "no committed prefix matches";
    *error = detail + " [acked prefix " + std::to_string(min_k) +
             ", committed " + std::to_string(max_k) + "]";
    return false;
  }

  // The database must remain fully usable: accept and persist new work.
  const uint64_t probe_key = static_cast<uint64_t>(cfg.keys) + 1000;
  const uint64_t txn = engine->Begin();
  s = engine->Insert(txn, kTableId, ExplorerTuple(&def.schema, probe_key, 7));
  if (s.ok()) s = engine->Commit(txn);
  if (s.ok()) {
    Tuple out;
    const uint64_t check = engine->Begin();
    s = engine->Select(check, kTableId, probe_key, &out);
    engine->Commit(check);
  }
  if (!s.ok()) {
    *error = "post-recovery probe transaction failed: " + s.ToString();
    return false;
  }
  return true;
}

/// Execute one crash point end to end. Returns true if consistent.
bool RunCrashPoint(const CrashExplorerConfig& cfg, const TableDef& def,
                   uint64_t event, bool tear, std::string* error) {
  // NVMDB_CRASH_TRACE=1 names each crash point on stderr before it runs,
  // so a hard fault (signal) in a recovery path is attributable.
  static const bool trace = std::getenv("NVMDB_CRASH_TRACE") != nullptr;
  if (trace) {
    fprintf(stderr, "[crash-explorer] event %llu%s\n",
            static_cast<unsigned long long>(event), tear ? " torn" : "");
  }
  std::unique_ptr<Database> holder;
  Database* db = MakeExplorerDb(cfg, &holder);
  if (!db->CreateTable(def).ok()) {
    *error = "CreateTable failed";
    return false;
  }
  CrashSim sim;
  db->device()->set_crash_sim(&sim);
  sim.Arm(event, tear, /*tear_seed=*/cfg.seed * 1000003 + event);
  const RunResult run = RunWorkload(db, def, cfg, &sim);
  sim.Disarm();
  if (!sim.captured() || !run.snap.valid) {
    *error = "crash point never fired (non-deterministic event stream?)";
    return false;
  }
  db->CrashAt(sim);
  db->device()->set_crash_sim(nullptr);
  db->Recover();
  return VerifyRecovered(db, def, run, cfg, error);
}

}  // namespace

CrashExplorerReport RunCrashExplorer(const CrashExplorerConfig& config) {
  CrashExplorerReport report;
  const TableDef def = ExplorerTable();

  // Reference run: count the durability events of one full workload.
  {
    std::unique_ptr<Database> holder;
    Database* db = MakeExplorerDb(config, &holder);
    if (!db->CreateTable(def).ok()) {
      report.violations++;
      report.messages.push_back("reference run: CreateTable failed");
      return report;
    }
    CrashSim sim;  // never armed; just counts
    db->device()->set_crash_sim(&sim);
    const RunResult ref = RunWorkload(db, def, config, &sim);
    db->device()->set_crash_sim(nullptr);
    report.total_events = ref.total_events;
  }
  if (report.total_events == 0) return report;

  auto record = [&](uint64_t event, bool tear, const std::string& error) {
    report.violations++;
    if (report.messages.size() < 32) {
      report.messages.push_back("event " + std::to_string(event) +
                                (tear ? " (torn): " : ": ") + error);
    }
  };

  // Systematic sweep: every stride-th event.
  const uint64_t stride = std::max<uint64_t>(1, config.event_stride);
  uint64_t run_points = 0;
  for (uint64_t event = 1; event <= report.total_events; event += stride) {
    if (config.max_crash_points != 0 &&
        run_points >= config.max_crash_points) {
      break;
    }
    std::string error;
    if (!RunCrashPoint(config, def, event, config.tear_final_persist,
                       &error)) {
      record(event, config.tear_final_persist, error);
    }
    run_points++;
  }

  // Randomized sweep (torn by default): events the stride skipped.
  if (config.random_crash_points > 0) {
    Random rng(config.seed * 2654435761u + 17);
    std::set<uint64_t> chosen;
    for (uint64_t i = 0; i < config.random_crash_points; i++) {
      const uint64_t event = 1 + rng.Uniform(report.total_events);
      if (!chosen.insert(event).second) continue;
      std::string error;
      if (!RunCrashPoint(config, def, event, config.tear_random_points,
                         &error)) {
        record(event, config.tear_random_points, error);
      }
      run_points++;
    }
  }
  report.crash_points_run = run_points;
  return report;
}

}  // namespace nvmdb
