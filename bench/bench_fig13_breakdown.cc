/// Fig. 13 — Execution-time breakdown (storage / recovery / index / other)
/// while running YCSB with low skew under the low-NVM-latency profile.
///
/// The 24 (mixture, engine) cells run concurrently on the grid scheduler;
/// the tables print after the barrier in grid order.
///
/// Expected shape (paper): on write-heavy mixes the NVM-aware engines
/// spend ~13–18% on recovery-related work vs up to ~33% for traditional
/// ones; CoW engines spend relatively more on recovery even when read-
/// heavy (dirty-directory maintenance); Log engines spend the most on
/// index access (LSM lookups).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};

  std::vector<BenchRun> runs(4 * AllEngines().size());
  BenchRunner runner("fig13_breakdown");
  AddScaleContext(&runner);
  for (int m = 0; m < 4; m++) {
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const size_t idx = m * AllEngines().size() + e;
      const YcsbMixture mixture = mixtures[m];
      const EngineKind engine = AllEngines()[e];
      runner.Submit([&runs, idx, mixture, engine]() {
        runs[idx] = RunYcsb(engine, mixture, YcsbSkew::kLow);
        BenchCell cell =
            CellFromRun({{"mixture", YcsbMixtureName(mixture)},
                         {"engine", EngineKindName(engine)}},
                        runs[idx], Scale().partitions);
        const uint64_t total = runs[idx].breakdown.total();
        const char* cats[4] = {"storage_pct", "recovery_pct", "index_pct",
                               "other_pct"};
        for (int c = 0; c < 4; c++) {
          cell.metrics.emplace_back(
              cats[c], total == 0
                           ? 0.0
                           : 100.0 * runs[idx].breakdown.ns[c] / total);
        }
        return cell;
      });
    }
  }
  runner.Wait();

  PrintHeader(
      "Fig. 13: execution-time breakdown (%), YCSB low skew, low latency");
  for (int m = 0; m < 4; m++) {
    printf("\n--- %s workload ---\n", YcsbMixtureName(mixtures[m]));
    printf("%-10s %10s %10s %10s %10s\n", "engine", "storage", "recovery",
           "index", "other");
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const BenchRun& run = runs[m * AllEngines().size() + e];
      const uint64_t total = run.breakdown.total();
      printf("%-10s", EngineKindName(AllEngines()[e]));
      for (int c = 0; c < 4; c++) {
        printf("%9.1f%%", total == 0 ? 0.0
                                     : 100.0 * run.breakdown.ns[c] / total);
      }
      printf("\n");
    }
  }
  printf(
      "\nPaper shape: recovery share grows with write intensity and is\n"
      "much smaller for NVM-aware engines; Log engines index-heavy\n"
      "(Section 5.5, Fig. 13).\n");
  return 0;
}
