#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace nvmdb {

class NvmDevice;

/// Crash-point fault injection over the NVM device's durability stream.
///
/// Every durability event — each device `Persist`, each
/// `AtomicPersistWrite64`, and each filesystem fsync barrier
/// (`PmemBarrier`) — is numbered 1, 2, 3, … in the order it reaches the
/// device. Arming the simulator at event N captures, at the moment event N
/// is *about to take effect*, a private copy of the durable image only:
/// everything events 1..N-1 made durable (plus natural dirty-line
/// evictions up to that moment), and nothing that was still sitting in the
/// simulated CPU cache. Execution then continues normally — the capture is
/// a frozen snapshot, not a control-flow abort — and the harness later
/// replaces the device contents with the snapshot
/// (`Database::CrashAt` / `NvmDevice::RestoreImages`) and re-runs
/// recovery, observing exactly the bytes a power failure at event N would
/// have left behind.
///
/// In tear mode the final in-flight persist is additionally torn at
/// cache-line granularity: each line covered by event N's range is
/// independently included in or excluded from the snapshot, modeling
/// reordered and partial line flushes inside one sync primitive. Atomic
/// 8-byte persists are never torn — they are included or excluded whole,
/// which is their hardware contract.
///
/// The simulator is installed on a device with
/// `NvmDevice::set_crash_sim`; when none is installed the hooks cost one
/// null check per durability event.
class CrashSim {
 public:
  /// Arm a capture at absolute event number `target_event` (1-based,
  /// compared against `event_count()`; pass `event_count() + k` to crash
  /// at the k-th upcoming event). `tear_seed` drives the per-line
  /// coin flips in tear mode, so a sweep can replay a specific tearing.
  void Arm(uint64_t target_event, bool tear_final_persist = false,
           uint64_t tear_seed = 1);

  /// Stop counting toward a capture (the existing capture, if any, is
  /// kept). Call before driving recovery so recovery's own persists do
  /// not trigger a second capture.
  void Disarm();

  /// Durability events observed so far (monotonic across Arm/Disarm).
  uint64_t event_count() const;

  bool captured() const;
  uint64_t captured_event() const;

  /// The durable-only image captured at the crash point. Empty until a
  /// capture fires.
  const std::vector<uint8_t>& image() const { return image_; }

  /// Invoked synchronously inside the durability event that triggers the
  /// capture — i.e. from engine code mid-operation. Harnesses use it to
  /// snapshot their shadow model (which transactions were durably
  /// acknowledged *before* this event). Keep it cheap and reentrancy-free:
  /// it must not touch the device.
  void set_on_capture(std::function<void()> cb) {
    on_capture_ = std::move(cb);
  }

  // --- Hooks (called by NvmDevice / Pmfs / sync) ---------------------------

  /// A sync-primitive flush of [offset, offset+n) is about to retire.
  void OnPersist(NvmDevice* device, uint64_t offset, size_t n);
  /// An atomic durable 8-byte write of `value` at `offset` is about to
  /// retire.
  void OnAtomicPersist(NvmDevice* device, uint64_t offset, uint64_t value);
  /// A data-less durability barrier (fsync completion) retired.
  void OnBarrier(NvmDevice* device);

 private:
  void Event(NvmDevice* device, uint64_t offset, size_t n, bool atomic,
             uint64_t value);
  void Capture(NvmDevice* device, uint64_t offset, size_t n, bool atomic,
               uint64_t value);
  bool Coin();

  mutable std::mutex mu_;
  uint64_t events_ = 0;
  uint64_t target_ = 0;  // 0 = disarmed
  bool tear_ = false;
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
  bool captured_ = false;
  uint64_t captured_event_ = 0;
  std::vector<uint8_t> image_;
  std::function<void()> on_capture_;
};

}  // namespace nvmdb
