#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace nvmdb {

/// Configuration for the simulated CPU cache in front of NVM.
/// Defaults model the L3 of the paper's Intel Xeon E5-4620 testbed
/// (20 MB, 64 B lines).
///
/// Geometry is normalized at construction so the hot-path address→slot
/// mapping is pure shift+mask: `line_size` and the total set count are
/// rounded up to powers of two, and the bank count is rounded down to a
/// power of two (never exceeding the requested striping). Configurations
/// whose derived geometry is already power-of-two — every benchmark and
/// test config in this repo — are unaffected; the 20 MB default rounds up
/// to an effective 32 MB.
struct CacheConfig {
  size_t capacity_bytes = 20ull * 1024 * 1024;
  size_t line_size = 64;
  size_t associativity = 16;
  size_t num_banks = 16;  // lock striping for multi-threaded access
};

/// Events the cache raises toward the owning device. Raw function
/// pointers + context rather than std::function: these fire on every
/// dirty eviction in the simulator's inner loop, and a std::function call
/// costs an indirect dispatch plus potential allocation that profiles as
/// a top-three entry in the access path.
struct CacheCallbacks {
  using LineEventFn = void (*)(void* ctx, uint64_t line_addr,
                               size_t line_size);
  /// A dirty line is being written back to NVM (eviction, flush, or
  /// writeback-all). `line_addr` is the region offset of the line start.
  LineEventFn write_back = nullptr;
  /// A line is being filled from NVM (miss).
  LineEventFn fill = nullptr;
  /// Opaque pointer passed through to both callbacks.
  void* ctx = nullptr;
};

/// What one Access() call did, so the caller can charge all simulated
/// costs (miss latency, hit latency, write-back bandwidth) with a single
/// accumulation instead of per-line bookkeeping.
struct CacheAccessResult {
  uint32_t missed = 0;       // lines not found resident
  uint32_t write_backs = 0;  // dirty victims evicted to NVM
};

/// Set-associative write-back, write-allocate cache simulator.
///
/// This is the substitute for the microcode-level latency injection in the
/// Intel Labs hardware emulator: every instrumented access to the NVM
/// region passes through this model. Misses correspond to NVM *loads* and
/// dirty write-backs to NVM *stores* — the same counters the paper reads
/// via `perf` (Section 5.3). A crash (`DropDirty`) discards dirty lines,
/// which is how data that was never flushed gets lost.
///
/// Line metadata lives in one flat contiguous array of packed 8-byte
/// entries (line index + dirty bit) with a parallel LRU-stamp array,
/// indexed [bank][set][way]; no per-set or per-way heap nodes exist, so a
/// set probe is a short linear scan over adjacent memory.
class CacheSim {
 public:
  CacheSim(const CacheConfig& config, CacheCallbacks callbacks);

  /// Touch [addr, addr+size). Write hits mark lines dirty; write misses
  /// allocate. Returns per-call miss and write-back counts.
  CacheAccessResult AccessEx(uint64_t addr, size_t size, bool is_write);

  /// Compatibility shim: number of missed lines only.
  size_t Access(uint64_t addr, size_t size, bool is_write) {
    return AccessEx(addr, size, is_write).missed;
  }

  /// CLFLUSH/CLWB semantics over [addr, addr+size): dirty lines are written
  /// back; when `invalidate` is true (CLFLUSH) the lines are also evicted,
  /// otherwise (CLWB) they stay resident in clean state.
  /// Returns the number of lines actually written back.
  size_t FlushRange(uint64_t addr, size_t size, bool invalidate);

  /// Write back every dirty line (used by e.g. full-device sync in tests).
  size_t WriteBackAll();

  /// Power failure: all cached state vanishes; dirty lines are NOT written
  /// back — their contents are lost.
  void DropDirty();

  // Statistics are exact: each bank counts under its own lock (no shared
  // atomic contention on the hot path) and the getters aggregate across
  // banks, taking each bank's lock so concurrent updates are never torn
  // or lost. After all accessing threads quiesce,
  // hits() + misses() == total lines accessed, exactly.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t write_backs() const;

  size_t line_size() const { return line_size_; }

 private:
  // Packed line entry: (line_index << 1) | dirty. line_index is the line
  // address divided by line_size; even 48-bit heap addresses leave the top
  // tag bits free. kInvalidEntry (all ones) can never collide with a real
  // entry because a real line index never has all 63 tag bits set.
  static constexpr uint64_t kInvalidEntry = ~0ull;

  // Per-bank mutable state, cache-line aligned so banks never false-share.
  struct alignas(64) Bank {
    std::mutex mu;
    uint64_t lru_clock = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t write_backs = 0;
  };

  // Touch one line; requires the owning bank's lock. Returns 1 if the
  // line missed and adds any dirty-victim write-back to `result`.
  uint32_t AccessLine(Bank& bank, size_t global_set, uint64_t line_index,
                      bool is_write, CacheAccessResult* result);

  size_t line_size_;        // power of two
  unsigned line_shift_;     // log2(line_size_)
  size_t associativity_;
  size_t num_banks_;        // power of two
  size_t sets_per_bank_;    // power of two
  uint64_t bank_mask_;      // num_banks_ - 1
  unsigned bank_shift_;     // log2(num_banks_)
  uint64_t set_mask_;       // sets_per_bank_ - 1

  CacheCallbacks callbacks_;
  std::vector<Bank> banks_;
  // Flat [bank][set][way] metadata; entries_ and stamps_ are parallel.
  std::vector<uint64_t> entries_;
  std::vector<uint64_t> stamps_;
};

}  // namespace nvmdb
