#pragma once

#include <string>
#include <utility>

namespace nvmdb {

/// Result of an operation that can fail. Modeled after the LevelDB/RocksDB
/// Status idiom: cheap to copy in the OK case, carries a code + message
/// otherwise.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kOutOfSpace,
    kAborted,
    kNotSupported,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfSpace(std::string msg = "") {
    return Status(Code::kOutOfSpace, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsOutOfSpace() const { return code_ == Code::kOutOfSpace; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable representation, e.g. "NotFound: key 42".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace nvmdb
