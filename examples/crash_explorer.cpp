/// Systematic crash-point exploration across the six engines: replay a
/// fixed workload, crash at every Kth durability event (Persist /
/// AtomicPersistWrite64 / fsync barrier), re-open the engine from the
/// durable-only image, and check the recovered state against the shadow
/// model of durably-acknowledged transactions (see DESIGN.md).
///
/// Usage: example_crash_explorer [engine|all] [stride] [txns] [random] [tear]
///   engine  InP|CoW|Log|NVM-InP|NVM-CoW|NVM-Log|all   (default all)
///   stride  crash at every stride-th event             (default 1)
///   txns    workload size                              (default 200)
///   random  extra random torn crash points             (default 0)
///   tear    1 = tear the final persist on the sweep    (default 0)
/// Exits non-zero if any crash point recovers inconsistently.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testbed/crash_explorer.h"

using namespace nvmdb;

namespace {

bool ParseEngine(const char* name, std::vector<EngineKind>* out) {
  const EngineKind all[] = {EngineKind::kInP,    EngineKind::kCoW,
                            EngineKind::kLog,    EngineKind::kNvmInP,
                            EngineKind::kNvmCoW, EngineKind::kNvmLog};
  if (strcmp(name, "all") == 0) {
    out->assign(all, all + 6);
    return true;
  }
  for (EngineKind kind : all) {
    if (strcmp(name, EngineKindName(kind)) == 0) {
      out->push_back(kind);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<EngineKind> engines;
  if (!ParseEngine(argc > 1 ? argv[1] : "all", &engines)) {
    fprintf(stderr, "unknown engine '%s'\n", argv[1]);
    return 2;
  }
  CrashExplorerConfig cfg;
  cfg.event_stride = argc > 2 ? strtoull(argv[2], nullptr, 10) : 1;
  cfg.txns = argc > 3 ? atoi(argv[3]) : 200;
  cfg.random_crash_points = argc > 4 ? strtoull(argv[4], nullptr, 10) : 0;
  cfg.tear_final_persist = argc > 5 && atoi(argv[5]) != 0;

  uint64_t total_violations = 0;
  for (EngineKind kind : engines) {
    cfg.engine = kind;
    const CrashExplorerReport report = RunCrashExplorer(cfg);
    printf("%-8s events=%llu crash_points=%llu violations=%llu\n",
           EngineKindName(kind),
           static_cast<unsigned long long>(report.total_events),
           static_cast<unsigned long long>(report.crash_points_run),
           static_cast<unsigned long long>(report.violations));
    for (const std::string& msg : report.messages) {
      printf("  VIOLATION %s\n", msg.c_str());
    }
    fflush(stdout);
    total_violations += report.violations;
  }
  if (total_violations > 0) {
    fprintf(stderr, "crash exploration found %llu violations\n",
            static_cast<unsigned long long>(total_violations));
    return 1;
  }
  printf("all crash points recovered consistently\n");
  return 0;
}
