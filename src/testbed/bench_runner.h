#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

/// One benchmark grid cell's results, as recorded by BenchRunner and
/// emitted into the machine-readable BENCH_<name>.json report.
///
/// `key` holds the cell's grid coordinates in declaration order (e.g.
/// {{"mixture","read-only"},{"skew","low"},{"engine","InP"}}); `metrics`
/// holds whatever derived numbers the bench wants tracked (throughput per
/// latency profile, loads, footprint bytes, ...).
struct BenchCell {
  std::vector<std::pair<std::string, std::string>> key;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Simulated nanoseconds the cell advanced the model clock (load phase
  /// included — this is the modeled work the cell represents).
  uint64_t sim_ns = 0;
  /// Host wall nanoseconds the cell took end to end. Left 0 by the cell
  /// body; the runner fills it from its own stopwatch around the body.
  uint64_t wall_ns = 0;
  /// Optional wall-time split filled by the cell body: host nanoseconds
  /// spent in the initial load phase vs the measured run phase. Their sum
  /// is below wall_ns (setup/teardown is neither). Zero when the cell has
  /// no such phases (e.g. recovery benches).
  uint64_t load_ns = 0;
  uint64_t run_ns = 0;
  /// Response-latency distribution of the measured run (simulated clock;
  /// see RunResult::latency). count == 0 when the cell has no txn run.
  LatencySummary latency;
  /// Simulated stall attributed per component tag over the measured run.
  StallBreakdown stalls;
  std::vector<std::pair<std::string, double>> metrics;

  /// Simulated ns produced per wall ns spent computing them (simulator
  /// speed; higher is faster).
  double SimWallRatio() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(sim_ns) /
                              static_cast<double>(wall_ns);
  }

  /// Space-separated key values ("InP read-only low") for progress lines.
  std::string Label() const;
};

/// Grid scheduler for benchmark cells.
///
/// Every figure benchmark walks a fully independent (engine × mixture ×
/// skew × config) grid: each cell builds its own Database/NvmDevice/
/// workload, so cells never share mutable state and can run concurrently.
/// The runner executes submitted cells on a bounded job pool
/// (`NVMDB_BENCH_JOBS`, default hardware_concurrency; 1 = the classic
/// serial path), stores each result in a pre-sized slot array, and leaves
/// ALL table printing to the caller after the Wait() barrier — stdout is
/// produced in deterministic grid order and is byte-identical regardless
/// of the job count. Per-cell progress lines go to stderr in completion
/// order, serialized so concurrent cells never interleave mid-line.
///
/// Cells whose internals need a single worker (RunSerial latency
/// attribution, e.g. the ablation and fig16 benches) still parallelize
/// across cells: the simulated clock is shared per *device*, and every
/// cell owns a private device.
class BenchRunner {
 public:
  /// `bench_name` names the JSON report (BENCH_<bench_name>.json).
  /// `jobs` == 0 reads NVMDB_BENCH_JOBS from the environment.
  explicit BenchRunner(std::string bench_name, size_t jobs = 0);

  /// Waits for outstanding cells and writes the report if the caller
  /// didn't already.
  ~BenchRunner();

  BenchRunner(const BenchRunner&) = delete;
  BenchRunner& operator=(const BenchRunner&) = delete;

  size_t jobs() const { return jobs_; }

  /// Enqueue one cell; `body` computes it and returns the filled
  /// BenchCell. Returns the cell's slot index (== submission order).
  /// Bodies run on pool threads once Wait() is called; they must not
  /// print to stdout (use the returned cell + post-barrier printing) and
  /// must not touch other cells' state.
  size_t Submit(std::function<BenchCell()> body);

  /// Barrier: run every submitted cell (jobs() at a time) and return when
  /// all slots are filled. Submission order == slot order; completion
  /// order is whatever the pool produces.
  void Wait();

  /// All cells, indexed by slot. Valid after Wait().
  const std::vector<BenchCell>& cells() const { return cells_; }

  /// Extra top-level key/value pairs for the report (scale knobs etc.).
  void AddContext(const std::string& key, const std::string& value);

  /// Write BENCH_<name>.json into $NVMDB_BENCH_JSON_DIR (default ".";
  /// set to empty to disable). Returns the path written, or "" when
  /// disabled. Called automatically by the destructor if needed.
  std::string WriteReport();

  /// Aggregate wall/sim totals over all cells (harness-speed summary).
  uint64_t TotalWallNs() const;
  uint64_t TotalSimNs() const;

 private:
  void RunPending();
  void PrintProgress(const BenchCell& cell);

  std::string bench_name_;
  size_t jobs_;
  bool waited_ = false;
  bool reported_ = false;
  std::vector<std::function<BenchCell()>> tasks_;
  std::vector<BenchCell> cells_;
  std::vector<std::pair<std::string, std::string>> context_;
};

}  // namespace nvmdb
