#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bloom_filter.h"
#include "common/compress.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace nvmdb {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("k").IsNotFound());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::OutOfSpace().IsOutOfSpace());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_EQ(Status::NotFound("key 42").ToString(), "NotFound: key 42");
  EXPECT_FALSE(Status::NotFound().ok());
}

// --- Slice ----------------------------------------------------------------

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], 'h');
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.ToString(), "hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_TRUE(Slice("ab") < Slice("abc"));
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

// --- Random / skew generators ----------------------------------------------

TEST(RandomTest, Deterministic) {
  Random a(7), b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformRange) {
  Random rng(3);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, StringLengthAndCharset) {
  Random rng(3);
  const std::string s = rng.String(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(HotspotTest, SkewConcentratesAccesses) {
  // High skew: 90% of accesses to the first 10% of keys.
  HotspotGenerator gen(10000, 0.1, 0.9, 11);
  uint64_t hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    if (gen.Next() < 1000) hot++;
  }
  const double frac = static_cast<double>(hot) / n;
  EXPECT_GT(frac, 0.85);
  EXPECT_LT(frac, 0.95);
}

TEST(HotspotTest, CoversWholeKeySpace) {
  HotspotGenerator gen(100, 0.2, 0.5, 5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; i++) {
    const uint64_t k = gen.Next();
    EXPECT_LT(k, 100u);
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 90u);
}

TEST(ZipfianTest, InRangeAndSkewed) {
  ZipfianGenerator gen(1000, 0.99, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; i++) {
    const uint64_t k = gen.Next();
    ASSERT_LT(k, 1000u);
    counts[k]++;
  }
  // Rank-0 key should dominate any mid-range key.
  EXPECT_GT(counts[0], counts[500] * 5);
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "the quick brown fox";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32c("", 0), 0u); }

// --- Bloom filter ------------------------------------------------------------

class BloomParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BloomParamTest, NoFalseNegatives) {
  const size_t n = GetParam();
  BloomFilter bloom(n);
  for (size_t i = 0; i < n; i++) bloom.Add(i * 977 + 13);
  for (size_t i = 0; i < n; i++) {
    EXPECT_TRUE(bloom.MayContain(i * 977 + 13));
  }
}

TEST_P(BloomParamTest, LowFalsePositiveRate) {
  const size_t n = GetParam();
  BloomFilter bloom(n);
  for (size_t i = 0; i < n; i++) bloom.Add(i);
  size_t false_positives = 0;
  const size_t probes = 10000;
  for (size_t i = 0; i < probes; i++) {
    if (bloom.MayContain(1000000 + i)) false_positives++;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomParamTest,
                         ::testing::Values(16, 100, 1000, 10000));

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter bloom(100);
  for (uint64_t i = 0; i < 100; i++) bloom.Add(i * 3);
  const std::string bytes = bloom.Serialize();
  BloomFilter copy = BloomFilter::Deserialize(Slice(bytes));
  for (uint64_t i = 0; i < 100; i++) EXPECT_TRUE(copy.MayContain(i * 3));
}

TEST(BloomTest, StringKeys) {
  BloomFilter bloom(10);
  bloom.Add(Slice("alpha"));
  bloom.Add(Slice("beta"));
  EXPECT_TRUE(bloom.MayContain(Slice("alpha")));
  EXPECT_TRUE(bloom.MayContain(Slice("beta")));
}

// --- Compression -------------------------------------------------------------

class CompressParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompressParamTest, RoundTripRandom) {
  Random rng(GetParam());
  std::string input;
  for (size_t i = 0; i < GetParam(); i++) {
    input.push_back(static_cast<char>(rng.Uniform(256)));
  }
  const std::string compressed = LzCompress(Slice(input));
  std::string output;
  ASSERT_TRUE(LzDecompress(Slice(compressed), &output));
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressParamTest,
                         ::testing::Values(0, 1, 7, 100, 4096, 100000));

TEST(CompressTest, CompressesRepetitiveData) {
  std::string input;
  for (int i = 0; i < 1000; i++) input += "abcdefgh";
  const std::string compressed = LzCompress(Slice(input));
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string output;
  ASSERT_TRUE(LzDecompress(Slice(compressed), &output));
  EXPECT_EQ(output, input);
}

TEST(CompressTest, OverlappingMatches) {
  // "aaaa..." forces self-overlapping match copies.
  const std::string input(5000, 'a');
  const std::string compressed = LzCompress(Slice(input));
  EXPECT_LT(compressed.size(), 200u);
  std::string output;
  ASSERT_TRUE(LzDecompress(Slice(compressed), &output));
  EXPECT_EQ(output, input);
}

TEST(CompressTest, RejectsGarbage) {
  std::string output;
  EXPECT_FALSE(LzDecompress(Slice("\xff\xff\xff garbage"), &output));
}

TEST(CompressTest, RejectsTruncated) {
  std::string input(1000, 'x');
  std::string compressed = LzCompress(Slice(input));
  compressed.resize(compressed.size() / 2);
  std::string output;
  EXPECT_FALSE(LzDecompress(Slice(compressed), &output));
}

}  // namespace
}  // namespace nvmdb
