#include "engine/nv_wal.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace nvmdb {

NvWal::NvWal(PmemAllocator* allocator, const std::string& name)
    : allocator_(allocator), device_(allocator->device()) {
  head_slot_ = allocator_->GetRoot(name);
  if (head_slot_ == 0) {
    head_slot_ = allocator_->Alloc(sizeof(uint64_t), StorageTag::kLog);
    assert(head_slot_ != 0);
    device_->AtomicPersistWrite64(head_slot_, 0);
    allocator_->MarkPersisted(head_slot_);
    allocator_->SetRoot(name, head_slot_);
  }
}

uint64_t NvWal::head() const {
  uint64_t h = 0;
  device_->Read(head_slot_, &h, 8);
  return h;
}

uint64_t NvWal::Push(const void* payload, size_t n) {
  ScopedStallTag tag(StallTag::kWal);
  // sync_header=false: PersistPayloadAndMark below covers the header.
  const uint64_t entry_off = allocator_->Alloc(
      sizeof(EntryHeader) + n, StorageTag::kLog, /*sync_header=*/false);
  assert(entry_off != 0);
  EntryHeader hdr;
  hdr.next = head();
  hdr.length = static_cast<uint32_t>(n);
  hdr.pad = 0;
  // Header and payload are adjacent: one segmented write, same modeled
  // per-line stream as the two calls it replaces.
  const NvmDevice::WriteSeg segs[2] = {{&hdr, sizeof(hdr)},
                                       {payload, hdr.length}};
  device_->WriteSegments(entry_off, segs, 2);
  // Entry first, head swap second: a crash before the swap leaves the
  // entry unreachable and allocator recovery reclaims it (it is still in
  // the allocated-not-persisted state until MarkPersisted below).
  allocator_->PersistPayloadAndMark(entry_off, sizeof(hdr) + n);
  device_->AtomicPersistWrite64(head_slot_, entry_off);
  mirror_.push_back(entry_off);
  return entry_off;
}

void NvWal::ForEach(
    const std::function<void(const uint8_t*, size_t)>& fn) const {
  uint64_t off = head();
  while (off != 0) {
    // Stop if the offset is not a well-formed slot in the persisted state:
    // either a truncation was interrupted (entries already freed), the slot
    // was reclaimed by recovery, or the pointer came from torn durable
    // state. Durable pointers are never dereferenced unvalidated.
    if (!allocator_->ValidPayloadOffset(off) ||
        allocator_->StateOf(off) != PmemAllocator::SlotState::kPersisted) {
      break;
    }
    // Peek the header from the working image (unmodeled) to size the
    // payload, then model header + payload as ONE segmented read — the
    // same per-line stream as the Read + TouchRead pair it replaces.
    EntryHeader hdr;
    memcpy(&hdr, device_->PtrAt(off), sizeof(hdr));
    const uint32_t lens[2] = {sizeof(EntryHeader), hdr.length};
    device_->TouchSegments(off, lens, 2, /*is_write=*/false);
    fn(static_cast<const uint8_t*>(device_->PtrAt(off + sizeof(hdr))),
       hdr.length);
    off = hdr.next;
  }
}

void NvWal::Clear() {
  ScopedStallTag tag(StallTag::kWal);
  // Truncation uses the volatile mirror of the entry list when available
  // (steady state), avoiding NVM re-reads of entries that were just
  // flushed out of the cache by their own persists — and freeing straight
  // out of the mirror keeps its capacity for the next transaction instead
  // of surrendering it per commit. After a restart the mirror is empty
  // and the persistent list is walked instead.
  if (!mirror_.empty()) {
    device_->AtomicPersistWrite64(head_slot_, 0);
    for (uint64_t e : mirror_) allocator_->Free(e);
    mirror_.clear();
    return;
  }
  std::vector<uint64_t> entries;
  uint64_t off = head();
  while (off != 0) {
    if (!allocator_->ValidPayloadOffset(off) ||
        allocator_->StateOf(off) != PmemAllocator::SlotState::kPersisted) {
      break;
    }
    EntryHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    entries.push_back(off);
    off = hdr.next;
  }
  device_->AtomicPersistWrite64(head_slot_, 0);
  for (uint64_t e : entries) allocator_->Free(e);
}

bool NvWal::Empty() const { return head() == 0; }

size_t NvWal::EntryCount() const {
  size_t n = 0;
  ForEach([&n](const uint8_t*, size_t) { n++; });
  return n;
}

uint64_t NvWal::NvmBytes() const {
  uint64_t bytes = sizeof(uint64_t);
  uint64_t off = head();
  while (off != 0) {
    if (!allocator_->ValidPayloadOffset(off) ||
        allocator_->StateOf(off) != PmemAllocator::SlotState::kPersisted) {
      break;
    }
    EntryHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    bytes += sizeof(EntryHeader) + hdr.length;
    off = hdr.next;
  }
  return bytes;
}

}  // namespace nvmdb
