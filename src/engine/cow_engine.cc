#include "engine/cow_engine.h"

#include <cassert>
#include <cstring>

#include "engine/keys.h"
#include "lsm/delta.h"

namespace nvmdb {

CowEngine::CowEngine(const EngineConfig& config)
    : CowEngine(config,
                std::make_unique<PmfsPageStore>(
                    config.fs, config.namespace_prefix + ".cow.db",
                    config.cow_page_bytes, config.cow_cache_pages,
                    StorageTag::kTable)) {}

CowEngine::CowEngine(const EngineConfig& config,
                     std::unique_ptr<PageStore> store)
    : config_(config), store_(std::move(store)) {
  tree_ = std::make_unique<CowBTree>(store_.get());
}

Status CowEngine::CreateTable(const TableDef& def) {
  if (def.table_id > 0x3F) return Status::InvalidArgument("table id > 63");
  tables_[def.table_id].def = def;
  return Status::OK();
}

CowEngine::TableInfo* CowEngine::GetTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : &it->second;
}

const SecondaryIndexDef* CowEngine::GetIndexDef(const TableInfo& table,
                                                uint32_t index_id) const {
  for (const auto& d : table.def.secondary_indexes) {
    if (d.index_id == index_id) return &d;
  }
  return nullptr;
}

void CowEngine::JournalPut(uint64_t gkey) {
  if (journal_used_ == txn_journal_.size()) txn_journal_.emplace_back();
  InverseOp& op = txn_journal_[journal_used_++];
  op.global_key = gkey;
  op.old_value.clear();
  op.had_value = tree_->Get(gkey, &op.old_value);
}

Status CowEngine::EncodeTupleValueTo(uint32_t table_id, const Tuple& tuple,
                                     std::string* out) {
  (void)table_id;
  tuple.AppendInlined(out);
  return Status::OK();
}

void CowEngine::DecodeTupleValueTo(uint32_t table_id, const Slice& value,
                                   Tuple* out) {
  Tuple::ParseInlined(&tables_[table_id].def.schema, value, out);
}

Status CowEngine::PutSecondaryEntries(const TableInfo& table,
                                      const Tuple& tuple, uint64_t pk) {
  for (const auto& sec : table.def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    const uint64_t gkey = GlobalKey(table.def.table_id, sec.index_id + 1,
                                    SecComposite56(h, pk));
    JournalPut(gkey);
    char pk_bytes[8];
    memcpy(pk_bytes, &pk, 8);
    if (!tree_->Put(gkey, Slice(pk_bytes, 8))) {
      return Status::OutOfSpace("secondary entry");
    }
  }
  return Status::OK();
}

void CowEngine::DeleteSecondaryEntries(const TableInfo& table,
                                       const Tuple& tuple, uint64_t pk) {
  for (const auto& sec : table.def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    const uint64_t gkey = GlobalKey(table.def.table_id, sec.index_id + 1,
                                    SecComposite56(h, pk));
    JournalPut(gkey);
    tree_->Delete(gkey);
  }
}

Status CowEngine::Insert(uint64_t txn_id, uint32_t table_id,
                         const Tuple& tuple) {
  (void)txn_id;
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t pk = tuple.Key();
  const uint64_t gkey = GlobalKey(table_id, 0, pk);
  {
    ScopedStallTag t(StallTag::kIndex);
    if (tree_->Get(gkey, nullptr)) {
      return Status::InvalidArgument("duplicate key");
    }
  }
  val_scratch2_.clear();
  Status status = EncodeTupleValueTo(table_id, tuple, &val_scratch2_);
  if (!status.ok()) return status;
  if (val_scratch2_.size() > tree_->MaxValueSize()) {
    return Status::InvalidArgument("tuple larger than CoW page");
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    JournalPut(gkey);
    if (!tree_->Put(gkey, Slice(val_scratch2_))) {
      return Status::OutOfSpace("cow put");
    }
    Status s = PutSecondaryEntries(*table, tuple, pk);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status CowEngine::Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         const std::vector<ColumnUpdate>& updates) {
  (void)txn_id;
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t gkey = GlobalKey(table_id, 0, key);
  val_scratch_.clear();
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!tree_->Get(gkey, &val_scratch_)) return Status::NotFound();
  }

  // Copy-on-write at tuple granularity: make a copy, modify the copy,
  // write the copy into the dirty directory (Section 3.2). The whole
  // tuple is rewritten even when one field changed — the engine's write
  // amplification (Table 3's B + F + V).
  DecodeTupleValueTo(table_id, Slice(val_scratch_), &tup_scratch_);
  tup_scratch2_ = tup_scratch_;
  ApplyUpdates(&tup_scratch2_, updates);
  val_scratch2_.clear();
  Status status = EncodeTupleValueTo(table_id, tup_scratch2_, &val_scratch2_);
  if (!status.ok()) return status;

  {
    ScopedStallTag t(StallTag::kIndex);
    JournalPut(gkey);
    if (!tree_->Put(gkey, Slice(val_scratch2_))) {
      return Status::OutOfSpace("cow put");
    }
    OnValueReplaced(table_id, Slice(val_scratch_));

    bool touches_secondary = false;
    for (const ColumnUpdate& u : updates) {
      for (const auto& sec : table->def.secondary_indexes) {
        for (size_t c : sec.key_columns) {
          if (c == u.column) touches_secondary = true;
        }
      }
    }
    if (touches_secondary) {
      DeleteSecondaryEntries(*table, tup_scratch_, key);
      Status s = PutSecondaryEntries(*table, tup_scratch2_, key);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status CowEngine::Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) {
  (void)txn_id;
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t gkey = GlobalKey(table_id, 0, key);
  val_scratch_.clear();
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!tree_->Get(gkey, &val_scratch_)) return Status::NotFound();
  }
  DecodeTupleValueTo(table_id, Slice(val_scratch_), &tup_scratch_);
  {
    ScopedStallTag t(StallTag::kIndex);
    JournalPut(gkey);
    tree_->Delete(gkey);
    OnValueReplaced(table_id, Slice(val_scratch_));
    DeleteSecondaryEntries(*table, tup_scratch_, key);
  }
  return Status::OK();
}

Status CowEngine::Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                         Tuple* out) {
  (void)txn_id;
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  val_scratch_.clear();
  {
    ScopedStallTag t(StallTag::kIndex);
    // Every lookup fetches the master record and walks the current
    // directory (Section 5.2's explanation of CoW's read overhead).
    if (!tree_->Get(GlobalKey(table_id, 0, key), &val_scratch_)) {
      return Status::NotFound();
    }
  }
  DecodeTupleValueTo(table_id, Slice(val_scratch_), out);
  return Status::OK();
}

Status CowEngine::ScanRange(
    uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Tuple&)>& fn) {
  (void)txn_id;
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  ScopedStallTag t(StallTag::kIndex);
  tree_->Scan(GlobalKey(table_id, 0, lo), GlobalKey(table_id, 0, hi),
              [&](uint64_t gkey, const Slice& value) {
                DecodeTupleValueTo(table_id, value, &scan_scratch_);
                return fn(LocalKey(gkey), scan_scratch_);
              });
  return Status::OK();
}

Status CowEngine::SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                  uint32_t index_id,
                                  const std::vector<Value>& key_values,
                                  std::vector<Tuple>* out) {
  TableInfo* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const SecondaryIndexDef* def = GetIndexDef(*table, index_id);
  if (def == nullptr) return Status::InvalidArgument("no such index");
  const uint64_t h = SecondaryKeyHash(table->def.schema, *def, key_values);

  std::vector<uint64_t> pks;
  {
    ScopedStallTag t(StallTag::kIndex);
    tree_->Scan(GlobalKey(table_id, index_id + 1, SecComposite56Lo(h)),
                GlobalKey(table_id, index_id + 1, SecComposite56Hi(h)),
                [&pks](uint64_t, const Slice& value) {
                  uint64_t pk;
                  memcpy(&pk, value.data(), 8);
                  pks.push_back(pk);
                  return true;
                });
  }
  for (uint64_t pk : pks) {
    Tuple t;
    if (!Select(txn_id, table_id, pk, &t).ok()) continue;
    if (SecondaryKeyHash(t, *def) == h) out->push_back(std::move(t));
  }
  return Status::OK();
}

void CowEngine::FlushBatch() {
  ScopedStallTag t(StallTag::kWal);
  OnBatchFlush();
  tree_->Commit();
  OnBatchFlushed();
  txns_in_batch_ = 0;
  last_durable_txn_ = last_committed_txn_;
}

Status CowEngine::Commit(uint64_t txn_id) {
  journal_used_ = 0;
  OnTxnCommitHook();
  committed_txns_++;
  last_committed_txn_ = txn_id;
  active_txn_ = 0;
  // Group commit: amortize the cost of flushing dirty pages and the
  // master-record update across a batch of transactions.
  if (++txns_in_batch_ >= config_.group_commit_size) FlushBatch();
  return Status::OK();
}

Status CowEngine::Abort(uint64_t txn_id) {
  (void)txn_id;
  ScopedStallTag t(StallTag::kIndex);
  // Undo only this transaction inside the shared dirty directory.
  for (size_t i = journal_used_; i-- > 0;) {
    const InverseOp& op = txn_journal_[i];
    if (op.had_value) {
      tree_->Put(op.global_key, Slice(op.old_value));
    } else {
      tree_->Delete(op.global_key);
    }
  }
  journal_used_ = 0;
  OnTxnAbortHook();
  active_txn_ = 0;
  return Status::OK();
}

Status CowEngine::Checkpoint() {
  if (txns_in_batch_ > 0 || tree_->HasDirty()) FlushBatch();
  return Status::OK();
}

Status CowEngine::Recover() {
  ScopedStallTag t(StallTag::kRecovery);
  // No recovery process (Section 3.2): the master record points at the
  // consistent current directory. The previous dirty directory's pages are
  // garbage collected.
  tree_ = std::make_unique<CowBTree>(store_.get());
  tree_->GarbageCollect();
  txn_journal_.clear();
  journal_used_ = 0;
  txns_in_batch_ = 0;
  return Status::OK();
}

FootprintStats CowEngine::Footprint() const {
  FootprintStats stats;
  stats.table_bytes = store_->StorageBytes();
  stats.other_bytes = store_->CacheBytes();
  return stats;
}

}  // namespace nvmdb
