/// Fig. 1 — Durable write bandwidth of the two NVM interfaces.
///
/// The application performs durable writes through (a) the allocator
/// interface (write + sync primitive, all in userspace) and (b) the
/// filesystem interface (write() + fsync(), paying the VFS crossing),
/// with sequential and random access patterns and chunk sizes 1–256 B.
/// Expected shape (paper): the allocator delivers ~10–12x higher durable
/// write bandwidth, most pronounced for small sequential chunks.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "nvm/pmfs.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

const uint64_t kTotalBytesPerPoint =
    EnvU64("NVMDB_FIG1_BYTES", 1ull * 1024 * 1024);

double AllocatorBandwidth(size_t chunk, bool sequential) {
  NvmDevice device(64ull * 1024 * 1024, NvmLatencyConfig::LowNvm());
  PmemAllocator allocator(&device);
  const uint64_t region = allocator.Alloc(8 * 1024 * 1024);
  std::vector<char> buf(chunk, 'x');
  Random rng(7);
  const uint64_t iterations = kTotalBytesPerPoint / chunk;
  const uint64_t slots = (8ull * 1024 * 1024) / chunk;

  const uint64_t stall_before = device.TotalStallNanos();
  for (uint64_t i = 0; i < iterations; i++) {
    const uint64_t off =
        region + (sequential ? (i % slots) : rng.Uniform(slots)) * chunk;
    device.Write(off, buf.data(), chunk);
    device.Persist(off, chunk);  // the allocator's sync primitive
  }
  const double secs =
      (device.TotalStallNanos() - stall_before) * 1e-9;
  return static_cast<double>(iterations * chunk) / secs / (1 << 20);
}

double FilesystemBandwidth(size_t chunk, bool sequential) {
  NvmDevice device(64ull * 1024 * 1024, NvmLatencyConfig::LowNvm());
  PmemAllocator allocator(&device);
  Pmfs fs(&allocator);
  Pmfs::Fd fd = fs.Open("bench.dat", true);
  // Pre-extend so random writes land in allocated blocks.
  std::vector<char> zero(64 * 1024, 0);
  for (int i = 0; i < 128; i++) {
    fs.Write(fd, i * zero.size(), zero.data(), zero.size());
  }
  fs.Fsync(fd);

  std::vector<char> buf(chunk, 'y');
  Random rng(9);
  const uint64_t file_bytes = 8ull * 1024 * 1024;
  const uint64_t slots = file_bytes / chunk;
  const uint64_t iterations = kTotalBytesPerPoint / chunk;

  const uint64_t stall_before = device.TotalStallNanos();
  for (uint64_t i = 0; i < iterations; i++) {
    const uint64_t off =
        (sequential ? (i % slots) : rng.Uniform(slots)) * chunk;
    fs.Write(fd, off, buf.data(), chunk);
    fs.Fsync(fd);  // durable write through the filesystem
  }
  const double secs =
      (device.TotalStallNanos() - stall_before) * 1e-9;
  return static_cast<double>(iterations * chunk) / secs / (1 << 20);
}

}  // namespace

int main() {
  PrintHeader(
      "Fig. 1: Durable write bandwidth, allocator vs. filesystem interface "
      "(MB/s)");
  for (const bool sequential : {true, false}) {
    printf("\n--- %s writes ---\n", sequential ? "Sequential" : "Random");
    printf("%-10s %16s %16s %8s\n", "chunk(B)", "allocator", "filesystem",
           "ratio");
    for (size_t chunk : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      const double alloc_bw = AllocatorBandwidth(chunk, sequential);
      const double fs_bw = FilesystemBandwidth(chunk, sequential);
      printf("%-10zu %16.1f %16.1f %7.1fx\n", chunk, alloc_bw, fs_bw,
             alloc_bw / fs_bw);
    }
  }
  printf("\nPaper shape: allocator ~10-12x higher durable write bandwidth;\n"
         "gap widest for small sequential chunks (Section 2.3, Fig. 1).\n");
  return ExitStatus();
}
