#include "nvm/sync.h"

#include "nvm/crash_sim.h"

namespace nvmdb {

void PmemBarrier(NvmDevice* device) {
  if (CrashSim* sim = device->crash_sim()) sim->OnBarrier(device);
}

void PmemPersist(NvmDevice* device, const void* p, size_t n) {
  device->Persist(p, n);
}

void PmemPersist(NvmDevice* device, uint64_t offset, size_t n) {
  device->Persist(offset, n);
}

ScopedSyncLatency::ScopedSyncLatency(NvmDevice* device,
                                     uint64_t sync_latency_ns, bool use_clwb)
    : device_(device), saved_(device->latency_config()) {
  NvmLatencyConfig cfg = saved_;
  cfg.sync_latency_ns = sync_latency_ns;
  cfg.use_clwb = use_clwb;
  device_->set_latency_config(cfg);
}

ScopedSyncLatency::~ScopedSyncLatency() {
  device_->set_latency_config(saved_);
}

}  // namespace nvmdb
