#include "index/cow_btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nvmdb {

namespace {
constexpr uint32_t kPageMagic = 0x434F5750;  // "COWP"
constexpr size_t kPageHeaderBytes = 8;       // magic + is_leaf + count
}  // namespace

CowBTree::CowBTree(PageStore* store) : store_(store) {
  current_root_ = store_->ReadMaster();
  dirty_root_ = current_root_;
}

std::pair<uint32_t, uint32_t> CowBTree::Node::AppendBytes(const Slice& v) {
  // The source may alias this node's own arena; track it by offset across
  // the append's potential reallocation.
  const char* base = arena.data();
  const size_t len = v.size();
  const size_t off = arena.size();
  if (v.data() >= base && v.data() <= base + arena.size()) {
    const size_t src_off = static_cast<size_t>(v.data() - base);
    arena.resize(off + len);
    memmove(&arena[off], arena.data() + src_off, len);
  } else {
    arena.append(v.data(), len);
  }
  return {static_cast<uint32_t>(off), static_cast<uint32_t>(len)};
}

CowBTree::Node* CowBTree::AcquireNode() const {
  if (pool_used_ == node_pool_.size()) {
    node_pool_.emplace_back(new Node());
  }
  Node* node = node_pool_[pool_used_++].get();
  node->Clear();
  return node;
}

size_t CowBTree::MaxValueSize() const {
  // One entry must fit a leaf page: header + key + vlen + value.
  return store_->page_size() - kPageHeaderBytes - 12;
}

size_t CowBTree::InnerCapacity() const {
  const size_t cap =
      (store_->page_size() - kPageHeaderBytes - 8) / (2 * 8);
  return cap < 4 ? 4 : cap;
}

size_t CowBTree::SerializedSize(const Node& node) const {
  if (node.leaf) {
    size_t bytes = kPageHeaderBytes;
    for (const auto& v : node.vals) bytes += 12 + v.second;
    return bytes;
  }
  return kPageHeaderBytes + node.keys.size() * 8 +
         node.children.size() * 8;
}

void CowBTree::SerializeNode(const Node& node, uint8_t* buf) const {
  memset(buf, 0, store_->page_size());
  uint8_t* p = buf;
  memcpy(p, &kPageMagic, 4);
  p += 4;
  const uint16_t is_leaf = node.leaf ? 1 : 0;
  memcpy(p, &is_leaf, 2);
  p += 2;
  const uint16_t count = static_cast<uint16_t>(node.keys.size());
  memcpy(p, &count, 2);
  p += 2;
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); i++) {
      memcpy(p, &node.keys[i], 8);
      p += 8;
      const uint32_t vlen = node.vals[i].second;
      memcpy(p, &vlen, 4);
      p += 4;
      memcpy(p, node.arena.data() + node.vals[i].first, vlen);
      p += vlen;
    }
  } else {
    for (uint64_t k : node.keys) {
      memcpy(p, &k, 8);
      p += 8;
    }
    for (uint64_t c : node.children) {
      memcpy(p, &c, 8);
      p += 8;
    }
  }
  assert(static_cast<size_t>(p - buf) <= store_->page_size());
}

void CowBTree::ParseNode(const uint8_t* buf, Node* out) const {
  out->Clear();
  const uint8_t* p = buf;
  uint32_t magic;
  memcpy(&magic, p, 4);
  p += 4;
  assert(magic == kPageMagic && "corrupt CoW page");
  (void)magic;
  uint16_t is_leaf, count;
  memcpy(&is_leaf, p, 2);
  p += 2;
  memcpy(&count, p, 2);
  p += 2;
  out->leaf = is_leaf != 0;
  out->keys.resize(count);
  if (out->leaf) {
    out->vals.reserve(count);
    for (size_t i = 0; i < count; i++) {
      memcpy(&out->keys[i], p, 8);
      p += 8;
      uint32_t vlen;
      memcpy(&vlen, p, 4);
      p += 4;
      out->vals.push_back(
          out->AppendBytes(Slice(reinterpret_cast<const char*>(p), vlen)));
      p += vlen;
    }
  } else {
    for (size_t i = 0; i < count; i++) {
      memcpy(&out->keys[i], p, 8);
      p += 8;
    }
    out->children.resize(count + 1);
    for (size_t i = 0; i <= count; i++) {
      memcpy(&out->children[i], p, 8);
      p += 8;
    }
  }
}

void CowBTree::LoadNode(uint64_t epid, Node* out) const {
  assert(epid != kNilPage);
  page_buf_.resize(store_->page_size());
  store_->ReadPage(epid - 1, page_buf_.data());
  ParseNode(page_buf_.data(), out);
}

bool CowBTree::IsFresh(uint64_t epid) const {
  return std::binary_search(fresh_pages_.begin(), fresh_pages_.end(), epid);
}

void CowBTree::AddFresh(uint64_t epid) {
  fresh_pages_.insert(
      std::lower_bound(fresh_pages_.begin(), fresh_pages_.end(), epid),
      epid);
}

void CowBTree::RemoveFresh(uint64_t epid) {
  auto it =
      std::lower_bound(fresh_pages_.begin(), fresh_pages_.end(), epid);
  if (it != fresh_pages_.end() && *it == epid) fresh_pages_.erase(it);
}

void CowBTree::RetirePage(uint64_t epid) {
  if (IsFresh(epid)) {
    RemoveFresh(epid);
    store_->FreePage(epid - 1);
  } else {
    replaced_pages_.push_back(epid);
  }
}

uint64_t CowBTree::StoreNode(const Node& node, uint64_t old_epid) {
  uint64_t epid;
  if (old_epid != kNilPage && IsFresh(old_epid)) {
    // Already part of the dirty directory: update in place.
    epid = old_epid;
  } else {
    epid = store_->AllocPage() + 1;
    AddFresh(epid);
    if (old_epid != kNilPage) replaced_pages_.push_back(old_epid);
  }
  page_buf_.resize(store_->page_size());
  SerializeNode(node, page_buf_.data());
  store_->WritePage(epid - 1, page_buf_.data());
  return epid;
}

void CowBTree::SplitLeaf(Node* node, Node* right) const {
  // Split by accumulated byte size so variable-length values balance.
  const size_t total = SerializedSize(*node);
  size_t acc = kPageHeaderBytes;
  size_t split_at = node->keys.size() / 2;
  for (size_t i = 0; i < node->keys.size(); i++) {
    acc += 12 + node->vals[i].second;
    if (acc >= total / 2) {
      split_at = i + 1;
      break;
    }
  }
  if (split_at == 0) split_at = 1;
  if (split_at >= node->keys.size()) split_at = node->keys.size() - 1;
  right->leaf = true;
  right->keys.assign(node->keys.begin() + split_at, node->keys.end());
  right->vals.reserve(node->keys.size() - split_at);
  for (size_t i = split_at; i < node->keys.size(); i++) {
    right->vals.push_back(right->AppendBytes(node->value(i)));
  }
  node->keys.resize(split_at);
  node->vals.resize(split_at);
}

void CowBTree::SplitInner(Node* node, Node* right, uint64_t* sep) const {
  const size_t mid = node->keys.size() / 2;
  *sep = node->keys[mid];
  right->leaf = false;
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
}

CowBTree::ModResult CowBTree::PutRec(uint64_t epid, uint64_t key,
                                     const Slice& value, bool* inserted) {
  ModResult result;
  const size_t pool_mark = pool_used_;
  Node* node = AcquireNode();
  if (epid != kNilPage) LoadNode(epid, node);

  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const size_t i = static_cast<size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->SetValue(i, value);
      *inserted = false;
    } else {
      node->keys.insert(it, key);
      node->InsertValue(i, value);
      *inserted = true;
    }
    if (SerializedSize(*node) > store_->page_size() &&
        node->keys.size() > 1) {
      Node* right = AcquireNode();
      SplitLeaf(node, right);
      result.has_split = true;
      result.split_key = right->keys.front();
      result.right_pid = StoreNode(*right, kNilPage);
    }
    result.pid = StoreNode(*node, epid);
    pool_used_ = pool_mark;
    return result;
  }

  // Inner: keys[i] is the smallest key of children[i+1].
  size_t ci = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  ModResult child = PutRec(node->children[ci], key, value, inserted);
  node->children[ci] = child.pid;
  if (child.has_split) {
    node->keys.insert(node->keys.begin() + ci, child.split_key);
    node->children.insert(node->children.begin() + ci + 1, child.right_pid);
  }
  if (node->keys.size() > InnerCapacity()) {
    Node* right = AcquireNode();
    uint64_t sep;
    SplitInner(node, right, &sep);
    result.has_split = true;
    result.split_key = sep;
    result.right_pid = StoreNode(*right, kNilPage);
  }
  result.pid = StoreNode(*node, epid);
  pool_used_ = pool_mark;
  return result;
}

bool CowBTree::Put(uint64_t key, const Slice& value) {
  if (value.size() > MaxValueSize()) return false;
  bool inserted = false;
  ModResult result = PutRec(dirty_root_, key, value, &inserted);
  if (result.has_split) {
    const size_t pool_mark = pool_used_;
    Node* new_root = AcquireNode();
    new_root->leaf = false;
    new_root->keys.assign(1, result.split_key);
    new_root->children.assign({result.pid, result.right_pid});
    dirty_root_ = StoreNode(*new_root, kNilPage);
    pool_used_ = pool_mark;
  } else {
    dirty_root_ = result.pid;
  }
  return true;
}

CowBTree::ModResult CowBTree::DeleteRec(uint64_t epid, uint64_t key,
                                        bool* deleted) {
  ModResult result;
  result.pid = epid;
  if (epid == kNilPage) return result;
  const size_t pool_mark = pool_used_;
  Node* node = AcquireNode();
  LoadNode(epid, node);

  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key) {
      pool_used_ = pool_mark;
      return result;
    }
    const size_t i = static_cast<size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->vals.erase(node->vals.begin() + static_cast<ptrdiff_t>(i));
    *deleted = true;
    if (node->keys.empty()) {
      result.removed = true;
      RetirePage(epid);
      result.pid = kNilPage;
      pool_used_ = pool_mark;
      return result;
    }
    result.pid = StoreNode(*node, epid);
    pool_used_ = pool_mark;
    return result;
  }

  size_t ci = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  ModResult child = DeleteRec(node->children[ci], key, deleted);
  if (!*deleted) {
    pool_used_ = pool_mark;
    return result;
  }
  if (child.removed) {
    node->children.erase(node->children.begin() + ci);
    if (ci == 0) {
      if (!node->keys.empty()) node->keys.erase(node->keys.begin());
    } else {
      node->keys.erase(node->keys.begin() + ci - 1);
    }
    if (node->children.empty()) {
      result.removed = true;
      RetirePage(epid);
      result.pid = kNilPage;
      pool_used_ = pool_mark;
      return result;
    }
  } else {
    node->children[ci] = child.pid;
  }
  result.pid = StoreNode(*node, epid);
  pool_used_ = pool_mark;
  return result;
}

bool CowBTree::Delete(uint64_t key) {
  bool deleted = false;
  ModResult result = DeleteRec(dirty_root_, key, &deleted);
  if (!deleted) return false;
  dirty_root_ = result.pid;
  // Collapse a single-child root.
  while (dirty_root_ != kNilPage) {
    const size_t pool_mark = pool_used_;
    Node* node = AcquireNode();
    LoadNode(dirty_root_, node);
    if (node->leaf || node->children.size() != 1) {
      pool_used_ = pool_mark;
      break;
    }
    const uint64_t old_root = dirty_root_;
    dirty_root_ = node->children[0];
    RetirePage(old_root);
    pool_used_ = pool_mark;
  }
  return true;
}

bool CowBTree::GetRec(uint64_t epid, uint64_t key, std::string* out) const {
  if (epid == kNilPage) return false;
  const size_t pool_mark = pool_used_;
  Node* node = AcquireNode();
  LoadNode(epid, node);
  while (!node->leaf) {
    const size_t ci = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    const uint64_t child = node->children[ci];
    LoadNode(child, node);
  }
  const auto it =
      std::lower_bound(node->keys.begin(), node->keys.end(), key);
  const bool found = it != node->keys.end() && *it == key;
  if (found && out != nullptr) {
    const Slice v =
        node->value(static_cast<size_t>(it - node->keys.begin()));
    out->assign(v.data(), v.size());
  }
  pool_used_ = pool_mark;
  return found;
}

bool CowBTree::Get(uint64_t key, std::string* out) const {
  return GetRec(dirty_root_, key, out);
}

bool CowBTree::GetCommitted(uint64_t key, std::string* out) const {
  return GetRec(current_root_, key, out);
}

void CowBTree::ScanRec(
    uint64_t epid, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Slice&)>& fn,
    bool* keep_going) const {
  if (epid == kNilPage || !*keep_going) return;
  const size_t pool_mark = pool_used_;
  Node* node = AcquireNode();
  LoadNode(epid, node);
  if (node->leaf) {
    for (size_t i = 0; i < node->keys.size(); i++) {
      if (node->keys[i] < lo) continue;
      if (node->keys[i] > hi) {
        *keep_going = false;
        break;
      }
      if (!fn(node->keys[i], node->value(i))) {
        *keep_going = false;
        break;
      }
    }
    pool_used_ = pool_mark;
    return;
  }
  for (size_t i = 0; i < node->children.size() && *keep_going; i++) {
    const bool lo_ok = (i == node->keys.size()) || lo <= node->keys[i];
    const bool hi_ok = (i == 0) || node->keys[i - 1] <= hi;
    if (lo_ok && hi_ok) ScanRec(node->children[i], lo, hi, fn, keep_going);
  }
  pool_used_ = pool_mark;
}

void CowBTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Slice&)>& fn) const {
  bool keep_going = true;
  ScanRec(dirty_root_, lo, hi, fn, &keep_going);
}

void CowBTree::Commit() {
  if (dirty_root_ == current_root_ && fresh_pages_.empty()) return;
  // fresh_pages_ is sorted, so the flush runs ascending — the same order
  // the historical std::set produced.
  flush_scratch_.clear();
  for (uint64_t epid : fresh_pages_) flush_scratch_.push_back(epid - 1);
  store_->FlushPages(flush_scratch_);
  store_->WriteMaster(dirty_root_);
  for (uint64_t epid : replaced_pages_) store_->FreePage(epid - 1);
  replaced_pages_.clear();
  fresh_pages_.clear();
  current_root_ = dirty_root_;
}

void CowBTree::Abort() {
  for (uint64_t epid : fresh_pages_) store_->FreePage(epid - 1);
  fresh_pages_.clear();
  replaced_pages_.clear();
  dirty_root_ = current_root_;
}

void CowBTree::CollectReachable(uint64_t epid,
                                std::set<uint64_t>* out) const {
  if (epid == kNilPage) return;
  out->insert(epid - 1);
  const size_t pool_mark = pool_used_;
  Node* node = AcquireNode();
  LoadNode(epid, node);
  if (!node->leaf) {
    for (uint64_t child : node->children) CollectReachable(child, out);
  }
  pool_used_ = pool_mark;
}

void CowBTree::GarbageCollect() {
  std::set<uint64_t> reachable;
  CollectReachable(current_root_, &reachable);
  store_->RetainOnly(reachable);
}

size_t CowBTree::PageCount() const {
  std::set<uint64_t> reachable;
  CollectReachable(dirty_root_, &reachable);
  return reachable.size();
}

}  // namespace nvmdb
