#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "index/cow_btree.h"

namespace nvmdb {
namespace {

// Parameterized over the two page-store implementations the paper's two
// CoW engines use.
enum class StoreKind { kPmfs, kNvm };

class CowBTreeTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  CowBTreeTest()
      : device_(64ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_) {
    store_ = MakeStore(&allocator_, &fs_);
    tree_ = std::make_unique<CowBTree>(store_.get());
  }

  static std::unique_ptr<PageStore> MakeStore(PmemAllocator* allocator,
                                              Pmfs* fs) {
    if (GetParam() == StoreKind::kPmfs) {
      return std::make_unique<PmfsPageStore>(fs, "cow.db", 4096, 256,
                                             StorageTag::kTable);
    }
    return std::make_unique<NvmPageStore>(allocator, "cow", 4096,
                                          StorageTag::kIndex);
  }

  void Reattach() {
    tree_.reset();
    store_.reset();
    allocator2_ = std::make_unique<PmemAllocator>(&device_, false);
    fs2_ = std::make_unique<Pmfs>(allocator2_.get());
    store_ = MakeStore(allocator2_.get(), fs2_.get());
    tree_ = std::make_unique<CowBTree>(store_.get());
  }

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
  std::unique_ptr<PmemAllocator> allocator2_;
  std::unique_ptr<Pmfs> fs2_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<CowBTree> tree_;
};

TEST_P(CowBTreeTest, PutGetDelete) {
  EXPECT_TRUE(tree_->Put(1, Slice("one")));
  EXPECT_TRUE(tree_->Put(2, Slice("two")));
  std::string v;
  ASSERT_TRUE(tree_->Get(1, &v));
  EXPECT_EQ(v, "one");
  EXPECT_FALSE(tree_->Get(3, &v));
  EXPECT_TRUE(tree_->Delete(1));
  EXPECT_FALSE(tree_->Get(1, &v));
  EXPECT_FALSE(tree_->Delete(1));
}

TEST_P(CowBTreeTest, DirtyVsCommittedVisibility) {
  tree_->Put(1, Slice("committed"));
  tree_->Commit();
  tree_->Put(1, Slice("dirty"));
  std::string v;
  tree_->Get(1, &v);
  EXPECT_EQ(v, "dirty");
  tree_->GetCommitted(1, &v);
  EXPECT_EQ(v, "committed");
}

TEST_P(CowBTreeTest, AbortRestoresCommittedState) {
  tree_->Put(1, Slice("keep"));
  tree_->Commit();
  tree_->Put(1, Slice("discard"));
  tree_->Put(2, Slice("discard too"));
  tree_->Delete(1);
  tree_->Abort();
  std::string v;
  ASSERT_TRUE(tree_->Get(1, &v));
  EXPECT_EQ(v, "keep");
  EXPECT_FALSE(tree_->Get(2, &v));
}

TEST_P(CowBTreeTest, CommittedSurvivesCrashUncommittedDoesNot) {
  tree_->Put(10, Slice("durable"));
  tree_->Commit();
  tree_->Put(20, Slice("in flight"));
  // No commit: crash.
  device_.Crash();
  Reattach();
  std::string v;
  ASSERT_TRUE(tree_->Get(10, &v));
  EXPECT_EQ(v, "durable");
  EXPECT_FALSE(tree_->Get(20, &v));
}

TEST_P(CowBTreeTest, MasterRecordSwapIsAtomic) {
  for (uint64_t i = 0; i < 50; i++) {
    tree_->Put(i, Slice("v1"));
  }
  tree_->Commit();
  for (uint64_t i = 0; i < 50; i++) {
    tree_->Put(i, Slice("v2-longer-value"));
  }
  // Crash before commit: all keys must read v1, none v2.
  device_.Crash();
  Reattach();
  for (uint64_t i = 0; i < 50; i++) {
    std::string v;
    ASSERT_TRUE(tree_->Get(i, &v));
    EXPECT_EQ(v, "v1");
  }
}

TEST_P(CowBTreeTest, ManyEntriesWithSplits) {
  std::map<uint64_t, std::string> model;
  Random rng(7);
  for (int i = 0; i < 3000; i++) {
    const uint64_t key = rng.Uniform(1000);
    if (rng.Percent(75)) {
      std::string value = rng.String(20 + rng.Uniform(200));
      tree_->Put(key, Slice(value));
      model[key] = value;
    } else {
      EXPECT_EQ(tree_->Delete(key), model.erase(key) > 0);
    }
    if (i % 100 == 0) tree_->Commit();
  }
  tree_->Commit();
  for (const auto& [key, value] : model) {
    std::string v;
    ASSERT_TRUE(tree_->Get(key, &v)) << key;
    EXPECT_EQ(v, value);
  }
  // Scan order matches the model.
  auto it = model.begin();
  tree_->Scan(0, ~0ull, [&](uint64_t k, const Slice& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v.ToString(), it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

TEST_P(CowBTreeTest, ScanRange) {
  for (uint64_t i = 0; i < 200; i++) {
    tree_->Put(i * 5, Slice("x"));
  }
  std::vector<uint64_t> keys;
  tree_->Scan(23, 41, [&](uint64_t k, const Slice&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<uint64_t>{25, 30, 35, 40}));
}

TEST_P(CowBTreeTest, RejectsOversizedValue) {
  const std::string huge(8192, 'x');
  EXPECT_FALSE(tree_->Put(1, Slice(huge)));
}

TEST_P(CowBTreeTest, GarbageCollectReclaimsOldVersions) {
  for (uint64_t i = 0; i < 200; i++) tree_->Put(i, Slice("v"));
  tree_->Commit();
  const size_t pages_live = tree_->PageCount();
  // Overwrite everything a few times: old pages freed at commit.
  for (int round = 0; round < 5; round++) {
    for (uint64_t i = 0; i < 200; i++) tree_->Put(i, Slice("w"));
    tree_->Commit();
  }
  EXPECT_LE(tree_->PageCount(), pages_live + 2);
  tree_->GarbageCollect();
  // After GC, another full rewrite reuses freed pages rather than growing
  // storage without bound.
  const uint64_t bytes_before = store_->StorageBytes();
  for (uint64_t i = 0; i < 200; i++) tree_->Put(i, Slice("z"));
  tree_->Commit();
  EXPECT_LE(store_->StorageBytes(), bytes_before * 2 + 64 * 1024);
}

TEST_P(CowBTreeTest, DeleteAllThenReuse) {
  for (uint64_t i = 0; i < 100; i++) tree_->Put(i, Slice("a"));
  tree_->Commit();
  for (uint64_t i = 0; i < 100; i++) EXPECT_TRUE(tree_->Delete(i));
  tree_->Commit();
  std::string v;
  EXPECT_FALSE(tree_->Get(0, &v));
  EXPECT_TRUE(tree_->Put(5, Slice("fresh")));
  ASSERT_TRUE(tree_->Get(5, &v));
  EXPECT_EQ(v, "fresh");
}

INSTANTIATE_TEST_SUITE_P(Stores, CowBTreeTest,
                         ::testing::Values(StoreKind::kPmfs,
                                           StoreKind::kNvm),
                         [](const auto& info) {
                           return info.param == StoreKind::kPmfs ? "Pmfs"
                                                                 : "Nvm";
                         });

}  // namespace
}  // namespace nvmdb
