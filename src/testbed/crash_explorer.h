#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/storage_engine.h"

namespace nvmdb {

/// Systematic crash-point exploration (the harness ISSUE 2 builds): replay
/// a fixed seeded workload against one engine, crash at every Kth
/// durability event (plus an optional randomized sweep with torn final
/// persists), re-open the engine from the durable-only image, and check
/// the recovered state against a shadow model of durably-acknowledged
/// transactions plus structural invariants.
///
/// The consistency contract checked per crash point:
///  * the recovered database equals the state after some prefix P of the
///    committed-transaction sequence, where P covers at least every
///    transaction whose durability had been acknowledged
///    (`LastDurableTxn`) before the crash event, and at most every
///    transaction committed before it (plus the one mid-commit, which a
///    crash inside `Commit` may legitimately land);
///  * no aborted transaction's writes are visible (any such write makes
///    the state match no committed prefix);
///  * the allocator heap walk terminates with well-formed slot headers
///    (`PmemAllocator::AuditHeap`);
///  * `ScanRange` yields strictly ascending keys that agree with `Select`;
///  * the engine accepts and persists new transactions after recovery.
struct CrashExplorerConfig {
  EngineKind engine = EngineKind::kInP;
  /// Workload shape: `txns` transactions of 1-3 insert/update/delete ops
  /// over `keys` distinct keys; `abort_percent` of them abort.
  int txns = 200;
  int keys = 48;
  uint32_t abort_percent = 10;
  uint64_t seed = 1;

  /// Database shape (one partition; small capacity keeps the per-crash
  /// image snapshot/restore cheap).
  size_t nvm_capacity = 16ull * 1024 * 1024;
  size_t group_commit_size = 4;
  size_t memtable_threshold_bytes = 32 * 1024;
  uint64_t checkpoint_interval_txns = 64;

  /// Crash at events stride, 2*stride, ... (1 = every durability event).
  uint64_t event_stride = 1;
  /// Hard cap on systematic crash points (0 = no cap).
  uint64_t max_crash_points = 0;
  /// Additional uniformly random crash points, torn according to
  /// `tear_random_points`.
  uint64_t random_crash_points = 0;
  /// Tear the final in-flight persist at the systematic points / the
  /// random points.
  bool tear_final_persist = false;
  bool tear_random_points = true;
};

struct CrashExplorerReport {
  uint64_t total_events = 0;      // durability events in one workload run
  uint64_t crash_points_run = 0;  // recoveries actually exercised
  uint64_t violations = 0;
  /// One line per violation (capped), e.g.
  /// "event 812 (torn): committed-then-lost txn 57".
  std::vector<std::string> messages;
};

/// Run the exploration. Deterministic for a given config.
CrashExplorerReport RunCrashExplorer(const CrashExplorerConfig& config);

}  // namespace nvmdb
