#pragma once

#include <memory>
#include <vector>

#include "engine/cow_engine.h"
#include "engine/table_storage.h"

namespace nvmdb {

/// NVM-aware copy-on-write engine (Section 4.2). Three optimizations over
/// the traditional CoW engine:
///  1. the copy-on-write B+tree is non-volatile and maintained with the
///     allocator interface — no filesystem, no page cache, no kernel
///     crossings;
///  2. tuples are persisted directly in NVM slot pools and the dirty
///     directory records only 8-byte non-volatile tuple pointers, so an
///     update copies one tuple, not a 4 KB block of inlined tuples;
///  3. the master record is updated with a single atomic durable write.
///
/// Tuple copies made by a batch are synced lazily at group commit, before
/// the dirty directory is persisted and the master record swapped — the
/// commit ordering of Section 4.2.
class NvmCowEngine : public CowEngine {
 public:
  explicit NvmCowEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kNvmCoW; }

  Status CreateTable(const TableDef& def) override;
  Status Recover() override;
  FootprintStats Footprint() const override;

 protected:
  Status EncodeTupleValueTo(uint32_t table_id, const Tuple& tuple,
                            std::string* out) override;
  void DecodeTupleValueTo(uint32_t table_id, const Slice& value,
                          Tuple* out) override;
  void OnValueReplaced(uint32_t table_id, const Slice& old_value) override;
  void OnTxnCommitHook() override;
  void OnTxnAbortHook() override;
  void OnBatchFlush() override;
  void OnBatchFlushed() override;

 private:
  struct HeapEntry {
    uint32_t table_id;
    uint64_t slot;
  };

  PmemAllocator* allocator_;
  std::map<uint32_t, std::unique_ptr<TableHeap>> heaps_;

  // Slots staged by the current transaction / batch.
  std::vector<HeapEntry> txn_new_slots_;
  std::vector<HeapEntry> txn_old_slots_;
  std::vector<HeapEntry> batch_new_slots_;   // persist at flush
  std::vector<HeapEntry> batch_old_slots_;   // free after flush
  uint32_t encoding_table_ = 0;              // table of value being encoded
};

}  // namespace nvmdb
