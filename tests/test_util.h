#pragma once

#include <memory>
#include <string>

#include "testbed/database.h"

namespace nvmdb {
namespace testutil {

/// A small two-varchar-column test schema: id, name(32), payload(100),
/// count.
inline TableDef SimpleTable(uint32_t table_id = 1) {
  TableDef def;
  def.table_id = table_id;
  def.name = "simple";
  def.schema = Schema({{"id", ColumnType::kUInt64, 8},
                       {"name", ColumnType::kVarchar, 32},
                       {"payload", ColumnType::kVarchar, 100},
                       {"count", ColumnType::kUInt64, 8}});
  SecondaryIndexDef by_name;
  by_name.index_id = 0;
  by_name.key_columns = {1};
  def.secondary_indexes.push_back(by_name);
  return def;
}

inline Tuple SimpleTuple(const Schema* schema, uint64_t id,
                         const std::string& name, uint64_t count = 0) {
  Tuple t(schema);
  t.SetU64(0, id);
  t.SetString(1, name);
  t.SetString(2, std::string(100, static_cast<char>('a' + id % 26)));
  t.SetU64(3, count);
  return t;
}

/// Fresh single/multi-partition database for one engine kind.
inline std::unique_ptr<Database> MakeDb(
    EngineKind kind, size_t partitions = 1,
    size_t capacity = 64ull * 1024 * 1024) {
  DatabaseConfig config;
  config.num_partitions = partitions;
  config.nvm_capacity = capacity;
  config.latency = NvmLatencyConfig::Dram();
  config.engine = kind;
  // Small group-commit and flush thresholds so tests exercise those paths
  // quickly.
  config.engine_config.group_commit_size = 4;
  config.engine_config.memtable_threshold_bytes = 64 * 1024;
  return std::make_unique<Database>(config);
}

inline const EngineKind kAllEngines[] = {
    EngineKind::kInP,    EngineKind::kCoW,    EngineKind::kLog,
    EngineKind::kNvmInP, EngineKind::kNvmCoW, EngineKind::kNvmLog,
};

}  // namespace testutil
}  // namespace nvmdb
