/// Fig. 13 — Execution-time breakdown while running YCSB with low skew
/// under the low-NVM-latency profile, now attributed per component on the
/// simulated clock: wal / index / tuple / allocator / checkpoint /
/// recovery / other (ScopedStallTag attribution inside the engines).
///
/// The 24 (mixture, engine) cells run concurrently on the grid scheduler;
/// the tables print after the barrier in grid order.
///
/// Expected shape (paper): on write-heavy mixes the NVM-aware engines
/// spend ~13–18% on recovery-related (WAL) work vs up to ~33% for
/// traditional ones; CoW engines spend relatively more on durability even
/// when read-heavy (dirty-directory maintenance); Log engines spend the
/// most on index access (LSM lookups).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};

  std::vector<BenchRun> runs(4 * AllEngines().size());
  BenchRunner runner("fig13_breakdown");
  AddScaleContext(&runner);
  for (int m = 0; m < 4; m++) {
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const size_t idx = m * AllEngines().size() + e;
      const YcsbMixture mixture = mixtures[m];
      const EngineKind engine = AllEngines()[e];
      runner.Submit([&runs, idx, mixture, engine]() {
        runs[idx] = RunYcsb(engine, mixture, YcsbSkew::kLow);
        BenchCell cell =
            CellFromRun({{"mixture", YcsbMixtureName(mixture)},
                         {"engine", EngineKindName(engine)}},
                        runs[idx], Scale().partitions);
        const StallBreakdown& tags = runs[idx].counters.tags;
        const uint64_t total = tags.total();
        for (size_t t = 0; t < kStallTagCount; t++) {
          std::string slug = StallTagName(static_cast<StallTag>(t));
          slug += "_pct";
          cell.metrics.emplace_back(
              slug, total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(tags.ns[t]) /
                              static_cast<double>(total));
        }
        return cell;
      });
    }
  }
  runner.Wait();

  PrintHeader(
      "Fig. 13: execution-time breakdown (%), YCSB low skew, low latency");
  for (int m = 0; m < 4; m++) {
    printf("\n--- %s workload ---\n", YcsbMixtureName(mixtures[m]));
    printf("%-10s", "engine");
    for (size_t t = 0; t < kStallTagCount; t++) {
      printf(" %10s", StallTagName(static_cast<StallTag>(t)));
    }
    printf("\n");
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const BenchRun& run = runs[m * AllEngines().size() + e];
      const StallBreakdown& tags = run.counters.tags;
      const uint64_t total = tags.total();
      printf("%-10s", EngineKindName(AllEngines()[e]));
      for (size_t t = 0; t < kStallTagCount; t++) {
        printf(" %9.1f%%",
               total == 0 ? 0.0
                          : 100.0 * static_cast<double>(tags.ns[t]) /
                                static_cast<double>(total));
      }
      printf("\n");
    }
  }
  printf(
      "\nPaper shape: WAL share grows with write intensity and is much\n"
      "smaller for NVM-aware engines; Log engines index-heavy\n"
      "(Section 5.5, Fig. 13).\n");
  return ExitStatus();
}
