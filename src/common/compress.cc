#include "common/compress.h"

#include <cstring>
#include <vector>

namespace nvmdb {
namespace {

constexpr uint8_t kLiteralOp = 0x00;
constexpr uint8_t kMatchOp = 0x01;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 255 + kMinMatch;
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kHashBits = 15;

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*p < end && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(**p);
    (*p)++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint32_t HashQuad(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(std::string* out, const char* base, size_t start,
                  size_t end) {
  if (end <= start) return;
  out->push_back(static_cast<char>(kLiteralOp));
  PutVarint(out, end - start);
  out->append(base + start, end - start);
}

}  // namespace

std::string LzCompress(const Slice& input) {
  std::string out;
  const char* data = input.data();
  const size_t n = input.size();
  PutVarint(&out, n);  // uncompressed size header
  if (n == 0) return out;

  std::vector<int64_t> head(1u << kHashBits, -1);
  size_t i = 0;
  size_t literal_start = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = HashQuad(data + i);
    const int64_t cand = head[h];
    head[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
        memcmp(data + cand, data + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      const size_t max_len =
          (n - i) < kMaxMatch ? (n - i) : kMaxMatch;
      while (len < max_len && data[cand + len] == data[i + len]) len++;
      EmitLiterals(&out, data, literal_start, i);
      out.push_back(static_cast<char>(kMatchOp));
      PutVarint(&out, len - kMinMatch);
      PutVarint(&out, i - static_cast<size_t>(cand));
      i += len;
      literal_start = i;
    } else {
      i++;
    }
  }
  EmitLiterals(&out, data, literal_start, n);
  return out;
}

bool LzDecompress(const Slice& input, std::string* output) {
  output->clear();
  const char* p = input.data();
  const char* end = p + input.size();
  uint64_t expected = 0;
  if (!GetVarint(&p, end, &expected)) return false;
  output->reserve(expected);
  while (p < end) {
    const uint8_t op = static_cast<uint8_t>(*p++);
    if (op == kLiteralOp) {
      uint64_t len = 0;
      if (!GetVarint(&p, end, &len)) return false;
      if (static_cast<uint64_t>(end - p) < len) return false;
      output->append(p, len);
      p += len;
    } else if (op == kMatchOp) {
      uint64_t len = 0, dist = 0;
      if (!GetVarint(&p, end, &len)) return false;
      if (!GetVarint(&p, end, &dist)) return false;
      len += kMinMatch;
      if (dist == 0 || dist > output->size()) return false;
      // Byte-by-byte copy: matches may overlap their own output.
      size_t src = output->size() - dist;
      for (uint64_t k = 0; k < len; k++) {
        output->push_back((*output)[src + k]);
      }
    } else {
      return false;
    }
  }
  return output->size() == expected;
}

}  // namespace nvmdb
