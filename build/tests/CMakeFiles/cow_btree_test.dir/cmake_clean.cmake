file(REMOVE_RECURSE
  "CMakeFiles/cow_btree_test.dir/cow_btree_test.cc.o"
  "CMakeFiles/cow_btree_test.dir/cow_btree_test.cc.o.d"
  "cow_btree_test"
  "cow_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
