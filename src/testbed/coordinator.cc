#include "testbed/coordinator.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"

namespace nvmdb {

RunResult Coordinator::Run(const std::vector<std::vector<TxnTask>>& queues) {
  assert(queues.size() == db_->num_partitions());
  // Bind the thread-local device so NvmPtr resolution and the engines'
  // timers work no matter which thread drives this database (the bench
  // grid scheduler runs whole databases on pool threads).
  NvmEnv::Set(db_->device());
  RunResult result;

  const uint64_t stall_before = db_->device()->TotalStallNanos();
  Stopwatch watch;

  // Deterministic round-robin schedule: one transaction per partition per
  // round, on the calling thread. This is the fixed interleaving that a
  // one-worker-per-partition execution approximates nondeterministically —
  // partitions still contend for the shared simulated cache, but the
  // access order (and therefore every counter and the simulated clock) is
  // identical on every run and on every host. Host-level parallelism comes
  // from running independent benchmark cells concurrently instead
  // (testbed/bench_runner.h), which keeps the model deterministic; the
  // throughput model already charges each worker 1/Nth of the simulated
  // stall (RunResult::Throughput), so wall-clock threading never affected
  // the modeled numbers, only the harness speed.
  std::vector<size_t> pos(queues.size(), 0);
  for (bool progress = true; progress;) {
    progress = false;
    for (size_t p = 0; p < queues.size(); p++) {
      if (pos[p] >= queues[p].size()) continue;
      progress = true;
      const TxnTask& task = queues[p][pos[p]++];
      StorageEngine* engine = db_->partition(p);
      const uint64_t txn_id = engine->Begin();
      if (task.body(engine, txn_id)) {
        engine->Commit(txn_id);
        result.committed++;
      } else {
        engine->Abort(txn_id);
        result.aborted++;
      }
    }
  }

  result.wall_ns = watch.ElapsedNanos();
  result.stall_ns = db_->device()->TotalStallNanos() - stall_before;
  return result;
}

RunResult Coordinator::RunSerial(size_t partition,
                                 const std::vector<TxnTask>& queue) {
  NvmEnv::Set(db_->device());
  RunResult result;
  NvmDevice* device = db_->device();
  const uint64_t stall_before = device->TotalStallNanos();
  Stopwatch watch;
  StorageEngine* engine = db_->partition(partition);

  // Response-latency tracking: a transaction's response time runs from
  // Begin() until LastDurableTxn() covers it — for group-committing
  // engines that is when the group is forced, not when Commit() returns.
  std::vector<std::pair<uint64_t, uint64_t>> pending;  // txn id, start
  std::vector<uint64_t> latencies;
  latencies.reserve(queue.size());
  auto drain_durable = [&]() {
    const uint64_t durable = engine->LastDurableTxn();
    const uint64_t now = device->TotalStallNanos();
    size_t kept = 0;
    for (auto& [txn, start] : pending) {
      if (txn <= durable) {
        latencies.push_back(now - start);
      } else {
        pending[kept++] = {txn, start};
      }
    }
    pending.resize(kept);
  };

  for (const TxnTask& task : queue) {
    const uint64_t start = device->TotalStallNanos();
    const uint64_t txn_id = engine->Begin();
    if (task.body(engine, txn_id)) {
      engine->Commit(txn_id);
      result.committed++;
      pending.emplace_back(txn_id, start);
      drain_durable();
    } else {
      engine->Abort(txn_id);
      result.aborted++;
    }
  }
  // Force the tail group so every committed txn gets a response time.
  engine->Checkpoint();
  drain_durable();

  result.wall_ns = watch.ElapsedNanos();
  result.stall_ns = device->TotalStallNanos() - stall_before;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    uint64_t sum = 0;
    for (uint64_t v : latencies) sum += v;
    result.latency.count = latencies.size();
    result.latency.mean_ns =
        static_cast<double>(sum) / static_cast<double>(latencies.size());
    result.latency.p50_ns = latencies[latencies.size() / 2];
    result.latency.p95_ns = latencies[latencies.size() * 95 / 100];
    result.latency.p99_ns = latencies[latencies.size() * 99 / 100];
  }
  return result;
}

}  // namespace nvmdb
