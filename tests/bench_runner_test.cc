/// Grid-determinism tests for the benchmark scheduler
/// (testbed/bench_runner.h): running the same cell grid serially
/// (jobs=1) and concurrently (jobs=4) must produce identical commit
/// counts and identical device counters for every cell — the property
/// that lets the figure benchmarks parallelize while keeping their
/// stdout tables byte-identical.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "testbed/bench_runner.h"
#include "testbed/coordinator.h"
#include "testbed/database.h"
#include "testbed/stats.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace {

struct CellResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  CounterDelta delta;
};

/// One small YCSB cell on a private database, as the figure benches do.
CellResult RunCell(EngineKind engine, YcsbMixture mixture) {
  DatabaseConfig cfg;
  cfg.num_partitions = 2;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = engine;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = 400;
  ycfg.num_txns = 500;
  ycfg.num_partitions = cfg.num_partitions;
  ycfg.mixture = mixture;
  YcsbWorkload workload(ycfg);
  EXPECT_TRUE(workload.Load(&db).ok());

  CounterSampler sampler(db.device());
  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());

  CellResult out;
  out.committed = result.committed;
  out.aborted = result.aborted;
  out.delta = sampler.Delta();
  return out;
}

std::vector<BenchCell> RunGrid(const char* name, size_t jobs,
                               std::vector<CellResult>* results) {
  const EngineKind engines[] = {EngineKind::kInP, EngineKind::kNvmInP,
                                EngineKind::kNvmLog};
  const YcsbMixture mixtures[] = {YcsbMixture::kReadHeavy,
                                  YcsbMixture::kWriteHeavy};
  results->assign(6, {});
  BenchRunner runner(name, jobs);
  EXPECT_EQ(runner.jobs(), jobs);
  for (int e = 0; e < 3; e++) {
    for (int m = 0; m < 2; m++) {
      const size_t idx = e * 2 + m;
      const EngineKind engine = engines[e];
      const YcsbMixture mixture = mixtures[m];
      const size_t slot =
          runner.Submit([results, idx, engine, mixture]() {
            const CellResult r = RunCell(engine, mixture);
            (*results)[idx] = r;
            BenchCell cell;
            cell.key = {{"engine", EngineKindName(engine)},
                        {"mixture", YcsbMixtureName(mixture)}};
            cell.committed = r.committed;
            cell.aborted = r.aborted;
            cell.sim_ns = r.delta.stall_ns;
            return cell;
          });
      EXPECT_EQ(slot, idx);
    }
  }
  runner.Wait();
  return runner.cells();
}

class BenchRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep the unit test from littering report files.
    setenv("NVMDB_BENCH_JSON_DIR", "", 1);
  }
  void TearDown() override { unsetenv("NVMDB_BENCH_JSON_DIR"); }
};

TEST_F(BenchRunnerTest, ParallelGridMatchesSerialBitForBit) {
  std::vector<CellResult> serial, parallel;
  const std::vector<BenchCell> serial_cells =
      RunGrid("grid_serial", 1, &serial);
  const std::vector<BenchCell> parallel_cells =
      RunGrid("grid_parallel", 4, &parallel);

  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), 6u);
  ASSERT_EQ(serial_cells.size(), 6u);
  ASSERT_EQ(parallel_cells.size(), 6u);
  for (size_t i = 0; i < 6; i++) {
    SCOPED_TRACE("cell " + serial_cells[i].Label());
    EXPECT_GT(serial[i].committed, 0u);
    EXPECT_EQ(serial[i].committed, parallel[i].committed);
    EXPECT_EQ(serial[i].aborted, parallel[i].aborted);
    EXPECT_EQ(serial[i].delta.loads, parallel[i].delta.loads);
    EXPECT_EQ(serial[i].delta.stores, parallel[i].delta.stores);
    EXPECT_EQ(serial[i].delta.hits, parallel[i].delta.hits);
    EXPECT_EQ(serial[i].delta.sync_calls, parallel[i].delta.sync_calls);
    EXPECT_EQ(serial[i].delta.external_ns, parallel[i].delta.external_ns);
    EXPECT_EQ(serial[i].delta.stall_ns, parallel[i].delta.stall_ns);
    // Slot order is submission order regardless of completion order.
    EXPECT_EQ(serial_cells[i].key, parallel_cells[i].key);
    EXPECT_EQ(serial_cells[i].committed, parallel_cells[i].committed);
    // The runner stamps host wall time on every executed cell.
    EXPECT_GT(parallel_cells[i].wall_ns, 0u);
  }
}

TEST_F(BenchRunnerTest, LabelJoinsKeyValues) {
  BenchCell cell;
  cell.key = {{"engine", "InP"}, {"mixture", "balanced"}};
  EXPECT_EQ(cell.Label(), "InP balanced");
}

TEST_F(BenchRunnerTest, WriteReportEmitsJson) {
  char dir_template[] = "/tmp/bench_runner_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("NVMDB_BENCH_JSON_DIR", dir_template, 1);

  BenchRunner runner("unit", 1);
  runner.AddContext("scale", "tiny");
  runner.Submit([]() {
    BenchCell cell;
    cell.key = {{"engine", "InP"}};
    cell.committed = 7;
    cell.sim_ns = 1000;
    cell.metrics = {{"tps_dram", 123.5}};
    return cell;
  });
  const std::string path = runner.WriteReport();
  ASSERT_EQ(path, std::string(dir_template) + "/BENCH_unit.json");

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 14, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_NE(contents.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(contents.find("\"scale\": \"tiny\""), std::string::npos);
  EXPECT_NE(contents.find("\"committed\": 7"), std::string::npos);
  EXPECT_NE(contents.find("\"tps_dram\": 123.5"), std::string::npos);

  std::remove(path.c_str());
  rmdir(dir_template);
}

TEST_F(BenchRunnerTest, EmptyJsonDirDisablesReport) {
  BenchRunner runner("disabled", 1);
  runner.Submit([]() { return BenchCell{}; });
  EXPECT_EQ(runner.WriteReport(), "");
}

}  // namespace
}  // namespace nvmdb
