#include "testbed/stats.h"

#include <cstdio>

namespace nvmdb {

std::string FormatBreakdown(const StallBreakdown& breakdown) {
  const uint64_t total = breakdown.total();
  char buf[128];
  std::string out;
  for (size_t i = 0; i < kStallTagCount; i++) {
    const char* name = StallTagName(static_cast<StallTag>(i));
    const char* sep = i + 1 == kStallTagCount ? "" : " ";
    if (total == 0) {
      snprintf(buf, sizeof(buf), "%s 0%%%s", name, sep);
    } else {
      snprintf(buf, sizeof(buf), "%s %.1f%%%s", name,
               100.0 * static_cast<double>(breakdown.ns[i]) /
                   static_cast<double>(total),
               sep);
    }
    out += buf;
  }
  return out;
}

std::string FormatClockComparison(uint64_t wall_ns, uint64_t sim_ns) {
  char buf[128];
  const double ratio = wall_ns == 0 ? 0.0
                                    : static_cast<double>(sim_ns) /
                                          static_cast<double>(wall_ns);
  snprintf(buf, sizeof(buf),
           "wall %.2f s, simulated %.2f s (%.2fx real time)",
           static_cast<double>(wall_ns) * 1e-9,
           static_cast<double>(sim_ns) * 1e-9, ratio);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1ull << 30) {
    snprintf(buf, sizeof(buf), "%.2f GB",
             static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= 1ull << 20) {
    snprintf(buf, sizeof(buf), "%.2f MB",
             static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= 1ull << 10) {
    snprintf(buf, sizeof(buf), "%.2f KB",
             static_cast<double>(bytes) / (1ull << 10));
  } else {
    snprintf(buf, sizeof(buf), "%llu B",
             static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace nvmdb
