/// Fig. 8 — TPC-C throughput under the three NVM latency profiles.
///
/// One grid cell per engine, run concurrently (each on a private
/// database); the table prints after the barrier so stdout is identical
/// for any NVMDB_BENCH_JOBS.
///
/// Expected shape (paper): NVM-aware engines 1.8–2.1x their traditional
/// counterparts (NVM-CoW's speedup largest, ~2.3x, because TPC-C is
/// write-intensive); gaps shrink to ~1.7–1.9x at high latency.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  printf("TPC-C: %zu warehouses (1/partition), %llu txns\n",
         Scale().partitions, (unsigned long long)Scale().tpcc_txns);

  std::vector<BenchRun> runs(AllEngines().size());
  BenchRunner runner("fig08_tpcc");
  AddScaleContext(&runner);
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const EngineKind engine = AllEngines()[e];
    runner.Submit([&runs, e, engine]() {
      runs[e] = RunTpcc(engine);
      return CellFromRun({{"engine", EngineKindName(engine)}}, runs[e],
                         Scale().partitions);
    });
  }
  runner.Wait();

  PrintHeader("Fig. 8: TPC-C throughput (txn/sec)");
  printf("%-22s", "latency");
  for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
  printf("\n");
  for (const LatencyProfile& latency : PaperLatencies()) {
    printf("%-22s", latency.name);
    for (const BenchRun& run : runs) {
      printf("%12.0f",
             DeriveThroughput(run.committed, run.wall_ns, run.counters,
                              latency.config, Scale().partitions));
    }
    printf("\n");
  }
  printf(
      "\nPaper shape: NVM-aware 1.8-2.1x traditional; NVM-CoW's speedup\n"
      "over CoW largest (write-intensive mix); NVM-InP best overall\n"
      "(Section 5.2, Fig. 8).\n");
  return ExitStatus();
}
