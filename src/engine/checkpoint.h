#pragma once

#include <string>

#include "common/status.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Compressed checkpoint files for the InP engine (Section 3.1: the paper
/// gzips checkpoints on the filesystem to reduce their NVM footprint; we
/// use the built-in LZ codec). Format: u32 crc over the compressed bytes,
/// u64 compressed length, compressed payload.
Status WriteCheckpoint(Pmfs* fs, const std::string& file_name,
                       const std::string& payload);

/// Returns NotFound if absent, Corruption on a damaged/torn file.
Status ReadCheckpoint(Pmfs* fs, const std::string& file_name,
                      std::string* payload);

}  // namespace nvmdb
