#include "common/random.h"

#include <cmath>
#include <string>

namespace nvmdb {

HotspotGenerator::HotspotGenerator(uint64_t num_keys, double hot_data_fraction,
                                   double hot_access_fraction, uint64_t seed)
    : rng_(seed),
      num_keys_(num_keys),
      hot_keys_(static_cast<uint64_t>(
          static_cast<double>(num_keys) * hot_data_fraction)),
      hot_access_fraction_(hot_access_fraction) {
  if (hot_keys_ == 0) hot_keys_ = 1;
  if (hot_keys_ > num_keys_) hot_keys_ = num_keys_;
}

uint64_t HotspotGenerator::Next() {
  if (rng_.NextDouble() < hot_access_fraction_) {
    return rng_.Uniform(hot_keys_);
  }
  const uint64_t cold = num_keys_ - hot_keys_;
  if (cold == 0) return rng_.Uniform(hot_keys_);
  return hot_keys_ + rng_.Uniform(cold);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t num_keys, double theta,
                                   uint64_t seed)
    : rng_(seed), n_(num_keys), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace nvmdb
