/// Device wear — the paper's second headline: NVM-aware engines reduce
/// "the amount of wear due to write operations by up to 2x" (Abstract,
/// Section 7). NVM cells endure a bounded number of writes (Table 1), so
/// we report per-engine total line-writes plus the wear *distribution*
/// (hottest line vs mean), which the allocator's rotating placement and
/// the engines' reduced duplication both improve.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

WearStats MeasureWear(EngineKind engine, YcsbMixture mixture) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  auto db = std::make_unique<Database>(cfg);
  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples / 2;
  ycfg.num_txns = Scale().ycsb_txns / 2;
  ycfg.num_partitions = cfg.num_partitions;
  ycfg.mixture = mixture;
  YcsbWorkload workload(ycfg);
  if (!workload.Load(db.get()).ok()) return {};
  const WearStats before = db->device()->wear();
  Coordinator(db.get()).Run(workload.GenerateQueues());
  db->Drain();
  db->device()->FlushAll();
  WearStats after = db->device()->wear();
  after.total_line_writes -= before.total_line_writes;
  return after;
}

}  // namespace

int main() {
  PrintHeader("NVM device wear, YCSB (line writes during the run)");
  for (YcsbMixture mixture :
       {YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy}) {
    printf("\n--- %s workload ---\n", YcsbMixtureName(mixture));
    printf("%-10s %16s %14s %12s\n", "engine", "line writes",
           "hottest line", "hotspot");
    uint64_t traditional[3] = {0, 0, 0};
    int idx = 0;
    for (EngineKind engine : AllEngines()) {
      const WearStats wear = MeasureWear(engine, mixture);
      printf("%-10s %16llu %14llu %11.1fx\n", EngineKindName(engine),
             (unsigned long long)wear.total_line_writes,
             (unsigned long long)wear.max_line_writes,
             wear.hotspot_factor);
      fflush(stdout);
      if (idx < 3) {
        traditional[idx] = wear.total_line_writes;
      } else if (traditional[idx - 3] > 0) {
        printf("%-10s   vs traditional: %.2fx fewer writes\n", "",
               static_cast<double>(traditional[idx - 3]) /
                   static_cast<double>(wear.total_line_writes));
      }
      idx++;
    }
  }
  printf(
      "\nPaper shape: NVM-aware engines write up to ~2x less to the\n"
      "device (no duplicated log images / page copies), extending its\n"
      "lifetime (Abstract, Sections 5.3/7).\n"
      "Note the NVM engines' high hotspot factor: it is the NV-WAL's\n"
      "anchor word, rewritten on every append/truncate — a single hot\n"
      "metadata line that device-level wear leveling (or anchor rotation)\n"
      "must absorb; bulk data wear is spread by the allocator's rotating\n"
      "placement.\n");
  return 0;
}
