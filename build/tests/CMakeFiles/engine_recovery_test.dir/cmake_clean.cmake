file(REMOVE_RECURSE
  "CMakeFiles/engine_recovery_test.dir/engine_recovery_test.cc.o"
  "CMakeFiles/engine_recovery_test.dir/engine_recovery_test.cc.o.d"
  "engine_recovery_test"
  "engine_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
