#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/tuple.h"

namespace nvmdb {

/// Kinds of per-key records flowing through the log-structured engines.
/// A key's logical value is reconstructed by coalescing records newest to
/// oldest until a full image or tombstone concludes the search — the
/// "tuple coalescing" cost the paper charges the Log engine with.
enum class DeltaKind : uint8_t {
  kFull = 0,       // complete tuple image (insert)
  kDelta = 1,      // set of column updates
  kTombstone = 2,  // deletion marker
};

/// Serialize a set of column updates (the payload of a kDelta record).
/// The appending form is the hot path; the returning form is a cold-path
/// convenience wrapper.
void EncodeUpdatesTo(const Schema& schema,
                     const std::vector<ColumnUpdate>& updates,
                     std::string* out);
std::string EncodeUpdates(const Schema& schema,
                          const std::vector<ColumnUpdate>& updates);

/// Decoded updates hold Slice values pointing into `data` — the caller
/// must keep the encoded bytes alive while the updates are in use.
std::vector<ColumnUpdate> DecodeUpdates(const Schema& schema,
                                        const Slice& data);

/// Apply updates onto a materialized tuple.
void ApplyUpdates(Tuple* tuple, const std::vector<ColumnUpdate>& updates);

/// Decode-and-apply in one pass, with no intermediate vector — the
/// per-lookup coalescing path of the Log engines.
void ApplyEncodedUpdates(const Schema& schema, const Slice& data,
                         Tuple* tuple);

/// One record during reconstruction: kind + payload bytes.
struct DeltaRecord {
  DeltaKind kind;
  std::string payload;
};

/// A reusable pool of DeltaRecords: Clear() rewinds the logical count but
/// keeps every record's payload capacity, so the per-lookup record chains
/// the Log engines collect stop churning the heap once the pool has grown
/// to the longest chain seen.
struct DeltaRecordList {
  DeltaRecord* Add(DeltaKind kind) {
    if (count == items.size()) items.emplace_back();
    DeltaRecord* r = &items[count++];
    r->kind = kind;
    r->payload.clear();
    return r;
  }
  void RemoveLast() { count--; }
  void Clear() { count = 0; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const DeltaRecord* data() const { return items.data(); }
  const DeltaRecord& operator[](size_t i) const { return items[i]; }

  std::vector<DeltaRecord> items;
  size_t count = 0;
};

/// Coalesce records (ordered newest first) into a single conclusive
/// record: a tombstone, a full image, or — when no base image is present
/// in the input — a merged delta. Used by SSTable flush and compaction.
DeltaRecord CoalesceNewestFirst(const Schema& schema,
                                const std::vector<DeltaRecord>& records);

/// Materialize a tuple from records ordered newest first. Returns false
/// if the records conclude in a tombstone or never reach a full image.
bool MaterializeNewestFirst(const Schema& schema,
                            const DeltaRecord* records, size_t count,
                            Tuple* out);
inline bool MaterializeNewestFirst(const Schema& schema,
                                   const std::vector<DeltaRecord>& records,
                                   Tuple* out) {
  return MaterializeNewestFirst(schema, records.data(), records.size(),
                                out);
}
inline bool MaterializeNewestFirst(const Schema& schema,
                                   const DeltaRecordList& records,
                                   Tuple* out) {
  return MaterializeNewestFirst(schema, records.data(), records.size(),
                                out);
}

}  // namespace nvmdb
