#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nvm/pmem_allocator.h"

namespace nvmdb {

/// Non-volatile B+tree over the allocator interface (Section 4.1's
/// modified STX B+tree). Maps uint64 keys to uint64 values (typically
/// NvmPtr offsets). Guaranteed consistent immediately after restart — no
/// rebuild — via two techniques from the paper:
///
///  * **Append-in-node inserts.** A leaf keeps its entries unsorted; a new
///    entry is appended past the committed count, persisted, and then the
///    4-byte committed counter is atomically bumped. A crash mid-insert
///    leaves the counter unchanged, so a torn entry that crossed cache-line
///    boundaries is simply invisible.
///  * **Copy-on-write structural changes.** A split builds fully-persisted
///    new nodes and a new path to the root, then publishes it with one
///    atomic durable write of the root pointer.
///
/// Keys are unique within a leaf (updates overwrite the 8-byte value slot
/// in place, which is atomic), so lookups scan the committed region only.
class NvBTree {
 public:
  static constexpr uint64_t kTombstone = ~0ull;

  /// Open or create the tree registered under `name` in the allocator's
  /// root catalog. `node_bytes` only matters at creation time.
  NvBTree(PmemAllocator* allocator, const std::string& name,
          size_t node_bytes = 512)
      : allocator_(allocator), device_(allocator->device()) {
    uint64_t header_off = allocator_->GetRoot(name);
    if (header_off != 0) {
      header_off_ = header_off;
      return;
    }
    header_off_ = Create(allocator, node_bytes);
    allocator_->SetRoot(name, header_off_);
  }

  /// Attach to an existing tree by its header offset (anonymous trees held
  /// in a run directory, as NVM-Log's immutable MemTables are).
  NvBTree(PmemAllocator* allocator, uint64_t header_off)
      : allocator_(allocator),
        device_(allocator->device()),
        header_off_(header_off) {
    assert(header()->magic == kTreeMagic);
  }

  /// Create a fresh anonymous tree; returns its persistent header offset.
  static uint64_t Create(PmemAllocator* allocator, size_t node_bytes) {
    NvBTree t;
    t.allocator_ = allocator;
    t.device_ = allocator->device();
    t.header_off_ = allocator->Alloc(sizeof(TreeHeader),
                                     StorageTag::kIndex,
                                     /*sync_header=*/false);
    assert(t.header_off_ != 0);
    TreeHeader* h = t.header();
    h->magic = kTreeMagic;
    h->node_bytes = node_bytes;
    h->root_off = 0;
    t.device_->TouchWrite(h, sizeof(TreeHeader));
    h->root_off = t.NewLeaf();
    t.device_->TouchWrite(h, sizeof(TreeHeader));
    allocator->PersistPayloadAndMark(t.header_off_, sizeof(TreeHeader));
    return t.header_off_;
  }

  uint64_t header_offset() const { return header_off_; }

  /// Free every node and the header (whole-tree teardown after NVM-Log
  /// compaction). The tree must not be used afterwards.
  void FreeAll() {
    FreeRec(header()->root_off);
    allocator_->Free(header_off_);
    header_off_ = 0;
  }

  /// Insert or overwrite a key. `value` must not be kTombstone.
  /// Returns false if the key was already present (value overwritten).
  bool Insert(uint64_t key, uint64_t value) {
    assert(value != kTombstone);
    std::vector<PathEntry> path;
    const uint64_t leaf_off = Descend(key, &path);
    NodeHeader* leaf = NodeAt(leaf_off);
    Entry* entries = LeafEntries(leaf);
    TouchLeaf(leaf_off, leaf);
    for (uint32_t i = 0; i < leaf->committed; i++) {
      if (entries[i].key == key) {
        const bool was_live = entries[i].value != kTombstone;
        entries[i].value = value;
        device_->TouchWrite(&entries[i].value, 8);
        device_->Persist(&entries[i].value, 8);
        return !was_live;
      }
    }
    if (leaf->committed < leaf->capacity) {
      Entry* slot = &entries[leaf->committed];
      slot->key = key;
      slot->value = value;
      device_->TouchWrite(slot, sizeof(Entry));
      device_->Persist(slot, sizeof(Entry));
      leaf->committed++;
      device_->TouchWrite(&leaf->committed, 4);
      device_->Persist(&leaf->committed, 4);
      return true;
    }
    SplitAndInsert(leaf_off, path, key, value);
    return true;
  }

  /// Point lookup; tombstoned and absent keys both return false.
  bool Find(uint64_t key, uint64_t* out) const {
    const uint64_t leaf_off = Descend(key, nullptr);
    const NodeHeader* leaf = NodeAt(leaf_off);
    const Entry* entries = LeafEntries(leaf);
    TouchLeaf(leaf_off, leaf);
    for (uint32_t i = 0; i < leaf->committed; i++) {
      if (entries[i].key == key) {
        if (entries[i].value == kTombstone) return false;
        if (out != nullptr) *out = entries[i].value;
        return true;
      }
    }
    return false;
  }

  bool Contains(uint64_t key) const { return Find(key, nullptr); }

  /// Logical delete: atomically overwrite the value with a tombstone.
  /// Space is reclaimed when the leaf next splits (compaction).
  bool Erase(uint64_t key) {
    const uint64_t leaf_off = Descend(key, nullptr);
    NodeHeader* leaf = NodeAt(leaf_off);
    Entry* entries = LeafEntries(leaf);
    TouchLeaf(leaf_off, leaf);
    for (uint32_t i = 0; i < leaf->committed; i++) {
      if (entries[i].key == key) {
        if (entries[i].value == kTombstone) return false;
        entries[i].value = kTombstone;
        device_->TouchWrite(&entries[i].value, 8);
        device_->Persist(&entries[i].value, 8);
        return true;
      }
    }
    return false;
  }

  /// In-order visit of live entries with key in [lo, hi].
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t, uint64_t)>& fn) const {
    bool keep_going = true;
    ScanRec(header()->root_off, lo, hi, fn, &keep_going);
  }

  /// Number of live keys (walks the tree; for tests/stats).
  size_t Count() const {
    size_t n = 0;
    Scan(0, ~0ull - 1, [&n](uint64_t, uint64_t) {
      n++;
      return true;
    });
    return n;
  }

  /// Total NVM bytes held by nodes (Fig. 14 index accounting).
  size_t NvmBytes() const { return CountBytesRec(header()->root_off); }

 private:
  static constexpr uint64_t kTreeMagic = 0x4E56425452454531ULL;  // NVBTREE1
  static constexpr uint32_t kNodeMagic = 0x4E564E44;             // NVND

  struct TreeHeader {
    uint64_t magic;
    uint64_t root_off;
    uint64_t node_bytes;
  };

  struct NodeHeader {
    uint32_t magic;
    uint16_t is_leaf;
    uint16_t pad;
    uint32_t capacity;
    uint32_t committed;  // leaf: atomic append count; inner: key count
  };

  struct Entry {
    uint64_t key;
    uint64_t value;
  };

  struct PathEntry {
    uint64_t node_off;
    uint32_t child_idx;
  };

  TreeHeader* header() const {
    return reinterpret_cast<TreeHeader*>(device_->PtrAt(header_off_));
  }
  NodeHeader* NodeAt(uint64_t off) const {
    return reinterpret_cast<NodeHeader*>(device_->PtrAt(off));
  }
  static Entry* LeafEntries(const NodeHeader* n) {
    return reinterpret_cast<Entry*>(
        const_cast<uint8_t*>(reinterpret_cast<const uint8_t*>(n)) +
        sizeof(NodeHeader));
  }
  // Inner layout: keys[capacity] then children[capacity + 1].
  static uint64_t* InnerKeys(const NodeHeader* n) {
    return reinterpret_cast<uint64_t*>(
        const_cast<uint8_t*>(reinterpret_cast<const uint8_t*>(n)) +
        sizeof(NodeHeader));
  }
  static uint64_t* InnerChildren(const NodeHeader* n) {
    return InnerKeys(n) + n->capacity;
  }

  size_t LeafCapacity() const {
    size_t cap = (header()->node_bytes - sizeof(NodeHeader)) / sizeof(Entry);
    return cap < 4 ? 4 : cap;
  }
  size_t InnerCapacity() const {
    // keys + children, children one longer.
    size_t cap =
        (header()->node_bytes - sizeof(NodeHeader) - 8) / (2 * 8);
    return cap < 4 ? 4 : cap;
  }

  size_t NodeBytes(bool is_leaf, size_t capacity) const {
    return sizeof(NodeHeader) +
           (is_leaf ? capacity * sizeof(Entry)
                    : capacity * 8 + (capacity + 1) * 8);
  }

  uint64_t NewLeaf() {
    const size_t cap = header_off_ == 0 ? 4 : LeafCapacity();
    const size_t bytes = NodeBytes(true, cap);
    const uint64_t off =
        allocator_->Alloc(bytes, StorageTag::kIndex, /*sync_header=*/false);
    assert(off != 0);
    NodeHeader* n = NodeAt(off);
    n->magic = kNodeMagic;
    n->is_leaf = 1;
    n->capacity = static_cast<uint32_t>(cap);
    n->committed = 0;
    device_->TouchWrite(n, sizeof(NodeHeader));
    allocator_->PersistPayloadAndMark(off, sizeof(NodeHeader));
    return off;
  }

  /// Build and persist a new leaf pre-filled with sorted entries.
  uint64_t BuildLeaf(const std::vector<Entry>& entries) {
    const uint64_t off = NewLeaf();
    NodeHeader* n = NodeAt(off);
    Entry* dst = LeafEntries(n);
    std::copy(entries.begin(), entries.end(), dst);
    n->committed = static_cast<uint32_t>(entries.size());
    const size_t bytes = NodeBytes(true, n->capacity);
    device_->TouchWrite(n, bytes);
    allocator_->PersistPayloadAndMark(off, bytes);
    return off;
  }

  /// Build and persist a new inner node.
  uint64_t BuildInner(const std::vector<uint64_t>& keys,
                      const std::vector<uint64_t>& children) {
    assert(children.size() == keys.size() + 1);
    size_t cap = InnerCapacity();
    if (cap < keys.size()) cap = keys.size();
    const size_t bytes = NodeBytes(false, cap);
    const uint64_t off =
        allocator_->Alloc(bytes, StorageTag::kIndex, /*sync_header=*/false);
    assert(off != 0);
    NodeHeader* n = NodeAt(off);
    n->magic = kNodeMagic;
    n->is_leaf = 0;
    n->capacity = static_cast<uint32_t>(cap);
    n->committed = static_cast<uint32_t>(keys.size());
    std::copy(keys.begin(), keys.end(), InnerKeys(n));
    std::copy(children.begin(), children.end(), InnerChildren(n));
    device_->TouchWrite(n, bytes);
    allocator_->PersistPayloadAndMark(off, bytes);
    return off;
  }

  /// Walk to the leaf for `key`; optionally record the inner path.
  uint64_t Descend(uint64_t key, std::vector<PathEntry>* path) const {
    uint64_t off = header()->root_off;
    const NodeHeader* n = NodeAt(off);
    while (!n->is_leaf) {
      device_->TouchRead(n, sizeof(NodeHeader) + n->committed * 16 + 8);
      const uint64_t* keys = InnerKeys(n);
      const uint64_t* children = InnerChildren(n);
      // keys[i] = smallest key in children[i+1]; keys are sorted.
      uint32_t lo = 0, hi = n->committed;
      while (lo < hi) {
        const uint32_t mid = (lo + hi) / 2;
        if (key < keys[mid]) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      if (path != nullptr) path->push_back({off, lo});
      off = children[lo];
      n = NodeAt(off);
    }
    // The leaf's header read is modeled by the caller (TouchLeaf), fused
    // with the adjacent entry-array read into one segmented access.
    return off;
  }

  /// Model the leaf-header + entry-array read that ends every descent.
  /// The header and LeafEntries() are adjacent by layout, so one
  /// segmented touch replays the exact per-line stream of the two
  /// TouchRead calls it replaces (header first, then entries; an empty
  /// leaf models only the header, matching TouchRead's n==0 guard).
  void TouchLeaf(uint64_t leaf_off, const NodeHeader* leaf) const {
    const uint32_t lens[2] = {
        sizeof(NodeHeader),
        leaf->committed * static_cast<uint32_t>(sizeof(Entry))};
    device_->TouchSegments(leaf_off, lens, 2, /*is_write=*/false);
  }

  void SplitAndInsert(uint64_t leaf_off, const std::vector<PathEntry>& path,
                      uint64_t key, uint64_t value) {
    NodeHeader* leaf = NodeAt(leaf_off);
    // Compact: drop tombstones, sort, add the new entry.
    std::vector<Entry> live;
    live.reserve(leaf->committed + 1);
    const Entry* entries = LeafEntries(leaf);
    for (uint32_t i = 0; i < leaf->committed; i++) {
      if (entries[i].value != kTombstone) live.push_back(entries[i]);
    }
    live.push_back({key, value});
    std::sort(live.begin(), live.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });

    std::vector<uint64_t> new_children;
    std::vector<uint64_t> new_keys;
    if (live.size() <= LeafCapacity() / 2) {
      // Tombstone-heavy leaf: compaction alone makes room again.
      new_children.push_back(BuildLeaf(live));
    } else {
      const size_t mid = live.size() / 2;
      std::vector<Entry> left(live.begin(), live.begin() + mid);
      std::vector<Entry> right(live.begin() + mid, live.end());
      new_children.push_back(BuildLeaf(left));
      new_children.push_back(BuildLeaf(right));
      new_keys.push_back(right.front().key);
    }

    // Copy-on-write the path back to the root; publish atomically.
    uint64_t replaced_child = leaf_off;
    std::vector<uint64_t> to_free{leaf_off};
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      const NodeHeader* inner = NodeAt(it->node_off);
      const uint64_t* keys = InnerKeys(inner);
      const uint64_t* children = InnerChildren(inner);
      std::vector<uint64_t> k(keys, keys + inner->committed);
      std::vector<uint64_t> c(children, children + inner->committed + 1);
      assert(c[it->child_idx] == replaced_child);
      c[it->child_idx] = new_children[0];
      if (new_children.size() == 2) {
        c.insert(c.begin() + it->child_idx + 1, new_children[1]);
        k.insert(k.begin() + it->child_idx, new_keys[0]);
      }
      if (k.size() > InnerCapacity()) {
        // Split the inner node too.
        const size_t mid = k.size() / 2;
        std::vector<uint64_t> lk(k.begin(), k.begin() + mid);
        std::vector<uint64_t> lc(c.begin(), c.begin() + mid + 1);
        std::vector<uint64_t> rk(k.begin() + mid + 1, k.end());
        std::vector<uint64_t> rc(c.begin() + mid + 1, c.end());
        new_children = {BuildInner(lk, lc), BuildInner(rk, rc)};
        new_keys = {k[mid]};
      } else {
        new_children = {BuildInner(k, c)};
        new_keys.clear();
      }
      to_free.push_back(it->node_off);
      replaced_child = it->node_off;
      (void)replaced_child;
    }

    uint64_t new_root;
    if (new_children.size() == 2) {
      new_root = BuildInner(new_keys, new_children);
    } else {
      new_root = new_children[0];
    }
    // Single atomic durable write makes the whole structural change
    // visible; a crash before this line leaves the old tree intact.
    device_->AtomicPersistWrite64(
        device_->OffsetOf(&header()->root_off), new_root);
    for (uint64_t off : to_free) allocator_->Free(off);
  }

  void ScanRec(uint64_t off, uint64_t lo, uint64_t hi,
               const std::function<bool(uint64_t, uint64_t)>& fn,
               bool* keep_going) const {
    if (!*keep_going) return;
    const NodeHeader* n = NodeAt(off);
    if (n->is_leaf) {
      device_->TouchRead(n, sizeof(NodeHeader) +
                                n->committed * sizeof(Entry));
      const Entry* entries = LeafEntries(n);
      std::vector<Entry> in_range;
      for (uint32_t i = 0; i < n->committed; i++) {
        if (entries[i].value != kTombstone && entries[i].key >= lo &&
            entries[i].key <= hi) {
          in_range.push_back(entries[i]);
        }
      }
      std::sort(in_range.begin(), in_range.end(),
                [](const Entry& a, const Entry& b) { return a.key < b.key; });
      for (const Entry& e : in_range) {
        if (!fn(e.key, e.value)) {
          *keep_going = false;
          return;
        }
      }
      return;
    }
    device_->TouchRead(n, sizeof(NodeHeader) + n->committed * 16 + 8);
    const uint64_t* keys = InnerKeys(n);
    const uint64_t* children = InnerChildren(n);
    for (uint32_t i = 0; i <= n->committed && *keep_going; i++) {
      const bool lo_ok = (i == n->committed) || lo <= keys[i];
      const bool hi_ok = (i == 0) || keys[i - 1] <= hi;
      if (lo_ok && hi_ok) ScanRec(children[i], lo, hi, fn, keep_going);
    }
  }

  NvBTree() : allocator_(nullptr), device_(nullptr) {}

  void FreeRec(uint64_t off) {
    const NodeHeader* n = NodeAt(off);
    if (!n->is_leaf) {
      const uint64_t* children = InnerChildren(n);
      for (uint32_t i = 0; i <= n->committed; i++) FreeRec(children[i]);
    }
    allocator_->Free(off);
  }

  size_t CountBytesRec(uint64_t off) const {
    const NodeHeader* n = NodeAt(off);
    size_t bytes = NodeBytes(n->is_leaf, n->capacity);
    if (!n->is_leaf) {
      const uint64_t* children = InnerChildren(n);
      for (uint32_t i = 0; i <= n->committed; i++) {
        bytes += CountBytesRec(children[i]);
      }
    }
    return bytes;
  }

  PmemAllocator* allocator_;
  NvmDevice* device_;
  uint64_t header_off_ = 0;
};

}  // namespace nvmdb
