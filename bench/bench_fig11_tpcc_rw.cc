/// Fig. 11 — NVM loads/stores executed while running TPC-C.
///
/// Expected shape (paper): NVM-aware engines perform 31–42% fewer writes;
/// access pattern resembles the YCSB write-heavy mixture; the Log engine
/// writes more here than under YCSB because TPC-C's secondary indexes add
/// maintenance writes.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  printf("TPC-C: %zu warehouses, %llu txns\n", Scale().partitions,
         (unsigned long long)Scale().tpcc_txns);

  std::vector<CounterDelta> deltas;
  for (EngineKind engine : AllEngines()) {
    const BenchRun run = RunTpcc(engine);
    deltas.push_back(run.counters);
    fprintf(stderr, "  done %s\n", EngineKindName(engine));
  }

  PrintHeader("Fig. 11: TPC-C NVM loads & stores (millions)");
  printf("%-10s", "");
  for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
  printf("\n%-10s", "loads");
  for (const CounterDelta& d : deltas) printf("%12.3f", d.loads / 1e6);
  printf("\n%-10s", "stores");
  for (const CounterDelta& d : deltas) printf("%12.3f", d.stores / 1e6);
  printf("\n");

  const double inp = static_cast<double>(deltas[0].stores);
  const double nvm_inp = static_cast<double>(deltas[3].stores);
  printf("\nNVM-InP stores vs InP: %.0f%% fewer\n",
         100.0 * (inp - nvm_inp) / inp);
  printf(
      "Paper shape: NVM-aware engines 31-42%% fewer stores; patterns match\n"
      "the YCSB write-heavy mixture (Section 5.3, Fig. 11).\n");
  return 0;
}
