#pragma once

#include <cstdint>

namespace nvmdb {

/// Key-space packing for the copy-on-write engines, which store the whole
/// database (every table's primary data plus secondary-index entries) in a
/// single shadow-paged B+tree so the master record commits everything
/// atomically (Section 3.2: "each database is stored in a separate file").
///
/// Layout: [ table_id : 6 bits ][ index_id : 2 bits ][ local : 56 bits ]
/// index_id 0 is the primary index. Primary keys must therefore fit 56
/// bits (the workloads use <= 48).
inline uint64_t GlobalKey(uint32_t table_id, uint32_t index_id,
                          uint64_t local) {
  return (static_cast<uint64_t>(table_id & 0x3F) << 58) |
         (static_cast<uint64_t>(index_id & 0x3) << 56) |
         (local & 0x00FFFFFFFFFFFFFFULL);
}

inline uint64_t GlobalKeyLo(uint32_t table_id, uint32_t index_id) {
  return GlobalKey(table_id, index_id, 0);
}
inline uint64_t GlobalKeyHi(uint32_t table_id, uint32_t index_id) {
  return GlobalKey(table_id, index_id, 0x00FFFFFFFFFFFFFFULL);
}
inline uint64_t LocalKey(uint64_t global) {
  return global & 0x00FFFFFFFFFFFFFFULL;
}

/// Secondary-index composite confined to 56 bits for the global key space:
/// 40 bits of key hash + 16 low bits of the primary key as discriminator.
/// Collisions are possible and harmless — lookups verify candidates
/// against the actual column values.
inline uint64_t SecComposite56(uint64_t hash48, uint64_t pk) {
  return ((hash48 >> 8) << 16) | (pk & 0xFFFF);
}
inline uint64_t SecComposite56Lo(uint64_t hash48) {
  return (hash48 >> 8) << 16;
}
inline uint64_t SecComposite56Hi(uint64_t hash48) {
  return ((hash48 >> 8) << 16) | 0xFFFF;
}

}  // namespace nvmdb
