#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/schema.h"

namespace nvmdb {

/// A typed cell value used in the engine API (inserts, updates). String
/// values are non-owning views: the bytes must stay alive for the duration
/// of the engine call that consumes the Value (DESIGN.md §8's Slice
/// lifetime contract). Numeric values carry no string payload at all —
/// a Value is two words plus a flag.
struct Value {
  static Value U64(uint64_t v) {
    Value val;
    val.num = v;
    return val;
  }
  static Value I64(int64_t v) {
    Value val;
    val.num = static_cast<uint64_t>(v);
    return val;
  }
  static Value Dbl(double v) {
    Value val;
    memcpy(&val.num, &v, 8);
    return val;
  }
  static Value Str(const Slice& s) {
    Value val;
    val.is_string = true;
    val.str = s;
    return val;
  }

  uint64_t num = 0;
  Slice str;
  bool is_string = false;
};

/// One column assignment inside an UPDATE.
struct ColumnUpdate {
  size_t column = 0;
  Value value;
};

/// In-flight (volatile, engine-API-level) tuple representation. Engines
/// translate this into their own storage layout.
///
/// Storage is arena-backed: one word per column (the numeric value, or an
/// offset/length handle into a single flat byte arena for varchars), so a
/// Tuple can be Reset() and refilled without heap allocation once its
/// buffers have grown to the working size — the hot paths reuse one
/// scratch Tuple per partition across millions of transactions.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(const Schema* schema) { Reset(schema); }

  /// Rebind to `schema` and clear all columns, keeping buffer capacity.
  void Reset(const Schema* schema) {
    schema_ = schema;
    words_.assign(schema->num_columns(), 0);
    arena_.clear();
  }

  const Schema* schema() const { return schema_; }

  void SetU64(size_t col, uint64_t v) { words_[col] = v; }
  void SetI64(size_t col, int64_t v) {
    words_[col] = static_cast<uint64_t>(v);
  }
  void SetDouble(size_t col, double v) { memcpy(&words_[col], &v, 8); }
  void SetString(size_t col, const Slice& v);
  void Set(size_t col, const Value& v) {
    if (v.is_string) {
      SetString(col, v.str);
    } else {
      words_[col] = v.num;
    }
  }

  /// Reserve `len` arena bytes for column `col` and return the write
  /// cursor. The pointer is invalidated by the next arena append — write
  /// immediately (TableHeap reads device bytes straight into it).
  char* AppendStringUninit(size_t col, size_t len) {
    const size_t off = arena_.size();
    arena_.resize(off + len);
    words_[col] = (static_cast<uint64_t>(off) << 24) |
                  static_cast<uint64_t>(len);
    return &arena_[off];
  }

  uint64_t GetU64(size_t col) const { return words_[col]; }
  int64_t GetI64(size_t col) const {
    return static_cast<int64_t>(words_[col]);
  }
  double GetDouble(size_t col) const {
    double d;
    memcpy(&d, &words_[col], 8);
    return d;
  }
  Slice GetString(size_t col) const {
    const uint64_t handle = words_[col];
    return Slice(arena_.data() + (handle >> 24),
                 static_cast<size_t>(handle & 0xFFFFFF));
  }

  /// Primary key (column 0 by convention).
  uint64_t Key() const { return words_[0]; }

  /// Serialize with every field inlined — the HDD/SSD-optimized format the
  /// CoW/Log engines keep on "durable storage" (Section 3.2). The
  /// appending form is the hot path; the returning form is a convenience
  /// wrapper for cold callers.
  void AppendInlined(std::string* out) const;
  std::string SerializeInlined() const {
    std::string out;
    AppendInlined(&out);
    return out;
  }
  static void ParseInlined(const Schema* schema, const Slice& data,
                           Tuple* out);
  static Tuple ParseInlined(const Schema* schema, const Slice& data) {
    Tuple t;
    ParseInlined(schema, data, &t);
    return t;
  }

  /// Approximate logical size in bytes (fixed part + varlen payloads).
  size_t LogicalSize() const;

  bool EqualTo(const Tuple& other) const;

 private:
  const Schema* schema_ = nullptr;
  // Per-column word: numeric value, or (arena offset << 24 | length) for
  // varchar columns (lengths are < 2^24; arenas stay < 2^40 bytes).
  std::vector<uint64_t> words_;
  std::string arena_;
};

/// 48-bit hash of a tuple's secondary-key columns, used to build the
/// 64-bit composite entries ((hash << 16) | low bits of the primary key)
/// that let a uint64-keyed B+tree serve as a multimap secondary index.
uint64_t SecondaryKeyHash(const Tuple& tuple, const SecondaryIndexDef& def);
uint64_t SecondaryKeyHash(const Schema& schema,
                          const SecondaryIndexDef& def,
                          const std::vector<Value>& key_values);

inline uint64_t SecondaryComposite(uint64_t hash48, uint64_t pk) {
  return (hash48 << 16) | (pk & 0xFFFF);
}
inline uint64_t SecondaryRangeLo(uint64_t hash48) { return hash48 << 16; }
inline uint64_t SecondaryRangeHi(uint64_t hash48) {
  return (hash48 << 16) | 0xFFFF;
}

}  // namespace nvmdb
