# Empty dependencies file for bench_fig09_10_ycsb_rw.
# This may be replaced when dependencies are built.
