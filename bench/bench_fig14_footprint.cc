/// Fig. 14 — Peak NVM storage footprint (table / index / log / checkpoint
/// / other) after running (a) YCSB balanced low-skew and (b) TPC-C.
///
/// All 12 cells (6 engines x 2 workloads) run concurrently on the grid
/// scheduler; both tables print after the barrier.
///
/// Expected shape (paper): CoW largest on YCSB (dirty-directory churn +
/// page cache); InP/Log pay for their logs; NVM-aware engines 17–38%
/// smaller (pointers in WAL instead of images; no duplicated data).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

void AddFootprintMetrics(BenchCell* cell, const FootprintStats& f) {
  cell->metrics.emplace_back("table_bytes",
                             static_cast<double>(f.table_bytes));
  cell->metrics.emplace_back("index_bytes",
                             static_cast<double>(f.index_bytes));
  cell->metrics.emplace_back("log_bytes",
                             static_cast<double>(f.log_bytes));
  cell->metrics.emplace_back("checkpoint_bytes",
                             static_cast<double>(f.checkpoint_bytes));
  cell->metrics.emplace_back("total_bytes",
                             static_cast<double>(f.total()));
}

void PrintFootprintTable(const std::vector<BenchRun>& runs) {
  printf("%-10s %10s %10s %10s %10s %10s %10s\n", "engine", "table",
         "index", "log", "ckpt", "other", "total");
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const FootprintStats& f = runs[e].footprint;
    printf("%-10s %10s %10s %10s %10s %10s %10s\n",
           EngineKindName(AllEngines()[e]),
           FormatBytes(f.table_bytes).c_str(),
           FormatBytes(f.index_bytes).c_str(),
           FormatBytes(f.log_bytes).c_str(),
           FormatBytes(f.checkpoint_bytes).c_str(),
           FormatBytes(f.other_bytes).c_str(),
           FormatBytes(f.total()).c_str());
  }
}

}  // namespace

int main() {
  std::vector<BenchRun> ycsb_runs(AllEngines().size());
  std::vector<BenchRun> tpcc_runs(AllEngines().size());
  BenchRunner runner("fig14_footprint");
  AddScaleContext(&runner);
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const EngineKind engine = AllEngines()[e];
    runner.Submit([&ycsb_runs, e, engine]() {
      // Give InP a checkpoint interval so its checkpoint appears in the
      // footprint, as in the paper.
      EngineConfig ec;
      ec.checkpoint_interval_txns = EnvU64("NVMDB_CKPT_INTERVAL", 1000);
      ycsb_runs[e] =
          RunYcsb(engine, YcsbMixture::kBalanced, YcsbSkew::kLow, ec);
      BenchCell cell = CellFromRun({{"workload", "ycsb"},
                                    {"engine", EngineKindName(engine)}},
                                   ycsb_runs[e], Scale().partitions);
      AddFootprintMetrics(&cell, ycsb_runs[e].footprint);
      return cell;
    });
  }
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const EngineKind engine = AllEngines()[e];
    runner.Submit([&tpcc_runs, e, engine]() {
      tpcc_runs[e] = RunTpcc(engine);
      BenchCell cell = CellFromRun({{"workload", "tpcc"},
                                    {"engine", EngineKindName(engine)}},
                                   tpcc_runs[e], Scale().partitions);
      AddFootprintMetrics(&cell, tpcc_runs[e].footprint);
      return cell;
    });
  }
  runner.Wait();

  PrintHeader("Fig. 14a: storage footprint, YCSB balanced / low skew");
  PrintFootprintTable(ycsb_runs);
  PrintHeader("Fig. 14b: storage footprint, TPC-C");
  PrintFootprintTable(tpcc_runs);
  printf(
      "\nPaper shape: NVM-aware engines 17-38%% smaller footprints;\n"
      "CoW inflated by page copies/cache; logs grow for InP/Log\n"
      "(Section 5.6, Fig. 14).\n");
  return ExitStatus();
}
