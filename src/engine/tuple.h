#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/schema.h"

namespace nvmdb {

/// A typed cell value used in the engine API (inserts, updates).
struct Value {
  static Value U64(uint64_t v) {
    Value val;
    val.num = v;
    return val;
  }
  static Value I64(int64_t v) {
    Value val;
    val.num = static_cast<uint64_t>(v);
    return val;
  }
  static Value Dbl(double v) {
    Value val;
    memcpy(&val.num, &v, 8);
    return val;
  }
  static Value Str(std::string s) {
    Value val;
    val.is_string = true;
    val.str = std::move(s);
    return val;
  }

  uint64_t num = 0;
  std::string str;
  bool is_string = false;
};

/// One column assignment inside an UPDATE.
struct ColumnUpdate {
  size_t column = 0;
  Value value;
};

/// In-flight (volatile, engine-API-level) tuple representation. Engines
/// translate this into their own storage layout.
class Tuple {
 public:
  Tuple() : schema_(nullptr) {}
  explicit Tuple(const Schema* schema)
      : schema_(schema),
        numerics_(schema->num_columns(), 0),
        strings_(schema->num_columns()) {}

  const Schema* schema() const { return schema_; }

  void SetU64(size_t col, uint64_t v) { numerics_[col] = v; }
  void SetI64(size_t col, int64_t v) {
    numerics_[col] = static_cast<uint64_t>(v);
  }
  void SetDouble(size_t col, double v) { memcpy(&numerics_[col], &v, 8); }
  void SetString(size_t col, std::string v) { strings_[col] = std::move(v); }
  void Set(size_t col, const Value& v) {
    if (v.is_string) {
      strings_[col] = v.str;
    } else {
      numerics_[col] = v.num;
    }
  }

  uint64_t GetU64(size_t col) const { return numerics_[col]; }
  int64_t GetI64(size_t col) const {
    return static_cast<int64_t>(numerics_[col]);
  }
  double GetDouble(size_t col) const {
    double d;
    memcpy(&d, &numerics_[col], 8);
    return d;
  }
  const std::string& GetString(size_t col) const { return strings_[col]; }

  /// Primary key (column 0 by convention).
  uint64_t Key() const { return numerics_[0]; }

  /// Serialize with every field inlined — the HDD/SSD-optimized format the
  /// CoW/Log engines keep on "durable storage" (Section 3.2).
  std::string SerializeInlined() const;
  static Tuple ParseInlined(const Schema* schema, const Slice& data);

  /// Approximate logical size in bytes (fixed part + varlen payloads).
  size_t LogicalSize() const;

  bool EqualTo(const Tuple& other) const;

 private:
  const Schema* schema_;
  std::vector<uint64_t> numerics_;
  std::vector<std::string> strings_;
};

/// 48-bit hash of a tuple's secondary-key columns, used to build the
/// 64-bit composite entries ((hash << 16) | low bits of the primary key)
/// that let a uint64-keyed B+tree serve as a multimap secondary index.
uint64_t SecondaryKeyHash(const Tuple& tuple, const SecondaryIndexDef& def);
uint64_t SecondaryKeyHash(const Schema& schema,
                          const SecondaryIndexDef& def,
                          const std::vector<Value>& key_values);

inline uint64_t SecondaryComposite(uint64_t hash48, uint64_t pk) {
  return (hash48 << 16) | (pk & 0xFFFF);
}
inline uint64_t SecondaryRangeLo(uint64_t hash48) { return hash48 << 16; }
inline uint64_t SecondaryRangeHi(uint64_t hash48) {
  return (hash48 << 16) | 0xFFFF;
}

}  // namespace nvmdb
