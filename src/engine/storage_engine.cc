#include "engine/storage_engine.h"

#include "engine/cow_engine.h"
#include "engine/inp_engine.h"
#include "engine/log_engine.h"
#include "engine/nvm_cow_engine.h"
#include "engine/nvm_inp_engine.h"
#include "engine/nvm_log_engine.h"

namespace nvmdb {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kInP:
      return "InP";
    case EngineKind::kCoW:
      return "CoW";
    case EngineKind::kLog:
      return "Log";
    case EngineKind::kNvmInP:
      return "NVM-InP";
    case EngineKind::kNvmCoW:
      return "NVM-CoW";
    case EngineKind::kNvmLog:
      return "NVM-Log";
  }
  return "?";
}

bool EngineKindIsNvmAware(EngineKind kind) {
  return kind == EngineKind::kNvmInP || kind == EngineKind::kNvmCoW ||
         kind == EngineKind::kNvmLog;
}

uint64_t StorageEngine::Begin() {
  active_txn_ = next_txn_id_++;
  return active_txn_;
}

std::unique_ptr<StorageEngine> CreateEngine(EngineKind kind,
                                            const EngineConfig& config) {
  switch (kind) {
    case EngineKind::kInP:
      return std::make_unique<InPEngine>(config);
    case EngineKind::kCoW:
      return std::make_unique<CowEngine>(config);
    case EngineKind::kLog:
      return std::make_unique<LogEngine>(config);
    case EngineKind::kNvmInP:
      return std::make_unique<NvmInPEngine>(config);
    case EngineKind::kNvmCoW:
      return std::make_unique<NvmCowEngine>(config);
    case EngineKind::kNvmLog:
      return std::make_unique<NvmLogEngine>(config);
  }
  return nullptr;
}

}  // namespace nvmdb
