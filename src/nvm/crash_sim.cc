#include "nvm/crash_sim.h"

#include <algorithm>
#include <cstring>

#include "common/trace.h"
#include "nvm/nvm_device.h"

namespace nvmdb {

void CrashSim::Arm(uint64_t target_event, bool tear_final_persist,
                   uint64_t tear_seed) {
  std::lock_guard<std::mutex> guard(mu_);
  target_ = target_event;
  tear_ = tear_final_persist;
  rng_state_ = tear_seed * 0x9E3779B97F4A7C15ull + 1;
  captured_ = false;
  captured_event_ = 0;
  image_.clear();
}

void CrashSim::Disarm() {
  std::lock_guard<std::mutex> guard(mu_);
  target_ = 0;
}

uint64_t CrashSim::event_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return events_;
}

bool CrashSim::captured() const {
  std::lock_guard<std::mutex> guard(mu_);
  return captured_;
}

uint64_t CrashSim::captured_event() const {
  std::lock_guard<std::mutex> guard(mu_);
  return captured_event_;
}

bool CrashSim::Coin() {
  // xorshift64*: deterministic per-line tearing from the armed seed.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return (rng_state_ * 0x2545F4914F6CDD1Dull) >> 63;
}

void CrashSim::OnPersist(NvmDevice* device, uint64_t offset, size_t n) {
  Event(device, offset, n, /*atomic=*/false, 0);
}

void CrashSim::OnAtomicPersist(NvmDevice* device, uint64_t offset,
                               uint64_t value) {
  Event(device, offset, 8, /*atomic=*/true, value);
}

void CrashSim::OnBarrier(NvmDevice* device) {
  Event(device, 0, 0, /*atomic=*/false, 0);
}

void CrashSim::Event(NvmDevice* device, uint64_t offset, size_t n,
                     bool atomic, uint64_t value) {
  std::lock_guard<std::mutex> guard(mu_);
  events_++;
  if (target_ != 0 && !captured_ && events_ == target_) {
    Capture(device, offset, n, atomic, value);
  }
}

void CrashSim::Capture(NvmDevice* device, uint64_t offset, size_t n,
                       bool atomic, uint64_t value) {
  // The durable image as of "just before this event retires": prior
  // persists plus natural dirty-line evictions, never cached-only data.
  const uint8_t* durable = device->durable_image();
  image_.assign(durable, durable + device->capacity());
  if (tear_ && n > 0) {
    if (atomic) {
      // An aligned 8-byte atomic persist lands whole or not at all.
      if (Coin()) memcpy(image_.data() + offset, &value, 8);
    } else {
      // Tear the in-flight persist: each covered line independently
      // reaches NVM or dies in the cache, modeling reordered partial
      // line flushes within one sync primitive.
      const uint64_t ls = device->cache_line_size();
      const uint64_t first = offset / ls * ls;
      const uint64_t end =
          std::min<uint64_t>(device->capacity(),
                             (offset + n + ls - 1) / ls * ls);
      for (uint64_t a = first; a < end; a += ls) {
        if (Coin()) {
          const size_t len =
              static_cast<size_t>(std::min<uint64_t>(ls, end - a));
          memcpy(image_.data() + a, device->working_image() + a, len);
        }
      }
    }
  }
  captured_ = true;
  captured_event_ = events_;
  if (TraceWriter* trace = NvmEnv::Trace()) {
    trace->Instant("crash_capture", "crash", device->TotalStallNanos(), 0);
  }
  if (on_capture_) on_capture_();
}

}  // namespace nvmdb
