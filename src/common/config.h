#pragma once

#include <cstdint>
#include <string>

namespace nvmdb {

/// Read scale/tuning parameters from the environment so the benchmark
/// suite can be dialed up to paper scale (`NVMDB_SCALE=...`) or down for
/// CI without recompiling.
uint64_t EnvU64(const char* name, uint64_t default_value);
double EnvDouble(const char* name, double default_value);
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace nvmdb
