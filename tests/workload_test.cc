#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace {

class YcsbWorkloadTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(YcsbWorkloadTest, LoadAndRunBalancedMixture) {
  DatabaseConfig cfg;
  cfg.num_partitions = 2;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = GetParam();
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = 400;
  ycfg.num_txns = 400;
  ycfg.num_partitions = 2;
  ycfg.mixture = YcsbMixture::kBalanced;
  YcsbWorkload workload(ycfg);
  ASSERT_TRUE(workload.Load(&db).ok());

  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());
  EXPECT_EQ(result.committed, 400u);
  EXPECT_EQ(result.aborted, 0u);

  // All tuples still present and 1 KB-ish.
  StorageEngine* engine = db.partition(0);
  const uint64_t txn = engine->Begin();
  Tuple out;
  ASSERT_TRUE(
      engine->Select(txn, YcsbWorkload::kTableId, 0, &out).ok());
  EXPECT_GE(out.LogicalSize(), 1000u);
  engine->Commit(txn);
}

INSTANTIATE_TEST_SUITE_P(Engines, YcsbWorkloadTest,
                         ::testing::ValuesIn(testutil::kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(YcsbWorkloadTest2, FixedWorkloadIsIdenticalAcrossInstances) {
  YcsbConfig cfg;
  cfg.num_tuples = 100;
  cfg.num_txns = 100;
  cfg.num_partitions = 1;
  YcsbWorkload a(cfg), b(cfg);
  const auto qa = a.GenerateQueues();
  const auto qb = b.GenerateQueues();
  ASSERT_EQ(qa[0].size(), qb[0].size());
  // Same seeds -> same generator state; spot-check by running both against
  // twin databases and comparing results.
  auto db1 = testutil::MakeDb(EngineKind::kNvmInP);
  auto db2 = testutil::MakeDb(EngineKind::kNvmInP);
  YcsbWorkload(cfg).Load(db1.get());
  YcsbWorkload(cfg).Load(db2.get());
  Coordinator(db1.get()).RunSerial(0, qa[0]);
  Coordinator(db2.get()).RunSerial(0, qb[0]);
  StorageEngine* e1 = db1->partition(0);
  StorageEngine* e2 = db2->partition(0);
  const uint64_t t1 = e1->Begin(), t2 = e2->Begin();
  for (uint64_t key = 0; key < 100; key++) {
    Tuple a_out, b_out;
    ASSERT_TRUE(e1->Select(t1, YcsbWorkload::kTableId, key, &a_out).ok());
    ASSERT_TRUE(e2->Select(t2, YcsbWorkload::kTableId, key, &b_out).ok());
    EXPECT_TRUE(a_out.EqualTo(b_out)) << key;
  }
  e1->Commit(t1);
  e2->Commit(t2);
}

class TpccWorkloadTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  TpccConfig SmallConfig() {
    TpccConfig cfg;
    cfg.num_warehouses = 1;
    cfg.num_txns = 200;
    cfg.customers_per_district = 30;
    cfg.items = 100;
    cfg.initial_orders_per_district = 30;
    cfg.districts_per_warehouse = 4;
    return cfg;
  }
};

TEST_P(TpccWorkloadTest, LoadPopulatesAllTables) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = GetParam();
  Database db(cfg);
  TpccWorkload workload(SmallConfig());
  ASSERT_TRUE(workload.Load(&db).ok());

  StorageEngine* engine = db.partition(0);
  const uint64_t txn = engine->Begin();
  Tuple out;
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kWarehouse,
                             TpccWorkload::WKey(1), &out)
                  .ok());
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kDistrict,
                             TpccWorkload::DKey(1, 1), &out)
                  .ok());
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kCustomer,
                             TpccWorkload::CKey(1, 1, 1), &out)
                  .ok());
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kItem,
                             TpccWorkload::IKey(1), &out)
                  .ok());
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kStock,
                             TpccWorkload::SKey(1, 1), &out)
                  .ok());
  EXPECT_TRUE(engine->Select(txn, TpccWorkload::kOrders,
                             TpccWorkload::OKey(1, 1, 1), &out)
                  .ok());
  engine->Commit(txn);
}

TEST_P(TpccWorkloadTest, RunsFullMixWithConsistency) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = GetParam();
  Database db(cfg);
  const TpccConfig tcfg = SmallConfig();
  TpccWorkload workload(tcfg);
  ASSERT_TRUE(workload.Load(&db).ok());

  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());
  // Nearly everything commits; ~1% of NewOrders roll back by design.
  EXPECT_GT(result.committed, 180u);
  EXPECT_LT(result.aborted, 20u);

  // Consistency: for every district, d_next_o_id - 1 == max(o_id).
  StorageEngine* engine = db.partition(0);
  const uint64_t txn = engine->Begin();
  for (uint64_t d = 1; d <= tcfg.districts_per_warehouse; d++) {
    Tuple district;
    ASSERT_TRUE(engine->Select(txn, TpccWorkload::kDistrict,
                               TpccWorkload::DKey(1, d), &district)
                    .ok());
    const uint64_t next_o = district.GetU64(11);
    uint64_t max_o = 0;
    engine->ScanRange(txn, TpccWorkload::kOrders,
                      TpccWorkload::OKey(1, d, 0),
                      TpccWorkload::OKey(1, d, 0xFFFFFF),
                      [&max_o](uint64_t, const Tuple& t) {
                        max_o = std::max(max_o, t.GetU64(3));
                        return true;
                      });
    EXPECT_EQ(next_o, max_o + 1) << "district " << d;

    // Every order has its order lines.
    engine->ScanRange(
        txn, TpccWorkload::kOrders, TpccWorkload::OKey(1, d, 0),
        TpccWorkload::OKey(1, d, 0xFFFFFF),
        [&](uint64_t, const Tuple& order) {
          const uint64_t o_id = order.GetU64(3);
          const uint64_t ol_cnt = order.GetU64(7);
          uint64_t lines = 0;
          engine->ScanRange(txn, TpccWorkload::kOrderLine,
                            TpccWorkload::OLKey(1, d, o_id, 0),
                            TpccWorkload::OLKey(1, d, o_id, 15),
                            [&lines](uint64_t, const Tuple&) {
                              lines++;
                              return true;
                            });
          EXPECT_EQ(lines, ol_cnt) << "order " << o_id;
          return true;
        });
  }
  engine->Commit(txn);
}

TEST_P(TpccWorkloadTest, CustomerByLastNameLookupWorks) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = GetParam();
  Database db(cfg);
  TpccWorkload workload(SmallConfig());
  ASSERT_TRUE(workload.Load(&db).ok());

  StorageEngine* engine = db.partition(0);
  const uint64_t txn = engine->Begin();
  // Customer 1 in district 1 has the deterministic last name of index 0.
  const std::string last = TpccWorkload::LastName(0);
  std::vector<Tuple> matches;
  ASSERT_TRUE(engine
                  ->SelectSecondary(
                      txn, TpccWorkload::kCustomer,
                      TpccWorkload::kCustomerByName,
                      {Value::U64(1), Value::U64(1), Value::Str(last)},
                      &matches)
                  .ok());
  engine->Commit(txn);
  ASSERT_GE(matches.size(), 1u);
  for (const Tuple& t : matches) {
    EXPECT_EQ(t.GetString(6), last);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, TpccWorkloadTest,
                         ::testing::Values(EngineKind::kInP,
                                           EngineKind::kCoW,
                                           EngineKind::kNvmInP,
                                           EngineKind::kNvmLog),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TpccHelperTest, LastNameSyllables) {
  EXPECT_EQ(TpccWorkload::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccWorkload::LastName(999), "EINGEINGEING");
  EXPECT_EQ(TpccWorkload::LastName(123), "OUGHTABLEPRI");
}

TEST(TpccHelperTest, KeyPackingFitsGlobalKeySpace) {
  // Largest realistic keys must stay below 2^56 (CoW global key space).
  EXPECT_LT(TpccWorkload::OLKey(255, 10, 0xFFFFFF, 15), 1ull << 56);
  EXPECT_LT(TpccWorkload::CKey(255, 10, 65535), 1ull << 56);
  EXPECT_LT(TpccWorkload::SKey(255, 1 << 20), 1ull << 56);
  // Distinct coordinates -> distinct keys.
  std::set<uint64_t> keys;
  for (uint64_t d = 1; d <= 10; d++) {
    for (uint64_t o = 1; o <= 50; o++) {
      for (uint64_t l = 1; l <= 15; l++) {
        EXPECT_TRUE(keys.insert(TpccWorkload::OLKey(3, d, o, l)).second);
      }
    }
  }
}

}  // namespace
}  // namespace nvmdb
