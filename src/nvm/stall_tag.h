#pragma once

#include <cstddef>
#include <cstdint>

namespace nvmdb {

/// Per-component attribution tag for simulated stall time. Every
/// nanosecond the device charges (cache hits/misses, write-backs, sync
/// primitives, VFS crossings) is attributed to the tag current on the
/// charging thread, so "where does the time go" — the question behind the
/// paper's Fig. 13 breakdown — is answered per component rather than via
/// the old 4-slot per-engine EngineTimeBreakdown. Components self-tag
/// (the WAL tags its own appends/flushes, the allocator its alloc/free,
/// the checkpointer its writes); engines tag the remaining index and
/// tuple paths. The innermost scope wins, so a checkpoint that flushes
/// the WAL attributes the flush to the WAL — no double counting.
enum class StallTag : uint8_t {
  kWal = 0,        // WAL append, group-commit force, NVM WAL push/clear
  kIndex,          // index access and maintenance
  kTuple,          // tuple/heap/memtable/page storage management
  kAllocator,      // persistent allocator alloc/free
  kCheckpoint,     // checkpoint writes, memtable/batch flushes
  kRecovery,       // restart recovery protocols
  kOther,          // untagged engine logic, compaction bookkeeping
  kCount,
};

inline constexpr size_t kStallTagCount =
    static_cast<size_t>(StallTag::kCount);

inline const char* StallTagName(StallTag tag) {
  switch (tag) {
    case StallTag::kWal: return "wal";
    case StallTag::kIndex: return "index";
    case StallTag::kTuple: return "tuple";
    case StallTag::kAllocator: return "allocator";
    case StallTag::kCheckpoint: return "checkpoint";
    case StallTag::kRecovery: return "recovery";
    case StallTag::kOther: return "other";
    case StallTag::kCount: break;
  }
  return "?";
}

/// Per-tag stall totals (the Fig.-13-style breakdown, now 7-way).
struct StallBreakdown {
  uint64_t ns[kStallTagCount] = {};
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t v : ns) sum += v;
    return sum;
  }
};

namespace internal {
/// The charging thread's current tag. Thread-local (like NvmEnv's current
/// device) so concurrent benchmark cells on pool threads never see each
/// other's tags; inline so NvmDevice::ChargeStall can read it without an
/// out-of-line call on the owner-mode hot path.
inline thread_local StallTag t_stall_tag = StallTag::kOther;
}  // namespace internal

inline StallTag CurrentStallTag() { return internal::t_stall_tag; }

/// RAII tag scope. Nesting restores the previous tag, so the innermost
/// component owns the time charged while it runs.
class ScopedStallTag {
 public:
  explicit ScopedStallTag(StallTag tag) : prev_(internal::t_stall_tag) {
    internal::t_stall_tag = tag;
  }
  ~ScopedStallTag() { internal::t_stall_tag = prev_; }

  ScopedStallTag(const ScopedStallTag&) = delete;
  ScopedStallTag& operator=(const ScopedStallTag&) = delete;

 private:
  StallTag prev_;
};

}  // namespace nvmdb
