#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "testbed/database.h"

namespace nvmdb {

struct TxnTask;
struct TxnQueue;

/// Per-partition scratch handed to every transaction body. Buffers grow to
/// the workload's working size and are reused across millions of
/// transactions, so steady-state bodies run without heap allocation.
struct TxnScratch {
  Tuple tuple;
  Tuple tuple2;
  std::vector<ColumnUpdate> updates;
  std::vector<Value> values;
  std::vector<Tuple> tuples;
  std::vector<uint64_t> u64s;
  std::string str;
};

/// A transaction body: runs the transaction's queries against the
/// partition's engine and returns true to commit, false to abort
/// (Section 3: single-partition transactions executed serially per
/// partition). Plain function pointer — parameters live in the TxnTask and
/// the queue's payload pools, so pre-generating millions of transactions
/// costs no per-transaction heap allocation.
using TxnFn = bool (*)(const TxnTask& task, const TxnQueue& queue,
                       StorageEngine* engine, uint64_t txn_id,
                       TxnScratch* scratch);

/// One pre-generated transaction bound to a partition: a POD parameter
/// block interpreted by `fn`. Field meaning is up to the generator; by
/// convention `off`/`len` reference the queue's byte pool and
/// `woff`/`wcnt` its word pool. When `fn` is null the task dispatches to
/// `queue.closures[off]` — the escape hatch for ad-hoc bodies (tests,
/// recovery drills) where per-task std::function cost is irrelevant.
struct TxnTask {
  TxnFn fn = nullptr;
  uint64_t key = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t col = 0;
  uint32_t flags = 0;
  uint32_t off = 0;
  uint32_t len = 0;
  uint32_t woff = 0;
  uint32_t wcnt = 0;
  double amount = 0.0;
};

/// A partition's pre-generated transaction queue: POD tasks plus the
/// pooled variable-length payloads they reference. Two pools (bytes,
/// words) replace per-task strings/vectors; `ctx` carries optional
/// workload-owned context (e.g. the TPC-C schema set) shared by every
/// task in the queue.
struct TxnQueue {
  std::vector<TxnTask> tasks;
  std::string bytes;            // pooled string payloads (off/len)
  std::vector<uint64_t> words;  // pooled u64 payloads (woff/wcnt)
  std::shared_ptr<const void> ctx;
  // Escape hatch: ad-hoc closure bodies, dispatched when task.fn == null.
  std::vector<std::function<bool(StorageEngine*, uint64_t)>> closures;

  size_t size() const { return tasks.size(); }
  bool empty() const { return tasks.empty(); }
  void reserve(size_t n) { tasks.reserve(n); }

  /// Append an ad-hoc closure transaction (escape hatch).
  void PushBody(std::function<bool(StorageEngine*, uint64_t)> body) {
    TxnTask task;
    task.off = static_cast<uint32_t>(closures.size());
    closures.push_back(std::move(body));
    tasks.push_back(task);
  }

  Slice StrAt(uint32_t off, uint32_t len) const {
    return Slice(bytes.data() + off, len);
  }
  const uint64_t* WordsAt(uint32_t woff) const {
    return words.data() + woff;
  }
};

/// Result of a benchmark run.
struct RunResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t wall_ns = 0;
  uint64_t stall_ns = 0;  // simulated NVM stall across all workers
  /// Response latency: Begin() until the commit became *durable* — for
  /// group-committing engines that includes waiting for the group to be
  /// forced, the cost the paper attributes to traditional logging
  /// (Sections 3.1/4.1). Tracked on per-partition simulated clocks (each
  /// partition models one worker core, so another partition's slices
  /// don't inflate its response times) and merged across partitions, so
  /// Run — not just RunSerial — reports tail latency.
  LatencySummary latency;
  /// The full histogram behind `latency`, for merging across runs and for
  /// the determinism tests' bucket-exact comparisons.
  LatencyHistogram latency_hist;

  /// Effective elapsed time on the *simulated* clock: total modeled time
  /// (cache hits/misses, write-backs, syncs, VFS crossings) averaged over
  /// the workers. Wall-clock time is recorded for reference but excluded —
  /// it measures the simulator, not the modeled system.
  double EffectiveSeconds(size_t workers) const {
    const double stall_per_worker =
        workers == 0 ? 0.0
                     : static_cast<double>(stall_ns) /
                           static_cast<double>(workers);
    return stall_per_worker * 1e-9;
  }
  double Throughput(size_t workers) const {
    const double secs = EffectiveSeconds(workers);
    return secs <= 0 ? 0 : static_cast<double>(committed) / secs;
  }

  /// Simulated nanoseconds produced per wall-clock nanosecond spent
  /// computing them — the simulator's real-time speed factor. Higher is a
  /// faster simulator; the modeled results are unaffected.
  double SimWallRatio() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(stall_ns) /
                              static_cast<double>(wall_ns);
  }
};

/// Executes per-partition transaction queues (the paper maps each worker
/// thread to a core and executes serially within a partition using
/// timestamp ordering; issuing Begin() in queue order realizes exactly
/// that order). The schedule is a deterministic round-robin over the
/// partitions on the calling thread, so the simulated cache/clock model
/// produces bit-identical counters on every run — benchmark parallelism
/// comes from running independent cells concurrently (bench_runner.h),
/// not from threads inside one database.
class Coordinator {
 public:
  explicit Coordinator(Database* db) : db_(db) {}

  /// Run the queues (queues.size() must equal the partition count),
  /// interleaving one transaction per partition per round.
  RunResult Run(const std::vector<TxnQueue>& queues);

  /// Convenience: run a single partition's queue inline (no threads).
  RunResult RunSerial(size_t partition, const TxnQueue& queue);

 private:
  /// Shared body: queues[p] runs on partition p; null entries idle.
  RunResult Execute(const std::vector<const TxnQueue*>& queues);

  Database* db_;
};

}  // namespace nvmdb
