#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "nvm/cache_sim.h"
#include "nvm/nvm_device.h"
#include "nvm/sync.h"

namespace nvmdb {
namespace {

/// Event counters wired into CacheCallbacks' raw-pointer interface.
struct EventCounts {
  std::atomic<uint64_t> write_backs{0};
  std::atomic<uint64_t> fills{0};

  CacheCallbacks AsCallbacks() {
    CacheCallbacks callbacks;
    callbacks.ctx = this;
    callbacks.write_back = [](void* ctx, uint64_t, size_t) {
      static_cast<EventCounts*>(ctx)->write_backs.fetch_add(
          1, std::memory_order_relaxed);
    };
    callbacks.fill = [](void* ctx, uint64_t, size_t) {
      static_cast<EventCounts*>(ctx)->fills.fetch_add(
          1, std::memory_order_relaxed);
    };
    return callbacks;
  }
};

// --- CacheSim ---------------------------------------------------------------

TEST(CacheSimTest, HitAfterMiss) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  EXPECT_EQ(cache.Access(0, 64, false), 1u);  // miss
  EXPECT_EQ(cache.Access(0, 64, false), 0u);  // hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheSimTest, MultiLineAccess) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4096;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  // 200 bytes spanning 4 lines (unaligned start).
  EXPECT_EQ(cache.Access(30, 200, false), 4u);
}

TEST(CacheSimTest, DirtyEvictionTriggersWriteBack) {
  CacheConfig cfg;
  cfg.capacity_bytes = 256;  // 4 lines total
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  // Dirty many distinct lines; capacity forces evictions of dirty lines.
  for (uint64_t i = 0; i < 64; i++) cache.Access(i * 64, 8, true);
  EXPECT_GT(events.write_backs.load(), 32u);
}

TEST(CacheSimTest, FlushWritesBackAndInvalidates) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  cache.Access(128, 8, true);
  EXPECT_EQ(cache.FlushRange(128, 8, /*invalidate=*/true), 1u);
  EXPECT_EQ(events.write_backs.load(), 1u);
  // Invalidated: next access misses again.
  const uint64_t fills_before = events.fills.load();
  cache.Access(128, 8, false);
  EXPECT_EQ(events.fills.load(), fills_before + 1);
}

TEST(CacheSimTest, ClwbKeepsLineResident) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  cache.Access(128, 8, true);
  cache.FlushRange(128, 8, /*invalidate=*/false);  // CLWB semantics
  EXPECT_EQ(cache.Access(128, 8, false), 0u);      // still cached
}

TEST(CacheSimTest, FlushCleanLineIsNoop) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  CacheSim cache(cfg, {});
  cache.Access(0, 8, false);
  EXPECT_EQ(cache.FlushRange(0, 8, true), 0u);
}

TEST(CacheSimTest, DropDirtyDiscardsWithoutWriteBack) {
  CacheConfig cfg;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  cache.Access(0, 64, true);
  cache.DropDirty();
  EXPECT_EQ(events.write_backs.load(), 0u);
  EXPECT_EQ(cache.FlushRange(0, 64, true), 0u);  // nothing cached anymore
}

TEST(CacheSimTest, AccessExReportsWriteBacks) {
  CacheConfig cfg;
  cfg.capacity_bytes = 256;  // 4 lines total
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 1;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());
  CacheAccessResult total;
  for (uint64_t i = 0; i < 64; i++) {
    const CacheAccessResult r = cache.AccessEx(i * 64, 8, true);
    total.missed += r.missed;
    total.write_backs += r.write_backs;
  }
  // Every write-back surfaced by a callback was also reported to the
  // caller of AccessEx (this is what lets the device charge bandwidth
  // with one atomic add per access instead of one per line).
  EXPECT_EQ(events.write_backs.load(), total.write_backs);
  EXPECT_EQ(cache.write_backs(), total.write_backs);
  EXPECT_EQ(cache.misses(), total.missed);
}

// Satellite: the seed's counters were documented as "approximate under
// concurrency"; the per-bank rework makes them exact. Every access
// touches exactly one line here, so after the threads quiesce the
// identity hits + misses == total accesses must hold with no slack.
TEST(CacheSimTest, CountersExactUnderConcurrency) {
  CacheConfig cfg;
  cfg.capacity_bytes = 64 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 8;
  EventCounts events;
  CacheSim cache(cfg, events.AsCallbacks());

  constexpr int kThreads = 8;
  constexpr uint64_t kAccessesPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, t]() {
      uint64_t x = 0x9e3779b9u + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kAccessesPerThread; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t addr = (x % (1u << 20)) & ~uint64_t{63};
        cache.Access(addr, 8, (x & 1) != 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kAccessesPerThread);
  EXPECT_EQ(cache.write_backs(), events.write_backs.load());
  EXPECT_EQ(cache.misses(), events.fills.load());
}

// --- NvmDevice ---------------------------------------------------------------

class NvmDeviceTest : public ::testing::Test {
 protected:
  NvmDeviceTest() : device_(1 << 20, NvmLatencyConfig::LowNvm()) {}
  NvmDevice device_;
};

TEST_F(NvmDeviceTest, WriteReadRoundTrip) {
  const char data[] = "hello nvm";
  device_.Write(100, data, sizeof(data));
  char out[sizeof(data)];
  device_.Read(100, out, sizeof(data));
  EXPECT_STREQ(out, "hello nvm");
}

TEST_F(NvmDeviceTest, UnpersistedWritesAreLostOnCrash) {
  const char data[] = "volatile!";
  device_.Write(4096, data, sizeof(data));
  device_.Crash();
  char out[sizeof(data)] = {};
  device_.Read(4096, out, sizeof(data));
  EXPECT_EQ(out[0], '\0');
}

TEST_F(NvmDeviceTest, PersistedWritesSurviveCrash) {
  const char data[] = "durable";
  device_.Write(4096, data, sizeof(data));
  device_.Persist(4096, sizeof(data));
  device_.Crash();
  char out[sizeof(data)] = {};
  device_.Read(4096, out, sizeof(data));
  EXPECT_STREQ(out, "durable");
}

TEST_F(NvmDeviceTest, EvictedDirtyLinesSurviveCrash) {
  // Fill far more lines than the cache holds; early lines get evicted
  // (written back) and must survive even without explicit Persist.
  CacheConfig small_cache;
  small_cache.capacity_bytes = 8 * 1024;
  small_cache.num_banks = 1;
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram(), small_cache);
  for (uint64_t i = 0; i < 1024; i++) {
    const uint64_t v = i * 3 + 1;
    device.Write(i * 64, &v, 8);
  }
  device.Crash();
  size_t survived = 0;
  for (uint64_t i = 0; i < 1024; i++) {
    uint64_t v = 0;
    device.Read(i * 64, &v, 8);
    if (v == i * 3 + 1) survived++;
  }
  // Most lines were evicted and written back; only the last ~128 lines
  // (cache capacity) could be lost.
  EXPECT_GT(survived, 800u);
  EXPECT_LT(survived, 1024u);
}

TEST_F(NvmDeviceTest, AtomicPersistWrite64) {
  device_.AtomicPersistWrite64(512, 0xDEADBEEFCAFEF00DULL);
  device_.Crash();
  uint64_t v = 0;
  device_.Read(512, &v, 8);
  EXPECT_EQ(v, 0xDEADBEEFCAFEF00DULL);
}

TEST_F(NvmDeviceTest, FlushAllMakesEverythingDurable) {
  for (uint64_t i = 0; i < 100; i++) device_.Write(i * 128, &i, 8);
  device_.FlushAll();
  device_.Crash();
  for (uint64_t i = 0; i < 100; i++) {
    uint64_t v = ~0ull;
    device_.Read(i * 128, &v, 8);
    EXPECT_EQ(v, i);
  }
}

TEST_F(NvmDeviceTest, CountersTrackLoadsAndStores) {
  const NvmCounters before = device_.counters();
  char buf[256];
  device_.Read(0, buf, 256);  // 4 line fills
  const NvmCounters after = device_.counters();
  EXPECT_GE(after.loads - before.loads, 4u);
}

TEST_F(NvmDeviceTest, MissesCostMoreThanHits) {
  char buf[64];
  device_.Read(8192, buf, 64);  // miss: full NVM read latency
  const uint64_t after_miss = device_.TotalStallNanos();
  EXPECT_GE(after_miss, device_.latency_config().read_latency_ns);
  device_.Read(8192, buf, 64);  // hit: only the cache-hit cost
  const uint64_t hit_cost = device_.TotalStallNanos() - after_miss;
  EXPECT_EQ(hit_cost, device_.latency_config().cache_hit_ns);
}

TEST_F(NvmDeviceTest, DramProfileChargesBaselineLatency) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  char buf[64];
  device.Read(0, buf, 64);
  EXPECT_EQ(device.TotalStallNanos(),
            NvmLatencyConfig::Dram().read_latency_ns);
}

TEST_F(NvmDeviceTest, HighLatencyChargesMoreThanLow) {
  NvmDevice low(1 << 20, NvmLatencyConfig::LowNvm());
  NvmDevice high(1 << 20, NvmLatencyConfig::HighNvm());
  char buf[4096];
  low.Read(0, buf, 4096);
  high.Read(0, buf, 4096);
  EXPECT_GT(high.TotalStallNanos(), low.TotalStallNanos() * 3);
}

TEST_F(NvmDeviceTest, SyncLatencySweepAffectsStall) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  uint64_t costs[2];
  int idx = 0;
  for (uint64_t lat : {10ull, 10000ull}) {
    ScopedSyncLatency sweep(&device, lat);
    const uint64_t before = device.TotalStallNanos();
    for (int i = 0; i < 100; i++) {
      uint64_t v = i;
      device.Write(i * 64, &v, 8);
      device.Persist(i * 64, 8);
    }
    costs[idx++] = device.TotalStallNanos() - before;
  }
  EXPECT_GT(costs[1], costs[0] * 50);
}

TEST_F(NvmDeviceTest, OffsetPointerRoundTrip) {
  void* p = device_.PtrAt(12345);
  EXPECT_EQ(device_.OffsetOf(p), 12345u);
  EXPECT_TRUE(device_.Contains(p));
}

TEST(NvmPtrTest, ResolvesAgainstCurrentDevice) {
  NvmDevice device(1 << 16);
  NvmEnv::Set(&device);
  uint64_t* raw = reinterpret_cast<uint64_t*>(device.PtrAt(256));
  *raw = 77;
  NvmPtr<uint64_t> ptr = NvmPtr<uint64_t>::FromRaw(raw);
  EXPECT_FALSE(ptr.IsNull());
  EXPECT_EQ(*ptr, 77u);
  EXPECT_EQ(ptr.offset(), 256u);
  NvmPtr<uint64_t> null;
  EXPECT_TRUE(null.IsNull());
  EXPECT_EQ(null.get(), nullptr);
  NvmEnv::Set(nullptr);
}

}  // namespace
}  // namespace nvmdb
