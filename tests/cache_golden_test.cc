/// Golden-model test for the CacheSim fast path: the seed's straightforward
/// vector-of-banks/sets/lines implementation is kept here as a reference,
/// and a randomized access/flush/crash trace is driven through both models
/// in lockstep. Hit/miss/write-back *sequences* (not just totals) must be
/// identical — the fast path is an optimization, never a model change.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "nvm/cache_sim.h"

namespace nvmdb {
namespace {

/// One observable cache event, in emission order.
struct Event {
  enum Kind : uint8_t { kWriteBack, kFill };
  Kind kind;
  uint64_t line_addr;

  bool operator==(const Event& o) const {
    return kind == o.kind && line_addr == o.line_addr;
  }
};

/// Reference model: a line-for-line keep of the seed implementation
/// (pointer-chasing layout, div/mod Locate, per-line eviction scan). Only
/// the callback plumbing differs: events append to a vector.
class ReferenceCache {
 public:
  ReferenceCache(const CacheConfig& config, std::vector<Event>* events)
      : config_(config), events_(events) {
    size_t num_lines = std::max<size_t>(
        config_.associativity, config_.capacity_bytes / config_.line_size);
    size_t num_sets =
        std::max<size_t>(1, num_lines / config_.associativity);
    size_t num_banks =
        std::max<size_t>(1, std::min(config_.num_banks, num_sets));
    sets_per_bank_ = num_sets / num_banks;
    if (sets_per_bank_ == 0) sets_per_bank_ = 1;
    banks_.resize(num_banks);
    for (auto& bank : banks_) {
      bank.sets.resize(sets_per_bank_);
      for (auto& set : bank.sets) set.ways.resize(config_.associativity);
    }
  }

  size_t Access(uint64_t addr, size_t size, bool is_write) {
    if (size == 0) return 0;
    const size_t ls = config_.line_size;
    const uint64_t first = addr / ls * ls;
    const uint64_t last = (addr + size - 1) / ls * ls;
    size_t missed = 0;
    for (uint64_t line = first; line <= last; line += ls) {
      size_t bank_idx, set_idx;
      Locate(line, &bank_idx, &set_idx);
      Bank& bank = banks_[bank_idx];
      Set& set = bank.sets[set_idx];
      const uint64_t tag = line;

      Line* hit = nullptr;
      Line* victim = &set.ways[0];
      for (auto& way : set.ways) {
        if (way.tag == tag) {
          hit = &way;
          break;
        }
        if (way.tag == kInvalidTag) {
          victim = &way;
        } else if (victim->tag != kInvalidTag &&
                   way.lru_stamp < victim->lru_stamp) {
          victim = &way;
        }
      }

      if (hit != nullptr) {
        hit->lru_stamp = ++bank.lru_clock;
        if (is_write) hit->dirty = true;
        hits++;
        continue;
      }

      missed++;
      misses++;
      if (victim->tag != kInvalidTag && victim->dirty) {
        write_backs++;
        events_->push_back({Event::kWriteBack, victim->tag});
      }
      events_->push_back({Event::kFill, line});
      victim->tag = tag;
      victim->dirty = is_write;
      victim->lru_stamp = ++bank.lru_clock;
    }
    return missed;
  }

  size_t FlushRange(uint64_t addr, size_t size, bool invalidate) {
    if (size == 0) return 0;
    const size_t ls = config_.line_size;
    const uint64_t first = addr / ls * ls;
    const uint64_t last = (addr + size - 1) / ls * ls;
    size_t flushed = 0;
    for (uint64_t line = first; line <= last; line += ls) {
      size_t bank_idx, set_idx;
      Locate(line, &bank_idx, &set_idx);
      Set& set = banks_[bank_idx].sets[set_idx];
      for (auto& way : set.ways) {
        if (way.tag != line) continue;
        if (way.dirty) {
          flushed++;
          write_backs++;
          events_->push_back({Event::kWriteBack, way.tag});
          way.dirty = false;
        }
        if (invalidate) way.tag = kInvalidTag;
        break;
      }
    }
    return flushed;
  }

  size_t WriteBackAll() {
    size_t flushed = 0;
    for (auto& bank : banks_) {
      for (auto& set : bank.sets) {
        for (auto& way : set.ways) {
          if (way.tag != kInvalidTag && way.dirty) {
            flushed++;
            write_backs++;
            events_->push_back({Event::kWriteBack, way.tag});
            way.dirty = false;
          }
        }
      }
    }
    return flushed;
  }

  void DropDirty() {
    for (auto& bank : banks_) {
      for (auto& set : bank.sets) {
        for (auto& way : set.ways) {
          way.tag = kInvalidTag;
          way.dirty = false;
          way.lru_stamp = 0;
        }
      }
      bank.lru_clock = 0;
    }
  }

  uint64_t hits = 0, misses = 0, write_backs = 0;

 private:
  struct Line {
    uint64_t tag = kInvalidTag;
    uint64_t lru_stamp = 0;
    bool dirty = false;
  };
  struct Set {
    std::vector<Line> ways;
  };
  struct Bank {
    std::vector<Set> sets;
    uint64_t lru_clock = 0;
  };
  static constexpr uint64_t kInvalidTag = ~0ull;

  void Locate(uint64_t line_addr, size_t* bank, size_t* set) const {
    const uint64_t line_index = line_addr / config_.line_size;
    uint64_t h = line_index * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    *bank = h % banks_.size();
    *set = (h / banks_.size()) % sets_per_bank_;
  }

  CacheConfig config_;
  std::vector<Event>* events_;
  std::vector<Bank> banks_;
  size_t sets_per_bank_;
};

CacheCallbacks EventRecorder(std::vector<Event>* events) {
  CacheCallbacks callbacks;
  callbacks.ctx = events;
  callbacks.write_back = [](void* ctx, uint64_t line_addr, size_t) {
    static_cast<std::vector<Event>*>(ctx)->push_back(
        {Event::kWriteBack, line_addr});
  };
  callbacks.fill = [](void* ctx, uint64_t line_addr, size_t) {
    static_cast<std::vector<Event>*>(ctx)->push_back(
        {Event::kFill, line_addr});
  };
  return callbacks;
}

/// Drives the randomized trace through the reference model and through a
/// fast CacheSim in *each* concurrency mode — kOwner (zero-synchronization
/// loop, inlinable hit path) and kShared (bank locks) — plus a
/// forced-scalar kOwner instance: the SIMD probe (SSE2/AVX2, whatever
/// ResolveProbeKind picked on this CPU) and the scalar loop must both
/// reproduce the reference's hit/miss/write-back sequences exactly. The
/// trace also issues segmented accesses, which the reference models as the
/// uncoalesced adjacent calls and the fast caches as one AccessSegments.
void RunTrace(const CacheConfig& base_cfg, uint64_t seed, uint64_t num_ops,
              uint64_t address_space) {
  std::vector<Event> ref_events;
  std::vector<Event> owner_events;
  std::vector<Event> shared_events;
  std::vector<Event> scalar_events;
  ReferenceCache reference(base_cfg, &ref_events);

  CacheConfig cfg = base_cfg;
  cfg.mode = ConcurrencyMode::kOwner;
  CacheSim owner(cfg, EventRecorder(&owner_events));
  ASSERT_EQ(owner.mode(), ConcurrencyMode::kOwner);
  cfg.mode = ConcurrencyMode::kShared;
  CacheSim shared(cfg, EventRecorder(&shared_events));
  ASSERT_EQ(shared.mode(), ConcurrencyMode::kShared);
  cfg.mode = ConcurrencyMode::kOwner;
  cfg.force_scalar_probe = true;
  CacheSim scalar(cfg, EventRecorder(&scalar_events));
  ASSERT_EQ(scalar.probe_kind(), ProbeKind::kScalar);

  std::mt19937_64 rng(seed);
  for (uint64_t op = 0; op < num_ops; op++) {
    const uint64_t kind = rng() % 100;
    const uint64_t addr = rng() % address_space;
    const size_t size = 1 + rng() % 256;
    const bool flag = (rng() & 1) != 0;
    if (kind < 70) {
      const size_t expected = reference.Access(addr, size, flag);
      // Drive the owner caches the way NvmDevice::Touch does: try the
      // inlined resident-hit fast path first (a fast-path hit is a
      // zero-miss access), fall back to the full path otherwise.
      const size_t owner_missed = owner.OwnerHitFast(addr, size, flag)
                                      ? 0
                                      : owner.Access(addr, size, flag);
      ASSERT_EQ(expected, owner_missed) << "op " << op;
      ASSERT_EQ(expected, shared.Access(addr, size, flag)) << "op " << op;
      const size_t scalar_missed = scalar.OwnerHitFast(addr, size, flag)
                                       ? 0
                                       : scalar.Access(addr, size, flag);
      ASSERT_EQ(expected, scalar_missed) << "op " << op;
    } else if (kind < 80) {
      // Segmented access: the reference performs the uncoalesced adjacent
      // calls (skipping empty segments, as the engines' `if (!empty)`
      // guards did); each fast cache models them as ONE AccessSegments.
      // Totals and the event sequences checked below must match —
      // including the double visit of a line shared by two segments.
      uint32_t lens[3] = {0, 0, 0};
      const size_t nseg = 2 + rng() % 2;
      size_t expected = 0;
      size_t ref_lines = 0;
      uint64_t seg_addr = addr;
      for (size_t s = 0; s < nseg; s++) {
        lens[s] = static_cast<uint32_t>(rng() % 200);  // 0-length legal
        if (lens[s] != 0) {
          expected += reference.Access(seg_addr, lens[s], flag);
          ref_lines += (seg_addr + lens[s] - 1) / base_cfg.line_size -
                       seg_addr / base_cfg.line_size + 1;
        }
        seg_addr += lens[s];
      }
      const CacheAccessResult owner_r =
          owner.AccessSegments(addr, lens, nseg, flag);
      ASSERT_EQ(expected, owner_r.missed) << "op " << op;
      ASSERT_EQ(ref_lines, owner_r.lines) << "op " << op;
      const CacheAccessResult shared_r =
          shared.AccessSegments(addr, lens, nseg, flag);
      ASSERT_EQ(expected, shared_r.missed) << "op " << op;
      ASSERT_EQ(ref_lines, shared_r.lines) << "op " << op;
      const CacheAccessResult scalar_r =
          scalar.AccessSegments(addr, lens, nseg, flag);
      ASSERT_EQ(expected, scalar_r.missed) << "op " << op;
      ASSERT_EQ(ref_lines, scalar_r.lines) << "op " << op;
    } else if (kind < 94) {
      const size_t expected = reference.FlushRange(addr, size, flag);
      // Drive the owner caches the way NvmDevice::FlushLines does: the
      // inlined single-line flush when it applies, FlushRange otherwise.
      const int fast = owner.OwnerFlushFast(addr, size, flag);
      const size_t owner_flushed = fast >= 0
                                       ? static_cast<size_t>(fast)
                                       : owner.FlushRange(addr, size, flag);
      ASSERT_EQ(expected, owner_flushed) << "op " << op;
      ASSERT_EQ(expected, shared.FlushRange(addr, size, flag))
          << "op " << op;
      const int sfast = scalar.OwnerFlushFast(addr, size, flag);
      const size_t scalar_flushed =
          sfast >= 0 ? static_cast<size_t>(sfast)
                     : scalar.FlushRange(addr, size, flag);
      ASSERT_EQ(expected, scalar_flushed) << "op " << op;
    } else if (kind < 97) {
      const size_t expected = reference.WriteBackAll();
      ASSERT_EQ(expected, owner.WriteBackAll()) << "op " << op;
      ASSERT_EQ(expected, shared.WriteBackAll()) << "op " << op;
      ASSERT_EQ(expected, scalar.WriteBackAll()) << "op " << op;
    } else {
      // Crash: all cached state vanishes, nothing is written back.
      reference.DropDirty();
      owner.DropDirty();
      shared.DropDirty();
      scalar.DropDirty();
    }
    ASSERT_EQ(ref_events.size(), owner_events.size()) << "op " << op;
    ASSERT_EQ(ref_events.size(), shared_events.size()) << "op " << op;
    ASSERT_EQ(ref_events.size(), scalar_events.size()) << "op " << op;
  }

  for (const CacheSim* fast : {&owner, &shared, &scalar}) {
    EXPECT_EQ(reference.hits, fast->hits());
    EXPECT_EQ(reference.misses, fast->misses());
    EXPECT_EQ(reference.write_backs, fast->write_backs());
  }
  ASSERT_EQ(ref_events.size(), owner_events.size());
  ASSERT_EQ(ref_events.size(), shared_events.size());
  ASSERT_EQ(ref_events.size(), scalar_events.size());
  for (size_t i = 0; i < ref_events.size(); i++) {
    ASSERT_TRUE(ref_events[i] == owner_events[i])
        << "event " << i << ": ref kind " << int(ref_events[i].kind)
        << " line " << ref_events[i].line_addr << " vs owner kind "
        << int(owner_events[i].kind) << " line "
        << owner_events[i].line_addr;
    ASSERT_TRUE(ref_events[i] == shared_events[i])
        << "event " << i << ": ref kind " << int(ref_events[i].kind)
        << " line " << ref_events[i].line_addr << " vs shared kind "
        << int(shared_events[i].kind) << " line "
        << shared_events[i].line_addr;
    ASSERT_TRUE(ref_events[i] == scalar_events[i])
        << "event " << i << ": ref kind " << int(ref_events[i].kind)
        << " line " << ref_events[i].line_addr << " vs scalar kind "
        << int(scalar_events[i].kind) << " line "
        << scalar_events[i].line_addr;
  }
}

// Power-of-two geometries, where the fast path's shift+mask Locate must
// reproduce the reference's div/mod mapping exactly.

TEST(CacheGoldenTest, SmallSingleBank) {
  CacheConfig cfg;
  cfg.capacity_bytes = 4 * 1024;  // 64 lines, 16 sets
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 1;
  RunTrace(cfg, /*seed=*/1, /*num_ops=*/50000, /*address_space=*/64 * 1024);
}

TEST(CacheGoldenTest, MultiBankBenchGeometry) {
  CacheConfig cfg;
  cfg.capacity_bytes = 256 * 1024;  // benchmark shape, scaled down
  cfg.line_size = 64;
  cfg.associativity = 16;
  cfg.num_banks = 16;
  RunTrace(cfg, /*seed=*/2, /*num_ops=*/50000,
           /*address_space=*/4 * 1024 * 1024);
}

TEST(CacheGoldenTest, HighPressureEvictions) {
  CacheConfig cfg;
  cfg.capacity_bytes = 8 * 1024;  // tiny cache, huge address space
  cfg.line_size = 64;
  cfg.associativity = 2;
  cfg.num_banks = 4;
  RunTrace(cfg, /*seed=*/3, /*num_ops=*/50000,
           /*address_space=*/16 * 1024 * 1024);
}

// Forced-scalar vs SIMD equivalence across the associativities the SIMD
// probe treats differently: 4 ways fill exactly one AVX2 vector, 8 two, 16
// (the bench default) four; each also exercises the SSE2 pair width and
// the scalar tail handling. RunTrace drives a forced-scalar instance in
// lockstep with the dispatch-selected one, so on an AVX2/SSE2 machine this
// is a direct scalar-vs-vector sweep.
TEST(CacheGoldenTest, ProbeEquivalenceAssociativitySweep) {
  for (const size_t assoc : {size_t{4}, size_t{8}, size_t{16}}) {
    CacheConfig cfg;
    cfg.capacity_bytes = 64 * 1024;
    cfg.line_size = 64;
    cfg.associativity = assoc;
    cfg.num_banks = 8;
    RunTrace(cfg, /*seed=*/100 + assoc, /*num_ops=*/30000,
             /*address_space=*/8 * 1024 * 1024);
  }
}

// Write-heavy trace on an overcommitted cache: nearly every miss evicts a
// dirty victim, so the SIMD victim min-reduction (and its first-minimum
// tie-break) is what decides which line is written back. Any divergence
// from the scalar scan shows up as a write-back event mismatch.
TEST(CacheGoldenTest, DirtyVictimEvictionStorm) {
  CacheConfig cfg;
  cfg.capacity_bytes = 16 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 16;  // one set per bank: deep scans, constant churn
  cfg.num_banks = 4;
  RunTrace(cfg, /*seed=*/7, /*num_ops=*/50000,
           /*address_space=*/32 * 1024 * 1024);
}

// CLFLUSH-style regime: the trace's flush ops invalidate (flag is random,
// so ~half do), making the flush-probe + invalidate + re-fill cycle the
// dominant pattern. A probe that mis-handles an invalidated way would
// re-hit a dead line here.
TEST(CacheGoldenTest, FlushWithInvalidateChurn) {
  CacheConfig cfg;
  cfg.capacity_bytes = 32 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 8;
  cfg.num_banks = 2;
  RunTrace(cfg, /*seed=*/11, /*num_ops=*/50000,
           /*address_space=*/256 * 1024);
}

// The NVMDB_FORCE_SCALAR_PROBE environment variable must pin the scalar
// loop at construction time, overriding whatever the CPU supports.
TEST(CacheGoldenTest, ForceScalarProbeEnvVar) {
  setenv("NVMDB_FORCE_SCALAR_PROBE", "1", /*overwrite=*/1);
  CacheConfig cfg;
  cfg.capacity_bytes = 4 * 1024;
  cfg.line_size = 64;
  cfg.associativity = 4;
  cfg.num_banks = 1;
  {
    CacheSim sim(cfg, CacheCallbacks{});
    EXPECT_EQ(sim.probe_kind(), ProbeKind::kScalar);
  }
  unsetenv("NVMDB_FORCE_SCALAR_PROBE");
  // And with it unset the construction-time choice is dispatch-selected
  // again (whatever this CPU offers) while the config flag still forces.
  cfg.force_scalar_probe = true;
  CacheSim forced(cfg, CacheCallbacks{});
  EXPECT_EQ(forced.probe_kind(), ProbeKind::kScalar);
}

}  // namespace
}  // namespace nvmdb
