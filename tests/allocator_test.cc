#include <gtest/gtest.h>

#include <set>

#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace nvmdb {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest()
      : device_(16ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_) {}

  NvmDevice device_;
  PmemAllocator allocator_;
};

TEST_F(AllocatorTest, AllocReturnsDistinctAlignedSlots) {
  std::set<uint64_t> offsets;
  for (int i = 0; i < 100; i++) {
    const uint64_t off = allocator_.Alloc(64);
    ASSERT_NE(off, 0u);
    EXPECT_EQ(off % 16, 0u);
    EXPECT_TRUE(offsets.insert(off).second);
  }
}

TEST_F(AllocatorTest, UsableSizeIsQuarterStepClass) {
  // Classes are 16-byte-aligned quarter steps: waste is bounded by 25%.
  const uint64_t off = allocator_.Alloc(100);
  EXPECT_GE(allocator_.UsableSize(off), 100u);
  EXPECT_LE(allocator_.UsableSize(off), 128u);
  EXPECT_EQ(allocator_.UsableSize(off) % 16, 0u);
  const uint64_t off2 = allocator_.Alloc(16);
  EXPECT_EQ(allocator_.UsableSize(off2), 16u);
  const uint64_t off3 = allocator_.Alloc(1100);
  EXPECT_GE(allocator_.UsableSize(off3), 1100u);
  EXPECT_LT(allocator_.UsableSize(off3), 1100u * 5 / 4);
}

TEST_F(AllocatorTest, FreeReusesSlot) {
  const uint64_t a = allocator_.Alloc(64);
  allocator_.Free(a);
  const uint64_t b = allocator_.Alloc(64);
  EXPECT_EQ(a, b);
}

TEST_F(AllocatorTest, DoubleFreeIsANoOp) {
  // Crash recovery may re-run a free that was partially durable when the
  // crash hit (an in-flight abort's undo record stays reachable until the
  // WAL head swap). Freeing an already-free slot must not push it into
  // the free lists a second time, or Alloc would hand one offset to two
  // owners.
  const uint64_t a = allocator_.Alloc(64);
  allocator_.Free(a);
  allocator_.Free(a);  // recovery re-running the free
  const uint64_t b = allocator_.Alloc(64);
  const uint64_t c = allocator_.Alloc(64);
  EXPECT_EQ(a, b);
  EXPECT_NE(b, c);  // the second handout must be a different slot
}

TEST_F(AllocatorTest, FreeRejectsMalformedOffsets) {
  // Pointers read back from durable state after a torn persist can be
  // garbage; Free must reject them instead of corrupting the free lists.
  const uint64_t a = allocator_.Alloc(64);
  allocator_.Free(0);                          // null
  allocator_.Free(7);                          // unaligned, below heap
  allocator_.Free(a + 8);                      // unaligned mid-slot
  allocator_.Free(device_.capacity() + 1024);  // out of bounds
  EXPECT_FALSE(allocator_.ValidPayloadOffset(0));
  EXPECT_FALSE(allocator_.ValidPayloadOffset(a + 8));
  EXPECT_TRUE(allocator_.ValidPayloadOffset(a));
  // The live slot is untouched and the allocator still works.
  EXPECT_EQ(allocator_.StateOf(a), PmemAllocator::SlotState::kAllocated);
  const uint64_t b = allocator_.Alloc(64);
  EXPECT_NE(a, b);
}

TEST_F(AllocatorTest, BestFitPrefersSmallestSufficientClass) {
  const uint64_t small = allocator_.Alloc(32);
  const uint64_t big = allocator_.Alloc(4096);
  allocator_.Free(small);
  allocator_.Free(big);
  // A 30-byte request should reuse the 32-byte slot, not the 4 KB one.
  const uint64_t got = allocator_.Alloc(30);
  EXPECT_EQ(got, small);
}

TEST_F(AllocatorTest, SlotStateLifecycle) {
  const uint64_t off = allocator_.Alloc(64);
  EXPECT_EQ(allocator_.StateOf(off), PmemAllocator::SlotState::kAllocated);
  allocator_.MarkPersisted(off);
  EXPECT_EQ(allocator_.StateOf(off), PmemAllocator::SlotState::kPersisted);
  allocator_.Free(off);
  EXPECT_EQ(allocator_.StateOf(off), PmemAllocator::SlotState::kFree);
}

TEST_F(AllocatorTest, RecoveryReclaimsUnpersistedSlots) {
  const uint64_t persisted = allocator_.Alloc(64);
  device_.Write(persisted, "keep", 5);
  device_.Persist(persisted, 5);
  allocator_.MarkPersisted(persisted);
  const uint64_t leaked = allocator_.Alloc(64);
  (void)leaked;

  device_.Crash();
  PmemAllocator recovered(&device_, /*format=*/false);
  EXPECT_EQ(recovered.StateOf(persisted),
            PmemAllocator::SlotState::kPersisted);
  EXPECT_EQ(recovered.StateOf(leaked), PmemAllocator::SlotState::kFree);
  // The reclaimed slot is allocatable again.
  const uint64_t again = recovered.Alloc(64);
  EXPECT_EQ(again, leaked);
}

TEST_F(AllocatorTest, NamingMechanismSurvivesRestart) {
  const uint64_t off = allocator_.Alloc(128);
  allocator_.MarkPersisted(off);
  ASSERT_TRUE(allocator_.SetRoot("my_table", off).ok());

  device_.Crash();
  PmemAllocator recovered(&device_, /*format=*/false);
  EXPECT_EQ(recovered.GetRoot("my_table"), off);
  EXPECT_EQ(recovered.GetRoot("absent"), 0u);
}

TEST_F(AllocatorTest, RootRebindAndClear) {
  allocator_.SetRoot("r", 100);
  allocator_.SetRoot("r", 200);
  EXPECT_EQ(allocator_.GetRoot("r"), 200u);
  allocator_.SetRoot("r", 0);
  EXPECT_EQ(allocator_.GetRoot("r"), 0u);
  // The slot is reusable for another name afterwards.
  allocator_.SetRoot("s", 300);
  EXPECT_EQ(allocator_.GetRoot("s"), 300u);
}

TEST_F(AllocatorTest, RejectsOverlongRootName) {
  EXPECT_FALSE(allocator_.SetRoot(std::string(64, 'x'), 1).ok());
  EXPECT_FALSE(allocator_.SetRoot("", 1).ok());
}

TEST_F(AllocatorTest, StatsTrackPerTagUsage) {
  allocator_.Alloc(1000, StorageTag::kTable);
  allocator_.Alloc(500, StorageTag::kIndex);
  const AllocatorStats stats = allocator_.stats();
  EXPECT_EQ(stats.used_by_tag[static_cast<size_t>(StorageTag::kTable)],
            1024u);
  EXPECT_EQ(stats.used_by_tag[static_cast<size_t>(StorageTag::kIndex)],
            512u);
  EXPECT_EQ(stats.total_used, 1536u);
}

TEST_F(AllocatorTest, FreeUpdatesStats) {
  const uint64_t off = allocator_.Alloc(1000, StorageTag::kLog);
  allocator_.Free(off);
  const AllocatorStats stats = allocator_.stats();
  EXPECT_EQ(stats.used_by_tag[static_cast<size_t>(StorageTag::kLog)], 0u);
}

TEST_F(AllocatorTest, OutOfSpaceReturnsZero) {
  NvmDevice tiny(64 * 1024);
  PmemAllocator allocator(&tiny);
  EXPECT_EQ(allocator.Alloc(1 << 20), 0u);
}

TEST_F(AllocatorTest, ManySmallAllocsThenRecoverPreservesAccounting) {
  std::vector<uint64_t> offs;
  for (int i = 0; i < 200; i++) {
    const uint64_t off = allocator_.Alloc(48, StorageTag::kTable);
    allocator_.MarkPersisted(off);
    offs.push_back(off);
  }
  for (int i = 0; i < 100; i++) allocator_.Free(offs[i]);

  device_.Crash();
  PmemAllocator recovered(&device_, /*format=*/false);
  const AllocatorStats stats = recovered.stats();
  EXPECT_EQ(stats.used_by_tag[static_cast<size_t>(StorageTag::kTable)],
            100u * 64);
}

TEST_F(AllocatorTest, RotationSpreadsReusedSlots) {
  // Free several same-class slots; successive allocations should not
  // always return the same one first (wear leveling).
  std::vector<uint64_t> offs;
  for (int i = 0; i < 8; i++) offs.push_back(allocator_.Alloc(64));
  for (uint64_t off : offs) allocator_.Free(off);
  std::set<uint64_t> first_two;
  first_two.insert(allocator_.Alloc(64));
  first_two.insert(allocator_.Alloc(64));
  EXPECT_EQ(first_two.size(), 2u);
}

// --- Pmfs --------------------------------------------------------------------

class PmfsTest : public ::testing::Test {
 protected:
  PmfsTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_) {}

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
};

TEST_F(PmfsTest, CreateWriteRead) {
  Pmfs::Fd fd = fs_.Open("a.txt", true);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(fs_.Write(fd, 0, "hello", 5).ok());
  char buf[8] = {};
  size_t got = 0;
  ASSERT_TRUE(fs_.Read(fd, 0, buf, 5, &got).ok());
  EXPECT_EQ(got, 5u);
  EXPECT_STREQ(buf, "hello");
  EXPECT_EQ(fs_.Size(fd), 5u);
}

TEST_F(PmfsTest, OpenMissingWithoutCreateFails) {
  EXPECT_LT(fs_.Open("missing", false), 0);
}

TEST_F(PmfsTest, AppendGrowsFile) {
  Pmfs::Fd fd = fs_.Open("log", true);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(fs_.Append(fd, "0123456789", 10).ok());
  }
  EXPECT_EQ(fs_.Size(fd), 1000u);
  char buf[10];
  size_t got;
  fs_.Read(fd, 990, buf, 10, &got);
  EXPECT_EQ(got, 10u);
  EXPECT_EQ(buf[9], '9');
}

TEST_F(PmfsTest, CrossBlockWriteAndRead) {
  Pmfs::Fd fd = fs_.Open("big", true);
  std::string data(10000, 'z');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(fs_.Write(fd, 100, data.data(), data.size()).ok());
  std::string out(data.size(), '\0');
  size_t got;
  ASSERT_TRUE(fs_.Read(fd, 100, out.data(), out.size(), &got).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PmfsTest, ReadPastEofClamps) {
  Pmfs::Fd fd = fs_.Open("f", true);
  fs_.Write(fd, 0, "abc", 3);
  char buf[10];
  size_t got;
  fs_.Read(fd, 2, buf, 10, &got);
  EXPECT_EQ(got, 1u);
  fs_.Read(fd, 100, buf, 10, &got);
  EXPECT_EQ(got, 0u);
}

TEST_F(PmfsTest, FsyncedDataSurvivesCrash) {
  Pmfs::Fd fd = fs_.Open("durable", true);
  fs_.Write(fd, 0, "persist me", 10);
  fs_.Fsync(fd);

  device_.Crash();
  PmemAllocator allocator(&device_, false);
  Pmfs fs(&allocator);
  EXPECT_TRUE(fs.Exists("durable"));
  Pmfs::Fd fd2 = fs.Open("durable", false);
  char buf[16] = {};
  size_t got;
  fs.Read(fd2, 0, buf, 10, &got);
  EXPECT_EQ(got, 10u);
  EXPECT_STREQ(buf, "persist me");
}

TEST_F(PmfsTest, UnsyncedDataMayBeLostButMetadataConsistent) {
  Pmfs::Fd fd = fs_.Open("risky", true);
  fs_.Write(fd, 0, "abcdefgh", 8);
  fs_.Fsync(fd);
  fs_.Write(fd, 0, "XXXXXXXX", 8);  // no fsync

  device_.Crash();
  PmemAllocator allocator(&device_, false);
  Pmfs fs(&allocator);
  Pmfs::Fd fd2 = fs.Open("risky", false);
  ASSERT_GE(fd2, 0);
  char buf[9] = {};
  size_t got;
  fs.Read(fd2, 0, buf, 8, &got);
  EXPECT_EQ(got, 8u);
  EXPECT_STREQ(buf, "abcdefgh");  // the fsync'd version
}

TEST_F(PmfsTest, TruncateShrinksAndFreesBlocks) {
  Pmfs::Fd fd = fs_.Open("t", true);
  std::string data(20000, 'q');
  fs_.Write(fd, 0, data.data(), data.size());
  fs_.Fsync(fd);
  const uint64_t blocks_before = fs_.FileBlockBytes("t");
  ASSERT_TRUE(fs_.Truncate(fd, 100).ok());
  EXPECT_EQ(fs_.Size(fd), 100u);
  EXPECT_LT(fs_.FileBlockBytes("t"), blocks_before);
}

TEST_F(PmfsTest, DeleteRemovesFileAndReclaimsSpace) {
  const AllocatorStats before = allocator_.stats();
  Pmfs::Fd fd = fs_.Open("temp", true);
  std::string data(50000, 'd');
  fs_.Write(fd, 0, data.data(), data.size());
  fs_.Close(fd);
  ASSERT_TRUE(fs_.Delete("temp").ok());
  EXPECT_FALSE(fs_.Exists("temp"));
  const AllocatorStats after = allocator_.stats();
  EXPECT_LE(after.total_used, before.total_used + 4096);
}

TEST_F(PmfsTest, ListEnumeratesFiles) {
  fs_.Open("one", true);
  fs_.Open("two", true);
  const auto names = fs_.List();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(PmfsTest, FilesystemChargesVfsOverhead) {
  const uint64_t before = device_.TotalStallNanos();
  Pmfs::Fd fd = fs_.Open("cost", true);
  fs_.Write(fd, 0, "x", 1);
  EXPECT_GE(device_.TotalStallNanos() - before,
            fs_.config().vfs_call_overhead_ns);
}

TEST_F(PmfsTest, NamespaceSurvivesCleanReattach) {
  Pmfs::Fd fd = fs_.Open("persisted", true);
  fs_.Write(fd, 0, "data", 4);
  fs_.Fsync(fd);
  // Re-attach without crash (same allocator).
  Pmfs fs2(&allocator_);
  EXPECT_TRUE(fs2.Exists("persisted"));
}

}  // namespace
}  // namespace nvmdb
