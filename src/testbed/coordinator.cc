#include "testbed/coordinator.h"

#include <cassert>
#include <utility>

#include "common/timer.h"
#include "common/trace.h"

namespace nvmdb {

RunResult Coordinator::Execute(const std::vector<const TxnQueue*>& queues) {
  // Bind the thread-local device (and trace writer, when enabled) so
  // NvmPtr resolution and the stall-tag attribution work no matter which
  // thread drives this database (the bench grid scheduler runs whole
  // databases on pool threads).
  NvmEnv::Set(db_->device());
  NvmEnv::SetTrace(db_->trace());
  RunResult result;
  NvmDevice* device = db_->device();
  TraceWriter* trace = db_->trace();

  const uint64_t stall_before = device->TotalStallNanos();
  Stopwatch watch;

  // Per-partition execution state. Each partition models one worker core,
  // so response latency runs on a *partition-local* simulated clock: the
  // global device clock sums every partition's slices, and stamping
  // Begin/durable times against it would bill partition q's work into
  // partition p's response times (up to (N-1)x inflation under the
  // round-robin). The local clock advances only by the stall this
  // partition's own slices charge.
  struct PartState {
    size_t pos = 0;
    uint64_t clock = 0;  // partition-local simulated time
    std::vector<std::pair<uint64_t, uint64_t>> pending;  // txn id, start
  };
  std::vector<PartState> parts(queues.size());
  // Per-partition scratch: one set of reusable buffers per worker core, so
  // steady-state transaction bodies allocate nothing.
  std::vector<TxnScratch> scratch(queues.size());

  // A transaction's response time runs from Begin() until
  // LastDurableTxn() covers it — for group-committing engines that is
  // when the group is forced, not when Commit() returns.
  auto drain_durable = [&](StorageEngine* engine, PartState& st) {
    const uint64_t durable = engine->LastDurableTxn();
    size_t kept = 0;
    for (auto& [txn, start] : st.pending) {
      if (txn <= durable) {
        result.latency_hist.Record(st.clock - start);
      } else {
        st.pending[kept++] = {txn, start};
      }
    }
    st.pending.resize(kept);
  };

  // Deterministic round-robin schedule: one transaction per partition per
  // round, on the calling thread. This is the fixed interleaving that a
  // one-worker-per-partition execution approximates nondeterministically —
  // partitions still contend for the shared simulated cache, but the
  // access order (and therefore every counter and the simulated clock) is
  // identical on every run and on every host. Host-level parallelism comes
  // from running independent benchmark cells concurrently instead
  // (testbed/bench_runner.h), which keeps the model deterministic; the
  // throughput model already charges each worker 1/Nth of the simulated
  // stall (RunResult::Throughput), so wall-clock threading never affected
  // the modeled numbers, only the harness speed.
  for (bool progress = true; progress;) {
    progress = false;
    for (size_t p = 0; p < queues.size(); p++) {
      if (queues[p] == nullptr || parts[p].pos >= queues[p]->size()) {
        continue;
      }
      progress = true;
      const TxnQueue& queue = *queues[p];
      const TxnTask& task = queue.tasks[parts[p].pos++];
      PartState& st = parts[p];
      StorageEngine* engine = db_->partition(p);
      const uint64_t slice_start = device->TotalStallNanos();
      const uint64_t start_local = st.clock;
      const uint64_t txn_id = engine->Begin();
      const bool committed =
          task.fn != nullptr
              ? task.fn(task, queue, engine, txn_id, &scratch[p])
              : queue.closures[task.off](engine, txn_id);
      if (committed) {
        engine->Commit(txn_id);
        result.committed++;
      } else {
        engine->Abort(txn_id);
        result.aborted++;
      }
      const uint64_t slice_end = device->TotalStallNanos();
      st.clock += slice_end - slice_start;
      if (trace != nullptr) {
        trace->Span(committed ? "txn" : "txn_abort", "txn", slice_start,
                    slice_end - slice_start, static_cast<uint32_t>(p));
      }
      if (committed) {
        st.pending.emplace_back(txn_id, start_local);
        drain_durable(engine, st);
      }
    }
  }

  // Force only the pending commit group durable so the tail group's
  // transactions get response times. ForceDurable, not Checkpoint: a full
  // checkpoint (log truncation, compressed snapshot, memtable flush) here
  // billed its entire cost into the last group's tail latencies.
  for (size_t p = 0; p < queues.size(); p++) {
    if (queues[p] == nullptr) continue;
    PartState& st = parts[p];
    StorageEngine* engine = db_->partition(p);
    const uint64_t before = device->TotalStallNanos();
    engine->ForceDurable();
    st.clock += device->TotalStallNanos() - before;
    drain_durable(engine, st);
  }

  result.wall_ns = watch.ElapsedNanos();
  result.stall_ns = device->TotalStallNanos() - stall_before;
  result.latency = result.latency_hist.Summarize();
  return result;
}

RunResult Coordinator::Run(const std::vector<TxnQueue>& queues) {
  assert(queues.size() == db_->num_partitions());
  std::vector<const TxnQueue*> ptrs;
  ptrs.reserve(queues.size());
  for (const auto& q : queues) ptrs.push_back(&q);
  return Execute(ptrs);
}

RunResult Coordinator::RunSerial(size_t partition, const TxnQueue& queue) {
  std::vector<const TxnQueue*> ptrs(db_->num_partitions(), nullptr);
  assert(partition < ptrs.size());
  ptrs[partition] = &queue;
  return Execute(ptrs);
}

}  // namespace nvmdb
