#include "engine/nvm_inp_engine.h"

#include <cassert>
#include <cstring>

#include "engine/wal.h"
#include "lsm/delta.h"

namespace nvmdb {

namespace {

// Flat NV-WAL undo entry:
// u8 op | u32 table | u64 key | u64 slot | u16 fcount |
// fcount * { u16 column | u64 before | u64 new_varlen }
constexpr size_t kUndoHeaderBytes = 1 + 4 + 8 + 8 + 2;
constexpr size_t kUndoFieldBytes = 2 + 8 + 8;

}  // namespace

void NvmInPEngine::PushUndoEntry(uint8_t op, uint32_t table_id, uint64_t key,
                                 uint64_t slot, size_t fcount) {
  std::string& out = wal_entry_;
  out.clear();
  out.push_back(static_cast<char>(op));
  out.append(reinterpret_cast<const char*>(&table_id), 4);
  out.append(reinterpret_cast<const char*>(&key), 8);
  out.append(reinterpret_cast<const char*>(&slot), 8);
  const uint16_t count = static_cast<uint16_t>(fcount);
  out.append(reinterpret_cast<const char*>(&count), 2);
  for (size_t i = 0; i < fcount; i++) {
    const StagedField& f = staged_fields_[i];
    out.append(reinterpret_cast<const char*>(&f.column), 2);
    out.append(reinterpret_cast<const char*>(&f.before), 8);
    out.append(reinterpret_cast<const char*>(&f.new_varlen), 8);
  }
  wal_->Push(out.data(), out.size());
}

NvmInPEngine::NvmInPEngine(const EngineConfig& config)
    : config_(config), allocator_(config.allocator) {
  allocator_->set_eager_state_sync(true);
  wal_ = std::make_unique<NvWal>(allocator_,
                                 config_.namespace_prefix + ".nvminp.wal");
}

Status NvmInPEngine::CreateTable(const TableDef& def) {
  Table& table = tables_[def.table_id];
  table.def = def;
  table.heap = std::make_unique<TableHeap>(allocator_, &table.def.schema,
                                           /*nvm_aware=*/true);
  const std::string base = config_.namespace_prefix + ".nvminp.t" +
                           std::to_string(def.table_id);
  table.primary = std::make_unique<NvBTree>(allocator_, base + ".pk",
                                            config_.btree_node_bytes);
  for (const auto& sec : def.secondary_indexes) {
    table.secondaries[sec.index_id] = std::make_unique<NvBTree>(
        allocator_, base + ".sk" + std::to_string(sec.index_id),
        config_.btree_node_bytes);
  }
  return Status::OK();
}

NvmInPEngine::Table* NvmInPEngine::GetTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : &it->second;
}

void NvmInPEngine::AddSecondaryEntries(Table* table, const Tuple& tuple,
                                       uint64_t pk) {
  for (const auto& sec : table->def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    table->secondaries[sec.index_id]->Insert(SecondaryComposite(h, pk), pk);
  }
}

void NvmInPEngine::RemoveSecondaryEntries(Table* table, const Tuple& tuple,
                                          uint64_t pk) {
  for (const auto& sec : table->def.secondary_indexes) {
    const uint64_t h = SecondaryKeyHash(tuple, sec);
    table->secondaries[sec.index_id]->Erase(SecondaryComposite(h, pk));
  }
}

Status NvmInPEngine::Insert(uint64_t txn_id, uint32_t table_id,
                            const Tuple& tuple) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t key = tuple.Key();
  {
    ScopedStallTag t(StallTag::kIndex);
    if (table->primary->Contains(key)) {
      return Status::InvalidArgument("duplicate key");
    }
  }

  // Table 2, NVM-InP INSERT: sync tuple -> record pointer in WAL -> sync
  // log entry -> mark tuple state persisted -> add index entries.
  uint64_t slot;
  {
    ScopedStallTag t(StallTag::kTuple);
    slot = table->heap->Insert(tuple, /*defer_mark=*/true);
    if (slot == 0) return Status::OutOfSpace("table heap");
  }
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kInsert), table_id, key, slot,
                  0);
  }
  {
    // Tuple payloads + slot states become durable only now, after the WAL
    // entry referencing them (Table 2's ordering), one sync per slot.
    ScopedStallTag t(StallTag::kTuple);
    table->heap->PersistTuple(slot);
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->primary->Insert(key, slot);
    AddSecondaryEntries(table, tuple, key);
  }
  return Status::OK();
}

Status NvmInPEngine::Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                            const std::vector<ColumnUpdate>& updates) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }

  bool touches_secondary = false;
  for (const ColumnUpdate& u : updates) {
    for (const auto& sec : table->def.secondary_indexes) {
      for (size_t c : sec.key_columns) {
        if (c == u.column) touches_secondary = true;
      }
    }
  }
  if (touches_secondary) table->heap->Read(slot, &scratch_tuple_);

  // Phase 1: stage new varlen values (unmarked) and capture before words.
  staged_fields_.clear();
  staged_words_.assign(updates.size(), 0);
  {
    ScopedStallTag t(StallTag::kTuple);
    for (size_t i = 0; i < updates.size(); i++) {
      const ColumnUpdate& u = updates[i];
      const Column& col = table->def.schema.column(u.column);
      StagedField f;
      f.column = static_cast<uint16_t>(u.column);
      f.before = table->heap->ReadFieldRaw(slot, u.column);
      f.new_varlen = 0;
      if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
        f.new_varlen = table->heap->AllocVarlenUnmarked(u.value.str);
        if (f.new_varlen == 0) return Status::OutOfSpace("varlen");
        staged_words_[i] = f.new_varlen;
        commit_free_varlen_.push_back(f.before);  // old slot, freed at commit
      } else if (col.type == ColumnType::kVarchar) {
        uint64_t word = 0;
        memcpy(&word, u.value.str.data(),
               std::min<size_t>(8, u.value.str.size()));
        staged_words_[i] = word;
      } else {
        staged_words_[i] = u.value.num;
      }
      staged_fields_.push_back(f);
    }
  }

  // Phase 2: durable undo entry (field before-values + pointers only —
  // Table 3's F + p bytes, not 2*(F+V) like the traditional engine).
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kUpdate), table_id, key, slot,
                  staged_fields_.size());
  }

  // Phase 3: apply in place; one sync covers the whole modified span.
  {
    ScopedStallTag t(StallTag::kTuple);
    size_t min_col = updates[0].column, max_col = updates[0].column;
    for (size_t i = 0; i < updates.size(); i++) {
      table->heap->WriteFieldRaw(slot, updates[i].column, staged_words_[i],
                                 /*persist=*/false);
      min_col = std::min(min_col, updates[i].column);
      max_col = std::max(max_col, updates[i].column);
      if (staged_fields_[i].new_varlen != 0) {
        table->heap->PersistVarlenAndMark(staged_fields_[i].new_varlen);
      }
    }
    table->heap->PersistFieldSpan(slot, min_col, max_col);
  }

  if (touches_secondary) {
    ScopedStallTag t(StallTag::kIndex);
    scratch_tuple2_ = scratch_tuple_;
    ApplyUpdates(&scratch_tuple2_, updates);
    RemoveSecondaryEntries(table, scratch_tuple_, key);
    AddSecondaryEntries(table, scratch_tuple2_, key);
  }
  return Status::OK();
}

Status NvmInPEngine::Delete(uint64_t txn_id, uint32_t table_id,
                            uint64_t key) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kDelete), table_id, key, slot,
                  0);
  }
  table->heap->Read(slot, &scan_scratch_);
  {
    ScopedStallTag t(StallTag::kIndex);
    table->primary->Erase(key);
    RemoveSecondaryEntries(table, scan_scratch_, key);
  }
  // Space reclaimed at the end of the transaction (Table 2).
  commit_free_slots_.emplace_back(table_id, slot);
  return Status::OK();
}

Status NvmInPEngine::Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                            Tuple* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  uint64_t slot = 0;
  {
    ScopedStallTag t(StallTag::kIndex);
    if (!table->primary->Find(key, &slot)) return Status::NotFound();
  }
  ScopedStallTag t(StallTag::kTuple);
  table->heap->Read(slot, out);
  return Status::OK();
}

Status NvmInPEngine::ScanRange(
    uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Tuple&)>& fn) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  ScopedStallTag t(StallTag::kIndex);
  table->primary->Scan(lo, hi, [&](uint64_t key, uint64_t slot) {
    table->heap->Read(slot, &scan_scratch_);
    return fn(key, scan_scratch_);
  });
  return Status::OK();
}

Status NvmInPEngine::SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                     uint32_t index_id,
                                     const std::vector<Value>& key_values,
                                     std::vector<Tuple>* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  auto sec_it = table->secondaries.find(index_id);
  if (sec_it == table->secondaries.end()) {
    return Status::InvalidArgument("no such index");
  }
  const SecondaryIndexDef* def = nullptr;
  for (const auto& d : table->def.secondary_indexes) {
    if (d.index_id == index_id) def = &d;
  }
  const uint64_t h = SecondaryKeyHash(table->def.schema, *def, key_values);
  std::vector<uint64_t> pks;
  {
    ScopedStallTag t(StallTag::kIndex);
    sec_it->second->Scan(SecondaryRangeLo(h), SecondaryRangeHi(h),
                         [&pks](uint64_t, uint64_t pk) {
                           pks.push_back(pk);
                           return true;
                         });
  }
  for (uint64_t pk : pks) {
    uint64_t slot = 0;
    if (!table->primary->Find(pk, &slot)) continue;
    table->heap->Read(slot, &scan_scratch_);
    if (SecondaryKeyHash(scan_scratch_, *def) == h) {
      out->push_back(scan_scratch_);
    }
  }
  return Status::OK();
}

Status NvmInPEngine::Commit(uint64_t txn_id) {
  ScopedStallTag t(StallTag::kWal);
  // Everything the transaction wrote is already persisted in place;
  // committing truncates the undo log, then reclaims deferred space.
  // (Truncate-first: undoing against freed slots would corrupt; the
  // reverse order can only leak, and only in a crash window.)
  wal_->Clear();
  for (uint64_t voff : commit_free_varlen_) allocator_->Free(voff);
  commit_free_varlen_.clear();
  for (const auto& [table_id, slot] : commit_free_slots_) {
    Table* table = GetTable(table_id);
    if (table != nullptr) table->heap->Free(slot);
  }
  commit_free_slots_.clear();
  committed_txns_++;
  last_committed_txn_ = txn_id;
  active_txn_ = 0;
  return Status::OK();
}

Status NvmInPEngine::Abort(uint64_t txn_id) {
  (void)txn_id;
  ScopedStallTag t(StallTag::kWal);
  wal_->ForEach([this](const uint8_t* payload, size_t size) {
    UndoOne(payload, size);
  });
  wal_->Clear();
  commit_free_varlen_.clear();
  commit_free_slots_.clear();
  active_txn_ = 0;
  return Status::OK();
}

void NvmInPEngine::UndoOne(const uint8_t* payload, size_t size) {
  if (size < kUndoHeaderBytes) return;
  const uint8_t op = payload[0];
  uint32_t table_id;
  uint64_t key, slot;
  uint16_t fcount;
  memcpy(&table_id, payload + 1, 4);
  memcpy(&key, payload + 5, 8);
  memcpy(&slot, payload + 13, 8);
  memcpy(&fcount, payload + 21, 2);
  Table* table = GetTable(table_id);
  if (table == nullptr) return;
  // Reachable WAL entries are fully durable (the atomic head swap follows
  // the entry persist), but validate the slot pointer before StateOf
  // dereferences its header anyway: recovery must never trust raw offsets.
  if (!allocator_->ValidPayloadOffset(slot)) return;

  switch (static_cast<LogOp>(op)) {
    case LogOp::kInsert: {
      // If the tuple never reached the persisted state, the crash happened
      // before index insertion; the allocator already reclaimed it.
      if (allocator_->StateOf(slot) !=
          PmemAllocator::SlotState::kPersisted) {
        table->primary->Erase(key);
        return;
      }
      // A torn final persist can durably mark the slot persisted while
      // some payload lines stayed stale. The index insert always follows
      // the tuple persist, so a torn tuple has no secondary entries —
      // reclaim the slot without materializing it (heap->Free rejects the
      // garbage varlen pointers).
      if (!table->heap->TupleReadable(slot)) {
        table->primary->Erase(key);
        table->heap->Free(slot);
        return;
      }
      const Tuple t = table->heap->Read(slot);
      table->primary->Erase(key);
      RemoveSecondaryEntries(table, t, key);
      table->heap->Free(slot);
      break;
    }
    case LogOp::kUpdate: {
      if (size < kUndoHeaderBytes + fcount * kUndoFieldBytes) return;
      const bool slot_live = allocator_->StateOf(slot) ==
                             PmemAllocator::SlotState::kPersisted;
      if (!slot_live) return;
      const bool readable = table->heap->TupleReadable(slot);
      const Tuple newer =
          readable ? table->heap->Read(slot) : Tuple(table->heap->schema());
      for (int i = static_cast<int>(fcount) - 1; i >= 0; i--) {
        const uint8_t* f =
            payload + kUndoHeaderBytes + i * kUndoFieldBytes;
        uint16_t column;
        uint64_t before, new_varlen;
        memcpy(&column, f, 2);
        memcpy(&before, f + 2, 8);
        memcpy(&new_varlen, f + 10, 8);
        table->heap->WriteFieldRaw(slot, column, before);
        if (new_varlen != 0) {
          table->heap->FreeVarlenIfPersisted(new_varlen);
        }
      }
      const Tuple older = table->heap->Read(slot);
      RemoveSecondaryEntries(table, newer, key);
      AddSecondaryEntries(table, older, key);
      break;
    }
    case LogOp::kDelete: {
      // Re-link the tuple: the slot was not reclaimed before commit.
      if (allocator_->StateOf(slot) !=
          PmemAllocator::SlotState::kPersisted) {
        return;
      }
      const Tuple t = table->heap->Read(slot);
      table->primary->Insert(key, slot);
      AddSecondaryEntries(table, t, key);
      break;
    }
    default:
      break;
  }
}

Status NvmInPEngine::Recover() {
  ScopedStallTag t(StallTag::kRecovery);
  // Undo-only: roll back whatever the in-flight transaction left behind.
  // No redo pass and no index rebuild (Section 4.1).
  wal_->ForEach([this](const uint8_t* payload, size_t size) {
    UndoOne(payload, size);
  });
  wal_->Clear();
  commit_free_varlen_.clear();
  commit_free_slots_.clear();
  return Status::OK();
}

FootprintStats NvmInPEngine::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  stats.table_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.index_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kIndex)];
  stats.log_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kLog)];
  return stats;
}

}  // namespace nvmdb
