#pragma once

#include <map>
#include <memory>

#include "engine/storage_engine.h"
#include "engine/table_storage.h"
#include "engine/wal.h"
#include "index/stx_btree.h"

namespace nvmdb {

/// Traditional in-place-updates engine (Section 3.1), modeled after
/// VoltDB: single-version tuples in slot pools used as *volatile* memory,
/// volatile STX B+tree indexes, durability via an ARIES-style WAL on the
/// filesystem with group commit, plus periodic compressed checkpoints.
/// Recovery replays the log from the last checkpoint and rebuilds every
/// index.
class InPEngine : public StorageEngine {
 public:
  explicit InPEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kInP; }

  Status CreateTable(const TableDef& def) override;
  Status Commit(uint64_t txn_id) override;
  Status Abort(uint64_t txn_id) override;
  Status Insert(uint64_t txn_id, uint32_t table_id,
                const Tuple& tuple) override;
  Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                const std::vector<ColumnUpdate>& updates) override;
  Status Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) override;
  Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                Tuple* out) override;
  Status ScanRange(uint64_t txn_id, uint32_t table_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(uint64_t, const Tuple&)>& fn)
      override;
  Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                         uint32_t index_id,
                         const std::vector<Value>& key_values,
                         std::vector<Tuple>* out) override;
  Status Recover() override;
  Status Checkpoint() override;
  /// Flush only the pending commit group; no checkpoint, no truncation.
  Status ForceDurable() override { return wal_->Flush(); }
  FootprintStats Footprint() const override;
  FootprintStats VolatileFootprint() const override;

  uint64_t LastDurableTxn() const override {
    return wal_->last_durable_txn();
  }

 private:
  struct Table {
    TableDef def;
    std::unique_ptr<TableHeap> heap;
    std::unique_ptr<BTree<uint64_t, uint64_t>> primary;  // key -> slot
    // index_id -> (composite -> pk)
    std::map<uint32_t, std::unique_ptr<BTree<uint64_t, uint64_t>>>
        secondaries;
  };

  // Volatile per-transaction undo actions (abort path). POD: an update's
  // undo fields live in the shared undo_pool_, addressed by range, so
  // recording an action never allocates once the pools have grown.
  struct TxnAction {
    LogOp op;
    uint32_t table_id;
    uint64_t key;
    uint64_t slot;         // insert/delete
    uint32_t undo_begin;   // update: range in undo_pool_
    uint32_t undo_end;
  };

  Table* GetTable(uint32_t table_id);
  void AddSecondaryEntries(Table* table, const Tuple& tuple, uint64_t pk);
  void RemoveSecondaryEntries(Table* table, const Tuple& tuple, uint64_t pk);
  /// Append the WAL before-image delta for `updates` to `out`: the same
  /// bytes EncodeUpdates would produce from the captured old values, and
  /// the same device reads (one fixed-field read per column, plus varlen
  /// header/payload reads) — without materializing a ColumnUpdate vector.
  void AppendBeforeImage(Table* table, uint64_t slot,
                         const std::vector<ColumnUpdate>& updates,
                         std::string* out);
  void ApplyCommittedRecord(const LogRecord& record);
  std::string SerializeDatabase();
  void LoadDatabase(const std::string& payload);
  std::string CheckpointFileName() const;

  EngineConfig config_;
  Pmfs* fs_;
  PmemAllocator* allocator_;
  std::unique_ptr<Wal> wal_;
  std::map<uint32_t, Table> tables_;

  std::vector<TxnAction> txn_actions_;
  std::vector<TableHeap::UndoField> undo_pool_;
  std::vector<uint64_t> commit_free_varlen_;  // old varlens, freed on commit
  std::vector<uint64_t> commit_free_slots_;   // deleted slots
  std::vector<uint64_t> abort_free_varlen_;   // filled during undo
  uint64_t txns_since_checkpoint_ = 0;

  // Reused per-operation scratch (engines are partition-confined).
  std::string wal_before_;
  std::string wal_after_;
  Tuple scratch_tuple_;   // update/delete old image
  Tuple scratch_tuple2_;  // update new image (secondary maintenance)
  Tuple scan_scratch_;    // select-secondary / scan materialization
};

}  // namespace nvmdb
