#include "workload/ycsb.h"

#include <cstring>
#include <memory>
#include <mutex>

namespace nvmdb {

namespace {

/// The load phase's random field bytes are a pure function of (seed,
/// num_tuples, field_size) — the generator is consumed in tuple order
/// regardless of partitioning — and benchmark grids load the identical
/// stream once per cell (48 times in the YCSB grid). Generating the
/// stream is the single most expensive host-side step of a cell, so it
/// is produced once per process and shared; the loaded bytes, and thus
/// every modeled device access, are unchanged. Capped so pathological
/// scales fall back to direct generation instead of pinning memory.
constexpr uint64_t kMaxCachedLoadBytes = 256ull * 1024 * 1024;

std::shared_ptr<const std::string> CachedLoadStream(uint64_t seed,
                                                    uint64_t num_tuples,
                                                    size_t field_size) {
  const uint64_t total = num_tuples * 10 * field_size;
  if (total == 0 || total > kMaxCachedLoadBytes) return nullptr;
  static std::mutex mu;
  static uint64_t cached_seed = 0;
  static uint64_t cached_tuples = 0;
  static size_t cached_field = 0;
  static std::shared_ptr<const std::string> cached;
  std::lock_guard<std::mutex> lock(mu);
  if (cached && cached_seed == seed && cached_tuples == num_tuples &&
      cached_field == field_size) {
    return cached;
  }
  auto stream = std::make_shared<std::string>();
  Random rng(seed);
  rng.AppendString(static_cast<size_t>(total), stream.get());
  cached_seed = seed;
  cached_tuples = num_tuples;
  cached_field = field_size;
  cached = std::move(stream);
  return cached;
}

}  // namespace

const char* YcsbMixtureName(YcsbMixture m) {
  switch (m) {
    case YcsbMixture::kReadOnly:
      return "read-only";
    case YcsbMixture::kReadHeavy:
      return "read-heavy";
    case YcsbMixture::kBalanced:
      return "balanced";
    case YcsbMixture::kWriteHeavy:
      return "write-heavy";
  }
  return "?";
}

const char* YcsbSkewName(YcsbSkew s) {
  return s == YcsbSkew::kLow ? "low-skew" : "high-skew";
}

int YcsbReadPercent(YcsbMixture m) {
  switch (m) {
    case YcsbMixture::kReadOnly:
      return 100;
    case YcsbMixture::kReadHeavy:
      return 90;
    case YcsbMixture::kBalanced:
      return 50;
    case YcsbMixture::kWriteHeavy:
      return 10;
  }
  return 100;
}

TableDef YcsbWorkload::MakeTableDef(size_t field_size) {
  TableDef def;
  def.table_id = kTableId;
  def.name = "usertable";
  std::vector<Column> cols;
  cols.push_back({"ycsb_key", ColumnType::kUInt64, 8});
  for (int i = 1; i <= 10; i++) {
    cols.push_back({"field" + std::to_string(i), ColumnType::kVarchar,
                    static_cast<uint32_t>(field_size)});
  }
  def.schema = Schema(cols);
  return def;
}

Status YcsbWorkload::Load(Database* db) {
  // One TableDef serves both table creation and the load loop (building
  // the 11-column schema is not free, and the old code built it twice).
  const TableDef def = MakeTableDef(config_.field_size);
  Status s = db->CreateTable(def);
  if (!s.ok()) return s;

  Random rng(config_.seed);
  const size_t parts = db->num_partitions();
  // Bulk-load within one transaction per chunk per partition. One scratch
  // tuple is refilled in place: the random column bytes stream straight
  // into its arena, with no per-column std::string. When the process-wide
  // stream cache hits, the bytes are memcpy'd instead of regenerated —
  // same content, same consumption order.
  const std::shared_ptr<const std::string> stream =
      CachedLoadStream(config_.seed, config_.num_tuples, config_.field_size);
  const char* stream_pos = stream ? stream->data() : nullptr;
  const uint64_t chunk = 512;
  Tuple t(&def.schema);
  for (size_t p = 0; p < parts; p++) {
    StorageEngine* engine = db->partition(p);
    uint64_t loaded_in_txn = 0;
    uint64_t txn = engine->Begin();
    for (uint64_t key = p; key < config_.num_tuples; key += parts) {
      t.Reset(&def.schema);
      t.SetU64(0, key);
      for (size_t c = 1; c <= 10; c++) {
        char* dst = t.AppendStringUninit(c, config_.field_size);
        if (stream_pos != nullptr) {
          memcpy(dst, stream_pos, config_.field_size);
          stream_pos += config_.field_size;
        } else {
          rng.FillString(dst, config_.field_size);
        }
      }
      s = engine->Insert(txn, kTableId, t);
      if (!s.ok()) return s;
      if (++loaded_in_txn >= chunk) {
        engine->Commit(txn);
        txn = engine->Begin();
        loaded_in_txn = 0;
      }
    }
    engine->Commit(txn);
  }
  db->Drain();
  return Status::OK();
}

namespace {

bool YcsbReadTxn(const TxnTask& task, const TxnQueue& queue,
                 StorageEngine* engine, uint64_t txn, TxnScratch* scratch) {
  (void)queue;
  return engine
      ->Select(txn, YcsbWorkload::kTableId, task.key, &scratch->tuple)
      .ok();
}

bool YcsbUpdateTxn(const TxnTask& task, const TxnQueue& queue,
                   StorageEngine* engine, uint64_t txn,
                   TxnScratch* scratch) {
  scratch->updates.clear();
  scratch->updates.push_back(
      {task.col, Value::Str(queue.StrAt(task.off, task.len))});
  return engine
      ->Update(txn, YcsbWorkload::kTableId, task.key, scratch->updates)
      .ok();
}

}  // namespace

std::vector<TxnQueue> YcsbWorkload::GenerateQueues() {
  const size_t parts = config_.num_partitions;
  std::vector<TxnQueue> queues(parts);
  const int read_pct = YcsbReadPercent(config_.mixture);
  const double hot_data = config_.skew == YcsbSkew::kLow ? 0.2 : 0.1;
  const double hot_access = config_.skew == YcsbSkew::kLow ? 0.5 : 0.9;
  const uint64_t txns_per_part = config_.num_txns / parts;

  for (size_t p = 0; p < parts; p++) {
    // Tuples on partition p: local index i -> key i * parts + p.
    const uint64_t local_tuples =
        (config_.num_tuples + parts - 1 - p) / parts;
    HotspotGenerator hotspot(local_tuples, hot_data, hot_access,
                             config_.seed * 1000 + p);
    Random rng(config_.seed * 7777 + p);
    queues[p].reserve(txns_per_part);
    for (uint64_t i = 0; i < txns_per_part; i++) {
      const uint64_t key = hotspot.Next() * parts + p;
      TxnTask task;
      task.key = key;
      if (rng.Percent(read_pct)) {
        task.fn = &YcsbReadTxn;
      } else {
        task.fn = &YcsbUpdateTxn;
        task.col = static_cast<uint32_t>(1 + rng.Uniform(10));
        task.off = static_cast<uint32_t>(queues[p].bytes.size());
        task.len = static_cast<uint32_t>(config_.field_size);
        rng.AppendString(config_.field_size, &queues[p].bytes);
      }
      queues[p].tasks.push_back(task);
    }
  }
  return queues;
}

}  // namespace nvmdb
