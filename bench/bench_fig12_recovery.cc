/// Fig. 12 — Recovery latency after a hard kill, as a function of the
/// number of transactions executed since the last checkpoint / MemTable
/// flush.
///
/// Expected shape (paper): InP and Log recovery latency grows linearly
/// with the transaction count (redo pass + index rebuild); NVM-InP and
/// NVM-Log are flat and sub-millisecond (undo-only); CoW and NVM-CoW have
/// no recovery process at all.
/// `--crash-at-event [event]` switches to crash-point mode: instead of a
/// clean kill at a transaction boundary, the run crashes at the given
/// durability event (a specific Persist/fsync mid-protocol — mid
/// group-commit flush, mid checkpoint, mid compaction) and measures
/// recovery from that torn moment. With no event argument (or 0), each
/// engine is crashed at the quartiles of its event stream.
#include <cstdio>
#include <cstring>

#include "nvm/crash_sim.h"
#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

/// Run `txns` YCSB balanced transactions WITHOUT letting the engine
/// checkpoint/flush, then crash and measure recovery.
uint64_t MeasureRecovery(EngineKind engine, uint64_t txns,
                         const char* workload) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;  // recovery measured on one partition's log
  // Keep everything in the recovery window: no checkpoints, huge
  // MemTable threshold, and a group-commit of 1 so every txn is in the
  // durable log.
  cfg.engine_config.checkpoint_interval_txns = 0;
  cfg.engine_config.memtable_threshold_bytes = 1ull << 40;
  cfg.engine_config.group_commit_size = 1;
  Database db(cfg);

  if (std::string(workload) == "ycsb") {
    YcsbConfig ycfg;
    ycfg.num_tuples = Scale().ycsb_tuples / 4;
    ycfg.num_txns = txns;
    ycfg.num_partitions = 1;
    ycfg.mixture = YcsbMixture::kBalanced;
    YcsbWorkload w(ycfg);
    Status ls = w.Load(&db);
    if (!ls.ok()) {
      ReportFailure("YCSB load (recovery)", ls);
      return 0;
    }
    Coordinator(&db).Run(w.GenerateQueues());
  } else {
    TpccConfig tcfg;
    tcfg.num_warehouses = 1;
    tcfg.num_txns = txns;
    tcfg.customers_per_district = 100;
    tcfg.items = 500;
    tcfg.initial_orders_per_district = 100;
    TpccWorkload w(tcfg);
    Status ls = w.Load(&db);
    if (!ls.ok()) {
      ReportFailure("TPC-C load (recovery)", ls);
      return 0;
    }
    Coordinator(&db).Run(w.GenerateQueues());
  }

  db.Crash();
  return db.Recover();
}

/// One crash-point run: execute the YCSB workload with a CrashSim armed at
/// absolute durability event `event` (events are numbered from the start
/// of the transaction phase; loading happens before the sim is installed),
/// crash onto the captured durable image, and measure recovery. Returns
/// recovery nanoseconds, or ~0 if the event never fired. `total_events`
/// receives the run's full event count.
uint64_t MeasureRecoveryAtEvent(EngineKind engine, uint64_t txns,
                                uint64_t event, uint64_t* total_events) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;
  cfg.engine_config.checkpoint_interval_txns = 0;
  cfg.engine_config.memtable_threshold_bytes = 1ull << 40;
  cfg.engine_config.group_commit_size = 1;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples / 4;
  ycfg.num_txns = txns;
  ycfg.num_partitions = 1;
  ycfg.mixture = YcsbMixture::kBalanced;
  YcsbWorkload w(ycfg);
  Status ls = w.Load(&db);
  if (!ls.ok()) {
    ReportFailure("YCSB load (crash-point)", ls);
    return ~0ull;
  }

  CrashSim sim;
  db.device()->set_crash_sim(&sim);
  if (event != 0) sim.Arm(event);
  Coordinator(&db).Run(w.GenerateQueues());
  *total_events = sim.event_count();
  sim.Disarm();
  db.device()->set_crash_sim(nullptr);

  if (event == 0) return 0;  // counting pass
  if (!sim.captured()) return ~0ull;
  db.CrashAt(sim);
  return db.Recover();
}

int CrashAtEventMain(uint64_t requested_event, uint64_t txns) {
  PrintHeader("Recovery latency (ms) crashing at a durability event");
  printf("%-12s%14s%14s%14s\n", "engine", "event", "of-total",
         "recovery-ms");
  for (EngineKind engine : AllEngines()) {
    uint64_t total = 0;
    // Counting pass sizes the event stream (deterministic workload).
    MeasureRecoveryAtEvent(engine, txns, 0, &total);
    std::vector<uint64_t> events;
    if (requested_event != 0) {
      events.push_back(requested_event);
    } else {
      for (int q = 1; q <= 4; q++) {
        const uint64_t e = total * q / 4;
        if (e != 0) events.push_back(e);
      }
    }
    for (uint64_t event : events) {
      if (event > total) {
        printf("%-12s%14llu%14s%14s\n", EngineKindName(engine),
               (unsigned long long)event, "-", "past-end");
        continue;
      }
      uint64_t ignored = 0;
      const uint64_t ns =
          MeasureRecoveryAtEvent(engine, txns, event, &ignored);
      printf("%-12s%14llu%13.0f%%%14.3f\n", EngineKindName(engine),
             (unsigned long long)event, 100.0 * event / total, ns / 1e6);
    }
  }
  printf(
      "\nEach row recovers from the durable image captured at that exact\n"
      "Persist/fsync event — mid group-commit, mid flush — not a clean\n"
      "transaction boundary (see DESIGN.md on the crash-sim event "
      "model).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && strcmp(argv[1], "--crash-at-event") == 0) {
    const uint64_t event = argc > 2 ? strtoull(argv[2], nullptr, 10) : 0;
    const uint64_t txns = EnvU64("NVMDB_CRASH_BENCH_TXNS", 1000);
    return CrashAtEventMain(event, txns);
  }
  const uint64_t txn_counts[] = {EnvU64("NVMDB_RECOVERY_TXNS_1", 500),
                                 EnvU64("NVMDB_RECOVERY_TXNS_2", 2000),
                                 EnvU64("NVMDB_RECOVERY_TXNS_3", 8000)};
  // CoW engines are included to demonstrate their "no recovery" property.
  for (const char* workload : {"ycsb", "tpcc"}) {
    char title[96];
    snprintf(title, sizeof(title),
             "Fig. 12%s: recovery latency (ms), %s",
             std::string(workload) == "ycsb" ? "a" : "b", workload);
    PrintHeader(title);
    printf("%-12s", "txns");
    for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
    printf("\n");
    for (uint64_t txns : txn_counts) {
      printf("%-12llu", (unsigned long long)txns);
      for (EngineKind engine : AllEngines()) {
        const uint64_t ns = MeasureRecovery(engine, txns, workload);
        printf("%12.3f", ns / 1e6);
      }
      printf("\n");
    }
  }
  printf(
      "\nPaper shape: InP/Log latency grows ~linearly with txn count;\n"
      "NVM-InP/NVM-Log flat (undo-only, < 1s); CoW/NVM-CoW near-zero (no\n"
      "recovery process) (Section 5.4, Fig. 12).\n");
  return ExitStatus();
}
