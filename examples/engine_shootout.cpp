/// Engine shootout: all six storage engines on one YCSB mixture, printing
/// the paper's headline comparison (throughput, wear, footprint) in a
/// single table. A miniature of Figs. 5/10/14 in one run.
///
/// Usage: example_engine_shootout [mixture: ro|rh|ba|wh]
#include <cstdio>
#include <cstring>

#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/ycsb.h"

using namespace nvmdb;

int main(int argc, char** argv) {
  YcsbMixture mixture = YcsbMixture::kBalanced;
  if (argc > 1) {
    if (strcmp(argv[1], "ro") == 0) mixture = YcsbMixture::kReadOnly;
    if (strcmp(argv[1], "rh") == 0) mixture = YcsbMixture::kReadHeavy;
    if (strcmp(argv[1], "ba") == 0) mixture = YcsbMixture::kBalanced;
    if (strcmp(argv[1], "wh") == 0) mixture = YcsbMixture::kWriteHeavy;
  }
  printf("YCSB %s, low skew, low-NVM latency (2x DRAM)\n\n",
         YcsbMixtureName(mixture));
  printf("%-10s %14s %14s %14s %12s\n", "engine", "txn/sec", "NVM stores",
         "stores vs InP", "footprint");

  uint64_t baseline_stores = 0;
  const EngineKind kinds[] = {EngineKind::kInP,    EngineKind::kCoW,
                              EngineKind::kLog,    EngineKind::kNvmInP,
                              EngineKind::kNvmCoW, EngineKind::kNvmLog};
  for (EngineKind kind : kinds) {
    DatabaseConfig cfg;
    cfg.num_partitions = 2;
    cfg.nvm_capacity = 512ull * 1024 * 1024;
    cfg.latency = NvmLatencyConfig::LowNvm();
    cfg.latency.use_clwb = true;
    cfg.cache.capacity_bytes = 1 << 20;
    cfg.engine = kind;
    Database db(cfg);

    YcsbConfig ycfg;
    ycfg.num_tuples = 5000;
    ycfg.num_txns = 8000;
    ycfg.num_partitions = cfg.num_partitions;
    ycfg.mixture = mixture;
    YcsbWorkload workload(ycfg);
    if (!workload.Load(&db).ok()) {
      fprintf(stderr, "load failed for %s\n", EngineKindName(kind));
      continue;
    }
    CounterSampler sampler(db.device());
    const RunResult result =
        Coordinator(&db).Run(workload.GenerateQueues());
    const CounterDelta delta = sampler.Delta();
    if (kind == EngineKind::kInP) baseline_stores = delta.stores;

    char rel[32];
    snprintf(rel, sizeof(rel), "%.2fx",
             baseline_stores == 0
                 ? 0.0
                 : static_cast<double>(delta.stores) /
                       static_cast<double>(baseline_stores));
    printf("%-10s %14.0f %14llu %14s %12s\n", EngineKindName(kind),
           result.Throughput(cfg.num_partitions),
           (unsigned long long)delta.stores, rel,
           FormatBytes(db.Footprint().total()).c_str());
  }
  printf(
      "\nPaper headline (Section 7): NVM-aware engines deliver up to 5.5x\n"
      "the throughput of their traditional counterparts while writing\n"
      "roughly half as much to the NVM device; NVM-InP wins overall.\n");
  return 0;
}
