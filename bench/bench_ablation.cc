/// Ablations for the design choices DESIGN.md calls out. Not a paper
/// figure — these isolate the mechanisms behind the paper's headline
/// numbers:
///
///  A. Group-commit size: amortizes durability cost but adds response
///     latency (Sections 3.1/4.1: NVM-InP "avoids the group commit wait").
///  B. Bloom filters on NVM-Log's immutable MemTables: the read-
///     amplification control of Section 4.3.
///  C. MemTable flush threshold for the Log engine: flush/compaction
///     frequency vs WAL length.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

struct SerialRun {
  double throughput;
  LatencySummary latency;
};

SerialRun RunYcsbSerial(EngineKind engine, const EngineConfig& overrides,
                        YcsbMixture mixture) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;  // latency attribution needs a single worker
  cfg.engine_config = overrides;
  auto db = std::make_unique<Database>(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples / 4;
  ycfg.num_txns = Scale().ycsb_txns / 4;
  ycfg.num_partitions = 1;
  ycfg.mixture = mixture;
  YcsbWorkload workload(ycfg);
  if (!workload.Load(db.get()).ok()) return {};

  CounterSampler sampler(db->device());
  Coordinator coordinator(db.get());
  const RunResult result =
      coordinator.RunSerial(0, workload.GenerateQueues()[0]);
  SerialRun out;
  out.throughput = DeriveThroughput(result.committed, result.wall_ns,
                                    sampler.Delta(),
                                    NvmLatencyConfig::LowNvm(), 1);
  out.latency = result.latency;
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation A: group-commit size vs throughput & response latency "
      "(YCSB write-heavy, 1 partition, low NVM latency)");
  printf("%-10s %6s %14s %14s %14s\n", "engine", "group", "txn/sec",
         "mean resp us", "p99 resp us");
  for (EngineKind engine :
       {EngineKind::kInP, EngineKind::kCoW, EngineKind::kNvmCoW,
        EngineKind::kNvmInP}) {
    for (size_t group : {1, 4, 16, 64}) {
      EngineConfig ec;
      ec.group_commit_size = group;
      const SerialRun r =
          RunYcsbSerial(engine, ec, YcsbMixture::kWriteHeavy);
      printf("%-10s %6zu %14.0f %14.2f %14.2f\n", EngineKindName(engine),
             group, r.throughput, r.latency.mean_ns / 1000.0,
             r.latency.p99_ns / 1000.0);
      fflush(stdout);
    }
  }
  printf(
      "\nShape: bigger groups raise throughput for the WAL/CoW engines but\n"
      "inflate response latency (txns wait for the group force); NVM-InP\n"
      "is flat — every commit is durable immediately (Section 4.1).\n");

  PrintHeader(
      "Ablation B: NVM-Log Bloom filters (read amplification control)");
  printf("%-12s %14s %14s\n", "blooms", "read-heavy", "balanced");
  for (bool use_blooms : {true, false}) {
    printf("%-12s", use_blooms ? "on" : "off");
    for (YcsbMixture mixture :
         {YcsbMixture::kReadHeavy, YcsbMixture::kBalanced}) {
      EngineConfig ec;
      ec.use_bloom_filters = use_blooms;
      // Small MemTables and a high compaction trigger leave many immutable
      // runs alive, which is when the filters earn their keep.
      ec.memtable_threshold_bytes = 16 * 1024;
      ec.lsm_level0_limit = 48;
      const SerialRun r = RunYcsbSerial(EngineKind::kNvmLog, ec, mixture);
      printf("%14.0f", r.throughput);
      fflush(stdout);
    }
    printf("\n");
  }
  printf(
      "\nShape: disabling the filters forces index look-ups in every\n"
      "immutable MemTable (Section 4.3). The margin stays small while\n"
      "compaction keeps the run count low — the filters are insurance\n"
      "against compaction lag.\n");

  PrintHeader("Ablation C: Log engine MemTable flush threshold");
  printf("%-14s %14s %14s\n", "threshold", "balanced", "write-heavy");
  for (size_t threshold :
       {64ull * 1024, 256ull * 1024, 1024ull * 1024, 4096ull * 1024}) {
    printf("%-14s", FormatBytes(threshold).c_str());
    for (YcsbMixture mixture :
         {YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy}) {
      EngineConfig ec;
      ec.memtable_threshold_bytes = threshold;
      const SerialRun r = RunYcsbSerial(EngineKind::kLog, ec, mixture);
      printf("%14.0f", r.throughput);
      fflush(stdout);
    }
    printf("\n");
  }
  printf(
      "\nShape: small MemTables flush constantly (SSTable churn +\n"
      "compaction); large ones batch writes — the log-structured\n"
      "trade-off of Section 3.3.\n");
  return 0;
}
