file(REMOVE_RECURSE
  "libnvmdb.a"
)
