#pragma once

#include <map>
#include <memory>

#include "engine/storage_engine.h"
#include "engine/wal.h"
#include "index/stx_btree.h"
#include "lsm/lsm_tree.h"
#include "lsm/memtable.h"

namespace nvmdb {

/// Traditional log-structured-updates engine (Section 3.3), modeled after
/// LevelDB: updates batch in a MemTable; when it exceeds a threshold it is
/// flushed to the filesystem as an immutable SSTable with a Bloom filter;
/// a leveled compaction bounds read amplification. A filesystem WAL makes
/// MemTable contents recoverable. Reads pay tuple coalescing: entries for
/// a key may be spread across the MemTable and several runs.
class LogEngine : public StorageEngine {
 public:
  explicit LogEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kLog; }

  Status CreateTable(const TableDef& def) override;
  Status Commit(uint64_t txn_id) override;
  Status Abort(uint64_t txn_id) override;
  Status Insert(uint64_t txn_id, uint32_t table_id,
                const Tuple& tuple) override;
  Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                const std::vector<ColumnUpdate>& updates) override;
  Status Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) override;
  Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                Tuple* out) override;
  Status ScanRange(uint64_t txn_id, uint32_t table_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(uint64_t, const Tuple&)>& fn)
      override;
  Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                         uint32_t index_id,
                         const std::vector<Value>& key_values,
                         std::vector<Tuple>* out) override;
  Status Recover() override;
  /// Force-flush all MemTables to SSTables and truncate the WAL.
  Status Checkpoint() override;
  /// Flush only the pending commit group; memtables stay in place.
  Status ForceDurable() override { return wal_->Flush(); }
  FootprintStats Footprint() const override;
  FootprintStats VolatileFootprint() const override;

  uint64_t LastDurableTxn() const override {
    return wal_->last_durable_txn();
  }

 private:
  struct Table {
    TableDef def;
    std::unique_ptr<MemTable> mem;
    std::unique_ptr<LsmTree> lsm;
    // Volatile secondary indexes over the whole table, rebuilt on recovery.
    std::map<uint32_t, std::unique_ptr<BTree<uint64_t, uint64_t>>>
        secondaries;
  };

  struct TxnAction {
    uint32_t table_id;
    uint64_t key;
    uint64_t record_off;  // record pushed into the MemTable
    // Secondary entries touched (for undo).
    std::vector<std::pair<uint32_t, uint64_t>> sec_added;    // idx, comp
    std::vector<std::pair<uint32_t, uint64_t>> sec_removed;  // idx, comp
  };

  Table* GetTable(uint32_t table_id);
  /// Reconstruct a tuple by coalescing MemTable + LSM records.
  bool GetTuple(Table* table, uint64_t key, Tuple* out);
  bool KeyExists(Table* table, uint64_t key);
  void FlushAllMemTables();
  void RebuildSecondaryIndexes();
  size_t TotalMemTableBytes() const;

  EngineConfig config_;
  Pmfs* fs_;
  PmemAllocator* allocator_;
  std::unique_ptr<Wal> wal_;
  std::map<uint32_t, Table> tables_;
  std::vector<TxnAction> txn_actions_;

  // Reused per-operation scratch (engines are partition-confined).
  DeltaRecordList lookup_records_;  // coalescing chains
  std::string wal_before_;
  std::string wal_after_;
  Tuple old_tuple_;     // update/delete old image
  Tuple new_tuple_;     // update new image (secondary maintenance)
  Tuple exists_scratch_;
};

}  // namespace nvmdb
