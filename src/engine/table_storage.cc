#include "engine/table_storage.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nvmdb {

// Varlen slot layout: u32 length, then the bytes.
namespace {
constexpr size_t kVarlenHeader = 4;
}

TableHeap::TableHeap(PmemAllocator* allocator, const Schema* schema,
                     bool nvm_aware)
    : allocator_(allocator),
      device_(allocator->device()),
      schema_(schema),
      nvm_aware_(nvm_aware),
      slot_size_(schema->FixedSize()) {}

uint64_t TableHeap::WriteVarlen(const Slice& value) {
  const uint64_t off = allocator_->Alloc(
      kVarlenHeader + value.size(), StorageTag::kTable,
      /*sync_header=*/!nvm_aware_);
  if (off == 0) return 0;
  // Header and payload are adjacent: one segmented write models the same
  // per-line stream as the two calls it replaces (a zero-length payload
  // segment models nothing, like the `if (!empty)` call it replaces).
  const uint32_t len = static_cast<uint32_t>(value.size());
  const NvmDevice::WriteSeg segs[2] = {{&len, 4}, {value.data(), len}};
  device_->WriteSegments(off, segs, 2);
  if (nvm_aware_) {
    allocator_->PersistPayloadAndMark(off, kVarlenHeader + value.size());
  }
  return off;
}

std::string TableHeap::ReadVarlen(uint64_t varlen_slot) const {
  // Peek the stored length straight from the working image — host-side
  // and unmodeled, so header + payload can be sized and then modeled as
  // ONE segmented read whose header segment re-reads the same bytes
  // through the instrumented path.
  uint32_t len = 0;
  memcpy(&len, device_->PtrAt(varlen_slot), 4);
  // A length can never exceed its slot's capacity; clamping costs nothing
  // on the simulated clock (header metadata is host-side) and keeps a
  // torn varlen payload from driving an out-of-bounds read in recovery.
  const size_t cap = allocator_->UsableSize(varlen_slot);
  if (len > cap - kVarlenHeader) len = static_cast<uint32_t>(cap - kVarlenHeader);
  std::string out(len, '\0');
  uint32_t stored_len = 0;
  const NvmDevice::ReadSeg segs[2] = {{&stored_len, 4}, {out.data(), len}};
  device_->ReadSegments(varlen_slot, segs, 2);
  return out;
}

void TableHeap::ReadVarlenInto(uint64_t varlen_slot, Tuple* out,
                               size_t col) const {
  uint32_t len = 0;
  memcpy(&len, device_->PtrAt(varlen_slot), 4);
  const size_t cap = allocator_->UsableSize(varlen_slot);
  if (len > cap - kVarlenHeader) len = static_cast<uint32_t>(cap - kVarlenHeader);
  char* dst = out->AppendStringUninit(col, len);
  uint32_t stored_len = 0;
  const NvmDevice::ReadSeg segs[2] = {{&stored_len, 4}, {dst, len}};
  device_->ReadSegments(varlen_slot, segs, 2);
}

uint64_t TableHeap::Insert(const Tuple& tuple, bool defer_mark) {
  const uint64_t slot = allocator_->Alloc(slot_size_, StorageTag::kTable);
  if (slot == 0) return 0;

  fixed_scratch_.assign(schema_->num_columns(), 0);
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar) {
      if (col.IsInlined()) {
        uint64_t inline_bytes = 0;
        const Slice s = tuple.GetString(i);
        memcpy(&inline_bytes, s.data(), std::min<size_t>(8, s.size()));
        fixed_scratch_[i] = inline_bytes;
      } else {
        const uint64_t voff = defer_mark
                                  ? AllocVarlenUnmarked(tuple.GetString(i))
                                  : WriteVarlen(tuple.GetString(i));
        if (voff == 0) return 0;
        fixed_scratch_[i] = voff;
      }
    } else {
      fixed_scratch_[i] = tuple.GetU64(i);
    }
  }
  device_->Write(slot, fixed_scratch_.data(), slot_size_);
  if (nvm_aware_ && !defer_mark) {
    allocator_->PersistPayloadAndMark(slot, slot_size_);
  }
  // defer_mark: nothing is synced yet — PersistTuple() runs after the WAL
  // entry referencing this slot is durable (Table 2's ordering).
  live_tuples_++;
  return slot;
}

void TableHeap::PersistTuple(uint64_t slot) {
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
      const uint64_t voff = ReadFieldRaw(slot, i);
      if (voff != 0) PersistVarlenAndMark(voff);
    }
  }
  allocator_->PersistPayloadAndMark(slot, slot_size_);
}

void TableHeap::PersistVarlenAndMark(uint64_t varlen_slot) {
  if (allocator_->StateOf(varlen_slot) ==
      PmemAllocator::SlotState::kPersisted) {
    return;
  }
  uint32_t len = 0;
  device_->Read(varlen_slot, &len, 4);
  allocator_->PersistPayloadAndMark(varlen_slot, kVarlenHeader + len);
}

void TableHeap::MarkTuplePersisted(uint64_t slot) {
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
      const uint64_t voff = ReadFieldRaw(slot, i);
      if (voff != 0) MarkVarlenPersisted(voff);
    }
  }
  MarkSlotPersisted(slot);
}

void TableHeap::Read(uint64_t slot, Tuple* out) const {
  out->Reset(schema_);
  fixed_scratch_.resize(schema_->num_columns());
  device_->Read(slot, fixed_scratch_.data(), slot_size_);
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar) {
      if (col.IsInlined()) {
        const char* p = reinterpret_cast<const char*>(&fixed_scratch_[i]);
        size_t len = 0;
        while (len < 8 && p[len] != '\0') len++;
        out->SetString(i, Slice(p, len));
      } else {
        ReadVarlenInto(fixed_scratch_[i], out, i);
      }
    } else {
      out->SetU64(i, fixed_scratch_[i]);
    }
  }
}

uint64_t TableHeap::ReadU64(uint64_t slot, size_t col) const {
  uint64_t v = 0;
  device_->Read(slot + schema_->FixedOffset(col), &v, 8);
  return v;
}

std::string TableHeap::ReadString(uint64_t slot, size_t col) const {
  uint64_t v = 0;
  device_->Read(slot + schema_->FixedOffset(col), &v, 8);
  const Column& c = schema_->column(col);
  if (c.IsInlined()) {
    const char* p = reinterpret_cast<const char*>(&v);
    size_t len = 0;
    while (len < 8 && p[len] != '\0') len++;
    return std::string(p, len);
  }
  return ReadVarlen(v);
}

void TableHeap::AppendString(uint64_t slot, size_t col,
                             std::string* out) const {
  uint64_t v = 0;
  device_->Read(slot + schema_->FixedOffset(col), &v, 8);
  const Column& c = schema_->column(col);
  if (c.IsInlined()) {
    const char* p = reinterpret_cast<const char*>(&v);
    size_t len = 0;
    while (len < 8 && p[len] != '\0') len++;
    out->append(p, len);
    return;
  }
  uint32_t len = 0;
  memcpy(&len, device_->PtrAt(v), 4);
  const size_t cap = allocator_->UsableSize(v);
  if (len > cap - kVarlenHeader) len = static_cast<uint32_t>(cap - kVarlenHeader);
  const size_t off = out->size();
  out->resize(off + len);
  uint32_t stored_len = 0;
  const NvmDevice::ReadSeg segs[2] = {{&stored_len, 4},
                                      {out->data() + off, len}};
  device_->ReadSegments(v, segs, 2);
}

Status TableHeap::Update(uint64_t slot,
                         const std::vector<ColumnUpdate>& updates,
                         std::vector<UndoField>* undo,
                         std::vector<uint64_t>* deferred_free) {
  for (const ColumnUpdate& u : updates) {
    const Column& col = schema_->column(u.column);
    const uint64_t field_off = slot + schema_->FixedOffset(u.column);
    uint64_t before = 0;
    device_->Read(field_off, &before, 8);

    uint64_t after;
    if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
      // Out-of-line: write the new value into a fresh varlen slot and swap
      // the pointer. The old slot is freed only after commit (or the new
      // one after abort) so both outcomes stay recoverable.
      after = WriteVarlen(u.value.str);
      if (after == 0) return Status::OutOfSpace("varlen slot");
      deferred_free->push_back(before);
    } else if (col.type == ColumnType::kVarchar) {
      after = 0;
      memcpy(&after, u.value.str.data(), std::min<size_t>(8, u.value.str.size()));
    } else {
      after = u.value.num;
    }
    if (undo != nullptr) {
      undo->push_back({static_cast<uint32_t>(u.column), before});
    }
    device_->Write(field_off, &after, 8);
    if (nvm_aware_) device_->Persist(field_off, 8);
  }
  return Status::OK();
}

void TableHeap::ApplyUndo(uint64_t slot, const UndoField& undo,
                          std::vector<uint64_t>* deferred_free) {
  const Column& col = schema_->column(undo.column);
  const uint64_t field_off = slot + schema_->FixedOffset(undo.column);
  if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
    uint64_t current = 0;
    device_->Read(field_off, &current, 8);
    if (current != undo.before && current != 0) {
      deferred_free->push_back(current);  // the update's new varlen slot
    }
  }
  device_->Write(field_off, &undo.before, 8);
  if (nvm_aware_) device_->Persist(field_off, 8);
}

void TableHeap::Free(uint64_t slot) {
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
      uint64_t voff = 0;
      device_->Read(slot + schema_->FixedOffset(i), &voff, 8);
      if (voff != 0) allocator_->Free(voff);
    }
  }
  allocator_->Free(slot);
  if (live_tuples_ > 0) live_tuples_--;
}

void TableHeap::FreeVarlen(uint64_t varlen_slot) {
  if (varlen_slot != 0) allocator_->Free(varlen_slot);
}

void TableHeap::FreeVarlenIfPersisted(uint64_t varlen_slot) {
  if (varlen_slot == 0) return;
  // Recovery hands this offsets read back from durable state; validate
  // before StateOf dereferences the slot header.
  if (!allocator_->ValidPayloadOffset(varlen_slot)) return;
  if (allocator_->StateOf(varlen_slot) ==
      PmemAllocator::SlotState::kPersisted) {
    allocator_->Free(varlen_slot);
  }
}

uint64_t TableHeap::AllocVarlenUnmarked(const Slice& value) {
  const uint64_t off =
      allocator_->Alloc(kVarlenHeader + value.size(), StorageTag::kTable);
  if (off == 0) return 0;
  const uint32_t len = static_cast<uint32_t>(value.size());
  const NvmDevice::WriteSeg segs[2] = {{&len, 4}, {value.data(), len}};
  device_->WriteSegments(off, segs, 2);
  // Nothing synced yet: PersistVarlenAndMark runs after the WAL entry
  // referencing this slot is durable.
  return off;
}

void TableHeap::MarkVarlenPersisted(uint64_t varlen_slot) {
  if (allocator_->StateOf(varlen_slot) ==
      PmemAllocator::SlotState::kAllocated) {
    allocator_->MarkPersisted(varlen_slot);
  }
}

uint64_t TableHeap::ReadFieldRaw(uint64_t slot, size_t col) const {
  uint64_t v = 0;
  device_->Read(slot + schema_->FixedOffset(col), &v, 8);
  return v;
}

void TableHeap::WriteFieldRaw(uint64_t slot, size_t col, uint64_t value,
                              bool persist) {
  const uint64_t field_off = slot + schema_->FixedOffset(col);
  device_->Write(field_off, &value, 8);
  if (nvm_aware_ && persist) device_->Persist(field_off, 8);
}

void TableHeap::PersistFieldSpan(uint64_t slot, size_t min_col,
                                 size_t max_col) {
  device_->Persist(slot + schema_->FixedOffset(min_col),
                   (max_col - min_col + 1) * 8);
}

bool TableHeap::TupleReadable(uint64_t slot) const {
  for (size_t i = 0; i < schema_->num_columns(); i++) {
    const Column& col = schema_->column(i);
    if (col.type == ColumnType::kVarchar && !col.IsInlined()) {
      uint64_t voff = 0;
      device_->Read(slot + schema_->FixedOffset(i), &voff, 8);
      if (!allocator_->ValidPayloadOffset(voff)) return false;
    }
  }
  return true;
}

void TableHeap::MarkSlotPersisted(uint64_t slot) {
  if (allocator_->StateOf(slot) == PmemAllocator::SlotState::kAllocated) {
    allocator_->MarkPersisted(slot);
  }
}

}  // namespace nvmdb
