#include "common/bloom_filter.h"

#include <algorithm>
#include <cstring>

namespace nvmdb {
namespace {

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  // FNV-1a 64-bit with a seed mix; adequate spread for filter probing.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  // k = ln(2) * bits/n, clamped to a sane range.
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

BloomFilter BloomFilter::Deserialize(const Slice& data) {
  BloomFilter f;
  if (data.size() < 1) {
    f.num_probes_ = 1;
    f.bits_.assign(8, 0);
    return f;
  }
  f.num_probes_ = static_cast<uint8_t>(data[data.size() - 1]);
  if (f.num_probes_ < 1) f.num_probes_ = 1;
  f.bits_.assign(data.data(), data.data() + data.size() - 1);
  if (f.bits_.empty()) f.bits_.assign(8, 0);
  return f;
}

void BloomFilter::AddHash(uint64_t h) {
  const uint64_t delta = (h >> 17) | (h << 47);
  const size_t bits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; i++) {
    const size_t pos = h % bits;
    bits_[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
    h += delta;
  }
}

bool BloomFilter::MayContainHash(uint64_t h) const {
  const uint64_t delta = (h >> 17) | (h << 47);
  const size_t bits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; i++) {
    const size_t pos = h % bits;
    if ((bits_[pos / 8] & (1u << (pos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

void BloomFilter::Add(const Slice& key) {
  AddHash(Hash64(key.data(), key.size(), 0));
}

void BloomFilter::Add(uint64_t key) { AddHash(Hash64(&key, sizeof(key), 0)); }

bool BloomFilter::MayContain(const Slice& key) const {
  return MayContainHash(Hash64(key.data(), key.size(), 0));
}

bool BloomFilter::MayContain(uint64_t key) const {
  return MayContainHash(Hash64(&key, sizeof(key), 0));
}

std::string BloomFilter::Serialize() const {
  std::string out(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  out.push_back(static_cast<char>(num_probes_));
  return out;
}

}  // namespace nvmdb
