/// Quickstart: create a database on emulated NVM, run transactions on the
/// NVM-aware in-place-updates engine, crash it, and watch it recover
/// instantly with all committed data intact.
#include <cstdio>

#include "testbed/database.h"
#include "testbed/stats.h"

using namespace nvmdb;

int main() {
  // 1. A database on a 64 MB emulated NVM device, low-NVM-latency profile
  //    (2x DRAM), one partition, NVM-InP engine.
  DatabaseConfig config;
  config.num_partitions = 1;
  config.nvm_capacity = 64ull * 1024 * 1024;
  config.latency = NvmLatencyConfig::LowNvm();
  config.engine = EngineKind::kNvmInP;
  Database db(config);

  // 2. A table: id (primary key), name, balance.
  TableDef def;
  def.table_id = 1;
  def.name = "accounts";
  def.schema = Schema({{"id", ColumnType::kUInt64, 8},
                       {"name", ColumnType::kVarchar, 32},
                       {"balance", ColumnType::kUInt64, 8}});
  db.CreateTable(def);
  StorageEngine* engine = db.partition(0);

  // 3. Insert a few accounts in one transaction.
  uint64_t txn = engine->Begin();
  for (uint64_t id = 1; id <= 5; id++) {
    Tuple t(&def.schema);
    t.SetU64(0, id);
    t.SetString(1, "account-" + std::to_string(id));
    t.SetU64(2, 100 * id);
    engine->Insert(txn, 1, t);
  }
  engine->Commit(txn);

  // 4. Transfer 50 from account 1 to account 2 — committed.
  txn = engine->Begin();
  engine->Update(txn, 1, 1, {{2, Value::U64(50)}});
  engine->Update(txn, 1, 2, {{2, Value::U64(250)}});
  engine->Commit(txn);

  // 5. Start another transfer but crash mid-transaction.
  txn = engine->Begin();
  engine->Update(txn, 1, 3, {{2, Value::U64(0)}});
  printf("power failure!\n");
  db.Crash();

  // 6. Recovery: undo-only, so it is near-instant and independent of how
  //    many transactions ran before the crash.
  const uint64_t recovery_ns = db.Recover();
  printf("recovered in %.3f ms\n", recovery_ns / 1e6);

  engine = db.partition(0);
  txn = engine->Begin();
  for (uint64_t id = 1; id <= 5; id++) {
    Tuple t;
    if (engine->Select(txn, 1, id, &t).ok()) {
      printf("  id=%llu name=%.*s balance=%llu\n",
             (unsigned long long)id, (int)t.GetString(1).size(),
             t.GetString(1).data(), (unsigned long long)t.GetU64(2));
    }
  }
  engine->Commit(txn);

  const NvmCounters counters = db.device()->counters();
  printf("NVM loads=%llu stores=%llu syncs=%llu\n",
         (unsigned long long)counters.loads,
         (unsigned long long)counters.stores,
         (unsigned long long)counters.sync_calls);
  printf("footprint: %s\n", FormatBytes(db.Footprint().total()).c_str());
  return 0;
}
