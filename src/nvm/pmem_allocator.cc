#include "nvm/pmem_allocator.h"

#include <cassert>
#include <cstring>

namespace nvmdb {

namespace {
constexpr uint64_t kRegionMagic = 0x4E564D44425F5632ULL;  // "NVMDB_V2"
constexpr uint32_t kSlotMagic = 0x534C4F54;               // "SLOT"
constexpr size_t kCatalogEntries = 256;
constexpr size_t kNameBytes = 40;
constexpr size_t kMinClass = 16;

size_t SizeClass(size_t n) {
  // Quarter-step size classes (16, 32, 48, 64, 80, 96, 112, 128, 160, ...):
  // internal fragmentation is bounded by 25%, which matters for the
  // footprint comparisons of Fig. 14 — ~1 KB tuples must not burn 2 KB
  // slots. Classes stay aligned to 16 bytes.
  if (n <= kMinClass) return kMinClass;
  size_t pow2 = kMinClass;
  while (pow2 < n) pow2 <<= 1;
  if (pow2 == n || pow2 <= 64) return pow2;
  const size_t step = pow2 / 8;
  const size_t base = pow2 / 2;
  return base + (n - base + step - 1) / step * step;
}
}  // namespace

struct PmemAllocator::SlotHeader {
  uint64_t capacity;  // payload capacity (a power-of-two size class)
  uint16_t state;
  uint16_t tag;
  uint32_t magic;
};

struct PmemAllocator::RegionHeader {
  uint64_t magic;
  uint64_t version;
  uint64_t heap_start;
  uint64_t high_water;
  struct CatalogEntry {
    char name[kNameBytes];
    uint64_t offset;
  } catalog[kCatalogEntries];
};

PmemAllocator::PmemAllocator(NvmDevice* device, bool format,
                             bool eager_state_sync)
    : device_(device), eager_state_sync_(eager_state_sync) {
  static_assert(sizeof(SlotHeader) == 16, "slot header layout");
  RegionHeader* h = header();
  if (format || h->magic != kRegionMagic) {
    Format();
  } else {
    Recover();
  }
}

PmemAllocator::RegionHeader* PmemAllocator::header() const {
  return reinterpret_cast<RegionHeader*>(device_->PtrAt(0));
}

PmemAllocator::SlotHeader* PmemAllocator::SlotAt(uint64_t slot_offset) const {
  return reinterpret_cast<SlotHeader*>(device_->PtrAt(slot_offset));
}

void PmemAllocator::PersistHeaderField(const void* field, size_t n) {
  device_->Persist(field, n);
}

void PmemAllocator::Format() {
  RegionHeader* h = header();
  memset(h, 0, sizeof(RegionHeader));
  h->magic = kRegionMagic;
  h->version = 2;
  h->heap_start = (sizeof(RegionHeader) + 4095) / 4096 * 4096;
  h->high_water = h->heap_start;
  device_->TouchWrite(h, sizeof(RegionHeader));
  device_->Persist(h, sizeof(RegionHeader));

  free_lists_.clear();
  rotate_.clear();
  memset(used_by_tag_, 0, sizeof(used_by_tag_));
  total_used_ = 0;
  device_->allocated_bytes.store(0);
}

uint64_t PmemAllocator::Alloc(size_t size, StorageTag tag,
                              bool sync_header) {
  ScopedStallTag stall_tag(StallTag::kAllocator);
  if (size == 0) size = 1;
  const size_t cls = SizeClass(size);
  std::lock_guard<std::mutex> guard(mu_);

  uint64_t slot_off = PopFree(cls);
  SlotHeader* slot;
  if (slot_off != 0) {
    slot = SlotAt(slot_off);
    assert(slot->magic == kSlotMagic && slot->capacity >= cls);
    slot->state = static_cast<uint16_t>(SlotState::kAllocated);
    slot->tag = static_cast<uint16_t>(tag);
    device_->TouchWrite(slot, sizeof(SlotHeader));
    // Reused slot: its durable state is still kFree, which is exactly what
    // recovery should see until the owner persists the payload + state.
  } else {
    RegionHeader* h = header();
    slot_off = h->high_water;
    const uint64_t end = slot_off + sizeof(SlotHeader) + cls;
    if (end > device_->capacity()) return 0;  // out of NVM
    slot = SlotAt(slot_off);
    slot->capacity = cls;
    slot->state = static_cast<uint16_t>(SlotState::kAllocated);
    slot->tag = static_cast<uint16_t>(tag);
    slot->magic = kSlotMagic;
    device_->TouchWrite(slot, sizeof(SlotHeader));
    // A fresh header must be durable before any *later* slot persists, or
    // the recovery walk would stop short of live data; skipping is only
    // safe under the sync_header=false contract above.
    if (sync_header) device_->Persist(slot, sizeof(SlotHeader));
    // The high-water mark is volatile: recovery re-derives it by walking
    // the heap until the first slot without a durable magic, so growing
    // the heap costs exactly one sync (the header persist above).
    h->high_water = end;
    device_->TouchWrite(&h->high_water, sizeof(h->high_water));
  }

  const uint64_t cap = SlotAt(slot_off)->capacity;
  used_by_tag_[static_cast<size_t>(tag) %
               static_cast<size_t>(StorageTag::kCount)] += cap;
  total_used_ += cap;
  device_->allocated_bytes.fetch_add(cap, std::memory_order_relaxed);
  return slot_off + sizeof(SlotHeader);
}

void PmemAllocator::MarkPersisted(uint64_t payload_offset) {
  SlotHeader* slot = SlotAt(payload_offset - sizeof(SlotHeader));
  assert(slot->magic == kSlotMagic);
  slot->state = static_cast<uint16_t>(SlotState::kPersisted);
  device_->TouchWrite(&slot->state, sizeof(slot->state));
  device_->Persist(&slot->state, sizeof(slot->state));
}

void PmemAllocator::PersistPayloadAndMark(uint64_t payload_offset,
                                          size_t payload_len) {
  SlotHeader* slot = SlotAt(payload_offset - sizeof(SlotHeader));
  assert(slot->magic == kSlotMagic);
  slot->state = static_cast<uint16_t>(SlotState::kPersisted);
  device_->TouchWrite(&slot->state, sizeof(slot->state));
  device_->Persist(payload_offset - sizeof(SlotHeader),
                   sizeof(SlotHeader) + payload_len);
}

bool PmemAllocator::ValidPayloadOffset(uint64_t payload_offset) const {
  if (payload_offset < sizeof(SlotHeader) ||
      payload_offset % kMinClass != 0) {
    return false;
  }
  const uint64_t slot_off = payload_offset - sizeof(SlotHeader);
  if (slot_off < header()->heap_start ||
      slot_off + sizeof(SlotHeader) > device_->capacity()) {
    return false;
  }
  return SlotAt(slot_off)->magic == kSlotMagic;
}

void PmemAllocator::Free(uint64_t payload_offset) {
  ScopedStallTag stall_tag(StallTag::kAllocator);
  // A garbage pointer here is a legitimate recovery input (a torn tuple's
  // varlen offset), not a caller bug — reject it instead of asserting.
  if (!ValidPayloadOffset(payload_offset)) return;
  const uint64_t slot_off = payload_offset - sizeof(SlotHeader);
  SlotHeader* slot = SlotAt(slot_off);
  std::lock_guard<std::mutex> guard(mu_);
  if (slot->state == static_cast<uint16_t>(SlotState::kFree)) {
    // Already free: either the crash hit mid-way through a multi-slot free
    // and recovery is re-running it, or the allocator walk in Recover()
    // already reclaimed this slot. Pushing it again would hand the same
    // offset out twice.
    return;
  }
  const size_t tag_idx = slot->tag % static_cast<size_t>(StorageTag::kCount);
  slot->state = static_cast<uint16_t>(SlotState::kFree);
  device_->TouchWrite(&slot->state, sizeof(slot->state));
  device_->Persist(&slot->state, sizeof(slot->state));
  if (used_by_tag_[tag_idx] >= slot->capacity) {
    used_by_tag_[tag_idx] -= slot->capacity;
  }
  if (total_used_ >= slot->capacity) total_used_ -= slot->capacity;
  device_->allocated_bytes.fetch_sub(slot->capacity,
                                     std::memory_order_relaxed);
  PushFree(slot_off, slot->capacity);
}

size_t PmemAllocator::UsableSize(uint64_t payload_offset) const {
  const SlotHeader* slot = SlotAt(payload_offset - sizeof(SlotHeader));
  assert(slot->magic == kSlotMagic);
  return slot->capacity;
}

PmemAllocator::SlotState PmemAllocator::StateOf(
    uint64_t payload_offset) const {
  const SlotHeader* slot = SlotAt(payload_offset - sizeof(SlotHeader));
  assert(slot->magic == kSlotMagic);
  return static_cast<SlotState>(slot->state);
}

void PmemAllocator::PushFree(uint64_t slot_offset, size_t payload_size) {
  free_lists_[payload_size].push_back(slot_offset);
}

uint64_t PmemAllocator::PopFree(size_t payload_size) {
  // Best fit: smallest class that can hold the request. Within a class,
  // rotate through the entries so repeatedly-recycled sizes spread their
  // writes across different slots (wear leveling).
  auto it = free_lists_.lower_bound(payload_size);
  while (it != free_lists_.end() && it->second.empty()) ++it;
  if (it == free_lists_.end()) return 0;
  auto& list = it->second;
  size_t& rot = rotate_[it->first];
  if (rot >= list.size()) rot = 0;
  const uint64_t slot_off = list[rot];
  list[rot] = list.back();
  list.pop_back();
  if (!list.empty()) rot = (rot + 1) % list.size();
  return slot_off;
}

Status PmemAllocator::SetRoot(const std::string& name, uint64_t offset) {
  if (name.empty() || name.size() >= kNameBytes) {
    return Status::InvalidArgument("root name length");
  }
  std::lock_guard<std::mutex> guard(mu_);
  RegionHeader* h = header();
  RegionHeader::CatalogEntry* empty = nullptr;
  for (auto& e : h->catalog) {
    if (strncmp(e.name, name.c_str(), kNameBytes) == 0) {
      e.offset = offset;
      if (offset == 0) memset(e.name, 0, kNameBytes);
      device_->TouchWrite(&e, sizeof(e));
      device_->Persist(&e, sizeof(e));
      return Status::OK();
    }
    if (empty == nullptr && e.name[0] == '\0') empty = &e;
  }
  if (offset == 0) return Status::OK();  // clearing a non-existent binding
  if (empty == nullptr) return Status::OutOfSpace("root catalog full");
  // Write the offset first, then the name: an entry becomes visible to
  // recovery only once its name is durable.
  empty->offset = offset;
  device_->TouchWrite(&empty->offset, sizeof(empty->offset));
  device_->Persist(&empty->offset, sizeof(empty->offset));
  strncpy(empty->name, name.c_str(), kNameBytes - 1);
  device_->TouchWrite(empty->name, kNameBytes);
  device_->Persist(empty->name, kNameBytes);
  return Status::OK();
}

uint64_t PmemAllocator::GetRoot(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  const RegionHeader* h = header();
  for (const auto& e : h->catalog) {
    if (strncmp(e.name, name.c_str(), kNameBytes) == 0) return e.offset;
  }
  return 0;
}

void PmemAllocator::Recover() {
  std::lock_guard<std::mutex> guard(mu_);
  free_lists_.clear();
  rotate_.clear();
  memset(used_by_tag_, 0, sizeof(used_by_tag_));
  total_used_ = 0;

  RegionHeader* h = header();
  assert(h->magic == kRegionMagic);
  uint64_t off = h->heap_start;
  // Walk until the first header that was never made durable; that is the
  // true high-water mark (headers are persisted in allocation order).
  while (off + sizeof(SlotHeader) <= device_->capacity()) {
    SlotHeader* slot = SlotAt(off);
    if (slot->magic != kSlotMagic) break;  // heap end or torn tail
    if (slot->state == static_cast<uint16_t>(SlotState::kAllocated)) {
      // Allocated but never persisted by its owner before the crash:
      // reclaim it (the paper's non-volatile-memory-leak prevention).
      slot->state = static_cast<uint16_t>(SlotState::kFree);
      device_->TouchWrite(&slot->state, sizeof(slot->state));
      device_->Persist(&slot->state, sizeof(slot->state));
    }
    if (slot->state == static_cast<uint16_t>(SlotState::kFree)) {
      PushFree(off, slot->capacity);
    } else {
      const size_t tag_idx =
          slot->tag % static_cast<size_t>(StorageTag::kCount);
      used_by_tag_[tag_idx] += slot->capacity;
      total_used_ += slot->capacity;
    }
    off += sizeof(SlotHeader) + slot->capacity;
  }
  h->high_water = off;
  device_->TouchWrite(&h->high_water, sizeof(h->high_water));
  device_->allocated_bytes.store(total_used_, std::memory_order_relaxed);
}

Status PmemAllocator::AuditHeap(uint64_t* live_slots) const {
  std::lock_guard<std::mutex> guard(mu_);
  const RegionHeader* h = header();
  if (h->magic != kRegionMagic) return Status::Corruption("region magic");
  if (h->heap_start < sizeof(RegionHeader) ||
      h->heap_start > device_->capacity()) {
    return Status::Corruption("heap_start out of range");
  }
  uint64_t live = 0;
  uint64_t off = h->heap_start;
  while (off + sizeof(SlotHeader) <= device_->capacity()) {
    const SlotHeader* slot = SlotAt(off);
    if (slot->magic != kSlotMagic) break;  // clean heap end
    if (slot->state != static_cast<uint16_t>(SlotState::kFree) &&
        slot->state != static_cast<uint16_t>(SlotState::kAllocated) &&
        slot->state != static_cast<uint16_t>(SlotState::kPersisted)) {
      return Status::Corruption("slot state at offset " + std::to_string(off));
    }
    if (slot->capacity == 0 || slot->capacity % kMinClass != 0) {
      return Status::Corruption("slot capacity at offset " +
                                std::to_string(off));
    }
    const uint64_t end = off + sizeof(SlotHeader) + slot->capacity;
    if (end > device_->capacity()) {
      return Status::Corruption("slot overruns region at offset " +
                                std::to_string(off));
    }
    if (slot->state == static_cast<uint16_t>(SlotState::kPersisted)) live++;
    off = end;
  }
  if (live_slots != nullptr) *live_slots = live;
  return Status::OK();
}

AllocatorStats PmemAllocator::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  AllocatorStats s;
  memcpy(s.used_by_tag, used_by_tag_, sizeof(used_by_tag_));
  s.total_used = total_used_;
  s.high_water = header()->high_water;
  return s;
}

uint64_t PmemAllocator::heap_start() const { return header()->heap_start; }
uint64_t PmemAllocator::high_water() const { return header()->high_water; }

}  // namespace nvmdb
