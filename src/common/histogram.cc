#include "common/histogram.h"

namespace nvmdb {

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

uint64_t LatencyHistogram::Percentile(double pct) const {
  if (count_ == 0) return 0;
  const uint64_t hundredths =
      static_cast<uint64_t>(pct * 100.0 + 0.5);  // p99.9 -> 9990
  uint64_t rank = (hundredths * count_ + 9999) / 10000;  // ceil
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i];
    if (seen >= rank) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

LatencySummary LatencyHistogram::Summarize() const {
  LatencySummary s;
  s.count = count_;
  s.mean_ns = Mean();
  s.p50_ns = Percentile(50.0);
  s.p95_ns = Percentile(95.0);
  s.p99_ns = Percentile(99.0);
  s.p999_ns = Percentile(99.9);
  s.max_ns = max_;
  return s;
}

}  // namespace nvmdb
