# Empty compiler generated dependencies file for example_engine_shootout.
# This may be replaced when dependencies are built.
