#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/slice.h"
#include "index/stx_btree.h"
#include "lsm/delta.h"
#include "nvm/pmem_allocator.h"

namespace nvmdb {

/// MemTable of the traditional Log engine (Section 3.3): per-key chains of
/// delta records stored in allocator memory (instrumented, treated as
/// volatile), indexed by a volatile B+tree. The NVM-Log engine has its own
/// persistent twin (NvMemTable) in the engine module.
///
/// Record layout in NVM: u64 next, u8 kind, u8 pad[3], u32 len, payload.
class MemTable {
 public:
  MemTable(PmemAllocator* allocator, size_t index_node_bytes);
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Prepend a record to the key's chain. Returns the record offset.
  uint64_t Push(uint64_t key, DeltaKind kind, const Slice& payload);

  /// Remove the newest record of `key` if it is `record_off` (undo path).
  bool PopNewest(uint64_t key, uint64_t record_off);

  /// Collect the key's records newest-first. The pool form appends into a
  /// reusable DeltaRecordList (the per-lookup hot path).
  void Collect(uint64_t key, std::vector<DeltaRecord>* out) const;
  void Collect(uint64_t key, DeltaRecordList* out) const;
  bool ContainsKey(uint64_t key) const;

  /// Ordered iteration over all keys with their chains (flush/compaction).
  void ForEachKey(const std::function<void(
                      uint64_t, const std::vector<DeltaRecord>&)>& fn) const;

  /// Keys in [lo, hi] (range-scan support).
  void CollectKeysInRange(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* out) const;

  /// Bytes of record payloads held (flush-threshold signal).
  size_t ApproxBytes() const { return approx_bytes_; }
  size_t KeyCount() const { return index_.size(); }

  /// Free every record (table teardown / post-flush).
  void ReleaseAll();

 private:
  struct RecordHeader {
    uint64_t next;
    uint8_t kind;
    uint8_t pad[3];
    uint32_t length;
  };

  PmemAllocator* allocator_;
  NvmDevice* device_;
  BTree<uint64_t, uint64_t> index_;  // key -> newest record offset
  size_t approx_bytes_ = 0;
};

}  // namespace nvmdb
