#include "engine/checkpoint.h"

#include <cstring>

#include "common/compress.h"
#include "common/crc32.h"
#include "common/trace.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

Status WriteCheckpoint(Pmfs* fs, const std::string& file_name,
                       const std::string& payload) {
  ScopedStallTag tag(StallTag::kCheckpoint);
  const uint64_t trace_start = fs->device()->TotalStallNanos();
  const std::string compressed = LzCompress(payload);
  std::string out;
  const uint32_t crc = Crc32c(compressed.data(), compressed.size());
  const uint64_t len = compressed.size();
  out.append(reinterpret_cast<const char*>(&crc), 4);
  out.append(reinterpret_cast<const char*>(&len), 8);
  out.append(compressed);

  // Write to a temp file and swap in: a crash mid-checkpoint must not
  // destroy the previous checkpoint.
  const std::string tmp = file_name + ".tmp";
  fs->Delete(tmp);
  Pmfs::Fd fd = fs->Open(tmp, /*create=*/true, StorageTag::kCheckpoint);
  if (fd < 0) return Status::IOError("checkpoint open");
  Status s = fs->Write(fd, 0, out.data(), out.size());
  if (s.ok()) s = fs->Fsync(fd);
  fs->Close(fd);
  if (!s.ok()) return s;
  fs->Delete(file_name);
  // Rename-by-copy: rewrite under the final name (pmfs has no rename).
  fd = fs->Open(file_name, /*create=*/true, StorageTag::kCheckpoint);
  if (fd < 0) return Status::IOError("checkpoint final open");
  s = fs->Write(fd, 0, out.data(), out.size());
  if (s.ok()) s = fs->Fsync(fd);
  fs->Close(fd);
  fs->Delete(tmp);
  if (TraceWriter* trace = NvmEnv::Trace()) {
    const uint64_t now = fs->device()->TotalStallNanos();
    trace->Span("checkpoint_write", "checkpoint", trace_start,
                now - trace_start, 0);
  }
  return s;
}

namespace {

Status ReadCheckpointFile(Pmfs* fs, const std::string& file_name,
                          std::string* payload) {
  if (!fs->Exists(file_name)) return Status::NotFound(file_name);
  Pmfs::Fd fd = fs->Open(file_name, /*create=*/false);
  if (fd < 0) return Status::IOError("checkpoint open");
  const uint64_t size = fs->Size(fd);
  std::string data(size, '\0');
  size_t got = 0;
  Status s = fs->Read(fd, 0, data.data(), size, &got);
  fs->Close(fd);
  if (!s.ok()) return s;
  if (got < 12) return Status::Corruption("checkpoint too small");
  uint32_t crc;
  uint64_t len;
  memcpy(&crc, data.data(), 4);
  memcpy(&len, data.data() + 4, 8);
  if (got < 12 + len) return Status::Corruption("checkpoint truncated");
  if (Crc32c(data.data() + 12, len) != crc) {
    return Status::Corruption("checkpoint crc mismatch");
  }
  if (!LzDecompress(Slice(data.data() + 12, len), payload)) {
    return Status::Corruption("checkpoint decompress");
  }
  return Status::OK();
}

}  // namespace

Status ReadCheckpoint(Pmfs* fs, const std::string& file_name,
                      std::string* payload) {
  Status s = ReadCheckpointFile(fs, file_name, payload);
  if (s.ok()) return s;
  // A crash inside WriteCheckpoint's swap window (after the old final file
  // is deleted, before the new one is durable) leaves the final name
  // missing or torn while the fsync'd temp copy is still whole. The temp
  // copy is only ever deleted after the final file is durable, so falling
  // back to it can never resurrect a stale checkpoint.
  payload->clear();
  Status tmp = ReadCheckpointFile(fs, file_name + ".tmp", payload);
  if (tmp.ok()) return tmp;
  payload->clear();
  return s;
}

}  // namespace nvmdb
