#include "common/config.h"

#include <cstdlib>

namespace nvmdb {

uint64_t EnvU64(const char* name, uint64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return strtoull(v, nullptr, 10);
}

double EnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return strtod(v, nullptr);
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return v;
}

}  // namespace nvmdb
