#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "nvm/cache_probe.h"

/// Debug-build owner checks: in kOwner mode the cache records the first
/// accessing thread and aborts on any access from another thread, making
/// silent cross-thread use of a zero-synchronization cache impossible.
/// Compiled out under NDEBUG (the hot path must stay branch-free in
/// release builds); define NVMDB_FORCE_OWNER_CHECKS to keep them in an
/// optimized build (the sanitizer CI job does).
#if !defined(NDEBUG) || defined(NVMDB_FORCE_OWNER_CHECKS)
#define NVMDB_OWNER_CHECKS 1
#else
#define NVMDB_OWNER_CHECKS 0
#endif

/// Debug-build stream checks: AccessSegments re-derives the uncoalesced
/// per-line visit sequence of the segments it was handed and aborts if the
/// coalesced walk diverged from it — the executable statement of the
/// coalescing contract (a merged call must visit exactly the lines, in
/// exactly the order, with exactly the duplicate boundary visits, that the
/// separate calls it replaced would have). Same build gating as the owner
/// checks, and forced by the same CI sanitizer job.
#if !defined(NDEBUG) || defined(NVMDB_FORCE_OWNER_CHECKS)
#define NVMDB_STREAM_CHECKS 1
#else
#define NVMDB_STREAM_CHECKS 0
#endif

namespace nvmdb {

/// Synchronization discipline of a CacheSim / NvmDevice instance.
///
/// Since the benchmark-grid scheduler made every cell strictly
/// thread-confined (one cell = one pool thread, Coordinator::Run
/// single-threaded), the per-access bank mutex and atomic counter adds
/// pay for contention that cannot occur on those paths. kOwner removes
/// them: the hot loop takes no locks and counts with plain increments.
/// The model itself is identical in both modes — same hit/miss/write-back
/// sequences, same counters (the golden-model and determinism tests
/// assert this); only the synchronization around it differs.
enum class ConcurrencyMode : uint8_t {
  /// Exactly one thread ever accesses the instance (thread-confined
  /// benchmark cells, single-threaded tests). Zero synchronization on the
  /// access path; debug builds assert the confinement.
  kOwner,
  /// Multiple threads may access concurrently: per-bank lock striping,
  /// exact counters under the bank locks (the pre-existing behavior).
  kShared,
};

/// Effective mode for an instance requesting `requested`:
/// NVMDB_SHARED_CACHE=1 in the environment forces kShared everywhere (a
/// debugging escape hatch, e.g. to rule the owner fast path out of a
/// miscounting suspicion). Consulted at construction time only.
ConcurrencyMode ResolveConcurrencyMode(ConcurrencyMode requested);

/// Configuration for the simulated CPU cache in front of NVM.
/// Defaults model the L3 of the paper's Intel Xeon E5-4620 testbed
/// (20 MB, 64 B lines).
///
/// Geometry is normalized at construction so the hot-path address→slot
/// mapping is pure shift+mask: `line_size` and the total set count are
/// rounded up to powers of two, and the bank count is rounded down to a
/// power of two (never exceeding the requested striping). Configurations
/// whose derived geometry is already power-of-two — every benchmark and
/// test config in this repo — are unaffected; the 20 MB default rounds up
/// to an effective 32 MB.
struct CacheConfig {
  size_t capacity_bytes = 20ull * 1024 * 1024;
  size_t line_size = 64;
  size_t associativity = 16;
  size_t num_banks = 16;  // lock striping (used by kShared only)
  /// kOwner is the repo-wide default: every database/device is built and
  /// driven on one thread (see ConcurrencyMode). Multi-threaded users of
  /// a *single* instance must select kShared explicitly.
  ConcurrencyMode mode = ConcurrencyMode::kOwner;
  /// Pin the portable scalar set probe regardless of what the CPU
  /// supports (the NVMDB_FORCE_SCALAR_PROBE environment variable and the
  /// compile-time define of the same name do the same thing; see
  /// ResolveProbeKind). The model is identical either way — this exists
  /// so tests and benchmarks can compare the implementations.
  bool force_scalar_probe = false;
};

/// Effective probe implementation for an instance requesting
/// `force_scalar`: a compile-time -DNVMDB_FORCE_SCALAR_PROBE, the
/// NVMDB_FORCE_SCALAR_PROBE environment variable, or the config flag pin
/// the scalar loop; otherwise the best instruction set this CPU supports
/// (AVX2 when the binary carries the -mavx2 translation unit, else SSE2 on
/// x86-64, else scalar). Consulted at construction time only.
ProbeKind ResolveProbeKind(bool force_scalar);

/// Events the cache raises toward the owning device. Raw function
/// pointers + context rather than std::function: these fire on every
/// dirty eviction in the simulator's inner loop, and a std::function call
/// costs an indirect dispatch plus potential allocation that profiles as
/// a top-three entry in the access path.
struct CacheCallbacks {
  using LineEventFn = void (*)(void* ctx, uint64_t line_addr,
                               size_t line_size);
  /// A dirty line is being written back to NVM (eviction, flush, or
  /// writeback-all). `line_addr` is the region offset of the line start.
  LineEventFn write_back = nullptr;
  /// A line is being filled from NVM (miss).
  LineEventFn fill = nullptr;
  /// Opaque pointer passed through to both callbacks.
  void* ctx = nullptr;
};

/// What one Access() call did, so the caller can charge all simulated
/// costs (miss latency, hit latency, write-back bandwidth) with a single
/// accumulation instead of per-line bookkeeping.
struct CacheAccessResult {
  uint32_t missed = 0;       // lines not found resident
  uint32_t write_backs = 0;  // dirty victims evicted to NVM
  /// Total per-line visits the call performed (hits = lines - missed).
  /// Filled by AccessSegments only: AccessEx callers derive the count
  /// from the byte range arithmetically, but a segmented access can visit
  /// a boundary line once per touching segment, so the cache reports it.
  uint32_t lines = 0;
};

/// Set-associative write-back, write-allocate cache simulator.
///
/// This is the substitute for the microcode-level latency injection in the
/// Intel Labs hardware emulator: every instrumented access to the NVM
/// region passes through this model. Misses correspond to NVM *loads* and
/// dirty write-backs to NVM *stores* — the same counters the paper reads
/// via `perf` (Section 5.3). A crash (`DropDirty`) discards dirty lines,
/// which is how data that was never flushed gets lost.
///
/// Line metadata lives in one flat contiguous array of packed 8-byte
/// entries (line index + dirty bit) with a parallel LRU-stamp array,
/// indexed [bank][set][way]; no per-set or per-way heap nodes exist, so a
/// set probe is a short linear scan over adjacent memory.
///
/// Synchronization is selected at construction (ConcurrencyMode): the
/// public entry points dispatch once per call into an inner loop
/// instantiated for the chosen mode, so kOwner pays neither locks nor a
/// per-line mode branch.
class CacheSim {
 public:
  /// True when cross-thread owner-mode accesses abort (debug builds).
  static constexpr bool kOwnerChecksEnabled = NVMDB_OWNER_CHECKS != 0;

  CacheSim(const CacheConfig& config, CacheCallbacks callbacks);

  /// Mode the instance actually runs in (after the NVMDB_SHARED_CACHE
  /// override).
  ConcurrencyMode mode() const { return mode_; }

  /// Touch [addr, addr+size). Write hits mark lines dirty; write misses
  /// allocate. Returns per-call miss and write-back counts.
  CacheAccessResult AccessEx(uint64_t addr, size_t size, bool is_write);

  /// Compatibility shim: number of missed lines only.
  size_t Access(uint64_t addr, size_t size, bool is_write) {
    return AccessEx(addr, size, is_write).missed;
  }

  /// Model `num_segments` adjacent sub-ranges in ONE call: segment s
  /// covers lens[s] bytes starting where segment s-1 ended (the first at
  /// `addr`). The per-line visit sequence — and therefore every counter,
  /// LRU stamp, eviction, and callback — is exactly what num_segments
  /// separate AccessEx calls over the same sub-ranges would produce:
  /// segments visit their lines in address order, and a line shared by
  /// two adjacent segments is visited once per segment (the later visits
  /// are guaranteed hits, replayed without re-probing the set).
  /// Zero-length segments model nothing, matching the `if (!empty)
  /// Access(...)` call sites this API coalesces. `result.lines` carries
  /// the total visit count so the caller can charge hit latency as
  /// `lines - missed` in a single accumulation.
  CacheAccessResult AccessSegments(uint64_t addr, const uint32_t* lens,
                                   size_t num_segments, bool is_write);

  /// Owner-mode fast path, safe to inline at call sites: if [addr,
  /// addr+size) lies within one cache line AND that line is resident,
  /// perform the hit (LRU stamp, dirty marking, hit counter) and return
  /// true. Returns false — having changed nothing — when the access spans
  /// lines or misses; the caller then takes the out-of-line AccessEx
  /// path. Must only be called on kOwner instances (single-line hits are
  /// the overwhelmingly common case on the engines' instrumented paths,
  /// and this skips the call + dispatch + result plumbing for them).
  bool OwnerHitFast(uint64_t addr, size_t size, bool is_write) {
    const uint64_t idx = addr >> line_shift_;
    if (((addr + size - 1) >> line_shift_) != idx) return false;
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    const size_t base =
        (bank_idx * sets_per_bank_ + set_idx) * associativity_;
    uint64_t* const ways = &entries_[base];
    const int w = FindWayInline(ways, idx << 1);
    if (w < 0) return false;
    Bank& bank = banks_[bank_idx];
    stamps_[base + static_cast<size_t>(w)] = ++bank.lru_clock;
    if (is_write) ways[w] |= 1;
    bank.hits++;
    return true;
  }

  /// CLFLUSH/CLWB semantics over [addr, addr+size): dirty lines are written
  /// back; when `invalidate` is true (CLFLUSH) the lines are also evicted,
  /// otherwise (CLWB) they stay resident in clean state.
  /// Returns the number of lines actually written back.
  size_t FlushRange(uint64_t addr, size_t size, bool invalidate);

  /// Owner-mode fast path for FlushRange, safe to inline at call sites:
  /// handles a range confined to one cache line (every per-tuple persist
  /// the engines issue) without the out-of-line call and mode dispatch.
  /// Returns the number of lines written back (0 or 1), or -1 when the
  /// range spans lines — the caller then takes FlushRange. Must only be
  /// called on kOwner instances.
  int OwnerFlushFast(uint64_t addr, size_t size, bool invalidate) {
    const uint64_t idx = addr >> line_shift_;
    if (((addr + size - 1) >> line_shift_) != idx) return -1;
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    uint64_t* const ways =
        &entries_[(bank_idx * sets_per_bank_ + set_idx) * associativity_];
    const uint64_t match = idx << 1;
    int flushed = 0;
    const int w = FindWayInline(ways, match);
    if (w >= 0) {
      if (ways[w] & 1) {
        flushed = 1;
        banks_[bank_idx].write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, idx << line_shift_,
                                line_size_);
        }
        ways[w] = match;  // clean
      }
      if (invalidate) ways[w] = kInvalidEntry;
    }
    return flushed;
  }

  /// Write back every dirty line (used by e.g. full-device sync in tests).
  size_t WriteBackAll();

  /// Power failure: all cached state vanishes; dirty lines are NOT written
  /// back — their contents are lost.
  void DropDirty();

  // Statistics are exact in both modes: each bank counts under its own
  // lock in kShared (no shared atomic contention on the hot path) and
  // with plain increments in kOwner (only one thread ever touches them);
  // the getters aggregate across banks, taking each bank's lock in
  // kShared so concurrent updates are never torn or lost. After all
  // accessing threads quiesce, hits() + misses() == total lines
  // accessed, exactly.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t write_backs() const;

  size_t line_size() const { return line_size_; }

  /// Probe implementation the instance runs (after every override); the
  /// golden test and bench_cachesim report it.
  ProbeKind probe_kind() const { return probe_kind_; }

 private:
  // Packed line entry: (line_index << 1) | dirty. line_index is the line
  // address divided by line_size; even 48-bit heap addresses leave the top
  // tag bits free. kInvalidEntry (all ones) can never collide with a real
  // entry because a real line index never has all 63 tag bits set.
  static constexpr uint64_t kInvalidEntry = ~0ull;

  // Per-bank mutable state, cache-line aligned so banks never false-share.
  struct alignas(64) Bank {
    std::mutex mu;  // taken in kShared mode only
    uint64_t lru_clock = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t write_backs = 0;
  };

  // Mix the line index so adjacent lines spread across banks and sets; a
  // plain modulo would pathologically collide for strided engine layouts.
  // The mapping is identical to the seed model's (h % banks, (h / banks)
  // % sets) whenever banks and sets are powers of two.
  static uint64_t MixLineIndex(uint64_t line_index) {
    uint64_t h = line_index * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return h;
  }

  // Inner loops behind the public dispatchers, instantiated per
  // (concurrency mode, probe kind): kShared takes the bank lock per line
  // and kOwner compiles it away; the probe kind selects the SIMD width of
  // the set scans with zero per-line dispatch. Bodies live in
  // cache_sim_inl.h — included by cache_sim.cc (scalar + SSE2
  // instantiations) and cache_sim_avx2.cc (AVX2 instantiations, the only
  // translation unit built with -mavx2).
  template <ConcurrencyMode M, ProbeKind K>
  CacheAccessResult AccessExImpl(uint64_t addr, size_t size, bool is_write);
  template <ConcurrencyMode M, ProbeKind K>
  CacheAccessResult AccessSegmentsImpl(uint64_t addr, const uint32_t* lens,
                                       size_t num_segments, bool is_write);
  template <ConcurrencyMode M, ProbeKind K>
  size_t FlushRangeImpl(uint64_t addr, size_t size, bool invalidate);
  template <ConcurrencyMode M>
  size_t WriteBackAllImpl();

  // Touch one line; requires the owning bank's lock in kShared mode.
  // Returns 1 if the line missed and adds any dirty-victim write-back to
  // `result`; `*way_out` receives the way the line now occupies (the
  // segmented walk caches it for boundary-line re-visits). Force-inlined
  // into the per-line loops: at ~8.5 lines per engine access the call
  // overhead alone profiled as the single hottest entry in the whole
  // bench suite, and GCC's size heuristics refuse the inline on their
  // own. Defined in cache_sim_inl.h.
  template <ProbeKind K>
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline uint32_t AccessLineT(Bank& bank, size_t global_set,
                              uint64_t line_index, bool is_write,
                              CacheAccessResult* result, size_t* way_out);

  /// Probe used by the header-inlined Owner*Fast paths: baseline SSE2 on
  /// x86-64 (no target attribute needed, so it inlines into callers in
  /// any translation unit) with a one-branch fallback honoring the
  /// forced-scalar override. The out-of-line loops upgrade to AVX2 when
  /// available; both find the identical way.
  int FindWayInline(const uint64_t* ways, uint64_t match) const {
#if NVMDB_PROBE_X86
    if (!scalar_probe_) {
      return probe::FindWaySse2(ways, associativity_, match);
    }
#endif
    return probe::FindWayScalar(ways, associativity_, match);
  }

#if NVMDB_STREAM_CHECKS
  /// The coalesced walk of AccessSegments diverged from the uncoalesced
  /// per-line sequence it must replay: abort loudly (debug builds only).
  [[noreturn]] static void StreamCheckViolation();
#endif

#if NVMDB_OWNER_CHECKS
  /// Record the first accessing thread of a kOwner instance and abort on
  /// any access from a different thread. Mutating entry points call this;
  /// read-only counter getters don't, so post-join aggregation from a
  /// parent thread (sequentially safe) stays legal.
  void CheckOwner() {
    if (mode_ != ConcurrencyMode::kOwner) return;
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_thread_.load(std::memory_order_relaxed) == self) return;
    if (owner_thread_.compare_exchange_strong(expected, self,
                                              std::memory_order_relaxed)) {
      return;  // first toucher becomes the owner
    }
    OwnerViolation();
  }
  [[noreturn]] static void OwnerViolation();
#endif

  size_t line_size_;        // power of two
  unsigned line_shift_;     // log2(line_size_)
  size_t associativity_;
  size_t num_banks_;        // power of two
  size_t sets_per_bank_;    // power of two
  uint64_t bank_mask_;      // num_banks_ - 1
  unsigned bank_shift_;     // log2(num_banks_)
  uint64_t set_mask_;       // sets_per_bank_ - 1
  ConcurrencyMode mode_;
  /// Probe implementation selected at construction (ResolveProbeKind).
  ProbeKind probe_kind_;
  /// probe_kind_ == kScalar, pre-tested so the header-inlined fast paths
  /// pay one predictable branch instead of a switch.
  bool scalar_probe_;

  CacheCallbacks callbacks_;
  std::vector<Bank> banks_;
  // Flat [bank][set][way] metadata; entries_ and stamps_ are parallel.
  std::vector<uint64_t> entries_;
  std::vector<uint64_t> stamps_;

#if NVMDB_OWNER_CHECKS
  /// First thread that touched a kOwner instance; default-constructed id
  /// until then. Atomic so the check itself is race-free even while it
  /// detects a race.
  std::atomic<std::thread::id> owner_thread_{};
#endif
};

}  // namespace nvmdb
