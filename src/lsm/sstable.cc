#include "lsm/sstable.h"

#include <cassert>
#include <cstring>

#include "common/crc32.h"

namespace nvmdb {

namespace {
constexpr uint32_t kSsTableMagic = 0x5353544Cu;  // "SSTL"
}

SsTable::SsTable(Pmfs* fs, std::string file_name)
    : fs_(fs), file_name_(std::move(file_name)) {}

SsTable::~SsTable() {
  if (fd_ >= 0) fs_->Close(fd_);
}

std::unique_ptr<SsTable> SsTable::Build(
    Pmfs* fs, const std::string& file_name,
    const std::vector<std::pair<uint64_t, DeltaRecord>>& entries) {
  std::string body;
  body.append(reinterpret_cast<const char*>(&kSsTableMagic), 4);
  const uint32_t count = static_cast<uint32_t>(entries.size());
  body.append(reinterpret_cast<const char*>(&count), 4);

  BloomFilter bloom(entries.size());
  for (const auto& [key, record] : entries) {
    bloom.Add(key);
    body.append(reinterpret_cast<const char*>(&key), 8);
    body.push_back(static_cast<char>(record.kind));
    const uint32_t len = static_cast<uint32_t>(record.payload.size());
    body.append(reinterpret_cast<const char*>(&len), 4);
    body.append(record.payload);
  }
  const uint64_t bloom_off = body.size();
  const std::string bloom_bytes = bloom.Serialize();
  body.append(bloom_bytes);
  const uint32_t bloom_size = static_cast<uint32_t>(bloom_bytes.size());
  const uint32_t crc = Crc32c(body.data(), bloom_off);
  body.append(reinterpret_cast<const char*>(&bloom_off), 8);
  body.append(reinterpret_cast<const char*>(&bloom_size), 4);
  body.append(reinterpret_cast<const char*>(&crc), 4);

  fs->Delete(file_name);
  Pmfs::Fd fd = fs->Open(file_name, /*create=*/true, StorageTag::kTable);
  if (fd < 0) return nullptr;
  Status s = fs->Write(fd, 0, body.data(), body.size());
  if (s.ok()) s = fs->Fsync(fd);
  fs->Close(fd);
  if (!s.ok()) return nullptr;
  return Open(fs, file_name);
}

std::unique_ptr<SsTable> SsTable::Open(Pmfs* fs,
                                       const std::string& file_name) {
  std::unique_ptr<SsTable> table(new SsTable(fs, file_name));
  table->fd_ = fs->Open(file_name, /*create=*/false);
  if (table->fd_ < 0) return nullptr;
  const uint64_t size = fs->Size(table->fd_);
  if (size < 24) return nullptr;

  // Footer.
  uint8_t footer[16];
  size_t got = 0;
  fs->Read(table->fd_, size - 16, footer, 16, &got);
  if (got != 16) return nullptr;
  uint64_t bloom_off;
  uint32_t bloom_size, crc;
  memcpy(&bloom_off, footer, 8);
  memcpy(&bloom_size, footer + 8, 4);
  memcpy(&crc, footer + 12, 4);
  if (bloom_off + bloom_size + 16 != size) return nullptr;

  std::string bloom_bytes(bloom_size, '\0');
  fs->Read(table->fd_, bloom_off, bloom_bytes.data(), bloom_size, &got);
  table->bloom_ = std::make_unique<BloomFilter>(
      BloomFilter::Deserialize(Slice(bloom_bytes)));

  // Rebuild the key -> offset index by scanning entry headers.
  std::string head(bloom_off, '\0');
  fs->Read(table->fd_, 0, head.data(), bloom_off, &got);
  if (got != bloom_off) return nullptr;
  if (Crc32c(head.data(), head.size()) != crc) return nullptr;
  uint32_t magic, count;
  memcpy(&magic, head.data(), 4);
  memcpy(&count, head.data() + 4, 4);
  if (magic != kSsTableMagic) return nullptr;
  uint64_t pos = 8;
  for (uint32_t i = 0; i < count; i++) {
    if (pos + 13 > bloom_off) return nullptr;
    uint64_t key;
    uint32_t len;
    memcpy(&key, head.data() + pos, 8);
    memcpy(&len, head.data() + pos + 9, 4);
    table->index_[key] = {pos, len, static_cast<uint8_t>(head[pos + 8])};
    pos += 13 + len;
  }
  return table;
}

bool SsTable::ReadEntry(const EntryRef& ref, DeltaRecord* out) const {
  // One file read fetches the payload; kind/length come from the
  // in-memory index (the paper's per-SSTable indexes).
  out->kind = static_cast<DeltaKind>(ref.kind);
  out->payload.resize(ref.length);
  if (ref.length > 0) {
    size_t got = 0;
    fs_->Read(fd_, ref.offset + 13, out->payload.data(), ref.length, &got);
    if (got != ref.length) return false;
  }
  return true;
}

bool SsTable::Get(uint64_t key, DeltaRecord* out) const {
  if (bloom_ != nullptr && !bloom_->MayContain(key)) return false;
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  return ReadEntry(it->second, out);
}

void SsTable::CollectKeysInRange(uint64_t lo, uint64_t hi,
                                 std::vector<uint64_t>* out) const {
  for (auto it = index_.lower_bound(lo); it != index_.end() && it->first <= hi;
       ++it) {
    out->push_back(it->first);
  }
}

void SsTable::ForEach(
    const std::function<void(uint64_t, const DeltaRecord&)>& fn) const {
  // Bulk sequential read (compaction-style I/O), then parse in memory —
  // one kernel crossing instead of one per entry.
  if (index_.empty()) return;
  const uint64_t begin = index_.begin()->second.offset;
  const auto& last = *index_.rbegin();
  const uint64_t end = last.second.offset + 13 + last.second.length;
  std::string body(end - begin, '\0');
  size_t got = 0;
  fs_->Read(fd_, begin, body.data(), body.size(), &got);
  if (got != body.size()) return;
  for (const auto& [key, ref] : index_) {
    DeltaRecord record;
    record.kind = static_cast<DeltaKind>(ref.kind);
    record.payload.assign(body.data() + (ref.offset - begin) + 13,
                          ref.length);
    fn(key, record);
  }
}

uint64_t SsTable::FileBytes() const { return fs_->Size(fd_); }

void SsTable::Destroy() {
  if (fd_ >= 0) {
    fs_->Close(fd_);
    fd_ = -1;
  }
  if (!destroyed_) {
    fs_->Delete(file_name_);
    destroyed_ = true;
  }
}

}  // namespace nvmdb
