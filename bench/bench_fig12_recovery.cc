/// Fig. 12 — Recovery latency after a hard kill, as a function of the
/// number of transactions executed since the last checkpoint / MemTable
/// flush.
///
/// Expected shape (paper): InP and Log recovery latency grows linearly
/// with the transaction count (redo pass + index rebuild); NVM-InP and
/// NVM-Log are flat and sub-millisecond (undo-only); CoW and NVM-CoW have
/// no recovery process at all.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

/// Run `txns` YCSB balanced transactions WITHOUT letting the engine
/// checkpoint/flush, then crash and measure recovery.
uint64_t MeasureRecovery(EngineKind engine, uint64_t txns,
                         const char* workload) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;  // recovery measured on one partition's log
  // Keep everything in the recovery window: no checkpoints, huge
  // MemTable threshold, and a group-commit of 1 so every txn is in the
  // durable log.
  cfg.engine_config.checkpoint_interval_txns = 0;
  cfg.engine_config.memtable_threshold_bytes = 1ull << 40;
  cfg.engine_config.group_commit_size = 1;
  Database db(cfg);

  if (std::string(workload) == "ycsb") {
    YcsbConfig ycfg;
    ycfg.num_tuples = Scale().ycsb_tuples / 4;
    ycfg.num_txns = txns;
    ycfg.num_partitions = 1;
    ycfg.mixture = YcsbMixture::kBalanced;
    YcsbWorkload w(ycfg);
    if (!w.Load(&db).ok()) return 0;
    Coordinator(&db).Run(w.GenerateQueues());
  } else {
    TpccConfig tcfg;
    tcfg.num_warehouses = 1;
    tcfg.num_txns = txns;
    tcfg.customers_per_district = 100;
    tcfg.items = 500;
    tcfg.initial_orders_per_district = 100;
    TpccWorkload w(tcfg);
    if (!w.Load(&db).ok()) return 0;
    Coordinator(&db).Run(w.GenerateQueues());
  }

  db.Crash();
  return db.Recover();
}

}  // namespace

int main() {
  const uint64_t txn_counts[] = {EnvU64("NVMDB_RECOVERY_TXNS_1", 500),
                                 EnvU64("NVMDB_RECOVERY_TXNS_2", 2000),
                                 EnvU64("NVMDB_RECOVERY_TXNS_3", 8000)};
  // CoW engines are included to demonstrate their "no recovery" property.
  for (const char* workload : {"ycsb", "tpcc"}) {
    char title[96];
    snprintf(title, sizeof(title),
             "Fig. 12%s: recovery latency (ms), %s",
             std::string(workload) == "ycsb" ? "a" : "b", workload);
    PrintHeader(title);
    printf("%-12s", "txns");
    for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
    printf("\n");
    for (uint64_t txns : txn_counts) {
      printf("%-12llu", (unsigned long long)txns);
      for (EngineKind engine : AllEngines()) {
        const uint64_t ns = MeasureRecovery(engine, txns, workload);
        printf("%12.3f", ns / 1e6);
      }
      printf("\n");
    }
  }
  printf(
      "\nPaper shape: InP/Log latency grows ~linearly with txn count;\n"
      "NVM-InP/NVM-Log flat (undo-only, < 1s); CoW/NVM-CoW near-zero (no\n"
      "recovery process) (Section 5.4, Fig. 12).\n");
  return 0;
}
