#include "common/status.h"

namespace nvmdb {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kOutOfSpace:
      name = "OutOfSpace";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
  }
  if (msg_.empty()) return name;
  return std::string(name) + ": " + msg_;
}

}  // namespace nvmdb
