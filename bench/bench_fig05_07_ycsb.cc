/// Figs. 5–7 — YCSB throughput: 4 workload mixtures x 2 skews x 3 NVM
/// latency profiles x 6 engines.
///
/// One execution per (engine, mixture, skew) runs under the DRAM profile;
/// the Low/High-NVM numbers are derived from the recorded NVM load/store/
/// sync counters (the counters are latency-invariant — see bench_util.h).
///
/// The 48 cells are independent (each builds its own database), so they
/// run concurrently on the grid scheduler; all tables print after the
/// barrier, in grid order, so stdout is identical for any NVMDB_BENCH_JOBS.
///
/// Expected shape (paper): NVM-aware engines up to ~5.5x the traditional
/// ones on write-heavy mixtures; NVM-InP ~ InP on read-only; CoW slowest
/// reader among in-place engines, Log slowest overall on reads due to
/// tuple coalescing; all gaps narrow as latency rises.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const auto latencies = PaperLatencies();
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};
  const YcsbSkew skews[] = {YcsbSkew::kLow, YcsbSkew::kHigh};

  printf("YCSB: %llu tuples, %llu txns, %zu partitions\n",
         (unsigned long long)Scale().ycsb_tuples,
         (unsigned long long)Scale().ycsb_txns, Scale().partitions);

  // runs[((m * 2) + s) * 6 + e], filled by the grid cells.
  std::vector<BenchRun> runs(4 * 2 * AllEngines().size());
  BenchRunner runner("fig05_07_ycsb");
  AddScaleContext(&runner);
  for (int m = 0; m < 4; m++) {
    for (int s = 0; s < 2; s++) {
      for (size_t e = 0; e < AllEngines().size(); e++) {
        const size_t idx = (m * 2 + s) * AllEngines().size() + e;
        const YcsbMixture mixture = mixtures[m];
        const YcsbSkew skew = skews[s];
        const EngineKind engine = AllEngines()[e];
        runner.Submit([&runs, idx, mixture, skew, engine]() {
          runs[idx] = RunYcsb(engine, mixture, skew);
          return CellFromRun({{"mixture", YcsbMixtureName(mixture)},
                              {"skew", YcsbSkewName(skew)},
                              {"engine", EngineKindName(engine)}},
                             runs[idx], Scale().partitions);
        });
      }
    }
  }
  runner.Wait();

  ClockTotals clocks;
  for (const BenchRun& run : runs) clocks.Add(run);
  ReportClocks("YCSB measured phases", clocks);

  int figure = 5;
  for (const LatencyProfile& latency : latencies) {
    char title[128];
    snprintf(title, sizeof(title),
             "Fig. %d: YCSB throughput (txn/sec) under %s", figure++,
             latency.name);
    PrintHeader(title);
    for (int m = 0; m < 4; m++) {
      printf("\n--- %s workload ---\n", YcsbMixtureName(mixtures[m]));
      printf("%-10s", "skew");
      for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
      printf("\n");
      for (int s = 0; s < 2; s++) {
        printf("%-10s", s == 0 ? "low" : "high");
        for (size_t e = 0; e < AllEngines().size(); e++) {
          const BenchRun& run = runs[(m * 2 + s) * AllEngines().size() + e];
          printf("%12.0f",
                 DeriveThroughput(run.committed, run.wall_ns, run.counters,
                                  latency.config, Scale().partitions));
        }
        printf("\n");
      }
    }
  }
  printf(
      "\nPaper shape: NVM-aware > traditional (up to ~5.5x, write-heavy);\n"
      "skew helps via caching; higher latency narrows relative gaps\n"
      "(Sections 5.2, Figs. 5-7).\n");
  return ExitStatus();
}
