#include "engine/nvm_log_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "engine/wal.h"

namespace nvmdb {

namespace {

constexpr uint64_t kRunDirMagic = 0x52554E4449523144ULL;  // "RUNDIR1D"

}  // namespace

// ---------------------------------------------------------------------------
// NvMemTable
// ---------------------------------------------------------------------------

NvmLogEngine::NvMemTable::NvMemTable(PmemAllocator* allocator,
                                     uint64_t tree_header_off)
    : allocator_(allocator), device_(allocator->device()) {
  tree_ = std::make_unique<NvBTree>(allocator, tree_header_off);
}

uint64_t NvmLogEngine::NvMemTable::CreateTree(PmemAllocator* allocator,
                                              size_t node_bytes) {
  return NvBTree::Create(allocator, node_bytes);
}

uint64_t NvmLogEngine::NvMemTable::PrepareRecord(uint64_t key,
                                                 DeltaKind kind,
                                                 const Slice& payload) {
  const uint64_t off = allocator_->Alloc(
      sizeof(RecordHeader) + payload.size(), StorageTag::kTable);
  assert(off != 0);
  RecordHeader hdr;
  uint64_t head = 0;
  tree_->Find(key, &head);
  hdr.next = head;
  hdr.kind = static_cast<uint8_t>(kind);
  hdr.pad[0] = hdr.pad[1] = hdr.pad[2] = 0;
  hdr.length = static_cast<uint32_t>(payload.size());
  device_->Write(off, &hdr, sizeof(hdr));
  if (!payload.empty()) {
    device_->Write(off + sizeof(hdr), payload.data(), payload.size());
  }
  // Synced in CommitRecord, after the WAL entry referencing it is durable.
  return off;
}

void NvmLogEngine::NvMemTable::CommitRecord(uint64_t key,
                                            uint64_t record_off) {
  RecordHeader hdr;
  device_->Read(record_off, &hdr, sizeof(hdr));
  // One sync persists the record (payload + slot state)...
  allocator_->PersistPayloadAndMark(record_off,
                                    sizeof(RecordHeader) + hdr.length);
  // ...then publishing is one atomic durable index write.
  tree_->Insert(key, record_off);
  approx_bytes_ += sizeof(RecordHeader) + hdr.length;
}

void NvmLogEngine::NvMemTable::UndoRecord(uint64_t key,
                                          uint64_t record_off) {
  // Recovery input: validate before dereferencing the slot header.
  if (!allocator_->ValidPayloadOffset(record_off)) return;
  if (allocator_->StateOf(record_off) !=
      PmemAllocator::SlotState::kPersisted) {
    // Never published (crash between WAL push and CommitRecord); the
    // allocator reclaimed or will reclaim the slot.
    return;
  }
  uint64_t head = 0;
  if (tree_->Find(key, &head) && head == record_off) {
    RecordHeader hdr;
    device_->Read(record_off, &hdr, sizeof(hdr));
    if (hdr.next == 0) {
      tree_->Erase(key);
    } else {
      tree_->Insert(key, hdr.next);
    }
    approx_bytes_ -=
        std::min<size_t>(approx_bytes_, sizeof(RecordHeader) + hdr.length);
  }
  allocator_->Free(record_off);
}

void NvmLogEngine::NvMemTable::Collect(uint64_t key,
                                       std::vector<DeltaRecord>* out) const {
  uint64_t off = 0;
  if (!tree_->Find(key, &off)) return;
  while (off != 0) {
    RecordHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    DeltaRecord record;
    record.kind = static_cast<DeltaKind>(hdr.kind);
    record.payload.resize(hdr.length);
    if (hdr.length > 0) {
      device_->Read(off + sizeof(hdr), record.payload.data(), hdr.length);
    }
    out->push_back(std::move(record));
    off = hdr.next;
  }
}

void NvmLogEngine::NvMemTable::Collect(uint64_t key,
                                       DeltaRecordList* out) const {
  uint64_t off = 0;
  if (!tree_->Find(key, &off)) return;
  while (off != 0) {
    RecordHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    DeltaRecord* record = out->Add(static_cast<DeltaKind>(hdr.kind));
    record->payload.resize(hdr.length);
    if (hdr.length > 0) {
      device_->Read(off + sizeof(hdr), record->payload.data(), hdr.length);
    }
    off = hdr.next;
  }
}

void NvmLogEngine::NvMemTable::CollectKeysInRange(
    uint64_t lo, uint64_t hi, std::vector<uint64_t>* out) const {
  tree_->Scan(lo, hi, [out](uint64_t key, uint64_t) {
    out->push_back(key);
    return true;
  });
}

void NvmLogEngine::NvMemTable::ForEachKey(
    const std::function<void(uint64_t, const std::vector<DeltaRecord>&)>&
        fn) const {
  tree_->Scan(0, ~0ull - 1, [this, &fn](uint64_t key, uint64_t) {
    std::vector<DeltaRecord> records;
    Collect(key, &records);
    fn(key, records);
    return true;
  });
}

BloomFilter NvmLogEngine::NvMemTable::BuildBloom() const {
  std::vector<uint64_t> keys;
  CollectKeysInRange(0, ~0ull - 1, &keys);
  BloomFilter bloom(keys.size());
  for (uint64_t k : keys) bloom.Add(k);
  return bloom;
}

void NvmLogEngine::NvMemTable::ReleaseAll() {
  tree_->Scan(0, ~0ull - 1, [this](uint64_t, uint64_t head) {
    uint64_t off = head;
    while (off != 0) {
      RecordHeader hdr;
      device_->Read(off, &hdr, sizeof(hdr));
      allocator_->Free(off);
      off = hdr.next;
    }
    return true;
  });
  tree_->FreeAll();
  approx_bytes_ = 0;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

NvmLogEngine::NvmLogEngine(const EngineConfig& config)
    : config_(config),
      allocator_(config.allocator),
      device_(config.allocator->device()) {
  allocator_->set_eager_state_sync(true);
  wal_ = std::make_unique<NvWal>(allocator_,
                                 config_.namespace_prefix + ".nvmlog.wal");
}

uint64_t* NvmLogEngine::RunDirEntries(const Table& table) const {
  uint8_t* base =
      static_cast<uint8_t*>(device_->PtrAt(table.rundir_off));
  return reinterpret_cast<uint64_t*>(base + 16);
}

uint64_t NvmLogEngine::RunDirCount(const Table& table) const {
  uint64_t count;
  device_->Read(table.rundir_off + 8, &count, 8);
  return count;
}

Status NvmLogEngine::CreateTable(const TableDef& def) {
  Table& table = tables_[def.table_id];
  table.def = def;
  const std::string base = config_.namespace_prefix + ".nvmlog.t" +
                           std::to_string(def.table_id);

  // Run directory (immutable MemTable list).
  table.rundir_off = allocator_->GetRoot(base + ".runs");
  if (table.rundir_off == 0) {
    const size_t bytes = 16 + kMaxRuns * 8;
    table.rundir_off = allocator_->Alloc(bytes, StorageTag::kIndex);
    assert(table.rundir_off != 0);
    uint8_t* p = static_cast<uint8_t*>(device_->PtrAt(table.rundir_off));
    memset(p, 0, bytes);
    memcpy(p, &kRunDirMagic, 8);
    device_->TouchWrite(p, bytes);
    device_->Persist(table.rundir_off, bytes);
    allocator_->MarkPersisted(table.rundir_off);
    allocator_->SetRoot(base + ".runs", table.rundir_off);
  }

  // Mutable MemTable root pointer.
  table.mutable_root_off = allocator_->GetRoot(base + ".mem");
  if (table.mutable_root_off == 0) {
    table.mutable_root_off =
        allocator_->Alloc(sizeof(uint64_t), StorageTag::kIndex);
    assert(table.mutable_root_off != 0);
    const uint64_t tree = NvMemTable::CreateTree(allocator_,
                                                 config_.btree_node_bytes);
    device_->AtomicPersistWrite64(table.mutable_root_off, tree);
    allocator_->MarkPersisted(table.mutable_root_off);
    allocator_->SetRoot(base + ".mem", table.mutable_root_off);
  }

  for (const auto& sec : def.secondary_indexes) {
    table.secondaries[sec.index_id] = std::make_unique<NvBTree>(
        allocator_, base + ".sk" + std::to_string(sec.index_id),
        config_.btree_node_bytes);
  }

  AttachTableRuns(&table);
  return Status::OK();
}

void NvmLogEngine::AttachTableRuns(Table* table) {
  uint64_t mutable_tree = 0;
  device_->Read(table->mutable_root_off, &mutable_tree, 8);
  table->mutable_mem = std::make_unique<NvMemTable>(allocator_,
                                                    mutable_tree);
  table->immutables.clear();
  table->blooms.clear();
  const uint64_t count = RunDirCount(*table);
  const uint64_t* entries = RunDirEntries(*table);
  for (uint64_t i = 0; i < count; i++) {
    auto mem = std::make_unique<NvMemTable>(allocator_, entries[i]);
    table->blooms.push_back(mem->BuildBloom());
    table->immutables.push_back(std::move(mem));
  }
}

NvmLogEngine::Table* NvmLogEngine::GetTable(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : &it->second;
}

bool NvmLogEngine::GetTuple(Table* table, uint64_t key, Tuple* out) {
  DeltaRecordList& records = lookup_records_;
  records.Clear();
  table->mutable_mem->Collect(key, &records);
  const bool concluded =
      !records.empty() &&
      records[records.size() - 1].kind != DeltaKind::kDelta;
  if (!concluded) {
    // Immutable MemTables newest first, Bloom-guarded (Section 4.3).
    for (size_t i = table->immutables.size(); i-- > 0;) {
      if (config_.use_bloom_filters && !table->blooms[i].MayContain(key)) {
        continue;
      }
      table->immutables[i]->Collect(key, &records);
      if (!records.empty() &&
          records[records.size() - 1].kind != DeltaKind::kDelta) {
        break;
      }
    }
  }
  return MaterializeNewestFirst(table->def.schema, records, out);
}

bool NvmLogEngine::KeyExists(Table* table, uint64_t key) {
  exists_scratch_.Reset(&table->def.schema);
  return GetTuple(table, key, &exists_scratch_);
}

void NvmLogEngine::PushUndoEntry(uint8_t op, uint32_t table_id, uint64_t key,
                                 uint64_t record_off) {
  std::string& out = wal_entry_;
  out.clear();
  out.push_back(static_cast<char>(op));
  out.append(reinterpret_cast<const char*>(&table_id), 4);
  out.append(reinterpret_cast<const char*>(&key), 8);
  out.append(reinterpret_cast<const char*>(&record_off), 8);
  out.push_back(static_cast<char>(sec_added_.size()));
  out.push_back(static_cast<char>(sec_removed_.size()));
  for (const SecRef& r : sec_added_) {
    out.append(reinterpret_cast<const char*>(&r.index_id), 4);
    out.append(reinterpret_cast<const char*>(&r.composite), 8);
  }
  for (const SecRef& r : sec_removed_) {
    out.append(reinterpret_cast<const char*>(&r.index_id), 4);
    out.append(reinterpret_cast<const char*>(&r.composite), 8);
  }
  wal_->Push(out.data(), out.size());
}

Status NvmLogEngine::Insert(uint64_t txn_id, uint32_t table_id,
                            const Tuple& tuple) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  const uint64_t key = tuple.Key();
  if (KeyExists(table, key)) return Status::InvalidArgument("duplicate key");

  // Table 2, NVM-Log INSERT: sync tuple -> WAL pointer -> sync log ->
  // mark persisted -> add MemTable entry.
  serial_buf_.clear();
  tuple.AppendInlined(&serial_buf_);
  uint64_t record_off;
  {
    ScopedStallTag t(StallTag::kTuple);
    record_off = table->mutable_mem->PrepareRecord(key, DeltaKind::kFull,
                                                   Slice(serial_buf_));
  }
  sec_added_.clear();
  sec_removed_.clear();
  for (const auto& sec : table->def.secondary_indexes) {
    sec_added_.push_back(
        {sec.index_id,
         SecondaryComposite(SecondaryKeyHash(tuple, sec), key)});
  }
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kInsert), table_id, key,
                  record_off);
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mutable_mem->CommitRecord(key, record_off);
    for (const SecRef& r : sec_added_) {
      table->secondaries[r.index_id]->Insert(r.composite, key);
    }
  }
  return Status::OK();
}

Status NvmLogEngine::Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                            const std::vector<ColumnUpdate>& updates) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");

  bool touches_secondary = false;
  for (const ColumnUpdate& u : updates) {
    for (const auto& sec : table->def.secondary_indexes) {
      for (size_t c : sec.key_columns) {
        if (c == u.column) touches_secondary = true;
      }
    }
  }
  sec_added_.clear();
  sec_removed_.clear();
  if (touches_secondary || !table->def.secondary_indexes.empty()) {
    scratch_tuple_.Reset(&table->def.schema);
    if (!GetTuple(table, key, &scratch_tuple_)) return Status::NotFound();
  } else if (!KeyExists(table, key)) {
    return Status::NotFound();
  }
  if (touches_secondary) {
    scratch_tuple2_ = scratch_tuple_;
    ApplyUpdates(&scratch_tuple2_, updates);
    for (const auto& sec : table->def.secondary_indexes) {
      const uint64_t oc =
          SecondaryComposite(SecondaryKeyHash(scratch_tuple_, sec), key);
      const uint64_t nc =
          SecondaryComposite(SecondaryKeyHash(scratch_tuple2_, sec), key);
      if (oc == nc) continue;
      sec_removed_.push_back({sec.index_id, oc});
      sec_added_.push_back({sec.index_id, nc});
    }
  }

  serial_buf_.clear();
  EncodeUpdatesTo(table->def.schema, updates, &serial_buf_);
  uint64_t record_off;
  {
    ScopedStallTag t(StallTag::kTuple);
    record_off = table->mutable_mem->PrepareRecord(key, DeltaKind::kDelta,
                                                   Slice(serial_buf_));
  }
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kUpdate), table_id, key,
                  record_off);
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mutable_mem->CommitRecord(key, record_off);
    for (const SecRef& r : sec_removed_) {
      table->secondaries[r.index_id]->Erase(r.composite);
    }
    for (const SecRef& r : sec_added_) {
      table->secondaries[r.index_id]->Insert(r.composite, key);
    }
  }
  return Status::OK();
}

Status NvmLogEngine::Delete(uint64_t txn_id, uint32_t table_id,
                            uint64_t key) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  scratch_tuple_.Reset(&table->def.schema);
  if (!GetTuple(table, key, &scratch_tuple_)) return Status::NotFound();

  sec_added_.clear();
  sec_removed_.clear();
  for (const auto& sec : table->def.secondary_indexes) {
    sec_removed_.push_back(
        {sec.index_id,
         SecondaryComposite(SecondaryKeyHash(scratch_tuple_, sec), key)});
  }
  uint64_t record_off;
  {
    ScopedStallTag t(StallTag::kTuple);
    record_off = table->mutable_mem->PrepareRecord(
        key, DeltaKind::kTombstone, Slice());
  }
  {
    ScopedStallTag t(StallTag::kWal);
    PushUndoEntry(static_cast<uint8_t>(LogOp::kDelete), table_id, key,
                  record_off);
  }
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mutable_mem->CommitRecord(key, record_off);
    for (const SecRef& r : sec_removed_) {
      table->secondaries[r.index_id]->Erase(r.composite);
    }
  }
  return Status::OK();
}

Status NvmLogEngine::Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                            Tuple* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  ScopedStallTag t(StallTag::kIndex);
  if (!GetTuple(table, key, out)) return Status::NotFound();
  return Status::OK();
}

Status NvmLogEngine::ScanRange(
    uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const Tuple&)>& fn) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  std::vector<uint64_t> keys;
  {
    ScopedStallTag t(StallTag::kIndex);
    table->mutable_mem->CollectKeysInRange(lo, hi, &keys);
    for (const auto& mem : table->immutables) {
      mem->CollectKeysInRange(lo, hi, &keys);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  for (uint64_t key : keys) {
    scan_scratch_.Reset(&table->def.schema);
    if (!GetTuple(table, key, &scan_scratch_)) continue;
    if (!fn(key, scan_scratch_)) break;
  }
  return Status::OK();
}

Status NvmLogEngine::SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                     uint32_t index_id,
                                     const std::vector<Value>& key_values,
                                     std::vector<Tuple>* out) {
  (void)txn_id;
  Table* table = GetTable(table_id);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  auto sec_it = table->secondaries.find(index_id);
  if (sec_it == table->secondaries.end()) {
    return Status::InvalidArgument("no such index");
  }
  const SecondaryIndexDef* def = nullptr;
  for (const auto& d : table->def.secondary_indexes) {
    if (d.index_id == index_id) def = &d;
  }
  const uint64_t h = SecondaryKeyHash(table->def.schema, *def, key_values);
  std::vector<uint64_t> pks;
  {
    ScopedStallTag t(StallTag::kIndex);
    sec_it->second->Scan(SecondaryRangeLo(h), SecondaryRangeHi(h),
                         [&pks](uint64_t, uint64_t pk) {
                           pks.push_back(pk);
                           return true;
                         });
  }
  for (uint64_t pk : pks) {
    scan_scratch_.Reset(&table->def.schema);
    if (!GetTuple(table, pk, &scan_scratch_)) continue;
    if (SecondaryKeyHash(scan_scratch_, *def) == h) {
      out->push_back(scan_scratch_);
    }
  }
  return Status::OK();
}

void NvmLogEngine::MarkImmutable(Table* table) {
  ScopedStallTag t(StallTag::kTuple);
  const uint64_t count = RunDirCount(*table);
  if (count >= kMaxRuns) return;
  uint64_t* entries = RunDirEntries(*table);
  // Publish the mutable tree as a run: entry first, then the count bump,
  // then swap in a fresh mutable tree — each step atomic & durable.
  entries[count] = table->mutable_mem->tree_header();
  device_->TouchWrite(&entries[count], 8);
  device_->Persist(&entries[count], 8);
  device_->AtomicPersistWrite64(table->rundir_off + 8, count + 1);

  table->blooms.push_back(table->mutable_mem->BuildBloom());
  table->immutables.push_back(std::move(table->mutable_mem));

  const uint64_t fresh = NvMemTable::CreateTree(allocator_,
                                                config_.btree_node_bytes);
  device_->AtomicPersistWrite64(table->mutable_root_off, fresh);
  table->mutable_mem = std::make_unique<NvMemTable>(allocator_, fresh);
}

void NvmLogEngine::CompactTable(Table* table) {
  ScopedStallTag t(StallTag::kOther);
  if (table->immutables.size() < 2) return;

  // Merge all immutable MemTables into one new larger MemTable
  // (Section 4.3's modified compaction — no SSTables involved).
  const uint64_t merged_tree = NvMemTable::CreateTree(
      allocator_, config_.btree_node_bytes);
  NvMemTable merged(allocator_, merged_tree);

  std::vector<uint64_t> keys;
  for (const auto& mem : table->immutables) {
    mem->CollectKeysInRange(0, ~0ull - 1, &keys);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  for (uint64_t key : keys) {
    std::vector<DeltaRecord> records;
    for (size_t i = table->immutables.size(); i-- > 0;) {
      table->immutables[i]->Collect(key, &records);
      if (!records.empty() && records.back().kind != DeltaKind::kDelta) {
        break;
      }
    }
    DeltaRecord coalesced = CoalesceNewestFirst(table->def.schema, records);
    // Runs below do not exist: tombstones can be dropped.
    if (coalesced.kind == DeltaKind::kTombstone) continue;
    const uint64_t off =
        merged.PrepareRecord(key, coalesced.kind, Slice(coalesced.payload));
    merged.CommitRecord(key, off);
  }

  // Swap the run directory to [merged] with one atomic count update.
  uint64_t* entries = RunDirEntries(*table);
  std::vector<uint64_t> old_count_entries;
  const uint64_t old_count = RunDirCount(*table);
  (void)old_count_entries;
  // Write merged at a slot beyond the live prefix is impossible when the
  // directory is full, so: place it at index 0 *after* capturing the old
  // trees in memory (we already hold them in table->immutables), then
  // shrink the count. A crash between the two writes leaves a prefix of
  // old runs — consistent, at worst stale.
  device_->AtomicPersistWrite64(table->rundir_off + 8, 0);
  entries[0] = merged_tree;
  device_->TouchWrite(&entries[0], 8);
  device_->Persist(&entries[0], 8);
  device_->AtomicPersistWrite64(table->rundir_off + 8, 1);
  (void)old_count;

  for (auto& mem : table->immutables) mem->ReleaseAll();
  table->immutables.clear();
  table->blooms.clear();
  table->immutables.push_back(
      std::make_unique<NvMemTable>(allocator_, merged_tree));
  table->blooms.push_back(table->immutables[0]->BuildBloom());
}

Status NvmLogEngine::Commit(uint64_t txn_id) {
  {
    ScopedStallTag t(StallTag::kWal);
    // Changes recorded in the MemTable are durable: truncate the log
    // (Section 4.3).
    wal_->Clear();
  }
  committed_txns_++;
  last_committed_txn_ = txn_id;
  active_txn_ = 0;
  for (auto& [id, table] : tables_) {
    (void)id;
    if (table.mutable_mem->approx_bytes() >
        config_.memtable_threshold_bytes) {
      MarkImmutable(&table);
      if (table.immutables.size() > config_.lsm_level0_limit) {
        CompactTable(&table);
      }
    }
  }
  return Status::OK();
}

Status NvmLogEngine::Abort(uint64_t txn_id) {
  (void)txn_id;
  ScopedStallTag t(StallTag::kWal);
  wal_->ForEach([this](const uint8_t* payload, size_t size) {
    UndoOne(payload, size);
  });
  wal_->Clear();
  active_txn_ = 0;
  return Status::OK();
}

void NvmLogEngine::UndoOne(const uint8_t* payload, size_t size) {
  if (size < 23) return;
  const uint8_t op = payload[0];
  (void)op;
  uint32_t table_id;
  uint64_t key, record_off;
  memcpy(&table_id, payload + 1, 4);
  memcpy(&key, payload + 5, 8);
  memcpy(&record_off, payload + 13, 8);
  const uint8_t n_added = payload[21];
  const uint8_t n_removed = payload[22];
  if (size < 23 + (static_cast<size_t>(n_added) + n_removed) * 12) return;

  Table* table = GetTable(table_id);
  if (table == nullptr) return;
  table->mutable_mem->UndoRecord(key, record_off);
  const uint8_t* p = payload + 23;
  for (uint8_t i = 0; i < n_added; i++) {
    uint32_t index_id;
    uint64_t composite;
    memcpy(&index_id, p, 4);
    memcpy(&composite, p + 4, 8);
    p += 12;
    auto it = table->secondaries.find(index_id);
    if (it != table->secondaries.end()) it->second->Erase(composite);
  }
  for (uint8_t i = 0; i < n_removed; i++) {
    uint32_t index_id;
    uint64_t composite;
    memcpy(&index_id, p, 4);
    memcpy(&composite, p + 4, 8);
    p += 12;
    auto it = table->secondaries.find(index_id);
    if (it != table->secondaries.end()) it->second->Insert(composite, key);
  }
}

Status NvmLogEngine::Checkpoint() {
  for (auto& [id, table] : tables_) {
    (void)id;
    if (table.mutable_mem->approx_bytes() > 0) MarkImmutable(&table);
    CompactTable(&table);
  }
  return Status::OK();
}

Status NvmLogEngine::Recover() {
  ScopedStallTag t(StallTag::kRecovery);
  // Undo the in-flight transaction from the (already attached) mutable
  // MemTable; no MemTable rebuild (Section 4.3's NVM-aware recovery).
  wal_->ForEach([this](const uint8_t* payload, size_t size) {
    UndoOne(payload, size);
  });
  wal_->Clear();
  return Status::OK();
}

FootprintStats NvmLogEngine::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  stats.table_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.index_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kIndex)];
  stats.log_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kLog)];
  return stats;
}

}  // namespace nvmdb
