#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nvmdb {
namespace {

TEST(LatencyHistogramTest, BucketBoundariesPinned) {
  // Values below kSubBucketCount*2 = 128 are exact: identity buckets up
  // to 63, then one-per-value through the first log group.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(63), 63u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(64), 64u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(127), 127u);
  // 128 starts the second log group: two values per bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(128), 128u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(129), 128u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(130), 129u);
  EXPECT_EQ(LatencyHistogram::kNumBuckets, 3776u);
}

TEST(LatencyHistogramTest, LowerBoundInvertsIndex) {
  // BucketLowerBound must be the smallest value mapping to that bucket.
  const uint64_t probes[] = {0,    1,     63,        64,         127,
                             128,  1000,  123456,    1u << 20,   (1u << 20) + 37,
                             1ull << 40,  (1ull << 63) + 12345};
  for (uint64_t v : probes) {
    const size_t idx = LatencyHistogram::BucketIndex(v);
    const uint64_t lo = LatencyHistogram::BucketLowerBound(idx);
    EXPECT_LE(lo, v) << v;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), idx) << v;
    if (idx > 0) {
      EXPECT_LT(LatencyHistogram::BucketLowerBound(idx - 1), lo) << v;
    }
    // <= 1/64 relative error: the bucket's span is bounded by lo/64.
    if (lo >= 64) {
      const uint64_t next = LatencyHistogram::BucketLowerBound(idx + 1);
      EXPECT_LE(next - lo, lo / 64 + 1) << v;
    }
  }
}

// Regression for the nearest-rank off-by-one: the old sorted-vector code
// indexed latencies[n*99/100], which for n == 100 returns element 99 —
// the maximum, i.e. p100, not p99. Ceil-based nearest rank over exact
// (sub-128) values must return exactly the k-th smallest.
TEST(LatencyHistogramTest, ExactPercentilesOnOneToHundred) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; v++) h.Record(v);
  EXPECT_EQ(h.Percentile(50.0), 50u);
  EXPECT_EQ(h.Percentile(95.0), 95u);
  EXPECT_EQ(h.Percentile(99.0), 99u);
  EXPECT_EQ(h.Percentile(100.0), 100u);
  EXPECT_EQ(h.Percentile(1.0), 1u);
}

TEST(LatencyHistogramTest, SummarizeFields) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max_ns, 1000u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 500.5);
  // Values >= 128 land in log buckets; percentiles report the bucket
  // lower bound, within 1/64 of the true nearest-rank value.
  EXPECT_LE(s.p50_ns, 500u);
  EXPECT_GE(s.p50_ns, 500u - 500u / 64 - 1);
  EXPECT_LE(s.p99_ns, 990u);
  EXPECT_GE(s.p99_ns, 990u - 990u / 64 - 1);
  EXPECT_LE(s.p999_ns, 999u);
  EXPECT_GE(s.p999_ns, 999u - 999u / 64 - 1);
  EXPECT_GE(s.p999_ns, s.p99_ns);
  EXPECT_GE(s.p99_ns, s.p95_ns);
  EXPECT_GE(s.p95_ns, s.p50_ns);
}

TEST(LatencyHistogramTest, EmptySummarizesToZero) {
  const LatencySummary s = LatencyHistogram().Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50_ns, 0u);
  EXPECT_EQ(s.p999_ns, 0u);
  EXPECT_EQ(s.max_ns, 0u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 0.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (uint64_t v = 0; v < 5000; v += 7) {
    a.Record(v * v % 100000);
    combined.Record(v * v % 100000);
  }
  for (uint64_t v = 1; v < 3000; v += 3) {
    b.Record(v * 31 % 77777);
    combined.Record(v * 31 % 77777);
  }
  LatencyHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged, combined);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.sum(), combined.sum());
  EXPECT_EQ(merged.max(), combined.max());
  const LatencySummary sm = merged.Summarize();
  const LatencySummary sc = combined.Summarize();
  EXPECT_EQ(sm.p50_ns, sc.p50_ns);
  EXPECT_EQ(sm.p999_ns, sc.p999_ns);
}

TEST(LatencyHistogramTest, HugeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.Record(~0ull);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_EQ(h.Percentile(100.0),
            LatencyHistogram::BucketLowerBound(
                LatencyHistogram::BucketIndex(~0ull)));
}

}  // namespace
}  // namespace nvmdb
