#include <gtest/gtest.h>

#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"
#include "nvm/sync.h"
#include "testbed/stats.h"

namespace nvmdb {
namespace {

// --- Simulated-clock accounting ----------------------------------------------

TEST(SimClockTest, VirtualAccessesChargeTheClock) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  std::vector<uint8_t> heap_object(4096);
  const uint64_t before = device.TotalStallNanos();
  device.TouchVirtual(heap_object.data(), heap_object.size(), false);
  // 64 lines, all cold: charged at read latency.
  EXPECT_GE(device.TotalStallNanos() - before,
            64 * NvmLatencyConfig::Dram().read_latency_ns);
}

TEST(SimClockTest, VirtualAccessesHitAfterFirstTouch) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  std::vector<uint8_t> heap_object(256);
  device.TouchVirtual(heap_object.data(), 256, false);
  const NvmCounters before = device.counters();
  device.TouchVirtual(heap_object.data(), 256, false);
  const NvmCounters after = device.counters();
  EXPECT_EQ(after.loads, before.loads);       // no new misses
  EXPECT_GE(after.hits, before.hits + 4);     // served from cache
}

TEST(SimClockTest, VirtualWritesNeverReachDurableImage) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  // A virtual (heap-addressed) dirty line must not corrupt the region when
  // written back: only the stall is charged.
  std::vector<uint8_t> heap_object(64);
  device.TouchVirtual(heap_object.data(), 64, true);
  uint64_t probe = 0xABCD;
  device.Write(128, &probe, 8);
  device.Persist(128, 8);
  device.Crash();
  uint64_t v = 0;
  device.Read(128, &v, 8);
  EXPECT_EQ(v, 0xABCDu);
}

TEST(SimClockTest, ExternalChargesTrackedSeparately) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  device.ChargeExternalStall(12345);
  const NvmCounters c = device.counters();
  EXPECT_EQ(c.external_ns, 12345u);
  EXPECT_GE(c.stall_ns, 12345u);
}

TEST(SimClockTest, ClwbModeAvoidsReloadAfterPersist) {
  NvmLatencyConfig clwb = NvmLatencyConfig::Dram();
  clwb.use_clwb = true;
  NvmDevice device(1 << 20, clwb);
  uint64_t v = 7;
  device.Write(256, &v, 8);
  device.Persist(256, 8);
  const NvmCounters before = device.counters();
  device.Read(256, &v, 8);  // CLWB kept the line: hit
  const NvmCounters after = device.counters();
  EXPECT_EQ(after.loads, before.loads);
}

TEST(SimClockTest, ClflushModeReloadsAfterPersist) {
  NvmLatencyConfig clflush = NvmLatencyConfig::Dram();
  clflush.use_clwb = false;
  NvmDevice device(1 << 20, clflush);
  uint64_t v = 7;
  device.Write(256, &v, 8);
  device.Persist(256, 8);
  const NvmCounters before = device.counters();
  device.Read(256, &v, 8);  // CLFLUSH invalidated the line: miss
  const NvmCounters after = device.counters();
  EXPECT_EQ(after.loads, before.loads + 1);
}

TEST(SimClockTest, ClwbPersistIsStillDurable) {
  NvmLatencyConfig clwb = NvmLatencyConfig::Dram();
  clwb.use_clwb = true;
  NvmDevice device(1 << 20, clwb);
  uint64_t v = 99;
  device.Write(512, &v, 8);
  device.Persist(512, 8);
  // Dirty the line again WITHOUT persisting; the re-dirtied value must be
  // lost but the persisted one kept.
  uint64_t v2 = 100;
  device.Write(512, &v2, 8);
  device.Crash();
  uint64_t out = 0;
  device.Read(512, &out, 8);
  EXPECT_EQ(out, 99u);
}

// --- Allocator fast paths -------------------------------------------------------

class AllocFastPathTest : public ::testing::Test {
 protected:
  AllocFastPathTest() : device_(16ull << 20), allocator_(&device_) {}
  NvmDevice device_;
  PmemAllocator allocator_;
};

TEST_F(AllocFastPathTest, PersistPayloadAndMarkIsDurableInOneStep) {
  const uint64_t off =
      allocator_.Alloc(64, StorageTag::kTable, /*sync_header=*/false);
  const char payload[] = "one-sync durability";
  device_.Write(off, payload, sizeof(payload));
  allocator_.PersistPayloadAndMark(off, sizeof(payload));

  device_.Crash();
  PmemAllocator recovered(&device_, false);
  EXPECT_EQ(recovered.StateOf(off), PmemAllocator::SlotState::kPersisted);
  char out[sizeof(payload)] = {};
  device_.Read(off, out, sizeof(payload));
  EXPECT_STREQ(out, payload);
}

TEST_F(AllocFastPathTest, UnmarkedSkipHeaderAllocVanishesOnCrash) {
  const uint64_t off =
      allocator_.Alloc(64, StorageTag::kTable, /*sync_header=*/false);
  (void)off;
  device_.Crash();
  PmemAllocator recovered(&device_, false);
  // The header was never durable, so the heap walk ends before it and the
  // space is simply not part of the heap.
  EXPECT_LE(recovered.high_water(), device_.OffsetOf(device_.PtrAt(0)) +
                                        recovered.high_water());
  EXPECT_EQ(recovered.stats().total_used, 0u);
}

TEST_F(AllocFastPathTest, ReusedSlotUnpersistedIsReclaimed) {
  const uint64_t a = allocator_.Alloc(64);
  allocator_.Free(a);
  const uint64_t b = allocator_.Alloc(64);  // reuse, durable state kFree
  ASSERT_EQ(a, b);
  device_.Crash();
  PmemAllocator recovered(&device_, false);
  EXPECT_EQ(recovered.StateOf(a), PmemAllocator::SlotState::kFree);
}

TEST_F(AllocFastPathTest, HighWaterRederivedFromWalk) {
  const uint64_t a = allocator_.Alloc(100, StorageTag::kTable);
  allocator_.MarkPersisted(a);
  const uint64_t hw = allocator_.high_water();
  device_.Crash();
  PmemAllocator recovered(&device_, false);
  EXPECT_EQ(recovered.high_water(), hw);
  // New allocations continue past the walked end.
  const uint64_t b = recovered.Alloc(100, StorageTag::kTable);
  EXPECT_GE(b, hw);
}

// --- Derivation consistency -----------------------------------------------------

TEST(DerivationTest, RunningUnderProfileMatchesDerivedStall) {
  // The analytic stall derivation in bench_util mirrors the runtime
  // charging; verify the underlying identity here with raw counters:
  // running N cold-line reads charges N * read_latency.
  NvmLatencyConfig cfg = NvmLatencyConfig::HighNvm();
  cfg.sync_latency_ns = 0;
  NvmDevice device(1 << 20, cfg);
  CounterSampler sampler(&device);
  char buf[64];
  const uint64_t before = device.TotalStallNanos();
  for (int i = 0; i < 100; i++) device.Read(i * 4096, buf, 64);
  const CounterDelta d = sampler.Delta();
  const uint64_t stall = device.TotalStallNanos() - before;
  EXPECT_EQ(d.loads, 100u);
  EXPECT_EQ(stall, 100 * cfg.read_latency_ns + d.hits * cfg.cache_hit_ns);
}

}  // namespace
}  // namespace nvmdb
