/// Device wear — the paper's second headline: NVM-aware engines reduce
/// "the amount of wear due to write operations by up to 2x" (Abstract,
/// Section 7). NVM cells endure a bounded number of writes (Table 1), so
/// we report per-engine total line-writes plus the wear *distribution*
/// (hottest line vs mean), which the allocator's rotating placement and
/// the engines' reduced duplication both improve.
///
/// The 12 (mixture, engine) cells run concurrently on the grid scheduler;
/// the tables print after the barrier.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

struct WearRun {
  WearStats wear;
  uint64_t committed = 0;
  uint64_t sim_ns = 0;
};

WearRun MeasureWear(EngineKind engine, YcsbMixture mixture) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  auto db = std::make_unique<Database>(cfg);
  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples / 2;
  ycfg.num_txns = Scale().ycsb_txns / 2;
  ycfg.num_partitions = cfg.num_partitions;
  ycfg.mixture = mixture;
  YcsbWorkload workload(ycfg);
  Status ls = workload.Load(db.get());
  if (!ls.ok()) {
    ReportFailure("YCSB load (wear)", ls);
    return {};
  }
  const WearStats before = db->device()->wear();
  const uint64_t stall_before = db->device()->TotalStallNanos();
  const RunResult result = Coordinator(db.get()).Run(workload.GenerateQueues());
  db->Drain();
  db->device()->FlushAll();
  WearRun out;
  out.wear = db->device()->wear();
  out.wear.total_line_writes -= before.total_line_writes;
  out.committed = result.committed;
  out.sim_ns = db->device()->TotalStallNanos() - stall_before;
  return out;
}

}  // namespace

int main() {
  const YcsbMixture mixtures[] = {YcsbMixture::kBalanced,
                                  YcsbMixture::kWriteHeavy};

  // runs[mixture][engine]
  std::vector<WearRun> runs(2 * AllEngines().size());
  BenchRunner runner("wear");
  AddScaleContext(&runner);
  for (int m = 0; m < 2; m++) {
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const size_t idx = m * AllEngines().size() + e;
      const YcsbMixture mixture = mixtures[m];
      const EngineKind engine = AllEngines()[e];
      runner.Submit([&runs, idx, mixture, engine]() {
        runs[idx] = MeasureWear(engine, mixture);
        BenchCell cell;
        cell.key = {{"mixture", YcsbMixtureName(mixture)},
                    {"engine", EngineKindName(engine)}};
        cell.committed = runs[idx].committed;
        cell.sim_ns = runs[idx].sim_ns;
        cell.metrics = {
            {"line_writes",
             static_cast<double>(runs[idx].wear.total_line_writes)},
            {"max_line_writes",
             static_cast<double>(runs[idx].wear.max_line_writes)},
            {"hotspot_factor", runs[idx].wear.hotspot_factor}};
        return cell;
      });
    }
  }
  runner.Wait();

  PrintHeader("NVM device wear, YCSB (line writes during the run)");
  for (int m = 0; m < 2; m++) {
    printf("\n--- %s workload ---\n", YcsbMixtureName(mixtures[m]));
    printf("%-10s %16s %14s %12s\n", "engine", "line writes",
           "hottest line", "hotspot");
    uint64_t traditional[3] = {0, 0, 0};
    int idx = 0;
    for (size_t e = 0; e < AllEngines().size(); e++) {
      const WearStats& wear = runs[m * AllEngines().size() + e].wear;
      printf("%-10s %16llu %14llu %11.1fx\n",
             EngineKindName(AllEngines()[e]),
             (unsigned long long)wear.total_line_writes,
             (unsigned long long)wear.max_line_writes,
             wear.hotspot_factor);
      if (idx < 3) {
        traditional[idx] = wear.total_line_writes;
      } else if (traditional[idx - 3] > 0) {
        printf("%-10s   vs traditional: %.2fx fewer writes\n", "",
               static_cast<double>(traditional[idx - 3]) /
                   static_cast<double>(wear.total_line_writes));
      }
      idx++;
    }
  }
  printf(
      "\nPaper shape: NVM-aware engines write up to ~2x less to the\n"
      "device (no duplicated log images / page copies), extending its\n"
      "lifetime (Abstract, Sections 5.3/7).\n"
      "Note the NVM engines' high hotspot factor: it is the NV-WAL's\n"
      "anchor word, rewritten on every append/truncate — a single hot\n"
      "metadata line that device-level wear leveling (or anchor rotation)\n"
      "must absorb; bulk data wear is spread by the allocator's rotating\n"
      "placement.\n");
  return ExitStatus();
}
