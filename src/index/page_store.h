#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Abstract fixed-size page store underneath the copy-on-write B+tree.
/// Two implementations mirror the paper's two shadow-paging engines:
/// pages in a PMFS file (CoW engine) and pages straight from the NVM
/// allocator (NVM-CoW engine).
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual size_t page_size() const = 0;

  /// Allocate a page; contents undefined until written.
  virtual uint64_t AllocPage() = 0;
  virtual void FreePage(uint64_t pid) = 0;

  virtual void ReadPage(uint64_t pid, void* buf) = 0;
  virtual void WritePage(uint64_t pid, const void* buf) = 0;

  /// Make the given pages durable (fsync / sync primitive). `pids` must
  /// be sorted ascending — the flush order is part of the deterministic
  /// device-access sequence.
  virtual void FlushPages(const std::vector<uint64_t>& pids) = 0;

  /// The master record (Section 3.2): an atomically-updatable durable word
  /// pointing at the root of the current directory.
  virtual uint64_t ReadMaster() = 0;
  virtual void WriteMaster(uint64_t root_pid) = 0;

  /// Bytes of storage held by live pages (Fig. 14 accounting).
  virtual uint64_t StorageBytes() const = 0;
  /// Volatile memory (page cache etc.) held by the store.
  virtual uint64_t CacheBytes() const { return 0; }

  /// Reclaim every page not reachable from the committed tree. `reachable`
  /// is produced by the tree walk; called asynchronously in the paper,
  /// eagerly at open here.
  virtual void RetainOnly(const std::set<uint64_t>& reachable) = 0;
};

/// Open-addressing set of page offsets (keys are nonzero; 0 marks an
/// empty slot). Replaces std::set on the page-alloc hot path: Insert and
/// Erase are allocation-free once the table has grown to the working
/// size. Iteration order is unspecified — cold callers sort first.
class FlatPidSet {
 public:
  FlatPidSet() : slots_(16, 0) {}

  void Insert(uint64_t pid);
  bool Erase(uint64_t pid);
  size_t size() const { return count_; }

  /// Elements in ascending order (cold paths: GC, accounting).
  std::vector<uint64_t> Sorted() const;

 private:
  void Grow();

  std::vector<uint64_t> slots_;
  size_t count_ = 0;
};

/// Pages stored in a PMFS file with an in-memory page cache (the CoW
/// engine keeps hot pages cached, Section 3.2). Page id n lives at file
/// offset (n + 1) * page_size; the master record occupies the first page.
///
/// The cache is a flat structure: a dense pid -> frame-index table plus an
/// intrusive doubly-linked LRU over a frame pool, so steady-state hits,
/// misses, and evictions perform no heap allocation (frame buffers are
/// recycled; each fill still reserves a fresh modeled address, exactly as
/// the previous map-based cache did, keeping the cache model's access
/// stream bit-identical).
class PmfsPageStore : public PageStore {
 public:
  PmfsPageStore(Pmfs* fs, const std::string& file_name, size_t page_size,
                size_t cache_pages, StorageTag tag);
  ~PmfsPageStore() override;

  size_t page_size() const override { return page_size_; }
  uint64_t AllocPage() override;
  void FreePage(uint64_t pid) override;
  void ReadPage(uint64_t pid, void* buf) override;
  void WritePage(uint64_t pid, const void* buf) override;
  void FlushPages(const std::vector<uint64_t>& pids) override;
  uint64_t ReadMaster() override;
  void WriteMaster(uint64_t root_pid) override;
  uint64_t StorageBytes() const override;
  uint64_t CacheBytes() const override;
  void RetainOnly(const std::set<uint64_t>& reachable) override;

 private:
  static constexpr uint32_t kNoFrame = UINT32_MAX;
  // Footprint accounting charges this much host metadata per cached page
  // (the size of the old map-based cache's entry struct — kept stable so
  // the Fig. 14 cache-bytes columns don't move).
  static constexpr size_t kFrameAccountedBytes = 32;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    uint64_t vaddr = 0;  // stable modeled address of the cached frame
    uint64_t pid = 0;
    bool dirty = false;
    uint32_t lru_prev = kNoFrame;
    uint32_t lru_next = kNoFrame;
  };

  Frame* GetCached(uint64_t pid, bool fill_from_file);
  void EvictIfNeeded();
  void WriteBackFrame(Frame* frame);
  void LruUnlink(uint32_t idx);
  void LruPushFront(uint32_t idx);
  uint32_t FrameOf(uint64_t pid) const {
    return pid < page_to_frame_.size() ? page_to_frame_[pid] : kNoFrame;
  }
  void DropFrame(uint64_t pid, uint32_t idx);

  Pmfs* fs_;
  Pmfs::Fd fd_;
  size_t page_size_;
  size_t cache_capacity_;
  uint64_t next_pid_;
  std::vector<uint64_t> free_pids_;
  std::vector<uint32_t> page_to_frame_;  // dense: pids come from next_pid_
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  uint32_t lru_head_ = kNoFrame;  // most recent
  uint32_t lru_tail_ = kNoFrame;  // least recent
  size_t cached_count_ = 0;
};

/// Pages allocated directly from the NVM allocator; page ids are payload
/// offsets. Durability comes from the allocator's sync primitive — no
/// kernel crossing (Section 4.2). Pages are MarkPersisted only when
/// flushed, so pages of an uncommitted dirty directory are reclaimed by
/// allocator recovery after a crash — the paper's asynchronous dirty-
/// directory garbage collection.
class NvmPageStore : public PageStore {
 public:
  NvmPageStore(PmemAllocator* allocator, const std::string& name,
               size_t page_size, StorageTag tag);

  size_t page_size() const override { return page_size_; }
  uint64_t AllocPage() override;
  void FreePage(uint64_t pid) override;
  void ReadPage(uint64_t pid, void* buf) override;
  void WritePage(uint64_t pid, const void* buf) override;
  void FlushPages(const std::vector<uint64_t>& pids) override;
  uint64_t ReadMaster() override;
  void WriteMaster(uint64_t root_pid) override;
  uint64_t StorageBytes() const override;
  void RetainOnly(const std::set<uint64_t>& reachable) override;

 private:
  PmemAllocator* allocator_;
  NvmDevice* device_;
  size_t page_size_;
  StorageTag tag_;
  uint64_t master_off_;  // persistent 8-byte master record
  FlatPidSet live_pages_;
};

}  // namespace nvmdb
