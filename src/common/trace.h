#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nvmdb {

/// Opt-in Chrome trace-event JSON exporter ("chrome://tracing" / Perfetto
/// JSON format). Timestamps are *simulated* nanoseconds (the device stall
/// clock), so a trace shows the modeled timeline — where the NVM time
/// went — not host scheduling noise, and tracing never perturbs the
/// model: the writer only reads the clock, charges nothing, and prints
/// nothing to stdout.
///
/// Enabled by setting NVMDB_TRACE_DIR to a directory; each database then
/// writes trace_<pid>_<seq>.json on destruction. Emitters: the
/// coordinator (one span per transaction, tid = partition), the WAL
/// (group-commit force instants), the checkpointer (checkpoint-write
/// spans), and the crash harness (crash / crash-capture instants,
/// recovery spans).
class TraceWriter {
 public:
  /// `pid` distinguishes databases within one process in the trace UI
  /// (TraceWriter::FromEnv assigns it from a process-wide counter).
  explicit TraceWriter(std::string path, uint32_t pid = 0);
  ~TraceWriter();  // flushes

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Returns a writer if NVMDB_TRACE_DIR is set and non-empty, else null.
  static std::unique_ptr<TraceWriter> FromEnv();

  /// Complete event ("ph":"X"): [start_ns, start_ns + dur_ns) on the
  /// simulated clock.
  void Span(const char* name, const char* category, uint64_t start_ns,
            uint64_t dur_ns, uint32_t tid);

  /// Instant event ("ph":"i", thread scope).
  void Instant(const char* name, const char* category, uint64_t ts_ns,
               uint32_t tid);

  /// Write the JSON file now (idempotent; also run by the destructor).
  void Flush();

  const std::string& path() const { return path_; }

 private:
  struct Event {
    const char* name;  // string literals only — never freed
    const char* category;
    char phase;
    uint32_t tid;
    uint64_t ts_ns;
    uint64_t dur_ns;
  };

  /// Bound on buffered events so a huge run cannot exhaust memory; events
  /// past the cap are counted and reported on flush.
  static constexpr size_t kMaxEvents = size_t{1} << 20;

  void Append(const Event& e);

  std::mutex mu_;
  std::string path_;
  uint32_t pid_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
  bool flushed_ = false;
};

}  // namespace nvmdb
