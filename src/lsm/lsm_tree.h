#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/sstable.h"

namespace nvmdb {

/// Leveled LSM tree of SSTables (Section 3.3). Level 0 holds the runs
/// flushed from the MemTable, newest last; deeper levels hold one sorted
/// run each. When level 0 exceeds `level0_limit`, all of level 0 is merged
/// with level 1 into a fresh level-1 run; if that run grows past
/// `growth_factor` times the flush threshold, it cascades into level 2,
/// and so on. Tombstones are dropped only when the merge output lands in
/// the bottom-most populated level.
class LsmTree {
 public:
  LsmTree(Pmfs* fs, const Schema* schema, std::string file_prefix,
          size_t level0_limit, size_t growth_factor = 10);

  /// Adopt a freshly flushed run into level 0.
  void AddLevel0(std::unique_ptr<SsTable> table);

  /// Reserve a unique file name for a flush (the id is persisted with the
  /// manifest on the next AddLevel0, so names never collide after
  /// restart).
  std::string NextFlushFileName() { return NextFileName(); }

  /// Collect records for `key`, newest run first, stopping once a
  /// conclusive record (full/tombstone) is found. The pool form appends
  /// into a reusable DeltaRecordList (the per-lookup hot path).
  void Collect(uint64_t key, std::vector<DeltaRecord>* out) const;
  void Collect(uint64_t key, DeltaRecordList* out) const;

  /// Keys present anywhere in [lo, hi] (may include dead keys — callers
  /// materialize to filter).
  void CollectKeysInRange(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* out) const;

  /// Run compaction if level 0 is over its limit. Returns true if a merge
  /// happened.
  bool MaybeCompact();
  void ForceCompact();

  /// Re-open all runs recorded in the manifest file (after restart).
  Status Recover();

  size_t RunCount() const;
  uint64_t FileBytes() const;
  /// Bytes written by compaction so far (write-amplification accounting
  /// for the Table 3 cost model).
  uint64_t compaction_bytes_written() const {
    return compaction_bytes_written_;
  }

 private:
  void Compact(size_t into_level);
  void WriteManifest();
  std::string NextFileName();

  Pmfs* fs_;
  const Schema* schema_;
  std::string file_prefix_;
  size_t level0_limit_;
  size_t growth_factor_;
  uint64_t next_file_id_ = 1;
  // levels_[0] = level 0 (vector, newest last); levels_[i>0] has 0 or 1 run.
  std::vector<std::vector<std::unique_ptr<SsTable>>> levels_;
  uint64_t compaction_bytes_written_ = 0;
};

}  // namespace nvmdb
