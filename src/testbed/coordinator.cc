#include "testbed/coordinator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "common/timer.h"

namespace nvmdb {

RunResult Coordinator::Run(const std::vector<std::vector<TxnTask>>& queues) {
  assert(queues.size() == db_->num_partitions());
  RunResult result;
  std::atomic<uint64_t> committed{0}, aborted{0};

  const uint64_t stall_before = db_->device()->TotalStallNanos();
  Stopwatch watch;

  std::vector<std::thread> workers;
  workers.reserve(queues.size());
  for (size_t p = 0; p < queues.size(); p++) {
    workers.emplace_back([this, p, &queues, &committed, &aborted]() {
      StorageEngine* engine = db_->partition(p);
      uint64_t local_committed = 0, local_aborted = 0;
      for (const TxnTask& task : queues[p]) {
        const uint64_t txn_id = engine->Begin();
        if (task.body(engine, txn_id)) {
          engine->Commit(txn_id);
          local_committed++;
        } else {
          engine->Abort(txn_id);
          local_aborted++;
        }
      }
      committed.fetch_add(local_committed, std::memory_order_relaxed);
      aborted.fetch_add(local_aborted, std::memory_order_relaxed);
    });
  }
  for (auto& worker : workers) worker.join();

  result.wall_ns = watch.ElapsedNanos();
  result.stall_ns = db_->device()->TotalStallNanos() - stall_before;
  result.committed = committed.load();
  result.aborted = aborted.load();
  return result;
}

RunResult Coordinator::RunSerial(size_t partition,
                                 const std::vector<TxnTask>& queue) {
  RunResult result;
  NvmDevice* device = db_->device();
  const uint64_t stall_before = device->TotalStallNanos();
  Stopwatch watch;
  StorageEngine* engine = db_->partition(partition);

  // Response-latency tracking: a transaction's response time runs from
  // Begin() until LastDurableTxn() covers it — for group-committing
  // engines that is when the group is forced, not when Commit() returns.
  std::vector<std::pair<uint64_t, uint64_t>> pending;  // txn id, start
  std::vector<uint64_t> latencies;
  latencies.reserve(queue.size());
  auto drain_durable = [&]() {
    const uint64_t durable = engine->LastDurableTxn();
    const uint64_t now = device->TotalStallNanos();
    size_t kept = 0;
    for (auto& [txn, start] : pending) {
      if (txn <= durable) {
        latencies.push_back(now - start);
      } else {
        pending[kept++] = {txn, start};
      }
    }
    pending.resize(kept);
  };

  for (const TxnTask& task : queue) {
    const uint64_t start = device->TotalStallNanos();
    const uint64_t txn_id = engine->Begin();
    if (task.body(engine, txn_id)) {
      engine->Commit(txn_id);
      result.committed++;
      pending.emplace_back(txn_id, start);
      drain_durable();
    } else {
      engine->Abort(txn_id);
      result.aborted++;
    }
  }
  // Force the tail group so every committed txn gets a response time.
  engine->Checkpoint();
  drain_durable();

  result.wall_ns = watch.ElapsedNanos();
  result.stall_ns = device->TotalStallNanos() - stall_before;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    uint64_t sum = 0;
    for (uint64_t v : latencies) sum += v;
    result.latency.count = latencies.size();
    result.latency.mean_ns =
        static_cast<double>(sum) / static_cast<double>(latencies.size());
    result.latency.p50_ns = latencies[latencies.size() / 2];
    result.latency.p95_ns = latencies[latencies.size() * 95 / 100];
    result.latency.p99_ns = latencies[latencies.size() * 99 / 100];
  }
  return result;
}

}  // namespace nvmdb
