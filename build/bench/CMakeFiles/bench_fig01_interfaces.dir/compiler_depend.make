# Empty compiler generated dependencies file for bench_fig01_interfaces.
# This may be replaced when dependencies are built.
