/// Fig. 13 — Execution-time breakdown (storage / recovery / index / other)
/// while running YCSB with low skew under the low-NVM-latency profile.
///
/// Expected shape (paper): on write-heavy mixes the NVM-aware engines
/// spend ~13–18% on recovery-related work vs up to ~33% for traditional
/// ones; CoW engines spend relatively more on recovery even when read-
/// heavy (dirty-directory maintenance); Log engines spend the most on
/// index access (LSM lookups).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};

  PrintHeader(
      "Fig. 13: execution-time breakdown (%), YCSB low skew, low latency");
  for (YcsbMixture mixture : mixtures) {
    printf("\n--- %s workload ---\n", YcsbMixtureName(mixture));
    printf("%-10s %10s %10s %10s %10s\n", "engine", "storage", "recovery",
           "index", "other");
    for (EngineKind engine : AllEngines()) {
      const BenchRun run = RunYcsb(engine, mixture, YcsbSkew::kLow);
      const uint64_t total = run.breakdown.total();
      printf("%-10s", EngineKindName(engine));
      for (int c = 0; c < 4; c++) {
        printf("%9.1f%%", total == 0 ? 0.0
                                     : 100.0 * run.breakdown.ns[c] / total);
      }
      printf("\n");
    }
  }
  printf(
      "\nPaper shape: recovery share grows with write intensity and is\n"
      "much smaller for NVM-aware engines; Log engines index-heavy\n"
      "(Section 5.5, Fig. 13).\n");
  return 0;
}
