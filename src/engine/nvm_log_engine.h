#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/bloom_filter.h"
#include "engine/nv_wal.h"
#include "engine/storage_engine.h"
#include "index/nv_btree.h"
#include "lsm/delta.h"

namespace nvmdb {

/// NVM-aware log-structured engine (Section 4.3). Differences from the
/// traditional Log engine:
///  * MemTable records are persisted in place via the allocator interface
///    and indexed by a non-volatile B+tree — nothing is ever written
///    through the filesystem;
///  * a full MemTable is merely *marked immutable* (one atomic append to a
///    persistent run directory) instead of being serialized to an SSTable;
///  * compaction merges immutable MemTables into a new, larger MemTable;
///  * the WAL is a non-volatile linked list holding only undo pointers, so
///    recovery just rolls back the in-flight transaction.
class NvmLogEngine : public StorageEngine {
 public:
  explicit NvmLogEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kNvmLog; }

  Status CreateTable(const TableDef& def) override;
  Status Commit(uint64_t txn_id) override;
  Status Abort(uint64_t txn_id) override;
  Status Insert(uint64_t txn_id, uint32_t table_id,
                const Tuple& tuple) override;
  Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                const std::vector<ColumnUpdate>& updates) override;
  Status Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) override;
  Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                Tuple* out) override;
  Status ScanRange(uint64_t txn_id, uint32_t table_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(uint64_t, const Tuple&)>& fn)
      override;
  Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                         uint32_t index_id,
                         const std::vector<Value>& key_values,
                         std::vector<Tuple>* out) override;
  Status Recover() override;
  /// Force: mark the mutable MemTable immutable and compact.
  Status Checkpoint() override;
  FootprintStats Footprint() const override;

  uint64_t LastDurableTxn() const override { return last_committed_txn_; }

 private:
  /// Persistent MemTable: per-key chains of persisted records indexed by a
  /// non-volatile B+tree.
  class NvMemTable {
   public:
    NvMemTable(PmemAllocator* allocator, uint64_t tree_header_off);
    static uint64_t CreateTree(PmemAllocator* allocator, size_t node_bytes);

    /// Write + persist a record (unmarked). Returns its offset.
    uint64_t PrepareRecord(uint64_t key, DeltaKind kind,
                           const Slice& payload);
    /// Mark the record persisted and publish it at the chain head.
    void CommitRecord(uint64_t key, uint64_t record_off);
    /// Roll back a record (newest of its chain, or unpublished).
    void UndoRecord(uint64_t key, uint64_t record_off);

    void Collect(uint64_t key, std::vector<DeltaRecord>* out) const;
    void Collect(uint64_t key, DeltaRecordList* out) const;
    void CollectKeysInRange(uint64_t lo, uint64_t hi,
                            std::vector<uint64_t>* out) const;
    void ForEachKey(const std::function<void(
                        uint64_t, const std::vector<DeltaRecord>&)>& fn)
        const;
    BloomFilter BuildBloom() const;

    /// Free every record and the index tree (post-compaction teardown).
    void ReleaseAll();

    uint64_t tree_header() const { return tree_->header_offset(); }
    size_t approx_bytes() const { return approx_bytes_; }
    size_t KeyCount() const { return tree_->Count(); }

   private:
    struct RecordHeader {
      uint64_t next;
      uint8_t kind;
      uint8_t pad[3];
      uint32_t length;
    };

    PmemAllocator* allocator_;
    NvmDevice* device_;
    std::unique_ptr<NvBTree> tree_;  // key -> newest record offset
    size_t approx_bytes_ = 0;
  };

  struct Table {
    TableDef def;
    std::unique_ptr<NvMemTable> mutable_mem;
    std::vector<std::unique_ptr<NvMemTable>> immutables;  // oldest first
    std::vector<BloomFilter> blooms;                      // parallel array
    std::map<uint32_t, std::unique_ptr<NvBTree>> secondaries;
    uint64_t rundir_off = 0;  // persistent run directory
    uint64_t mutable_root_off = 0;  // persistent pointer to mutable tree
  };

  // Persistent run directory: u64 magic, u64 count, u64 entries[kMaxRuns].
  static constexpr size_t kMaxRuns = 64;

  // Secondary-index entry touched by the in-flight operation (undo info).
  struct SecRef {
    uint32_t index_id;
    uint64_t composite;
  };

  Table* GetTable(uint32_t table_id);
  bool GetTuple(Table* table, uint64_t key, Tuple* out);
  bool KeyExists(Table* table, uint64_t key);
  /// Encode the NV-WAL undo entry for the in-flight op (referencing the
  /// staged sec_added_/sec_removed_) into wal_entry_ and push it.
  /// Layout: u8 op | u32 table | u64 key | u64 record_off | u8 n_added |
  /// u8 n_removed | (n_added + n_removed) * { u32 index_id; u64 composite }.
  void PushUndoEntry(uint8_t op, uint32_t table_id, uint64_t key,
                     uint64_t record_off);
  void MarkImmutable(Table* table);
  void CompactTable(Table* table);
  void UndoOne(const uint8_t* payload, size_t size);
  void AttachTableRuns(Table* table);
  uint64_t* RunDirEntries(const Table& table) const;
  uint64_t RunDirCount(const Table& table) const;

  EngineConfig config_;
  PmemAllocator* allocator_;
  NvmDevice* device_;
  std::unique_ptr<NvWal> wal_;
  std::map<uint32_t, Table> tables_;
  uint64_t last_committed_txn_ = 0;

  // Reused per-operation scratch (engines are partition-confined).
  DeltaRecordList lookup_records_;  // coalescing chains
  std::vector<SecRef> sec_added_;
  std::vector<SecRef> sec_removed_;
  std::string wal_entry_;   // encoded NV-WAL undo entry
  std::string serial_buf_;  // inlined tuple / delta payload
  Tuple scratch_tuple_;     // update/delete old image
  Tuple scratch_tuple2_;    // update new image (secondary maintenance)
  Tuple scan_scratch_;
  Tuple exists_scratch_;
};

}  // namespace nvmdb
