#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bloom_filter.h"
#include "common/status.h"
#include "lsm/delta.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Immutable sorted run on the filesystem (Section 3.3). Layout:
///   u32 magic, u32 entry count,
///   entries: { u64 key, u8 kind, u32 len, payload } sorted by key,
///   bloom filter bytes,
///   footer: u64 bloom offset, u32 bloom size, u32 crc(over entries)
/// A per-table Bloom filter skips runs that cannot contain a key; the
/// volatile key->offset index is rebuilt by a scan at open (the paper's
/// Log engine rebuilds SSTable indexes during recovery).
class SsTable {
 public:
  /// Build a new SSTable from entries sorted by key.
  static std::unique_ptr<SsTable> Build(
      Pmfs* fs, const std::string& file_name,
      const std::vector<std::pair<uint64_t, DeltaRecord>>& entries);

  /// Open an existing SSTable (rebuilds index + loads bloom).
  static std::unique_ptr<SsTable> Open(Pmfs* fs,
                                       const std::string& file_name);

  ~SsTable();

  /// Fetch the record for `key` if present. The bloom filter may skip the
  /// lookup entirely.
  bool Get(uint64_t key, DeltaRecord* out) const;

  /// Keys in [lo, hi].
  void CollectKeysInRange(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* out) const;

  /// All entries in key order (compaction input).
  void ForEach(
      const std::function<void(uint64_t, const DeltaRecord&)>& fn) const;

  const std::string& file_name() const { return file_name_; }
  size_t entry_count() const { return index_.size(); }
  uint64_t FileBytes() const;

  /// Delete the backing file (after compaction).
  void Destroy();

 private:
  struct EntryRef {
    uint64_t offset;
    uint32_t length;  // payload length
    uint8_t kind;
  };

  SsTable(Pmfs* fs, std::string file_name);

  bool ReadEntry(const EntryRef& ref, DeltaRecord* out) const;

  Pmfs* fs_;
  std::string file_name_;
  Pmfs::Fd fd_ = -1;
  std::map<uint64_t, EntryRef> index_;  // key -> entry location
  std::unique_ptr<BloomFilter> bloom_;
  bool destroyed_ = false;
};

}  // namespace nvmdb
