#include "engine/wal.h"

#include <cassert>
#include <cstring>

#include "common/crc32.h"
#include "common/trace.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

void EncodeLogRecord(const LogRecord& record, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(record.op));
  payload.append(reinterpret_cast<const char*>(&record.txn_id), 8);
  payload.append(reinterpret_cast<const char*>(&record.table_id), 4);
  payload.append(reinterpret_cast<const char*>(&record.key), 8);
  uint32_t blen = static_cast<uint32_t>(record.before.size());
  uint32_t alen = static_cast<uint32_t>(record.after.size());
  payload.append(reinterpret_cast<const char*>(&blen), 4);
  payload.append(record.before);
  payload.append(reinterpret_cast<const char*>(&alen), 4);
  payload.append(record.after);

  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out->append(reinterpret_cast<const char*>(&crc), 4);
  out->append(reinterpret_cast<const char*>(&len), 4);
  out->append(payload);
}

bool DecodeLogRecord(const char* data, size_t size, LogRecord* out,
                     size_t* consumed) {
  if (size < 8) return false;
  uint32_t crc, len;
  memcpy(&crc, data, 4);
  memcpy(&len, data + 4, 4);
  // Minimum well-formed payload: op 1 + txn 8 + table 4 + key 8 + blen 4 +
  // alen 4 = 29 bytes (before/after may be empty).
  constexpr uint32_t kFixedPayload = 29;
  if (size < 8ull + len || len < kFixedPayload) return false;
  const char* payload = data + 8;
  if (Crc32c(payload, len) != crc) return false;  // torn write

  const char* p = payload;
  out->op = static_cast<LogOp>(*p);
  p += 1;
  memcpy(&out->txn_id, p, 8);
  p += 8;
  memcpy(&out->table_id, p, 4);
  p += 4;
  memcpy(&out->key, p, 8);
  p += 8;
  uint32_t blen;
  memcpy(&blen, p, 4);
  p += 4;
  // blen/alen are untrusted u32s read from the log; compare them against
  // the remaining payload (len - fixed fields) so the additions below can
  // never wrap and the assigns can never over-read.
  if (blen > len - kFixedPayload) return false;
  out->before.assign(p, blen);
  p += blen;
  uint32_t alen;
  memcpy(&alen, p, 4);
  p += 4;
  // The after-image must exactly fill the rest of the payload; a short
  // alen would silently drop trailing bytes a CRC collision smuggled in.
  if (alen != len - kFixedPayload - blen) return false;
  out->after.assign(p, alen);
  *consumed = 8ull + len;
  return true;
}

Wal::Wal(Pmfs* fs, const std::string& file_name, size_t group_commit_size)
    : fs_(fs),
      file_name_(file_name),
      group_commit_size_(group_commit_size == 0 ? 1 : group_commit_size) {
  fd_ = fs_->Open(file_name_, /*create=*/true, StorageTag::kLog);
  // Stable modeled address for the log buffer: base + byte offset. The
  // std::string's heap address moves with reallocation and ASLR, which
  // would make the cache model's counters drift between runs; the
  // reserved range depends only on construction order. 64 MB of address
  // space (free — it is never backed) comfortably covers the buffered
  // bytes between flushes.
  virtual_base_ = fs_->device()->ReserveVirtual(size_t{1} << 26);
}

Wal::~Wal() { fs_->Close(fd_); }

void Wal::Append(const LogRecord& record) {
  ScopedStallTag tag(StallTag::kWal);
  const size_t before = buffer_.size();
  EncodeLogRecord(record, &buffer_);
  // The log buffer lives in NVM-as-volatile-memory; model its traffic at
  // the buffer's stable modeled address so consecutive records share
  // cache lines exactly as they do in the real buffer.
  fs_->device()->TouchVirtual(
      reinterpret_cast<const void*>(virtual_base_ + before),
      buffer_.size() - before, true);
}

bool Wal::LogCommit(uint64_t txn_id) {
  ScopedStallTag tag(StallTag::kWal);
  LogRecord commit;
  commit.op = LogOp::kCommit;
  commit.txn_id = txn_id;
  // Route through Append so the commit record's buffer traffic is modeled
  // identically to every other record (it used to bypass TouchVirtual).
  Append(commit);
  last_buffered_commit_ = txn_id;
  commits_in_group_++;
  if (commits_in_group_ >= group_commit_size_) {
    Flush();
    return true;
  }
  return false;
}

Status Wal::Flush() {
  ScopedStallTag tag(StallTag::kWal);
  if (!buffer_.empty()) {
    Status s = fs_->Append(fd_, buffer_.data(), buffer_.size());
    if (!s.ok()) return s;
    buffer_.clear();
  }
  Status s = fs_->Fsync(fd_);
  if (!s.ok()) return s;
  commits_in_group_ = 0;
  // Durability acknowledgements only move forward: after a checkpoint
  // truncation resets last_buffered_commit_ to the durable watermark, an
  // empty-buffer Flush must not rewind (or advance to a stale id).
  assert(last_buffered_commit_ >= last_durable_txn_);
  if (last_buffered_commit_ > last_durable_txn_) {
    last_durable_txn_ = last_buffered_commit_;
  }
  if (TraceWriter* trace = NvmEnv::Trace()) {
    trace->Instant("group_commit_force", "wal",
                   fs_->device()->TotalStallNanos(), 0);
  }
  return Status::OK();
}

std::vector<LogRecord> Wal::ReadAll() {
  std::vector<LogRecord> records;
  const uint64_t size = fs_->Size(fd_);
  if (size == 0) return records;
  std::string data(size, '\0');
  size_t got = 0;
  fs_->Read(fd_, 0, data.data(), size, &got);
  data.resize(got);

  size_t pos = 0;
  while (pos < data.size()) {
    LogRecord record;
    size_t consumed = 0;
    if (!DecodeLogRecord(data.data() + pos, data.size() - pos, &record,
                         &consumed)) {
      break;  // torn tail from a crash mid-append
    }
    records.push_back(std::move(record));
    pos += consumed;
  }
  return records;
}

Status Wal::Truncate() {
  ScopedStallTag tag(StallTag::kWal);
  buffer_.clear();
  commits_in_group_ = 0;
  // Buffered-but-unflushed commits died with the buffer; without this, the
  // next empty-buffer Flush() would advance last_durable_txn_ to a stale
  // pre-truncation txn id and acknowledge transactions whose records no
  // longer exist anywhere.
  last_buffered_commit_ = last_durable_txn_;
  return fs_->Truncate(fd_, 0);
}

uint64_t Wal::DurableSizeBytes() const { return fs_->Size(fd_); }

}  // namespace nvmdb
