
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bloom_filter.cc" "src/CMakeFiles/nvmdb.dir/common/bloom_filter.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/bloom_filter.cc.o.d"
  "/root/repo/src/common/compress.cc" "src/CMakeFiles/nvmdb.dir/common/compress.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/compress.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/nvmdb.dir/common/config.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/config.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/nvmdb.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/nvmdb.dir/common/random.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/nvmdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/common/status.cc.o.d"
  "/root/repo/src/engine/checkpoint.cc" "src/CMakeFiles/nvmdb.dir/engine/checkpoint.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/checkpoint.cc.o.d"
  "/root/repo/src/engine/cow_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/cow_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/cow_engine.cc.o.d"
  "/root/repo/src/engine/inp_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/inp_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/inp_engine.cc.o.d"
  "/root/repo/src/engine/log_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/log_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/log_engine.cc.o.d"
  "/root/repo/src/engine/nv_wal.cc" "src/CMakeFiles/nvmdb.dir/engine/nv_wal.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/nv_wal.cc.o.d"
  "/root/repo/src/engine/nvm_cow_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/nvm_cow_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/nvm_cow_engine.cc.o.d"
  "/root/repo/src/engine/nvm_inp_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/nvm_inp_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/nvm_inp_engine.cc.o.d"
  "/root/repo/src/engine/nvm_log_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/nvm_log_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/nvm_log_engine.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/CMakeFiles/nvmdb.dir/engine/schema.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/schema.cc.o.d"
  "/root/repo/src/engine/storage_engine.cc" "src/CMakeFiles/nvmdb.dir/engine/storage_engine.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/storage_engine.cc.o.d"
  "/root/repo/src/engine/table_storage.cc" "src/CMakeFiles/nvmdb.dir/engine/table_storage.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/table_storage.cc.o.d"
  "/root/repo/src/engine/tuple.cc" "src/CMakeFiles/nvmdb.dir/engine/tuple.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/tuple.cc.o.d"
  "/root/repo/src/engine/wal.cc" "src/CMakeFiles/nvmdb.dir/engine/wal.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/engine/wal.cc.o.d"
  "/root/repo/src/index/cow_btree.cc" "src/CMakeFiles/nvmdb.dir/index/cow_btree.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/index/cow_btree.cc.o.d"
  "/root/repo/src/index/page_store.cc" "src/CMakeFiles/nvmdb.dir/index/page_store.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/index/page_store.cc.o.d"
  "/root/repo/src/lsm/delta.cc" "src/CMakeFiles/nvmdb.dir/lsm/delta.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/lsm/delta.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/CMakeFiles/nvmdb.dir/lsm/lsm_tree.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/nvmdb.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/CMakeFiles/nvmdb.dir/lsm/sstable.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/lsm/sstable.cc.o.d"
  "/root/repo/src/nvm/cache_sim.cc" "src/CMakeFiles/nvmdb.dir/nvm/cache_sim.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/nvm/cache_sim.cc.o.d"
  "/root/repo/src/nvm/nvm_device.cc" "src/CMakeFiles/nvmdb.dir/nvm/nvm_device.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/nvm/nvm_device.cc.o.d"
  "/root/repo/src/nvm/pmem_allocator.cc" "src/CMakeFiles/nvmdb.dir/nvm/pmem_allocator.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/nvm/pmem_allocator.cc.o.d"
  "/root/repo/src/nvm/pmfs.cc" "src/CMakeFiles/nvmdb.dir/nvm/pmfs.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/nvm/pmfs.cc.o.d"
  "/root/repo/src/nvm/sync.cc" "src/CMakeFiles/nvmdb.dir/nvm/sync.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/nvm/sync.cc.o.d"
  "/root/repo/src/testbed/coordinator.cc" "src/CMakeFiles/nvmdb.dir/testbed/coordinator.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/testbed/coordinator.cc.o.d"
  "/root/repo/src/testbed/database.cc" "src/CMakeFiles/nvmdb.dir/testbed/database.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/testbed/database.cc.o.d"
  "/root/repo/src/testbed/stats.cc" "src/CMakeFiles/nvmdb.dir/testbed/stats.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/testbed/stats.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/nvmdb.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/nvmdb.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/nvmdb.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
