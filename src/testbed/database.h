#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/storage_engine.h"
#include "nvm/nvm_device.h"
#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace nvmdb {

class CrashSim;
class TraceWriter;

/// Configuration of a whole DBMS testbed instance (Section 3's Fig. 2).
struct DatabaseConfig {
  size_t num_partitions = 8;
  size_t nvm_capacity = 512ull * 1024 * 1024;
  NvmLatencyConfig latency;
  CacheConfig cache;
  EngineKind engine = EngineKind::kInP;
  /// Per-engine knobs; allocator/fs/namespace fields are filled in per
  /// partition by the database.
  EngineConfig engine_config;
};

/// The DBMS testbed: an NVM device (emulator stand-in), the NVM-aware
/// allocator and PMFS on top of it, and one storage-engine instance per
/// partition. The database is partitioned so that transactions execute
/// serially within a partition (Section 3's lightweight concurrency
/// scheme); the coordinator maps partitions to worker threads.
class Database {
 public:
  explicit Database(const DatabaseConfig& config);
  ~Database();

  /// Register a table on every partition.
  Status CreateTable(const TableDef& def);

  StorageEngine* partition(size_t i) { return engines_[i].get(); }
  size_t num_partitions() const { return engines_.size(); }

  NvmDevice* device() { return device_.get(); }
  PmemAllocator* allocator() { return allocator_.get(); }
  Pmfs* fs() { return fs_.get(); }
  /// Chrome-trace exporter for this database; null unless NVMDB_TRACE_DIR
  /// is set (common/trace.h). The coordinator emits transaction spans
  /// through it; the file is written when the database is destroyed.
  TraceWriter* trace() { return trace_.get(); }
  const DatabaseConfig& config() const { return config_; }

  /// Simulate a power failure: unflushed data is lost, all volatile state
  /// (engines, allocator free lists, file handles) is torn down.
  void Crash();

  /// Power failure at the crash point `sim` captured: volatile state is
  /// torn down and the device contents are replaced with the durable-only
  /// image snapshotted at the armed event, so the subsequent `Recover()`
  /// observes exactly what a crash at that event would have left. `sim`
  /// must hold a capture.
  void CrashAt(const CrashSim& sim);

  /// Bring the database back after Crash(): allocator recovery, engine
  /// re-instantiation, table re-registration, engine recovery protocols.
  /// Returns the wall-clock nanoseconds spent recovering (Fig. 12's
  /// metric).
  uint64_t Recover();

  /// Whole-database storage footprint (Fig. 14): persistent components
  /// from the allocator's per-tag accounting plus the engines' volatile
  /// memory (page caches, volatile indexes).
  FootprintStats Footprint() const;

  /// Flush any group-commit batches / force engine checkpoint-like drains.
  void Drain();

 private:
  void InstantiateEngines();

  DatabaseConfig config_;
  std::unique_ptr<NvmDevice> device_;
  std::unique_ptr<TraceWriter> trace_;
  std::unique_ptr<PmemAllocator> allocator_;
  std::unique_ptr<Pmfs> fs_;
  std::vector<std::unique_ptr<StorageEngine>> engines_;
  std::vector<TableDef> table_defs_;
};

}  // namespace nvmdb
