#include <gtest/gtest.h>

#include "common/random.h"
#include "lsm/lsm_tree.h"
#include "lsm/memtable.h"

namespace nvmdb {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kUInt64, 8},
                 {"name", ColumnType::kVarchar, 32},
                 {"count", ColumnType::kUInt64, 8}});
}

Tuple MakeTuple(const Schema* schema, uint64_t id, const std::string& name,
                uint64_t count) {
  Tuple t(schema);
  t.SetU64(0, id);
  t.SetString(1, name);
  t.SetU64(2, count);
  return t;
}

// --- Delta encoding / coalescing ------------------------------------------------

TEST(DeltaTest, EncodeDecodeUpdates) {
  const Schema schema = TestSchema();
  std::vector<ColumnUpdate> updates;
  updates.push_back({1, Value::Str("renamed")});
  updates.push_back({2, Value::U64(99)});
  const std::string bytes = EncodeUpdates(schema, updates);
  const auto out = DecodeUpdates(schema, Slice(bytes));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].column, 1u);
  EXPECT_EQ(out[0].value.str, "renamed");
  EXPECT_EQ(out[1].column, 2u);
  EXPECT_EQ(out[1].value.num, 99u);
}

TEST(DeltaTest, MaterializeAppliesDeltasOverBase) {
  const Schema schema = TestSchema();
  const Tuple base = MakeTuple(&schema, 1, "orig", 5);
  std::vector<DeltaRecord> records;
  // Newest first: delta(count=7), delta(name=new), full(base).
  records.push_back(
      {DeltaKind::kDelta, EncodeUpdates(schema, {{2, Value::U64(7)}})});
  records.push_back({DeltaKind::kDelta,
                     EncodeUpdates(schema, {{1, Value::Str("new")}})});
  records.push_back({DeltaKind::kFull, base.SerializeInlined()});
  Tuple out(&schema);
  ASSERT_TRUE(MaterializeNewestFirst(schema, records, &out));
  EXPECT_EQ(out.GetU64(0), 1u);
  EXPECT_EQ(out.GetString(1), "new");
  EXPECT_EQ(out.GetU64(2), 7u);
}

TEST(DeltaTest, TombstoneConcludesAsDead) {
  const Schema schema = TestSchema();
  std::vector<DeltaRecord> records;
  records.push_back({DeltaKind::kTombstone, ""});
  records.push_back({DeltaKind::kFull,
                     MakeTuple(&schema, 1, "x", 0).SerializeInlined()});
  Tuple out(&schema);
  EXPECT_FALSE(MaterializeNewestFirst(schema, records, &out));
}

TEST(DeltaTest, CoalesceMergesDeltasNewestWins) {
  const Schema schema = TestSchema();
  std::vector<DeltaRecord> records;
  records.push_back(
      {DeltaKind::kDelta, EncodeUpdates(schema, {{2, Value::U64(2)}})});
  records.push_back(
      {DeltaKind::kDelta, EncodeUpdates(schema, {{2, Value::U64(1)}})});
  const DeltaRecord out = CoalesceNewestFirst(schema, records);
  EXPECT_EQ(out.kind, DeltaKind::kDelta);
  const auto updates = DecodeUpdates(schema, Slice(out.payload));
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].value.num, 2u);  // newest wins
}

TEST(DeltaTest, CoalesceFoldsIntoFullImage) {
  const Schema schema = TestSchema();
  std::vector<DeltaRecord> records;
  records.push_back(
      {DeltaKind::kDelta, EncodeUpdates(schema, {{2, Value::U64(10)}})});
  records.push_back({DeltaKind::kFull,
                     MakeTuple(&schema, 1, "base", 0).SerializeInlined()});
  const DeltaRecord out = CoalesceNewestFirst(schema, records);
  EXPECT_EQ(out.kind, DeltaKind::kFull);
  const Tuple t = Tuple::ParseInlined(&schema, Slice(out.payload));
  EXPECT_EQ(t.GetU64(2), 10u);
  EXPECT_EQ(t.GetString(1), "base");
}

// --- MemTable ------------------------------------------------------------------

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        schema_(TestSchema()),
        mem_(&allocator_, 512) {}

  NvmDevice device_;
  PmemAllocator allocator_;
  Schema schema_;
  MemTable mem_;
};

TEST_F(MemTableTest, PushCollectNewestFirst) {
  mem_.Push(1, DeltaKind::kFull, Slice("base"));
  mem_.Push(1, DeltaKind::kDelta, Slice("d1"));
  mem_.Push(1, DeltaKind::kDelta, Slice("d2"));
  std::vector<DeltaRecord> records;
  mem_.Collect(1, &records);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload, "d2");
  EXPECT_EQ(records[2].payload, "base");
}

TEST_F(MemTableTest, PopNewestUndoesPush) {
  mem_.Push(1, DeltaKind::kFull, Slice("base"));
  const uint64_t off = mem_.Push(1, DeltaKind::kDelta, Slice("d1"));
  EXPECT_TRUE(mem_.PopNewest(1, off));
  std::vector<DeltaRecord> records;
  mem_.Collect(1, &records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "base");
  // Popping a non-head record fails.
  EXPECT_FALSE(mem_.PopNewest(1, off));
}

TEST_F(MemTableTest, PopLastRecordRemovesKey) {
  const uint64_t off = mem_.Push(5, DeltaKind::kFull, Slice("x"));
  EXPECT_TRUE(mem_.PopNewest(5, off));
  EXPECT_FALSE(mem_.ContainsKey(5));
  EXPECT_EQ(mem_.KeyCount(), 0u);
}

TEST_F(MemTableTest, ApproxBytesAndRelease) {
  const AllocatorStats before = allocator_.stats();
  for (uint64_t i = 0; i < 100; i++) {
    mem_.Push(i, DeltaKind::kFull, Slice(std::string(50, 'a')));
  }
  EXPECT_GE(mem_.ApproxBytes(), 100u * 50);
  mem_.ReleaseAll();
  EXPECT_EQ(mem_.ApproxBytes(), 0u);
  EXPECT_EQ(allocator_.stats().total_used, before.total_used);
}

TEST_F(MemTableTest, KeysInRangeSorted) {
  for (uint64_t i : {5, 1, 9, 3, 7}) {
    mem_.Push(i, DeltaKind::kFull, Slice("x"));
  }
  std::vector<uint64_t> keys;
  mem_.CollectKeysInRange(2, 8, &keys);
  EXPECT_EQ(keys, (std::vector<uint64_t>{3, 5, 7}));
}

// --- SSTable -------------------------------------------------------------------

class SsTableTest : public ::testing::Test {
 protected:
  SsTableTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_),
        schema_(TestSchema()) {}

  std::vector<std::pair<uint64_t, DeltaRecord>> MakeEntries(int n) {
    std::vector<std::pair<uint64_t, DeltaRecord>> entries;
    for (int i = 0; i < n; i++) {
      entries.emplace_back(
          i * 2, DeltaRecord{DeltaKind::kFull,
                             MakeTuple(&schema_, i * 2, "name", i)
                                 .SerializeInlined()});
    }
    return entries;
  }

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
  Schema schema_;
};

TEST_F(SsTableTest, BuildGetForEach) {
  auto table = SsTable::Build(&fs_, "run1.sst", MakeEntries(100));
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->entry_count(), 100u);
  DeltaRecord record;
  ASSERT_TRUE(table->Get(42, &record));
  const Tuple t = Tuple::ParseInlined(&schema_, Slice(record.payload));
  EXPECT_EQ(t.GetU64(0), 42u);
  EXPECT_FALSE(table->Get(43, &record));  // odd keys absent
  size_t count = 0;
  uint64_t last = 0;
  table->ForEach([&](uint64_t key, const DeltaRecord&) {
    EXPECT_GE(key, last);
    last = key;
    count++;
  });
  EXPECT_EQ(count, 100u);
}

TEST_F(SsTableTest, ReopenRebuildsIndexAndBloom) {
  { auto table = SsTable::Build(&fs_, "run1.sst", MakeEntries(50)); }
  auto table = SsTable::Open(&fs_, "run1.sst");
  ASSERT_NE(table, nullptr);
  DeltaRecord record;
  EXPECT_TRUE(table->Get(0, &record));
  EXPECT_TRUE(table->Get(98, &record));
  EXPECT_FALSE(table->Get(99, &record));
}

TEST_F(SsTableTest, CorruptFileRejectedAtOpen) {
  { auto table = SsTable::Build(&fs_, "run1.sst", MakeEntries(10)); }
  Pmfs::Fd fd = fs_.Open("run1.sst", false);
  char byte = 0x77;
  fs_.Write(fd, 20, &byte, 1);
  fs_.Fsync(fd);
  fs_.Close(fd);
  EXPECT_EQ(SsTable::Open(&fs_, "run1.sst"), nullptr);
}

TEST_F(SsTableTest, KeysInRange) {
  auto table = SsTable::Build(&fs_, "run1.sst", MakeEntries(100));
  std::vector<uint64_t> keys;
  table->CollectKeysInRange(10, 16, &keys);
  EXPECT_EQ(keys, (std::vector<uint64_t>{10, 12, 14, 16}));
}

TEST_F(SsTableTest, DestroyDeletesFile) {
  auto table = SsTable::Build(&fs_, "run1.sst", MakeEntries(10));
  table->Destroy();
  EXPECT_FALSE(fs_.Exists("run1.sst"));
}

// --- LsmTree -------------------------------------------------------------------

class LsmTreeTest : public SsTableTest {};

TEST_F(LsmTreeTest, CollectStopsAtConclusiveRecord) {
  LsmTree lsm(&fs_, &schema_, "t1", 4);
  // Older run: full image. Newer run: delta.
  lsm.AddLevel0(SsTable::Build(
      &fs_, "a.sst",
      {{1, {DeltaKind::kFull,
            MakeTuple(&schema_, 1, "v1", 0).SerializeInlined()}}}));
  lsm.AddLevel0(SsTable::Build(
      &fs_, "b.sst",
      {{1, {DeltaKind::kDelta,
            EncodeUpdates(schema_, {{2, Value::U64(5)}})}}}));
  std::vector<DeltaRecord> records;
  lsm.Collect(1, &records);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, DeltaKind::kDelta);
  EXPECT_EQ(records[1].kind, DeltaKind::kFull);
  Tuple t(&schema_);
  ASSERT_TRUE(MaterializeNewestFirst(schema_, records, &t));
  EXPECT_EQ(t.GetU64(2), 5u);
}

TEST_F(LsmTreeTest, CompactionMergesRuns) {
  LsmTree lsm(&fs_, &schema_, "t1", 2);
  for (int run = 0; run < 4; run++) {
    std::vector<std::pair<uint64_t, DeltaRecord>> entries;
    for (uint64_t k = 0; k < 20; k++) {
      entries.emplace_back(
          k, DeltaRecord{DeltaKind::kFull,
                         MakeTuple(&schema_, k, "r" + std::to_string(run),
                                   run)
                             .SerializeInlined()});
    }
    lsm.AddLevel0(
        SsTable::Build(&fs_, "r" + std::to_string(run) + ".sst", entries));
  }
  EXPECT_TRUE(lsm.MaybeCompact());
  EXPECT_EQ(lsm.RunCount(), 1u);
  // Newest run's values won the merge.
  std::vector<DeltaRecord> records;
  lsm.Collect(5, &records);
  ASSERT_EQ(records.size(), 1u);
  Tuple t = Tuple::ParseInlined(&schema_, Slice(records[0].payload));
  EXPECT_EQ(t.GetString(1), "r3");
}

TEST_F(LsmTreeTest, TombstonesDroppedAtBottomKeptAbove) {
  LsmTree lsm(&fs_, &schema_, "t1", 1);
  lsm.AddLevel0(SsTable::Build(
      &fs_, "a.sst",
      {{1, {DeltaKind::kFull,
            MakeTuple(&schema_, 1, "x", 0).SerializeInlined()}}}));
  lsm.AddLevel0(
      SsTable::Build(&fs_, "b.sst", {{1, {DeltaKind::kTombstone, ""}}}));
  lsm.ForceCompact();
  // Key 1 was deleted; the merged bottom run drops the tombstone and the
  // key entirely.
  std::vector<DeltaRecord> records;
  lsm.Collect(1, &records);
  EXPECT_TRUE(records.empty());
}

TEST_F(LsmTreeTest, ManifestRecovery) {
  {
    LsmTree lsm(&fs_, &schema_, "t1", 4);
    lsm.AddLevel0(SsTable::Build(
        &fs_, "a.sst",
        {{7, {DeltaKind::kFull,
              MakeTuple(&schema_, 7, "keep", 3).SerializeInlined()}}}));
  }
  LsmTree lsm(&fs_, &schema_, "t1", 4);
  ASSERT_TRUE(lsm.Recover().ok());
  EXPECT_EQ(lsm.RunCount(), 1u);
  std::vector<DeltaRecord> records;
  lsm.Collect(7, &records);
  ASSERT_EQ(records.size(), 1u);
}

TEST_F(LsmTreeTest, RangeCollectAcrossRuns) {
  LsmTree lsm(&fs_, &schema_, "t1", 4);
  lsm.AddLevel0(SsTable::Build(
      &fs_, "a.sst",
      {{2, {DeltaKind::kFull, MakeTuple(&schema_, 2, "a", 0)
                                  .SerializeInlined()}},
       {4, {DeltaKind::kFull, MakeTuple(&schema_, 4, "a", 0)
                                  .SerializeInlined()}}}));
  lsm.AddLevel0(SsTable::Build(
      &fs_, "b.sst",
      {{3, {DeltaKind::kFull, MakeTuple(&schema_, 3, "b", 0)
                                  .SerializeInlined()}}}));
  std::vector<uint64_t> keys;
  lsm.CollectKeysInRange(2, 4, &keys);
  EXPECT_EQ(keys, (std::vector<uint64_t>{2, 3, 4}));
}

}  // namespace
}  // namespace nvmdb
