#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "test_util.h"

namespace nvmdb {
namespace {

using testutil::MakeDb;
using testutil::SimpleTable;
using testutil::SimpleTuple;

/// Crash-point fuzzing: run a random committed workload, crash at a random
/// transaction boundary (with a possibly in-flight transaction), recover,
/// and verify the recovered state matches the shadow model of *durably
/// acknowledged* transactions. Parameterized over every engine and
/// several seeds — each (engine, seed) pair explores a different crash
/// point and operation interleaving.
class CrashFuzzTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(CrashFuzzTest, RecoveredStateMatchesDurableModel) {
  const EngineKind kind = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  auto db = MakeDb(kind);
  const TableDef def = SimpleTable();
  ASSERT_TRUE(db->CreateTable(def).ok());
  StorageEngine* engine = db->partition(0);
  Random rng(seed * 7919 + 13);

  // Model of the database as of the last drain point (everything before a
  // drain is durably acknowledged by every engine).
  std::map<uint64_t, uint64_t> durable_model;
  std::map<uint64_t, uint64_t> current_model;

  const int total_txns = 60 + static_cast<int>(rng.Uniform(120));
  const int crash_after = static_cast<int>(rng.Uniform(total_txns));
  int executed = 0;
  bool crashed = false;

  while (executed < total_txns) {
    // Random batch, then a drain (making everything durable), then maybe
    // the crash strikes mid-stream.
    const int batch = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < batch && executed < total_txns; i++, executed++) {
      const uint64_t key = rng.Uniform(40);
      const uint64_t txn = engine->Begin();
      const int op = static_cast<int>(rng.Uniform(3));
      if (op == 0 && current_model.count(key) == 0) {
        const uint64_t count = rng.Uniform(1000);
        if (engine->Insert(txn, 1, SimpleTuple(&def.schema, key, "f", count))
                .ok()) {
          current_model[key] = count;
        }
      } else if (op == 1 && current_model.count(key) != 0) {
        const uint64_t count = rng.Uniform(1000);
        if (engine->Update(txn, 1, key, {{3, Value::U64(count)}}).ok()) {
          current_model[key] = count;
        }
      } else if (op == 2 && current_model.count(key) != 0) {
        if (engine->Delete(txn, 1, key).ok()) current_model.erase(key);
      }
      engine->Commit(txn);

      if (executed == crash_after) {
        // Possibly leave one transaction in flight.
        if (rng.Percent(50)) {
          const uint64_t phantom = engine->Begin();
          engine->Insert(phantom, 1,
                         SimpleTuple(&def.schema, 999, "phantom"));
          // no commit
        }
        db->Crash();
        crashed = true;
        break;
      }
    }
    if (crashed) break;
    db->Drain();
    durable_model = current_model;
  }

  if (!crashed) {
    db->Drain();
    durable_model = current_model;
    db->Crash();
  }
  db->Recover();
  engine = db->partition(0);

  // Verification: every key in the durable model must be present with its
  // value; keys beyond it may or may not be present (committed-after-drain
  // txns are allowed to survive, e.g. on the NVM engines), but whatever IS
  // present must be internally consistent (no phantom, no torn values).
  const uint64_t txn = engine->Begin();
  for (const auto& [key, count] : durable_model) {
    Tuple out;
    const Status s = engine->Select(txn, 1, key, &out);
    if (current_model.count(key) != 0 &&
        current_model.at(key) == count) {
      // Still live in the full history: must exist with either the durable
      // or a later committed value.
      ASSERT_TRUE(s.ok()) << "engine " << EngineKindName(kind) << " key "
                          << key;
    }
    if (s.ok() && current_model.count(key) != 0) {
      const uint64_t v = out.GetU64(3);
      EXPECT_TRUE(v == count || v == current_model.at(key))
          << "key " << key << " value " << v;
    }
  }
  Tuple phantom_out;
  EXPECT_TRUE(engine->Select(txn, 1, 999, &phantom_out).IsNotFound())
      << "in-flight transaction leaked into recovered state";
  engine->Commit(txn);

  // The database must remain fully usable after recovery.
  const uint64_t txn2 = engine->Begin();
  ASSERT_TRUE(
      engine->Insert(txn2, 1, SimpleTuple(&def.schema, 500, "post")).ok());
  engine->Commit(txn2);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, CrashFuzzTest,
    ::testing::Combine(::testing::ValuesIn(testutil::kAllEngines),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      std::string name = EngineKindName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nvmdb
