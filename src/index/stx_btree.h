#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace nvmdb {

/// In-memory B+tree, standing in for the STX B+tree library the paper's
/// volatile engines use for all indexes (Section 3.1). The node byte size
/// is a runtime constructor parameter so the Fig. 15 / Appendix B node-size
/// sweep can exercise 64 B – 16 KB nodes without recompiling; the paper's
/// default (and ours) is 512 B.
///
/// Deletions remove entries without rebalancing (a node is unlinked only
/// when it becomes empty). OLTP index workloads shrink rarely, and the
/// simplification keeps the structure identical to its non-volatile twin.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class BTree {
 public:
  explicit BTree(size_t node_bytes = 512, Compare cmp = Compare())
      : cmp_(cmp), node_bytes_(node_bytes) {
    // Fan-out derived from the node byte budget the way STX does: an inner
    // node holds keys + child pointers, a leaf holds keys + values.
    inner_cap_ = node_bytes / (sizeof(Key) + sizeof(void*));
    if (inner_cap_ < 4) inner_cap_ = 4;
    leaf_cap_ = node_bytes / (sizeof(Key) + sizeof(Value));
    if (leaf_cap_ < 4) leaf_cap_ = 4;
  }

  ~BTree() { Clear(); }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Memory-traffic hook: called with (context, address, bytes, is_write)
  /// for every node visited. The testbed routes this into the NVM
  /// device's cache model because in an NVM-only hierarchy even
  /// "volatile" index nodes live in NVM (Section 2.1) — their misses are
  /// NVM loads. Raw function pointer + context rather than std::function
  /// for the same reason as CacheCallbacks: the hook fires per node visit
  /// on every index operation, and the std::function indirection is
  /// measurable there.
  using AccessHook = void (*)(void* ctx, const void* addr, size_t bytes,
                              bool is_write);
  void SetAccessHook(AccessHook hook, void* ctx) {
    access_hook_ = hook;
    hook_ctx_ = ctx;
  }

  /// Stable modeled-address provider (NvmDevice::ReserveVirtual). When
  /// set, every node created from then on is assigned a reserved range and
  /// the access hook sees that address instead of the node's heap address.
  /// Heap addresses vary with ASLR run to run, which makes the cache
  /// model's set indices — and hence the load/store counters — drift
  /// between otherwise identical executions; reserved addresses depend
  /// only on node-creation order, so the model becomes bit-reproducible.
  using VirtualAllocFn = uint64_t (*)(void* ctx, size_t bytes);
  void SetVirtualAllocator(VirtualAllocFn fn, void* ctx) {
    valloc_ = fn;
    valloc_ctx_ = ctx;
  }

  /// Insert or overwrite. Returns false if the key already existed.
  bool Insert(const Key& key, const Value& value) {
    if (root_ == nullptr) {
      Leaf* leaf = Reserve(new Leaf(leaf_cap_));
      leaf->keys.push_back(key);
      leaf->values.push_back(value);
      root_ = leaf;
      first_leaf_ = leaf;
      size_ = 1;
      return true;
    }
    Key split_key;
    Node* split_node = nullptr;
    bool inserted = InsertRec(root_, key, value, &split_key, &split_node);
    if (split_node != nullptr) {
      Inner* new_root = Reserve(new Inner(inner_cap_));
      new_root->keys.push_back(split_key);
      new_root->children.push_back(root_);
      new_root->children.push_back(split_node);
      root_ = new_root;
    }
    if (inserted) size_++;
    return inserted;
  }

  /// Point lookup.
  bool Find(const Key& key, Value* out) const {
    const Node* node = root_;
    if (node == nullptr) return false;
    while (!node->leaf) {
      Touch(node, false);
      const Inner* inner = static_cast<const Inner*>(node);
      node = inner->children[ChildIndex(inner, key)];
    }
    Touch(node, false);
    const Leaf* leaf = static_cast<const Leaf*>(node);
    const size_t i = LowerBound(leaf->keys, key);
    if (i < leaf->keys.size() && Equal(leaf->keys[i], key)) {
      if (out != nullptr) *out = leaf->values[i];
      return true;
    }
    return false;
  }

  bool Contains(const Key& key) const { return Find(key, nullptr); }

  /// Remove a key. Returns false if absent.
  bool Erase(const Key& key) {
    if (root_ == nullptr) return false;
    bool erased = EraseRec(root_, key);
    if (erased) {
      size_--;
      if (!root_->leaf) {
        Inner* inner = static_cast<Inner*>(root_);
        if (inner->children.size() == 1) {
          root_ = inner->children[0];
          inner->children.clear();
          delete inner;
        } else if (inner->children.empty()) {
          delete inner;
          root_ = nullptr;
        }
      } else if (root_->keys.empty()) {
        if (first_leaf_ == root_) first_leaf_ = nullptr;
        delete root_;
        root_ = nullptr;
      }
    }
    return erased;
  }

  /// Visit all entries with key in [lo, hi], in key order. The callback
  /// returns false to stop early.
  void Scan(const Key& lo, const Key& hi,
            const std::function<bool(const Key&, const Value&)>& fn) const {
    const Node* node = root_;
    if (node == nullptr) return;
    while (!node->leaf) {
      Touch(node, false);
      const Inner* inner = static_cast<const Inner*>(node);
      node = inner->children[ChildIndex(inner, lo)];
    }
    const Leaf* leaf = static_cast<const Leaf*>(node);
    size_t i = LowerBound(leaf->keys, lo);
    while (leaf != nullptr) {
      Touch(leaf, false);
      for (; i < leaf->keys.size(); i++) {
        if (cmp_(hi, leaf->keys[i])) return;  // key > hi
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Visit every entry in key order.
  void ScanAll(
      const std::function<bool(const Key&, const Value&)>& fn) const {
    const Leaf* leaf = first_leaf_;
    while (leaf != nullptr) {
      Touch(leaf, false);
      for (size_t i = 0; i < leaf->keys.size(); i++) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    DeleteRec(root_);
    root_ = nullptr;
    first_leaf_ = nullptr;
    size_ = 0;
  }

  /// Approximate heap bytes held by nodes (Fig. 14 accounting for the
  /// volatile engines' index component).
  size_t MemoryBytes() const { return CountBytes(root_); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    virtual ~Node() = default;
    bool leaf;
    uint64_t vaddr = 0;  // modeled address; 0 = use the heap address
    std::vector<Key> keys;
  };

  struct Inner : Node {
    explicit Inner(size_t cap) : Node(false) {
      this->keys.reserve(cap);
      children.reserve(cap + 1);
    }
    std::vector<Node*> children;
  };

  struct Leaf : Node {
    explicit Leaf(size_t cap) : Node(true) {
      this->keys.reserve(cap);
      values.reserve(cap);
    }
    std::vector<Value> values;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };

  bool Equal(const Key& a, const Key& b) const {
    return !cmp_(a, b) && !cmp_(b, a);
  }

  /// Hand a freshly created node its modeled address. The reserved span
  /// (node budget + slack for the one-entry overshoot that precedes a
  /// split) guarantees Touch never reads past a node's own range.
  template <typename N>
  N* Reserve(N* node) {
    if (valloc_ != nullptr) node->vaddr = valloc_(valloc_ctx_, node_bytes_ + 128);
    return node;
  }

  void Touch(const Node* node, bool is_write) const {
    if (access_hook_ == nullptr) return;
    size_t bytes = node->keys.size() * sizeof(Key);
    if (node->leaf) {
      bytes += static_cast<const Leaf*>(node)->values.size() * sizeof(Value);
    } else {
      bytes += static_cast<const Inner*>(node)->children.size() *
               sizeof(Node*);
    }
    // The node's modeled address (or its own stable heap address when no
    // virtual allocator is installed) stands in for its storage.
    const void* addr =
        node->vaddr != 0 ? reinterpret_cast<const void*>(node->vaddr) : node;
    access_hook_(hook_ctx_, addr, bytes < 16 ? 16 : bytes, is_write);
  }

  size_t LowerBound(const std::vector<Key>& keys, const Key& key) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cmp_(keys[mid], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Index of the child subtree that may contain `key`.
  size_t ChildIndex(const Inner* inner, const Key& key) const {
    // keys[i] is the smallest key in children[i+1].
    size_t lo = 0, hi = inner->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cmp_(key, inner->keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  bool InsertRec(Node* node, const Key& key, const Value& value,
                 Key* split_key, Node** split_node) {
    *split_node = nullptr;
    if (node->leaf) {
      Touch(node, true);
      Leaf* leaf = static_cast<Leaf*>(node);
      const size_t i = LowerBound(leaf->keys, key);
      if (i < leaf->keys.size() && Equal(leaf->keys[i], key)) {
        leaf->values[i] = value;
        return false;
      }
      leaf->keys.insert(leaf->keys.begin() + i, key);
      leaf->values.insert(leaf->values.begin() + i, value);
      if (leaf->keys.size() > leaf_cap_) SplitLeaf(leaf, split_key,
                                                  split_node);
      return true;
    }
    Inner* inner = static_cast<Inner*>(node);
    Touch(inner, false);
    const size_t ci = ChildIndex(inner, key);
    Key child_split_key;
    Node* child_split = nullptr;
    const bool inserted =
        InsertRec(inner->children[ci], key, value, &child_split_key,
                  &child_split);
    if (child_split != nullptr) {
      Touch(inner, true);
      inner->keys.insert(inner->keys.begin() + ci, child_split_key);
      inner->children.insert(inner->children.begin() + ci + 1, child_split);
      if (inner->keys.size() > inner_cap_) {
        SplitInner(inner, split_key, split_node);
      }
    }
    return inserted;
  }

  void SplitLeaf(Leaf* leaf, Key* split_key, Node** split_node) {
    Leaf* right = Reserve(new Leaf(leaf_cap_));
    const size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
    right->values.assign(leaf->values.begin() + mid, leaf->values.end());
    leaf->keys.resize(mid);
    leaf->values.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right;
    leaf->next = right;
    *split_key = right->keys.front();
    *split_node = right;
  }

  void SplitInner(Inner* inner, Key* split_key, Node** split_node) {
    Inner* right = Reserve(new Inner(inner_cap_));
    const size_t mid = inner->keys.size() / 2;
    *split_key = inner->keys[mid];
    right->keys.assign(inner->keys.begin() + mid + 1, inner->keys.end());
    right->children.assign(inner->children.begin() + mid + 1,
                           inner->children.end());
    inner->keys.resize(mid);
    inner->children.resize(mid + 1);
    *split_node = right;
  }

  bool EraseRec(Node* node, const Key& key) {
    if (node->leaf) {
      Touch(node, true);
      Leaf* leaf = static_cast<Leaf*>(node);
      const size_t i = LowerBound(leaf->keys, key);
      if (i >= leaf->keys.size() || !Equal(leaf->keys[i], key)) return false;
      leaf->keys.erase(leaf->keys.begin() + i);
      leaf->values.erase(leaf->values.begin() + i);
      return true;
    }
    Inner* inner = static_cast<Inner*>(node);
    Touch(inner, false);
    const size_t ci = ChildIndex(inner, key);
    Node* child = inner->children[ci];
    const bool erased = EraseRec(child, key);
    if (erased && child->keys.empty() &&
        (child->leaf ||
         static_cast<Inner*>(child)->children.empty())) {
      // Unlink the emptied child (leaves keep sibling links consistent).
      if (child->leaf) {
        Leaf* leaf = static_cast<Leaf*>(child);
        if (leaf->prev != nullptr) leaf->prev->next = leaf->next;
        if (leaf->next != nullptr) leaf->next->prev = leaf->prev;
        if (first_leaf_ == leaf) first_leaf_ = leaf->next;
      }
      inner->children.erase(inner->children.begin() + ci);
      if (ci == 0) {
        if (!inner->keys.empty()) inner->keys.erase(inner->keys.begin());
      } else {
        inner->keys.erase(inner->keys.begin() + ci - 1);
      }
      delete child;
    }
    return erased;
  }

  // An inner node whose last child was unlinked can itself become empty;
  // EraseRec's empty-check handles the cascade one level per call, which is
  // sufficient because a parent notices emptiness on the way back up.

  void DeleteRec(Node* node) {
    if (node == nullptr) return;
    if (!node->leaf) {
      Inner* inner = static_cast<Inner*>(node);
      for (Node* child : inner->children) DeleteRec(child);
    }
    delete node;
  }

  size_t CountBytes(const Node* node) const {
    if (node == nullptr) return 0;
    size_t bytes = sizeof(Node) + node->keys.capacity() * sizeof(Key);
    if (node->leaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      bytes += leaf->values.capacity() * sizeof(Value);
    } else {
      const Inner* inner = static_cast<const Inner*>(node);
      bytes += inner->children.capacity() * sizeof(Node*);
      for (const Node* child : inner->children) bytes += CountBytes(child);
    }
    return bytes;
  }

  Compare cmp_;
  AccessHook access_hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  VirtualAllocFn valloc_ = nullptr;
  void* valloc_ctx_ = nullptr;
  size_t node_bytes_;
  size_t inner_cap_;
  size_t leaf_cap_;
  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace nvmdb
