/// Crash-recovery walkthrough: the Fig. 12 experiment as a story. Runs the
/// same committed workload on a traditional engine and its NVM-aware
/// variant, kills the database, and shows why one replays history while
/// the other restarts almost instantly.
///
/// Usage: example_crash_recovery [txns]
#include <cstdio>
#include <cstdlib>

#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/ycsb.h"

using namespace nvmdb;

namespace {

void Demo(EngineKind kind, uint64_t txns) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;
  cfg.nvm_capacity = 256ull * 1024 * 1024;
  cfg.engine = kind;
  // Every transaction goes to the durable log; no checkpoints/flushes, so
  // the recovery window covers the whole run.
  cfg.engine_config.group_commit_size = 1;
  cfg.engine_config.memtable_threshold_bytes = 1ull << 40;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = 2000;
  ycfg.num_txns = txns;
  ycfg.num_partitions = 1;
  ycfg.mixture = YcsbMixture::kBalanced;
  YcsbWorkload workload(ycfg);
  if (!workload.Load(&db).ok()) {
    fprintf(stderr, "load failed\n");
    exit(1);
  }
  Coordinator(&db).Run(workload.GenerateQueues());

  // Leave one transaction in flight, then pull the plug.
  StorageEngine* engine = db.partition(0);
  const uint64_t in_flight = engine->Begin();
  engine->Update(in_flight, YcsbWorkload::kTableId, 0,
                 {{3, Value::U64(0xDEAD)}});
  db.Crash();

  const uint64_t ns = db.Recover();
  printf("%-10s %8llu committed txns -> recovery %10.3f ms\n",
         EngineKindName(kind), (unsigned long long)txns, ns / 1e6);

  // The in-flight update was rolled back; committed data is intact.
  engine = db.partition(0);
  const uint64_t check = engine->Begin();
  Tuple t;
  if (engine->Select(check, YcsbWorkload::kTableId, 0, &t).ok()) {
    if (t.GetU64(3) == 0xDEAD) {
      printf("  ERROR: uncommitted update survived!\n");
    }
  }
  engine->Commit(check);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t base = argc > 1 ? strtoull(argv[1], nullptr, 10) : 1000;
  printf("Recovery latency vs transactions executed since the last "
         "checkpoint (Fig. 12):\n\n");
  for (const uint64_t txns : {base, base * 4, base * 16}) {
    Demo(EngineKind::kInP, txns);     // redo from WAL + index rebuild
    Demo(EngineKind::kNvmInP, txns);  // undo-only: flat, sub-millisecond
    printf("\n");
  }
  printf(
      "InP replays the log (latency grows with history) and rebuilds its\n"
      "indexes; NVM-InP only undoes the in-flight transaction via its\n"
      "non-volatile undo log, so recovery cost is independent of history\n"
      "(Sections 3.1 / 4.1).\n");
  return 0;
}
