#include "engine/wal.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/crc32.h"
#include "common/trace.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

void EncodeLogRecord(const LogRecordRef& record, std::string* out) {
  // Single pass: reserve the crc/len header, append the payload fields
  // directly (no temporary payload string), then backpatch the header.
  // The byte layout is identical to the historical two-pass encoder:
  // [u32 crc][u32 len][u8 op|u64 txn|u32 table|u64 key|u32 blen|before|
  //  u32 alen|after], crc over the payload.
  const size_t base = out->size();
  out->resize(base + 8);
  out->push_back(static_cast<char>(record.op));
  out->append(reinterpret_cast<const char*>(&record.txn_id), 8);
  out->append(reinterpret_cast<const char*>(&record.table_id), 4);
  out->append(reinterpret_cast<const char*>(&record.key), 8);
  const uint32_t blen = static_cast<uint32_t>(record.before.size());
  const uint32_t alen = static_cast<uint32_t>(record.after.size());
  out->append(reinterpret_cast<const char*>(&blen), 4);
  out->append(record.before.data(), record.before.size());
  out->append(reinterpret_cast<const char*>(&alen), 4);
  out->append(record.after.data(), record.after.size());

  const uint32_t len = static_cast<uint32_t>(out->size() - base - 8);
  const uint32_t crc = Crc32c(out->data() + base + 8, len);
  memcpy(&(*out)[base], &crc, 4);
  memcpy(&(*out)[base + 4], &len, 4);
}

bool DecodeLogRecord(const char* data, size_t size, LogRecord* out,
                     size_t* consumed) {
  if (size < 8) return false;
  uint32_t crc, len;
  memcpy(&crc, data, 4);
  memcpy(&len, data + 4, 4);
  // Minimum well-formed payload: op 1 + txn 8 + table 4 + key 8 + blen 4 +
  // alen 4 = 29 bytes (before/after may be empty).
  constexpr uint32_t kFixedPayload = 29;
  if (size < 8ull + len || len < kFixedPayload) return false;
  const char* payload = data + 8;
  if (Crc32c(payload, len) != crc) return false;  // torn write

  const char* p = payload;
  out->op = static_cast<LogOp>(*p);
  p += 1;
  memcpy(&out->txn_id, p, 8);
  p += 8;
  memcpy(&out->table_id, p, 4);
  p += 4;
  memcpy(&out->key, p, 8);
  p += 8;
  uint32_t blen;
  memcpy(&blen, p, 4);
  p += 4;
  // blen/alen are untrusted u32s read from the log; compare them against
  // the remaining payload (len - fixed fields) so the additions below can
  // never wrap and the assigns can never over-read.
  if (blen > len - kFixedPayload) return false;
  out->before.assign(p, blen);
  p += blen;
  uint32_t alen;
  memcpy(&alen, p, 4);
  p += 4;
  // The after-image must exactly fill the rest of the payload; a short
  // alen would silently drop trailing bytes a CRC collision smuggled in.
  if (alen != len - kFixedPayload - blen) return false;
  out->after.assign(p, alen);
  *consumed = 8ull + len;
  return true;
}

Wal::Wal(Pmfs* fs, const std::string& file_name, size_t group_commit_size)
    : fs_(fs),
      file_name_(file_name),
      group_commit_size_(group_commit_size == 0 ? 1 : group_commit_size) {
  fd_ = fs_->Open(file_name_, /*create=*/true, StorageTag::kLog);
  // Stable modeled address for the log buffer: base + byte offset. The
  // std::string's heap address moves with reallocation and ASLR, which
  // would make the cache model's counters drift between runs; the
  // reserved range depends only on construction order. 64 MB of address
  // space (free — it is never backed) comfortably covers the buffered
  // bytes between flushes.
  virtual_base_ = fs_->device()->ReserveVirtual(size_t{1} << 26);
}

Wal::~Wal() { fs_->Close(fd_); }

void Wal::Append(const LogRecordRef& record) {
  ScopedStallTag tag(StallTag::kWal);
  const size_t before = buffer_.size();
  EncodeLogRecord(record, &buffer_);
  // The log buffer lives in NVM-as-volatile-memory; model its traffic at
  // the buffer's stable modeled address so consecutive records share
  // cache lines exactly as they do in the real buffer.
  fs_->device()->TouchVirtual(
      reinterpret_cast<const void*>(virtual_base_ + before),
      buffer_.size() - before, true);
}

bool Wal::LogCommit(uint64_t txn_id) {
  ScopedStallTag tag(StallTag::kWal);
  LogRecordRef commit;
  commit.op = LogOp::kCommit;
  commit.txn_id = txn_id;
  // Route through Append so the commit record's buffer traffic is modeled
  // identically to every other record (it used to bypass TouchVirtual).
  Append(commit);
  last_buffered_commit_ = txn_id;
  commits_in_group_++;
  if (commits_in_group_ >= group_commit_size_) {
    Flush();
    return true;
  }
  return false;
}

Status Wal::Flush() {
  ScopedStallTag tag(StallTag::kWal);
  if (!buffer_.empty()) {
    Status s = fs_->Append(fd_, buffer_.data(), buffer_.size());
    if (!s.ok()) return s;
    buffer_.clear();
  }
  Status s = fs_->Fsync(fd_);
  if (!s.ok()) return s;
  commits_in_group_ = 0;
  // Durability acknowledgements only move forward: after a checkpoint
  // truncation resets last_buffered_commit_ to the durable watermark, an
  // empty-buffer Flush must not rewind (or advance to a stale id).
  assert(last_buffered_commit_ >= last_durable_txn_);
  if (last_buffered_commit_ > last_durable_txn_) {
    last_durable_txn_ = last_buffered_commit_;
  }
  if (TraceWriter* trace = NvmEnv::Trace()) {
    trace->Instant("group_commit_force", "wal",
                   fs_->device()->TotalStallNanos(), 0);
  }
  return Status::OK();
}

std::vector<LogRecord> Wal::ReadAll() {
  std::vector<LogRecord> records;
  const uint64_t file_size = fs_->Size(fd_);
  if (file_size == 0) return records;

  // Decode from a bounded sliding window instead of materializing the
  // whole file: recovering a large log otherwise spikes resident memory
  // to the log size. The window grows past kWindowBytes only when a
  // single record is larger than the window, and never past what the
  // file can actually supply (so a corrupt length field cannot trigger a
  // giant allocation).
  constexpr size_t kWindowBytes = size_t{1} << 20;
  constexpr uint32_t kFixedPayload = 29;
  std::string window;
  uint64_t file_pos = 0;  // next file byte to fetch
  size_t pos = 0;         // decode cursor inside the window
  for (;;) {
    LogRecord record;
    size_t consumed = 0;
    const size_t avail = window.size() - pos;
    if (DecodeLogRecord(window.data() + pos, avail, &record, &consumed)) {
      records.push_back(std::move(record));
      pos += consumed;
      continue;
    }
    // Decode failed. More file bytes can only help if the failure was a
    // short read; a complete-but-corrupt record is the torn tail.
    const uint64_t remaining = file_size - file_pos;
    if (avail >= 8) {
      uint32_t len;
      memcpy(&len, window.data() + pos + 4, 4);
      if (len < kFixedPayload) break;          // malformed header
      if (avail >= 8ull + len) break;          // full record, bad CRC/body
      if (8ull + len > avail + remaining) break;  // tail cannot complete it
    } else if (avail + remaining < 8) {
      break;  // not even a record header left
    }
    if (remaining == 0) break;
    // Slide: drop consumed bytes, then top the window back up.
    window.erase(0, pos);
    pos = 0;
    size_t want = kWindowBytes > window.size()
                      ? kWindowBytes - window.size()
                      : 0;
    if (window.size() >= 8) {
      uint32_t len;
      memcpy(&len, window.data() + 4, 4);
      const uint64_t whole = 8ull + len;
      if (whole > window.size() + want) {
        want = static_cast<size_t>(whole - window.size());
      }
    }
    if (want == 0) want = kWindowBytes;
    want = static_cast<size_t>(std::min<uint64_t>(want, remaining));
    const size_t old = window.size();
    window.resize(old + want);
    size_t got = 0;
    fs_->Read(fd_, file_pos, &window[old], want, &got);
    window.resize(old + got);
    file_pos += got;
    if (got == 0) break;
  }
  return records;
}

Status Wal::Truncate() {
  ScopedStallTag tag(StallTag::kWal);
  buffer_.clear();
  commits_in_group_ = 0;
  // Buffered-but-unflushed commits died with the buffer; without this, the
  // next empty-buffer Flush() would advance last_durable_txn_ to a stale
  // pre-truncation txn id and acknowledge transactions whose records no
  // longer exist anywhere.
  last_buffered_commit_ = last_durable_txn_;
  return fs_->Truncate(fd_, 0);
}

uint64_t Wal::DurableSizeBytes() const { return fs_->Size(fd_); }

}  // namespace nvmdb
