# Empty dependencies file for example_ycsb_tour.
# This may be replaced when dependencies are built.
