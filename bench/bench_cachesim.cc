/// Microbenchmark for the NVM-simulation hot loop: CacheSim::Access /
/// FlushRange and the NvmDevice charge path wrapped around them. Every
/// instrumented byte the storage engines touch funnels through these
/// functions, so their cost bounds the wall-clock time of the whole bench
/// suite. Patterns: hit-dominated (the steady state of a cache-resident
/// working set), miss-dominated (streaming, constant dirty evictions),
/// flush-heavy (persist-style write+flush pairs), and an 8-thread
/// contended run over one shared cache (bank-lock striping).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "nvm/cache_sim.h"
#include "nvm/nvm_device.h"

namespace {

using nvmdb::CacheConfig;
using nvmdb::CacheSim;
using nvmdb::NvmDevice;
using nvmdb::NvmLatencyConfig;

CacheConfig BenchCacheConfig() {
  CacheConfig cfg;
  cfg.capacity_bytes = 1024 * 1024;  // the benchmark suite's scaled cache
  cfg.line_size = 64;
  cfg.associativity = 16;
  cfg.num_banks = 16;
  return cfg;
}

void BM_HitDominated(benchmark::State& state) {
  CacheSim cache(BenchCacheConfig(), {});
  constexpr uint64_t kWorkingSet = 512 * 1024;  // fits: every access hits
  for (uint64_t a = 0; a < kWorkingSet; a += 64) cache.Access(a, 8, false);
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, false));
    addr = (addr + 64) & (kWorkingSet - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}

void BM_MissDominated(benchmark::State& state) {
  CacheSim cache(BenchCacheConfig(), {});
  constexpr uint64_t kStream = 64ull * 1024 * 1024;  // 64x the cache
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, true));
    addr = (addr + 64) & (kStream - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlushHeavy(benchmark::State& state) {
  CacheSim cache(BenchCacheConfig(), {});
  constexpr uint64_t kRegion = 1024 * 1024;
  uint64_t addr = 0;
  for (auto _ : state) {
    cache.Access(addr, 64, true);
    benchmark::DoNotOptimize(
        cache.FlushRange(addr, 64, /*invalidate=*/false));
    addr = (addr + 64) & (kRegion - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Contended(benchmark::State& state) {
  static CacheSim* shared = nullptr;
  if (state.thread_index() == 0) {
    shared = new CacheSim(BenchCacheConfig(), {});
  }
  // benchmark synchronizes threads at loop entry, so `shared` is visible.
  constexpr uint64_t kPerThread = 4 * 1024 * 1024;
  uint64_t addr =
      static_cast<uint64_t>(state.thread_index()) * kPerThread;
  const uint64_t base = addr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared->Access(addr, 8, (addr & 64) != 0));
    addr = base + ((addr - base + 64) & (kPerThread - 1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete shared;
    shared = nullptr;
  }
}

/// End-to-end device path: the instrumented Write + Persist pair the
/// engines issue per durable update, including the simulated-clock
/// accounting (one atomic add per call on the fast path).
void BM_DeviceWritePersist(benchmark::State& state) {
  NvmDevice device(16 * 1024 * 1024, NvmLatencyConfig::Dram(),
                   BenchCacheConfig());
  uint64_t offset = 0;
  uint64_t value = 0;
  for (auto _ : state) {
    device.Write(offset, &value, 8);
    device.Persist(offset, 8);
    value++;
    offset = (offset + 64) & (4 * 1024 * 1024 - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ns_per_op"] =
      static_cast<double>(device.TotalStallNanos()) /
      static_cast<double>(state.iterations());
}

BENCHMARK(BM_HitDominated);
BENCHMARK(BM_MissDominated);
BENCHMARK(BM_FlushHeavy);
BENCHMARK(BM_Contended)->Threads(8)->UseRealTime();
BENCHMARK(BM_DeviceWritePersist);

}  // namespace

BENCHMARK_MAIN();
