#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/tuple.h"

namespace nvmdb {

/// Kinds of per-key records flowing through the log-structured engines.
/// A key's logical value is reconstructed by coalescing records newest to
/// oldest until a full image or tombstone concludes the search — the
/// "tuple coalescing" cost the paper charges the Log engine with.
enum class DeltaKind : uint8_t {
  kFull = 0,       // complete tuple image (insert)
  kDelta = 1,      // set of column updates
  kTombstone = 2,  // deletion marker
};

/// Serialize a set of column updates (the payload of a kDelta record).
std::string EncodeUpdates(const Schema& schema,
                          const std::vector<ColumnUpdate>& updates);
std::vector<ColumnUpdate> DecodeUpdates(const Schema& schema,
                                        const Slice& data);

/// Apply updates onto a materialized tuple.
void ApplyUpdates(Tuple* tuple, const std::vector<ColumnUpdate>& updates);

/// One record during reconstruction: kind + payload bytes.
struct DeltaRecord {
  DeltaKind kind;
  std::string payload;
};

/// Coalesce records (ordered newest first) into a single conclusive
/// record: a tombstone, a full image, or — when no base image is present
/// in the input — a merged delta. Used by SSTable flush and compaction.
DeltaRecord CoalesceNewestFirst(const Schema& schema,
                                const std::vector<DeltaRecord>& records);

/// Materialize a tuple from records ordered newest first. Returns false
/// if the records conclude in a tombstone or never reach a full image.
bool MaterializeNewestFirst(const Schema& schema,
                            const std::vector<DeltaRecord>& records,
                            Tuple* out);

}  // namespace nvmdb
