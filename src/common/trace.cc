#include "common/trace.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nvmdb {

namespace {
/// Distinguishes the databases of one process; also the "pid" field of
/// the trace so Perfetto groups each database's events separately.
std::atomic<uint32_t> g_trace_seq{0};
}  // namespace

TraceWriter::TraceWriter(std::string path, uint32_t pid)
    : path_(std::move(path)), pid_(pid) {}

TraceWriter::~TraceWriter() { Flush(); }

std::unique_ptr<TraceWriter> TraceWriter::FromEnv() {
  const char* dir = std::getenv("NVMDB_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  const uint32_t seq = g_trace_seq.fetch_add(1, std::memory_order_relaxed);
  char name[64];
  std::snprintf(name, sizeof(name), "/trace_%d_%u.json",
                static_cast<int>(getpid()), seq);
  return std::make_unique<TraceWriter>(std::string(dir) + name, seq);
}

void TraceWriter::Append(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_++;
    return;
  }
  events_.push_back(e);
}

void TraceWriter::Span(const char* name, const char* category,
                       uint64_t start_ns, uint64_t dur_ns, uint32_t tid) {
  Append({name, category, 'X', tid, start_ns, dur_ns});
}

void TraceWriter::Instant(const char* name, const char* category,
                          uint64_t ts_ns, uint32_t tid) {
  Append({name, category, 'i', tid, ts_ns, 0});
}

void TraceWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (flushed_) return;
  flushed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", path_.c_str());
    return;
  }
  // Trace-event format: "ts"/"dur" are microseconds; %.3f keeps full
  // nanosecond precision.
  std::fputs("{\"traceEvents\":[\n", f);
  for (size_t i = 0; i < events_.size(); i++) {
    const Event& e = events_[i];
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                 "\"ts\":%.3f,",
                 e.name, e.category, e.phase,
                 static_cast<double>(e.ts_ns) / 1000.0);
    if (e.phase == 'X') {
      std::fprintf(f, "\"dur\":%.3f,",
                   static_cast<double>(e.dur_ns) / 1000.0);
    } else if (e.phase == 'i') {
      std::fputs("\"s\":\"t\",", f);
    }
    std::fprintf(f, "\"pid\":%u,\"tid\":%u}%s\n", pid_, e.tid,
                 i + 1 < events_.size() ? "," : "");
  }
  std::fputs("]}\n", f);
  std::fclose(f);
  if (dropped_ > 0) {
    std::fprintf(stderr, "trace: %s dropped %llu events past the cap\n",
                 path_.c_str(), static_cast<unsigned long long>(dropped_));
  }
}

}  // namespace nvmdb
