#!/usr/bin/env python3
"""Merge the per-benchmark BENCH_<name>.json reports into one summary row.

Each figure benchmark writes a machine-readable report (see
testbed/bench_runner.h) with one entry per grid cell: the cell key, commit
counts, simulated nanoseconds, host wall nanoseconds, and derived metrics
such as throughput per latency profile. This script folds a directory of
those reports into a single flat JSON object — one "trajectory row" a
plotting or regression-tracking pipeline can append per commit:

  {
    "benches": 11,
    "cells": 274,
    "committed": 1234567,
    "total_wall_ns": ...,          # harness cost of the whole suite
    "total_sim_ns": ...,           # modeled time the suite produced
    "sim_wall_ratio": ...,         # simulator speed (higher = faster)
    "jobs": {"fig08_tpcc": 8, ...},
    "tps_low_nvm": {"fig05_07_ycsb/read-only low InP": 117153.0, ...},
    ...
  }

Usage:
  scripts/bench_summary.py [--dir DIR] [--out FILE] [--metrics m1,m2]

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as f:
                reports.append(json.load(f))
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_summary: skipping {path}: {err}", file=sys.stderr)
    return reports


def cell_label(cell):
    return " ".join(cell.get("key", {}).values())


def summarize(reports, metric_names):
    row = {
        "benches": len(reports),
        "cells": 0,
        "committed": 0,
        "aborted": 0,
        "total_wall_ns": 0,
        "total_sim_ns": 0,
        "jobs": {},
    }
    metrics = {name: {} for name in metric_names}
    for report in reports:
        bench = report.get("bench", "?")
        row["jobs"][bench] = report.get("jobs", 0)
        row["total_wall_ns"] += report.get("total_wall_ns", 0)
        row["total_sim_ns"] += report.get("total_sim_ns", 0)
        for cell in report.get("cells", []):
            row["cells"] += 1
            row["committed"] += cell.get("committed", 0)
            row["aborted"] += cell.get("aborted", 0)
            for name in metric_names:
                value = cell.get("metrics", {}).get(name)
                if value is not None:
                    metrics[name][f"{bench}/{cell_label(cell)}"] = value
    row["sim_wall_ratio"] = (
        row["total_sim_ns"] / row["total_wall_ns"]
        if row["total_wall_ns"]
        else 0.0
    )
    for name in metric_names:
        if metrics[name]:
            row[name] = metrics[name]
    return row


def main():
    parser = argparse.ArgumentParser(
        description="Merge BENCH_*.json reports into one summary row."
    )
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json files"
    )
    parser.add_argument(
        "--out", default="-", help="output file ('-' for stdout)"
    )
    parser.add_argument(
        "--metrics",
        default="tps_low_nvm",
        help="comma-separated per-cell metrics to flatten into the row",
    )
    args = parser.parse_args()

    reports = load_reports(args.dir)
    if not reports:
        print(f"bench_summary: no BENCH_*.json in {args.dir}", file=sys.stderr)
        return 1

    metric_names = [m for m in args.metrics.split(",") if m]
    row = summarize(reports, metric_names)
    text = json.dumps(row, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
