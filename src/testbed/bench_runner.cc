#include "testbed/bench_runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/timer.h"

namespace nvmdb {

namespace {

size_t EnvJobs() {
  const char* v = std::getenv("NVMDB_BENCH_JOBS");
  if (v != nullptr && *v != '\0') {
    const unsigned long long parsed = std::strtoull(v, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// JSON string escaping for the tiny report writer — the only characters
/// our keys/labels can realistically contain are covered, but be complete
/// for the mandatory set anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string BenchCell::Label() const {
  std::string out;
  for (const auto& [k, v] : key) {
    (void)k;
    if (!out.empty()) out += ' ';
    out += v;
  }
  return out;
}

BenchRunner::BenchRunner(std::string bench_name, size_t jobs)
    : bench_name_(std::move(bench_name)),
      jobs_(jobs == 0 ? EnvJobs() : jobs) {}

BenchRunner::~BenchRunner() {
  Wait();
  if (!reported_) WriteReport();
}

size_t BenchRunner::Submit(std::function<BenchCell()> body) {
  tasks_.push_back(std::move(body));
  waited_ = false;
  return tasks_.size() - 1;
}

void BenchRunner::RunPending() {
  const size_t first = cells_.size();
  const size_t count = tasks_.size() - first;
  cells_.resize(tasks_.size());
  if (count == 0) return;

  std::mutex progress_mu;
  auto run_cell = [&](size_t slot) {
    Stopwatch watch;
    BenchCell cell = tasks_[slot]();
    cell.wall_ns = watch.ElapsedNanos();
    {
      std::lock_guard<std::mutex> lock(progress_mu);
      PrintProgress(cell);
    }
    cells_[slot] = std::move(cell);
  };

  if (jobs_ <= 1 || count == 1) {
    for (size_t slot = first; slot < tasks_.size(); slot++) run_cell(slot);
  } else {
    std::atomic<size_t> next{first};
    auto worker = [&]() {
      for (;;) {
        const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= tasks_.size()) return;
        run_cell(slot);
      }
    };
    const size_t spawn = std::min(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (size_t i = 0; i < spawn; i++) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (size_t slot = first; slot < tasks_.size(); slot++) {
    tasks_[slot] = nullptr;  // free captured workload state eagerly
  }
}

void BenchRunner::Wait() {
  if (waited_) return;
  RunPending();
  waited_ = true;
}

void BenchRunner::PrintProgress(const BenchCell& cell) {
  // Stderr, single printf per line (and under the caller's lock), so
  // concurrent cells never interleave mid-line; stdout stays reserved for
  // the deterministic post-barrier tables.
  std::fprintf(stderr, "  done %s (wall %.2fs, sim/wall %.1fx)\n",
               cell.Label().c_str(),
               static_cast<double>(cell.wall_ns) * 1e-9,
               cell.SimWallRatio());
}

void BenchRunner::AddContext(const std::string& key,
                             const std::string& value) {
  context_.emplace_back(key, value);
}

uint64_t BenchRunner::TotalWallNs() const {
  uint64_t sum = 0;
  for (const BenchCell& c : cells_) sum += c.wall_ns;
  return sum;
}

uint64_t BenchRunner::TotalSimNs() const {
  uint64_t sum = 0;
  for (const BenchCell& c : cells_) sum += c.sim_ns;
  return sum;
}

std::string BenchRunner::WriteReport() {
  Wait();
  reported_ = true;
  const char* dir_env = std::getenv("NVMDB_BENCH_JSON_DIR");
  std::string dir = dir_env == nullptr ? "." : dir_env;
  if (dir.empty()) return "";  // reports disabled
  const std::string path = dir + "/BENCH_" + bench_name_ + ".json";

  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"bench\": \"" + JsonEscape(bench_name_) + "\",\n";
  out += "  \"jobs\": " + std::to_string(jobs_) + ",\n";
  for (const auto& [k, v] : context_) {
    out += "  \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\",\n";
  }
  out += "  \"cells\": [\n";
  for (size_t i = 0; i < cells_.size(); i++) {
    const BenchCell& c = cells_[i];
    out += "    {\"key\": {";
    for (size_t j = 0; j < c.key.size(); j++) {
      if (j > 0) out += ", ";
      out += "\"" + JsonEscape(c.key[j].first) + "\": \"" +
             JsonEscape(c.key[j].second) + "\"";
    }
    out += "},\n";
    out += "     \"committed\": " + std::to_string(c.committed) +
           ", \"aborted\": " + std::to_string(c.aborted) +
           ", \"sim_ns\": " + std::to_string(c.sim_ns) +
           ", \"wall_ns\": " + std::to_string(c.wall_ns) +
           ", \"load_ns\": " + std::to_string(c.load_ns) +
           ", \"run_ns\": " + std::to_string(c.run_ns) + ",\n";
    char ratio[64];
    std::snprintf(ratio, sizeof(ratio), "%.3f", c.SimWallRatio());
    out += "     \"sim_wall_ratio\": ";
    out += ratio;
    char mean[64];
    std::snprintf(mean, sizeof(mean), "%.6g", c.latency.mean_ns);
    out += ",\n     \"latency\": {\"count\": " +
           std::to_string(c.latency.count) + ", \"mean_ns\": ";
    out += mean;
    out += ", \"p50_ns\": " + std::to_string(c.latency.p50_ns) +
           ", \"p95_ns\": " + std::to_string(c.latency.p95_ns) +
           ", \"p99_ns\": " + std::to_string(c.latency.p99_ns) +
           ", \"p999_ns\": " + std::to_string(c.latency.p999_ns) +
           ", \"max_ns\": " + std::to_string(c.latency.max_ns) + "},\n";
    out += "     \"stalls\": {";
    for (size_t t = 0; t < kStallTagCount; t++) {
      if (t > 0) out += ", ";
      out += "\"";
      out += StallTagName(static_cast<StallTag>(t));
      out += "_ns\": " + std::to_string(c.stalls.ns[t]);
    }
    out += "}";
    if (!c.metrics.empty()) {
      out += ",\n     \"metrics\": {";
      for (size_t j = 0; j < c.metrics.size(); j++) {
        if (j > 0) out += ", ";
        char num[64];
        std::snprintf(num, sizeof(num), "%.6g", c.metrics[j].second);
        out += "\"" + JsonEscape(c.metrics[j].first) + "\": ";
        out += num;
      }
      out += "}";
    }
    out += "}";
    out += (i + 1 < cells_.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  char total_ratio[64];
  const uint64_t wall = TotalWallNs();
  std::snprintf(total_ratio, sizeof(total_ratio), "%.3f",
                wall == 0 ? 0.0
                          : static_cast<double>(TotalSimNs()) /
                                static_cast<double>(wall));
  out += "  \"total_wall_ns\": " + std::to_string(wall) + ",\n";
  out += "  \"total_sim_ns\": " + std::to_string(TotalSimNs()) + ",\n";
  out += "  \"total_sim_wall_ratio\": ";
  out += total_ratio;
  out += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return path;
}

}  // namespace nvmdb
