/// Fig. 8 — TPC-C throughput under the three NVM latency profiles.
///
/// Expected shape (paper): NVM-aware engines 1.8–2.1x their traditional
/// counterparts (NVM-CoW's speedup largest, ~2.3x, because TPC-C is
/// write-intensive); gaps shrink to ~1.7–1.9x at high latency.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  printf("TPC-C: %zu warehouses (1/partition), %llu txns\n",
         Scale().partitions, (unsigned long long)Scale().tpcc_txns);

  struct Cell {
    uint64_t committed = 0;
    uint64_t wall_ns = 0;
    CounterDelta counters;
  };
  std::vector<Cell> cells;
  for (EngineKind engine : AllEngines()) {
    const BenchRun run = RunTpcc(engine);
    cells.push_back({run.committed, run.wall_ns, run.counters});
    fprintf(stderr, "  done %s (committed %llu, aborted %llu)\n",
            EngineKindName(engine), (unsigned long long)run.committed,
            (unsigned long long)run.aborted);
  }

  PrintHeader("Fig. 8: TPC-C throughput (txn/sec)");
  printf("%-22s", "latency");
  for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
  printf("\n");
  for (const LatencyProfile& latency : PaperLatencies()) {
    printf("%-22s", latency.name);
    for (size_t e = 0; e < cells.size(); e++) {
      printf("%12.0f",
             DeriveThroughput(cells[e].committed, cells[e].wall_ns,
                              cells[e].counters, latency.config,
                              Scale().partitions));
    }
    printf("\n");
  }
  printf(
      "\nPaper shape: NVM-aware 1.8-2.1x traditional; NVM-CoW's speedup\n"
      "over CoW largest (write-intensive mix); NVM-InP best overall\n"
      "(Section 5.2, Fig. 8).\n");
  return 0;
}
