/// Table 3 (Appendix A) — Analytical cost model vs. measured bytes written
/// to NVM per insert / update / delete for every engine.
///
/// The paper's model (T = tuple size, F = one fixed field, V = one varlen
/// field, p = pointer, B = CoW B+tree node) predicts, e.g., InP writes
/// ~3T per insert (memory + log + table) while NVM-InP writes ~T + 2p.
/// We measure dirty-line write-backs (stores * 64 B) around batches of
/// single-op transactions; absolute values include line-granularity
/// rounding, so the *ordering* and rough ratios are what should match.
///
/// One grid cell per engine; the six measurements run concurrently and
/// the table prints after the barrier.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

constexpr uint64_t kOpsPerPhase = 400;

struct Measured {
  double insert_bytes = 0;
  double update_bytes = 0;
  double delete_bytes = 0;
  uint64_t sim_ns = 0;
};

Measured MeasureEngine(EngineKind engine) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  cfg.num_partitions = 1;
  cfg.engine_config.group_commit_size = 1;  // per-txn durability
  Database db(cfg);
  const TableDef def = YcsbWorkload::MakeTableDef();
  db.CreateTable(def);
  StorageEngine* e = db.partition(0);
  Random rng(3);

  auto tuple_for = [&](uint64_t key) {
    Tuple t(&def.schema);
    t.SetU64(0, key);
    for (size_t c = 1; c <= 10; c++) t.SetString(c, rng.String(100));
    return t;
  };

  // Warm up with a base population so updates/deletes hit existing data
  // and the trees have realistic depth.
  for (uint64_t key = 10000; key < 12000; key++) {
    const uint64_t txn = e->Begin();
    e->Insert(txn, 1, tuple_for(key));
    e->Commit(txn);
  }
  // Group commit is 1, so per-txn durability is already forced; FlushAll
  // (not Drain) closes each phase — Drain would trigger checkpoints and
  // MemTable flushes whose full-database writes would swamp the per-op
  // measurement.
  db.device()->FlushAll();

  Measured m{};
  {
    CounterSampler sampler(db.device());
    for (uint64_t key = 0; key < kOpsPerPhase; key++) {
      const uint64_t txn = e->Begin();
      e->Insert(txn, 1, tuple_for(key));
      e->Commit(txn);
    }
    db.device()->FlushAll();
    const CounterDelta d = sampler.Delta();
    m.insert_bytes = d.stores * 64.0 / kOpsPerPhase;
    m.sim_ns += d.stall_ns;
  }
  {
    CounterSampler sampler(db.device());
    for (uint64_t key = 0; key < kOpsPerPhase; key++) {
      const uint64_t txn = e->Begin();
      // The model's update: one fixed-length field + one varlen field.
      // (Value::Str is non-owning; keep the backing string alive.)
      const std::string value = rng.String(100);
      std::vector<ColumnUpdate> up;
      up.push_back({1, Value::Str(value)});
      e->Update(txn, 1, key, up);
      e->Commit(txn);
    }
    db.device()->FlushAll();
    const CounterDelta d = sampler.Delta();
    m.update_bytes = d.stores * 64.0 / kOpsPerPhase;
    m.sim_ns += d.stall_ns;
  }
  {
    CounterSampler sampler(db.device());
    for (uint64_t key = 0; key < kOpsPerPhase; key++) {
      const uint64_t txn = e->Begin();
      e->Delete(txn, 1, key);
      e->Commit(txn);
    }
    db.device()->FlushAll();
    const CounterDelta d = sampler.Delta();
    m.delete_bytes = d.stores * 64.0 / kOpsPerPhase;
    m.sim_ns += d.stall_ns;
  }
  return m;
}

}  // namespace

int main() {
  std::vector<Measured> measured(AllEngines().size());
  BenchRunner runner("table3_cost_model");
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const EngineKind engine = AllEngines()[e];
    runner.Submit([&measured, e, engine]() {
      measured[e] = MeasureEngine(engine);
      BenchCell cell;
      cell.key = {{"engine", EngineKindName(engine)}};
      cell.committed = 2000 + 3 * kOpsPerPhase;  // warm-up + 3 phases
      cell.sim_ns = measured[e].sim_ns;
      cell.metrics = {{"insert_bytes", measured[e].insert_bytes},
                      {"update_bytes", measured[e].update_bytes},
                      {"delete_bytes", measured[e].delete_bytes}};
      return cell;
    });
  }
  runner.Wait();

  PrintHeader(
      "Table 3: bytes written to NVM per operation — model vs. measured");
  // Model parameters for the YCSB tuple.
  const double T = 1088, F = 8, V = 100, p = 8, B = 4096;
  struct ModelRow {
    const char* engine;
    double ins, upd, del;
  };
  const ModelRow model[] = {
      {"InP", 3 * T, 4 * (F + V), T},           // mem+log+table / 2x images
      {"CoW", 2 * B + T, 2 * B + (F + V), 2 * B},  // node copies dominate
      {"Log", 2 * T + T, 4 * (F + V), T},       // theta ~= 1 at this scale
      {"NVM-InP", T + 2 * p, F + V + F + 2 * p, 2 * p},
      {"NVM-CoW", T + B + p, T + F + V + B + p, B},
      {"NVM-Log", T + 2 * p, F + V + F + 2 * p, 2 * p},
  };
  printf("%-10s | %22s | %22s | %22s\n", "engine", "insert (model/meas)",
         "update (model/meas)", "delete (model/meas)");
  for (size_t i = 0; i < AllEngines().size(); i++) {
    const Measured& m = measured[i];
    printf("%-10s | %10.0f / %8.0f | %10.0f / %8.0f | %10.0f / %8.0f\n",
           model[i].engine, model[i].ins, m.insert_bytes, model[i].upd,
           m.update_bytes, model[i].del, m.delete_bytes);
  }
  printf(
      "\nPaper shape: traditional engines duplicate data (multiples of T\n"
      "or B per op); NVM-aware engines write roughly one copy plus\n"
      "pointers — the basis of their 2x wear reduction (Appendix A).\n");
  return ExitStatus();
}
