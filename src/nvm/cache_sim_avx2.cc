/// AVX2 instantiations of CacheSim's inner loops — the only translation
/// unit in the library built with -mavx2, so AVX2 instructions exist
/// nowhere a pre-AVX2 machine could reach them: the dispatchers in
/// cache_sim.cc only select ProbeKind::kAvx2 after a runtime cpuid check
/// (ResolveProbeKind), the same pattern the CRC32C implementation uses
/// for SSE4.2.
///
/// CMake compiles this file only when the compiler accepts -mavx2 and the
/// target is x86; NVMDB_HAVE_AVX2_PROBE is defined for the library
/// exactly then, and guards both the instantiations here and the
/// dispatcher cases that reference them.

#include "nvm/cache_sim_inl.h"

#if defined(NVMDB_HAVE_AVX2_PROBE) && defined(__AVX2__)

namespace nvmdb {

NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kOwner, ProbeKind::kAvx2);
NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kShared, ProbeKind::kAvx2);

}  // namespace nvmdb

#endif  // NVMDB_HAVE_AVX2_PROBE && __AVX2__
