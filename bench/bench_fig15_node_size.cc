/// Fig. 15 (Appendix B) — Sensitivity of the NVM-aware engines to B+tree
/// node size: STX-style nodes for NVM-InP/NVM-Log (64 B – 2 KB, default
/// 512 B) and CoW B+tree pages for NVM-CoW (512 B – 16 KB, default 4 KB).
///
/// Expected shape (paper): read-heavy workloads favor larger CoW pages
/// (shallower tree, less metadata flushing) while write-heavy favor
/// smaller ones (less copying); STX trees peak around 512 B.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

void Sweep(EngineKind engine, const std::vector<size_t>& sizes,
           bool is_cow_page) {
  const YcsbMixture mixtures[] = {YcsbMixture::kReadOnly,
                                  YcsbMixture::kReadHeavy,
                                  YcsbMixture::kBalanced,
                                  YcsbMixture::kWriteHeavy};
  printf("\n--- %s (%s) ---\n", EngineKindName(engine),
         is_cow_page ? "CoW B+tree page size" : "STX B+tree node size");
  printf("%-12s", "bytes");
  for (YcsbMixture m : mixtures) printf("%14s", YcsbMixtureName(m));
  printf("\n");
  for (size_t bytes : sizes) {
    printf("%-12zu", bytes);
    for (YcsbMixture mixture : mixtures) {
      EngineConfig ec;
      if (is_cow_page) {
        ec.cow_page_bytes = bytes;
      } else {
        ec.btree_node_bytes = bytes;
      }
      const BenchRun run = RunYcsb(engine, mixture, YcsbSkew::kLow, ec);
      printf("%14.0f",
             DeriveThroughput(run.committed, run.wall_ns, run.counters,
                              NvmLatencyConfig::LowNvm(),
                              Scale().partitions));
      fflush(stdout);
    }
    printf("\n");
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Fig. 15: B+tree node-size sensitivity (YCSB, low NVM latency, low "
      "skew; txn/sec)");
  Sweep(EngineKind::kNvmInP, {64, 128, 256, 512, 1024, 2048}, false);
  Sweep(EngineKind::kNvmCoW, {512, 1024, 2048, 4096, 8192, 16384}, true);
  Sweep(EngineKind::kNvmLog, {64, 128, 256, 512, 1024, 2048}, false);
  printf(
      "\nPaper shape: CoW pages — bigger helps reads, hurts writes\n"
      "(copy cost); STX nodes peak near 512 B (Appendix B, Fig. 15).\n");
  return 0;
}
