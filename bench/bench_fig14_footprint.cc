/// Fig. 14 — Peak NVM storage footprint (table / index / log / checkpoint
/// / other) after running (a) YCSB balanced low-skew and (b) TPC-C.
///
/// Expected shape (paper): CoW largest on YCSB (dirty-directory churn +
/// page cache); InP/Log pay for their logs; NVM-aware engines 17–38%
/// smaller (pointers in WAL instead of images; no duplicated data).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

void PrintFootprintTable(const std::vector<FootprintStats>& stats) {
  printf("%-10s %10s %10s %10s %10s %10s %10s\n", "engine", "table",
         "index", "log", "ckpt", "other", "total");
  for (size_t e = 0; e < AllEngines().size(); e++) {
    const FootprintStats& f = stats[e];
    printf("%-10s %10s %10s %10s %10s %10s %10s\n",
           EngineKindName(AllEngines()[e]),
           FormatBytes(f.table_bytes).c_str(),
           FormatBytes(f.index_bytes).c_str(),
           FormatBytes(f.log_bytes).c_str(),
           FormatBytes(f.checkpoint_bytes).c_str(),
           FormatBytes(f.other_bytes).c_str(),
           FormatBytes(f.total()).c_str());
  }
}

}  // namespace

int main() {
  {
    PrintHeader("Fig. 14a: storage footprint, YCSB balanced / low skew");
    std::vector<FootprintStats> stats;
    for (EngineKind engine : AllEngines()) {
      // Give InP a checkpoint interval so its checkpoint appears in the
      // footprint, as in the paper.
      EngineConfig ec;
      const BenchRun run =
          RunYcsb(engine, YcsbMixture::kBalanced, YcsbSkew::kLow, ec);
      stats.push_back(run.footprint);
      fprintf(stderr, "  done %s\n", EngineKindName(engine));
    }
    PrintFootprintTable(stats);
  }
  {
    PrintHeader("Fig. 14b: storage footprint, TPC-C");
    std::vector<FootprintStats> stats;
    for (EngineKind engine : AllEngines()) {
      const BenchRun run = RunTpcc(engine);
      stats.push_back(run.footprint);
      fprintf(stderr, "  done %s\n", EngineKindName(engine));
    }
    PrintFootprintTable(stats);
  }
  printf(
      "\nPaper shape: NVM-aware engines 17-38%% smaller footprints;\n"
      "CoW inflated by page copies/cache; logs grow for InP/Log\n"
      "(Section 5.6, Fig. 14).\n");
  return 0;
}
