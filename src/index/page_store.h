#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace nvmdb {

/// Abstract fixed-size page store underneath the copy-on-write B+tree.
/// Two implementations mirror the paper's two shadow-paging engines:
/// pages in a PMFS file (CoW engine) and pages straight from the NVM
/// allocator (NVM-CoW engine).
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual size_t page_size() const = 0;

  /// Allocate a page; contents undefined until written.
  virtual uint64_t AllocPage() = 0;
  virtual void FreePage(uint64_t pid) = 0;

  virtual void ReadPage(uint64_t pid, void* buf) = 0;
  virtual void WritePage(uint64_t pid, const void* buf) = 0;

  /// Make the given pages durable (fsync / sync primitive).
  virtual void FlushPages(const std::set<uint64_t>& pids) = 0;

  /// The master record (Section 3.2): an atomically-updatable durable word
  /// pointing at the root of the current directory.
  virtual uint64_t ReadMaster() = 0;
  virtual void WriteMaster(uint64_t root_pid) = 0;

  /// Bytes of storage held by live pages (Fig. 14 accounting).
  virtual uint64_t StorageBytes() const = 0;
  /// Volatile memory (page cache etc.) held by the store.
  virtual uint64_t CacheBytes() const { return 0; }

  /// Reclaim every page not reachable from the committed tree. `reachable`
  /// is produced by the tree walk; called asynchronously in the paper,
  /// eagerly at open here.
  virtual void RetainOnly(const std::set<uint64_t>& reachable) = 0;
};

/// Pages stored in a PMFS file with an in-memory page cache (the CoW
/// engine keeps hot pages cached, Section 3.2). Page id n lives at file
/// offset (n + 1) * page_size; the master record occupies the first page.
class PmfsPageStore : public PageStore {
 public:
  PmfsPageStore(Pmfs* fs, const std::string& file_name, size_t page_size,
                size_t cache_pages, StorageTag tag);
  ~PmfsPageStore() override;

  size_t page_size() const override { return page_size_; }
  uint64_t AllocPage() override;
  void FreePage(uint64_t pid) override;
  void ReadPage(uint64_t pid, void* buf) override;
  void WritePage(uint64_t pid, const void* buf) override;
  void FlushPages(const std::set<uint64_t>& pids) override;
  uint64_t ReadMaster() override;
  void WriteMaster(uint64_t root_pid) override;
  uint64_t StorageBytes() const override;
  uint64_t CacheBytes() const override;
  void RetainOnly(const std::set<uint64_t>& reachable) override;

 private:
  struct CacheEntry {
    std::unique_ptr<uint8_t[]> data;
    uint64_t vaddr = 0;  // stable modeled address of the cached frame
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };

  CacheEntry* GetCached(uint64_t pid, bool fill_from_file);
  void EvictIfNeeded();
  void WriteBackEntry(uint64_t pid, CacheEntry* entry);

  Pmfs* fs_;
  Pmfs::Fd fd_;
  size_t page_size_;
  size_t cache_capacity_;
  uint64_t next_pid_;
  std::vector<uint64_t> free_pids_;
  std::map<uint64_t, CacheEntry> cache_;
  std::list<uint64_t> lru_;  // front = most recent
};

/// Pages allocated directly from the NVM allocator; page ids are payload
/// offsets. Durability comes from the allocator's sync primitive — no
/// kernel crossing (Section 4.2). Pages are MarkPersisted only when
/// flushed, so pages of an uncommitted dirty directory are reclaimed by
/// allocator recovery after a crash — the paper's asynchronous dirty-
/// directory garbage collection.
class NvmPageStore : public PageStore {
 public:
  NvmPageStore(PmemAllocator* allocator, const std::string& name,
               size_t page_size, StorageTag tag);

  size_t page_size() const override { return page_size_; }
  uint64_t AllocPage() override;
  void FreePage(uint64_t pid) override;
  void ReadPage(uint64_t pid, void* buf) override;
  void WritePage(uint64_t pid, const void* buf) override;
  void FlushPages(const std::set<uint64_t>& pids) override;
  uint64_t ReadMaster() override;
  void WriteMaster(uint64_t root_pid) override;
  uint64_t StorageBytes() const override;
  void RetainOnly(const std::set<uint64_t>& reachable) override;

 private:
  PmemAllocator* allocator_;
  NvmDevice* device_;
  size_t page_size_;
  StorageTag tag_;
  uint64_t master_off_;  // persistent 8-byte master record
  std::set<uint64_t> live_pages_;
};

}  // namespace nvmdb
