# Empty compiler generated dependencies file for bench_fig11_tpcc_rw.
# This may be replaced when dependencies are built.
