#pragma once

#include <map>
#include <memory>

#include "engine/storage_engine.h"
#include "index/cow_btree.h"

namespace nvmdb {

/// Traditional copy-on-write (shadow paging) engine (Section 3.2), modeled
/// after LMDB: the entire database — every table's tuples, fully inlined
/// in the HDD/SSD-optimized format, plus all secondary-index entries —
/// lives in one copy-on-write B+tree stored in a filesystem file with an
/// in-memory page cache. There is no WAL: a group commit flushes the dirty
/// pages and atomically repoints the master record. There is no recovery
/// process either — after a crash the master record still points at a
/// consistent current directory.
class CowEngine : public StorageEngine {
 public:
  explicit CowEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kCoW; }

  Status CreateTable(const TableDef& def) override;
  Status Commit(uint64_t txn_id) override;
  Status Abort(uint64_t txn_id) override;
  Status Insert(uint64_t txn_id, uint32_t table_id,
                const Tuple& tuple) override;
  Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                const std::vector<ColumnUpdate>& updates) override;
  Status Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) override;
  Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                Tuple* out) override;
  Status ScanRange(uint64_t txn_id, uint32_t table_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(uint64_t, const Tuple&)>& fn)
      override;
  Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                         uint32_t index_id,
                         const std::vector<Value>& key_values,
                         std::vector<Tuple>* out) override;
  Status Recover() override;
  /// Forces the pending group commit to storage.
  Status Checkpoint() override;
  /// Flush only a non-empty pending batch (the CoW group commit).
  Status ForceDurable() override {
    if (txns_in_batch_ > 0) FlushBatch();
    return Status::OK();
  }
  FootprintStats Footprint() const override;
  FootprintStats VolatileFootprint() const override {
    FootprintStats stats;
    stats.other_bytes = store_->CacheBytes();
    return stats;
  }

  uint64_t LastDurableTxn() const override { return last_durable_txn_; }

 protected:
  // NVM-CoW derives from this engine and swaps the page store + the tuple
  // representation (pointers instead of inlined tuples).
  struct TableInfo {
    TableDef def;
  };

  // Volatile per-transaction inverse ops for txn-level abort inside a
  // group-commit batch. The journal is a pool: entries up to
  // journal_used_ are live, the rest keep their string capacity for
  // reuse, so journaling stops allocating in steady state.
  struct InverseOp {
    uint64_t global_key;
    bool had_value;
    std::string old_value;
  };

  TableInfo* GetTable(uint32_t table_id);
  const SecondaryIndexDef* GetIndexDef(const TableInfo& table,
                                       uint32_t index_id) const;
  void JournalPut(uint64_t gkey);
  Status PutSecondaryEntries(const TableInfo& table, const Tuple& tuple,
                             uint64_t pk);
  void DeleteSecondaryEntries(const TableInfo& table, const Tuple& tuple,
                              uint64_t pk);
  void FlushBatch();

  // Tuple representation hooks overridden by NVM-CoW. The append/into
  // forms let callers reuse buffers across transactions.
  virtual Status EncodeTupleValueTo(uint32_t table_id, const Tuple& tuple,
                                    std::string* out);
  virtual void DecodeTupleValueTo(uint32_t table_id, const Slice& value,
                                  Tuple* out);
  /// Called when a tuple value is replaced or removed by update/delete.
  virtual void OnValueReplaced(uint32_t table_id, const Slice& old_value) {
    (void)table_id;
    (void)old_value;
  }
  /// Per-transaction outcome hooks.
  virtual void OnTxnCommitHook() {}
  virtual void OnTxnAbortHook() {}
  /// Batch-commit hooks: before the master swap (NVM-CoW persists pending
  /// tuple copies here) and after it (deferred space reclamation).
  virtual void OnBatchFlush() {}
  virtual void OnBatchFlushed() {}

  /// Derived-engine constructor supplying a custom page store.
  CowEngine(const EngineConfig& config, std::unique_ptr<PageStore> store);

  EngineConfig config_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<CowBTree> tree_;
  std::map<uint32_t, TableInfo> tables_;

  std::vector<InverseOp> txn_journal_;
  size_t journal_used_ = 0;
  size_t txns_in_batch_ = 0;
  uint64_t last_committed_txn_ = 0;
  uint64_t last_durable_txn_ = 0;

  // Reused per-operation scratch (engines are partition-confined).
  std::string val_scratch_;   // old encoded value
  std::string val_scratch2_;  // new encoded value
  Tuple tup_scratch_;         // old tuple image
  Tuple tup_scratch2_;        // new tuple image
  Tuple scan_scratch_;        // scan / secondary materialization
};

}  // namespace nvmdb
