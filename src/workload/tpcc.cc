#include "workload/tpcc.h"

#include <algorithm>
#include <set>

namespace nvmdb {

namespace {

// Column indexes used by transactions (kept in sync with MakeTableDefs).
// WAREHOUSE
constexpr size_t kWName = 2, kWTax = 8, kWYtd = 9;
// DISTRICT
constexpr size_t kDTax = 9, kDYtd = 10, kDNextOid = 11;
// CUSTOMER
constexpr size_t kCWid = 1, kCDid = 2, kCId = 3, kCFirst = 4, kCMiddle = 5,
                 kCLast = 6, kCCredit = 14, kCDiscount = 16, kCBalance = 17,
                 kCYtdPayment = 18, kCPaymentCnt = 19, kCDeliveryCnt = 20,
                 kCData = 21;
// ORDERS
constexpr size_t kOWid = 1, kODid = 2, kOOid = 3, kOCid = 4, kOCarrier = 6,
                 kOOlCnt = 7;
// ORDER_LINE
constexpr size_t kOlOid = 3, kOlIid = 5, kOlDeliveryD = 7, kOlQuantity = 8,
                 kOlAmount = 9;
// NEW_ORDER
constexpr size_t kNoOid = 1;
// ITEM
constexpr size_t kIPrice = 4, kIData = 5;
// STOCK
constexpr size_t kSQuantity = 3, kSYtd = 5, kSOrderCnt = 6, kSData = 8;

// TPC-C NURand constant values.
uint64_t NuRand(Random* rng, uint64_t a, uint64_t x, uint64_t y) {
  const uint64_t c = 42 % (a + 1);
  return ((((rng->Range(0, a) | rng->Range(x, y)) + c) % (y - x + 1)) + x);
}

const char* kSyllables[] = {"BAR", "OUGHT", "ABLE",  "PRI",   "PRES",
                            "ESE", "ANTI",  "CALLY", "ATION", "EING"};

}  // namespace

std::string TpccWorkload::LastName(uint64_t num) {
  return std::string(kSyllables[(num / 100) % 10]) +
         kSyllables[(num / 10) % 10] + kSyllables[num % 10];
}

std::vector<TableDef> TpccWorkload::MakeTableDefs() {
  std::vector<TableDef> defs;
  auto u64 = [](const char* name) {
    return Column{name, ColumnType::kUInt64, 8};
  };
  auto dbl = [](const char* name) {
    return Column{name, ColumnType::kDouble, 8};
  };
  auto str = [](const char* name, uint32_t len) {
    return Column{name, ColumnType::kVarchar, len};
  };

  {
    TableDef def;
    def.table_id = kWarehouse;
    def.name = "warehouse";
    def.schema = Schema({u64("w_pk"), u64("w_id"), str("w_name", 10),
                         str("w_street_1", 20), str("w_city", 20),
                         str("w_state", 2), str("w_zip", 9), str("w_pad", 9),
                         dbl("w_tax"), dbl("w_ytd")});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kDistrict;
    def.name = "district";
    def.schema = Schema({u64("d_pk"), u64("d_w_id"), u64("d_id"),
                         str("d_name", 10), str("d_street_1", 20),
                         str("d_city", 20), str("d_state", 2),
                         str("d_zip", 9), str("d_pad", 9), dbl("d_tax"),
                         dbl("d_ytd"), u64("d_next_o_id")});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kCustomer;
    def.name = "customer";
    def.schema = Schema(
        {u64("c_pk"), u64("c_w_id"), u64("c_d_id"), u64("c_id"),
         str("c_first", 16), str("c_middle", 2), str("c_last", 16),
         str("c_street_1", 20), str("c_street_2", 20), str("c_city", 20),
         str("c_state", 2), str("c_zip", 9), str("c_phone", 16),
         u64("c_since"), str("c_credit", 2), dbl("c_credit_lim"),
         dbl("c_discount"), dbl("c_balance"), dbl("c_ytd_payment"),
         u64("c_payment_cnt"), u64("c_delivery_cnt"), str("c_data", 250)});
    SecondaryIndexDef by_name;
    by_name.index_id = kCustomerByName;
    by_name.key_columns = {kCWid, kCDid, kCLast};
    def.secondary_indexes.push_back(by_name);
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kHistory;
    def.name = "history";
    def.schema = Schema({u64("h_pk"), u64("h_c_id"), u64("h_c_d_id"),
                         u64("h_c_w_id"), u64("h_d_id"), u64("h_w_id"),
                         u64("h_date"), dbl("h_amount"), str("h_data", 24)});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kNewOrder;
    def.name = "new_order";
    def.schema = Schema(
        {u64("no_pk"), u64("no_o_id"), u64("no_d_id"), u64("no_w_id")});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kOrders;
    def.name = "orders";
    def.schema =
        Schema({u64("o_pk"), u64("o_w_id"), u64("o_d_id"), u64("o_id"),
                u64("o_c_id"), u64("o_entry_d"), u64("o_carrier_id"),
                u64("o_ol_cnt"), u64("o_all_local")});
    SecondaryIndexDef by_customer;
    by_customer.index_id = kOrdersByCustomer;
    by_customer.key_columns = {kOWid, kODid, kOCid};
    def.secondary_indexes.push_back(by_customer);
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kOrderLine;
    def.name = "order_line";
    def.schema = Schema({u64("ol_pk"), u64("ol_w_id"), u64("ol_d_id"),
                         u64("ol_o_id"), u64("ol_number"), u64("ol_i_id"),
                         u64("ol_supply_w_id"), u64("ol_delivery_d"),
                         u64("ol_quantity"), dbl("ol_amount"),
                         str("ol_dist_info", 24)});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kItem;
    def.name = "item";
    def.schema = Schema({u64("i_pk"), u64("i_id"), u64("i_im_id"),
                         str("i_name", 24), dbl("i_price"),
                         str("i_data", 50)});
    defs.push_back(def);
  }
  {
    TableDef def;
    def.table_id = kStock;
    def.name = "stock";
    def.schema = Schema({u64("s_pk"), u64("s_w_id"), u64("s_i_id"),
                         u64("s_quantity"), str("s_dist", 24), u64("s_ytd"),
                         u64("s_order_cnt"), u64("s_remote_cnt"),
                         str("s_data", 50)});
    defs.push_back(def);
  }
  return defs;
}

Status TpccWorkload::Load(Database* db) {
  const std::vector<TableDef> defs = MakeTableDefs();
  for (const TableDef& def : defs) {
    Status s = db->CreateTable(def);
    if (!s.ok()) return s;
  }
  const Schema* w_schema = &defs[0].schema;
  const Schema* d_schema = &defs[1].schema;
  const Schema* c_schema = &defs[2].schema;
  const Schema* no_schema = &defs[4].schema;
  const Schema* o_schema = &defs[5].schema;
  const Schema* ol_schema = &defs[6].schema;
  const Schema* i_schema = &defs[7].schema;
  const Schema* s_schema = &defs[8].schema;

  for (size_t p = 0; p < config_.num_warehouses; p++) {
    StorageEngine* engine = db->partition(p % db->num_partitions());
    Random rng(config_.seed * 131 + p);
    const uint64_t w = p + 1;
    uint64_t txn = engine->Begin();
    uint64_t ops = 0;
    auto maybe_commit = [&]() {
      if (++ops >= 256) {
        engine->Commit(txn);
        txn = engine->Begin();
        ops = 0;
      }
    };
    auto insert = [&](uint32_t table, const Tuple& t) -> Status {
      Status s = engine->Insert(txn, table, t);
      if (s.ok()) maybe_commit();
      return s;
    };

    // Warehouse.
    {
      Tuple t(w_schema);
      t.SetU64(0, WKey(w));
      t.SetU64(1, w);
      t.SetString(kWName, rng.String(8));
      t.SetString(3, rng.String(16));
      t.SetString(4, rng.String(12));
      t.SetString(5, rng.String(2));
      t.SetString(6, rng.String(9));
      t.SetString(7, rng.String(9));
      t.SetDouble(kWTax, static_cast<double>(rng.Uniform(2000)) / 10000.0);
      t.SetDouble(kWYtd, 300000.0);
      Status s = insert(kWarehouse, t);
      if (!s.ok()) return s;
    }

    // Items + stock (items replicated per partition so all transactions
    // stay single-partition, the paper's partitioning discipline).
    for (uint64_t i = 1; i <= config_.items; i++) {
      Tuple t(i_schema);
      t.SetU64(0, IKey(i));
      t.SetU64(1, i);
      t.SetU64(2, rng.Range(1, 10000));
      t.SetString(3, rng.String(16));
      t.SetDouble(kIPrice, 1.0 + static_cast<double>(rng.Uniform(9900)) / 100.0);
      t.SetString(kIData, rng.String(32));
      Status s = insert(kItem, t);
      if (!s.ok()) return s;

      Tuple st(s_schema);
      st.SetU64(0, SKey(w, i));
      st.SetU64(1, w);
      st.SetU64(2, i);
      st.SetU64(kSQuantity, rng.Range(10, 100));
      st.SetString(4, rng.String(24));
      st.SetU64(kSYtd, 0);
      st.SetU64(kSOrderCnt, 0);
      st.SetU64(7, 0);
      st.SetString(kSData, rng.String(32));
      s = insert(kStock, st);
      if (!s.ok()) return s;
    }

    // Districts, customers, initial orders.
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; d++) {
      Tuple t(d_schema);
      t.SetU64(0, DKey(w, d));
      t.SetU64(1, w);
      t.SetU64(2, d);
      t.SetString(3, rng.String(8));
      t.SetString(4, rng.String(16));
      t.SetString(5, rng.String(12));
      t.SetString(6, rng.String(2));
      t.SetString(7, rng.String(9));
      t.SetString(8, rng.String(9));
      t.SetDouble(kDTax, static_cast<double>(rng.Uniform(2000)) / 10000.0);
      t.SetDouble(kDYtd, 30000.0);
      t.SetU64(kDNextOid, config_.initial_orders_per_district + 1);
      Status s = insert(kDistrict, t);
      if (!s.ok()) return s;

      for (uint64_t c = 1; c <= config_.customers_per_district; c++) {
        Tuple ct(c_schema);
        ct.SetU64(0, CKey(w, d, c));
        ct.SetU64(kCWid, w);
        ct.SetU64(kCDid, d);
        ct.SetU64(kCId, c);
        ct.SetString(kCFirst, rng.String(12));
        ct.SetString(kCMiddle, "OE");
        ct.SetString(kCLast,
                     LastName(c <= 1000 ? c - 1 : NuRand(&rng, 255, 0, 999)));
        ct.SetString(7, rng.String(16));
        ct.SetString(8, rng.String(16));
        ct.SetString(9, rng.String(12));
        ct.SetString(10, rng.String(2));
        ct.SetString(11, rng.String(9));
        ct.SetString(12, rng.String(16));
        ct.SetU64(13, 0);
        ct.SetString(kCCredit, rng.Percent(10) ? "BC" : "GC");
        ct.SetDouble(15, 50000.0);
        ct.SetDouble(kCDiscount,
                     static_cast<double>(rng.Uniform(5000)) / 10000.0);
        ct.SetDouble(kCBalance, -10.0);
        ct.SetDouble(kCYtdPayment, 10.0);
        ct.SetU64(kCPaymentCnt, 1);
        ct.SetU64(kCDeliveryCnt, 0);
        ct.SetString(kCData, rng.String(128));
        Status s = insert(kCustomer, ct);
        if (!s.ok()) return s;
      }

      // Initial orders: one per customer, in random customer order; the
      // last third remain undelivered (rows in NEW_ORDER).
      std::vector<uint64_t> cids(config_.customers_per_district);
      for (uint64_t c = 0; c < cids.size(); c++) cids[c] = c + 1;
      for (size_t i = cids.size(); i > 1; i--) {
        std::swap(cids[i - 1], cids[rng.Uniform(i)]);
      }
      for (uint64_t o = 1; o <= config_.initial_orders_per_district; o++) {
        const uint64_t c = cids[(o - 1) % cids.size()];
        const uint64_t ol_cnt = rng.Range(5, 15);
        const bool undelivered =
            o > config_.initial_orders_per_district * 2 / 3;
        Tuple ot(o_schema);
        ot.SetU64(0, OKey(w, d, o));
        ot.SetU64(kOWid, w);
        ot.SetU64(kODid, d);
        ot.SetU64(kOOid, o);
        ot.SetU64(kOCid, c);
        ot.SetU64(5, o);  // entry date surrogate
        ot.SetU64(kOCarrier, undelivered ? 0 : rng.Range(1, 10));
        ot.SetU64(kOOlCnt, ol_cnt);
        ot.SetU64(8, 1);
        Status s = insert(kOrders, ot);
        if (!s.ok()) return s;

        for (uint64_t l = 1; l <= ol_cnt; l++) {
          Tuple olt(ol_schema);
          olt.SetU64(0, OLKey(w, d, o, l));
          olt.SetU64(1, w);
          olt.SetU64(2, d);
          olt.SetU64(kOlOid, o);
          olt.SetU64(4, l);
          olt.SetU64(kOlIid, rng.Range(1, config_.items));
          olt.SetU64(6, w);
          olt.SetU64(kOlDeliveryD, undelivered ? 0 : o);
          olt.SetU64(kOlQuantity, 5);
          olt.SetDouble(kOlAmount,
                        undelivered
                            ? static_cast<double>(rng.Uniform(999900)) / 100.0
                            : 0.0);
          olt.SetString(10, rng.String(24));
          s = insert(kOrderLine, olt);
          if (!s.ok()) return s;
        }
        if (undelivered) {
          Tuple nt(no_schema);
          nt.SetU64(0, OKey(w, d, o));
          nt.SetU64(kNoOid, o);
          nt.SetU64(2, d);
          nt.SetU64(3, w);
          s = insert(kNewOrder, nt);
          if (!s.ok()) return s;
        }
      }
    }
    engine->Commit(txn);
  }
  db->Drain();
  return Status::OK();
}

namespace {

// Look up a customer 60% by last name (secondary index, pick the median
// match per the spec) and 40% by id.
bool FindCustomer(StorageEngine* engine, uint64_t txn, uint64_t w,
                  uint64_t d, bool by_name, uint64_t c_id,
                  const Slice& c_last, Tuple* out) {
  if (!by_name) {
    return engine
        ->Select(txn, TpccWorkload::kCustomer,
                 TpccWorkload::CKey(w, d, c_id), out)
        .ok();
  }
  std::vector<Tuple> matches;
  std::vector<Value> key_values = {Value::U64(w), Value::U64(d),
                                   Value::Str(c_last)};
  if (!engine
           ->SelectSecondary(txn, TpccWorkload::kCustomer,
                             TpccWorkload::kCustomerByName, key_values,
                             &matches)
           .ok() ||
      matches.empty()) {
    return false;
  }
  std::sort(matches.begin(), matches.end(),
            [](const Tuple& a, const Tuple& b) {
              return a.GetString(kCFirst) < b.GetString(kCFirst);
            });
  *out = matches[matches.size() / 2];
  return true;
}

bool DoNewOrder(StorageEngine* engine, uint64_t txn, uint64_t w, uint64_t d,
                uint64_t c, const uint64_t* items,
                const uint64_t* quantities, size_t num_items,
                const std::vector<TableDef>& defs) {
  Tuple warehouse;
  if (!engine->Select(txn, TpccWorkload::kWarehouse, TpccWorkload::WKey(w),
                      &warehouse)
           .ok()) {
    return false;
  }
  Tuple district;
  if (!engine->Select(txn, TpccWorkload::kDistrict, TpccWorkload::DKey(w, d),
                      &district)
           .ok()) {
    return false;
  }
  const uint64_t o_id = district.GetU64(kDNextOid);
  {
    std::vector<ColumnUpdate> up;
    up.push_back({kDNextOid, Value::U64(o_id + 1)});
    if (!engine->Update(txn, TpccWorkload::kDistrict,
                        TpccWorkload::DKey(w, d), up)
             .ok()) {
      return false;
    }
  }
  Tuple customer;
  if (!engine->Select(txn, TpccWorkload::kCustomer,
                      TpccWorkload::CKey(w, d, c), &customer)
           .ok()) {
    return false;
  }

  // ORDERS + NEW_ORDER rows.
  Tuple order(&defs[5].schema);
  order.SetU64(0, TpccWorkload::OKey(w, d, o_id));
  order.SetU64(kOWid, w);
  order.SetU64(kODid, d);
  order.SetU64(kOOid, o_id);
  order.SetU64(kOCid, c);
  order.SetU64(5, o_id);
  order.SetU64(kOCarrier, 0);
  order.SetU64(kOOlCnt, num_items);
  order.SetU64(8, 1);
  if (!engine->Insert(txn, TpccWorkload::kOrders, order).ok()) return false;

  Tuple new_order(&defs[4].schema);
  new_order.SetU64(0, TpccWorkload::OKey(w, d, o_id));
  new_order.SetU64(kNoOid, o_id);
  new_order.SetU64(2, d);
  new_order.SetU64(3, w);
  if (!engine->Insert(txn, TpccWorkload::kNewOrder, new_order).ok()) {
    return false;
  }

  for (size_t l = 0; l < num_items; l++) {
    Tuple item;
    if (!engine->Select(txn, TpccWorkload::kItem,
                        TpccWorkload::IKey(items[l]), &item)
             .ok()) {
      return false;  // invalid item: the spec's 1% rollback
    }
    Tuple stock;
    if (!engine->Select(txn, TpccWorkload::kStock,
                        TpccWorkload::SKey(w, items[l]), &stock)
             .ok()) {
      return false;
    }
    uint64_t quantity = stock.GetU64(kSQuantity);
    quantity = quantity >= quantities[l] + 10 ? quantity - quantities[l]
                                              : quantity + 91 - quantities[l];
    {
      std::vector<ColumnUpdate> up;
      up.push_back({kSQuantity, Value::U64(quantity)});
      up.push_back({kSYtd, Value::U64(stock.GetU64(kSYtd) + quantities[l])});
      up.push_back({kSOrderCnt, Value::U64(stock.GetU64(kSOrderCnt) + 1)});
      if (!engine->Update(txn, TpccWorkload::kStock,
                          TpccWorkload::SKey(w, items[l]), up)
               .ok()) {
        return false;
      }
    }
    Tuple ol(&defs[6].schema);
    ol.SetU64(0, TpccWorkload::OLKey(w, d, o_id, l + 1));
    ol.SetU64(1, w);
    ol.SetU64(2, d);
    ol.SetU64(kOlOid, o_id);
    ol.SetU64(4, l + 1);
    ol.SetU64(kOlIid, items[l]);
    ol.SetU64(6, w);
    ol.SetU64(kOlDeliveryD, 0);
    ol.SetU64(kOlQuantity, quantities[l]);
    ol.SetDouble(kOlAmount, static_cast<double>(quantities[l]) *
                                item.GetDouble(kIPrice));
    ol.SetString(10, stock.GetString(4));
    if (!engine->Insert(txn, TpccWorkload::kOrderLine, ol).ok()) {
      return false;
    }
  }
  return true;
}

bool DoPayment(StorageEngine* engine, uint64_t txn, uint64_t w, uint64_t d,
               bool by_name, uint64_t c_id, const Slice& c_last,
               double amount, uint64_t h_seq, const Schema* h_schema) {
  Tuple warehouse;
  if (!engine->Select(txn, TpccWorkload::kWarehouse, TpccWorkload::WKey(w),
                      &warehouse)
           .ok()) {
    return false;
  }
  {
    std::vector<ColumnUpdate> up;
    up.push_back({kWYtd, Value::Dbl(warehouse.GetDouble(kWYtd) + amount)});
    if (!engine->Update(txn, TpccWorkload::kWarehouse, TpccWorkload::WKey(w),
                        up)
             .ok()) {
      return false;
    }
  }
  Tuple district;
  if (!engine->Select(txn, TpccWorkload::kDistrict, TpccWorkload::DKey(w, d),
                      &district)
           .ok()) {
    return false;
  }
  {
    std::vector<ColumnUpdate> up;
    up.push_back({kDYtd, Value::Dbl(district.GetDouble(kDYtd) + amount)});
    if (!engine->Update(txn, TpccWorkload::kDistrict,
                        TpccWorkload::DKey(w, d), up)
             .ok()) {
      return false;
    }
  }
  Tuple customer;
  if (!FindCustomer(engine, txn, w, d, by_name, c_id, c_last, &customer)) {
    return false;
  }
  const uint64_t found_c = customer.GetU64(kCId);
  {
    std::vector<ColumnUpdate> up;
    up.push_back(
        {kCBalance, Value::Dbl(customer.GetDouble(kCBalance) - amount)});
    up.push_back({kCYtdPayment,
                  Value::Dbl(customer.GetDouble(kCYtdPayment) + amount)});
    up.push_back(
        {kCPaymentCnt, Value::U64(customer.GetU64(kCPaymentCnt) + 1)});
    // Value::Str is non-owning, so the backing string must outlive the
    // Update call below — keep it in the enclosing scope.
    std::string data;
    if (customer.GetString(kCCredit) == "BC") {
      data = std::to_string(found_c) + ":" + std::to_string(d) + ":" +
             std::to_string(w) + ":" + std::to_string(amount) + "|" +
             customer.GetString(kCData).ToString();
      if (data.size() > 250) data.resize(250);
      up.push_back({kCData, Value::Str(data)});
    }
    if (!engine->Update(txn, TpccWorkload::kCustomer,
                        TpccWorkload::CKey(w, d, found_c), up)
             .ok()) {
      return false;
    }
  }
  Tuple history(h_schema);
  history.SetU64(0, TpccWorkload::HKey(w, h_seq));
  history.SetU64(1, found_c);
  history.SetU64(2, d);
  history.SetU64(3, w);
  history.SetU64(4, d);
  history.SetU64(5, w);
  history.SetU64(6, h_seq);
  history.SetDouble(7, amount);
  history.SetString(8, warehouse.GetString(kWName).ToString() + "    " +
                           district.GetString(3).ToString());
  return engine->Insert(txn, TpccWorkload::kHistory, history).ok();
}

bool DoOrderStatus(StorageEngine* engine, uint64_t txn, uint64_t w,
                   uint64_t d, bool by_name, uint64_t c_id,
                   const Slice& c_last) {
  Tuple customer;
  if (!FindCustomer(engine, txn, w, d, by_name, c_id, c_last, &customer)) {
    return false;
  }
  const uint64_t found_c = customer.GetU64(kCId);
  std::vector<Tuple> orders;
  std::vector<Value> key_values = {Value::U64(w), Value::U64(d),
                                   Value::U64(found_c)};
  engine->SelectSecondary(txn, TpccWorkload::kOrders,
                          TpccWorkload::kOrdersByCustomer, key_values,
                          &orders);
  if (orders.empty()) return true;  // customer has no orders yet
  uint64_t last_o = 0;
  for (const Tuple& o : orders) last_o = std::max(last_o, o.GetU64(kOOid));
  uint64_t lines = 0;
  engine->ScanRange(txn, TpccWorkload::kOrderLine,
                    TpccWorkload::OLKey(w, d, last_o, 0),
                    TpccWorkload::OLKey(w, d, last_o, 15),
                    [&lines](uint64_t, const Tuple&) {
                      lines++;
                      return true;
                    });
  return true;
}

bool DoDelivery(StorageEngine* engine, uint64_t txn, uint64_t w,
                uint64_t carrier, uint32_t districts) {
  for (uint64_t d = 1; d <= districts; d++) {
    // Oldest undelivered order for the district.
    uint64_t o_id = 0;
    engine->ScanRange(txn, TpccWorkload::kNewOrder,
                      TpccWorkload::OKey(w, d, 0),
                      TpccWorkload::OKey(w, d, 0xFFFFFF),
                      [&o_id](uint64_t, const Tuple& t) {
                        o_id = t.GetU64(kNoOid);
                        return false;  // first = oldest
                      });
    if (o_id == 0) continue;
    if (!engine->Delete(txn, TpccWorkload::kNewOrder,
                        TpccWorkload::OKey(w, d, o_id))
             .ok()) {
      return false;
    }
    Tuple order;
    if (!engine->Select(txn, TpccWorkload::kOrders,
                        TpccWorkload::OKey(w, d, o_id), &order)
             .ok()) {
      return false;
    }
    {
      std::vector<ColumnUpdate> up;
      up.push_back({kOCarrier, Value::U64(carrier)});
      if (!engine->Update(txn, TpccWorkload::kOrders,
                          TpccWorkload::OKey(w, d, o_id), up)
               .ok()) {
        return false;
      }
    }
    double total = 0;
    std::vector<uint64_t> line_keys;
    engine->ScanRange(txn, TpccWorkload::kOrderLine,
                      TpccWorkload::OLKey(w, d, o_id, 0),
                      TpccWorkload::OLKey(w, d, o_id, 15),
                      [&](uint64_t key, const Tuple& t) {
                        total += t.GetDouble(kOlAmount);
                        line_keys.push_back(key);
                        return true;
                      });
    for (uint64_t key : line_keys) {
      std::vector<ColumnUpdate> up;
      up.push_back({kOlDeliveryD, Value::U64(o_id)});
      if (!engine->Update(txn, TpccWorkload::kOrderLine, key, up).ok()) {
        return false;
      }
    }
    const uint64_t c = order.GetU64(kOCid);
    Tuple customer;
    if (!engine->Select(txn, TpccWorkload::kCustomer,
                        TpccWorkload::CKey(w, d, c), &customer)
             .ok()) {
      return false;
    }
    std::vector<ColumnUpdate> up;
    up.push_back(
        {kCBalance, Value::Dbl(customer.GetDouble(kCBalance) + total)});
    up.push_back(
        {kCDeliveryCnt, Value::U64(customer.GetU64(kCDeliveryCnt) + 1)});
    if (!engine->Update(txn, TpccWorkload::kCustomer,
                        TpccWorkload::CKey(w, d, c), up)
             .ok()) {
      return false;
    }
  }
  return true;
}

bool DoStockLevel(StorageEngine* engine, uint64_t txn, uint64_t w,
                  uint64_t d, uint64_t threshold) {
  Tuple district;
  if (!engine->Select(txn, TpccWorkload::kDistrict, TpccWorkload::DKey(w, d),
                      &district)
           .ok()) {
    return false;
  }
  const uint64_t next_o = district.GetU64(kDNextOid);
  const uint64_t from_o = next_o > 20 ? next_o - 20 : 1;
  std::set<uint64_t> item_ids;
  engine->ScanRange(txn, TpccWorkload::kOrderLine,
                    TpccWorkload::OLKey(w, d, from_o, 0),
                    TpccWorkload::OLKey(w, d, next_o, 15),
                    [&item_ids](uint64_t, const Tuple& t) {
                      item_ids.insert(t.GetU64(kOlIid));
                      return true;
                    });
  uint64_t low = 0;
  for (uint64_t i : item_ids) {
    Tuple stock;
    if (engine->Select(txn, TpccWorkload::kStock, TpccWorkload::SKey(w, i),
                       &stock)
            .ok() &&
        stock.GetU64(kSQuantity) < threshold) {
      low++;
    }
  }
  return true;
}

// POD task bodies. Field conventions (see GenerateQueues):
//   a = warehouse, key = district, b = customer / threshold / carrier
//   flags = by-name lookup, off/len = last name in the queue byte pool,
//   woff/wcnt = item+quantity lists in the queue word pool,
//   col = history sequence number.
const std::vector<TableDef>& DefsOf(const TxnQueue& queue) {
  return *static_cast<const std::vector<TableDef>*>(queue.ctx.get());
}

bool NewOrderTxn(const TxnTask& t, const TxnQueue& q, StorageEngine* engine,
                 uint64_t txn, TxnScratch* scratch) {
  (void)scratch;
  return DoNewOrder(engine, txn, t.a, t.key, t.b, q.WordsAt(t.woff),
                    q.WordsAt(t.woff + t.wcnt), t.wcnt, DefsOf(q));
}

bool PaymentTxn(const TxnTask& t, const TxnQueue& q, StorageEngine* engine,
                uint64_t txn, TxnScratch* scratch) {
  (void)scratch;
  return DoPayment(engine, txn, t.a, t.key, t.flags != 0, t.b,
                   q.StrAt(t.off, t.len), t.amount, t.col,
                   &DefsOf(q)[3].schema);
}

bool OrderStatusTxn(const TxnTask& t, const TxnQueue& q,
                    StorageEngine* engine, uint64_t txn,
                    TxnScratch* scratch) {
  (void)scratch;
  return DoOrderStatus(engine, txn, t.a, t.key, t.flags != 0, t.b,
                       q.StrAt(t.off, t.len));
}

bool DeliveryTxn(const TxnTask& t, const TxnQueue& q, StorageEngine* engine,
                 uint64_t txn, TxnScratch* scratch) {
  (void)q;
  (void)scratch;
  return DoDelivery(engine, txn, t.a, t.b, t.col);
}

bool StockLevelTxn(const TxnTask& t, const TxnQueue& q,
                   StorageEngine* engine, uint64_t txn,
                   TxnScratch* scratch) {
  (void)q;
  (void)scratch;
  return DoStockLevel(engine, txn, t.a, t.key, t.b);
}

}  // namespace

std::vector<TxnQueue> TpccWorkload::GenerateQueues() {
  const size_t parts = config_.num_warehouses;
  std::vector<TxnQueue> queues(parts);
  const uint64_t txns_per_part = config_.num_txns / parts;
  // Shared, immutable schema set carried by every queue.
  std::shared_ptr<const std::vector<TableDef>> defs =
      std::make_shared<std::vector<TableDef>>(MakeTableDefs());

  // Only customers 1..min(1000, cpd) carry the deterministic last names,
  // so by-name lookups must draw from that range or they would miss and
  // spuriously abort at scaled-down customer counts.
  const uint64_t max_name = std::min<uint64_t>(
      999, config_.customers_per_district > 0
               ? config_.customers_per_district - 1
               : 0);

  for (size_t p = 0; p < parts; p++) {
    Random rng(config_.seed * 977 + p);
    const uint64_t w = p + 1;
    uint64_t h_seq = 1'000'000;  // beyond any load-time history rows
    TxnQueue& queue = queues[p];
    queue.ctx = defs;
    queue.reserve(txns_per_part);

    for (uint64_t i = 0; i < txns_per_part; i++) {
      const uint64_t dice = rng.Uniform(100);
      const uint64_t d = rng.Range(1, config_.districts_per_warehouse);
      TxnTask task;
      task.a = w;
      task.key = d;
      if (dice < 45) {  // NewOrder
        task.fn = &NewOrderTxn;
        task.b =
            1 + NuRand(&rng, 1023, 0, config_.customers_per_district - 1);
        const uint64_t ol_cnt = rng.Range(5, 15);
        task.woff = static_cast<uint32_t>(queue.words.size());
        task.wcnt = static_cast<uint32_t>(ol_cnt);
        // Items at [woff, woff+ol_cnt), quantities at [woff+ol_cnt, ...).
        queue.words.resize(queue.words.size() + 2 * ol_cnt);
        uint64_t* items = &queue.words[task.woff];
        uint64_t* quantities = items + ol_cnt;
        for (uint64_t l = 0; l < ol_cnt; l++) {
          uint64_t item = 1 + NuRand(&rng, 8191, 0, config_.items - 1);
          // ~1% of NewOrder transactions reference an invalid item and
          // roll back (TPC-C 2.4.1.4).
          if (l == ol_cnt - 1 && rng.Percent(1)) item = config_.items + 999;
          items[l] = item;
          quantities[l] = rng.Range(1, 10);
        }
      } else if (dice < 88) {  // Payment
        task.fn = &PaymentTxn;
        task.flags = rng.Percent(60) ? 1 : 0;
        task.b =
            1 + NuRand(&rng, 1023, 0, config_.customers_per_district - 1);
        const std::string last = LastName(NuRand(&rng, 255, 0, max_name));
        task.off = static_cast<uint32_t>(queue.bytes.size());
        task.len = static_cast<uint32_t>(last.size());
        queue.bytes.append(last);
        task.amount =
            1.0 + static_cast<double>(rng.Uniform(499900)) / 100.0;
        task.col = static_cast<uint32_t>(h_seq++);
      } else if (dice < 92) {  // OrderStatus
        task.fn = &OrderStatusTxn;
        task.flags = rng.Percent(60) ? 1 : 0;
        task.b =
            1 + NuRand(&rng, 1023, 0, config_.customers_per_district - 1);
        const std::string last = LastName(NuRand(&rng, 255, 0, max_name));
        task.off = static_cast<uint32_t>(queue.bytes.size());
        task.len = static_cast<uint32_t>(last.size());
        queue.bytes.append(last);
      } else if (dice < 96) {  // Delivery
        task.fn = &DeliveryTxn;
        task.b = rng.Range(1, 10);  // carrier
        task.col = config_.districts_per_warehouse;
      } else {  // StockLevel
        task.fn = &StockLevelTxn;
        task.b = rng.Range(10, 20);  // threshold
      }
      queue.tasks.push_back(task);
    }
  }
  return queues;
}

}  // namespace nvmdb
