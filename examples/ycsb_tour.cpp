/// YCSB tour: load the paper's key-value workload and compare two engines
/// (traditional copy-on-write vs. its NVM-aware variant) on one mixture,
/// printing throughput, NVM traffic, and storage footprint side by side.
///
/// Usage: example_ycsb_tour [tuples] [txns]
#include <cstdio>
#include <cstdlib>

#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/ycsb.h"

using namespace nvmdb;

namespace {

struct TourResult {
  double throughput;
  CounterDelta counters;
  FootprintStats footprint;
};

TourResult RunEngine(EngineKind kind, uint64_t tuples, uint64_t txns) {
  DatabaseConfig cfg;
  cfg.num_partitions = 2;
  cfg.nvm_capacity = 512ull * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::LowNvm();  // the paper's 2x profile
  cfg.latency.use_clwb = true;
  cfg.cache.capacity_bytes = 1 << 20;
  cfg.engine = kind;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = tuples;
  ycfg.num_txns = txns;
  ycfg.num_partitions = cfg.num_partitions;
  ycfg.mixture = YcsbMixture::kBalanced;
  ycfg.skew = YcsbSkew::kLow;
  YcsbWorkload workload(ycfg);
  if (!workload.Load(&db).ok()) {
    fprintf(stderr, "load failed\n");
    exit(1);
  }

  CounterSampler sampler(db.device());
  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());

  TourResult out;
  out.throughput = result.Throughput(cfg.num_partitions);
  out.counters = sampler.Delta();
  out.footprint = db.Footprint();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t tuples = argc > 1 ? strtoull(argv[1], nullptr, 10) : 5000;
  const uint64_t txns = argc > 2 ? strtoull(argv[2], nullptr, 10) : 8000;
  printf("YCSB balanced mixture, low skew: %llu tuples (~%llu MB), "
         "%llu txns, low-NVM latency\n\n",
         (unsigned long long)tuples, (unsigned long long)(tuples / 1000),
         (unsigned long long)txns);

  printf("%-10s %14s %12s %12s %12s\n", "engine", "txn/sec", "NVM loads",
         "NVM stores", "footprint");
  for (EngineKind kind : {EngineKind::kCoW, EngineKind::kNvmCoW}) {
    const TourResult r = RunEngine(kind, tuples, txns);
    printf("%-10s %14.0f %12llu %12llu %12s\n", EngineKindName(kind),
           r.throughput, (unsigned long long)r.counters.loads,
           (unsigned long long)r.counters.stores,
           FormatBytes(r.footprint.total()).c_str());
  }
  printf(
      "\nThe NVM-aware variant skips the filesystem and the page cache,\n"
      "stores tuples once (pointers in the directory), and commits with an\n"
      "atomic durable write of the master record (Section 4.2).\n");
  return 0;
}
