#include "lsm/memtable.h"

#include <algorithm>
#include <cassert>

namespace nvmdb {

MemTable::MemTable(PmemAllocator* allocator, size_t index_node_bytes)
    : allocator_(allocator),
      device_(allocator->device()),
      index_(index_node_bytes) {
  // The MemTable's index is "volatile" only in the logical sense — its
  // nodes occupy NVM in the single-tier hierarchy, so their traffic goes
  // through the cache model too.
  index_.SetAccessHook(
      +[](void* ctx, const void* p, size_t n, bool w) {
        static_cast<NvmDevice*>(ctx)->TouchVirtual(p, n, w);
      },
      device_);
  // Reserved node addresses keep the modeled counters ASLR-independent.
  index_.SetVirtualAllocator(
      +[](void* ctx, size_t n) {
        return static_cast<NvmDevice*>(ctx)->ReserveVirtual(n);
      },
      device_);
}

MemTable::~MemTable() { ReleaseAll(); }

uint64_t MemTable::Push(uint64_t key, DeltaKind kind, const Slice& payload) {
  const uint64_t off = allocator_->Alloc(
      sizeof(RecordHeader) + payload.size(), StorageTag::kTable);
  assert(off != 0);
  RecordHeader hdr;
  uint64_t head = 0;
  index_.Find(key, &head);
  hdr.next = head;
  hdr.kind = static_cast<uint8_t>(kind);
  hdr.pad[0] = hdr.pad[1] = hdr.pad[2] = 0;
  hdr.length = static_cast<uint32_t>(payload.size());
  device_->Write(off, &hdr, sizeof(hdr));
  if (!payload.empty()) {
    device_->Write(off + sizeof(hdr), payload.data(), payload.size());
  }
  index_.Insert(key, off);
  approx_bytes_ += sizeof(RecordHeader) + payload.size();
  return off;
}

bool MemTable::PopNewest(uint64_t key, uint64_t record_off) {
  uint64_t head = 0;
  if (!index_.Find(key, &head) || head != record_off) return false;
  RecordHeader hdr;
  device_->Read(record_off, &hdr, sizeof(hdr));
  if (hdr.next == 0) {
    index_.Erase(key);
  } else {
    index_.Insert(key, hdr.next);
  }
  approx_bytes_ -= std::min<size_t>(approx_bytes_,
                                    sizeof(RecordHeader) + hdr.length);
  allocator_->Free(record_off);
  return true;
}

void MemTable::Collect(uint64_t key, std::vector<DeltaRecord>* out) const {
  uint64_t off = 0;
  if (!index_.Find(key, &off)) return;
  while (off != 0) {
    RecordHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    DeltaRecord record;
    record.kind = static_cast<DeltaKind>(hdr.kind);
    record.payload.resize(hdr.length);
    if (hdr.length > 0) {
      device_->Read(off + sizeof(hdr), record.payload.data(), hdr.length);
    }
    out->push_back(std::move(record));
    off = hdr.next;
  }
}

void MemTable::Collect(uint64_t key, DeltaRecordList* out) const {
  uint64_t off = 0;
  if (!index_.Find(key, &off)) return;
  while (off != 0) {
    RecordHeader hdr;
    device_->Read(off, &hdr, sizeof(hdr));
    DeltaRecord* record = out->Add(static_cast<DeltaKind>(hdr.kind));
    record->payload.resize(hdr.length);
    if (hdr.length > 0) {
      device_->Read(off + sizeof(hdr), record->payload.data(), hdr.length);
    }
    off = hdr.next;
  }
}

bool MemTable::ContainsKey(uint64_t key) const {
  return index_.Contains(key);
}

void MemTable::ForEachKey(
    const std::function<void(uint64_t, const std::vector<DeltaRecord>&)>&
        fn) const {
  index_.ScanAll([this, &fn](uint64_t key, const uint64_t&) {
    std::vector<DeltaRecord> records;
    Collect(key, &records);
    fn(key, records);
    return true;
  });
}

void MemTable::CollectKeysInRange(uint64_t lo, uint64_t hi,
                                  std::vector<uint64_t>* out) const {
  index_.Scan(lo, hi, [out](uint64_t key, const uint64_t&) {
    out->push_back(key);
    return true;
  });
}

void MemTable::ReleaseAll() {
  index_.ScanAll([this](uint64_t, const uint64_t& head) {
    uint64_t off = head;
    while (off != 0) {
      RecordHeader hdr;
      device_->Read(off, &hdr, sizeof(hdr));
      allocator_->Free(off);
      off = hdr.next;
    }
    return true;
  });
  index_.Clear();
  approx_bytes_ = 0;
}

}  // namespace nvmdb
