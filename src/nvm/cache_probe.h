#pragma once

#include <cstddef>
#include <cstdint>

/// SIMD set-probe primitives for the cache simulator.
///
/// A set probe is a linear scan over at most `associativity` packed 8-byte
/// way entries — 16 by default — executed for every line of every
/// instrumented access, which makes it the single hottest loop in the whole
/// benchmark suite. The helpers here replace that scan with a broadcast
/// compare + movemask + tzcnt: SSE2 (baseline on x86-64, so it inlines into
/// any translation unit without a target attribute) and AVX2 (compiled only
/// in cache_sim_avx2.cc, which is built with -mavx2 and selected at runtime
/// via cpuid — the same dispatch pattern as the CRC32C implementation in
/// src/common/crc32.cc).
///
/// Every variant returns bit-identical results to the scalar loops it
/// replaces; the golden-model test drives a forced-scalar instance in
/// lockstep with the SIMD one to prove it.

#if defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__))
#define NVMDB_PROBE_X86 1
#include <emmintrin.h>
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#else
#define NVMDB_PROBE_X86 0
#endif

namespace nvmdb {

/// Which probe implementation a CacheSim instance runs. Resolved once at
/// construction (see ResolveProbeKind in cache_sim.cc): compile-time
/// -DNVMDB_FORCE_SCALAR_PROBE, the NVMDB_FORCE_SCALAR_PROBE environment
/// variable, or CacheConfig::force_scalar_probe pin kScalar; otherwise the
/// best instruction set the CPU supports wins.
enum class ProbeKind : uint8_t {
  kScalar = 0,  // portable reference loop (also the forced fallback)
  kSse2 = 1,    // x86-64 baseline: no target attribute, header-inlinable
  kAvx2 = 2,    // runtime-dispatched, lives in cache_sim_avx2.cc only
};

namespace probe {

/// The way entry that marks an empty slot (mirrors CacheSim::kInvalidEntry;
/// all ones can never collide with a real packed (index << 1) | dirty
/// entry because real line indexes never have all 63 tag bits set).
inline constexpr uint64_t kEmptyWay = ~0ull;

/// First way whose entry matches `match` with the dirty bit masked off,
/// or -1 when the set does not hold the line.
inline int FindWayScalar(const uint64_t* ways, size_t n, uint64_t match) {
  for (size_t w = 0; w < n; w++) {
    if ((ways[w] & ~uint64_t{1}) == match) return static_cast<int>(w);
  }
  return -1;
}

/// Victim choice on a miss, exactly the scalar one-pass scan the simulator
/// has always used: the LAST empty way when any exists, otherwise the
/// FIRST way holding the minimal LRU stamp.
inline size_t FindVictimScalar(const uint64_t* ways, const uint64_t* stamps,
                               size_t n) {
  size_t victim = 0;
  for (size_t w = 0; w < n; w++) {
    if (ways[w] == kEmptyWay) {
      victim = w;
    } else if (ways[victim] != kEmptyWay && stamps[w] < stamps[victim]) {
      victim = w;
    }
  }
  return victim;
}

#if NVMDB_PROBE_X86

/// One match bit per way for the first min(n, 64) ways (64 ways is far
/// beyond any real associativity; the scalar tail below covers the rest).
/// SSE2 has no 64-bit compare, so equality is computed per 32-bit lane and
/// the two lane results are ANDed: a 64-bit lane is all-ones exactly when
/// both halves matched, which is what movemask_pd then extracts.
template <bool kMaskDirty>
inline uint64_t EqMaskSse2(const uint64_t* ways, size_t n, uint64_t value) {
  const __m128i target = _mm_set1_epi64x(static_cast<long long>(value));
  const __m128i drop_dirty = _mm_set1_epi64x(~static_cast<long long>(1));
  uint64_t mask = 0;
  for (size_t w = 0; w + 2 <= n && w < 64; w += 2) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ways + w));
    if constexpr (kMaskDirty) v = _mm_and_si128(v, drop_dirty);
    const __m128i eq32 = _mm_cmpeq_epi32(v, target);
    const __m128i eq64 = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    mask |= static_cast<uint64_t>(
                _mm_movemask_pd(_mm_castsi128_pd(eq64)))
            << w;
  }
  return mask;
}

inline int FindWaySse2(const uint64_t* ways, size_t n, uint64_t match) {
  const uint64_t mask = EqMaskSse2<true>(ways, n, match);
  if (mask != 0) return __builtin_ctzll(mask);
  // Odd associativity or more than 64 ways: finish with the scalar loop.
  // Matches in the vectorized prefix are at lower indexes, so "first way"
  // is preserved.
  for (size_t w = n < 64 ? (n & ~size_t{1}) : 64; w < n; w++) {
    if ((ways[w] & ~uint64_t{1}) == match) return static_cast<int>(w);
  }
  return -1;
}

inline size_t FindVictimSse2(const uint64_t* ways, const uint64_t* stamps,
                             size_t n) {
  if ((n & 1) != 0 || n > 64) return FindVictimScalar(ways, stamps, n);
  const uint64_t empty = EqMaskSse2<false>(ways, n, kEmptyWay);
  if (empty != 0) {
    return 63 - static_cast<size_t>(__builtin_clzll(empty));
  }
  // All ways valid: scalar min over the stamps (the miss path also pays a
  // fill + possible write-back callback, so this scan is not the bound;
  // the AVX2 kind vectorizes it too).
  size_t victim = 0;
  for (size_t w = 1; w < n; w++) {
    if (stamps[w] < stamps[victim]) victim = w;
  }
  return victim;
}

#endif  // NVMDB_PROBE_X86

#if defined(__AVX2__)

template <bool kMaskDirty>
inline uint64_t EqMaskAvx2(const uint64_t* ways, size_t n, uint64_t value) {
  const __m256i target = _mm256_set1_epi64x(static_cast<long long>(value));
  const __m256i drop_dirty =
      _mm256_set1_epi64x(~static_cast<long long>(1));
  uint64_t mask = 0;
  for (size_t w = 0; w + 4 <= n && w < 64; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ways + w));
    if constexpr (kMaskDirty) v = _mm256_and_si256(v, drop_dirty);
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, target))))
            << w;
  }
  return mask;
}

inline int FindWayAvx2(const uint64_t* ways, size_t n, uint64_t match) {
  const uint64_t mask = EqMaskAvx2<true>(ways, n, match);
  if (mask != 0) return __builtin_ctzll(mask);
  for (size_t w = n < 64 ? (n & ~size_t{3}) : 64; w < n; w++) {
    if ((ways[w] & ~uint64_t{1}) == match) return static_cast<int>(w);
  }
  return -1;
}

inline size_t FindVictimAvx2(const uint64_t* ways, const uint64_t* stamps,
                             size_t n) {
  if ((n & 3) != 0 || n > 64) return FindVictimScalar(ways, stamps, n);
  const uint64_t empty = EqMaskAvx2<false>(ways, n, kEmptyWay);
  if (empty != 0) {
    return 63 - static_cast<size_t>(__builtin_clzll(empty));
  }
  // All ways valid: unsigned 64-bit min-reduction over the stamps (AVX2
  // only has signed compares, so both operands are sign-flipped first),
  // then the first way equal to the minimum — which is exactly the way
  // the scalar "first strictly-smaller" scan would have settled on.
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  __m256i vmin =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(stamps));
  for (size_t w = 4; w < n; w += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(stamps + w));
    const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vmin, sign),
                                          _mm256_xor_si256(s, sign));
    vmin = _mm256_blendv_epi8(vmin, s, gt);
  }
  alignas(32) uint64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), vmin);
  uint64_t min_stamp = lane[0];
  for (int i = 1; i < 4; i++) {
    if (lane[i] < min_stamp) min_stamp = lane[i];
  }
  const __m256i target =
      _mm256_set1_epi64x(static_cast<long long>(min_stamp));
  uint64_t eq = 0;
  for (size_t w = 0; w < n; w += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(stamps + w));
    eq |= static_cast<uint64_t>(_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpeq_epi64(s, target))))
          << w;
  }
  return static_cast<size_t>(__builtin_ctzll(eq));
}

#endif  // __AVX2__

/// One probe implementation per ProbeKind, so the simulator's inner loops
/// — access and flush share these same two entry points — can be
/// instantiated per kind with zero per-line dispatch.
template <ProbeKind K>
struct SetProbe;

template <>
struct SetProbe<ProbeKind::kScalar> {
  static int FindWay(const uint64_t* ways, size_t n, uint64_t match) {
    return FindWayScalar(ways, n, match);
  }
  static size_t FindVictim(const uint64_t* ways, const uint64_t* stamps,
                           size_t n) {
    return FindVictimScalar(ways, stamps, n);
  }
};

#if NVMDB_PROBE_X86
template <>
struct SetProbe<ProbeKind::kSse2> {
  static int FindWay(const uint64_t* ways, size_t n, uint64_t match) {
    return FindWaySse2(ways, n, match);
  }
  static size_t FindVictim(const uint64_t* ways, const uint64_t* stamps,
                           size_t n) {
    return FindVictimSse2(ways, stamps, n);
  }
};
#endif

#if defined(__AVX2__)
template <>
struct SetProbe<ProbeKind::kAvx2> {
  static int FindWay(const uint64_t* ways, size_t n, uint64_t match) {
    return FindWayAvx2(ways, n, match);
  }
  static size_t FindVictim(const uint64_t* ways, const uint64_t* stamps,
                           size_t n) {
    return FindVictimAvx2(ways, stamps, n);
  }
};
#endif

}  // namespace probe
}  // namespace nvmdb
