file(REMOVE_RECURSE
  "CMakeFiles/bench_wear.dir/bench_wear.cc.o"
  "CMakeFiles/bench_wear.dir/bench_wear.cc.o.d"
  "bench_wear"
  "bench_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
