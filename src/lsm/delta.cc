#include "lsm/delta.h"

#include <cassert>
#include <cstring>

namespace nvmdb {

void EncodeUpdatesTo(const Schema& schema,
                     const std::vector<ColumnUpdate>& updates,
                     std::string* out) {
  const uint16_t count = static_cast<uint16_t>(updates.size());
  out->append(reinterpret_cast<const char*>(&count), 2);
  for (const ColumnUpdate& u : updates) {
    const uint16_t col = static_cast<uint16_t>(u.column);
    out->append(reinterpret_cast<const char*>(&col), 2);
    const uint8_t is_string =
        schema.column(u.column).type == ColumnType::kVarchar ? 1 : 0;
    out->push_back(static_cast<char>(is_string));
    if (is_string) {
      const uint32_t len = static_cast<uint32_t>(u.value.str.size());
      out->append(reinterpret_cast<const char*>(&len), 4);
      out->append(u.value.str.data(), u.value.str.size());
    } else {
      out->append(reinterpret_cast<const char*>(&u.value.num), 8);
    }
  }
}

std::string EncodeUpdates(const Schema& schema,
                          const std::vector<ColumnUpdate>& updates) {
  std::string out;
  EncodeUpdatesTo(schema, updates, &out);
  return out;
}

std::vector<ColumnUpdate> DecodeUpdates(const Schema& schema,
                                        const Slice& data) {
  (void)schema;
  std::vector<ColumnUpdate> updates;
  const char* p = data.data();
  const char* end = p + data.size();
  uint16_t count = 0;
  assert(p + 2 <= end);
  memcpy(&count, p, 2);
  p += 2;
  updates.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    ColumnUpdate u;
    uint16_t col;
    assert(p + 3 <= end);
    memcpy(&col, p, 2);
    p += 2;
    u.column = col;
    const uint8_t is_string = static_cast<uint8_t>(*p++);
    if (is_string) {
      uint32_t len;
      assert(p + 4 <= end);
      memcpy(&len, p, 4);
      p += 4;
      assert(p + len <= end);
      u.value = Value::Str(Slice(p, len));
      p += len;
    } else {
      assert(p + 8 <= end);
      uint64_t num;
      memcpy(&num, p, 8);
      p += 8;
      u.value = Value::U64(num);
    }
    updates.push_back(u);
  }
  (void)end;
  return updates;
}

void ApplyUpdates(Tuple* tuple, const std::vector<ColumnUpdate>& updates) {
  for (const ColumnUpdate& u : updates) tuple->Set(u.column, u.value);
}

void ApplyEncodedUpdates(const Schema& schema, const Slice& data,
                         Tuple* tuple) {
  (void)schema;
  const char* p = data.data();
  const char* end = p + data.size();
  uint16_t count = 0;
  assert(p + 2 <= end);
  memcpy(&count, p, 2);
  p += 2;
  for (uint16_t i = 0; i < count; i++) {
    uint16_t col;
    assert(p + 3 <= end);
    memcpy(&col, p, 2);
    p += 2;
    const uint8_t is_string = static_cast<uint8_t>(*p++);
    if (is_string) {
      uint32_t len;
      assert(p + 4 <= end);
      memcpy(&len, p, 4);
      p += 4;
      assert(p + len <= end);
      tuple->SetString(col, Slice(p, len));
      p += len;
    } else {
      assert(p + 8 <= end);
      uint64_t num;
      memcpy(&num, p, 8);
      p += 8;
      tuple->SetU64(col, num);
    }
  }
  (void)end;
}

DeltaRecord CoalesceNewestFirst(const Schema& schema,
                                const std::vector<DeltaRecord>& records) {
  // Find the newest conclusive record; collect deltas above it.
  std::vector<const DeltaRecord*> pending;  // newest first
  for (const DeltaRecord& r : records) {
    if (r.kind == DeltaKind::kTombstone) {
      return {DeltaKind::kTombstone, ""};
    }
    if (r.kind == DeltaKind::kFull) {
      Tuple t = Tuple::ParseInlined(&schema, Slice(r.payload));
      // Apply pending deltas oldest-above-base first.
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        ApplyEncodedUpdates(schema, Slice((*it)->payload), &t);
      }
      return {DeltaKind::kFull, t.SerializeInlined()};
    }
    pending.push_back(&r);
  }
  // No base image here: merge the deltas (oldest first, newer overwrite).
  // Decoded values are Slices into the records' payloads, which stay
  // alive until the merged set is re-encoded below.
  std::vector<ColumnUpdate> merged;
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    for (ColumnUpdate& u : DecodeUpdates(schema, Slice((*it)->payload))) {
      bool replaced = false;
      for (ColumnUpdate& m : merged) {
        if (m.column == u.column) {
          m.value = u.value;
          replaced = true;
          break;
        }
      }
      if (!replaced) merged.push_back(u);
    }
  }
  return {DeltaKind::kDelta, EncodeUpdates(schema, merged)};
}

bool MaterializeNewestFirst(const Schema& schema,
                            const DeltaRecord* records, size_t count,
                            Tuple* out) {
  for (size_t base = 0; base < count; base++) {
    const DeltaRecord& r = records[base];
    if (r.kind == DeltaKind::kTombstone) return false;
    if (r.kind == DeltaKind::kFull) {
      Tuple::ParseInlined(&schema, Slice(r.payload), out);
      // Apply the deltas above the base image oldest first, newest last.
      for (size_t i = base; i-- > 0;) {
        ApplyEncodedUpdates(schema, Slice(records[i].payload), out);
      }
      return true;
    }
  }
  return false;  // deltas without a base: key does not exist
}

}  // namespace nvmdb
