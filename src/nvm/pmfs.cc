#include "nvm/pmfs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "nvm/sync.h"

namespace nvmdb {

namespace {
constexpr uint64_t kSuperMagic = 0x504D46535F563120ULL;  // "PMFS_V1 "
constexpr size_t kNameBytes = 64;
constexpr uint32_t kInitialExtentCap = 64;
constexpr char kSuperRootName[] = "pmfs_super";
}  // namespace

struct Pmfs::Inode {
  char name[kNameBytes];
  uint64_t size;
  uint64_t extent_table_off;  // payload offset of uint64[extent_cap]
  uint32_t extent_count;
  uint32_t extent_cap;
  uint16_t used;
  uint16_t tag;
  uint32_t pad;
};

struct Pmfs::Superblock {
  uint64_t magic;
  uint64_t num_inodes;
  // Inode table follows immediately.
};

Pmfs::Pmfs(PmemAllocator* allocator, const PmfsConfig& config)
    : allocator_(allocator), device_(allocator->device()), config_(config) {
  super_offset_ = allocator_->GetRoot(kSuperRootName);
  if (super_offset_ != 0 && super()->magic == kSuperMagic) {
    return;  // existing namespace recovered via the allocator's catalog
  }
  const size_t bytes =
      sizeof(Superblock) + config_.max_files * sizeof(Inode);
  super_offset_ = allocator_->Alloc(bytes, StorageTag::kFilesystem);
  assert(super_offset_ != 0 && "region too small for pmfs superblock");
  Superblock* sb = super();
  memset(sb, 0, bytes);
  sb->magic = kSuperMagic;
  sb->num_inodes = config_.max_files;
  device_->TouchWrite(sb, bytes);
  device_->Persist(sb, bytes);
  allocator_->MarkPersisted(super_offset_);
  allocator_->SetRoot(kSuperRootName, super_offset_);
}

Pmfs::Superblock* Pmfs::super() const {
  return reinterpret_cast<Superblock*>(device_->PtrAt(super_offset_));
}

Pmfs::Inode* Pmfs::InodeAt(size_t idx) const {
  uint8_t* base = reinterpret_cast<uint8_t*>(super()) + sizeof(Superblock);
  return reinterpret_cast<Inode*>(base) + idx;
}

uint64_t* Pmfs::ExtentTable(const Inode* inode) const {
  return reinterpret_cast<uint64_t*>(
      device_->PtrAt(inode->extent_table_off));
}

Pmfs::Fd Pmfs::Open(const std::string& name, bool create, StorageTag tag) {
  if (name.empty() || name.size() >= kNameBytes) return -1;
  std::lock_guard<std::mutex> guard(mu_);
  int found = -1, free_idx = -1;
  for (size_t i = 0; i < super()->num_inodes; i++) {
    Inode* inode = InodeAt(i);
    if (inode->used && strncmp(inode->name, name.c_str(), kNameBytes) == 0) {
      found = static_cast<int>(i);
      break;
    }
    if (!inode->used && free_idx < 0) free_idx = static_cast<int>(i);
  }
  if (found < 0) {
    if (!create || free_idx < 0) return -1;
    Inode* inode = InodeAt(free_idx);
    memset(inode, 0, sizeof(Inode));
    strncpy(inode->name, name.c_str(), kNameBytes - 1);
    inode->tag = static_cast<uint16_t>(tag);
    inode->extent_cap = kInitialExtentCap;
    inode->extent_table_off = allocator_->Alloc(
        inode->extent_cap * sizeof(uint64_t), StorageTag::kFilesystem);
    if (inode->extent_table_off == 0) return -1;
    memset(ExtentTable(inode), 0, inode->extent_cap * sizeof(uint64_t));
    device_->TouchWrite(ExtentTable(inode),
                        inode->extent_cap * sizeof(uint64_t));
    device_->Persist(ExtentTable(inode),
                     inode->extent_cap * sizeof(uint64_t));
    allocator_->MarkPersisted(inode->extent_table_off);
    // Publish the inode: contents first, then the used flag.
    device_->TouchWrite(inode, sizeof(Inode));
    device_->Persist(inode, sizeof(Inode));
    inode->used = 1;
    device_->TouchWrite(&inode->used, sizeof(inode->used));
    device_->Persist(&inode->used, sizeof(inode->used));
    found = free_idx;
  }
  const Fd fd = next_fd_++;
  handles_[fd].inode_idx = found;
  return fd;
}

void Pmfs::Close(Fd fd) {
  std::lock_guard<std::mutex> guard(mu_);
  handles_.erase(fd);
}

Status Pmfs::EnsureBlocks(Inode* inode, uint64_t end_offset) {
  const size_t bs = config_.block_size;
  const uint32_t needed =
      static_cast<uint32_t>((end_offset + bs - 1) / bs);
  if (needed <= inode->extent_count) return Status::OK();
  if (needed > kMaxExtents) return Status::OutOfSpace("file too large");

  if (needed > inode->extent_cap) {
    uint32_t new_cap = inode->extent_cap * 2;
    while (new_cap < needed) new_cap *= 2;
    const uint64_t new_off = allocator_->Alloc(new_cap * sizeof(uint64_t),
                                               StorageTag::kFilesystem);
    if (new_off == 0) return Status::OutOfSpace("extent table");
    uint64_t* new_table =
        reinterpret_cast<uint64_t*>(device_->PtrAt(new_off));
    memset(new_table, 0, new_cap * sizeof(uint64_t));
    memcpy(new_table, ExtentTable(inode),
           inode->extent_count * sizeof(uint64_t));
    device_->TouchWrite(new_table, new_cap * sizeof(uint64_t));
    device_->Persist(new_table, new_cap * sizeof(uint64_t));
    allocator_->MarkPersisted(new_off);
    const uint64_t old_off = inode->extent_table_off;
    inode->extent_table_off = new_off;
    inode->extent_cap = new_cap;
    device_->TouchWrite(inode, sizeof(Inode));
    device_->Persist(inode, sizeof(Inode));
    allocator_->Free(old_off);
  }

  uint64_t* table = ExtentTable(inode);
  StorageTag tag = static_cast<StorageTag>(inode->tag);
  for (uint32_t i = inode->extent_count; i < needed; i++) {
    const uint64_t block = allocator_->Alloc(bs, tag);
    if (block == 0) return Status::OutOfSpace("file block");
    allocator_->MarkPersisted(block);
    table[i] = block;
    device_->TouchWrite(&table[i], sizeof(uint64_t));
    device_->Persist(&table[i], sizeof(uint64_t));
  }
  inode->extent_count = needed;
  device_->TouchWrite(&inode->extent_count, sizeof(inode->extent_count));
  device_->Persist(&inode->extent_count, sizeof(inode->extent_count));
  return Status::OK();
}

Status Pmfs::Write(Fd fd, uint64_t offset, const void* buf, size_t n) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) return Status::InvalidArgument("bad fd");
  Handle& h = it->second;
  Inode* inode = InodeAt(h.inode_idx);

  // Kernel crossing: the cost the allocator interface avoids (Fig. 1).
  device_->ChargeExternalStall(config_.vfs_call_overhead_ns);

  Status s = EnsureBlocks(inode, offset + n);
  if (!s.ok()) return s;

  const size_t bs = config_.block_size;
  const uint8_t* src = static_cast<const uint8_t*>(buf);
  uint64_t pos = offset;
  size_t remaining = n;
  uint64_t* table = ExtentTable(inode);
  while (remaining > 0) {
    const size_t block_idx = pos / bs;
    const size_t in_block = pos % bs;
    const size_t chunk = std::min(remaining, bs - in_block);
    device_->Write(table[block_idx] + in_block, src, chunk);
    if (h.dirty_blocks.empty() || h.dirty_blocks.back() != block_idx) {
      h.dirty_blocks.push_back(block_idx);
    }
    src += chunk;
    pos += chunk;
    remaining -= chunk;
  }

  if (offset + n > inode->size) {
    inode->size = offset + n;
    device_->TouchWrite(&inode->size, sizeof(inode->size));
    h.inode_dirty = true;
  }
  return Status::OK();
}

Status Pmfs::Append(Fd fd, const void* buf, size_t n) {
  uint64_t size;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) return Status::InvalidArgument("bad fd");
    size = InodeAt(it->second.inode_idx)->size;
  }
  return Write(fd, size, buf, n);
}

Status Pmfs::Read(Fd fd, uint64_t offset, void* buf, size_t n,
                  size_t* out_n) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) return Status::InvalidArgument("bad fd");
  const Inode* inode = InodeAt(it->second.inode_idx);

  device_->ChargeExternalStall(config_.vfs_call_overhead_ns);

  if (offset >= inode->size) {
    *out_n = 0;
    return Status::OK();
  }
  const size_t to_read =
      std::min<uint64_t>(n, inode->size - offset);
  const size_t bs = config_.block_size;
  uint8_t* dst = static_cast<uint8_t*>(buf);
  uint64_t pos = offset;
  size_t remaining = to_read;
  const uint64_t* table = ExtentTable(inode);
  while (remaining > 0) {
    const size_t block_idx = pos / bs;
    const size_t in_block = pos % bs;
    const size_t chunk = std::min(remaining, bs - in_block);
    device_->Read(table[block_idx] + in_block, dst, chunk);
    dst += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  *out_n = to_read;
  return Status::OK();
}

Status Pmfs::Fsync(Fd fd) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) return Status::InvalidArgument("bad fd");
  Handle& h = it->second;
  Inode* inode = InodeAt(h.inode_idx);

  device_->ChargeExternalStall(config_.fsync_overhead_ns);

  const uint64_t* table = ExtentTable(inode);
  std::sort(h.dirty_blocks.begin(), h.dirty_blocks.end());
  h.dirty_blocks.erase(
      std::unique(h.dirty_blocks.begin(), h.dirty_blocks.end()),
      h.dirty_blocks.end());
  for (size_t block_idx : h.dirty_blocks) {
    device_->Persist(table[block_idx], config_.block_size);
  }
  h.dirty_blocks.clear();
  if (h.inode_dirty) {
    device_->Persist(inode, sizeof(Inode));
    h.inode_dirty = false;
  }
  // The point where the fsync as a whole retires and callers may
  // acknowledge durability — one crash-point event.
  PmemBarrier(device_);
  return Status::OK();
}

Status Pmfs::Truncate(Fd fd, uint64_t new_size) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) return Status::InvalidArgument("bad fd");
  Handle& h = it->second;
  Inode* inode = InodeAt(h.inode_idx);
  if (new_size > inode->size) return Status::InvalidArgument("grow");

  const size_t bs = config_.block_size;
  const uint32_t keep =
      static_cast<uint32_t>((new_size + bs - 1) / bs);
  inode->size = new_size;
  device_->TouchWrite(&inode->size, sizeof(inode->size));
  device_->Persist(&inode->size, sizeof(inode->size));
  uint64_t* table = ExtentTable(inode);
  h.dirty_blocks.erase(
      std::remove_if(h.dirty_blocks.begin(), h.dirty_blocks.end(),
                     [keep](size_t b) { return b >= keep; }),
      h.dirty_blocks.end());
  for (uint32_t i = keep; i < inode->extent_count; i++) {
    allocator_->Free(table[i]);
    table[i] = 0;
  }
  if (keep < inode->extent_count) {
    inode->extent_count = keep;
    device_->TouchWrite(&inode->extent_count, sizeof(inode->extent_count));
    device_->Persist(&inode->extent_count, sizeof(inode->extent_count));
  }
  return Status::OK();
}

uint64_t Pmfs::Size(Fd fd) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) return 0;
  return InodeAt(it->second.inode_idx)->size;
}

Status Pmfs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < super()->num_inodes; i++) {
    Inode* inode = InodeAt(i);
    if (!inode->used ||
        strncmp(inode->name, name.c_str(), kNameBytes) != 0) {
      continue;
    }
    uint64_t* table = ExtentTable(inode);
    for (uint32_t b = 0; b < inode->extent_count; b++) {
      if (table[b] != 0) allocator_->Free(table[b]);
    }
    allocator_->Free(inode->extent_table_off);
    inode->used = 0;
    device_->TouchWrite(&inode->used, sizeof(inode->used));
    device_->Persist(&inode->used, sizeof(inode->used));
    memset(inode->name, 0, kNameBytes);
    device_->TouchWrite(inode->name, kNameBytes);
    device_->Persist(inode->name, kNameBytes);
    return Status::OK();
  }
  return Status::NotFound(name);
}

bool Pmfs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < super()->num_inodes; i++) {
    const Inode* inode = InodeAt(i);
    if (inode->used &&
        strncmp(inode->name, name.c_str(), kNameBytes) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Pmfs::List() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  for (size_t i = 0; i < super()->num_inodes; i++) {
    const Inode* inode = InodeAt(i);
    if (inode->used) names.emplace_back(inode->name);
  }
  return names;
}

uint64_t Pmfs::TotalBlockBytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t total = 0;
  for (size_t i = 0; i < super()->num_inodes; i++) {
    const Inode* inode = InodeAt(i);
    if (inode->used) {
      total += static_cast<uint64_t>(inode->extent_count) *
               config_.block_size;
    }
  }
  return total;
}

uint64_t Pmfs::FileBlockBytes(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < super()->num_inodes; i++) {
    const Inode* inode = InodeAt(i);
    if (inode->used &&
        strncmp(inode->name, name.c_str(), kNameBytes) == 0) {
      return static_cast<uint64_t>(inode->extent_count) *
             config_.block_size;
    }
  }
  return 0;
}

}  // namespace nvmdb
