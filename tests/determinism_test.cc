/// Determinism regression test: the same single-worker YCSB workload,
/// executed twice on fresh devices, must produce bit-identical model
/// outputs — NvmCounters, the simulated clock, and WearStats. This guards
/// the "model output unchanged" invariant the simulator fast path depends
/// on: any accidental model change shows up as a counter drift here.
///
/// Only the NVM-native engines qualify: their instrumented traffic is
/// addressed by region offsets, which are stable across runs. The
/// traditional engines route volatile heap structures through
/// TouchVirtual, whose cache addresses are raw malloc pointers and hence
/// ASLR-dependent (observed drift < 0.5%; excluded by design).
#include <gtest/gtest.h>

#include <cstdint>

#include "testbed/coordinator.h"
#include "testbed/database.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace {

struct ModelOutput {
  NvmCounters counters;
  WearStats wear;
  uint64_t stall_ns = 0;
  uint64_t committed = 0;
};

ModelOutput RunOnce(EngineKind engine,
                    ConcurrencyMode mode = ConcurrencyMode::kOwner) {
  DatabaseConfig cfg;
  cfg.num_partitions = 1;  // single worker: fully deterministic schedule
  cfg.nvm_capacity = 128ull * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::Dram();
  cfg.cache.capacity_bytes = 1024 * 1024;
  cfg.cache.mode = mode;
  cfg.engine = engine;
  Database db(cfg);

  YcsbConfig ycfg;
  ycfg.num_tuples = 2000;
  ycfg.num_txns = 3000;
  ycfg.num_partitions = 1;
  ycfg.mixture = YcsbMixture::kBalanced;
  ycfg.skew = YcsbSkew::kHigh;
  YcsbWorkload workload(ycfg);
  EXPECT_TRUE(workload.Load(&db).ok());

  Coordinator coordinator(&db);
  const RunResult result = coordinator.Run(workload.GenerateQueues());

  ModelOutput out;
  out.counters = db.device()->counters();
  out.wear = db.device()->wear();
  out.stall_ns = db.device()->TotalStallNanos();
  out.committed = result.committed;
  return out;
}

void ExpectIdentical(const ModelOutput& a, const ModelOutput& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.counters.loads, b.counters.loads);
  EXPECT_EQ(a.counters.stores, b.counters.stores);
  EXPECT_EQ(a.counters.hits, b.counters.hits);
  EXPECT_EQ(a.counters.stall_ns, b.counters.stall_ns);
  EXPECT_EQ(a.counters.external_ns, b.counters.external_ns);
  EXPECT_EQ(a.counters.sync_calls, b.counters.sync_calls);
  EXPECT_EQ(a.counters.bytes_read, b.counters.bytes_read);
  EXPECT_EQ(a.counters.bytes_written, b.counters.bytes_written);
  EXPECT_EQ(a.stall_ns, b.stall_ns);
  EXPECT_EQ(a.wear.total_line_writes, b.wear.total_line_writes);
  EXPECT_EQ(a.wear.lines_touched, b.wear.lines_touched);
  EXPECT_EQ(a.wear.max_line_writes, b.wear.max_line_writes);
  EXPECT_DOUBLE_EQ(a.wear.mean_line_writes, b.wear.mean_line_writes);
  EXPECT_DOUBLE_EQ(a.wear.hotspot_factor, b.wear.hotspot_factor);
}

TEST(DeterminismTest, NvmInPTwiceIdentical) {
  ExpectIdentical(RunOnce(EngineKind::kNvmInP),
                  RunOnce(EngineKind::kNvmInP));
}

TEST(DeterminismTest, NvmCoWTwiceIdentical) {
  ExpectIdentical(RunOnce(EngineKind::kNvmCoW),
                  RunOnce(EngineKind::kNvmCoW));
}

TEST(DeterminismTest, NvmLogTwiceIdentical) {
  ExpectIdentical(RunOnce(EngineKind::kNvmLog),
                  RunOnce(EngineKind::kNvmLog));
}

// Owner mode (zero-synchronization fast path, the bench default) and
// shared mode (bank locks) must be *the same model*: the whole-stack
// workload must produce bit-identical NvmCounters, simulated clock, and
// WearStats in both modes. This is the device-level guarantee behind the
// CI job that diffs benchmark output between modes.
TEST(DeterminismTest, OwnerVsSharedIdenticalInP) {
  ExpectIdentical(RunOnce(EngineKind::kNvmInP, ConcurrencyMode::kOwner),
                  RunOnce(EngineKind::kNvmInP, ConcurrencyMode::kShared));
}

TEST(DeterminismTest, OwnerVsSharedIdenticalCoW) {
  ExpectIdentical(RunOnce(EngineKind::kNvmCoW, ConcurrencyMode::kOwner),
                  RunOnce(EngineKind::kNvmCoW, ConcurrencyMode::kShared));
}

TEST(DeterminismTest, OwnerVsSharedIdenticalLog) {
  ExpectIdentical(RunOnce(EngineKind::kNvmLog, ConcurrencyMode::kOwner),
                  RunOnce(EngineKind::kNvmLog, ConcurrencyMode::kShared));
}

// The run must also do real work, or the identity above is vacuous.
TEST(DeterminismTest, RunsAreNonTrivial) {
  const ModelOutput out = RunOnce(EngineKind::kNvmInP);
  EXPECT_EQ(out.committed, 3000u);
  EXPECT_GT(out.counters.loads, 0u);
  EXPECT_GT(out.counters.stores, 0u);
  EXPECT_GT(out.stall_ns, 0u);
  EXPECT_GT(out.wear.total_line_writes, 0u);
}

}  // namespace
}  // namespace nvmdb
