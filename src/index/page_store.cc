#include "index/page_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nvmdb {

// ---------------------------------------------------------------------------
// FlatPidSet
// ---------------------------------------------------------------------------

namespace {
inline size_t PidHash(uint64_t pid) {
  return static_cast<size_t>(pid * 0x9E3779B97F4A7C15ULL);
}
}  // namespace

void FlatPidSet::Grow() {
  std::vector<uint64_t> old;
  old.swap(slots_);
  slots_.assign(old.size() * 2, 0);
  count_ = 0;
  for (uint64_t pid : old) {
    if (pid != 0) Insert(pid);
  }
}

void FlatPidSet::Insert(uint64_t pid) {
  assert(pid != 0);
  if ((count_ + 1) * 4 >= slots_.size() * 3) Grow();
  const size_t mask = slots_.size() - 1;
  size_t i = PidHash(pid) & mask;
  while (slots_[i] != 0) {
    if (slots_[i] == pid) return;
    i = (i + 1) & mask;
  }
  slots_[i] = pid;
  count_++;
}

bool FlatPidSet::Erase(uint64_t pid) {
  const size_t mask = slots_.size() - 1;
  size_t i = PidHash(pid) & mask;
  while (slots_[i] != pid) {
    if (slots_[i] == 0) return false;
    i = (i + 1) & mask;
  }
  // Backward-shift deletion keeps probe chains intact without tombstones.
  size_t hole = i;
  for (;;) {
    slots_[hole] = 0;
    size_t j = hole;
    for (;;) {
      j = (j + 1) & mask;
      if (slots_[j] == 0) {
        count_--;
        return true;
      }
      const size_t home = PidHash(slots_[j]) & mask;
      // Move slots_[j] into the hole unless its home lies strictly inside
      // the (hole, j] probe span (cyclically) — then it is already as
      // close to home as it can be.
      const bool in_span = hole <= j ? (home > hole && home <= j)
                                     : (home > hole || home <= j);
      if (!in_span) {
        slots_[hole] = slots_[j];
        hole = j;
        break;
      }
    }
  }
}

std::vector<uint64_t> FlatPidSet::Sorted() const {
  std::vector<uint64_t> out;
  out.reserve(count_);
  for (uint64_t pid : slots_) {
    if (pid != 0) out.push_back(pid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// PmfsPageStore
// ---------------------------------------------------------------------------

PmfsPageStore::PmfsPageStore(Pmfs* fs, const std::string& file_name,
                             size_t page_size, size_t cache_pages,
                             StorageTag tag)
    : fs_(fs), page_size_(page_size), cache_capacity_(cache_pages) {
  fd_ = fs_->Open(file_name, /*create=*/true, tag);
  assert(fd_ >= 0);
  const uint64_t size = fs_->Size(fd_);
  if (size < page_size_) {
    // Fresh file: reserve the master page with a zero master record.
    std::vector<uint8_t> zero(page_size_, 0);
    fs_->Write(fd_, 0, zero.data(), page_size_);
    fs_->Fsync(fd_);
    next_pid_ = 0;
  } else {
    next_pid_ = size / page_size_ - 1;  // minus the master page
  }
}

PmfsPageStore::~PmfsPageStore() { fs_->Close(fd_); }

uint64_t PmfsPageStore::AllocPage() {
  if (!free_pids_.empty()) {
    const uint64_t pid = free_pids_.back();
    free_pids_.pop_back();
    return pid;
  }
  return next_pid_++;
}

void PmfsPageStore::LruUnlink(uint32_t idx) {
  Frame& f = frames_[idx];
  if (f.lru_prev != kNoFrame) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next != kNoFrame) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = f.lru_next = kNoFrame;
}

void PmfsPageStore::LruPushFront(uint32_t idx) {
  Frame& f = frames_[idx];
  f.lru_prev = kNoFrame;
  f.lru_next = lru_head_;
  if (lru_head_ != kNoFrame) frames_[lru_head_].lru_prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNoFrame) lru_tail_ = idx;
}

void PmfsPageStore::DropFrame(uint64_t pid, uint32_t idx) {
  LruUnlink(idx);
  page_to_frame_[pid] = kNoFrame;
  free_frames_.push_back(idx);  // buffer recycled; vaddr is re-reserved
  cached_count_--;
}

void PmfsPageStore::FreePage(uint64_t pid) {
  const uint32_t idx = FrameOf(pid);
  if (idx != kNoFrame) DropFrame(pid, idx);
  free_pids_.push_back(pid);
}

void PmfsPageStore::WriteBackFrame(Frame* frame) {
  if (!frame->dirty) return;
  fs_->Write(fd_, (frame->pid + 1) * page_size_, frame->data.get(),
             page_size_);
  frame->dirty = false;
}

void PmfsPageStore::EvictIfNeeded() {
  while (cached_count_ > cache_capacity_ && lru_tail_ != kNoFrame) {
    const uint32_t victim = lru_tail_;
    WriteBackFrame(&frames_[victim]);
    DropFrame(frames_[victim].pid, victim);
  }
}

PmfsPageStore::Frame* PmfsPageStore::GetCached(uint64_t pid,
                                               bool fill_from_file) {
  uint32_t idx = FrameOf(pid);
  if (idx != kNoFrame) {
    if (lru_head_ != idx) {
      LruUnlink(idx);
      LruPushFront(idx);
    }
    return &frames_[idx];
  }
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    idx = static_cast<uint32_t>(frames_.size());
    frames_.emplace_back();
    frames_[idx].data = std::make_unique<uint8_t[]>(page_size_);
  }
  Frame& frame = frames_[idx];
  frame.pid = pid;
  frame.dirty = false;
  // Model the frame at a reserved address so the cache simulator sees the
  // same set indices regardless of where the heap buffer landed (ASLR).
  // One fresh reservation per fill — identical to the historical cache,
  // which never recycled modeled addresses, so the modeled access stream
  // is unchanged even though the host buffer is reused.
  frame.vaddr = fs_->device()->ReserveVirtual(page_size_);
  if (fill_from_file) {
    size_t got = 0;
    fs_->Read(fd_, (pid + 1) * page_size_, frame.data.get(), page_size_,
              &got);
    if (got < page_size_) {
      memset(frame.data.get() + got, 0, page_size_ - got);
    }
  }
  if (pid >= page_to_frame_.size()) {
    page_to_frame_.resize(std::max<size_t>(pid + 1,
                                           page_to_frame_.size() * 2),
                          kNoFrame);
  }
  page_to_frame_[pid] = idx;
  LruPushFront(idx);
  cached_count_++;
  EvictIfNeeded();
  // EvictIfNeeded never evicts the just-inserted MRU frame while capacity
  // is at least one page.
  return &frames_[idx];
}

void PmfsPageStore::ReadPage(uint64_t pid, void* buf) {
  Frame* frame = GetCached(pid, /*fill_from_file=*/true);
  // The page cache occupies NVM (used as volatile memory); its accesses
  // pass through the CPU-cache model — this is the "I/O overhead of
  // maintaining this directory reduces the number of hot tuples that can
  // reside in the CPU caches" effect of Section 5.3.
  fs_->device()->TouchVirtual(reinterpret_cast<const void*>(frame->vaddr),
                              page_size_, false);
  memcpy(buf, frame->data.get(), page_size_);
}

void PmfsPageStore::WritePage(uint64_t pid, const void* buf) {
  Frame* frame = GetCached(pid, /*fill_from_file=*/false);
  fs_->device()->TouchVirtual(reinterpret_cast<const void*>(frame->vaddr),
                              page_size_, true);
  memcpy(frame->data.get(), buf, page_size_);
  frame->dirty = true;
}

void PmfsPageStore::FlushPages(const std::vector<uint64_t>& pids) {
  for (uint64_t pid : pids) {
    const uint32_t idx = FrameOf(pid);
    if (idx != kNoFrame) WriteBackFrame(&frames_[idx]);
  }
  fs_->Fsync(fd_);
}

uint64_t PmfsPageStore::ReadMaster() {
  uint64_t master = 0;
  size_t got = 0;
  fs_->Read(fd_, 0, &master, sizeof(master), &got);
  return got == sizeof(master) ? master : 0;
}

void PmfsPageStore::WriteMaster(uint64_t root_pid) {
  // The master record lives at a fixed offset in the file; the write fits
  // a single cache line so it reaches durability atomically.
  fs_->Write(fd_, 0, &root_pid, sizeof(root_pid));
  fs_->Fsync(fd_);
}

uint64_t PmfsPageStore::StorageBytes() const {
  return (next_pid_ + 1) * page_size_;
}

uint64_t PmfsPageStore::CacheBytes() const {
  return cached_count_ * (page_size_ + kFrameAccountedBytes);
}

void PmfsPageStore::RetainOnly(const std::set<uint64_t>& reachable) {
  free_pids_.clear();
  for (uint64_t pid = 0; pid < next_pid_; pid++) {
    if (reachable.count(pid) == 0) FreePage(pid);
  }
}

// ---------------------------------------------------------------------------
// NvmPageStore
// ---------------------------------------------------------------------------

NvmPageStore::NvmPageStore(PmemAllocator* allocator, const std::string& name,
                           size_t page_size, StorageTag tag)
    : allocator_(allocator),
      device_(allocator->device()),
      page_size_(page_size),
      tag_(tag) {
  const std::string root_name = name + "/master";
  master_off_ = allocator_->GetRoot(root_name);
  if (master_off_ == 0) {
    master_off_ = allocator_->Alloc(sizeof(uint64_t), StorageTag::kIndex);
    assert(master_off_ != 0);
    device_->AtomicPersistWrite64(master_off_, 0);
    allocator_->MarkPersisted(master_off_);
    allocator_->SetRoot(root_name, master_off_);
  }
}

uint64_t NvmPageStore::AllocPage() {
  const uint64_t off = allocator_->Alloc(page_size_, tag_);
  assert(off != 0);
  // Not MarkPersisted yet: an uncommitted dirty-directory page must be
  // reclaimed by allocator recovery if we crash before the commit flush.
  live_pages_.Insert(off);
  return off;
}

void NvmPageStore::FreePage(uint64_t pid) {
  live_pages_.Erase(pid);
  allocator_->Free(pid);
}

void NvmPageStore::ReadPage(uint64_t pid, void* buf) {
  device_->Read(pid, buf, page_size_);
}

void NvmPageStore::WritePage(uint64_t pid, const void* buf) {
  device_->Write(pid, buf, page_size_);
}

void NvmPageStore::FlushPages(const std::vector<uint64_t>& pids) {
  for (uint64_t pid : pids) {
    allocator_->PersistPayloadAndMark(pid, page_size_);
  }
}

uint64_t NvmPageStore::ReadMaster() {
  uint64_t master = 0;
  device_->Read(master_off_, &master, sizeof(master));
  return master;
}

void NvmPageStore::WriteMaster(uint64_t root_pid) {
  device_->AtomicPersistWrite64(master_off_, root_pid);
}

uint64_t NvmPageStore::StorageBytes() const {
  return live_pages_.size() * page_size_;
}

void NvmPageStore::RetainOnly(const std::set<uint64_t>& reachable) {
  // After restart live_pages_ is empty; adopt the committed set. Any page
  // that was live before but is no longer reachable is freed — ascending,
  // matching the old std::set iteration so the allocator's free-list
  // order (and thus every later allocation) is unchanged.
  for (uint64_t pid : live_pages_.Sorted()) {
    if (reachable.count(pid) == 0) FreePage(pid);
  }
  live_pages_ = FlatPidSet();
  for (uint64_t pid : reachable) live_pages_.Insert(pid);
}

}  // namespace nvmdb
