#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "engine/wal.h"
#include "nvm/nvm_device.h"
#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace nvmdb {
namespace {

/// Torn-tail fuzzing of the WAL parser (ISSUE 2 satellite): a crash can
/// cut an append at *any* byte, and a torn flush can corrupt *any* byte of
/// the tail. `ReadAll` must return exactly the records that survived
/// intact and never throw or over-read — the recovery paths of the InP and
/// Log engines trust it for that.
class WalTornTailTest : public ::testing::Test {
 protected:
  WalTornTailTest()
      : device_(32ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        fs_(&allocator_) {}

  /// Random records (mixed ops, empty and non-empty images), individually
  /// encoded so the test knows every record boundary.
  void BuildLog(int count, uint64_t seed) {
    Random rng(seed);
    bytes_.clear();
    boundaries_.clear();
    for (int i = 0; i < count; i++) {
      LogRecord r;
      r.op = static_cast<LogOp>(rng.Uniform(6));
      r.txn_id = rng.Uniform(1u << 20);
      r.table_id = static_cast<uint32_t>(rng.Uniform(16));
      r.key = rng.Uniform(1u << 20);
      r.before = rng.String(rng.Uniform(40));
      r.after = rng.String(rng.Uniform(40));
      EncodeLogRecord(r, &bytes_);
      boundaries_.push_back(bytes_.size());  // end offset of record i
    }
  }

  /// Records wholly contained in the first `len` bytes.
  size_t IntactPrefix(size_t len) const {
    size_t n = 0;
    while (n < boundaries_.size() && boundaries_[n] <= len) n++;
    return n;
  }

  /// Replace the log file's contents with `data`.
  void WriteLog(const std::string& data) {
    Pmfs::Fd fd = fs_.Open("fuzz.wal", /*create=*/true);
    fs_.Truncate(fd, 0);
    fs_.Append(fd, data.data(), data.size());
    fs_.Fsync(fd);
    fs_.Close(fd);
  }

  NvmDevice device_;
  PmemAllocator allocator_;
  Pmfs fs_;
  std::string bytes_;
  std::vector<size_t> boundaries_;
};

TEST_F(WalTornTailTest, TruncationAtEveryByteOffset) {
  BuildLog(12, /*seed=*/0xF00D);
  // Walk the cut downward so each iteration only shrinks the file.
  WriteLog(bytes_);
  for (size_t len = bytes_.size() + 1; len-- > 0;) {
    Pmfs::Fd fd = fs_.Open("fuzz.wal", false);
    ASSERT_TRUE(fs_.Truncate(fd, len).ok());
    fs_.Close(fd);
    Wal wal(&fs_, "fuzz.wal", 1);
    const std::vector<LogRecord> records = wal.ReadAll();
    EXPECT_EQ(records.size(), IntactPrefix(len)) << "cut at byte " << len;
  }
}

TEST_F(WalTornTailTest, CorruptByteAtEveryOffset) {
  BuildLog(8, /*seed=*/0xBEEF);
  WriteLog(bytes_);
  Pmfs::Fd fd = fs_.Open("fuzz.wal", false);
  for (size_t off = 0; off < bytes_.size(); off++) {
    const char orig = bytes_[off];
    const char flipped = orig ^ 0x5A;
    ASSERT_TRUE(fs_.Write(fd, off, &flipped, 1).ok());
    Wal wal(&fs_, "fuzz.wal", 1);
    const std::vector<LogRecord> records = wal.ReadAll();
    // The record containing the flipped byte fails its CRC (or a bounds
    // check); everything before it must parse, nothing after it may.
    size_t victim = 0;
    while (victim < boundaries_.size() && boundaries_[victim] <= off) {
      victim++;
    }
    EXPECT_EQ(records.size(), victim) << "corrupt byte " << off;
    for (size_t i = 0; i < records.size(); i++) {
      // Surviving records are bit-exact, not merely parseable.
      std::string reencoded;
      EncodeLogRecord(records[i], &reencoded);
      const size_t begin = i == 0 ? 0 : boundaries_[i - 1];
      EXPECT_EQ(reencoded, bytes_.substr(begin, boundaries_[i] - begin));
    }
    ASSERT_TRUE(fs_.Write(fd, off, &orig, 1).ok());
  }
  fs_.Close(fd);
}

TEST_F(WalTornTailTest, GarbageOnlyFileParsesEmpty) {
  Random rng(7);
  std::string junk = rng.String(512);
  WriteLog(junk);
  Wal wal(&fs_, "fuzz.wal", 1);
  EXPECT_TRUE(wal.ReadAll().empty());
}

}  // namespace
}  // namespace nvmdb
