#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace nvmdb {

/// Configuration for the simulated CPU cache in front of NVM.
/// Defaults model the L3 of the paper's Intel Xeon E5-4620 testbed
/// (20 MB, 64 B lines).
struct CacheConfig {
  size_t capacity_bytes = 20ull * 1024 * 1024;
  size_t line_size = 64;
  size_t associativity = 16;
  size_t num_banks = 16;  // lock striping for multi-threaded access
};

/// Events the cache raises toward the owning device.
struct CacheCallbacks {
  /// A dirty line is being written back to NVM (eviction, flush, or
  /// writeback-all). `line_addr` is the region offset of the line start.
  std::function<void(uint64_t line_addr, size_t line_size)> write_back;
  /// A line is being filled from NVM (miss).
  std::function<void(uint64_t line_addr, size_t line_size)> fill;
};

/// Set-associative write-back, write-allocate cache simulator.
///
/// This is the substitute for the microcode-level latency injection in the
/// Intel Labs hardware emulator: every instrumented access to the NVM
/// region passes through this model. Misses correspond to NVM *loads* and
/// dirty write-backs to NVM *stores* — the same counters the paper reads
/// via `perf` (Section 5.3). A crash (`DropDirty`) discards dirty lines,
/// which is how data that was never flushed gets lost.
class CacheSim {
 public:
  CacheSim(const CacheConfig& config, CacheCallbacks callbacks);

  /// Touch [addr, addr+size). Returns the number of missed lines.
  /// Write hits mark lines dirty; write misses allocate.
  size_t Access(uint64_t addr, size_t size, bool is_write);

  /// CLFLUSH/CLWB semantics over [addr, addr+size): dirty lines are written
  /// back; when `invalidate` is true (CLFLUSH) the lines are also evicted,
  /// otherwise (CLWB) they stay resident in clean state.
  /// Returns the number of lines actually written back.
  size_t FlushRange(uint64_t addr, size_t size, bool invalidate);

  /// Write back every dirty line (used by e.g. full-device sync in tests).
  size_t WriteBackAll();

  /// Power failure: all cached state vanishes; dirty lines are NOT written
  /// back — their contents are lost.
  void DropDirty();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t write_backs() const { return write_backs_; }

  size_t line_size() const { return config_.line_size; }

 private:
  struct Line {
    uint64_t tag = kInvalidTag;
    uint64_t lru_stamp = 0;
    bool dirty = false;
  };

  struct Set {
    std::vector<Line> ways;
  };

  struct Bank {
    std::mutex mu;
    std::vector<Set> sets;
    uint64_t lru_clock = 0;
  };

  static constexpr uint64_t kInvalidTag = ~0ull;

  // Returns (bank index, set index within bank) for a line address.
  void Locate(uint64_t line_addr, size_t* bank, size_t* set) const;

  CacheConfig config_;
  CacheCallbacks callbacks_;
  std::vector<Bank> banks_;
  size_t sets_per_bank_;

  // Statistics are approximate under concurrency (relaxed atomics would be
  // fine too; plain counters guarded per-bank then aggregated would cost
  // more than the fidelity is worth).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> write_backs_{0};
};

}  // namespace nvmdb
