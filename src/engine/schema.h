#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvmdb {

/// Column types. Every column occupies an 8-byte slot in a tuple's fixed
/// part; varchar values longer than 8 bytes are stored out-of-line in a
/// variable-length slot whose 8-byte location takes the column's place —
/// exactly the paper's InP layout (Section 3.1).
enum class ColumnType : uint8_t {
  kUInt64 = 0,
  kInt64 = 1,
  kDouble = 2,
  kVarchar = 3,
};

struct Column {
  std::string name;
  ColumnType type = ColumnType::kUInt64;
  /// For kVarchar: maximum length in bytes. Ignored for numerics.
  uint32_t max_length = 8;

  bool IsInlined() const {
    return type != ColumnType::kVarchar || max_length <= 8;
  }
};

/// Table schema: an ordered list of columns. Column 0 is by convention the
/// primary key (uint64).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column `i` inside the fixed part (always 8 * i).
  size_t FixedOffset(size_t i) const { return i * 8; }
  /// Size of the fixed (in-slot) tuple representation.
  size_t FixedSize() const { return columns_.size() * 8; }

  /// True if any column is stored out-of-line.
  bool HasVarlen() const { return has_varlen_; }

  int ColumnIndex(const std::string& name) const;

 private:
  std::vector<Column> columns_;
  bool has_varlen_ = false;
};

/// A secondary index definition: the ordered set of columns forming the
/// secondary key. Secondary indexes map secondary keys to primary keys
/// (Section 3.2).
struct SecondaryIndexDef {
  uint32_t index_id = 0;
  std::vector<size_t> key_columns;
};

/// Table definition handed to engines at CreateTable time.
struct TableDef {
  uint32_t table_id = 0;
  std::string name;
  Schema schema;
  std::vector<SecondaryIndexDef> secondary_indexes;
};

}  // namespace nvmdb
