#!/usr/bin/env python3
"""Merge the per-benchmark BENCH_<name>.json reports into one summary row.

Each figure benchmark writes a machine-readable report (see
testbed/bench_runner.h) with one entry per grid cell: the cell key, commit
counts, simulated nanoseconds, host wall nanoseconds, and derived metrics
such as throughput per latency profile. This script folds a directory of
those reports into a single flat JSON object — one "trajectory row" a
plotting or regression-tracking pipeline can append per commit:

  {
    "benches": 11,
    "cells": 274,
    "committed": 1234567,
    "total_wall_ns": ...,          # harness cost of the whole suite
    "total_sim_ns": ...,           # modeled time the suite produced
    "total_load_ns": ...,          # wall time in cell load phases
    "total_run_ns": ...,           # wall time in cell measured phases
    "sim_wall_ratio": ...,         # simulator speed (higher = faster)
    "jobs": {"fig08_tpcc": 8, ...},
    "wall_ns": {"fig08_tpcc": ..., ...},   # per-bench harness cost
    "tps_low_nvm": {"fig05_07_ycsb/read-only low InP": 117153.0, ...},
    "latency_p50_ns": {"fig05_07_ycsb/read-only low InP": 1536, ...},
    "latency_p99_ns": {...}, "latency_p999_ns": {...},
    "stalls_ns": {"wal": ..., "index": ..., ...},  # suite-wide per tag
    ...
  }

Latency percentiles come from each cell's "latency" object (simulated
clock, histogram bucket lower bounds — see common/histogram.h); cells
without a transaction run (count == 0, e.g. microbenchmarks) are
omitted. "stalls_ns" sums each cell's per-component stall attribution
("stalls" object) across the whole suite.

With --baseline DIR (a directory of BENCH_*.json from another build, e.g.
main before a simulator change) the row also carries wall_speedup:
baseline wall time over this run's wall time, overall and per bench —
the one number a perf-optimization PR is judged by.

Usage:
  scripts/bench_summary.py [--dir DIR] [--out FILE] [--metrics m1,m2]
                           [--baseline DIR]

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import os
import sys


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as f:
                reports.append(json.load(f))
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_summary: skipping {path}: {err}", file=sys.stderr)
    return reports


def cell_label(cell):
    return " ".join(cell.get("key", {}).values())


def summarize(reports, metric_names):
    row = {
        "benches": len(reports),
        "cells": 0,
        "committed": 0,
        "aborted": 0,
        "total_wall_ns": 0,
        "total_sim_ns": 0,
        "total_load_ns": 0,
        "total_run_ns": 0,
        "jobs": {},
        "wall_ns": {},
    }
    metrics = {name: {} for name in metric_names}
    latency_cols = {"latency_p50_ns": {}, "latency_p99_ns": {},
                    "latency_p999_ns": {}}
    stalls_total = {}
    for report in reports:
        bench = report.get("bench", "?")
        row["jobs"][bench] = report.get("jobs", 0)
        row["wall_ns"][bench] = report.get("total_wall_ns", 0)
        row["total_wall_ns"] += report.get("total_wall_ns", 0)
        row["total_sim_ns"] += report.get("total_sim_ns", 0)
        for cell in report.get("cells", []):
            row["cells"] += 1
            row["committed"] += cell.get("committed", 0)
            row["aborted"] += cell.get("aborted", 0)
            row["total_load_ns"] += cell.get("load_ns", 0)
            row["total_run_ns"] += cell.get("run_ns", 0)
            latency = cell.get("latency", {})
            if latency.get("count", 0) > 0:
                label = f"{bench}/{cell_label(cell)}"
                for pct in ("p50", "p99", "p999"):
                    latency_cols[f"latency_{pct}_ns"][label] = latency.get(
                        f"{pct}_ns", 0
                    )
            for key, value in cell.get("stalls", {}).items():
                tag = key[:-3] if key.endswith("_ns") else key
                stalls_total[tag] = stalls_total.get(tag, 0) + value
            for name in metric_names:
                value = cell.get("metrics", {}).get(name)
                if value is not None:
                    metrics[name][f"{bench}/{cell_label(cell)}"] = value
    for name, values in latency_cols.items():
        if values:
            row[name] = values
    if stalls_total:
        row["stalls_ns"] = stalls_total
    row["sim_wall_ratio"] = (
        row["total_sim_ns"] / row["total_wall_ns"]
        if row["total_wall_ns"]
        else 0.0
    )
    for name in metric_names:
        if metrics[name]:
            row[name] = metrics[name]
    return row


def add_speedups(row, baseline_row):
    """Attach wall_speedup (baseline wall / current wall) to `row`."""
    speedup = {}
    base_walls = baseline_row.get("wall_ns", {})
    for bench, wall in row.get("wall_ns", {}).items():
        base = base_walls.get(bench, 0)
        if base and wall:
            speedup[bench] = round(base / wall, 3)
    overall = (
        round(baseline_row["total_wall_ns"] / row["total_wall_ns"], 3)
        if baseline_row.get("total_wall_ns") and row.get("total_wall_ns")
        else 0.0
    )
    row["wall_speedup"] = {"overall": overall, **speedup}


def main():
    parser = argparse.ArgumentParser(
        description="Merge BENCH_*.json reports into one summary row."
    )
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json files"
    )
    parser.add_argument(
        "--out", default="-", help="output file ('-' for stdout)"
    )
    parser.add_argument(
        "--metrics",
        default="tps_low_nvm",
        help="comma-separated per-cell metrics to flatten into the row",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="directory of baseline BENCH_*.json; adds wall_speedup "
        "(baseline wall / current wall) per bench and overall",
    )
    args = parser.parse_args()

    reports = load_reports(args.dir)
    if not reports:
        print(f"bench_summary: no BENCH_*.json in {args.dir}", file=sys.stderr)
        return 1

    metric_names = [m for m in args.metrics.split(",") if m]
    row = summarize(reports, metric_names)
    if args.baseline:
        baseline_reports = load_reports(args.baseline)
        if not baseline_reports:
            print(
                f"bench_summary: no baseline BENCH_*.json in {args.baseline}",
                file=sys.stderr,
            )
            return 1
        add_speedups(row, summarize(baseline_reports, []))
    text = json.dumps(row, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
