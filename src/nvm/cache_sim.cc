#include "nvm/cache_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "nvm/cache_sim_inl.h"

namespace nvmdb {

namespace {

size_t CeilPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p <<= 1;
  return p;
}

unsigned Log2(size_t pow2) {
  unsigned s = 0;
  while ((size_t{1} << s) < pow2) s++;
  return s;
}

}  // namespace

ConcurrencyMode ResolveConcurrencyMode(ConcurrencyMode requested) {
  // Read fresh (not cached in a static): instances are constructed off
  // the hot path, and tests toggle the variable around constructions.
  const char* v = std::getenv("NVMDB_SHARED_CACHE");
  if (v != nullptr && *v != '\0' && *v != '0') {
    return ConcurrencyMode::kShared;
  }
  return requested;
}

ProbeKind ResolveProbeKind(bool force_scalar) {
#if defined(NVMDB_FORCE_SCALAR_PROBE)
  // Compile-time pin: the CI fallback build proves the scalar loop can
  // never drift from the SIMD kinds.
  (void)force_scalar;
  return ProbeKind::kScalar;
#else
  if (force_scalar) return ProbeKind::kScalar;
  const char* v = std::getenv("NVMDB_FORCE_SCALAR_PROBE");
  if (v != nullptr && *v != '\0' && *v != '0') return ProbeKind::kScalar;
#if NVMDB_PROBE_X86
#if defined(NVMDB_HAVE_AVX2_PROBE) && defined(__GNUC__)
  // Same runtime-dispatch pattern as the CRC32C implementation: detect
  // once per construction (constructions are off the hot path), never
  // per access. __builtin_cpu_supports includes the OS XSAVE check.
  if (__builtin_cpu_supports("avx2")) return ProbeKind::kAvx2;
#endif
  return ProbeKind::kSse2;
#else
  return ProbeKind::kScalar;
#endif
#endif
}

CacheSim::CacheSim(const CacheConfig& config, CacheCallbacks callbacks)
    : mode_(ResolveConcurrencyMode(config.mode)),
      probe_kind_(ResolveProbeKind(config.force_scalar_probe)),
      scalar_probe_(probe_kind_ == ProbeKind::kScalar),
      callbacks_(callbacks) {
  line_size_ = CeilPow2(std::max<size_t>(1, config.line_size));
  line_shift_ = Log2(line_size_);
  associativity_ = std::max<size_t>(1, config.associativity);
  const size_t num_lines =
      std::max(associativity_, config.capacity_bytes / line_size_);
  const size_t num_sets =
      CeilPow2(std::max<size_t>(1, num_lines / associativity_));
  num_banks_ =
      std::min(FloorPow2(std::max<size_t>(1, config.num_banks)), num_sets);
  sets_per_bank_ = num_sets / num_banks_;
  bank_mask_ = num_banks_ - 1;
  bank_shift_ = Log2(num_banks_);
  set_mask_ = sets_per_bank_ - 1;

  banks_ = std::vector<Bank>(num_banks_);
  entries_.assign(num_sets * associativity_, kInvalidEntry);
  stamps_.assign(num_sets * associativity_, 0);
}

#if NVMDB_OWNER_CHECKS
void CacheSim::OwnerViolation() {
  std::fprintf(stderr,
               "CacheSim owner-mode violation: instance accessed from a "
               "second thread; construct with ConcurrencyMode::kShared "
               "(or set NVMDB_SHARED_CACHE=1) for multi-threaded use\n");
  std::abort();
}
#endif

#if NVMDB_STREAM_CHECKS
void CacheSim::StreamCheckViolation() {
  std::fprintf(stderr,
               "CacheSim stream-check violation: AccessSegments visited a "
               "different per-line sequence than the uncoalesced calls it "
               "replaces would have\n");
  std::abort();
}
#endif

// The scalar and SSE2 kinds live in this translation unit; the AVX2 kind
// is instantiated only in cache_sim_avx2.cc (built with -mavx2) and
// surfaced here through explicit instantiation declarations.
NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kOwner, ProbeKind::kScalar);
NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kShared, ProbeKind::kScalar);
#if NVMDB_PROBE_X86
NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kOwner, ProbeKind::kSse2);
NVMDB_CACHE_SIM_INSTANTIATE(ConcurrencyMode::kShared, ProbeKind::kSse2);
#endif
#if defined(NVMDB_HAVE_AVX2_PROBE)
NVMDB_CACHE_SIM_DECLARE(ConcurrencyMode::kOwner, ProbeKind::kAvx2);
NVMDB_CACHE_SIM_DECLARE(ConcurrencyMode::kShared, ProbeKind::kAvx2);
#endif

// Per-call dispatch: one switch on the construction-resolved probe kind
// (perfectly predicted — it never changes for an instance) selects the
// inner-loop instantiation; kinds the build lacks fall through to scalar,
// which ResolveProbeKind then never selects anyway.
#if defined(NVMDB_HAVE_AVX2_PROBE)
#define NVMDB_AVX2_CASE(IMPL, M, ...) \
  case ProbeKind::kAvx2:              \
    return IMPL<M, ProbeKind::kAvx2>(__VA_ARGS__);
#else
#define NVMDB_AVX2_CASE(IMPL, M, ...)
#endif
#if NVMDB_PROBE_X86
#define NVMDB_SSE2_CASE(IMPL, M, ...) \
  case ProbeKind::kSse2:              \
    return IMPL<M, ProbeKind::kSse2>(__VA_ARGS__);
#else
#define NVMDB_SSE2_CASE(IMPL, M, ...)
#endif
#define NVMDB_PROBE_DISPATCH(IMPL, M, ...)              \
  switch (probe_kind_) {                                \
    NVMDB_AVX2_CASE(IMPL, M, __VA_ARGS__)               \
    NVMDB_SSE2_CASE(IMPL, M, __VA_ARGS__)               \
    default:                                            \
      return IMPL<M, ProbeKind::kScalar>(__VA_ARGS__);  \
  }

CacheAccessResult CacheSim::AccessEx(uint64_t addr, size_t size,
                                     bool is_write) {
  if (size == 0) return CacheAccessResult{};
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    NVMDB_PROBE_DISPATCH(AccessExImpl, ConcurrencyMode::kOwner, addr, size,
                         is_write)
  }
  NVMDB_PROBE_DISPATCH(AccessExImpl, ConcurrencyMode::kShared, addr, size,
                       is_write)
}

CacheAccessResult CacheSim::AccessSegments(uint64_t addr,
                                           const uint32_t* lens,
                                           size_t num_segments,
                                           bool is_write) {
  if (num_segments == 0) return CacheAccessResult{};
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    NVMDB_PROBE_DISPATCH(AccessSegmentsImpl, ConcurrencyMode::kOwner, addr,
                         lens, num_segments, is_write)
  }
  NVMDB_PROBE_DISPATCH(AccessSegmentsImpl, ConcurrencyMode::kShared, addr,
                       lens, num_segments, is_write)
}

size_t CacheSim::FlushRange(uint64_t addr, size_t size, bool invalidate) {
  if (size == 0) return 0;
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    NVMDB_PROBE_DISPATCH(FlushRangeImpl, ConcurrencyMode::kOwner, addr,
                         size, invalidate)
  }
  NVMDB_PROBE_DISPATCH(FlushRangeImpl, ConcurrencyMode::kShared, addr,
                       size, invalidate)
}

template <ConcurrencyMode M>
size_t CacheSim::WriteBackAllImpl() {
  size_t flushed = 0;
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    cache_detail::BankGuard<M> guard(bank.mu);
    uint64_t* const ways = &entries_[b * per_bank];
    for (size_t i = 0; i < per_bank; i++) {
      const uint64_t e = ways[i];
      if (e != kInvalidEntry && (e & 1)) {
        flushed++;
        bank.write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, (e >> 1) << line_shift_,
                                line_size_);
        }
        ways[i] = e & ~uint64_t{1};
      }
    }
  }
  return flushed;
}

size_t CacheSim::WriteBackAll() {
  if (mode_ == ConcurrencyMode::kOwner) {
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    return WriteBackAllImpl<ConcurrencyMode::kOwner>();
  }
  return WriteBackAllImpl<ConcurrencyMode::kShared>();
}

void CacheSim::DropDirty() {
#if NVMDB_OWNER_CHECKS
  if (mode_ == ConcurrencyMode::kOwner) CheckOwner();
#endif
  const size_t per_bank = sets_per_bank_ * associativity_;
  for (size_t b = 0; b < num_banks_; b++) {
    Bank& bank = banks_[b];
    cache_detail::BankGuard<ConcurrencyMode::kShared> guard(bank.mu);
    std::fill_n(entries_.begin() + b * per_bank, per_bank, kInvalidEntry);
    std::fill_n(stamps_.begin() + b * per_bank, per_bank, uint64_t{0});
    bank.lru_clock = 0;
  }
}

uint64_t CacheSim::hits() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.hits;
    } else {
      total += bank.hits;
    }
  }
  return total;
}

uint64_t CacheSim::misses() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.misses;
    } else {
      total += bank.misses;
    }
  }
  return total;
}

uint64_t CacheSim::write_backs() const {
  uint64_t total = 0;
  const bool lock = mode_ == ConcurrencyMode::kShared;
  for (const Bank& bank : banks_) {
    if (lock) {
      std::lock_guard<std::mutex> guard(const_cast<Bank&>(bank).mu);
      total += bank.write_backs;
    } else {
      total += bank.write_backs;
    }
  }
  return total;
}

}  // namespace nvmdb
