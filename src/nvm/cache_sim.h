#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

/// Debug-build owner checks: in kOwner mode the cache records the first
/// accessing thread and aborts on any access from another thread, making
/// silent cross-thread use of a zero-synchronization cache impossible.
/// Compiled out under NDEBUG (the hot path must stay branch-free in
/// release builds); define NVMDB_FORCE_OWNER_CHECKS to keep them in an
/// optimized build (the sanitizer CI job does).
#if !defined(NDEBUG) || defined(NVMDB_FORCE_OWNER_CHECKS)
#define NVMDB_OWNER_CHECKS 1
#else
#define NVMDB_OWNER_CHECKS 0
#endif

namespace nvmdb {

/// Synchronization discipline of a CacheSim / NvmDevice instance.
///
/// Since the benchmark-grid scheduler made every cell strictly
/// thread-confined (one cell = one pool thread, Coordinator::Run
/// single-threaded), the per-access bank mutex and atomic counter adds
/// pay for contention that cannot occur on those paths. kOwner removes
/// them: the hot loop takes no locks and counts with plain increments.
/// The model itself is identical in both modes — same hit/miss/write-back
/// sequences, same counters (the golden-model and determinism tests
/// assert this); only the synchronization around it differs.
enum class ConcurrencyMode : uint8_t {
  /// Exactly one thread ever accesses the instance (thread-confined
  /// benchmark cells, single-threaded tests). Zero synchronization on the
  /// access path; debug builds assert the confinement.
  kOwner,
  /// Multiple threads may access concurrently: per-bank lock striping,
  /// exact counters under the bank locks (the pre-existing behavior).
  kShared,
};

/// Effective mode for an instance requesting `requested`:
/// NVMDB_SHARED_CACHE=1 in the environment forces kShared everywhere (a
/// debugging escape hatch, e.g. to rule the owner fast path out of a
/// miscounting suspicion). Consulted at construction time only.
ConcurrencyMode ResolveConcurrencyMode(ConcurrencyMode requested);

/// Configuration for the simulated CPU cache in front of NVM.
/// Defaults model the L3 of the paper's Intel Xeon E5-4620 testbed
/// (20 MB, 64 B lines).
///
/// Geometry is normalized at construction so the hot-path address→slot
/// mapping is pure shift+mask: `line_size` and the total set count are
/// rounded up to powers of two, and the bank count is rounded down to a
/// power of two (never exceeding the requested striping). Configurations
/// whose derived geometry is already power-of-two — every benchmark and
/// test config in this repo — are unaffected; the 20 MB default rounds up
/// to an effective 32 MB.
struct CacheConfig {
  size_t capacity_bytes = 20ull * 1024 * 1024;
  size_t line_size = 64;
  size_t associativity = 16;
  size_t num_banks = 16;  // lock striping (used by kShared only)
  /// kOwner is the repo-wide default: every database/device is built and
  /// driven on one thread (see ConcurrencyMode). Multi-threaded users of
  /// a *single* instance must select kShared explicitly.
  ConcurrencyMode mode = ConcurrencyMode::kOwner;
};

/// Events the cache raises toward the owning device. Raw function
/// pointers + context rather than std::function: these fire on every
/// dirty eviction in the simulator's inner loop, and a std::function call
/// costs an indirect dispatch plus potential allocation that profiles as
/// a top-three entry in the access path.
struct CacheCallbacks {
  using LineEventFn = void (*)(void* ctx, uint64_t line_addr,
                               size_t line_size);
  /// A dirty line is being written back to NVM (eviction, flush, or
  /// writeback-all). `line_addr` is the region offset of the line start.
  LineEventFn write_back = nullptr;
  /// A line is being filled from NVM (miss).
  LineEventFn fill = nullptr;
  /// Opaque pointer passed through to both callbacks.
  void* ctx = nullptr;
};

/// What one Access() call did, so the caller can charge all simulated
/// costs (miss latency, hit latency, write-back bandwidth) with a single
/// accumulation instead of per-line bookkeeping.
struct CacheAccessResult {
  uint32_t missed = 0;       // lines not found resident
  uint32_t write_backs = 0;  // dirty victims evicted to NVM
};

/// Set-associative write-back, write-allocate cache simulator.
///
/// This is the substitute for the microcode-level latency injection in the
/// Intel Labs hardware emulator: every instrumented access to the NVM
/// region passes through this model. Misses correspond to NVM *loads* and
/// dirty write-backs to NVM *stores* — the same counters the paper reads
/// via `perf` (Section 5.3). A crash (`DropDirty`) discards dirty lines,
/// which is how data that was never flushed gets lost.
///
/// Line metadata lives in one flat contiguous array of packed 8-byte
/// entries (line index + dirty bit) with a parallel LRU-stamp array,
/// indexed [bank][set][way]; no per-set or per-way heap nodes exist, so a
/// set probe is a short linear scan over adjacent memory.
///
/// Synchronization is selected at construction (ConcurrencyMode): the
/// public entry points dispatch once per call into an inner loop
/// instantiated for the chosen mode, so kOwner pays neither locks nor a
/// per-line mode branch.
class CacheSim {
 public:
  /// True when cross-thread owner-mode accesses abort (debug builds).
  static constexpr bool kOwnerChecksEnabled = NVMDB_OWNER_CHECKS != 0;

  CacheSim(const CacheConfig& config, CacheCallbacks callbacks);

  /// Mode the instance actually runs in (after the NVMDB_SHARED_CACHE
  /// override).
  ConcurrencyMode mode() const { return mode_; }

  /// Touch [addr, addr+size). Write hits mark lines dirty; write misses
  /// allocate. Returns per-call miss and write-back counts.
  CacheAccessResult AccessEx(uint64_t addr, size_t size, bool is_write);

  /// Compatibility shim: number of missed lines only.
  size_t Access(uint64_t addr, size_t size, bool is_write) {
    return AccessEx(addr, size, is_write).missed;
  }

  /// Owner-mode fast path, safe to inline at call sites: if [addr,
  /// addr+size) lies within one cache line AND that line is resident,
  /// perform the hit (LRU stamp, dirty marking, hit counter) and return
  /// true. Returns false — having changed nothing — when the access spans
  /// lines or misses; the caller then takes the out-of-line AccessEx
  /// path. Must only be called on kOwner instances (single-line hits are
  /// the overwhelmingly common case on the engines' instrumented paths,
  /// and this skips the call + dispatch + result plumbing for them).
  bool OwnerHitFast(uint64_t addr, size_t size, bool is_write) {
    const uint64_t idx = addr >> line_shift_;
    if (((addr + size - 1) >> line_shift_) != idx) return false;
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    const size_t global_set = bank_idx * sets_per_bank_ + set_idx;
    uint64_t* const ways = &entries_[global_set * associativity_];
    const uint64_t match = idx << 1;
    for (size_t w = 0; w < associativity_; w++) {
      const uint64_t e = ways[w];
      if ((e & ~uint64_t{1}) == match) {
        Bank& bank = banks_[bank_idx];
        stamps_[global_set * associativity_ + w] = ++bank.lru_clock;
        if (is_write) ways[w] = e | 1;
        bank.hits++;
        return true;
      }
    }
    return false;
  }

  /// CLFLUSH/CLWB semantics over [addr, addr+size): dirty lines are written
  /// back; when `invalidate` is true (CLFLUSH) the lines are also evicted,
  /// otherwise (CLWB) they stay resident in clean state.
  /// Returns the number of lines actually written back.
  size_t FlushRange(uint64_t addr, size_t size, bool invalidate);

  /// Owner-mode fast path for FlushRange, safe to inline at call sites:
  /// handles a range confined to one cache line (every per-tuple persist
  /// the engines issue) without the out-of-line call and mode dispatch.
  /// Returns the number of lines written back (0 or 1), or -1 when the
  /// range spans lines — the caller then takes FlushRange. Must only be
  /// called on kOwner instances.
  int OwnerFlushFast(uint64_t addr, size_t size, bool invalidate) {
    const uint64_t idx = addr >> line_shift_;
    if (((addr + size - 1) >> line_shift_) != idx) return -1;
#if NVMDB_OWNER_CHECKS
    CheckOwner();
#endif
    const uint64_t h = MixLineIndex(idx);
    const size_t bank_idx = h & bank_mask_;
    const size_t set_idx = (h >> bank_shift_) & set_mask_;
    uint64_t* const ways =
        &entries_[(bank_idx * sets_per_bank_ + set_idx) * associativity_];
    const uint64_t match = idx << 1;
    int flushed = 0;
    for (size_t w = 0; w < associativity_; w++) {
      const uint64_t e = ways[w];
      if ((e & ~uint64_t{1}) != match) continue;
      if (e & 1) {
        flushed = 1;
        banks_[bank_idx].write_backs++;
        if (callbacks_.write_back) {
          callbacks_.write_back(callbacks_.ctx, idx << line_shift_,
                                line_size_);
        }
        ways[w] = match;  // clean
      }
      if (invalidate) ways[w] = kInvalidEntry;
      break;
    }
    return flushed;
  }

  /// Write back every dirty line (used by e.g. full-device sync in tests).
  size_t WriteBackAll();

  /// Power failure: all cached state vanishes; dirty lines are NOT written
  /// back — their contents are lost.
  void DropDirty();

  // Statistics are exact in both modes: each bank counts under its own
  // lock in kShared (no shared atomic contention on the hot path) and
  // with plain increments in kOwner (only one thread ever touches them);
  // the getters aggregate across banks, taking each bank's lock in
  // kShared so concurrent updates are never torn or lost. After all
  // accessing threads quiesce, hits() + misses() == total lines
  // accessed, exactly.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t write_backs() const;

  size_t line_size() const { return line_size_; }

 private:
  // Packed line entry: (line_index << 1) | dirty. line_index is the line
  // address divided by line_size; even 48-bit heap addresses leave the top
  // tag bits free. kInvalidEntry (all ones) can never collide with a real
  // entry because a real line index never has all 63 tag bits set.
  static constexpr uint64_t kInvalidEntry = ~0ull;

  // Per-bank mutable state, cache-line aligned so banks never false-share.
  struct alignas(64) Bank {
    std::mutex mu;  // taken in kShared mode only
    uint64_t lru_clock = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t write_backs = 0;
  };

  // Mix the line index so adjacent lines spread across banks and sets; a
  // plain modulo would pathologically collide for strided engine layouts.
  // The mapping is identical to the seed model's (h % banks, (h / banks)
  // % sets) whenever banks and sets are powers of two.
  static uint64_t MixLineIndex(uint64_t line_index) {
    uint64_t h = line_index * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return h;
  }

  // Mode-instantiated inner loops behind the public dispatchers; kShared
  // takes the bank lock per line, kOwner compiles it away entirely.
  template <ConcurrencyMode M>
  CacheAccessResult AccessExImpl(uint64_t addr, size_t size, bool is_write);
  template <ConcurrencyMode M>
  size_t FlushRangeImpl(uint64_t addr, size_t size, bool invalidate);
  template <ConcurrencyMode M>
  size_t WriteBackAllImpl();

  // Touch one line; requires the owning bank's lock in kShared mode.
  // Returns 1 if the line missed and adds any dirty-victim write-back to
  // `result`. Force-inlined into the per-line loops in AccessExImpl: at
  // ~8.5 lines per engine access the call overhead alone profiled as the
  // single hottest entry in the whole bench suite, and GCC's size
  // heuristics refuse the inline on their own.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline uint32_t AccessLine(Bank& bank, size_t global_set,
                             uint64_t line_index, bool is_write,
                             CacheAccessResult* result) {
    uint64_t* const ways = &entries_[global_set * associativity_];
    uint64_t* const stamps = &stamps_[global_set * associativity_];
    const uint64_t match = line_index << 1;

    // Hit probe first, over the packed entries alone: the common case
    // touches half the metadata (no stamps, no victim bookkeeping) and
    // compiles to a tight compare loop.
    for (size_t w = 0; w < associativity_; w++) {
      const uint64_t e = ways[w];
      if ((e & ~uint64_t{1}) == match) {
        stamps[w] = ++bank.lru_clock;
        if (is_write) ways[w] = e | 1;
        bank.hits++;
        return 0;
      }
    }

    // Miss: pick the victim — the last empty way if any exists, else the
    // LRU-minimal way (identical choice to the seed's one-pass scan) —
    // write it back if dirty, then fill.
    size_t victim = 0;
    for (size_t w = 0; w < associativity_; w++) {
      if (ways[w] == kInvalidEntry) {
        victim = w;
      } else if (ways[victim] != kInvalidEntry &&
                 stamps[w] < stamps[victim]) {
        victim = w;
      }
    }
    bank.misses++;
    const uint64_t evicted = ways[victim];
    if (evicted != kInvalidEntry && (evicted & 1)) {
      bank.write_backs++;
      result->write_backs++;
      if (callbacks_.write_back) {
        callbacks_.write_back(callbacks_.ctx, (evicted >> 1) << line_shift_,
                              line_size_);
      }
    }
    if (callbacks_.fill) {
      callbacks_.fill(callbacks_.ctx, line_index << line_shift_,
                      line_size_);
    }
    ways[victim] = match | (is_write ? 1 : 0);
    stamps[victim] = ++bank.lru_clock;
    return 1;
  }

#if NVMDB_OWNER_CHECKS
  /// Record the first accessing thread of a kOwner instance and abort on
  /// any access from a different thread. Mutating entry points call this;
  /// read-only counter getters don't, so post-join aggregation from a
  /// parent thread (sequentially safe) stays legal.
  void CheckOwner() {
    if (mode_ != ConcurrencyMode::kOwner) return;
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_thread_.load(std::memory_order_relaxed) == self) return;
    if (owner_thread_.compare_exchange_strong(expected, self,
                                              std::memory_order_relaxed)) {
      return;  // first toucher becomes the owner
    }
    OwnerViolation();
  }
  [[noreturn]] static void OwnerViolation();
#endif

  size_t line_size_;        // power of two
  unsigned line_shift_;     // log2(line_size_)
  size_t associativity_;
  size_t num_banks_;        // power of two
  size_t sets_per_bank_;    // power of two
  uint64_t bank_mask_;      // num_banks_ - 1
  unsigned bank_shift_;     // log2(num_banks_)
  uint64_t set_mask_;       // sets_per_bank_ - 1
  ConcurrencyMode mode_;

  CacheCallbacks callbacks_;
  std::vector<Bank> banks_;
  // Flat [bank][set][way] metadata; entries_ and stamps_ are parallel.
  std::vector<uint64_t> entries_;
  std::vector<uint64_t> stamps_;

#if NVMDB_OWNER_CHECKS
  /// First thread that touched a kOwner instance; default-constructed id
  /// until then. Atomic so the check itself is race-free even while it
  /// detects a race.
  std::atomic<std::thread::id> owner_thread_{};
#endif
};

}  // namespace nvmdb
