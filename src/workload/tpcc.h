#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "testbed/coordinator.h"

namespace nvmdb {

/// TPC-C configuration. One warehouse per partition (the paper maps each
/// of its 8 warehouses to a partition, Section 5.1); sizes are scaled down
/// by default and restorable to spec scale via the fields.
struct TpccConfig {
  size_t num_warehouses = 8;  // == partitions
  uint64_t num_txns = 40000;  // total across partitions
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;   // spec: 3000
  uint32_t items = 2000;                   // spec: 100000
  uint32_t initial_orders_per_district = 300;
  uint64_t seed = 7;
};

/// Full TPC-C implementation: all nine tables, both secondary indexes
/// (customer by last name, orders by customer) and the five transaction
/// types in the standard mix — NewOrder 45%, Payment 43%, OrderStatus 4%,
/// Delivery 4%, StockLevel 4%. Transactions modifying the database are
/// ~88% of the mix, matching the paper. ~1% of NewOrders roll back
/// (invalid item), exercising the engines' abort paths.
class TpccWorkload {
 public:
  explicit TpccWorkload(const TpccConfig& config) : config_(config) {}

  // Table ids.
  static constexpr uint32_t kWarehouse = 1;
  static constexpr uint32_t kDistrict = 2;
  static constexpr uint32_t kCustomer = 3;
  static constexpr uint32_t kHistory = 4;
  static constexpr uint32_t kNewOrder = 5;
  static constexpr uint32_t kOrders = 6;
  static constexpr uint32_t kOrderLine = 7;
  static constexpr uint32_t kItem = 8;
  static constexpr uint32_t kStock = 9;

  // Secondary index ids.
  static constexpr uint32_t kCustomerByName = 0;
  static constexpr uint32_t kOrdersByCustomer = 0;

  // Key packing (all keys < 2^48 so they fit the CoW global key space).
  static uint64_t WKey(uint64_t w) { return w; }
  static uint64_t DKey(uint64_t w, uint64_t d) { return (w << 8) | d; }
  static uint64_t CKey(uint64_t w, uint64_t d, uint64_t c) {
    return (w << 24) | (d << 16) | c;
  }
  static uint64_t HKey(uint64_t w, uint64_t seq) { return (w << 32) | seq; }
  static uint64_t OKey(uint64_t w, uint64_t d, uint64_t o) {
    return (w << 32) | (d << 24) | o;
  }
  static uint64_t OLKey(uint64_t w, uint64_t d, uint64_t o, uint64_t l) {
    return (w << 36) | (d << 28) | (o << 4) | l;
  }
  static uint64_t IKey(uint64_t i) { return i; }
  static uint64_t SKey(uint64_t w, uint64_t i) { return (w << 24) | i; }

  static std::vector<TableDef> MakeTableDefs();
  static std::string LastName(uint64_t num);

  Status Load(Database* db);
  /// Pre-generate the fixed per-partition transaction queues as POD tasks
  /// (customer last names and order-line item/quantity lists live in the
  /// queues' byte/word pools; the shared schema set rides in queue.ctx).
  std::vector<TxnQueue> GenerateQueues();

  const TpccConfig& config() const { return config_; }

 private:
  TpccConfig config_;
};

}  // namespace nvmdb
