#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/tuple.h"
#include "nvm/pmem_allocator.h"

namespace nvmdb {

/// Slot-based tuple heap used by the in-place-updates engines (and as the
/// tuple store of NVM-Log). Tuples occupy fixed-size slots; any field
/// larger than 8 bytes is stored in a separate variable-length slot whose
/// 8-byte location sits in the field's place (Section 3.1).
///
/// Durability discipline depends on the owner:
///  * Traditional InP uses the heap as volatile memory: writes are
///    instrumented but never synced; durability comes from the WAL.
///  * NVM-InP / NVM-Log sync tuple data with the sync primitive and drive
///    the allocator's slot durability states, so committed tuples are
///    reachable directly after restart (`nvm_aware = true`).
class TableHeap {
 public:
  TableHeap(PmemAllocator* allocator, const Schema* schema, bool nvm_aware);

  /// Write a tuple into a fresh slot (plus varlen slots). Returns the slot
  /// offset, or 0 if the device is full. If `nvm_aware`, the tuple and its
  /// varlen fields are synced; they are additionally marked persisted in
  /// the allocator unless `defer_mark` is set. NVM engines defer the mark
  /// until the WAL entry referencing the slot is durable, otherwise a
  /// crash in between would leak the slot (Section 4.1).
  uint64_t Insert(const Tuple& tuple, bool defer_mark = false);

  /// Persist-state bookkeeping for a deferred insert: marks the tuple slot
  /// and every varlen slot it references.
  void MarkTuplePersisted(uint64_t slot);

  /// Sync the tuple's bytes (fixed part + varlen payloads) and mark all
  /// its slots persisted. Used by NVM-CoW, which batches tuple syncs until
  /// the group commit (Section 4.2).
  void PersistTuple(uint64_t slot);

  /// Materialize the tuple stored at `slot` into `out` (reusing its
  /// buffers — the hot path), or into a fresh Tuple (cold convenience).
  void Read(uint64_t slot, Tuple* out) const;
  Tuple Read(uint64_t slot) const {
    Tuple t;
    Read(slot, &t);
    return t;
  }

  /// Read a single column (cheaper than full materialization). The
  /// appending form reads the column's bytes onto the end of `out`
  /// without a temporary (same device accesses as ReadString).
  uint64_t ReadU64(uint64_t slot, size_t col) const;
  std::string ReadString(uint64_t slot, size_t col) const;
  void AppendString(uint64_t slot, size_t col, std::string* out) const;

  /// Field-level undo information captured before an in-place update.
  /// For an inlined column `before` is the old 8-byte value; for an
  /// out-of-line column it is the old varlen slot offset.
  struct UndoField {
    uint32_t column;
    uint64_t before;
  };

  /// Apply updates directly on the slot. Old varlen slots are appended to
  /// `deferred_free` — they can only be freed once the transaction's
  /// outcome is decided. Undo info is appended to `undo`.
  /// If `nvm_aware`, modified bytes are synced.
  Status Update(uint64_t slot, const std::vector<ColumnUpdate>& updates,
                std::vector<UndoField>* undo,
                std::vector<uint64_t>* deferred_free);

  /// Revert one field (rollback path). New varlen slots installed by the
  /// update being undone are appended to `deferred_free`.
  void ApplyUndo(uint64_t slot, const UndoField& undo,
                 std::vector<uint64_t>* deferred_free);

  /// Release the slot and every varlen slot it references.
  void Free(uint64_t slot);

  /// Release a varlen slot only (deferred frees after commit/abort).
  void FreeVarlen(uint64_t varlen_slot);

  /// Release a varlen slot only if it reached the persisted state; slots
  /// still in allocated state were (or will be) reclaimed by allocator
  /// recovery, so freeing them again would double-free (recovery path).
  void FreeVarlenIfPersisted(uint64_t varlen_slot);

  // Lower-level primitives for the NVM-InP two-phase update protocol
  // (prepare varlen slots -> WAL -> apply field swaps).

  /// Write a varlen value without syncing or marking its slot.
  uint64_t AllocVarlenUnmarked(const Slice& value);
  void MarkVarlenPersisted(uint64_t varlen_slot);
  /// Persist a varlen slot's payload and state with one sync (no-op if
  /// already persisted).
  void PersistVarlenAndMark(uint64_t varlen_slot);
  /// Persist a contiguous span of fixed-part fields with one sync.
  void PersistFieldSpan(uint64_t slot, size_t min_col, size_t max_col);
  /// Read the raw 8-byte field word.
  uint64_t ReadFieldRaw(uint64_t slot, size_t col) const;
  /// Overwrite the raw 8-byte field word (persisted if nvm_aware and
  /// `persist` is true; pass false when batching via PersistFieldSpan).
  void WriteFieldRaw(uint64_t slot, size_t col, uint64_t value,
                     bool persist = true);

  /// Mark the tuple slot (and varlen slots) persisted without re-syncing
  /// payloads (used when the payload sync already happened).
  void MarkSlotPersisted(uint64_t slot);

  /// True iff every out-of-line varlen pointer in the tuple's fixed part
  /// refers to a well-formed allocator slot. Recovery calls this before
  /// materializing a tuple whose final persist may have been torn — a slot
  /// durably marked persisted can still carry stale payload lines, and
  /// following a garbage pointer would read out of bounds.
  bool TupleReadable(uint64_t slot) const;

  const Schema* schema() const { return schema_; }
  size_t slot_size() const { return slot_size_; }
  size_t live_tuples() const { return live_tuples_; }

 private:
  uint64_t WriteVarlen(const Slice& value);
  std::string ReadVarlen(uint64_t varlen_slot) const;
  /// Read a varlen payload straight into `out`'s arena for column `col`
  /// (same device accesses as ReadVarlen, no temporary string).
  void ReadVarlenInto(uint64_t varlen_slot, Tuple* out, size_t col) const;

  PmemAllocator* allocator_;
  NvmDevice* device_;
  const Schema* schema_;
  bool nvm_aware_;
  size_t slot_size_;
  size_t live_tuples_ = 0;
  // Reused fixed-part staging buffer for Insert/Read (TableHeaps are
  // partition-confined, like the engines that own them).
  mutable std::vector<uint64_t> fixed_scratch_;
};

}  // namespace nvmdb
