#include <gtest/gtest.h>

#include "test_util.h"
#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace {

using testutil::SimpleTable;
using testutil::SimpleTuple;

class TestbedTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(TestbedTest, MultiPartitionRun) {
  auto db = testutil::MakeDb(GetParam(), /*partitions=*/4,
                             128ull * 1024 * 1024);
  const TableDef def = SimpleTable();
  ASSERT_TRUE(db->CreateTable(def).ok());

  // Each partition inserts its own key range concurrently.
  std::vector<TxnQueue> queues(4);
  for (size_t p = 0; p < 4; p++) {
    for (uint64_t i = 0; i < 100; i++) {
      const uint64_t key = p * 1000 + i;
      const Schema* schema = &def.schema;
      queues[p].PushBody([key, schema](StorageEngine* engine, uint64_t txn) {
        return engine->Insert(txn, 1, SimpleTuple(schema, key, "w", key))
            .ok();
      });
    }
  }
  Coordinator coordinator(db.get());
  const RunResult result = coordinator.Run(queues);
  EXPECT_EQ(result.committed, 400u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_GT(result.Throughput(4), 0.0);

  // Every partition holds exactly its keys.
  for (size_t p = 0; p < 4; p++) {
    StorageEngine* engine = db->partition(p);
    const uint64_t txn = engine->Begin();
    Tuple out;
    EXPECT_TRUE(engine->Select(txn, 1, p * 1000 + 50, &out).ok());
    EXPECT_TRUE(
        engine->Select(txn, 1, ((p + 1) % 4) * 1000 + 50, &out).IsNotFound());
    engine->Commit(txn);
  }
}

TEST_P(TestbedTest, AbortedTasksCounted) {
  auto db = testutil::MakeDb(GetParam(), 1);
  ASSERT_TRUE(db->CreateTable(SimpleTable()).ok());
  std::vector<TxnQueue> queues(1);
  queues[0].PushBody(
      [](StorageEngine*, uint64_t) { return false; /* abort */ });
  Coordinator coordinator(db.get());
  const RunResult result = coordinator.Run(queues);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.aborted, 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, TestbedTest,
                         ::testing::Values(EngineKind::kInP,
                                           EngineKind::kNvmInP,
                                           EngineKind::kNvmLog),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(StatsTest, FormatBreakdownSumsTo100) {
  StallBreakdown breakdown;
  breakdown.ns[static_cast<size_t>(StallTag::kWal)] = 250;
  breakdown.ns[static_cast<size_t>(StallTag::kIndex)] = 250;
  breakdown.ns[static_cast<size_t>(StallTag::kTuple)] = 250;
  breakdown.ns[static_cast<size_t>(StallTag::kOther)] = 250;
  EXPECT_EQ(FormatBreakdown(breakdown),
            "wal 25.0% index 25.0% tuple 25.0% allocator 0.0% "
            "checkpoint 0.0% recovery 0.0% other 25.0%");
}

TEST(StatsTest, FormatBreakdownAllZero) {
  EXPECT_EQ(FormatBreakdown(StallBreakdown{}),
            "wal 0% index 0% tuple 0% allocator 0% checkpoint 0% "
            "recovery 0% other 0%");
}

TEST(StatsTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3ull << 20), "3.00 MB");
  EXPECT_EQ(FormatBytes(5ull << 30), "5.00 GB");
}

TEST(StatsTest, CounterSamplerDeltas) {
  NvmDevice device(1 << 20, NvmLatencyConfig::Dram());
  CounterSampler sampler(&device);
  char buf[1024];
  device.Read(0, buf, 1024);
  const CounterDelta delta = sampler.Delta();
  EXPECT_GE(delta.loads, 16u);
  EXPECT_EQ(delta.sync_calls, 0u);
}

TEST(DatabaseTest, FootprintBreakdownIsPlausible) {
  auto db = testutil::MakeDb(EngineKind::kNvmInP, 1);
  ASSERT_TRUE(db->CreateTable(SimpleTable()).ok());
  StorageEngine* engine = db->partition(0);
  const TableDef def = SimpleTable();
  const uint64_t txn = engine->Begin();
  for (uint64_t i = 0; i < 200; i++) {
    engine->Insert(txn, 1, SimpleTuple(&def.schema, i, "f", i));
  }
  engine->Commit(txn);
  const FootprintStats stats = db->Footprint();
  EXPECT_GT(stats.table_bytes, 200u * 100);  // payload-dominated
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GT(stats.total(), stats.table_bytes);
}

TEST(DatabaseTest, RunResultUsesSimulatedClock) {
  RunResult result;
  result.committed = 1000;
  result.wall_ns = 9'000'000'000;  // host speed: excluded from throughput
  result.stall_ns = 4'000'000'000; // 4 s of simulated time over 4 workers
  EXPECT_DOUBLE_EQ(result.EffectiveSeconds(4), 1.0);
  EXPECT_DOUBLE_EQ(result.Throughput(4), 1000.0);
}

TEST(YcsbConfigTest, MixturesAndSkewNames) {
  EXPECT_EQ(YcsbReadPercent(YcsbMixture::kReadOnly), 100);
  EXPECT_EQ(YcsbReadPercent(YcsbMixture::kReadHeavy), 90);
  EXPECT_EQ(YcsbReadPercent(YcsbMixture::kBalanced), 50);
  EXPECT_EQ(YcsbReadPercent(YcsbMixture::kWriteHeavy), 10);
  EXPECT_STREQ(YcsbMixtureName(YcsbMixture::kBalanced), "balanced");
  EXPECT_STREQ(YcsbSkewName(YcsbSkew::kHigh), "high-skew");
}

}  // namespace
}  // namespace nvmdb
