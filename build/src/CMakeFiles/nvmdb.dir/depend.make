# Empty dependencies file for nvmdb.
# This may be replaced when dependencies are built.
