/// Interactive mini-shell over the nvmdb public API — poke at any of the
/// six engines, pull the (virtual) power plug, and watch recovery happen.
///
/// Usage: example_nvmdb_shell [engine]
///   engine: inp | cow | log | nvm-inp | nvm-cow | nvm-log (default)
///
/// Commands:
///   put <key> <name> [count]    insert or update a row
///   get <key>                   read a row
///   del <key>                   delete a row
///   scan <lo> <hi>              range scan
///   find <name>                 secondary-index lookup by name
///   begin / commit / abort      explicit transaction control
///   crash                       power failure (unflushed data is lost!)
///   recover                     restart + engine recovery protocol
///   stats                       NVM counters, footprint, wear
///   help / quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "testbed/database.h"
#include "testbed/stats.h"

using namespace nvmdb;

namespace {

EngineKind ParseEngine(const char* arg) {
  if (strcmp(arg, "inp") == 0) return EngineKind::kInP;
  if (strcmp(arg, "cow") == 0) return EngineKind::kCoW;
  if (strcmp(arg, "log") == 0) return EngineKind::kLog;
  if (strcmp(arg, "nvm-inp") == 0) return EngineKind::kNvmInP;
  if (strcmp(arg, "nvm-cow") == 0) return EngineKind::kNvmCoW;
  if (strcmp(arg, "nvm-log") == 0) return EngineKind::kNvmLog;
  fprintf(stderr, "unknown engine '%s', using nvm-inp\n", arg);
  return EngineKind::kNvmInP;
}

void PrintRow(const Tuple& t) {
  printf("  key=%llu name=%.*s count=%llu\n",
         (unsigned long long)t.GetU64(0), (int)t.GetString(1).size(),
         t.GetString(1).data(), (unsigned long long)t.GetU64(3));
}

}  // namespace

int main(int argc, char** argv) {
  const EngineKind kind =
      argc > 1 ? ParseEngine(argv[1]) : EngineKind::kNvmInP;

  DatabaseConfig cfg;
  cfg.num_partitions = 1;
  cfg.nvm_capacity = 128ull * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::LowNvm();
  cfg.engine = kind;
  cfg.engine_config.group_commit_size = 1;
  Database db(cfg);

  TableDef def;
  def.table_id = 1;
  def.name = "kv";
  def.schema = Schema({{"key", ColumnType::kUInt64, 8},
                       {"name", ColumnType::kVarchar, 32},
                       {"payload", ColumnType::kVarchar, 64},
                       {"count", ColumnType::kUInt64, 8}});
  SecondaryIndexDef by_name;
  by_name.index_id = 0;
  by_name.key_columns = {1};
  def.secondary_indexes.push_back(by_name);
  db.CreateTable(def);

  printf("nvmdb shell — engine %s on a %s emulated NVM device.\n",
         EngineKindName(kind), FormatBytes(cfg.nvm_capacity).c_str());
  printf("Type 'help' for commands; each statement auto-commits unless "
         "inside begin/commit.\n");

  StorageEngine* engine = db.partition(0);
  uint64_t open_txn = 0;  // explicit transaction, 0 = none
  bool crashed = false;
  std::string line;

  auto current_txn = [&]() -> uint64_t {
    return open_txn != 0 ? open_txn : engine->Begin();
  };
  auto finish = [&](uint64_t txn, bool ok) {
    if (open_txn != 0) return;  // explicit txn: user commits
    if (ok) {
      engine->Commit(txn);
    } else {
      engine->Abort(txn);
    }
  };

  while (printf("%s> ", crashed ? "(crashed)" : EngineKindName(kind)),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      printf("put/get/del/scan/find, begin/commit/abort, crash/recover, "
             "stats, quit\n");
      continue;
    }
    if (cmd == "crash") {
      db.Crash();
      crashed = true;
      open_txn = 0;
      printf("power failure! unflushed data is gone. 'recover' to "
             "restart.\n");
      continue;
    }
    if (cmd == "recover") {
      const uint64_t ns = db.Recover();
      engine = db.partition(0);
      crashed = false;
      printf("recovered in %.3f ms\n", ns / 1e6);
      continue;
    }
    if (crashed) {
      printf("database is down — 'recover' first\n");
      continue;
    }
    if (cmd == "begin") {
      if (open_txn != 0) {
        printf("transaction %llu already open\n",
               (unsigned long long)open_txn);
      } else {
        open_txn = engine->Begin();
        printf("begin txn %llu\n", (unsigned long long)open_txn);
      }
      continue;
    }
    if (cmd == "commit") {
      if (open_txn == 0) {
        printf("no open transaction\n");
      } else {
        engine->Commit(open_txn);
        printf("committed txn %llu\n", (unsigned long long)open_txn);
        open_txn = 0;
      }
      continue;
    }
    if (cmd == "abort") {
      if (open_txn == 0) {
        printf("no open transaction\n");
      } else {
        engine->Abort(open_txn);
        printf("aborted txn %llu\n", (unsigned long long)open_txn);
        open_txn = 0;
      }
      continue;
    }
    if (cmd == "put") {
      uint64_t key, count = 0;
      std::string name;
      if (!(in >> key >> name)) {
        printf("usage: put <key> <name> [count]\n");
        continue;
      }
      in >> count;
      const uint64_t txn = current_txn();
      Tuple t(&def.schema);
      t.SetU64(0, key);
      t.SetString(1, name);
      t.SetString(2, "payload-" + name);
      t.SetU64(3, count);
      Status s = engine->Insert(txn, 1, t);
      if (s.IsInvalidArgument()) {  // exists: update instead
        s = engine->Update(txn, 1, key,
                           {{1, Value::Str(name)}, {3, Value::U64(count)}});
      }
      printf("%s\n", s.ToString().c_str());
      finish(txn, s.ok());
      continue;
    }
    if (cmd == "get") {
      uint64_t key;
      if (!(in >> key)) {
        printf("usage: get <key>\n");
        continue;
      }
      const uint64_t txn = current_txn();
      Tuple t;
      const Status s = engine->Select(txn, 1, key, &t);
      if (s.ok()) {
        PrintRow(t);
      } else {
        printf("%s\n", s.ToString().c_str());
      }
      finish(txn, true);
      continue;
    }
    if (cmd == "del") {
      uint64_t key;
      if (!(in >> key)) {
        printf("usage: del <key>\n");
        continue;
      }
      const uint64_t txn = current_txn();
      printf("%s\n", engine->Delete(txn, 1, key).ToString().c_str());
      finish(txn, true);
      continue;
    }
    if (cmd == "scan") {
      uint64_t lo, hi;
      if (!(in >> lo >> hi)) {
        printf("usage: scan <lo> <hi>\n");
        continue;
      }
      const uint64_t txn = current_txn();
      size_t n = 0;
      engine->ScanRange(txn, 1, lo, hi, [&n](uint64_t, const Tuple& t) {
        PrintRow(t);
        n++;
        return true;
      });
      printf("(%zu rows)\n", n);
      finish(txn, true);
      continue;
    }
    if (cmd == "find") {
      std::string name;
      if (!(in >> name)) {
        printf("usage: find <name>\n");
        continue;
      }
      const uint64_t txn = current_txn();
      std::vector<Tuple> matches;
      engine->SelectSecondary(txn, 1, 0, {Value::Str(name)}, &matches);
      for (const Tuple& t : matches) PrintRow(t);
      printf("(%zu rows)\n", matches.size());
      finish(txn, true);
      continue;
    }
    if (cmd == "stats") {
      const NvmCounters c = db.device()->counters();
      const WearStats w = db.device()->wear();
      printf("NVM loads=%llu stores=%llu hits=%llu syncs=%llu\n",
             (unsigned long long)c.loads, (unsigned long long)c.stores,
             (unsigned long long)c.hits, (unsigned long long)c.sync_calls);
      printf("simulated time: %.3f ms; wear: %llu line writes, hotspot "
             "%.1fx\n",
             c.stall_ns / 1e6, (unsigned long long)w.total_line_writes,
             w.hotspot_factor);
      const FootprintStats f = db.Footprint();
      printf("footprint: table=%s index=%s log=%s total=%s\n",
             FormatBytes(f.table_bytes).c_str(),
             FormatBytes(f.index_bytes).c_str(),
             FormatBytes(f.log_bytes).c_str(),
             FormatBytes(f.total()).c_str());
      continue;
    }
    printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }
  return 0;
}
