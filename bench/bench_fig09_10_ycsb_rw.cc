/// Figs. 9 & 10 — NVM loads and stores executed while running YCSB
/// (the perf-counter measurements of Section 5.3).
///
/// The 48 (mixture, skew, engine) cells run concurrently on the grid
/// scheduler; printing is deferred past the barrier so stdout is
/// identical for any NVMDB_BENCH_JOBS.
///
/// Expected shape (paper): Log engine performs the most loads (tuple
/// coalescing); CoW the most stores on write-intensive mixes (page
/// copying); NVM-aware engines do up to ~53% fewer loads and 17–48% fewer
/// stores; higher skew reduces loads via caching.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};

  printf("YCSB: %llu tuples, %llu txns, %zu partitions\n",
         (unsigned long long)Scale().ycsb_tuples,
         (unsigned long long)Scale().ycsb_txns, Scale().partitions);

  std::vector<BenchRun> runs(4 * 2 * AllEngines().size());
  BenchRunner runner("fig09_10_ycsb_rw");
  AddScaleContext(&runner);
  for (int m = 0; m < 4; m++) {
    for (int s = 0; s < 2; s++) {
      for (size_t e = 0; e < AllEngines().size(); e++) {
        const size_t idx = (m * 2 + s) * AllEngines().size() + e;
        const YcsbMixture mixture = mixtures[m];
        const YcsbSkew skew = s == 0 ? YcsbSkew::kLow : YcsbSkew::kHigh;
        const EngineKind engine = AllEngines()[e];
        runner.Submit([&runs, idx, mixture, skew, engine]() {
          runs[idx] = RunYcsb(engine, mixture, skew);
          return CellFromRun({{"mixture", YcsbMixtureName(mixture)},
                              {"skew", YcsbSkewName(skew)},
                              {"engine", EngineKindName(engine)}},
                             runs[idx], Scale().partitions);
        });
      }
    }
  }
  runner.Wait();

  const char* figs[2] = {"Fig. 9: YCSB NVM loads (millions)",
                         "Fig. 10: YCSB NVM stores (millions)"};
  for (int metric = 0; metric < 2; metric++) {
    PrintHeader(figs[metric]);
    for (int m = 0; m < 4; m++) {
      printf("\n--- %s workload ---\n", YcsbMixtureName(mixtures[m]));
      printf("%-10s", "skew");
      for (EngineKind e : AllEngines()) printf("%12s", EngineKindName(e));
      printf("\n");
      for (int s = 0; s < 2; s++) {
        printf("%-10s", s == 0 ? "low" : "high");
        for (size_t e = 0; e < AllEngines().size(); e++) {
          const CounterDelta& d =
              runs[(m * 2 + s) * AllEngines().size() + e].counters;
          const double millions =
              (metric == 0 ? d.loads : d.stores) / 1e6;
          printf("%12.3f", millions);
        }
        printf("\n");
      }
    }
  }
  printf(
      "\nPaper shape: Log most loads (coalescing); CoW most stores\n"
      "(page copies); NVM-aware engines fewer of both; high skew lowers\n"
      "loads via CPU-cache hits (Section 5.3, Figs. 9-10).\n");
  return ExitStatus();
}
