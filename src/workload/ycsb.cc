#include "workload/ycsb.h"

namespace nvmdb {

const char* YcsbMixtureName(YcsbMixture m) {
  switch (m) {
    case YcsbMixture::kReadOnly:
      return "read-only";
    case YcsbMixture::kReadHeavy:
      return "read-heavy";
    case YcsbMixture::kBalanced:
      return "balanced";
    case YcsbMixture::kWriteHeavy:
      return "write-heavy";
  }
  return "?";
}

const char* YcsbSkewName(YcsbSkew s) {
  return s == YcsbSkew::kLow ? "low-skew" : "high-skew";
}

int YcsbReadPercent(YcsbMixture m) {
  switch (m) {
    case YcsbMixture::kReadOnly:
      return 100;
    case YcsbMixture::kReadHeavy:
      return 90;
    case YcsbMixture::kBalanced:
      return 50;
    case YcsbMixture::kWriteHeavy:
      return 10;
  }
  return 100;
}

TableDef YcsbWorkload::MakeTableDef(size_t field_size) {
  TableDef def;
  def.table_id = kTableId;
  def.name = "usertable";
  std::vector<Column> cols;
  cols.push_back({"ycsb_key", ColumnType::kUInt64, 8});
  for (int i = 1; i <= 10; i++) {
    cols.push_back({"field" + std::to_string(i), ColumnType::kVarchar,
                    static_cast<uint32_t>(field_size)});
  }
  def.schema = Schema(cols);
  return def;
}

Status YcsbWorkload::Load(Database* db) {
  Status s = db->CreateTable(MakeTableDef(config_.field_size));
  if (!s.ok()) return s;

  const TableDef def = MakeTableDef(config_.field_size);
  Random rng(config_.seed);
  const size_t parts = db->num_partitions();
  // Bulk-load within one transaction per chunk per partition.
  const uint64_t chunk = 512;
  for (size_t p = 0; p < parts; p++) {
    StorageEngine* engine = db->partition(p);
    uint64_t loaded_in_txn = 0;
    uint64_t txn = engine->Begin();
    for (uint64_t key = p; key < config_.num_tuples; key += parts) {
      Tuple t(&def.schema);
      t.SetU64(0, key);
      for (size_t c = 1; c <= 10; c++) {
        t.SetString(c, rng.String(config_.field_size));
      }
      s = engine->Insert(txn, kTableId, t);
      if (!s.ok()) return s;
      if (++loaded_in_txn >= chunk) {
        engine->Commit(txn);
        txn = engine->Begin();
        loaded_in_txn = 0;
      }
    }
    engine->Commit(txn);
  }
  db->Drain();
  return Status::OK();
}

std::vector<std::vector<TxnTask>> YcsbWorkload::GenerateQueues() {
  const size_t parts = config_.num_partitions;
  std::vector<std::vector<TxnTask>> queues(parts);
  const int read_pct = YcsbReadPercent(config_.mixture);
  const double hot_data = config_.skew == YcsbSkew::kLow ? 0.2 : 0.1;
  const double hot_access = config_.skew == YcsbSkew::kLow ? 0.5 : 0.9;
  const uint64_t txns_per_part = config_.num_txns / parts;

  for (size_t p = 0; p < parts; p++) {
    // Tuples on partition p: local index i -> key i * parts + p.
    const uint64_t local_tuples =
        (config_.num_tuples + parts - 1 - p) / parts;
    HotspotGenerator hotspot(local_tuples, hot_data, hot_access,
                             config_.seed * 1000 + p);
    Random rng(config_.seed * 7777 + p);
    queues[p].reserve(txns_per_part);
    for (uint64_t i = 0; i < txns_per_part; i++) {
      const uint64_t key = hotspot.Next() * parts + p;
      if (rng.Percent(read_pct)) {
        queues[p].push_back({[key](StorageEngine* engine, uint64_t txn) {
          Tuple t;
          return engine->Select(txn, kTableId, key, &t).ok();
        }});
      } else {
        const size_t col = 1 + rng.Uniform(10);
        std::string value = rng.String(config_.field_size);
        queues[p].push_back(
            {[key, col, value](StorageEngine* engine, uint64_t txn) {
              std::vector<ColumnUpdate> updates;
              updates.push_back({col, Value::Str(value)});
              return engine->Update(txn, kTableId, key, updates).ok();
            }});
      }
    }
  }
  return queues;
}

}  // namespace nvmdb
