#pragma once

#include <chrono>
#include <cstdint>

namespace nvmdb {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nvmdb
