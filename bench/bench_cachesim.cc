/// Microbenchmark for the NVM-simulation hot loop: CacheSim::Access /
/// FlushRange and the NvmDevice charge path wrapped around them. Every
/// instrumented byte the storage engines touch funnels through these
/// functions, so their cost bounds the wall-clock time of the whole bench
/// suite. Patterns: hit-dominated (the steady state of a cache-resident
/// working set), miss-dominated (streaming, constant dirty evictions),
/// flush-heavy (persist-style write+flush pairs), and an 8-thread
/// contended run over one shared cache (bank-lock striping).
///
/// Each single-threaded pattern runs in both concurrency modes so the
/// perf dashboard tracks them side by side: `owner` (thread-confined,
/// zero-synchronization — what every benchmark cell uses) and `shared`
/// (bank locks + atomic counters — what multi-threaded users get). The
/// contended pattern is shared-mode only: owner mode forbids concurrent
/// access by contract.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "engine/tuple.h"
#include "engine/wal.h"
#include "nvm/cache_sim.h"
#include "nvm/nvm_device.h"
#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"

namespace {

using nvmdb::CacheConfig;
using nvmdb::CacheSim;
using nvmdb::ConcurrencyMode;
using nvmdb::NvmDevice;
using nvmdb::NvmLatencyConfig;

CacheConfig BenchCacheConfig(ConcurrencyMode mode) {
  CacheConfig cfg;
  cfg.capacity_bytes = 1024 * 1024;  // the benchmark suite's scaled cache
  cfg.line_size = 64;
  cfg.associativity = 16;
  cfg.num_banks = 16;
  cfg.mode = mode;
  return cfg;
}

void BM_HitDominated(benchmark::State& state, ConcurrencyMode mode) {
  CacheSim cache(BenchCacheConfig(mode), {});
  constexpr uint64_t kWorkingSet = 512 * 1024;  // fits: every access hits
  for (uint64_t a = 0; a < kWorkingSet; a += 64) cache.Access(a, 8, false);
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, false));
    addr = (addr + 64) & (kWorkingSet - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}

void BM_MissDominated(benchmark::State& state, ConcurrencyMode mode) {
  CacheSim cache(BenchCacheConfig(mode), {});
  constexpr uint64_t kStream = 64ull * 1024 * 1024;  // 64x the cache
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, true));
    addr = (addr + 64) & (kStream - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlushHeavy(benchmark::State& state, ConcurrencyMode mode) {
  CacheSim cache(BenchCacheConfig(mode), {});
  constexpr uint64_t kRegion = 1024 * 1024;
  uint64_t addr = 0;
  for (auto _ : state) {
    cache.Access(addr, 64, true);
    benchmark::DoNotOptimize(
        cache.FlushRange(addr, 64, /*invalidate=*/false));
    addr = (addr + 64) & (kRegion - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Set-probe cost in isolation, hit side: every access finds its line, so
/// the timed work is exactly the way-probe (SIMD broadcast-compare or the
/// scalar loop, per the `scalar` flag) plus the LRU bump. The working set
/// walks all ways of all sets, so probes land at every way index.
void BM_ProbeHit(benchmark::State& state, bool scalar) {
  CacheConfig cfg = BenchCacheConfig(ConcurrencyMode::kOwner);
  cfg.force_scalar_probe = scalar;
  CacheSim cache(cfg, {});
  // Fill the whole cache so hits occur in every way, not just way 0.
  for (uint64_t a = 0; a < cfg.capacity_bytes; a += 64) {
    cache.Access(a, 8, false);
  }
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, false));
    addr = (addr + 64) & (cfg.capacity_bytes - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}

/// Set-probe cost in isolation, miss side: a stream 64x the cache, so the
/// timed work is the failed way-probe plus the victim scan (SIMD
/// min-reduction over the LRU stamps or the scalar loop) and the dirty
/// write-back of the evicted line.
void BM_ProbeMiss(benchmark::State& state, bool scalar) {
  CacheConfig cfg = BenchCacheConfig(ConcurrencyMode::kOwner);
  cfg.force_scalar_probe = scalar;
  CacheSim cache(cfg, {});
  constexpr uint64_t kStream = 64ull * 1024 * 1024;
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, 8, true));
    addr = (addr + 64) & (kStream - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Multi-line flush probe: persist-sized dirty ranges flushed without
/// invalidation (the CLWB regime every engine commit takes), four lines
/// per call so the FlushRange loop dominates over call overhead.
void BM_FlushRange(benchmark::State& state, ConcurrencyMode mode) {
  CacheSim cache(BenchCacheConfig(mode), {});
  constexpr uint64_t kRegion = 1024 * 1024;
  constexpr size_t kSpan = 256;  // 4 lines
  uint64_t addr = 0;
  for (auto _ : state) {
    cache.Access(addr, kSpan, true);
    benchmark::DoNotOptimize(
        cache.FlushRange(addr, kSpan, /*invalidate=*/false));
    addr = (addr + kSpan) & (kRegion - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Contended(benchmark::State& state) {
  static CacheSim* shared = nullptr;
  if (state.thread_index() == 0) {
    shared = new CacheSim(BenchCacheConfig(ConcurrencyMode::kShared), {});
  }
  // benchmark synchronizes threads at loop entry, so `shared` is visible.
  constexpr uint64_t kPerThread = 4 * 1024 * 1024;
  uint64_t addr =
      static_cast<uint64_t>(state.thread_index()) * kPerThread;
  const uint64_t base = addr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared->Access(addr, 8, (addr & 64) != 0));
    addr = base + ((addr - base + 64) & (kPerThread - 1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete shared;
    shared = nullptr;
  }
}

/// End-to-end device path: the instrumented Write + Persist pair the
/// engines issue per durable update, including the simulated-clock
/// accounting (one accumulation per call on the fast path).
void BM_DeviceWritePersist(benchmark::State& state, ConcurrencyMode mode) {
  NvmDevice device(16 * 1024 * 1024, NvmLatencyConfig::Dram(),
                   BenchCacheConfig(mode));
  uint64_t offset = 0;
  uint64_t value = 0;
  for (auto _ : state) {
    device.Write(offset, &value, 8);
    device.Persist(offset, 8);
    value++;
    offset = (offset + 64) & (4 * 1024 * 1024 - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ns_per_op"] =
      static_cast<double>(device.TotalStallNanos()) /
      static_cast<double>(state.iterations());
}

/// Owner mode's headline case: the header-inlined resident-hit Touch path
/// (what every engine read of a cached tuple/node costs).
void BM_DeviceTouchHit(benchmark::State& state, ConcurrencyMode mode) {
  NvmDevice device(16 * 1024 * 1024, NvmLatencyConfig::Dram(),
                   BenchCacheConfig(mode));
  constexpr uint64_t kWorkingSet = 512 * 1024;  // resident
  for (uint64_t a = 0; a < kWorkingSet; a += 64) {
    device.TouchRead(device.PtrAt(a), 8);
  }
  uint64_t addr = 0;
  for (auto _ : state) {
    device.TouchRead(device.PtrAt(addr), 8);
    addr = (addr + 64) & (kWorkingSet - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Transaction-hot-path entry: one LogRecordRef encoded in a single pass
/// (header reserve + backpatch) into the WAL's reused buffer, Slices
/// viewing caller scratch — the per-update logging cost of the InP/Log
/// engines, group-commit flush included at the benchmark cadence.
void BM_WalAppend(benchmark::State& state, ConcurrencyMode mode) {
  NvmDevice device(64 * 1024 * 1024, NvmLatencyConfig::Dram(),
                   BenchCacheConfig(mode));
  nvmdb::PmemAllocator allocator(&device);
  nvmdb::Pmfs fs(&allocator);
  nvmdb::Wal wal(&fs, "bench.wal", /*group_commit_size=*/4);
  const std::string before(64, 'b');
  const std::string after(64, 'a');
  nvmdb::LogRecordRef record;
  record.op = nvmdb::LogOp::kUpdate;
  record.table_id = 1;
  record.before = nvmdb::Slice(before);
  record.after = nvmdb::Slice(after);
  uint64_t txn = 0;
  for (auto _ : state) {
    record.txn_id = ++txn;
    record.key = txn & 1023;
    wal.Append(record);
    wal.LogCommit(txn);
    if ((txn & 16383) == 0) {
      // Bound file growth without letting truncation dominate.
      state.PauseTiming();
      wal.Truncate();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

/// Transaction-hot-path entry: refill an arena-backed scratch tuple,
/// serialize it inlined into a reused buffer, and parse it back into a
/// second scratch — the materialize/serialize cycle of engine reads,
/// checkpoints, and LSM memtable flushes. Zero steady-state allocations.
void BM_TupleRoundtrip(benchmark::State& state) {
  std::vector<nvmdb::Column> cols;
  cols.push_back({"id", nvmdb::ColumnType::kUInt64, 8});
  for (int i = 1; i <= 10; i++) {
    cols.push_back({"f" + std::to_string(i), nvmdb::ColumnType::kVarchar,
                    100});
  }
  const nvmdb::Schema schema(cols);
  const std::string field(100, 'x');
  nvmdb::Tuple t(&schema);
  nvmdb::Tuple parsed(&schema);
  std::string bytes;
  uint64_t key = 0;
  for (auto _ : state) {
    t.Reset(&schema);
    t.SetU64(0, key++);
    for (size_t c = 1; c <= 10; c++) {
      char* dst = t.AppendStringUninit(c, field.size());
      memcpy(dst, field.data(), field.size());
    }
    bytes.clear();
    t.AppendInlined(&bytes);
    nvmdb::Tuple::ParseInlined(&schema, nvmdb::Slice(bytes), &parsed);
    benchmark::DoNotOptimize(parsed.Key());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}

BENCHMARK_CAPTURE(BM_HitDominated, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_HitDominated, shared, ConcurrencyMode::kShared);
BENCHMARK_CAPTURE(BM_MissDominated, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_MissDominated, shared, ConcurrencyMode::kShared);
BENCHMARK_CAPTURE(BM_FlushHeavy, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_FlushHeavy, shared, ConcurrencyMode::kShared);
BENCHMARK_CAPTURE(BM_ProbeHit, simd, /*scalar=*/false);
BENCHMARK_CAPTURE(BM_ProbeHit, scalar, /*scalar=*/true);
BENCHMARK_CAPTURE(BM_ProbeMiss, simd, /*scalar=*/false);
BENCHMARK_CAPTURE(BM_ProbeMiss, scalar, /*scalar=*/true);
BENCHMARK_CAPTURE(BM_FlushRange, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_FlushRange, shared, ConcurrencyMode::kShared);
BENCHMARK(BM_Contended)->Threads(8)->UseRealTime();
BENCHMARK_CAPTURE(BM_DeviceWritePersist, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_DeviceWritePersist, shared, ConcurrencyMode::kShared);
BENCHMARK_CAPTURE(BM_DeviceTouchHit, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_DeviceTouchHit, shared, ConcurrencyMode::kShared);
BENCHMARK_CAPTURE(BM_WalAppend, owner, ConcurrencyMode::kOwner);
BENCHMARK_CAPTURE(BM_WalAppend, shared, ConcurrencyMode::kShared);
BENCHMARK(BM_TupleRoundtrip);

}  // namespace

BENCHMARK_MAIN();
