#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace nvmdb {

/// Standard Bloom filter with double hashing (Kirsch–Mitzenmacher).
/// The Log/NVM-Log engines attach one to every SSTable / immutable
/// MemTable to skip runs that cannot contain a key (Section 3.3 / 4.3).
class BloomFilter {
 public:
  /// `bits_per_key` controls the false-positive rate (10 => ~1%).
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  /// Reconstructs a filter from its serialized form.
  static BloomFilter Deserialize(const Slice& data);

  void Add(const Slice& key);
  void Add(uint64_t key);

  /// False positives possible, false negatives are not.
  bool MayContain(const Slice& key) const;
  bool MayContain(uint64_t key) const;

  std::string Serialize() const;

  size_t bit_count() const { return bits_.size() * 8; }
  size_t memory_bytes() const { return bits_.size(); }

 private:
  BloomFilter() = default;

  void AddHash(uint64_t h);
  bool MayContainHash(uint64_t h) const;

  std::vector<uint8_t> bits_;
  int num_probes_ = 0;
};

}  // namespace nvmdb
