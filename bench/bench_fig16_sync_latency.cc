/// Fig. 16 (Appendix C) — Impact of the sync-primitive latency (modeling
/// PCOMMIT/CLWB-style instruction costs from 10 ns to 10000 ns) on the
/// NVM-aware engines, YCSB under low NVM latency and low skew.
///
/// The sync-call counters from one run yield each latency point
/// analytically (stall += sync_calls * latency), so only the 12
/// (engine, mixture) cells execute — concurrently, on the grid
/// scheduler — and the whole sweep prints after the barrier.
///
/// Expected shape (paper): all NVM-aware engines degrade as the primitive
/// slows; the impact is strongest on write-intensive mixtures; NVM-CoW is
/// slightly less sensitive (durability mostly via data copies, fewer
/// syncs on the critical path).
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

int main() {
  const YcsbMixture mixtures[] = {
      YcsbMixture::kReadOnly, YcsbMixture::kReadHeavy,
      YcsbMixture::kBalanced, YcsbMixture::kWriteHeavy};
  const uint64_t latencies[] = {100 /*current (CLFLUSH+SFENCE)*/, 10, 100,
                                1000, 10000};

  // runs[engine][mixture]
  std::vector<BenchRun> runs(NvmEngines().size() * 4);
  BenchRunner runner("fig16_sync_latency");
  AddScaleContext(&runner);
  for (size_t e = 0; e < NvmEngines().size(); e++) {
    for (int m = 0; m < 4; m++) {
      const size_t idx = e * 4 + m;
      const EngineKind engine = NvmEngines()[e];
      const YcsbMixture mixture = mixtures[m];
      runner.Submit([&runs, idx, engine, mixture]() {
        runs[idx] = RunYcsb(engine, mixture, YcsbSkew::kLow);
        return CellFromRun({{"engine", EngineKindName(engine)},
                            {"mixture", YcsbMixtureName(mixture)}},
                           runs[idx], Scale().partitions);
      });
    }
  }
  runner.Wait();

  PrintHeader(
      "Fig. 16: sync-primitive latency sweep (txn/sec), YCSB low "
      "skew, low NVM latency");
  for (size_t e = 0; e < NvmEngines().size(); e++) {
    printf("\n--- %s ---\n", EngineKindName(NvmEngines()[e]));
    printf("%-16s", "sync ns");
    for (YcsbMixture m : mixtures) printf("%14s", YcsbMixtureName(m));
    printf("\n");

    bool first = true;
    for (uint64_t sync_ns : latencies) {
      printf("%-16s",
             first ? "current" : std::to_string(sync_ns).c_str());
      NvmLatencyConfig profile = NvmLatencyConfig::LowNvm();
      if (!first) profile.sync_latency_ns = sync_ns;
      for (int m = 0; m < 4; m++) {
        const BenchRun& run = runs[e * 4 + m];
        printf("%14.0f",
               DeriveThroughput(run.committed, run.wall_ns, run.counters,
                                profile, Scale().partitions));
      }
      printf("\n");
      first = false;
    }
  }
  printf(
      "\nPaper shape: throughput falls with sync latency, most on\n"
      "write-heavy mixes; NVM-CoW least sensitive (Appendix C, Fig. 16).\n");
  return ExitStatus();
}
