# Empty dependencies file for example_nvmdb_shell.
# This may be replaced when dependencies are built.
