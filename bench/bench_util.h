#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/timer.h"
#include "testbed/bench_runner.h"
#include "testbed/coordinator.h"
#include "testbed/stats.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace nvmdb {
namespace bench {

/// Scale knobs, overridable from the environment so the suite can be run
/// at paper scale (hours) or CI scale (minutes). Defaults target a
/// laptop-class machine.
struct BenchScale {
  uint64_t ycsb_tuples = EnvU64("NVMDB_YCSB_TUPLES", 10000);
  uint64_t ycsb_txns = EnvU64("NVMDB_YCSB_TXNS", 12000);
  uint64_t tpcc_txns = EnvU64("NVMDB_TPCC_TXNS", 8000);
  size_t partitions = EnvU64("NVMDB_PARTITIONS", 4);
  size_t nvm_mb = EnvU64("NVMDB_NVM_MB", 768);
};

inline const BenchScale& Scale() {
  static BenchScale scale;
  return scale;
}

/// The three latency profiles of Section 5.2.
struct LatencyProfile {
  const char* name;
  NvmLatencyConfig config;
};

inline std::vector<LatencyProfile> PaperLatencies() {
  return {{"DRAM (1x, 160ns)", NvmLatencyConfig::Dram()},
          {"Low NVM (2x, 320ns)", NvmLatencyConfig::LowNvm()},
          {"High NVM (8x, 1280ns)", NvmLatencyConfig::HighNvm()}};
}

/// The cache/NVM counters are latency-independent (the same workload does
/// the same memory accesses), so one run under the DRAM profile yields the
/// simulated time of any profile analytically:
///   t = hits * hit_cost + loads * read_latency
///     + stores * line/write_bandwidth + syncs * sync_latency
///     + profile-independent VFS/fsync charges.
inline uint64_t DeriveStallNs(const CounterDelta& counters,
                              const NvmLatencyConfig& profile,
                              size_t line_size = 64) {
  uint64_t stall = counters.hits * profile.cache_hit_ns +
                   counters.loads * profile.read_latency_ns;
  if (profile.write_bandwidth_gbps > 0) {
    stall += static_cast<uint64_t>(
        static_cast<double>(counters.stores) * line_size /
        profile.write_bandwidth_gbps);
  }
  stall += counters.sync_calls * profile.sync_latency_ns;
  stall += counters.external_ns;
  return stall;
}

inline double DeriveThroughput(uint64_t committed, uint64_t wall_ns,
                               const CounterDelta& counters,
                               const NvmLatencyConfig& profile,
                               size_t workers) {
  (void)wall_ns;  // host speed: excluded from the simulated clock
  const double stall_per_worker =
      static_cast<double>(DeriveStallNs(counters, profile)) /
      static_cast<double>(workers);
  const double secs = stall_per_worker * 1e-9;
  return secs <= 0 ? 0 : static_cast<double>(committed) / secs;
}

/// Everything one workload execution produces.
struct BenchRun {
  bool ok = false;  // false => load or run failed; results are zeroed
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t wall_ns = 0;       // measured (run) phase, host clock
  uint64_t load_wall_ns = 0;  // initial load phase, host clock
  CounterDelta counters;        // during the measured phase
  CounterDelta load_counters;   // during initial load
  LatencySummary latency;       // response latency on the simulated clock
  FootprintStats footprint;
  uint64_t recovery_ns = 0;     // only set by recovery benches
};

/// Process-wide benchmark failure flag. Workload helpers record failures
/// here (as well as on stderr) so mains can exit non-zero instead of
/// printing tables of silently zeroed cells.
inline std::atomic<bool>& FailureFlag() {
  static std::atomic<bool> failed{false};
  return failed;
}

inline void ReportFailure(const char* what, const Status& s) {
  fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
  FailureFlag().store(true, std::memory_order_relaxed);
}

/// Return value for bench mains: non-zero if any cell's workload failed.
inline int ExitStatus() {
  return FailureFlag().load(std::memory_order_relaxed) ? 1 : 0;
}

inline DatabaseConfig MakeDbConfig(EngineKind engine) {
  DatabaseConfig cfg;
  cfg.num_partitions = Scale().partitions;
  cfg.nvm_capacity = Scale().nvm_mb * 1024 * 1024;
  cfg.latency = NvmLatencyConfig::Dram();  // profiles derived analytically
  // The paper's testbed pairs a 20 MB L3 with a ~2 GB database (~1%).
  // Benchmarks run scaled-down databases, so the simulated cache scales
  // down with them to preserve the cache-to-data ratio that drives the
  // skew/caching effects of Figs. 9-10.
  cfg.cache.capacity_bytes = EnvU64("NVMDB_CACHE_KB", 1024) * 1024;
  // CLWB-style sync (line stays cached) is the default, as Appendix C
  // recommends; set NVMDB_CLWB=0 for strict CLFLUSH invalidation.
  cfg.latency.use_clwb = EnvU64("NVMDB_CLWB", 1) != 0;
  cfg.latency.sync_latency_ns =
      EnvU64("NVMDB_SYNC_NS", cfg.latency.sync_latency_ns);
  cfg.engine = engine;
  return cfg;
}

/// Load + run one YCSB configuration on a fresh database.
inline BenchRun RunYcsb(EngineKind engine, YcsbMixture mixture,
                        YcsbSkew skew,
                        const EngineConfig& engine_overrides = {}) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  // Whole-struct assignment: an earlier version copied a hand-picked list
  // of fields, so knobs added to EngineConfig later (use_bloom_filters,
  // checkpoint_interval_txns, ...) were silently dropped here. The
  // database overrides the allocator/fs/namespace fields per partition
  // anyway (Database::InstantiateEngines), so copying everything is safe.
  cfg.engine_config = engine_overrides;

  auto db = std::make_unique<Database>(cfg);
  YcsbConfig ycfg;
  ycfg.num_tuples = Scale().ycsb_tuples;
  ycfg.num_txns = Scale().ycsb_txns;
  ycfg.num_partitions = cfg.num_partitions;
  ycfg.mixture = mixture;
  ycfg.skew = skew;
  YcsbWorkload workload(ycfg);

  BenchRun run;
  {
    Stopwatch load_watch;
    CounterSampler sampler(db->device());
    Status s = workload.Load(db.get());
    if (!s.ok()) {
      ReportFailure("YCSB load", s);
      return run;
    }
    run.load_counters = sampler.Delta();
    run.load_wall_ns = load_watch.ElapsedNanos();
  }

  Coordinator coordinator(db.get());
  CounterSampler sampler(db->device());
  const RunResult result = coordinator.Run(workload.GenerateQueues());
  run.counters = sampler.Delta();
  run.committed = result.committed;
  run.aborted = result.aborted;
  run.wall_ns = result.wall_ns;
  run.latency = result.latency;
  run.footprint = db->Footprint();
  run.ok = true;
  return run;
}

/// Load + run TPC-C on a fresh database.
inline BenchRun RunTpcc(EngineKind engine) {
  DatabaseConfig cfg = MakeDbConfig(engine);
  // TPC-C inserts grow the database and WAL without bound, so the InP
  // engine must take periodic compressed checkpoints (Section 3.1) to
  // bound recovery latency and fit the log in the device. YCSB runs leave
  // checkpointing off — at the paper's scale its cost amortizes away.
  cfg.engine_config.checkpoint_interval_txns =
      EnvU64("NVMDB_CKPT_INTERVAL", 1000);
  auto db = std::make_unique<Database>(cfg);
  TpccConfig tcfg;
  tcfg.num_warehouses = cfg.num_partitions;
  tcfg.num_txns = Scale().tpcc_txns;
  TpccWorkload workload(tcfg);

  BenchRun run;
  {
    Stopwatch load_watch;
    CounterSampler sampler(db->device());
    Status s = workload.Load(db.get());
    if (!s.ok()) {
      ReportFailure("TPC-C load", s);
      return run;
    }
    run.load_counters = sampler.Delta();
    run.load_wall_ns = load_watch.ElapsedNanos();
  }
  Coordinator coordinator(db.get());
  CounterSampler sampler(db->device());
  const RunResult result = coordinator.Run(workload.GenerateQueues());
  run.counters = sampler.Delta();
  run.committed = result.committed;
  run.aborted = result.aborted;
  run.wall_ns = result.wall_ns;
  run.latency = result.latency;
  run.footprint = db->Footprint();
  run.ok = true;
  return run;
}

inline const std::vector<EngineKind>& AllEngines() {
  static std::vector<EngineKind> engines = {
      EngineKind::kInP,    EngineKind::kCoW,    EngineKind::kLog,
      EngineKind::kNvmInP, EngineKind::kNvmCoW, EngineKind::kNvmLog};
  return engines;
}

inline const std::vector<EngineKind>& NvmEngines() {
  static std::vector<EngineKind> engines = {
      EngineKind::kNvmInP, EngineKind::kNvmCoW, EngineKind::kNvmLog};
  return engines;
}

/// Wall-clock vs simulated-clock accounting aggregated across bench runs.
/// The simulated clock is what the figures report; the wall clock measures
/// the simulator itself, so fast-path changes are judged by this summary
/// rather than asserted.
struct ClockTotals {
  uint64_t wall_ns = 0;
  uint64_t sim_ns = 0;
  uint64_t runs = 0;

  void Add(const BenchRun& run) {
    wall_ns += run.wall_ns;
    sim_ns += run.counters.stall_ns;
    runs++;
  }
};

inline void ReportClocks(const char* label, const ClockTotals& totals) {
  // Stderr: the wall-clock side depends on host speed and job count, and
  // stdout must stay byte-identical across runs (the CI grid-determinism
  // check diffs it).
  fprintf(stderr, "[clock] %s: %llu runs, %s\n", label,
          (unsigned long long)totals.runs,
          FormatClockComparison(totals.wall_ns, totals.sim_ns).c_str());
}

/// Build a BenchCell (the grid scheduler's result record — see
/// testbed/bench_runner.h) from a workload execution: grid key, commit
/// counts, the simulated time the cell advanced the model clock, and the
/// derived throughput under each paper latency profile.
inline BenchCell CellFromRun(
    std::vector<std::pair<std::string, std::string>> key,
    const BenchRun& run, size_t workers) {
  BenchCell cell;
  cell.key = std::move(key);
  cell.committed = run.committed;
  cell.aborted = run.aborted;
  cell.sim_ns = run.load_counters.stall_ns + run.counters.stall_ns;
  cell.load_ns = run.load_wall_ns;
  cell.run_ns = run.wall_ns;
  cell.latency = run.latency;
  cell.stalls = run.counters.tags;
  const char* slugs[3] = {"tps_dram", "tps_low_nvm", "tps_high_nvm"};
  const auto latencies = PaperLatencies();
  for (size_t i = 0; i < latencies.size() && i < 3; i++) {
    cell.metrics.emplace_back(
        slugs[i], DeriveThroughput(run.committed, run.wall_ns, run.counters,
                                   latencies[i].config, workers));
  }
  cell.metrics.emplace_back("loads",
                            static_cast<double>(run.counters.loads));
  cell.metrics.emplace_back("stores",
                            static_cast<double>(run.counters.stores));
  return cell;
}

/// Record the scale knobs in the runner's JSON report so a result file is
/// self-describing.
inline void AddScaleContext(BenchRunner* runner) {
  runner->AddContext("ycsb_tuples", std::to_string(Scale().ycsb_tuples));
  runner->AddContext("ycsb_txns", std::to_string(Scale().ycsb_txns));
  runner->AddContext("tpcc_txns", std::to_string(Scale().tpcc_txns));
  runner->AddContext("partitions", std::to_string(Scale().partitions));
}

inline void PrintHeader(const char* title) {
  printf("\n================================================================\n");
  printf("%s\n", title);
  printf("================================================================\n");
}

}  // namespace bench
}  // namespace nvmdb
