#include <gtest/gtest.h>

#include "engine/keys.h"
#include "engine/table_storage.h"
#include "engine/tuple.h"

namespace nvmdb {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ColumnType::kUInt64, 8},
                 {"short", ColumnType::kVarchar, 6},    // inlined
                 {"long", ColumnType::kVarchar, 100},   // out-of-line
                 {"signed", ColumnType::kInt64, 8},
                 {"real", ColumnType::kDouble, 8}});
}

TEST(SchemaTest, LayoutAndLookup) {
  const Schema schema = MixedSchema();
  EXPECT_EQ(schema.num_columns(), 5u);
  EXPECT_EQ(schema.FixedSize(), 40u);
  EXPECT_EQ(schema.FixedOffset(2), 16u);
  EXPECT_TRUE(schema.HasVarlen());
  EXPECT_TRUE(schema.column(1).IsInlined());
  EXPECT_FALSE(schema.column(2).IsInlined());
  EXPECT_EQ(schema.ColumnIndex("signed"), 3);
  EXPECT_EQ(schema.ColumnIndex("nope"), -1);
}

TEST(SchemaTest, NoVarlenSchema) {
  Schema schema({{"a", ColumnType::kUInt64, 8}});
  EXPECT_FALSE(schema.HasVarlen());
}

TEST(TupleTest, TypedAccessors) {
  const Schema schema = MixedSchema();
  Tuple t(&schema);
  t.SetU64(0, 42);
  t.SetString(1, "abc");
  t.SetString(2, std::string(77, 'x'));
  t.SetI64(3, -5);
  t.SetDouble(4, 3.25);
  EXPECT_EQ(t.Key(), 42u);
  EXPECT_EQ(t.GetString(1), "abc");
  EXPECT_EQ(t.GetI64(3), -5);
  EXPECT_DOUBLE_EQ(t.GetDouble(4), 3.25);
  EXPECT_EQ(t.LogicalSize(), 40u + 3 + 77);
}

TEST(TupleTest, SerializeInlinedRoundTrip) {
  const Schema schema = MixedSchema();
  Tuple t(&schema);
  t.SetU64(0, 9);
  t.SetString(1, "hi");
  t.SetString(2, "variable length data here");
  t.SetI64(3, -99);
  t.SetDouble(4, 1.5);
  const std::string bytes = t.SerializeInlined();
  const Tuple parsed = Tuple::ParseInlined(&schema, Slice(bytes));
  EXPECT_TRUE(parsed.EqualTo(t));
  EXPECT_EQ(parsed.GetString(2), "variable length data here");
  EXPECT_EQ(parsed.GetI64(3), -99);
}

TEST(TupleTest, ValueSettersViaUpdateStruct) {
  const Schema schema = MixedSchema();
  Tuple t(&schema);
  t.Set(0, Value::U64(1));
  t.Set(2, Value::Str("hello"));
  EXPECT_EQ(t.GetU64(0), 1u);
  EXPECT_EQ(t.GetString(2), "hello");
}

TEST(SecondaryHashTest, SameColumnsSameHash) {
  const Schema schema = MixedSchema();
  SecondaryIndexDef def;
  def.key_columns = {1, 3};
  Tuple a(&schema), b(&schema);
  a.SetString(1, "x");
  a.SetI64(3, 5);
  b.SetString(1, "x");
  b.SetI64(3, 5);
  b.SetString(2, "different other column");
  EXPECT_EQ(SecondaryKeyHash(a, def), SecondaryKeyHash(b, def));
  b.SetI64(3, 6);
  EXPECT_NE(SecondaryKeyHash(a, def), SecondaryKeyHash(b, def));
}

TEST(SecondaryHashTest, TupleAndValuesAgree) {
  const Schema schema = MixedSchema();
  SecondaryIndexDef def;
  def.key_columns = {1, 3};
  Tuple t(&schema);
  t.SetString(1, "name");
  t.SetI64(3, 123);
  const uint64_t from_tuple = SecondaryKeyHash(t, def);
  const uint64_t from_values =
      SecondaryKeyHash(schema, def, {Value::Str("name"), Value::I64(123)});
  EXPECT_EQ(from_tuple, from_values);
  EXPECT_LT(from_tuple, 1ull << 48);
}

TEST(KeysTest, GlobalKeyPacking) {
  const uint64_t g = GlobalKey(5, 1, 0x123456789ABCULL);
  EXPECT_EQ(LocalKey(g), 0x123456789ABCULL);
  EXPECT_LT(GlobalKeyLo(5, 1), g);
  EXPECT_GT(GlobalKeyHi(5, 1), g);
  // Different tables/indexes never overlap.
  EXPECT_LT(GlobalKeyHi(5, 0), GlobalKeyLo(5, 1));
  EXPECT_LT(GlobalKeyHi(4, 3), GlobalKeyLo(5, 0));
}

TEST(KeysTest, SecondaryComposite56Range) {
  const uint64_t h = 0xABCDEF123456ULL;  // 48-bit hash
  const uint64_t comp = SecComposite56(h, 0x1234);
  EXPECT_GE(comp, SecComposite56Lo(h));
  EXPECT_LE(comp, SecComposite56Hi(h));
  EXPECT_LT(comp, 1ull << 56);
}

// --- TableHeap ---------------------------------------------------------------

class TableHeapTest : public ::testing::TestWithParam<bool> {
 protected:
  TableHeapTest()
      : device_(16ull * 1024 * 1024, NvmLatencyConfig::Dram()),
        allocator_(&device_),
        schema_(MixedSchema()),
        heap_(&allocator_, &schema_, GetParam()) {}

  Tuple Make(uint64_t id, const std::string& s, const std::string& l) {
    Tuple t(&schema_);
    t.SetU64(0, id);
    t.SetString(1, s);
    t.SetString(2, l);
    t.SetI64(3, -1);
    t.SetDouble(4, 2.5);
    return t;
  }

  NvmDevice device_;
  PmemAllocator allocator_;
  Schema schema_;
  TableHeap heap_;
};

TEST_P(TableHeapTest, InsertReadRoundTrip) {
  const Tuple t = Make(1, "in", std::string(60, 'q'));
  const uint64_t slot = heap_.Insert(t);
  ASSERT_NE(slot, 0u);
  EXPECT_TRUE(heap_.Read(slot).EqualTo(t));
  EXPECT_EQ(heap_.ReadU64(slot, 0), 1u);
  EXPECT_EQ(heap_.ReadString(slot, 1), "in");
  EXPECT_EQ(heap_.ReadString(slot, 2), std::string(60, 'q'));
}

TEST_P(TableHeapTest, UpdateInPlaceWithUndo) {
  const uint64_t slot = heap_.Insert(Make(1, "a", "first value"));
  std::vector<TableHeap::UndoField> undo;
  std::vector<uint64_t> deferred;
  std::vector<ColumnUpdate> up;
  up.push_back({2, Value::Str("second value, longer than before")});
  up.push_back({3, Value::I64(-2)});
  ASSERT_TRUE(heap_.Update(slot, up, &undo, &deferred).ok());
  EXPECT_EQ(heap_.ReadString(slot, 2), "second value, longer than before");
  EXPECT_EQ(undo.size(), 2u);
  EXPECT_EQ(deferred.size(), 1u);  // old varlen slot pending free

  // Roll back.
  std::vector<uint64_t> abort_free;
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    heap_.ApplyUndo(slot, *it, &abort_free);
  }
  EXPECT_EQ(heap_.ReadString(slot, 2), "first value");
  EXPECT_EQ(heap_.ReadU64(slot, 3), static_cast<uint64_t>(-1));
  EXPECT_EQ(abort_free.size(), 1u);  // the new varlen slot
}

TEST_P(TableHeapTest, FreeReleasesVarlenToo) {
  const AllocatorStats before = allocator_.stats();
  const uint64_t slot = heap_.Insert(Make(1, "x", std::string(90, 'v')));
  heap_.Free(slot);
  EXPECT_EQ(allocator_.stats().total_used, before.total_used);
}

TEST_P(TableHeapTest, LiveTupleCount) {
  EXPECT_EQ(heap_.live_tuples(), 0u);
  const uint64_t a = heap_.Insert(Make(1, "a", "aa"));
  heap_.Insert(Make(2, "b", "bb"));
  EXPECT_EQ(heap_.live_tuples(), 2u);
  heap_.Free(a);
  EXPECT_EQ(heap_.live_tuples(), 1u);
}

TEST_P(TableHeapTest, InlineVarcharStoredWithoutVarlenSlot) {
  const AllocatorStats before = allocator_.stats();
  Tuple t(&schema_);
  t.SetU64(0, 1);
  t.SetString(1, "abcde");  // max 6 -> inlined
  t.SetString(2, "");       // empty out-of-line value
  const uint64_t slot = heap_.Insert(t);
  EXPECT_EQ(heap_.ReadString(slot, 1), "abcde");
  // Only the fixed slot and one (empty) varlen slot were allocated.
  EXPECT_LE(allocator_.stats().total_used - before.total_used, 64u + 16u);
}

INSTANTIATE_TEST_SUITE_P(Modes, TableHeapTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "NvmAware" : "Volatile";
                         });

TEST(TableHeapNvmTest, PersistedTupleSurvivesCrash) {
  NvmDevice device(16ull * 1024 * 1024, NvmLatencyConfig::Dram());
  PmemAllocator allocator(&device);
  Schema schema = MixedSchema();
  TableHeap heap(&allocator, &schema, /*nvm_aware=*/true);
  Tuple t(&schema);
  t.SetU64(0, 11);
  t.SetString(1, "keep");
  t.SetString(2, std::string(50, 'k'));
  const uint64_t slot = heap.Insert(t);

  device.Crash();
  PmemAllocator recovered(&device, false);
  TableHeap heap2(&recovered, &schema, true);
  EXPECT_TRUE(heap2.Read(slot).EqualTo(t));
}

TEST(TableHeapNvmTest, DeferredMarkReclaimedOnCrash) {
  NvmDevice device(16ull * 1024 * 1024, NvmLatencyConfig::Dram());
  PmemAllocator allocator(&device);
  Schema schema = MixedSchema();
  TableHeap heap(&allocator, &schema, /*nvm_aware=*/true);
  Tuple t(&schema);
  t.SetU64(0, 11);
  t.SetString(2, "lost");
  const uint64_t slot = heap.Insert(t, /*defer_mark=*/true);
  EXPECT_EQ(allocator.StateOf(slot), PmemAllocator::SlotState::kAllocated);

  device.Crash();
  PmemAllocator recovered(&device, false);
  EXPECT_EQ(recovered.StateOf(slot), PmemAllocator::SlotState::kFree);
}

}  // namespace
}  // namespace nvmdb
