#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "engine/tuple.h"
#include "nvm/pmem_allocator.h"
#include "nvm/pmfs.h"
#include "nvm/stall_tag.h"

namespace nvmdb {

/// Which of the six paper engines to instantiate.
enum class EngineKind {
  kInP,      // in-place updates + ARIES-style WAL (Section 3.1)
  kCoW,      // copy-on-write / shadow paging (Section 3.2)
  kLog,      // log-structured (LSM) updates (Section 3.3)
  kNvmInP,   // NVM-aware in-place updates (Section 4.1)
  kNvmCoW,   // NVM-aware copy-on-write (Section 4.2)
  kNvmLog,   // NVM-aware log-structured (Section 4.3)
};

const char* EngineKindName(EngineKind kind);
bool EngineKindIsNvmAware(EngineKind kind);

/// Construction-time knobs shared by all engines.
struct EngineConfig {
  PmemAllocator* allocator = nullptr;
  Pmfs* fs = nullptr;
  /// Suffix appended to file/root names so multiple partitions coexist.
  std::string namespace_prefix = "p0";

  size_t btree_node_bytes = 512;    // STX / NV B+tree node size
  size_t cow_page_bytes = 4096;     // CoW B+tree page size
  size_t cow_cache_pages = 2048;    // CoW engine page-cache capacity
  size_t group_commit_size = 8;     // txns per WAL group commit
  uint64_t checkpoint_interval_txns = 0;  // 0 = only on demand (InP)
  size_t memtable_threshold_bytes = 1 << 20;  // Log engines
  size_t lsm_level0_limit = 4;      // runs before compaction triggers
  bool use_bloom_filters = true;    // NVM-Log run filters (ablation knob)
};

/// Storage-footprint breakdown of Fig. 14.
struct FootprintStats {
  uint64_t table_bytes = 0;
  uint64_t index_bytes = 0;
  uint64_t log_bytes = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t other_bytes = 0;  // caches, MemTables, engine metadata
  uint64_t total() const {
    return table_bytes + index_bytes + log_bytes + checkpoint_bytes +
           other_bytes;
  }
};

/// Abstract storage engine — the pluggable back-end of the DBMS testbed
/// (Section 3). One engine instance serves one partition; transactions on
/// a partition execute serially (the paper's lightweight concurrency
/// scheme), so engines are deliberately not thread-safe.
///
/// Transaction protocol: Begin() -> DML calls -> Commit()/Abort(). Exactly
/// one transaction is active at a time per engine.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual EngineKind kind() const = 0;
  const char* name() const { return EngineKindName(kind()); }

  /// Register a table. Must be called before any DML touching it, and
  /// again (same definitions) when re-attaching after a restart.
  virtual Status CreateTable(const TableDef& def) = 0;

  // --- Transactions ---------------------------------------------------------

  virtual uint64_t Begin();
  virtual Status Commit(uint64_t txn_id) = 0;
  virtual Status Abort(uint64_t txn_id) = 0;

  // --- DML -------------------------------------------------------------------

  virtual Status Insert(uint64_t txn_id, uint32_t table_id,
                        const Tuple& tuple) = 0;
  virtual Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                        const std::vector<ColumnUpdate>& updates) = 0;
  virtual Status Delete(uint64_t txn_id, uint32_t table_id,
                        uint64_t key) = 0;
  virtual Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                        Tuple* out) = 0;

  /// In-order scan of primary keys in [lo, hi]; callback returns false to
  /// stop.
  virtual Status ScanRange(
      uint64_t txn_id, uint32_t table_id, uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t, const Tuple&)>& fn) = 0;

  /// Fetch all tuples whose secondary-index columns equal `key_values`.
  virtual Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                                 uint32_t index_id,
                                 const std::vector<Value>& key_values,
                                 std::vector<Tuple>* out) = 0;

  // --- Lifecycle --------------------------------------------------------------

  /// Bring the engine to a consistent state after a restart: redo/undo per
  /// the engine's protocol. Tables must have been re-created first.
  virtual Status Recover() = 0;

  /// Engine-initiated checkpoint (only meaningful for InP).
  virtual Status Checkpoint() { return Status::OK(); }

  /// Force only the *pending commit group* durable (WAL group-commit
  /// flush, CoW batch flush) — nothing more. The coordinator calls this
  /// at the end of a run so the tail group's transactions get response
  /// times; a full Checkpoint() here would bill checkpoint cost (log
  /// truncation, memtable flushes, compressed snapshots) into the last
  /// group's tail latency. Engines durable at commit need no override.
  virtual Status ForceDurable() { return Status::OK(); }

  virtual FootprintStats Footprint() const = 0;

  /// Volatile (DRAM-equivalent) memory only — page caches, volatile
  /// indexes. Engines whose Footprint() reads the allocator's global
  /// per-tag stats would double-count when partitions share an allocator;
  /// Database::Footprint combines the global tags with this.
  virtual FootprintStats VolatileFootprint() const { return {}; }

  uint64_t committed_txns() const { return committed_txns_; }

  /// Id of the last transaction whose commit is durable. For the NVM-aware
  /// in-place/log engines this equals the last committed transaction; for
  /// group-committing engines it lags until the group is forced. The
  /// coordinator uses it to measure *response* latency — the paper's point
  /// that group commit raises mean response latency (Section 4.1).
  virtual uint64_t LastDurableTxn() const { return 0; }

 protected:
  uint64_t next_txn_id_ = 1;
  uint64_t active_txn_ = 0;
  uint64_t committed_txns_ = 0;
};

/// Factory covering all six engines.
std::unique_ptr<StorageEngine> CreateEngine(EngineKind kind,
                                            const EngineConfig& config);

}  // namespace nvmdb
