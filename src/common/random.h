#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvmdb {

/// Fast, reproducible PRNG (xorshift64*). Deterministic across platforms so
/// benchmark workloads are identical between engine runs, which is required
/// for comparing storage footprints and read/write amplification (Section 5.1
/// of the paper fixes the workload across engines).
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random printable-ASCII string of exactly `len` bytes.
  std::string String(size_t len) {
    std::string s(len, ' ');
    FillString(&s[0], len);
    return s;
  }

  /// Write the same byte stream as String(len) into caller-owned storage
  /// (consumes the generator identically — the allocation-free form for
  /// pooled buffers and in-place tuple arenas).
  void FillString(char* dst, size_t len) {
    for (size_t i = 0; i < len; i++) {
      dst[i] = static_cast<char>('a' + Uniform(26));
    }
  }

  /// Append the same byte stream as String(len) to *out.
  void AppendString(size_t len, std::string* out) {
    const size_t off = out->size();
    out->resize(off + len);
    FillString(&(*out)[off], len);
  }

 private:
  uint64_t state_;
};

/// Generator producing the paper's two-level hotspot access skew:
/// `hot_access_pct`% of the draws fall within the first `hot_data_pct`% of
/// the key space (e.g. Low Skew: 50% of accesses -> 20% of tuples,
/// High Skew: 90% -> 10%).
class HotspotGenerator {
 public:
  HotspotGenerator(uint64_t num_keys, double hot_data_fraction,
                   double hot_access_fraction, uint64_t seed = 7);

  uint64_t Next();

  uint64_t num_keys() const { return num_keys_; }

 private:
  Random rng_;
  uint64_t num_keys_;
  uint64_t hot_keys_;
  double hot_access_fraction_;
};

/// Classic Zipfian generator (YCSB-style) for supplementary sweeps.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t num_keys, double theta = 0.99, uint64_t seed = 7);

  uint64_t Next();

 private:
  Random rng_;
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;

  static double Zeta(uint64_t n, double theta);
};

}  // namespace nvmdb
