# Empty dependencies file for cow_btree_test.
# This may be replaced when dependencies are built.
