#include "nvm/nvm_device.h"

#include <sys/mman.h>

#include <cassert>
#include <cstdlib>

#include "nvm/crash_sim.h"

namespace nvmdb {

namespace {

/// Zero-filled region that only costs page faults for the bytes actually
/// touched. Falls back to calloc if mmap is unavailable.
void* AllocZeroed(size_t bytes) {
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p != MAP_FAILED) return p;
  p = calloc(1, bytes);
  assert(p != nullptr);
  return p;
}

void FreeZeroed(void* p, size_t bytes) {
  if (p == nullptr) return;
  if (munmap(p, bytes) != 0) free(p);
}

}  // namespace

NvmLatencyConfig NvmLatencyConfig::Dram() {
  NvmLatencyConfig cfg;
  cfg.read_latency_ns = 160;
  cfg.dram_latency_ns = 160;
  cfg.write_bandwidth_gbps = 76.0;
  cfg.sync_latency_ns = 100;
  return cfg;
}

NvmLatencyConfig NvmLatencyConfig::LowNvm() {
  NvmLatencyConfig cfg;
  cfg.read_latency_ns = 320;
  cfg.dram_latency_ns = 160;
  cfg.write_bandwidth_gbps = 9.5;
  cfg.sync_latency_ns = 100;
  return cfg;
}

NvmLatencyConfig NvmLatencyConfig::HighNvm() {
  NvmLatencyConfig cfg;
  cfg.read_latency_ns = 1280;
  cfg.dram_latency_ns = 160;
  cfg.write_bandwidth_gbps = 9.5;
  cfg.sync_latency_ns = 100;
  return cfg;
}

NvmDevice::NvmDevice(size_t capacity, const NvmLatencyConfig& latency,
                     const CacheConfig& cache_cfg)
    : capacity_(capacity), latency_(latency) {
  working_ = static_cast<uint8_t*>(AllocZeroed(capacity_));
  durable_ = static_cast<uint8_t*>(AllocZeroed(capacity_));
  // std::atomic<uint32_t> is lock-free and layout-compatible with a zeroed
  // uint32_t on every supported platform, so the wear array can live in a
  // lazily-zeroed mapping too instead of an eagerly-constructed new[].
  line_writes_ = static_cast<std::atomic<uint32_t>*>(
      AllocZeroed((capacity_ / 64 + 1) * sizeof(std::atomic<uint32_t>)));

  // Resolve the concurrency mode (NVMDB_SHARED_CACHE override included)
  // before building the cache so the write-back trampoline and the cache
  // agree on it; the cache's own resolution of the same request is
  // idempotent.
  const ConcurrencyMode mode = ResolveConcurrencyMode(cache_cfg.mode);
  owner_ = mode == ConcurrencyMode::kOwner;
  CacheConfig resolved_cfg = cache_cfg;
  resolved_cfg.mode = mode;

  CacheCallbacks callbacks;
  callbacks.write_back =
      owner_ ? &NvmDevice::WriteBackTrampoline<ConcurrencyMode::kOwner>
             : &NvmDevice::WriteBackTrampoline<ConcurrencyMode::kShared>;
  callbacks.ctx = this;
  // Miss latency is charged at the access site (together with hit and
  // write-back costs), not in a fill callback, so no fill hook is needed.
  cache_ = std::make_unique<CacheSim>(resolved_cfg, callbacks);
}

NvmDevice::~NvmDevice() {
  if (NvmEnv::Get() == this) NvmEnv::Set(nullptr);
  FreeZeroed(working_, capacity_);
  FreeZeroed(durable_, capacity_);
  FreeZeroed(line_writes_,
             (capacity_ / 64 + 1) * sizeof(std::atomic<uint32_t>));
}

uint64_t NvmDevice::StoreCostNs() const {
  const double gbps = latency_.write_bandwidth_gbps;
  if (gbps <= 0) return 0;
  // line_size bytes at gbps GB/s.
  return static_cast<uint64_t>(static_cast<double>(cache_->line_size()) /
                               gbps);
}

template <ConcurrencyMode M>
void NvmDevice::OnWriteBack(uint64_t line_addr, size_t line_size) {
  // A dirty line reaching NVM: copy working -> durable and count wear.
  // Lines outside the managed region (virtual heap addresses routed
  // through TouchVirtual) have no durable bytes but still cost a store.
  if (line_addr + line_size <= capacity_) {
    memcpy(durable_ + line_addr, working_ + line_addr, line_size);
    std::atomic<uint32_t>& wear = line_writes_[line_addr / 64];
    if constexpr (M == ConcurrencyMode::kOwner) {
      wear.store(wear.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    } else {
      wear.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

template void NvmDevice::OnWriteBack<ConcurrencyMode::kOwner>(uint64_t,
                                                              size_t);
template void NvmDevice::OnWriteBack<ConcurrencyMode::kShared>(uint64_t,
                                                               size_t);

void NvmDevice::ChargeAccess(uint64_t addr, size_t n, bool is_write) {
  const CacheAccessResult r = cache_->AccessEx(addr, n, is_write);
  const size_t lines =
      (addr + n - 1) / cache_->line_size() - addr / cache_->line_size() + 1;
  // One atomic add covers the whole call: miss latency, hit latency, and
  // write-back bandwidth for every line the access touched.
  ChargeStall(r.missed * latency_.read_latency_ns +
              (lines - r.missed) * latency_.cache_hit_ns +
              r.write_backs * StoreCostNs());
}

void NvmDevice::TouchSegments(uint64_t addr, const uint32_t* lens,
                              size_t k, bool is_write) {
  const CacheAccessResult r = cache_->AccessSegments(addr, lens, k, is_write);
  if (r.lines == 0) return;  // every segment empty: nothing was modeled
  // Identical total to the per-call charges of the uncoalesced stream:
  // the summands are order-independent and AccessSegments reports the
  // exact visit count (boundary lines visited once per touching segment).
  ChargeStall(r.missed * latency_.read_latency_ns +
              (r.lines - r.missed) * latency_.cache_hit_ns +
              r.write_backs * StoreCostNs());
}

void NvmDevice::ReadSegments(uint64_t offset, const ReadSeg* segs,
                             size_t k) {
  assert(k <= kMaxIoSegments);
  uint32_t lens[kMaxIoSegments] = {};
  for (size_t i = 0; i < k; i++) lens[i] = segs[i].len;
  TouchSegments(offset, lens, k, /*is_write=*/false);
  for (size_t i = 0; i < k; i++) {
    assert(offset + segs[i].len <= capacity_);
    if (segs[i].len != 0) memcpy(segs[i].dst, working_ + offset, segs[i].len);
    offset += segs[i].len;
  }
}

void NvmDevice::WriteSegments(uint64_t offset, const WriteSeg* segs,
                              size_t k) {
  assert(k <= kMaxIoSegments);
  uint32_t lens[kMaxIoSegments] = {};
  for (size_t i = 0; i < k; i++) lens[i] = segs[i].len;
  TouchSegments(offset, lens, k, /*is_write=*/true);
  for (size_t i = 0; i < k; i++) {
    assert(offset + segs[i].len <= capacity_);
    if (segs[i].len != 0) memcpy(working_ + offset, segs[i].src, segs[i].len);
    offset += segs[i].len;
  }
}

void NvmDevice::Read(uint64_t offset, void* dst, size_t n) {
  assert(offset + n <= capacity_);
  // Same owner-mode resident-hit fast path as Touch(): a single-line hit —
  // the overwhelmingly common shape for header/field reads — completes
  // with one inline probe and one plain add, identical accounting to the
  // out-of-line path (n == 0 must keep taking ChargeAccess, whose legacy
  // cost formula charges line coverage without probing the cache).
  if (owner_ && n != 0 && cache_->OwnerHitFast(offset, n, false)) {
    ChargeStall(latency_.cache_hit_ns);
  } else {
    ChargeAccess(offset, n, /*is_write=*/false);
  }
  memcpy(dst, working_ + offset, n);
}

void NvmDevice::Write(uint64_t offset, const void* src, size_t n) {
  assert(offset + n <= capacity_);
  if (owner_ && n != 0 && cache_->OwnerHitFast(offset, n, true)) {
    ChargeStall(latency_.cache_hit_ns);
  } else {
    ChargeAccess(offset, n, /*is_write=*/true);
  }
  memcpy(working_ + offset, src, n);
}

void NvmDevice::Persist(uint64_t offset, size_t n) {
  if (n == 0) return;
  assert(offset + n <= capacity_);
  // Crash-point hook: this is a durability event, and a capture must see
  // the durable image *before* the range below is mirrored into it.
  if (crash_sim_ != nullptr) crash_sim_->OnPersist(this, offset, n);
  // CLFLUSH/CLWB each covered line (counts stores for dirty cached lines),
  // then unconditionally mirror the range into the durable image so the
  // post-condition "range is durable" holds even for bytes written through
  // an uninstrumented pointer.
  const size_t flushed = FlushLines(offset, n);
  const size_t ls = cache_->line_size();
  const uint64_t first = offset / ls * ls;
  uint64_t last_end = (offset + n + ls - 1) / ls * ls;
  if (last_end > capacity_) last_end = capacity_;
  memcpy(durable_ + first, working_ + first, last_end - first);
  // Write-back bandwidth plus SFENCE + flush latency, in one accumulation.
  ChargeStall(flushed * StoreCostNs() + latency_.sync_latency_ns);
  CounterAdd(sync_calls_, 1);
}

void NvmDevice::AtomicPersistWrite64(uint64_t offset, uint64_t value) {
  assert(offset % 8 == 0);
  assert(offset + 8 <= capacity_);
  if (crash_sim_ != nullptr) crash_sim_->OnAtomicPersist(this, offset, value);
  ChargeAccess(offset, 8, /*is_write=*/true);
  memcpy(working_ + offset, &value, 8);
  const size_t flushed = FlushLines(offset, 8);
  // The durable copy of an aligned 8-byte store is itself atomic: either
  // the old or the new value survives a crash, never a torn mix.
  memcpy(durable_ + offset, &value, 8);
  ChargeStall(flushed * StoreCostNs() + latency_.sync_latency_ns);
  CounterAdd(sync_calls_, 1);
}

void NvmDevice::Crash() {
  // Dirty cached lines die with the caches; the working image reverts to
  // exactly what had been made durable.
  cache_->DropDirty();
  memcpy(working_, durable_, capacity_);
}

void NvmDevice::RestoreImages(const uint8_t* image, size_t n) {
  assert(n == capacity_);
  (void)n;
  cache_->DropDirty();
  memcpy(durable_, image, capacity_);
  memcpy(working_, image, capacity_);
}

void NvmDevice::FlushAll() {
  const size_t flushed = cache_->WriteBackAll();
  ChargeStall(flushed * StoreCostNs());
  memcpy(durable_, working_, capacity_);
}

NvmCounters NvmDevice::counters() const {
  NvmCounters c;
  c.loads = cache_->misses();
  c.stores = cache_->write_backs();
  c.hits = cache_->hits();
  c.stall_ns = stall_ns_.load(std::memory_order_relaxed);
  c.external_ns = external_ns_.load(std::memory_order_relaxed);
  c.sync_calls = sync_calls_.load(std::memory_order_relaxed);
  c.bytes_read = c.loads * cache_->line_size();
  c.bytes_written = c.stores * cache_->line_size();
  for (size_t i = 0; i < kStallTagCount; i++) {
    c.tag_ns[i] = tag_ns_[i].load(std::memory_order_relaxed);
  }
  return c;
}

void NvmDevice::ResetCounters() {
  // CacheSim counters are monotonically increasing; snapshot-deltas are the
  // caller's job for fine-grained phases, but a full reset is handy between
  // benchmark sections. We emulate reset by recording nothing here for the
  // cache (it has no reset) — instead benches take deltas. Stall and sync
  // counters do support reset.
  stall_ns_.store(0, std::memory_order_relaxed);
  sync_calls_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kStallTagCount; i++) {
    tag_ns_[i].store(0, std::memory_order_relaxed);
  }
}

WearStats NvmDevice::wear() const {
  WearStats w;
  const size_t num_lines = capacity_ / 64 + 1;
  for (size_t i = 0; i < num_lines; i++) {
    const uint32_t writes = line_writes_[i].load(std::memory_order_relaxed);
    if (writes == 0) continue;
    w.total_line_writes += writes;
    w.lines_touched++;
    if (writes > w.max_line_writes) w.max_line_writes = writes;
  }
  if (w.lines_touched > 0) {
    w.mean_line_writes = static_cast<double>(w.total_line_writes) /
                         static_cast<double>(w.lines_touched);
    w.hotspot_factor =
        static_cast<double>(w.max_line_writes) / w.mean_line_writes;
  }
  return w;
}

namespace {
thread_local NvmDevice* g_current_device = nullptr;
thread_local TraceWriter* g_current_trace = nullptr;
}  // namespace

NvmDevice* NvmEnv::Get() { return g_current_device; }
void NvmEnv::Set(NvmDevice* device) { g_current_device = device; }

TraceWriter* NvmEnv::Trace() { return g_current_trace; }
void NvmEnv::SetTrace(TraceWriter* trace) { g_current_trace = trace; }

}  // namespace nvmdb
