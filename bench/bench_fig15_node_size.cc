/// Fig. 15 (Appendix B) — Sensitivity of the NVM-aware engines to B+tree
/// node size: STX-style nodes for NVM-InP/NVM-Log (64 B – 2 KB, default
/// 512 B) and CoW B+tree pages for NVM-CoW (512 B – 16 KB, default 4 KB).
///
/// All 72 (engine, node size, mixture) cells are submitted up front and
/// run concurrently on the grid scheduler; the three sweep tables print
/// after the barrier.
///
/// Expected shape (paper): read-heavy workloads favor larger CoW pages
/// (shallower tree, less metadata flushing) while write-heavy favor
/// smaller ones (less copying); STX trees peak around 512 B.
#include <cstdio>

#include "bench_util.h"

using namespace nvmdb;
using namespace nvmdb::bench;

namespace {

const YcsbMixture kMixtures[] = {YcsbMixture::kReadOnly,
                                 YcsbMixture::kReadHeavy,
                                 YcsbMixture::kBalanced,
                                 YcsbMixture::kWriteHeavy};

struct Sweep {
  EngineKind engine;
  std::vector<size_t> sizes;
  bool is_cow_page;
  std::vector<BenchRun> runs;  // sizes.size() x 4 mixtures
};

void SubmitSweep(BenchRunner* runner, Sweep* sweep) {
  sweep->runs.resize(sweep->sizes.size() * 4);
  for (size_t b = 0; b < sweep->sizes.size(); b++) {
    for (int m = 0; m < 4; m++) {
      const size_t idx = b * 4 + m;
      const size_t bytes = sweep->sizes[b];
      const YcsbMixture mixture = kMixtures[m];
      const EngineKind engine = sweep->engine;
      const bool is_cow_page = sweep->is_cow_page;
      runner->Submit([sweep, idx, bytes, mixture, engine, is_cow_page]() {
        EngineConfig ec;
        if (is_cow_page) {
          ec.cow_page_bytes = bytes;
        } else {
          ec.btree_node_bytes = bytes;
        }
        sweep->runs[idx] = RunYcsb(engine, mixture, YcsbSkew::kLow, ec);
        return CellFromRun({{"engine", EngineKindName(engine)},
                            {"node_bytes", std::to_string(bytes)},
                            {"mixture", YcsbMixtureName(mixture)}},
                           sweep->runs[idx], Scale().partitions);
      });
    }
  }
}

void PrintSweep(const Sweep& sweep) {
  printf("\n--- %s (%s) ---\n", EngineKindName(sweep.engine),
         sweep.is_cow_page ? "CoW B+tree page size"
                           : "STX B+tree node size");
  printf("%-12s", "bytes");
  for (YcsbMixture m : kMixtures) printf("%14s", YcsbMixtureName(m));
  printf("\n");
  for (size_t b = 0; b < sweep.sizes.size(); b++) {
    printf("%-12zu", sweep.sizes[b]);
    for (int m = 0; m < 4; m++) {
      const BenchRun& run = sweep.runs[b * 4 + m];
      printf("%14.0f",
             DeriveThroughput(run.committed, run.wall_ns, run.counters,
                              NvmLatencyConfig::LowNvm(),
                              Scale().partitions));
    }
    printf("\n");
  }
}

}  // namespace

int main() {
  Sweep sweeps[] = {
      {EngineKind::kNvmInP, {64, 128, 256, 512, 1024, 2048}, false, {}},
      {EngineKind::kNvmCoW, {512, 1024, 2048, 4096, 8192, 16384}, true, {}},
      {EngineKind::kNvmLog, {64, 128, 256, 512, 1024, 2048}, false, {}},
  };

  BenchRunner runner("fig15_node_size");
  AddScaleContext(&runner);
  for (Sweep& sweep : sweeps) SubmitSweep(&runner, &sweep);
  runner.Wait();

  PrintHeader(
      "Fig. 15: B+tree node-size sensitivity (YCSB, low NVM latency, low "
      "skew; txn/sec)");
  for (const Sweep& sweep : sweeps) PrintSweep(sweep);
  printf(
      "\nPaper shape: CoW pages — bigger helps reads, hurts writes\n"
      "(copy cost); STX nodes peak near 512 B (Appendix B, Fig. 15).\n");
  return ExitStatus();
}
