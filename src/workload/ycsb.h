#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "testbed/coordinator.h"

namespace nvmdb {

/// YCSB workload mixtures (Section 5.1).
enum class YcsbMixture {
  kReadOnly,   // 100% reads
  kReadHeavy,  // 90% reads, 10% updates
  kBalanced,   // 50% / 50%
  kWriteHeavy, // 10% reads, 90% updates
};

/// Tuple-access skew settings (Section 5.1): a localized hotspot within
/// each partition.
enum class YcsbSkew {
  kLow,   // 50% of accesses -> 20% of tuples
  kHigh,  // 90% of accesses -> 10% of tuples
};

const char* YcsbMixtureName(YcsbMixture m);
const char* YcsbSkewName(YcsbSkew s);
int YcsbReadPercent(YcsbMixture m);

struct YcsbConfig {
  uint64_t num_tuples = 100000;  // paper: 2M (~2 GB); scaled by default
  uint64_t num_txns = 80000;     // paper: 8M; total across partitions
  size_t num_partitions = 8;
  YcsbMixture mixture = YcsbMixture::kBalanced;
  YcsbSkew skew = YcsbSkew::kLow;
  size_t field_size = 100;  // 10 columns x 100 B ≈ 1 KB tuples
  uint64_t seed = 42;
};

/// YCSB generator: a single `usertable` of 1 KB tuples (primary key plus
/// ten 100-byte string columns), two transaction types (point read, point
/// update of one column), pre-generated as a fixed workload divided evenly
/// among partitions so every engine sees the identical request stream.
class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config) : config_(config) {}

  static constexpr uint32_t kTableId = 1;
  static TableDef MakeTableDef(size_t field_size = 100);

  /// Populate the database (key k lives on partition k % P).
  Status Load(Database* db);

  /// Pre-generate the fixed per-partition transaction queues. Tasks are
  /// POD parameter blocks (update values live in the queue's byte pool),
  /// so generating millions of transactions performs no per-transaction
  /// heap allocation beyond the pools' amortized growth.
  std::vector<TxnQueue> GenerateQueues();

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
};

}  // namespace nvmdb
