#include "testbed/database.h"

#include <cassert>

#include "common/timer.h"
#include "common/trace.h"
#include "nvm/crash_sim.h"

namespace nvmdb {

Database::Database(const DatabaseConfig& config) : config_(config) {
  device_ = std::make_unique<NvmDevice>(config_.nvm_capacity,
                                        config_.latency, config_.cache);
  NvmEnv::Set(device_.get());
  trace_ = TraceWriter::FromEnv();
  NvmEnv::SetTrace(trace_.get());
  allocator_ = std::make_unique<PmemAllocator>(device_.get(),
                                               /*format=*/true);
  fs_ = std::make_unique<Pmfs>(allocator_.get());
  InstantiateEngines();
}

Database::~Database() {
  engines_.clear();
  if (NvmEnv::Get() == device_.get()) NvmEnv::Set(nullptr);
  if (NvmEnv::Trace() == trace_.get()) NvmEnv::SetTrace(nullptr);
}

void Database::InstantiateEngines() {
  engines_.clear();
  for (size_t p = 0; p < config_.num_partitions; p++) {
    EngineConfig ec = config_.engine_config;
    ec.allocator = allocator_.get();
    ec.fs = fs_.get();
    ec.namespace_prefix = "p" + std::to_string(p);
    engines_.push_back(CreateEngine(config_.engine, ec));
  }
}

Status Database::CreateTable(const TableDef& def) {
  table_defs_.push_back(def);
  for (auto& engine : engines_) {
    Status s = engine->CreateTable(def);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void Database::Crash() {
  if (trace_ != nullptr) {
    trace_->Instant("crash", "crash", device_->TotalStallNanos(), 0);
  }
  // Power failure: volatile engine state dies with the process; unflushed
  // cache lines never reach the durable image.
  engines_.clear();
  fs_.reset();
  allocator_.reset();
  device_->Crash();
}

void Database::CrashAt(const CrashSim& sim) {
  if (trace_ != nullptr) {
    trace_->Instant("crash_at_capture", "crash", device_->TotalStallNanos(),
                    0);
  }
  assert(sim.captured());
  assert(sim.image().size() == device_->capacity());
  engines_.clear();
  fs_.reset();
  allocator_.reset();
  device_->RestoreImages(sim.image().data(), sim.image().size());
}

uint64_t Database::Recover() {
  Stopwatch watch;
  const uint64_t stall_before = device_->TotalStallNanos();
  // OS restart: the allocator scans the heap, reclaims unpersisted slots,
  // and restores its metadata; PMFS reattaches via the root catalog.
  allocator_ = std::make_unique<PmemAllocator>(device_.get(),
                                               /*format=*/false);
  fs_ = std::make_unique<Pmfs>(allocator_.get());
  // DBMS restart: engines reattach to their persistent structures and run
  // their recovery protocols.
  InstantiateEngines();
  for (const TableDef& def : table_defs_) {
    for (auto& engine : engines_) engine->CreateTable(def);
  }
  for (auto& engine : engines_) engine->Recover();
  const uint64_t stall = device_->TotalStallNanos() - stall_before;
  if (trace_ != nullptr) {
    trace_->Span("recover", "recovery", stall_before, stall, 0);
  }
  return watch.ElapsedNanos() + stall;
}

FootprintStats Database::Footprint() const {
  FootprintStats stats;
  const AllocatorStats alloc = allocator_->stats();
  stats.table_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kTable)];
  stats.index_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kIndex)];
  stats.log_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kLog)];
  stats.checkpoint_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kCheckpoint)];
  stats.other_bytes =
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kOther)] +
      alloc.used_by_tag[static_cast<size_t>(StorageTag::kFilesystem)];
  for (const auto& engine : engines_) {
    const FootprintStats v = engine->VolatileFootprint();
    stats.table_bytes += v.table_bytes;
    stats.index_bytes += v.index_bytes;
    stats.log_bytes += v.log_bytes;
    stats.checkpoint_bytes += v.checkpoint_bytes;
    stats.other_bytes += v.other_bytes;
  }
  return stats;
}

void Database::Drain() {
  for (auto& engine : engines_) engine->Checkpoint();
}

}  // namespace nvmdb
