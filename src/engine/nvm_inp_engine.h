#pragma once

#include <map>
#include <memory>

#include "engine/nv_wal.h"
#include "engine/storage_engine.h"
#include "engine/table_storage.h"
#include "index/nv_btree.h"

namespace nvmdb {

/// NVM-aware in-place-updates engine (Section 4.1). Tuples are persisted
/// in place with the sync primitive; the WAL is a non-volatile linked list
/// holding only what undo needs (tuple pointers and field before-values —
/// never full after-images); indexes are non-volatile B+trees usable
/// immediately after restart. Recovery is undo-only: its cost depends on
/// the transactions in flight at the crash, not on history.
class NvmInPEngine : public StorageEngine {
 public:
  explicit NvmInPEngine(const EngineConfig& config);

  EngineKind kind() const override { return EngineKind::kNvmInP; }

  Status CreateTable(const TableDef& def) override;
  Status Commit(uint64_t txn_id) override;
  Status Abort(uint64_t txn_id) override;
  Status Insert(uint64_t txn_id, uint32_t table_id,
                const Tuple& tuple) override;
  Status Update(uint64_t txn_id, uint32_t table_id, uint64_t key,
                const std::vector<ColumnUpdate>& updates) override;
  Status Delete(uint64_t txn_id, uint32_t table_id, uint64_t key) override;
  Status Select(uint64_t txn_id, uint32_t table_id, uint64_t key,
                Tuple* out) override;
  Status ScanRange(uint64_t txn_id, uint32_t table_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(uint64_t, const Tuple&)>& fn)
      override;
  Status SelectSecondary(uint64_t txn_id, uint32_t table_id,
                         uint32_t index_id,
                         const std::vector<Value>& key_values,
                         std::vector<Tuple>* out) override;
  Status Recover() override;
  FootprintStats Footprint() const override;

  /// Commits persist immediately — every committed txn is durable.
  uint64_t LastDurableTxn() const override { return last_committed_txn_; }

 private:
  struct Table {
    TableDef def;
    std::unique_ptr<TableHeap> heap;
    std::unique_ptr<NvBTree> primary;  // key -> tuple slot (NvmPtr offset)
    std::map<uint32_t, std::unique_ptr<NvBTree>> secondaries;
  };

  // Serialized NV-WAL entry: the undo record (Section 4.1's WAL contents:
  // txn id, table, tuple id, pointers to the changes).
  struct UndoEntry {
    uint8_t op;          // LogOp
    uint32_t table_id;
    uint64_t key;
    uint64_t slot;
    // update: field-level before words; new varlen slots for rollback-free
    uint16_t field_count;
    // followed by field_count * { u16 column; u64 before; u64 new_varlen }
  };

  // One staged field of an in-flight update (before word + the new varlen
  // slot, if any); lives in the reused staged_fields_ buffer.
  struct StagedField {
    uint16_t column;
    uint64_t before;
    uint64_t new_varlen;
  };

  Table* GetTable(uint32_t table_id);
  void UndoOne(const uint8_t* payload, size_t size);
  void AddSecondaryEntries(Table* table, const Tuple& tuple, uint64_t pk);
  void RemoveSecondaryEntries(Table* table, const Tuple& tuple, uint64_t pk);
  /// Serialize an undo entry (op header plus the first `fcount` staged
  /// fields) into the reused wal_entry_ buffer and push it to the NV-WAL.
  void PushUndoEntry(uint8_t op, uint32_t table_id, uint64_t key,
                     uint64_t slot, size_t fcount);

  EngineConfig config_;
  PmemAllocator* allocator_;
  std::unique_ptr<NvWal> wal_;
  std::map<uint32_t, Table> tables_;

  std::vector<uint64_t> commit_free_varlen_;  // old varlens after update
  // deleted tuples: (table_id, slot) so Free can release varlen fields
  std::vector<std::pair<uint32_t, uint64_t>> commit_free_slots_;
  uint64_t last_committed_txn_ = 0;

  // Reused per-operation scratch (engines are partition-confined).
  std::vector<StagedField> staged_fields_;
  std::vector<uint64_t> staged_words_;
  std::string wal_entry_;
  Tuple scratch_tuple_;   // update old image
  Tuple scratch_tuple2_;  // update new image (secondary maintenance)
  Tuple scan_scratch_;    // delete / scan / secondary materialization
};

}  // namespace nvmdb
